/**
 * @file
 * The capacity argument of the paper, made concrete: a workload whose
 * footprint exceeds the FM alone. DRAM-cache designs expose only the
 * 16 GiB FM to software and cannot host it without paging; Hybrid2 and
 * the migration designs add (most of) the NM to the flat address space
 * and can.
 *
 * Usage: capacity_pressure [footprint_gib]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/runner.h"

int
main(int argc, char **argv)
{
    using namespace h2;

    double footprintGib = argc > 1 ? std::stod(argv[1]) : 16.5;

    workloads::Workload wl = workloads::findWorkload("cg.D");
    wl.name = "capacity-probe";
    wl.footprintBytes = static_cast<u64>(footprintGib * double(GiB));
    wl.memRatio = 0.05;

    sim::RunConfig cfg;
    cfg.nmBytes = 1 * GiB;
    cfg.instrPerCore = 200'000;
    sim::Runner runner(cfg);

    std::printf("workload footprint: %s; NM 1GiB, FM 16GiB\n\n",
                formatBytes(wl.footprintBytes).c_str());
    std::printf("%-10s %-12s %s\n", "design", "capacity", "verdict");

    mem::EmptyLlcView llc;
    mem::MemSystemParams mp;
    mp.nmBytes = cfg.nmBytes;
    mp.fmBytes = cfg.fmBytes;
    // The FM-only baseline itself cannot host footprints above 16 GiB,
    // so report absolute IPC rather than speedup in that regime.
    bool baselineFits = wl.footprintBytes <= mp.fmBytes;
    for (const std::string &spec : sim::evaluatedDesigns()) {
        u64 capacity = sim::makeDesign(spec, mp, llc)->flatCapacity();
        if (wl.footprintBytes > capacity) {
            std::printf("%-10s %-12s cannot host the footprint: would "
                        "page to disk\n",
                        spec.c_str(), formatBytes(capacity).c_str());
            continue;
        }
        if (baselineFits) {
            std::printf("%-10s %-12s runs in memory, %.2fx over "
                        "baseline\n", spec.c_str(),
                        formatBytes(capacity).c_str(),
                        runner.speedup(wl, spec));
        } else {
            const sim::Metrics &m = runner.run(wl, spec);
            std::printf("%-10s %-12s runs in memory, IPC %.2f\n",
                        spec.c_str(), formatBytes(capacity).c_str(),
                        m.ipc);
        }
    }
    std::printf("\nHybrid2 keeps all but 64MiB + 3.5%% metadata of the "
                "NM in the flat\naddress space (paper: 5.9%%/12.1%%/24.6%% "
                "more memory than caches at 1/2/4GiB).\n");
    return 0;
}
