/**
 * @file
 * Interactive design-space explorer: sweep Hybrid2's cache size,
 * sector size and line size on a chosen workload (the per-workload
 * view behind the paper's Figure 11).
 *
 * Usage: dse_explorer [workload]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/xta.h"
#include "sim/runner.h"

int
main(int argc, char **argv)
{
    using namespace h2;

    std::string workloadName = argc > 1 ? argv[1] : "lbm";
    const workloads::Workload &wl = workloads::findWorkload(workloadName);

    sim::RunConfig cfg;
    cfg.nmBytes = 1 * GiB;
    cfg.instrPerCore = 300'000;
    sim::Runner runner(cfg);

    std::printf("Hybrid2 design space on %s (NM 1GiB)\n\n",
                wl.name.c_str());
    std::printf("%-8s %-8s %-6s %9s %9s\n", "cache", "sector", "line",
                "XTA(KiB)", "speedup");

    double best = 0.0;
    std::string bestSpec;
    for (u64 cacheMb : {64, 128}) {
        for (u32 sector : {2048u, 4096u}) {
            for (u32 line : {64u, 128u, 256u, 512u}) {
                core::Xta xta(cacheMb * MiB / sector, 16, sector / line);
                std::string spec = "hybrid2:cache=" +
                    std::to_string(cacheMb) + ",sector=" +
                    std::to_string(sector) + ",line=" +
                    std::to_string(line);
                double s = runner.speedup(wl, spec);
                std::printf("%-8s %-8u %-6u %9.0f %8.2fx\n",
                            (std::to_string(cacheMb) + "MiB").c_str(),
                            sector, line,
                            double(xta.storageBytes()) / KiB, s);
                if (s > best) {
                    best = s;
                    bestSpec = spec;
                }
            }
        }
    }
    std::printf("\nbest: %s (%.2fx)\n", bestSpec.c_str(), best);
    std::printf("paper's suite-wide best: 64MiB cache, 2KiB sectors, "
                "256B lines\n");
    return 0;
}
