/**
 * @file
 * Driving Hybrid2 with a user-supplied trace: implements a small CSV
 * TraceSource ("instGap,vaddr,R|W" per line) and replays it through
 * the DCMC's public access API - the template for replaying real
 * application traces instead of the synthetic suite.
 *
 * Usage: custom_trace [trace.csv]
 * Without an argument a demo trace is generated in /tmp.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/units.h"
#include "core/dcmc.h"
#include "workloads/trace.h"

namespace {

using namespace h2;

/** Replays "gap,vaddr,R|W" lines, looping at end of file. */
class CsvTrace : public workloads::TraceSource
{
  public:
    explicit CsvTrace(const std::string &path)
    {
        std::ifstream in(path);
        if (!in)
            h2_fatal("cannot open trace file: ", path);
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#')
                continue;
            std::istringstream ss(line);
            std::string gap, addr, type;
            std::getline(ss, gap, ',');
            std::getline(ss, addr, ',');
            std::getline(ss, type, ',');
            records.push_back({static_cast<u32>(std::stoul(gap)),
                               std::stoull(addr, nullptr, 0),
                               type == "W" ? AccessType::Write
                                           : AccessType::Read});
        }
        if (records.empty())
            h2_fatal("trace file has no records: ", path);
    }

    workloads::TraceRecord
    next() override
    {
        return records[pos++ % records.size()];
    }

    u64 size() const { return records.size(); }

  private:
    std::vector<workloads::TraceRecord> records;
    u64 pos = 0;
};

std::string
writeDemoTrace()
{
    std::string path = "/tmp/hybrid2_demo_trace.csv";
    std::ofstream out(path);
    out << "# instGap,vaddr,R|W\n";
    // A hot 256 KiB loop plus cold streaming writes into the FM-backed
    // part of the flat address space (beyond the ~0.93 GiB NM region).
    for (int rep = 0; rep < 200; ++rep) {
        for (u64 a = 0; a < 256 * KiB; a += 4096)
            out << "20," << (a + u64(rep % 64) * 64) << ",R\n";
        out << "10," << (2 * GiB + u64(rep) * MiB) << ",W\n";
    }
    return path;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path = argc > 1 ? argv[1] : writeDemoTrace();
    std::printf("replaying %s through the Hybrid2 DCMC\n", path.c_str());

    // A paper-default Hybrid2: 1 GiB HBM2 NM, 16 GiB DDR4 FM, 64 MiB
    // sectored DRAM cache with 2 KiB sectors and 256 B lines.
    mem::MemSystemParams mp;
    core::Hybrid2Params hp;
    core::Dcmc dcmc(mp, hp);

    CsvTrace trace(path);
    std::printf("trace records : %llu (looped to 200k accesses)\n",
                static_cast<unsigned long long>(trace.size()));

    Tick now = 0;
    const u64 accesses = 200'000;
    const Tick corePeriod = 313; // 3.2 GHz
    for (u64 i = 0; i < accesses; ++i) {
        auto rec = trace.next();
        now += Tick(rec.instGap + 1) * corePeriod;
        Addr addr = (rec.vaddr % dcmc.flatCapacity()) & ~Addr(63);
        auto result = dcmc.access(addr, rec.type, now);
        now = std::max(now, result.completeAt() - 1); // crude serialization
    }
    dcmc.checkInvariants();

    StatSet out;
    dcmc.collectStats(out);
    std::printf("served from NM: %.1f%%\n",
                100.0 * double(dcmc.requestsFromNm())
                    / double(dcmc.requests()));
    std::printf("migrations    : %.0f\n", out.get("dcmc.migrations"));
    std::printf("swap-outs     : %.0f\n", out.get("dcmc.swapOuts"));
    std::printf("FM traffic    : %s\n",
                formatBytes(u64(out.get("fm.bytesRead")
                                + out.get("fm.bytesWritten"))).c_str());
    std::printf("NM traffic    : %s\n",
                formatBytes(u64(out.get("nm.bytesRead")
                                + out.get("nm.bytesWritten"))).c_str());
    std::printf("dyn. energy   : %.2f uJ\n",
                dcmc.dynamicEnergyPj() / 1e6);
    return 0;
}
