/**
 * @file
 * Compare all six evaluated memory organizations on one workload:
 * speedup, NM service, traffic, energy and main-memory capacity - the
 * trade-off table at the heart of the paper.
 *
 * Usage: compare_designs [workload] [nm_gib]
 */

#include <cstdio>
#include <string>

#include "common/units.h"
#include "sim/runner.h"

int
main(int argc, char **argv)
{
    using namespace h2;

    std::string workloadName = argc > 1 ? argv[1] : "omnetpp";
    u64 nmGib = argc > 2 ? std::stoull(argv[2]) : 1;

    const workloads::Workload &wl = workloads::findWorkload(workloadName);
    sim::RunConfig cfg;
    cfg.nmBytes = nmGib * GiB;
    cfg.instrPerCore = 500'000;
    sim::Runner runner(cfg);

    std::printf("workload: %s (%s MPKI class), NM %lluGiB / FM 16GiB\n\n",
                wl.name.c_str(), to_string(wl.cls).c_str(),
                static_cast<unsigned long long>(nmGib));
    std::printf("%-10s %8s %8s %10s %10s %9s %11s\n", "design",
                "speedup", "NM-serv", "FM-GiB", "NM-GiB", "energy",
                "capacity");

    const sim::Metrics &base = runner.run(wl, "baseline");
    for (const std::string &spec : sim::evaluatedDesigns()) {
        const sim::Metrics &m = runner.run(wl, spec);
        std::printf("%-10s %7.2fx %7.0f%% %10.3f %10.3f %8.2fx %11s\n",
                    spec.c_str(), runner.speedup(wl, spec),
                    m.servedFromNm * 100.0,
                    double(m.fmTrafficBytes) / GiB,
                    double(m.nmTrafficBytes) / GiB,
                    m.dynamicEnergyPj / base.dynamicEnergyPj,
                    formatBytes(m.flatCapacityBytes).c_str());
    }
    std::printf("\nNote how the DRAM caches (tagless/dfc) give up the "
                "NM capacity\nwhile the migration designs and Hybrid2 "
                "keep (most of) it.\n");
    return 0;
}
