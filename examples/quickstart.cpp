/**
 * @file
 * Quickstart: simulate one workload on Hybrid2 and print its metrics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [workload] [nm_gib]
 */

#include <cstdio>
#include <string>

#include "common/units.h"
#include "sim/runner.h"

int
main(int argc, char **argv)
{
    using namespace h2;

    std::string workloadName = argc > 1 ? argv[1] : "lbm";
    u64 nmGib = argc > 2 ? std::stoull(argv[2]) : 1;

    // 1. Pick a workload from the Table 2 suite.
    const workloads::Workload &wl = workloads::findWorkload(workloadName);
    std::printf("workload %s: class %s, footprint %s\n", wl.name.c_str(),
                to_string(wl.cls).c_str(),
                formatBytes(wl.footprintBytes).c_str());

    // 2. Configure the paper's Table 1 system with the chosen NM size
    //    and a short trace for a fast demo.
    sim::RunConfig cfg;
    cfg.nmBytes = nmGib * GiB;
    cfg.instrPerCore = 500'000;
    sim::Runner runner(cfg);

    // 3. Run Hybrid2 and the FM-only baseline; print the comparison.
    const sim::Metrics &h2m = runner.run(wl, "hybrid2");
    const sim::Metrics &base = runner.run(wl, "baseline");
    std::printf("\n%s\n%s\n", base.toString().c_str(),
                h2m.toString().c_str());
    std::printf("speedup over FM-only baseline: %.2fx\n",
                runner.speedup(wl, "hybrid2"));

    // 4. Inspect Hybrid2-specific counters.
    std::printf("\nHybrid2 internals:\n");
    for (const auto &[key, value] : h2m.detail.entries())
        if (key.rfind("dcmc.", 0) == 0)
            std::printf("  %-28s %.0f\n", key.c_str(), value);
    return 0;
}
