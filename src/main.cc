/**
 * @file
 * h2sim: thin CLI around sim::Runner so the simulator is runnable
 * end-to-end outside of the test and bench harnesses.
 *
 * Usage:
 *   h2sim --design <spec> --workload <name> [options]
 *   h2sim --list-workloads | --list-designs | --help
 */

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "sim/sweep_runner.h"
#include "workloads/workload_registry.h"

namespace {

void printUsage(std::FILE *out)
{
    std::fputs(
        "h2sim - Hybrid2 hybrid-memory simulator (HPCA'20 reproduction)\n"
        "\n"
        "Usage: h2sim --design <spec> --workload <name> [options]\n"
        "\n"
        "Options:\n"
        "  --design <spec>      design spec (repeatable); see grammar below\n"
        "  --workload <name>    workload from Table 2 (repeatable); see\n"
        "                       --list-workloads\n"
        "  --nm-mib <n>         near-memory (HBM) capacity in MiB [1024]\n"
        "  --fm-mib <n>         far-memory (DDR) capacity in MiB [16384]\n"
        "  --cores <n>          number of cores [8]\n"
        "  --instr <n>          simulated instructions per core [1500000]\n"
        "  --warmup <n>         warmup instructions per core [0]\n"
        "  --seed <n>           trace-generation seed [42]\n"
        "  --jobs <n>           parallel simulations; 0 = all cores [1]\n"
        "  --speedup            also print speedup over the FM-only baseline\n"
        "  --list-workloads     list registered workloads and exit\n"
        "  --list-designs       list the paper's evaluated design specs and exit\n"
        "  -h, --help           show this help and exit\n"
        "\n"
        "Design spec grammar:\n"
        "  baseline | hybrid2 | hybrid2:cacheonly|migrall|migrnone|noremap\n"
        "  hybrid2:cache=<MiB>,sector=<B>,line=<B>\n"
        "  ideal:<lineBytes> | tagless | dfc[:<lineBytes>]\n"
        "  mempod | chameleon | lgm[:watermark=<n>]\n",
        out);
}

h2::u64 parseU64(const char *flag, const char *value)
{
    h2::u64 v = 0;
    const char *last = value + std::strlen(value);
    auto [ptr, ec] = std::from_chars(value, last, v, 10);
    if (ec != std::errc{} || ptr != last) {
        std::fprintf(stderr,
                     "h2sim: %s expects a non-negative integer, got '%s'\n",
                     flag, value);
        std::exit(2);
    }
    return v;
}

} // namespace

int main(int argc, char **argv)
{
    using namespace h2;

    sim::RunConfig config;
    std::vector<std::string> designs;
    std::vector<std::string> workloadNames;
    bool wantSpeedup = false;
    u32 jobs = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "h2sim: %s requires a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            printUsage(stdout);
            return 0;
        } else if (arg == "--list-workloads") {
            for (const auto &w : workloads::allWorkloads())
                std::printf("%-16s %-6s footprint=%llu MiB  paper-mpki=%.1f\n",
                            w.name.c_str(), to_string(w.cls).c_str(),
                            static_cast<unsigned long long>(w.footprintBytes >>
                                                            20),
                            w.paperMpki);
            return 0;
        } else if (arg == "--list-designs") {
            for (const auto &d : sim::evaluatedDesigns())
                std::printf("%s\n", d.c_str());
            return 0;
        } else if (arg == "--design") {
            designs.emplace_back(next("--design"));
        } else if (arg == "--workload") {
            workloadNames.emplace_back(next("--workload"));
        } else if (arg == "--nm-mib") {
            config.nmBytes = parseU64("--nm-mib", next("--nm-mib")) << 20;
        } else if (arg == "--fm-mib") {
            config.fmBytes = parseU64("--fm-mib", next("--fm-mib")) << 20;
        } else if (arg == "--cores") {
            config.numCores =
                static_cast<u32>(parseU64("--cores", next("--cores")));
        } else if (arg == "--instr") {
            config.instrPerCore = parseU64("--instr", next("--instr"));
        } else if (arg == "--warmup") {
            config.warmupInstrPerCore = parseU64("--warmup", next("--warmup"));
        } else if (arg == "--seed") {
            config.seed = parseU64("--seed", next("--seed"));
        } else if (arg == "--jobs") {
            jobs = static_cast<u32>(parseU64("--jobs", next("--jobs")));
        } else if (arg == "--speedup") {
            wantSpeedup = true;
        } else {
            std::fprintf(stderr, "h2sim: unknown option '%s'\n", arg.c_str());
            printUsage(stderr);
            return 2;
        }
    }

    if (designs.empty() || workloadNames.empty()) {
        std::fprintf(stderr,
                     "h2sim: need at least one --design and one --workload\n\n");
        printUsage(stderr);
        return 2;
    }

    try {
        sim::SweepRunner runner(config, jobs);
        // Submit the whole sweep up front so --jobs>1 overlaps the
        // simulations, then print in the order the user asked for.
        std::vector<const workloads::Workload *> suite;
        for (const auto &name : workloadNames)
            suite.push_back(&workloads::findWorkload(name));
        for (const workloads::Workload *workload : suite) {
            if (wantSpeedup)
                runner.submit(*workload, "baseline");
            for (const auto &design : designs)
                runner.submit(*workload, design);
        }
        for (const workloads::Workload *workload : suite) {
            for (const auto &design : designs) {
                const sim::Metrics &m = runner.run(*workload, design);
                std::printf("%s", m.toString().c_str());
                if (wantSpeedup)
                    std::printf("speedup_vs_baseline: %.4f\n",
                                runner.speedup(*workload, design));
                std::printf("\n");
            }
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "h2sim: %s\n", e.what());
        return 1;
    }
    return 0;
}
