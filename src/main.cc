/**
 * @file
 * h2sim: CLI around the experiment engine so the simulator is runnable
 * end-to-end outside of the test and bench harnesses.
 *
 * Usage:
 *   h2sim --design <spec> --workload <spec> [options]
 *   h2sim --experiment <file> [options]
 *   h2sim --dump-trace <file> --workload <spec> [options]
 *   h2sim --list-workloads | --list-designs | --help
 *
 * The design-spec grammar shown by --help and --list-designs is
 * generated from the design registry (sim/design_registry.h), so it
 * can never drift from what the parser accepts. Results render as
 * text, JSON or CSV (--format) to stdout or a file (--out).
 *
 * Sweeps are fault tolerant: a failing point (bad spec deep in a
 * grid, unreadable trace, injected fault, watchdog timeout) is
 * recorded in the report instead of killing the run, --journal makes
 * every completed point durable as it finishes, and --resume skips
 * journaled points after a crash. Ctrl-C flushes the journal and the
 * partial report before exiting.
 *
 * Exit codes:
 *   0    every sweep point succeeded
 *   1    internal failures
 *   2    usage/configuration errors (bad flag, bad design spec,
 *        invalid RunConfig, bad experiment file, unusable journal)
 *   3    the sweep completed but at least one point failed
 *   130  interrupted (SIGINT); journal and partial report were written
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/parse.h"
#include "sim/design_registry.h"
#include "sim/experiment.h"
#include "sim/fault_plan.h"
#include "sim/interrupt.h"
#include "sim/report.h"
#include "workloads/trace_file.h"
#include "workloads/workload_registry.h"
#include "workloads/workload_spec.h"

namespace {

void printUsage(std::FILE *out)
{
    std::fputs(
        "h2sim - Hybrid2 hybrid-memory simulator (HPCA'20 reproduction)\n"
        "\n"
        "Usage: h2sim --design <spec> --workload <spec> [options]\n"
        "       h2sim --experiment <file> [options]\n"
        "       h2sim --dump-trace <file> --workload <spec> [options]\n"
        "\n"
        "Options:\n"
        "  --design <spec>      design spec (repeatable); see grammar below\n"
        "  --workload <spec>    workload spec (repeatable): a Table 2 name\n"
        "                       (--list-workloads), trace:<path>, or\n"
        "                       mix:<a>+<b>[+...][:<n>]\n"
        "  --experiment <file>  run a declarative sweep (designs x\n"
        "                       workloads x config) from a file; mutually\n"
        "                       exclusive with --design/--workload\n"
        "  --dump-trace <file>  capture the --workload to a trace file\n"
        "                       (no simulation): text format for .txt/.text\n"
        "                       paths, compact binary otherwise; replay\n"
        "                       with --workload trace:<file>\n"
        "  --format <f>         output format: text|json|csv [text]\n"
        "  --out <path>         write results to <path> instead of stdout\n"
        "  --nm-mib <n>         near-memory (HBM) capacity in MiB [1024]\n"
        "  --fm-mib <n>         far-memory (DDR) capacity in MiB [16384]\n"
        "  --cores <n>          number of cores [8]\n"
        "  --instr <n>          simulated instructions per core [1500000]\n"
        "  --warmup <n>         warmup instructions per core [0]\n"
        "  --seed <n>           trace-generation seed [42]\n"
        "  --queue <on|off>     queued memory-controller model (FR-FCFS\n"
        "                       write queues with drain watermarks); off\n"
        "                       restores the analytic immediate-dispatch\n"
        "                       model [on]\n"
        "  --fm <dram|pcm>      far-memory technology: DDR4 DRAM, or a\n"
        "                       PCM-like NVM with asymmetric read/write\n"
        "                       latency and energy plus per-bank wear\n"
        "                       stats [dram]\n"
        "  --jobs <n>           parallel simulations; 0 = all cores [1]\n"
        "  --speedup            also report speedup over the FM-only\n"
        "                       baseline\n"
        "  --run-timeout <ms>   per-run wall-clock watchdog; a run past\n"
        "                       the deadline fails its sweep point [0=off]\n"
        "  --step-batch <n>     max trace records one core drains per\n"
        "                       scheduler dispatch; host-side knob,\n"
        "                       results are bit-identical for any n>=1\n"
        "                       [64]\n"
        "  --sim-threads <n>    worker threads advancing independent\n"
        "                       per-channel controller queues inside one\n"
        "                       simulation; results are bit-identical\n"
        "                       across values [1]\n"
        "  --batch-stats        emit sim.batchesDispatched and\n"
        "                       sim.avgBatchFill scheduler diagnostics\n"
        "                       into the detail metrics\n"
        "  --retries <n>        re-run a failed sweep point up to <n>\n"
        "                       times [0]\n"
        "  --journal <path>     append each completed sweep point to\n"
        "                       <path> (JSONL, fsync'd per record) so a\n"
        "                       crash loses at most the points in flight\n"
        "  --resume             with --journal: skip points already in\n"
        "                       the journal and simulate only the rest\n"
        "  --inject <plan>      deterministic fault injection for testing\n"
        "                       recovery paths: comma-separated\n"
        "                       fail=<key>, timeout=<key>, flaky=<key>:<n>\n"
        "                       with <key> = \"workload|design\"\n"
        "  --list-workloads     list registered workloads and exit\n"
        "  --list-designs       list registered designs (with their\n"
        "                       parameter schemas) and exit\n"
        "  -h, --help           show this help and exit\n"
        "\n"
        "Design spec grammar (generated from the design registry):\n",
        out);
    std::fputs(h2::sim::DesignRegistry::instance().grammarHelp().c_str(),
               out);
    std::fputs("\n", out);
    std::fputs(h2::workloads::workloadSpecGrammarHelp(), out);
}

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "h2sim: %s\n", msg.c_str());
    std::fprintf(stderr, "h2sim: try 'h2sim --help'\n");
    std::exit(2);
}

h2::u64 parseU64(const char *flag, const char *value)
{
    h2::u64 v = 0;
    if (!h2::tryParseU64(value, v))
        usageError(std::string(flag) + " expects a non-negative integer, "
                   "got '" + value + "'");
    return v;
}

void
listDesigns()
{
    using namespace h2;
    for (const sim::DesignInfo *d : sim::DesignRegistry::instance().all())
        std::printf("%-10s %s%s\n", d->name.c_str(),
                    d->description.c_str(),
                    d->figure12Order >= 0 ? " [Figure 12 lineup]" : "");
    std::printf("\nDesign spec grammar (generated from the registry):\n%s",
                sim::DesignRegistry::instance().grammarHelp().c_str());
}

} // namespace

int main(int argc, char **argv)
{
    using namespace h2;

    sim::ExperimentSpec experiment;
    std::string experimentFile;
    std::string dumpTracePath;
    std::string formatName;
    std::string outPath;
    bool jobsSet = false;
    bool configFlagSeen = false;
    u32 jobs = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                usageError(std::string(flag) + " requires a value");
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            printUsage(stdout);
            return 0;
        } else if (arg == "--list-workloads") {
            for (const auto &w : workloads::allWorkloads())
                std::printf("%-16s %-6s footprint=%llu MiB  paper-mpki=%.1f\n",
                            w.name.c_str(), to_string(w.cls).c_str(),
                            static_cast<unsigned long long>(w.footprintBytes >>
                                                            20),
                            w.paperMpki);
            return 0;
        } else if (arg == "--list-designs") {
            listDesigns();
            return 0;
        } else if (arg == "--design") {
            const char *spec = next("--design");
            sim::DesignSpec::ParseResult r = sim::DesignSpec::parse(spec);
            if (!r.ok())
                usageError(r.error);
            experiment.designs.push_back(r.spec->toString());
        } else if (arg == "--workload") {
            experiment.workloads.emplace_back(next("--workload"));
        } else if (arg == "--experiment") {
            experimentFile = next("--experiment");
        } else if (arg == "--dump-trace") {
            dumpTracePath = next("--dump-trace");
        } else if (arg == "--format") {
            formatName = next("--format");
            if (!sim::parseOutputFormat(formatName))
                usageError("--format expects text|json|csv, got '" +
                           formatName + "'");
        } else if (arg == "--out") {
            outPath = next("--out");
        } else if (arg == "--nm-mib") {
            experiment.config.nmBytes =
                parseU64("--nm-mib", next("--nm-mib")) << 20;
            configFlagSeen = true;
        } else if (arg == "--fm-mib") {
            experiment.config.fmBytes =
                parseU64("--fm-mib", next("--fm-mib")) << 20;
            configFlagSeen = true;
        } else if (arg == "--cores") {
            experiment.config.numCores =
                static_cast<u32>(parseU64("--cores", next("--cores")));
            configFlagSeen = true;
        } else if (arg == "--instr") {
            experiment.config.instrPerCore =
                parseU64("--instr", next("--instr"));
            configFlagSeen = true;
        } else if (arg == "--warmup") {
            experiment.config.warmupInstrPerCore =
                parseU64("--warmup", next("--warmup"));
            configFlagSeen = true;
        } else if (arg == "--seed") {
            experiment.config.seed = parseU64("--seed", next("--seed"));
            configFlagSeen = true;
        } else if (arg == "--queue") {
            std::string v = next("--queue");
            if (v == "on")
                experiment.config.queue = true;
            else if (v == "off")
                experiment.config.queue = false;
            else
                usageError("--queue expects on|off, got '" + v + "'");
            configFlagSeen = true;
        } else if (arg == "--fm") {
            std::string v = next("--fm");
            auto tech = h2::dram::parseFarMemTech(v);
            if (!tech)
                usageError("--fm expects dram|pcm, got '" + v + "'");
            experiment.config.fm = *tech;
            configFlagSeen = true;
        } else if (arg == "--jobs") {
            jobs = static_cast<u32>(parseU64("--jobs", next("--jobs")));
            jobsSet = true;
        } else if (arg == "--speedup") {
            experiment.speedup = true;
        } else if (arg == "--run-timeout") {
            experiment.config.runTimeoutMs =
                parseU64("--run-timeout", next("--run-timeout"));
            configFlagSeen = true;
        } else if (arg == "--step-batch") {
            experiment.config.stepBatch = static_cast<u32>(
                parseU64("--step-batch", next("--step-batch")));
            configFlagSeen = true;
        } else if (arg == "--sim-threads") {
            experiment.config.simThreads = static_cast<u32>(
                parseU64("--sim-threads", next("--sim-threads")));
            configFlagSeen = true;
        } else if (arg == "--batch-stats") {
            experiment.config.batchStats = true;
            configFlagSeen = true;
        } else if (arg == "--retries") {
            experiment.config.retries = static_cast<u32>(
                parseU64("--retries", next("--retries")));
            configFlagSeen = true;
        } else if (arg == "--journal") {
            experiment.journalPath = next("--journal");
        } else if (arg == "--resume") {
            experiment.resume = true;
        } else if (arg == "--inject") {
            const char *plan = next("--inject");
            std::string err;
            auto parsed = sim::FaultPlan::parse(plan, &err);
            if (!parsed)
                usageError(err);
            experiment.faults = *std::move(parsed);
        } else {
            std::fprintf(stderr, "h2sim: unknown option '%s'\n\n",
                         arg.c_str());
            printUsage(stderr);
            return 2;
        }
    }

    if (!dumpTracePath.empty()) {
        if (!experimentFile.empty())
            usageError("--dump-trace is mutually exclusive with "
                       "--experiment");
        if (!experiment.designs.empty())
            usageError("--dump-trace captures a workload, not a "
                       "simulation; drop --design");
        if (experiment.workloads.size() != 1)
            usageError("--dump-trace needs exactly one --workload");
        if (std::string cfgErr = sim::validateRunConfig(experiment.config);
            !cfgErr.empty())
            usageError("invalid run config: " + cfgErr);
        std::string err;
        auto w = workloads::resolveWorkload(experiment.workloads[0], &err);
        if (!w)
            usageError(err);
        if (w->trace && w->traceStreams != experiment.config.numCores)
            usageError("trace '" + experiment.workloads[0] +
                       "' was captured with " +
                       std::to_string(w->traceStreams) +
                       " streams; re-capture it with --cores " +
                       std::to_string(w->traceStreams));
        // Capture exactly what a System run would consume: one stream
        // per core, warmup + measured instructions each.
        workloads::TraceData data = workloads::captureTrace(
            *w, experiment.config.numCores, experiment.config.seed,
            experiment.config.warmupInstrPerCore +
                experiment.config.instrPerCore);
        workloads::TraceFormat traceFormat =
            workloads::traceFormatForPath(dumpTracePath);
        workloads::writeTraceFile(dumpTracePath, data, traceFormat);
        std::fprintf(stderr,
                     "h2sim: wrote %llu records (%u streams, %s) to %s\n",
                     static_cast<unsigned long long>(data.totalRecords()),
                     data.meta.streams,
                     traceFormat == workloads::TraceFormat::Text
                         ? "text" : "binary",
                     dumpTracePath.c_str());
        return 0;
    }

    if (!experimentFile.empty()) {
        if (!experiment.designs.empty() || !experiment.workloads.empty())
            usageError("--experiment is mutually exclusive with "
                       "--design/--workload");
        if (configFlagSeen)
            usageError("--experiment is mutually exclusive with the "
                       "config flags (--nm-mib, --fm-mib, --cores, "
                       "--instr, --warmup, --seed, --queue, --fm, "
                       "--run-timeout, --retries, --step-batch, "
                       "--sim-threads, --batch-stats); set them in the "
                       "experiment file instead");
        // CLI-only fields survive the file load (the file cannot set
        // them).
        bool wantSpeedup = experiment.speedup;
        std::string journalPath = std::move(experiment.journalPath);
        bool resume = experiment.resume;
        sim::FaultPlan faults = std::move(experiment.faults);
        std::string err;
        auto fromFile = sim::ExperimentSpec::parseFile(experimentFile, &err);
        if (!fromFile)
            usageError(err);
        experiment = *std::move(fromFile);
        experiment.speedup = experiment.speedup || wantSpeedup;
        experiment.journalPath = std::move(journalPath);
        experiment.resume = resume;
        experiment.faults = std::move(faults);
    } else {
        if (experiment.designs.empty() || experiment.workloads.empty())
            usageError("need at least one --design and one --workload "
                       "(or --experiment <file>)");
        for (const auto &spec : experiment.workloads) {
            std::string err;
            auto w = workloads::resolveWorkload(spec, &err);
            if (!w)
                usageError(err);
            if (w->trace && w->traceStreams != experiment.config.numCores)
                usageError("trace '" + spec + "' was captured with " +
                           std::to_string(w->traceStreams) +
                           " streams; run it with --cores " +
                           std::to_string(w->traceStreams));
            // Keep the resolved form: trace files load exactly once.
            experiment.resolvedWorkloads.push_back(*std::move(w));
        }
        if (std::string cfgErr = sim::validateRunConfig(experiment.config);
            !cfgErr.empty())
            usageError("invalid run config: " + cfgErr);
    }

    // CLI --format wins over the file's `format` directive; both
    // default to text.
    sim::OutputFormat format = sim::OutputFormat::Text;
    if (!formatName.empty())
        format = *sim::parseOutputFormat(formatName);
    else if (!experiment.format.empty())
        format = *sim::parseOutputFormat(experiment.format);

    // CLI --jobs (including 0 = all cores) wins over the file's jobs.
    if (jobsSet)
        experiment.jobs = jobs;

    if (experiment.resume && experiment.journalPath.empty())
        usageError("--resume needs --journal <path>");
    if (!experiment.journalPath.empty()) {
        // Fail before the sweep, not after hours of simulation.
        std::FILE *probe =
            std::fopen(experiment.journalPath.c_str(), "ab");
        if (!probe)
            usageError("cannot open journal '" + experiment.journalPath +
                       "' for appending");
        std::fclose(probe);
    }

    // Ctrl-C cancels in-flight runs cooperatively: completed points
    // are already journaled, and the partial report still renders.
    sim::installInterruptHandler();

    bool anyFailed = false;
    bool interrupted = false;
    try {
        // Config/setup fatals inside the sweep machinery (corrupt
        // journal, invalid run config) surface as FatalError here and
        // report as usage/configuration errors, like at parse time.
        ScopedFatalCapture capture;
        std::vector<sim::RunRecord> records =
            sim::runExperiment(experiment);
        for (const auto &rec : records) {
            anyFailed |= !rec.ok;
            interrupted |= rec.interrupted;
        }
        std::string rendered =
            sim::renderReport(experiment.config, records, format);
        sim::writeReport(rendered, outPath);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "h2sim: fatal: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "h2sim: %s\n", e.what());
        return 1;
    }
    if (interrupted || sim::interruptRequested()) {
        std::fprintf(stderr,
                     "h2sim: interrupted; completed points were "
                     "journaled and the partial report was written\n");
        return 130;
    }
    if (anyFailed) {
        std::fprintf(stderr,
                     "h2sim: sweep completed with failed points (see "
                     "report); exit 3\n");
        return 3;
    }
    return 0;
}
