/**
 * @file
 * Synthetic access-pattern generators.
 *
 * Each generator models one archetype the paper's benchmark suite spans:
 * streaming sweeps, strided grids, uniform random gathers, hot/cold
 * (Zipf-like) reuse, dependent pointer chases, and phase-changing
 * working sets. Generators are deterministic given a seed and emit
 * instruction gaps tuned so the target memory intensity is met exactly
 * in expectation.
 */

#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "workloads/trace.h"

namespace h2::workloads {

/** Parameters shared by every generator. */
struct GenParams
{
    u64 footprintBytes = 64 * 1024 * 1024;
    double memRatio = 0.25;  ///< memory ops per instruction
    double writeFrac = 0.3;
    u64 seed = 1;
    /** Bytes between successive accesses for sequential patterns;
     *  sub-64 B steps express intra-line spatial locality. */
    u32 accessStride = 8;
    /** Concurrent streams for streaming patterns. */
    u32 streams = 4;
    /** Fraction of the footprint that is hot (Zipf-like patterns). */
    double hotFraction = 0.1;
    /** Absolute hot-region size; overrides hotFraction when non-zero. */
    u64 hotBytes = 0;
    /** Probability an access goes to the hot region. */
    double hotProbability = 0.9;
    /** Accesses between working-set moves (phased patterns); 0 = off. */
    u64 phaseLength = 0;
    /**
     * Spatial burst length (in 64 B lines) of random/cold accesses:
     * after jumping to a random spot, the generator walks this many
     * consecutive lines before jumping again. Real workloads touch
     * memory in such runs (the paper's Figure 1 shows ~74% of each
     * 4 KB fetched line being used on average); 1 = worst-case
     * single-line touches (deepsjeng/omnetpp-like).
     */
    u32 burstLines = 1;
};

/** Base class handling gap synthesis and read/write mixing. */
class GeneratorBase : public TraceSource
{
  public:
    explicit GeneratorBase(const GenParams &params);

    TraceRecord next() final;

  protected:
    /** Produce the next virtual address. */
    virtual Addr nextAddr() = 0;

    GenParams p;
    Rng rng;

  private:
    /** 1/memRatio - 1, hoisted out of next(): the FP divide is
     *  loop-invariant and the precomputed value is bit-identical to
     *  evaluating it per record. */
    double gapBase = 0.0;
    double gapCarry = 0.0;
};

/** Sequential streams sweeping disjoint partitions of the footprint. */
class StreamGen : public GeneratorBase
{
  public:
    explicit StreamGen(const GenParams &params);

  protected:
    Addr nextAddr() override;

  private:
    std::vector<u64> cursors;
    u64 partitionBytes;
    u32 turn = 0;
};

/** Fixed-stride sweep (grid/stencil-like partial spatial locality). */
class StrideGen : public GeneratorBase
{
  public:
    StrideGen(const GenParams &params, u64 strideBytes);

  protected:
    Addr nextAddr() override;

  private:
    u64 stride;
    u64 cursor = 0;
};

/** Random jumps followed by short sequential bursts (burstLines). */
class RandomGen : public GeneratorBase
{
  public:
    explicit RandomGen(const GenParams &params);

  protected:
    Addr nextAddr() override;

  private:
    Addr cursor = 0;
    u32 remainingInBurst = 0;
};

/**
 * Hot/cold two-level reuse (Zipf-like). The hot region is walked as a
 * resident loop (it models a working set that lives in SRAM, like the
 * low-MPKI SPEC codes); the cold tail is uniform random over the rest.
 */
class ZipfGen : public GeneratorBase
{
  public:
    explicit ZipfGen(const GenParams &params);

  protected:
    Addr nextAddr() override;

  private:
    u64 hotBytes;
    u64 hotCursor = 0;
    Addr coldCursor = 0;
    u32 coldRemaining = 0;
};

/** Dependent pointer chase over a pseudo-random permutation cycle. */
class PointerChaseGen : public GeneratorBase
{
  public:
    explicit PointerChaseGen(const GenParams &params);

  protected:
    Addr nextAddr() override;

  private:
    u64 nodes;
    u64 pos;
    u64 mult;
    u64 inc;
};

/**
 * Sparse-algebra style mix: streaming sweeps over most of the
 * footprint (the matrix) interleaved with random gathers into a shared
 * region at its base (the vector). The gather region gives DRAM-level
 * reuse that caching and migration can both capture.
 */
class GatherGen : public GeneratorBase
{
  public:
    explicit GatherGen(const GenParams &params);

  protected:
    Addr nextAddr() override;

  private:
    u64 regionBytes;     ///< gather region at the footprint base
    u64 streamSpan;      ///< footprint minus the gather region
    std::vector<u64> cursors;
    u64 partitionBytes;
    u32 turn = 0;
};

/** Random touches within a window that relocates periodically. */
class PhasedGen : public GeneratorBase
{
  public:
    PhasedGen(const GenParams &params, u64 windowBytes);

  protected:
    Addr nextAddr() override;

  private:
    u64 window;
    u64 windowBase = 0;
    u64 accessesInPhase = 0;
};

/**
 * Deterministic weighted interleave of component sources, each offset
 * into its own slice of a shared virtual space - the per-stream engine
 * behind `mix:` workload specs (workloads/workload_spec.h). Records
 * pass through unchanged except for the address offset, so each
 * component keeps its own instruction gaps and read/write mix.
 */
class MixSource final : public TraceSource
{
  public:
    /** @param weights records taken from part @c i per scheduling
     *  round; all vectors must have equal, non-zero length. */
    MixSource(std::vector<std::unique_ptr<TraceSource>> parts,
              std::vector<Addr> offsets, std::vector<u32> weights);

    TraceRecord next() override;

  private:
    std::vector<std::unique_ptr<TraceSource>> parts;
    std::vector<Addr> offsets;
    std::vector<u32> weights;
    u32 turn = 0;
    u32 leftInTurn;
};

} // namespace h2::workloads
