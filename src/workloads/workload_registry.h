/**
 * @file
 * The 30-workload suite mirroring the paper's Table 2.
 *
 * The paper evaluates 21 SPEC2017 (multi-programmed, 8 instances) and
 * 9 NAS (multi-threaded, 8 threads) benchmarks grouped into high /
 * medium / low MPKI classes. Each entry here is a synthetic stand-in
 * with the same name, class, footprint and a pattern chosen to match
 * the original's qualitative behaviour (streaming, pointer-chasing,
 * hot/cold reuse, ...). DESIGN.md documents the substitution.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workloads/generators.h"
#include "workloads/trace.h"

namespace h2::workloads {

struct TraceData; // workloads/trace_file.h

enum class MpkiClass : u8 { High, Medium, Low };

std::string to_string(MpkiClass cls);

enum class Pattern : u8 {
    Stream,       ///< sequential sweeps (stencils, streaming kernels)
    Stride,       ///< fixed-stride sweeps (grids, multigrid)
    Random,       ///< uniform touches over the whole footprint
    Gather,       ///< streams + random gathers into a shared region
    Zipf,         ///< hot/cold reuse (integer codes)
    PointerChase, ///< dependent chains (graph/tree codes)
    Phased,       ///< moving working-set windows
};

struct Workload
{
    std::string name;
    MpkiClass cls = MpkiClass::Medium;
    bool multithreaded = false; ///< MT: shared space; MP: 8 instances
    u64 footprintBytes = 0;     ///< total job footprint (paper Table 2)
    double memRatio = 0.1;
    double writeFrac = 0.3;
    Pattern pattern = Pattern::Random;
    u64 patternParam = 0;       ///< stride bytes / phase window bytes
    double hotFraction = 0.1;
    u64 hotBytes = 0; ///< absolute hot-region size (overrides fraction)
    double hotProbability = 0.9;
    u64 phaseLength = 0;
    u32 streams = 4;
    u32 accessStride = 8;
    u32 burstLines = 1; ///< spatial burst length of random/cold touches
    u32 mlp = 8;                ///< sustainable outstanding misses/core

    /** Paper-reported MPKI (Table 2), for reference output. */
    double paperMpki = 0.0;

    // ----- non-synthetic workload kinds (workloads/workload_spec.h) --

    /** The spec this workload was resolved from when it differs from
     *  @c name ("trace:<path>" replays keep the captured workload's
     *  name for Metrics identity); see cacheName(). */
    std::string spec;

    /** Captured records to replay instead of a generator. */
    std::shared_ptr<const TraceData> trace;
    u32 traceStreams = 0;      ///< per-core streams in @c trace
    u64 traceVirtualBytes = 0; ///< virtual space @c trace's records use

    /** Components of an interleaved `mix:` workload (empty otherwise);
     *  each gets its own page-aligned virtual-space slice. */
    std::vector<Workload> mixParts;
    u32 mixWeight = 1; ///< records from mixParts[0] per 1 of the others

    /** Key for memoized runners: distinguishes a trace replay from the
     *  synthetic workload it was captured from. */
    const std::string &cacheName() const { return spec.empty() ? name
                                                               : spec; }

    /** Virtual footprint seen by one core's trace. */
    u64 perCoreFootprint(u32 numCores) const;

    /** Total virtual address space the job needs. */
    u64 totalVirtualBytes(u32 numCores) const;

    /** Build core @p core's trace source. */
    std::unique_ptr<TraceSource> makeSource(u32 core, u32 numCores,
                                            u64 seed) const;
};

/** All 30 workloads in Table 2 order (high to low MPKI). */
const std::vector<Workload> &allWorkloads();

/** The ten workloads of one MPKI class. */
std::vector<Workload> workloadsByClass(MpkiClass cls);

/** Lookup by name; nullptr if unknown. */
const Workload *tryFindWorkload(const std::string &name);

/** Lookup by name; fatal if unknown. */
const Workload &findWorkload(const std::string &name);

/** A small representative subset (one per class and suite) used by the
 *  benches' quick mode. */
std::vector<Workload> quickSuite();

} // namespace h2::workloads
