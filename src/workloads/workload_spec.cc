#include "workloads/workload_spec.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/log.h"
#include "common/parse.h"

namespace h2::workloads {

namespace {

constexpr u32 kMaxMixRatio = 1024;
constexpr u32 kPage = 4096;

/**
 * Loaded traces, shared by path while any resolved Workload is alive.
 * weak_ptr keeps repeated resolutions of one spec (validation pass,
 * then the run; every sweep worker) from re-reading the file without
 * pinning finished traces in memory forever.
 */
std::shared_ptr<const TraceData>
loadTraceCached(const std::string &path, std::string *error)
{
    static std::mutex mu;
    static std::map<std::string, std::weak_ptr<const TraceData>> cache;

    std::lock_guard<std::mutex> lock(mu);
    if (auto it = cache.find(path); it != cache.end())
        if (auto live = it->second.lock())
            return live;
    std::optional<TraceData> data = readTraceFile(path, error);
    if (!data)
        return nullptr;
    auto shared = std::make_shared<const TraceData>(*std::move(data));
    cache[path] = shared;
    return shared;
}

std::optional<Workload>
resolveMix(const std::string &spec, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = detail::concat("bad workload spec '", spec, "': ",
                                    why);
        return std::nullopt;
    };

    std::string_view rest = std::string_view(spec).substr(4);
    u32 leadWeight = 1;
    if (auto colon = rest.find(':'); colon != std::string_view::npos) {
        std::string_view ratio = rest.substr(colon + 1);
        rest = rest.substr(0, colon);
        u64 v = 0;
        if (!tryParseU64(ratio, v) || v == 0 || v > kMaxMixRatio)
            return fail(detail::concat(
                "bad ratio '", ratio, "' (expected an integer in 1..",
                kMaxMixRatio,
                ": records from the first component per record from "
                "each other)"));
        leadWeight = static_cast<u32>(v);
    }

    std::vector<Workload> parts;
    size_t start = 0;
    for (size_t i = 0; i <= rest.size(); ++i) {
        if (i < rest.size() && rest[i] != '+')
            continue;
        std::string_view name = rest.substr(start, i - start);
        start = i + 1;
        if (name.empty())
            return fail("empty mix component");
        const Workload *w = tryFindWorkload(std::string(name));
        if (!w)
            return fail(detail::concat(
                "unknown mix component '", name,
                "' (components must be registry workloads; see h2sim "
                "--list-workloads)"));
        parts.push_back(*w);
    }
    if (parts.size() < 2)
        return fail("a mix needs at least two '+'-separated components");
    return mixWorkload(std::move(parts), leadWeight);
}

} // namespace

std::optional<Workload>
resolveWorkload(const std::string &spec, std::string *error)
{
    if (spec.starts_with("trace:")) {
        std::string path = spec.substr(6);
        if (path.empty()) {
            if (error)
                *error = detail::concat("bad workload spec '", spec,
                                        "': trace: needs a file path");
            return std::nullopt;
        }
        auto data = loadTraceCached(path, error);
        if (!data)
            return std::nullopt;
        return traceWorkload(path, std::move(data));
    }
    if (spec.starts_with("mix:"))
        return resolveMix(spec, error);
    if (const Workload *w = tryFindWorkload(spec))
        return *w;
    if (error)
        *error = detail::concat(
            "unknown workload '", spec,
            "' (see h2sim --list-workloads; trace:<path> and "
            "mix:<a>+<b>[:<n>] specs are also accepted)");
    return std::nullopt;
}

Workload
resolveWorkloadOrFatal(const std::string &spec)
{
    std::string error;
    if (auto w = resolveWorkload(spec, &error))
        return *std::move(w);
    h2_fatal(error);
}

Workload
traceWorkload(const std::string &path,
              std::shared_ptr<const TraceData> data)
{
    h2_assert(data != nullptr, "traceWorkload needs loaded data");
    const TraceMeta &meta = data->meta;

    Workload w;
    w.name = meta.name.empty() ? "trace:" + path : meta.name;
    w.spec = "trace:" + path;
    w.multithreaded = meta.multithreaded;
    w.footprintBytes = meta.footprintBytes;
    w.mlp = meta.mlp;
    w.traceStreams = meta.streams;
    w.traceVirtualBytes = meta.virtualBytes;

    // Derived intensity, for reference output only (replay reads the
    // recorded gaps directly).
    u64 instrs = 0, writes = 0, records = 0;
    for (const auto &stream : data->streams)
        for (const TraceRecord &rec : stream) {
            instrs += u64(rec.instGap) + 1;
            writes += rec.type == AccessType::Write;
            ++records;
        }
    w.memRatio = instrs ? double(records) / double(instrs) : 0.0;
    w.writeFrac = records ? double(writes) / double(records) : 0.0;

    w.trace = std::move(data);
    return w;
}

Workload
mixWorkload(std::vector<Workload> parts, u32 leadWeight)
{
    h2_assert(parts.size() >= 2, "a mix needs at least two components");
    h2_assert(leadWeight >= 1, "mix lead weight must be at least 1");
    for (const Workload &p : parts)
        h2_assert(!p.trace && p.mixParts.empty(),
                  "mix components must be synthetic registry workloads");

    Workload m;
    m.cls = MpkiClass::Low; // raised below to the hottest component
    m.mlp = 0;              // raised below to the widest component
    std::string names;
    double weightSum = 0.0, instrSum = 0.0, writeSum = 0.0;
    for (size_t i = 0; i < parts.size(); ++i) {
        const Workload &p = parts[i];
        double weight = i == 0 ? leadWeight : 1.0;
        names += (i ? "+" : "") + p.name;
        m.footprintBytes += p.footprintBytes;
        m.mlp = std::max(m.mlp, p.mlp);
        // High < Medium < Low: the most memory-intensive component
        // classes the mix.
        m.cls = std::min(m.cls, p.cls);
        // A part that never touches memory would make instrSum
        // non-finite and poison every derived intensity stat with
        // NaN; reject it here rather than emitting garbage metrics.
        h2_assert(p.memRatio > 0.0, "mix component '", p.name,
                  "' has zero memory intensity (memRatio)");
        weightSum += weight;
        instrSum += weight / p.memRatio;
        writeSum += weight * p.writeFrac;
    }
    m.name = "mix:";
    m.name += names;
    if (leadWeight > 1) {
        m.name += ':';
        m.name += std::to_string(leadWeight);
    }
    // One shared virtual space (the mix offsets each component into its
    // own slice), so System places every stream from virtual base 0.
    m.multithreaded = true;
    m.memRatio = weightSum / instrSum;
    m.writeFrac = writeSum / weightSum;
    m.mixWeight = leadWeight;
    m.mixParts = std::move(parts);
    return m;
}

const char *
workloadSpecGrammarHelp()
{
    return "Workload specs: a Table 2 name (--list-workloads), "
           "trace:<path> to replay\n"
           "a captured trace, or mix:<a>+<b>[+...][:<n>] for an "
           "interleaved multi-\n"
           "program mix (<n> records from <a> per record from each "
           "other component).\n";
}

} // namespace h2::workloads
