#include "workloads/workload_registry.h"

#include "common/log.h"
#include "common/units.h"
#include "workloads/trace_file.h"

namespace h2::workloads {

std::string
to_string(MpkiClass cls)
{
    switch (cls) {
      case MpkiClass::High: return "High";
      case MpkiClass::Medium: return "Medium";
      case MpkiClass::Low: return "Low";
    }
    return "?";
}

u64
Workload::perCoreFootprint(u32 numCores) const
{
    if (trace)
        return multithreaded ? traceVirtualBytes
                             : traceVirtualBytes / traceStreams;
    if (multithreaded)
        return footprintBytes;
    u64 per = footprintBytes / numCores;
    return std::max<u64>(per & ~u64(4095), 4096);
}

u64
Workload::totalVirtualBytes(u32 numCores) const
{
    if (trace)
        return traceVirtualBytes;
    if (!mixParts.empty()) {
        // One page-aligned slice per component in a shared space.
        u64 total = 0;
        for (const Workload &part : mixParts)
            total += (part.totalVirtualBytes(numCores) + 4095) &
                     ~u64(4095);
        return total;
    }
    if (multithreaded)
        return footprintBytes;
    return perCoreFootprint(numCores) * numCores;
}

std::unique_ptr<TraceSource>
Workload::makeSource(u32 core, u32 numCores, u64 seed) const
{
    if (trace) {
        if (numCores != traceStreams)
            h2_fatal("trace '", cacheName(), "' was captured with ",
                     traceStreams, " streams; run it with --cores ",
                     traceStreams, " (got ", numCores, ")");
        return std::make_unique<FileTraceSource>(trace, core);
    }
    if (!mixParts.empty()) {
        std::vector<std::unique_ptr<TraceSource>> sources;
        std::vector<Addr> offsets;
        std::vector<u32> weights;
        Addr base = 0;
        for (size_t i = 0; i < mixParts.size(); ++i) {
            const Workload &part = mixParts[i];
            // Per-stream offsetting: each component instance lands in
            // its own region (multi-program parts additionally split
            // per core, exactly as a standalone run of that part).
            Addr subBase = part.multithreaded
                ? 0 : Addr(core) * part.perCoreFootprint(numCores);
            sources.push_back(part.makeSource(
                core, numCores, seed + i * 0x9e3779b97f4a7c15ULL));
            offsets.push_back(base + subBase);
            weights.push_back(i == 0 ? mixWeight : 1);
            base += (part.totalVirtualBytes(numCores) + 4095) &
                    ~u64(4095);
        }
        return std::make_unique<MixSource>(std::move(sources),
                                           std::move(offsets),
                                           std::move(weights));
    }

    GenParams p;
    p.footprintBytes = perCoreFootprint(numCores);
    p.memRatio = memRatio;
    p.writeFrac = writeFrac;
    p.seed = splitmix64(seed ^ (u64(core) << 32)
                        ^ std::hash<std::string>{}(name));
    p.accessStride = accessStride;
    p.streams = streams;
    p.hotFraction = hotFraction;
    p.hotBytes = hotBytes;
    p.hotProbability = hotProbability;
    p.phaseLength = phaseLength;
    p.burstLines = burstLines;

    switch (pattern) {
      case Pattern::Stream:
        return std::make_unique<StreamGen>(p);
      case Pattern::Stride:
        return std::make_unique<StrideGen>(p, patternParam);
      case Pattern::Random:
        return std::make_unique<RandomGen>(p);
      case Pattern::Gather:
        return std::make_unique<GatherGen>(p);
      case Pattern::Zipf:
        return std::make_unique<ZipfGen>(p);
      case Pattern::PointerChase:
        return std::make_unique<PointerChaseGen>(p);
      case Pattern::Phased:
        return std::make_unique<PhasedGen>(p, patternParam);
    }
    h2_panic("unknown pattern");
}

namespace {

using enum Pattern;

Workload
make(const std::string &name, MpkiClass cls, bool mt, double footprintGb,
     double memRatio, double writeFrac, Pattern pat, double paperMpki)
{
    Workload w;
    w.name = name;
    w.cls = cls;
    w.multithreaded = mt;
    w.footprintBytes = static_cast<u64>(footprintGb * double(GiB));
    w.memRatio = memRatio;
    w.writeFrac = writeFrac;
    w.pattern = pat;
    w.paperMpki = paperMpki;
    return w;
}

std::vector<Workload>
buildRegistry()
{
    std::vector<Workload> v;

    // ----- High MPKI (paper Table 2, top group) ----------------------
    // cg.D: sparse CG - the matrix is streamed while the x-vector is
    // gathered randomly; the vector region is reused across iterations.
    v.push_back(make("cg.D", MpkiClass::High, true, 7.8, 0.26, 0.15,
                     Gather, 90.6));
    v.back().hotBytes = 12 * MiB;
    v.back().hotProbability = 0.30;
    // sp.D / bt.D / lu.D: NAS stencil sweeps - streaming.
    v.push_back(make("sp.D", MpkiClass::High, true, 11.2, 0.26, 0.40,
                     Stream, 30.1));
    v.back().streams = 8;
    v.push_back(make("bt.D", MpkiClass::High, true, 10.7, 0.26, 0.35,
                     Stream, 30.1));
    v.push_back(make("fotonik3d", MpkiClass::High, false, 6.4, 0.24, 0.30,
                     Stream, 28.1));
    v.back().streams = 2;
    v.push_back(make("lbm", MpkiClass::High, false, 3.1, 0.23, 0.50,
                     Stream, 27.4));
    // bwaves: long-stride sweeps (blocked solver).
    v.push_back(make("bwaves", MpkiClass::High, false, 3.3, 0.027, 0.25,
                     Stride, 26.8));
    v.back().patternParam = 1024;
    v.push_back(make("lu.D", MpkiClass::High, true, 2.9, 0.22, 0.40,
                     Stream, 25.8));
    v.back().streams = 8;
    // mcf: dependent pointer chasing, small footprint, low MLP.
    v.push_back(make("mcf", MpkiClass::High, false, 0.1, 0.030, 0.25,
                     PointerChase, 25.8));
    v.back().mlp = 2;
    v.push_back(make("gcc", MpkiClass::High, false, 1.6, 0.022, 0.30,
                     Random, 21.2));
    v.back().burstLines = 8;
    v.push_back(make("roms", MpkiClass::High, false, 2.3, 0.135, 0.35,
                     Stream, 15.5));

    // ----- Medium MPKI ------------------------------------------------
    // mg.C: multigrid - strided levels.
    v.push_back(make("mg.C", MpkiClass::Medium, true, 2.8, 0.0145, 0.30,
                     Stride, 14.2));
    v.back().patternParam = 512;
    // omnetpp: discrete-event graph walk - pointer chase, poor spatial
    // locality (the workload that breaks page-granular caches).
    v.push_back(make("omnetpp", MpkiClass::Medium, false, 1.5, 0.011, 0.30,
                     PointerChase, 9.8));
    v.back().mlp = 2;
    v.push_back(make("is.C", MpkiClass::Medium, true, 1.0, 0.010, 0.35,
                     Random, 9.0));
    v.back().burstLines = 16;
    // dc.B: out-of-core data cube - pure streaming, no reuse.
    v.push_back(make("dc.B", MpkiClass::Medium, true, 4.0, 0.075, 0.45,
                     Stream, 8.4));
    v.back().streams = 8;
    v.push_back(make("ua.D", MpkiClass::Medium, true, 3.1, 0.008, 0.30,
                     Random, 7.8));
    v.back().burstLines = 16;
    v.push_back(make("xz", MpkiClass::Medium, false, 0.7, 0.040, 0.35,
                     Zipf, 5.6));
    v.back().hotBytes = 256 * KiB;
    v.back().burstLines = 32;
    v.back().hotProbability = 0.86;
    v.push_back(make("parest", MpkiClass::Medium, false, 0.2, 0.043, 0.30,
                     Zipf, 4.3));
    v.back().hotBytes = 256 * KiB;
    v.back().burstLines = 16;
    v.back().hotProbability = 0.90;
    v.push_back(make("cactus", MpkiClass::Medium, false, 0.8, 0.0035, 0.30,
                     Stride, 3.4));
    v.back().patternParam = 2048;
    v.push_back(make("ft.C", MpkiClass::Medium, true, 0.9, 0.0032, 0.35,
                     Stride, 3.1));
    v.back().patternParam = 1024;
    v.push_back(make("cam4", MpkiClass::Medium, false, 0.3, 0.022, 0.30,
                     Zipf, 2.2));
    v.back().hotBytes = 128 * KiB;
    v.back().burstLines = 16;
    v.back().hotProbability = 0.90;

    // ----- Low MPKI ----------------------------------------------------
    // The low-MPKI SPEC codes keep their working sets almost entirely
    // in SRAM; the hot regions below are sized to fit the private
    // caches so only the cold tail reaches memory, like the originals.
    v.push_back(make("wrf", MpkiClass::Low, false, 0.4, 0.0175, 0.30,
                     Zipf, 1.4));
    v.back().hotBytes = 128 * KiB;
    v.back().burstLines = 16;
    v.back().hotProbability = 0.92;
    v.push_back(make("xalanc", MpkiClass::Low, false, 0.1, 0.022, 0.25,
                     Zipf, 1.1));
    v.back().hotBytes = 128 * KiB;
    v.back().burstLines = 8;
    v.back().hotProbability = 0.95;
    v.push_back(make("imagick", MpkiClass::Low, false, 0.4, 0.009, 0.40,
                     Stream, 1.1));
    v.push_back(make("x264", MpkiClass::Low, false, 0.3, 0.018, 0.35,
                     Zipf, 0.9));
    v.back().hotBytes = 128 * KiB;
    v.back().burstLines = 16;
    v.back().hotProbability = 0.95;
    v.push_back(make("perlbench", MpkiClass::Low, false, 0.2, 0.014, 0.30,
                     Zipf, 0.7));
    v.back().hotBytes = 128 * KiB;
    v.back().burstLines = 8;
    v.back().hotProbability = 0.95;
    v.push_back(make("blender", MpkiClass::Low, false, 0.2, 0.012, 0.30,
                     Zipf, 0.7));
    v.back().hotBytes = 128 * KiB;
    v.back().burstLines = 8;
    v.back().hotProbability = 0.94;
    // deepsjeng: huge hash table touched rarely - wide footprint, very
    // low intensity, no spatial locality.
    v.push_back(make("deepsjeng", MpkiClass::Low, false, 3.4, 0.0006, 0.30,
                     Random, 0.3));
    v.push_back(make("nab", MpkiClass::Low, false, 0.2, 0.0067, 0.30,
                     Zipf, 0.2));
    v.back().hotBytes = 64 * KiB;
    v.back().burstLines = 8;
    v.back().hotProbability = 0.97;
    v.push_back(make("leela", MpkiClass::Low, false, 0.1, 0.0033, 0.30,
                     Zipf, 0.1));
    v.back().hotBytes = 32 * KiB;
    v.back().burstLines = 4;
    v.back().hotProbability = 0.97;
    v.push_back(make("namd", MpkiClass::Low, false, 0.1, 0.0033, 0.30,
                     Zipf, 0.13));
    v.back().hotBytes = 32 * KiB;
    v.back().burstLines = 4;
    v.back().hotProbability = 0.96;

    h2_assert(v.size() == 30, "registry must contain 30 workloads");
    return v;
}

} // namespace

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> registry = buildRegistry();
    return registry;
}

std::vector<Workload>
workloadsByClass(MpkiClass cls)
{
    std::vector<Workload> out;
    for (const auto &w : allWorkloads())
        if (w.cls == cls)
            out.push_back(w);
    return out;
}

const Workload *
tryFindWorkload(const std::string &name)
{
    for (const auto &w : allWorkloads())
        if (w.name == name)
            return &w;
    return nullptr;
}

const Workload &
findWorkload(const std::string &name)
{
    if (const Workload *w = tryFindWorkload(name))
        return *w;
    h2_fatal("unknown workload: ", name);
}

std::vector<Workload>
quickSuite()
{
    // One MT and one MP workload per MPKI class, covering the pattern
    // archetypes that differentiate the designs.
    return {
        findWorkload("cg.D"),      // high, MT, random
        findWorkload("lbm"),       // high, MP, stream
        findWorkload("xz"),        // medium, MP, hot/cold reuse
        findWorkload("dc.B"),      // medium, MT, streaming no-reuse
        findWorkload("xalanc"),    // low, MP, hot/cold
        findWorkload("deepsjeng"), // low, MP, wide sparse
    };
}

} // namespace h2::workloads
