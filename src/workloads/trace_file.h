/**
 * @file
 * Trace-file I/O: capture any TraceSource-driven workload to disk and
 * replay it bit-identically through the same simulation pipeline.
 *
 * Two on-disk formats share one in-memory representation (TraceData):
 *
 * Text (one record per line; hand-editable, diff-friendly):
 *
 *   h2trace text 1          # format line: magic word, format, version
 *   name lbm                # header directives, then a %% separator
 *   streams 2
 *   multithreaded 0
 *   footprint 3328599654
 *   vspace 3328597504
 *   mlp 8
 *   %%
 *   0 19 0x1a40 R           # <stream> <instGap> <vaddr> <R|W>
 *   1 19 0x880 W
 *
 * Binary (compact; little-endian, delta-encoded):
 *
 *   offset  size  field
 *   0       8     magic  { 0x89 'H' '2' 'T' 'R' 'A' 'C' 'E' }
 *   8       4     version (= 1)
 *   12      4     streams
 *   16      8     footprintBytes
 *   24      8     virtualBytes
 *   32      4     mlp
 *   36      1     multithreaded (0|1)
 *   37      3     reserved (zero)
 *   40      4     name length, then that many name bytes
 *   ...     8*n   per-stream record counts
 *   ...           records, stream-major; each record is two LEB128
 *                 varints: (instGap << 1 | isWrite) and the zigzag
 *                 delta of vaddr against the stream's previous vaddr
 *
 * Readers validate everything on open (magic, version, header ranges,
 * record bounds, truncation) and report errors with the offending line
 * (text) or byte offset (binary); a malformed file can never crash the
 * simulator. Format detection is automatic: binary files start with a
 * 0x89 byte that no text trace can begin with.
 */

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "workloads/workload_registry.h"

namespace h2::workloads {

enum class TraceFormat : u8 { Text, Binary };

/** Pick a format for @p path: ".txt"/".text" mean text, else binary. */
TraceFormat traceFormatForPath(const std::string &path);

/** Everything a replay needs to rebuild the captured Workload's
 *  simulation-visible behaviour (see Workload::makeSource). */
struct TraceMeta
{
    std::string name;        ///< captured workload's name (Metrics identity)
    u32 streams = 1;         ///< per-core record streams; replay needs
                             ///< numCores == streams
    bool multithreaded = false;
    u64 footprintBytes = 0;  ///< reported footprint (Metrics identity)
    u64 virtualBytes = 0;    ///< total virtual space the records address
    u32 mlp = 8;             ///< per-core outstanding-miss limit

    bool operator==(const TraceMeta &) const = default;
};

/** A fully-loaded multi-stream trace. */
struct TraceData
{
    TraceMeta meta;
    std::vector<std::vector<TraceRecord>> streams;

    u64 totalRecords() const;
};

/**
 * Capture @p workload exactly as a System would consume it: one stream
 * per core, each covering at least @p instrPerStream instructions
 * (records stop at the first one that crosses the budget, matching
 * CoreModel's stepping). Works for any workload kind - synthetic,
 * mix, or an already-loaded trace.
 */
TraceData captureTrace(const Workload &workload, u32 numCores, u64 seed,
                       u64 instrPerStream);

/** Serialize @p data to @p path; fatal on I/O failure. */
void writeTraceFile(const std::string &path, const TraceData &data,
                    TraceFormat format);

/** Parse and validate @p path (format auto-detected). On failure
 *  returns nullopt and sets @p error to a message naming the file and
 *  the offending line (text) or byte offset (binary). */
std::optional<TraceData> readTraceFile(const std::string &path,
                                       std::string *error);

/** Replays one captured stream; loops (with a one-time warning) if the
 *  run consumes more instructions than were captured. */
class FileTraceSource final : public TraceSource
{
  public:
    FileTraceSource(std::shared_ptr<const TraceData> data, u32 stream);

    TraceRecord next() override;

  private:
    std::shared_ptr<const TraceData> data;
    const std::vector<TraceRecord> *records;
    u64 pos = 0;
    bool warnedWrap = false;
};

} // namespace h2::workloads
