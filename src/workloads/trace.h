/**
 * @file
 * Trace record/source interfaces.
 *
 * The paper drives its simulator from Pin-captured SPEC2017/NAS traces;
 * this reproduction drives the same pipeline from deterministic
 * synthetic generators (one per paper benchmark, see
 * workload_registry.h), from trace files captured with
 * `h2sim --dump-trace` and replayed via `trace:<path>` specs
 * (workloads/trace_file.h), or from interleaved multi-program mixes
 * (`mix:` specs, workloads/workload_spec.h).
 */

#pragma once

#include "common/types.h"

namespace h2::workloads {

/** One memory operation plus the non-memory work preceding it. */
struct TraceRecord
{
    u32 instGap = 0;  ///< non-memory instructions before this access
    Addr vaddr = 0;   ///< virtual byte address within the workload
    AccessType type = AccessType::Read;

    bool operator==(const TraceRecord &) const = default;
};

/** An infinite, deterministic stream of trace records. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;
    virtual TraceRecord next() = 0;
};

} // namespace h2::workloads
