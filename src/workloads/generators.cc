#include "workloads/generators.h"

#include "common/log.h"

namespace h2::workloads {

GeneratorBase::GeneratorBase(const GenParams &params)
    : p(params), rng(params.seed)
{
    h2_assert(p.footprintBytes >= 4096, "footprint too small");
    h2_assert(p.memRatio > 0.0 && p.memRatio <= 1.0, "bad memRatio");
    h2_assert(p.writeFrac >= 0.0 && p.writeFrac <= 1.0, "bad writeFrac");
    gapBase = 1.0 / p.memRatio - 1.0;
}

TraceRecord
GeneratorBase::next()
{
    TraceRecord rec;
    // Expected instructions per access = 1/memRatio; the gap excludes
    // the access itself. Carry the fractional part so the ratio is met
    // exactly in the long run.
    double gap = gapBase + gapCarry;
    rec.instGap = static_cast<u32>(gap);
    gapCarry = gap - rec.instGap;
    // Generators already bound their addresses; the modulo is a
    // safety net whose u64 divide would otherwise tax every record.
    Addr a = nextAddr();
    rec.vaddr = a < p.footprintBytes ? a : a % p.footprintBytes;
    rec.type = rng.chance(p.writeFrac) ? AccessType::Write
                                       : AccessType::Read;
    return rec;
}

StreamGen::StreamGen(const GenParams &params)
    : GeneratorBase(params)
{
    u32 n = std::max<u32>(1, p.streams);
    partitionBytes = p.footprintBytes / n;
    h2_assert(partitionBytes > 0, "too many streams for footprint");
    cursors.resize(n);
    for (u32 s = 0; s < n; ++s)
        cursors[s] = rng.below(partitionBytes);
}

Addr
StreamGen::nextAddr()
{
    u32 s = turn;
    if (++turn == cursors.size())
        turn = 0;
    u64 addr = u64(s) * partitionBytes + cursors[s];
    // Wrap by subtraction: one stride past the end never reaches
    // 2*partitionBytes, so the result matches the modulo exactly.
    u64 c = cursors[s] + p.accessStride;
    if (c >= partitionBytes)
        c = p.accessStride <= partitionBytes ? c - partitionBytes
                                             : c % partitionBytes;
    cursors[s] = c;
    return addr;
}

StrideGen::StrideGen(const GenParams &params, u64 strideBytes)
    : GeneratorBase(params), stride(strideBytes)
{
    h2_assert(stride > 0 && stride < p.footprintBytes, "bad stride");
}

Addr
StrideGen::nextAddr()
{
    u64 addr = cursor;
    cursor += stride;
    if (cursor >= p.footprintBytes)
        // Restart offset by one element to touch new lines each sweep.
        cursor = (cursor + p.accessStride) % stride;
    return addr;
}

RandomGen::RandomGen(const GenParams &params)
    : GeneratorBase(params)
{
}

Addr
RandomGen::nextAddr()
{
    if (remainingInBurst == 0) {
        cursor = rng.below(p.footprintBytes) & ~Addr(63);
        remainingInBurst = p.burstLines;
    } else {
        cursor += 64; // footprint >= 4096, so one subtract wraps
        if (cursor >= p.footprintBytes)
            cursor -= p.footprintBytes;
    }
    --remainingInBurst;
    return cursor;
}

ZipfGen::ZipfGen(const GenParams &params)
    : GeneratorBase(params)
{
    hotBytes = p.hotBytes
        ? p.hotBytes
        : static_cast<u64>(p.footprintBytes * p.hotFraction);
    hotBytes = std::min(std::max<u64>(4096, hotBytes),
                        p.footprintBytes / 2);
}

Addr
ZipfGen::nextAddr()
{
    if (rng.chance(p.hotProbability)) {
        // Resident loop over the hot region, one line per step.
        Addr a = hotCursor;
        hotCursor += 64; // hotBytes >= 4096, so one subtract wraps
        if (hotCursor >= hotBytes)
            hotCursor -= hotBytes;
        return a;
    }
    // Cold tail: random jumps with short sequential bursts.
    u64 coldSpan = p.footprintBytes - hotBytes;
    if (coldRemaining == 0) {
        coldCursor = rng.below(coldSpan) & ~Addr(63);
        coldRemaining = p.burstLines;
    } else {
        coldCursor += 64; // coldSpan >= footprint/2 >= 2048 > 64
        if (coldCursor >= coldSpan)
            coldCursor -= coldSpan;
    }
    --coldRemaining;
    return hotBytes + coldCursor;
}

PointerChaseGen::PointerChaseGen(const GenParams &params)
    : GeneratorBase(params)
{
    // Full-period LCG over a power-of-two node count: a % 8 == 5,
    // c odd (Hull-Dobell).
    nodes = u64(1) << floorLog2(p.footprintBytes / 64);
    pos = rng.below(nodes);
    mult = 6364136223846793005ULL;
    inc = splitmix64(p.seed) | 1;
}

Addr
PointerChaseGen::nextAddr()
{
    pos = (mult * pos + inc) & (nodes - 1);
    return pos * 64;
}

GatherGen::GatherGen(const GenParams &params)
    : GeneratorBase(params)
{
    regionBytes = std::min<u64>(
        p.hotBytes ? p.hotBytes : u64(p.footprintBytes * p.hotFraction),
        p.footprintBytes / 2);
    h2_assert(regionBytes >= 4096, "gather region too small");
    streamSpan = p.footprintBytes - regionBytes;
    u32 n = std::max<u32>(1, p.streams);
    partitionBytes = streamSpan / n;
    cursors.resize(n);
    for (u32 s = 0; s < n; ++s)
        cursors[s] = rng.below(partitionBytes);
}

Addr
GatherGen::nextAddr()
{
    if (rng.chance(p.hotProbability))
        return rng.below(regionBytes) & ~Addr(7);
    u32 s = turn;
    if (++turn == cursors.size())
        turn = 0;
    u64 addr = regionBytes + u64(s) * partitionBytes + cursors[s];
    u64 c = cursors[s] + p.accessStride;
    if (c >= partitionBytes)
        c = p.accessStride <= partitionBytes ? c - partitionBytes
                                             : c % partitionBytes;
    cursors[s] = c;
    return addr;
}

PhasedGen::PhasedGen(const GenParams &params, u64 windowBytes)
    : GeneratorBase(params), window(windowBytes)
{
    h2_assert(window >= 4096 && window <= p.footprintBytes,
              "bad phase window");
    h2_assert(p.phaseLength > 0, "PhasedGen needs a phase length");
}

Addr
PhasedGen::nextAddr()
{
    if (++accessesInPhase >= p.phaseLength) {
        accessesInPhase = 0;
        windowBase = rng.below(p.footprintBytes - window) & ~Addr(4095);
    }
    return windowBase + (rng.below(window) & ~Addr(7));
}

MixSource::MixSource(std::vector<std::unique_ptr<TraceSource>> mixParts,
                     std::vector<Addr> partOffsets,
                     std::vector<u32> partWeights)
    : parts(std::move(mixParts)), offsets(std::move(partOffsets)),
      weights(std::move(partWeights))
{
    h2_assert(!parts.empty() && parts.size() == offsets.size() &&
                  parts.size() == weights.size(),
              "MixSource vectors must be parallel and non-empty");
    for (u32 w : weights)
        h2_assert(w > 0, "MixSource weights must be non-zero");
    leftInTurn = weights[0];
}

TraceRecord
MixSource::next()
{
    TraceRecord rec = parts[turn]->next();
    rec.vaddr += offsets[turn];
    if (--leftInTurn == 0) {
        turn = (turn + 1) % parts.size();
        leftInTurn = weights[turn];
    }
    return rec;
}

} // namespace h2::workloads
