/**
 * @file
 * The workload-spec grammar: every place that names a workload (the
 * h2sim CLI, experiment files, bench --workload overrides) accepts
 *
 *   <name>                        a Table 2 registry workload
 *   trace:<path>                  replay a captured trace file
 *                                 (text or binary, see trace_file.h)
 *   mix:<a>+<b>[+<c>...][:<n>]    interleaved multi-program mix of
 *                                 registry workloads; each stream draws
 *                                 <n> records from <a> per record from
 *                                 every other component (default 1 =
 *                                 round-robin), with each component
 *                                 offset into its own slice of the
 *                                 virtual address space
 *
 * Resolution validates eagerly - a trace file is opened and checked,
 * mix components are looked up - so a bad spec fails with a precise
 * message before any simulation starts.
 */

#pragma once

#include <memory>
#include <optional>
#include <string>

#include "workloads/trace_file.h"
#include "workloads/workload_registry.h"

namespace h2::workloads {

/** Resolve @p spec (grammar above). On failure returns nullopt and
 *  sets @p error to an actionable message. Trace files are cached per
 *  path while any resolved Workload still references them, so a sweep
 *  naming the same trace many times loads it once. */
std::optional<Workload> resolveWorkload(const std::string &spec,
                                        std::string *error);

/** Resolve @p spec; h2_fatal with the parse error on failure. */
Workload resolveWorkloadOrFatal(const std::string &spec);

/** Build the replay Workload for an already-loaded trace. The name
 *  (and so the Metrics identity) is the captured workload's, while
 *  cacheName() stays "trace:<path>" so replays never alias their
 *  synthetic originals in the memoized runners. */
Workload traceWorkload(const std::string &path,
                       std::shared_ptr<const TraceData> data);

/** Build an interleaved mix of @p parts (all registry workloads);
 *  @p leadWeight records come from parts[0] per record from each other
 *  part. The mix owns a single shared virtual space with one page-
 *  aligned slice per component. */
Workload mixWorkload(std::vector<Workload> parts, u32 leadWeight);

/** One-line grammar summary for CLI help text. */
const char *workloadSpecGrammarHelp();

} // namespace h2::workloads
