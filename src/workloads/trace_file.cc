#include "workloads/trace_file.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

#include "common/io.h"
#include "common/log.h"
#include "common/parse.h"

namespace h2::workloads {

namespace {

constexpr u8 kMagic[8] = {0x89, 'H', '2', 'T', 'R', 'A', 'C', 'E'};
constexpr u32 kVersion = 1;
constexpr u32 kMaxStreams = 1024;
constexpr u32 kMaxMlp = 1024;
constexpr u32 kMaxNameLen = 256;
constexpr u32 kPage = 4096;

/** Largest vaddr a single record may carry: per-stream space for
 *  multi-program traces, the shared space for multi-threaded ones. */
u64
recordVaddrBound(const TraceMeta &m)
{
    return m.multithreaded ? m.virtualBytes : m.virtualBytes / m.streams;
}

/** Header sanity shared by both readers; "" when valid. */
std::string
validateMeta(const TraceMeta &m)
{
    if (m.streams == 0 || m.streams > kMaxStreams)
        return detail::concat("streams must be in [1, ", kMaxStreams,
                              "], got ", m.streams);
    if (m.footprintBytes < kPage)
        return detail::concat("footprint must be at least ", kPage,
                              " bytes, got ", m.footprintBytes);
    if (m.virtualBytes < kPage)
        return detail::concat("vspace must be at least ", kPage,
                              " bytes, got ", m.virtualBytes);
    if (!m.multithreaded && m.virtualBytes % (u64(m.streams) * kPage) != 0)
        return detail::concat(
            "vspace of a multi-program trace must be a multiple of "
            "streams x 4096 (",
            u64(m.streams) * kPage, "), got ", m.virtualBytes);
    if (m.mlp == 0 || m.mlp > kMaxMlp)
        return detail::concat("mlp must be in [1, ", kMaxMlp, "], got ",
                              m.mlp);
    if (m.name.size() > kMaxNameLen)
        return detail::concat("name longer than ", kMaxNameLen, " bytes");
    for (char c : m.name)
        if (static_cast<unsigned char>(c) <= ' ' ||
            static_cast<unsigned char>(c) > 0x7e)
            return "name must be printable ASCII without spaces";
    return {};
}

/** Streams must be non-empty so a replaying core always has records. */
std::string
validateStreams(const TraceData &d)
{
    if (d.streams.size() != d.meta.streams)
        return detail::concat("expected ", d.meta.streams,
                              " streams, got ", d.streams.size());
    for (u32 s = 0; s < d.streams.size(); ++s)
        if (d.streams[s].empty())
            return detail::concat("stream ", s, " has no records");
    return {};
}

// ----- varint / zigzag helpers (binary format) -----------------------

void
putVarint(std::string &out, u64 v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>(v | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

u64
zigzag(s64 v)
{
    return (static_cast<u64>(v) << 1) ^ static_cast<u64>(v >> 63);
}

s64
unzigzag(u64 v)
{
    return static_cast<s64>(v >> 1) ^ -static_cast<s64>(v & 1);
}

void
putU32(std::string &out, u32 v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

void
putU64(std::string &out, u64 v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

/** Bounds-checked little-endian reader over a loaded binary file. */
struct BinReader
{
    std::string_view buf;
    u64 pos = 0;
    std::string err = {}; ///< first error, with its byte offset

    bool ok() const { return err.empty(); }

    bool
    fail(const std::string &why)
    {
        if (err.empty())
            err = detail::concat(why, " at byte offset ", pos);
        return false;
    }

    bool
    need(u64 n, const char *what)
    {
        if (buf.size() - pos < n)
            return fail(detail::concat("truncated file: need ", n,
                                       " bytes for ", what, ", have ",
                                       buf.size() - pos));
        return true;
    }

    bool
    rdU32(u32 &out, const char *what)
    {
        if (!need(4, what))
            return false;
        out = 0;
        for (int i = 0; i < 4; ++i)
            out |= u32(static_cast<u8>(buf[pos + i])) << (8 * i);
        pos += 4;
        return true;
    }

    bool
    rdU64(u64 &out, const char *what)
    {
        if (!need(8, what))
            return false;
        out = 0;
        for (int i = 0; i < 8; ++i)
            out |= u64(static_cast<u8>(buf[pos + i])) << (8 * i);
        pos += 8;
        return true;
    }

    bool
    rdVarint(u64 &out, const char *what)
    {
        out = 0;
        for (u32 shift = 0; shift < 64; shift += 7) {
            if (pos >= buf.size())
                return fail(detail::concat("truncated file: unterminated "
                                           "varint in ",
                                           what));
            u8 byte = static_cast<u8>(buf[pos++]);
            out |= u64(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return true;
        }
        return fail(detail::concat("varint in ", what,
                                   " exceeds 64 bits"));
    }
};

std::optional<TraceData>
parseBinary(const std::string &path, std::string_view content,
            std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = detail::concat("trace file '", path, "': ", why);
        return std::nullopt;
    };

    BinReader in{content};
    if (content.size() < sizeof(kMagic) ||
        !std::equal(std::begin(kMagic), std::end(kMagic), content.begin(),
                    [](u8 m, char c) { return m == static_cast<u8>(c); }))
        return fail("bad magic (not an h2trace binary file)");
    in.pos = sizeof(kMagic);

    u32 version = 0;
    if (!in.rdU32(version, "version"))
        return fail(in.err);
    if (version != kVersion)
        return fail(detail::concat("unsupported version ", version,
                                   " (this build reads version ",
                                   kVersion, ")"));

    TraceData d;
    u32 mtByte32 = 0; // read as u8 + 3 reserved below
    if (!in.rdU32(d.meta.streams, "streams") ||
        !in.rdU64(d.meta.footprintBytes, "footprint") ||
        !in.rdU64(d.meta.virtualBytes, "vspace") ||
        !in.rdU32(d.meta.mlp, "mlp") || !in.rdU32(mtByte32, "flags"))
        return fail(in.err);
    if ((mtByte32 & 0xff) > 1 || (mtByte32 >> 8) != 0)
        return fail(detail::concat("bad flags word ", mtByte32,
                                   " (multithreaded byte must be 0|1, "
                                   "reserved bytes zero) at byte offset ",
                                   in.pos - 4));
    d.meta.multithreaded = (mtByte32 & 0xff) != 0;

    u32 nameLen = 0;
    if (!in.rdU32(nameLen, "name length"))
        return fail(in.err);
    if (nameLen > kMaxNameLen)
        return fail(detail::concat("name length ", nameLen, " exceeds ",
                                   kMaxNameLen, " at byte offset ",
                                   in.pos - 4));
    if (!in.need(nameLen, "name"))
        return fail(in.err);
    d.meta.name.assign(content.substr(in.pos, nameLen));
    in.pos += nameLen;

    if (std::string why = validateMeta(d.meta); !why.empty())
        return fail(why);

    std::vector<u64> counts(d.meta.streams);
    u64 total = 0;
    for (u32 s = 0; s < d.meta.streams; ++s) {
        if (!in.rdU64(counts[s], "record count"))
            return fail(in.err);
        // Per-stream guard before summing: a forged count near 2^64
        // would otherwise overflow `total` past the check below.
        if (counts[s] > content.size())
            return fail(detail::concat("record counts claim ", counts[s],
                                       " records in stream ", s,
                                       " but the whole file is only ",
                                       content.size(), " bytes"));
        total += counts[s];
    }
    // Every record encodes to at least two bytes, so an impossible
    // count is caught before allocating for it.
    if (total > (content.size() - in.pos) / 2 + 1)
        return fail(detail::concat("record counts claim ", total,
                                   " records but only ",
                                   content.size() - in.pos,
                                   " bytes follow the header"));

    const u64 bound = recordVaddrBound(d.meta);
    d.streams.resize(d.meta.streams);
    for (u32 s = 0; s < d.meta.streams; ++s) {
        d.streams[s].reserve(counts[s]);
        u64 prev = 0;
        for (u64 i = 0; i < counts[s]; ++i) {
            u64 gapAndType = 0, delta = 0;
            u64 recordStart = in.pos;
            if (!in.rdVarint(gapAndType, "record gap") ||
                !in.rdVarint(delta, "record address delta"))
                return fail(in.err);
            TraceRecord rec;
            if ((gapAndType >> 1) > ~u32(0))
                return fail(detail::concat(
                    "instruction gap ", gapAndType >> 1,
                    " overflows 32 bits at byte offset ", recordStart));
            rec.instGap = static_cast<u32>(gapAndType >> 1);
            rec.type = (gapAndType & 1) ? AccessType::Write
                                        : AccessType::Read;
            rec.vaddr = prev + static_cast<u64>(unzigzag(delta));
            if (rec.vaddr >= bound)
                return fail(detail::concat(
                    "record address ", rec.vaddr,
                    " outside the trace's address space (bound ", bound,
                    ") at byte offset ", recordStart));
            prev = rec.vaddr;
            d.streams[s].push_back(rec);
        }
    }
    if (in.pos != content.size())
        return fail(detail::concat("trailing data after the last record "
                                   "at byte offset ",
                                   in.pos));
    if (std::string why = validateStreams(d); !why.empty())
        return fail(why);
    return d;
}

// ----- text format ---------------------------------------------------

std::vector<std::string_view>
splitWhitespace(std::string_view s)
{
    std::vector<std::string_view> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.push_back(s.substr(start, i - start));
    }
    return out;
}

/** Decimal, or hexadecimal with an 0x prefix. */
bool
tryParseAddr(std::string_view value, u64 &out)
{
    if (value.starts_with("0x") || value.starts_with("0X")) {
        value.remove_prefix(2);
        if (value.empty())
            return false;
        u64 v = 0;
        auto [ptr, ec] = std::from_chars(
            value.data(), value.data() + value.size(), v, 16);
        if (ec != std::errc{} || ptr != value.data() + value.size())
            return false;
        out = v;
        return true;
    }
    return tryParseU64(value, out);
}

std::optional<TraceData>
parseText(const std::string &path, std::string_view content,
          std::string *error)
{
    int lineNo = 0;
    auto fail = [&](const std::string &why) {
        if (error)
            *error = detail::concat("trace file '", path, "' line ",
                                    lineNo, ": ", why);
        return std::nullopt;
    };

    std::istringstream in{std::string(content)};
    std::string raw;

    // Comment/blank-skipping line reader; returns false at EOF.
    auto nextLine = [&](std::string_view &line) {
        while (std::getline(in, raw)) {
            ++lineNo;
            std::string_view l = raw;
            if (auto hash = l.find('#'); hash != std::string_view::npos)
                l = l.substr(0, hash);
            while (!l.empty() && std::isspace(static_cast<unsigned char>(
                                     l.back())))
                l.remove_suffix(1);
            while (!l.empty() && std::isspace(static_cast<unsigned char>(
                                     l.front())))
                l.remove_prefix(1);
            if (!l.empty()) {
                line = l;
                return true;
            }
        }
        return false;
    };

    std::string_view line;
    if (!nextLine(line))
        return fail("empty trace file (expected 'h2trace text 1')");
    {
        auto tok = splitWhitespace(line);
        if (tok.size() != 3 || tok[0] != "h2trace" || tok[1] != "text")
            return fail(detail::concat("bad header '", line,
                                       "' (expected 'h2trace text 1')"));
        u64 version = 0;
        if (!tryParseU64(tok[2], version) || version != kVersion)
            return fail(detail::concat("unsupported version '", tok[2],
                                       "' (this build reads version ",
                                       kVersion, ")"));
    }

    TraceData d;
    bool haveStreams = false, haveFootprint = false, haveVspace = false;
    bool sawSeparator = false;
    while (nextLine(line)) {
        if (line == "%%") {
            sawSeparator = true;
            break;
        }
        auto tok = splitWhitespace(line);
        std::string_view key = tok[0];
        if (tok.size() != 2)
            return fail(detail::concat("bad header directive '", line,
                                       "' (expected 'key value')"));
        std::string_view value = tok[1];
        u64 v = 0;
        if (key == "name") {
            d.meta.name = std::string(value);
        } else if (key == "streams") {
            if (!tryParseU64(value, v) || v == 0 || v > kMaxStreams)
                return fail(detail::concat("bad streams '", value,
                                           "' (expected 1..",
                                           kMaxStreams, ")"));
            d.meta.streams = static_cast<u32>(v);
            haveStreams = true;
        } else if (key == "multithreaded") {
            if (value != "0" && value != "1")
                return fail(detail::concat("bad multithreaded '", value,
                                           "' (expected 0|1)"));
            d.meta.multithreaded = value == "1";
        } else if (key == "footprint") {
            if (!tryParseU64(value, v))
                return fail(detail::concat("bad footprint '", value,
                                           "' (expected bytes)"));
            d.meta.footprintBytes = v;
            haveFootprint = true;
        } else if (key == "vspace") {
            if (!tryParseU64(value, v))
                return fail(detail::concat("bad vspace '", value,
                                           "' (expected bytes)"));
            d.meta.virtualBytes = v;
            haveVspace = true;
        } else if (key == "mlp") {
            if (!tryParseU64(value, v) || v == 0 || v > kMaxMlp)
                return fail(detail::concat("bad mlp '", value,
                                           "' (expected 1..", kMaxMlp,
                                           ")"));
            d.meta.mlp = static_cast<u32>(v);
        } else {
            return fail(detail::concat("unknown header directive '", key,
                                       "'"));
        }
    }
    if (!sawSeparator)
        return fail("missing '%%' header/record separator");
    if (!haveStreams)
        return fail("header is missing the 'streams' directive");
    if (!haveFootprint)
        return fail("header is missing the 'footprint' directive");
    if (!haveVspace) {
        // Default mirrors Workload::totalVirtualBytes for hand-written
        // traces: shared space when multithreaded, per-core 4 KiB-
        // aligned partitions otherwise.
        if (d.meta.multithreaded) {
            d.meta.virtualBytes = d.meta.footprintBytes;
        } else {
            u64 per = d.meta.footprintBytes / d.meta.streams;
            per = std::max<u64>(per & ~u64(kPage - 1), kPage);
            d.meta.virtualBytes = per * d.meta.streams;
        }
    }
    if (std::string why = validateMeta(d.meta); !why.empty())
        return fail(why);

    const u64 bound = recordVaddrBound(d.meta);
    d.streams.resize(d.meta.streams);
    while (nextLine(line)) {
        auto tok = splitWhitespace(line);
        if (tok.size() != 4)
            return fail(detail::concat(
                "bad record '", line,
                "' (expected '<stream> <instGap> <vaddr> <R|W>')"));
        u64 stream = 0, gap = 0;
        TraceRecord rec;
        if (!tryParseU64(tok[0], stream) || stream >= d.meta.streams)
            return fail(detail::concat("bad stream id '", tok[0],
                                       "' (trace has ", d.meta.streams,
                                       " streams)"));
        if (!tryParseU64(tok[1], gap) || gap > ~u32(0))
            return fail(detail::concat("bad instruction gap '", tok[1],
                                       "' (expected a 32-bit integer)"));
        rec.instGap = static_cast<u32>(gap);
        if (!tryParseAddr(tok[2], rec.vaddr))
            return fail(detail::concat("bad address '", tok[2],
                                       "' (expected decimal or 0x hex)"));
        if (rec.vaddr >= bound)
            return fail(detail::concat(
                "address ", rec.vaddr,
                " outside the trace's address space (bound ", bound,
                ")"));
        if (tok[3] == "R")
            rec.type = AccessType::Read;
        else if (tok[3] == "W")
            rec.type = AccessType::Write;
        else
            return fail(detail::concat("bad access type '", tok[3],
                                       "' (expected R or W)"));
        d.streams[stream].push_back(rec);
    }
    if (std::string why = validateStreams(d); !why.empty())
        return fail(why);
    return d;
}

} // namespace

u64
TraceData::totalRecords() const
{
    u64 n = 0;
    for (const auto &s : streams)
        n += s.size();
    return n;
}

TraceFormat
traceFormatForPath(const std::string &path)
{
    auto endsWith = [&](std::string_view suffix) {
        return path.size() >= suffix.size() &&
               std::string_view(path).substr(path.size() - suffix.size()) ==
                   suffix;
    };
    return endsWith(".txt") || endsWith(".text") ? TraceFormat::Text
                                                 : TraceFormat::Binary;
}

TraceData
captureTrace(const Workload &workload, u32 numCores, u64 seed,
             u64 instrPerStream)
{
    h2_assert(numCores > 0, "captureTrace needs at least one core");
    h2_assert(instrPerStream > 0,
              "captureTrace needs a non-zero instruction budget");

    TraceData d;
    d.meta.name = workload.name;
    d.meta.streams = numCores;
    d.meta.multithreaded = workload.multithreaded;
    d.meta.footprintBytes = workload.footprintBytes;
    d.meta.virtualBytes = workload.totalVirtualBytes(numCores);
    d.meta.mlp = workload.mlp;
    if (std::string why = validateMeta(d.meta); !why.empty())
        h2_fatal("cannot capture '", workload.name, "': ", why);

    d.streams.resize(numCores);
    for (u32 c = 0; c < numCores; ++c) {
        auto src = workload.makeSource(c, numCores, seed);
        // Same stepping as CoreModel: one record per step, each worth
        // instGap + 1 instructions, stopping once the budget is met.
        u64 instrs = 0;
        while (instrs < instrPerStream) {
            TraceRecord rec = src->next();
            instrs += u64(rec.instGap) + 1;
            d.streams[c].push_back(rec);
        }
    }
    return d;
}

void
writeTraceFile(const std::string &path, const TraceData &data,
               TraceFormat format)
{
    if (std::string why = validateMeta(data.meta); !why.empty())
        h2_fatal("cannot write trace '", path, "': ", why);
    if (std::string why = validateStreams(data); !why.empty())
        h2_fatal("cannot write trace '", path, "': ", why);

    std::string out;
    const TraceMeta &m = data.meta;
    if (format == TraceFormat::Text) {
        std::ostringstream os;
        os << "h2trace text " << kVersion << "\n";
        if (!m.name.empty())
            os << "name " << m.name << "\n";
        os << "streams " << m.streams << "\n"
           << "multithreaded " << (m.multithreaded ? 1 : 0) << "\n"
           << "footprint " << m.footprintBytes << "\n"
           << "vspace " << m.virtualBytes << "\n"
           << "mlp " << m.mlp << "\n"
           << "%%\n";
        char buf[64];
        for (u32 s = 0; s < m.streams; ++s)
            for (const TraceRecord &rec : data.streams[s]) {
                std::snprintf(buf, sizeof(buf), "%u %u 0x%llx %c\n", s,
                              rec.instGap,
                              static_cast<unsigned long long>(rec.vaddr),
                              rec.type == AccessType::Write ? 'W' : 'R');
                os << buf;
            }
        out = os.str();
    } else {
        out.append(reinterpret_cast<const char *>(kMagic),
                   sizeof(kMagic));
        putU32(out, kVersion);
        putU32(out, m.streams);
        putU64(out, m.footprintBytes);
        putU64(out, m.virtualBytes);
        putU32(out, m.mlp);
        putU32(out, m.multithreaded ? 1 : 0); // u8 flag + 3 reserved
        putU32(out, static_cast<u32>(m.name.size()));
        out += m.name;
        for (const auto &stream : data.streams)
            putU64(out, stream.size());
        for (const auto &stream : data.streams) {
            u64 prev = 0;
            for (const TraceRecord &rec : stream) {
                putVarint(out, (u64(rec.instGap) << 1) |
                                   (rec.type == AccessType::Write));
                putVarint(out, zigzag(static_cast<s64>(rec.vaddr) -
                                      static_cast<s64>(prev)));
                prev = rec.vaddr;
            }
        }
    }

    // Atomic: a crash mid-write never leaves a truncated trace that a
    // later run would open and fail on halfway through.
    if (std::string err = writeFileAtomic(path, out); !err.empty())
        h2_fatal("cannot write trace file '", path, "': ", err);
}

std::optional<TraceData>
readTraceFile(const std::string &path, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = detail::concat("cannot read trace file '", path,
                                    "'");
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string content = buf.str();
    if (content.empty()) {
        if (error)
            *error = detail::concat("trace file '", path, "' is empty");
        return std::nullopt;
    }
    // Binary files open with a 0x89 byte no text trace can start with.
    if (static_cast<u8>(content[0]) == kMagic[0])
        return parseBinary(path, content, error);
    return parseText(path, content, error);
}

FileTraceSource::FileTraceSource(std::shared_ptr<const TraceData> traceData,
                                 u32 stream)
    : data(std::move(traceData))
{
    h2_assert(data != nullptr, "FileTraceSource needs trace data");
    h2_assert(stream < data->streams.size(),
              "stream index out of range");
    records = &data->streams[stream];
    h2_assert(!records->empty(), "empty trace stream");
}

TraceRecord
FileTraceSource::next()
{
    if (pos == records->size()) {
        if (!warnedWrap) {
            h2_warn("trace '", data->meta.name,
                    "' exhausted after ", records->size(),
                    " records; looping (captured for a smaller "
                    "instruction budget than this run)");
            warnedWrap = true;
        }
        pos = 0;
    }
    return (*records)[pos++];
}

} // namespace h2::workloads
