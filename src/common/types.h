/**
 * @file
 * Fundamental scalar types shared across the Hybrid2 simulator.
 */

#pragma once

#include <cstdint>

namespace h2 {

/** Byte address in a (virtual or physical) address space. */
using Addr = std::uint64_t;

/**
 * Simulation time in picoseconds.
 *
 * Picoseconds keep every clock domain in the evaluated system (3.2 GHz
 * cores, 2 GHz HBM2, 1.6 GHz DDR4-3200 command clock) on an integer grid.
 */
using Tick = std::uint64_t;

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s64 = std::int64_t;

/** Identifier of a simulated core. */
using CoreId = u32;

/** Direction of a memory operation. */
enum class AccessType : u8 { Read, Write };

/** A tick value that compares later than any reachable simulation time. */
inline constexpr Tick maxTick = ~Tick(0);

/** Integer ceiling division. */
constexpr u64
ceilDiv(u64 a, u64 b)
{
    return (a + b - 1) / b;
}

/** True iff @p v is a power of two (zero is not). */
constexpr bool
isPowerOf2(u64 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2; @p v must be non-zero. */
constexpr u32
floorLog2(u64 v)
{
    u32 r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

} // namespace h2
