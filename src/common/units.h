/**
 * @file
 * Size/time unit helpers and human-readable formatting.
 */

#pragma once

#include <string>

#include "common/types.h"

namespace h2 {

inline constexpr u64 KiB = 1024;
inline constexpr u64 MiB = 1024 * KiB;
inline constexpr u64 GiB = 1024 * MiB;

/** Picoseconds per common engineering time units. */
inline constexpr Tick psPerNs = 1000;
inline constexpr Tick psPerUs = 1000 * psPerNs;
inline constexpr Tick psPerMs = 1000 * psPerUs;

namespace literals {

constexpr u64 operator""_KiB(unsigned long long v) { return v * KiB; }
constexpr u64 operator""_MiB(unsigned long long v) { return v * MiB; }
constexpr u64 operator""_GiB(unsigned long long v) { return v * GiB; }

} // namespace literals

/** Format a byte count as e.g. "64KiB", "1.5GiB". */
std::string formatBytes(u64 bytes);

/** Format a tick count (picoseconds) as e.g. "3.50ns", "50.0us". */
std::string formatTime(Tick ps);

} // namespace h2
