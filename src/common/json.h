/**
 * @file
 * Minimal streaming JSON writer.
 *
 * The single serializer behind every machine-readable output in the
 * repo: `h2sim --format json`, Metrics::toJson(), and the benches'
 * JSON artifacts all emit through this, so the output is uniformly
 * escaped, locale-independent, and valid by construction (unbalanced
 * begin/end or a value without a key is a panic, not bad output).
 *
 * Usage:
 *   JsonWriter w;
 *   w.beginObject().kv("sims", u64(12)).key("serial").beginObject()
 *    .kv("seconds", 1.5).endObject().endObject();
 *   std::string text = w.str();
 */

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.h"

namespace h2 {

class JsonWriter
{
  public:
    /** @param pretty two-space indentation; compact otherwise. */
    explicit JsonWriter(bool pretty = true);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Key of the next value inside an object. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(const std::string &v)
    {
        return value(std::string_view(v));
    }
    /** Non-finite doubles have no JSON rendering; emitted as null. */
    JsonWriter &value(double v);
    JsonWriter &value(u64 v);
    JsonWriter &value(u32 v) { return value(u64(v)); }
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    kv(std::string_view k, T v)
    {
        key(k);
        return value(v);
    }

    /** The finished document; panics if begin/end are unbalanced. */
    const std::string &str() const;

    /** JSON string escaping (quotes not included). */
    static std::string escape(std::string_view s);

    /** Locale-independent shortest round-trip rendering of @p v.
     *  Non-finite values render as "0" — neither JSON nor the CSV
     *  reports have a representation for NaN/inf. */
    static std::string formatDouble(double v);

  private:
    void beforeValue();
    void newlineIndent();

    struct Scope
    {
        bool isArray = false;
        u64 items = 0;
    };

    bool prettyPrint;
    bool keyPending = false;
    std::string out;
    std::vector<Scope> stack;
};

/**
 * A parsed JSON document node (the read half of the writer above; the
 * result journal's resume path rebuilds Metrics through it).
 *
 * Numbers keep their raw token so u64 counters round-trip at full
 * 64-bit precision (doubles were rendered shortest-round-trip by
 * formatDouble, so asDouble() reparses bit-identically). Object member
 * order is preserved.
 */
struct JsonValue
{
    enum class Type : u8 { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    /** String: the decoded text. Number: the raw token. */
    std::string scalar;
    std::vector<JsonValue> items; ///< array elements
    std::vector<std::pair<std::string, JsonValue>> members; ///< object

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Number as double (panics on non-numbers). */
    double asDouble() const;
    /** Number as u64 at full precision; a fractional/scientific token
     *  falls back to truncating its double value. */
    u64 asU64() const;
    bool asBool() const;
    const std::string &asString() const;

    /** First member named @p key (objects); nullptr when absent. */
    const JsonValue *find(std::string_view key) const;
};

/** Parse one JSON document (surrounding whitespace allowed, trailing
 *  garbage rejected). Returns nullopt and sets @p error (with a byte
 *  offset) on malformed input. */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string *error);

} // namespace h2
