/**
 * @file
 * Minimal streaming JSON writer.
 *
 * The single serializer behind every machine-readable output in the
 * repo: `h2sim --format json`, Metrics::toJson(), and the benches'
 * JSON artifacts all emit through this, so the output is uniformly
 * escaped, locale-independent, and valid by construction (unbalanced
 * begin/end or a value without a key is a panic, not bad output).
 *
 * Usage:
 *   JsonWriter w;
 *   w.beginObject().kv("sims", u64(12)).key("serial").beginObject()
 *    .kv("seconds", 1.5).endObject().endObject();
 *   std::string text = w.str();
 */

#ifndef H2_COMMON_JSON_H
#define H2_COMMON_JSON_H

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace h2 {

class JsonWriter
{
  public:
    /** @param pretty two-space indentation; compact otherwise. */
    explicit JsonWriter(bool pretty = true);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Key of the next value inside an object. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(const std::string &v)
    {
        return value(std::string_view(v));
    }
    /** Non-finite doubles have no JSON rendering; emitted as null. */
    JsonWriter &value(double v);
    JsonWriter &value(u64 v);
    JsonWriter &value(u32 v) { return value(u64(v)); }
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    kv(std::string_view k, T v)
    {
        key(k);
        return value(v);
    }

    /** The finished document; panics if begin/end are unbalanced. */
    const std::string &str() const;

    /** JSON string escaping (quotes not included). */
    static std::string escape(std::string_view s);

    /** Locale-independent shortest round-trip rendering of @p v.
     *  Non-finite values render as "0" — neither JSON nor the CSV
     *  reports have a representation for NaN/inf. */
    static std::string formatDouble(double v);

  private:
    void beforeValue();
    void newlineIndent();

    struct Scope
    {
        bool isArray = false;
        u64 items = 0;
    };

    bool prettyPrint;
    bool keyPending = false;
    std::string out;
    std::vector<Scope> stack;
};

} // namespace h2

#endif // H2_COMMON_JSON_H
