#include "common/stats.h"

#include <cmath>
#include <sstream>

#include "common/log.h"

namespace h2 {

Histogram::Histogram(u32 numBuckets, double bucketWidth)
    : width(bucketWidth), counts(numBuckets, 0)
{
    h2_assert(numBuckets > 0 && bucketWidth > 0, "bad histogram shape");
}

void
Histogram::sample(double v)
{
    ++n;
    if (v < 0)
        v = 0;
    auto idx = static_cast<u64>(v / width);
    if (idx >= counts.size())
        ++overflow;
    else
        ++counts[idx];
}

double
Histogram::quantile(double q) const
{
    if (n == 0)
        return 0.0;
    h2_assert(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
    u64 target = static_cast<u64>(q * n);
    u64 seen = 0;
    for (u32 i = 0; i < counts.size(); ++i) {
        if (seen + counts[i] >= target && counts[i] > 0) {
            double frac = counts[i]
                ? double(target - seen) / double(counts[i]) : 0.0;
            return (i + frac) * width;
        }
        seen += counts[i];
    }
    return counts.size() * width;
}

void
Histogram::reset()
{
    std::fill(counts.begin(), counts.end(), 0);
    n = 0;
    overflow = 0;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values) {
        h2_assert(v > 0.0, "geomean requires positive values, got ", v);
        acc += std::log(v);
    }
    return std::exp(acc / values.size());
}

double
ratioOrZero(double num, double den)
{
    if (!std::isfinite(num) || !std::isfinite(den) || den == 0.0)
        return 0.0;
    double q = num / den;
    return std::isfinite(q) ? q : 0.0;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += v;
    return acc / values.size();
}

void
StatSet::add(const std::string &name, double value)
{
    vals[name] = value;
}

void
StatSet::increment(const std::string &name, double delta)
{
    vals[name] += delta;
}

bool
StatSet::has(const std::string &name) const
{
    return vals.count(name) != 0;
}

double
StatSet::get(const std::string &name) const
{
    auto it = vals.find(name);
    h2_assert(it != vals.end(), "unknown stat: ", name);
    return it->second;
}

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto &[k, v] : vals)
        os << k << " = " << v << "\n";
    return os.str();
}

} // namespace h2
