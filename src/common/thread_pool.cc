#include "common/thread_pool.h"

#include "common/log.h"

namespace h2 {

ThreadPool::ThreadPool(u32 numThreads)
{
    h2_assert(numThreads >= 1, "thread pool needs at least one worker");
    workers.reserve(numThreads);
    for (u32 i = 0; i < numThreads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock lock(mu);
        stopping = true;
    }
    taskCv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    h2_assert(task, "empty task submitted");
    {
        std::unique_lock lock(mu);
        h2_assert(!stopping, "submit after shutdown");
        queue.push_back(std::move(task));
    }
    taskCv.notify_one();
}

void
ThreadPool::drain()
{
    std::unique_lock lock(mu);
    idleCv.wait(lock, [this] { return queue.empty() && active == 0; });
}

u32
ThreadPool::defaultConcurrency()
{
    u32 hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
ThreadPool::workerLoop()
{
    std::unique_lock lock(mu);
    while (true) {
        taskCv.wait(lock, [this] { return stopping || !queue.empty(); });
        if (queue.empty())
            return; // stopping and drained
        std::function<void()> task = std::move(queue.front());
        queue.pop_front();
        ++active;
        lock.unlock();
        // A throwing job must not std::terminate the worker (which
        // would take the whole process down mid-sweep) nor wedge
        // drain(): contain it here and keep serving the queue.
        try {
            task();
        } catch (const std::exception &e) {
            escaped.fetch_add(1, std::memory_order_relaxed);
            h2_warn("thread-pool job threw: ", e.what(),
                    " (captured; pool continues)");
        } catch (...) {
            escaped.fetch_add(1, std::memory_order_relaxed);
            h2_warn("thread-pool job threw a non-standard exception "
                    "(captured; pool continues)");
        }
        lock.lock();
        --active;
        if (queue.empty() && active == 0)
            idleCv.notify_all();
    }
}

} // namespace h2
