/**
 * @file
 * Lightweight statistics: scalar counters, distributions, and the
 * aggregate math (geometric means) used throughout the evaluation.
 */

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace h2 {

/** Running min/max/mean over a stream of samples. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        if (n == 0 || v < lo)
            lo = v;
        if (n == 0 || v > hi)
            hi = v;
        total += v;
        ++n;
    }

    u64 count() const { return n; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double mean() const { return n ? total / n : 0.0; }
    double sum() const { return total; }

    void
    reset()
    {
        n = 0;
        lo = hi = total = 0.0;
    }

  private:
    u64 n = 0;
    double lo = 0.0;
    double hi = 0.0;
    double total = 0.0;
};

/** Fixed-bucket histogram over [0, buckets*bucketWidth). */
class Histogram
{
  public:
    Histogram(u32 numBuckets, double width);

    void sample(double v);
    u64 count() const { return n; }
    u64 bucketCount(u32 i) const { return counts.at(i); }
    u32 numBuckets() const { return static_cast<u32>(counts.size()); }
    double bucketWidth() const { return width; }
    /** Value below which fraction @p q of samples fall (linear interp). */
    double quantile(double q) const;
    void reset();

  private:
    double width;
    std::vector<u64> counts;
    u64 n = 0;
    u64 overflow = 0;
};

/** Geometric mean of strictly positive values; 0 for an empty vector. */
double geomean(const std::vector<double> &values);

/**
 * num / den, or 0 when the quotient has no finite value (@p den zero,
 * or either operand non-finite). Normalized-metric reports use this so
 * a degenerate baseline (e.g. a zero-traffic workload with zero
 * baseline energy) yields a renderable 0 instead of inf/NaN — JSON and
 * CSV have no representation for either (cf. JsonWriter::formatDouble).
 */
double ratioOrZero(double num, double den);

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &values);

/**
 * A named bag of scalar statistics with hierarchical dotted names,
 * e.g. "fm.bytesRead". Designs expose their counters through this so the
 * runner and the bench harness can extract them uniformly.
 */
class StatSet
{
  public:
    void add(const std::string &name, double value);
    void increment(const std::string &name, double delta = 1.0);
    bool has(const std::string &name) const;
    double get(const std::string &name) const;
    /** All entries in name order. */
    const std::map<std::string, double> &entries() const { return vals; }
    std::string toString() const;

    bool operator==(const StatSet &) const = default;

  private:
    std::map<std::string, double> vals;
};

} // namespace h2
