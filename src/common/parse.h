/**
 * @file
 * Shared tokenizing and numeric parsing: locale-independent, with both
 * non-fatal (error-returning) and fatal flavours. One implementation
 * serves the design-spec grammar, the experiment-file reader, the
 * bench option parser and the h2sim CLI.
 */

#pragma once

#include <charconv>
#include <string_view>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/types.h"

namespace h2 {

/** Split @p s on @p delim, dropping empty items. */
inline std::vector<std::string_view>
splitOn(std::string_view s, char delim)
{
    std::vector<std::string_view> out;
    while (!s.empty()) {
        auto pos = s.find(delim);
        std::string_view item = s.substr(0, pos);
        if (!item.empty())
            out.push_back(item);
        if (pos == std::string_view::npos)
            break;
        s.remove_prefix(pos + 1);
    }
    return out;
}

/** Parse "key=value" into (key, value); bare words get value "". */
inline std::pair<std::string_view, std::string_view>
keyValue(std::string_view token)
{
    auto eq = token.find('=');
    if (eq == std::string_view::npos)
        return {token, {}};
    return {token.substr(0, eq), token.substr(eq + 1)};
}

/** Non-fatal decimal u64 parse; full-match only. */
inline bool
tryParseU64(std::string_view value, u64 &out)
{
    u64 v = 0;
    auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), v, 10);
    if (ec != std::errc{} || ptr != value.data() + value.size() ||
        value.empty())
        return false;
    out = v;
    return true;
}

/**
 * Non-fatal non-negative decimal parse allowing a fractional part.
 * Digits and dots only: std::from_chars alone would also accept signs
 * and inf/nan, which no option in this codebase means.
 */
inline bool
tryParseF64(std::string_view value, double &out)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789.") != std::string_view::npos)
        return false;
    double v = 0.0;
    auto [ptr, ec] = std::from_chars(value.data(),
                                     value.data() + value.size(), v,
                                     std::chars_format::fixed);
    if (ec != std::errc{} || ptr != value.data() + value.size())
        return false;
    out = v;
    return true;
}

/** Parse @p value as a decimal u64; h2_fatal on garbage, naming
 *  @p what in the error. */
inline u64
parseU64OrFatal(std::string_view what, std::string_view value)
{
    u64 v = 0;
    if (!tryParseU64(value, v)) {
        // Distinguish overflow for an actionable message.
        u64 dummy = 0;
        auto [ptr, ec] = std::from_chars(
            value.data(), value.data() + value.size(), dummy, 10);
        if (ec == std::errc::result_out_of_range &&
            ptr == value.data() + value.size())
            h2_fatal("bad value for ", what, ": '", value,
                     "' (out of range)");
        h2_fatal("bad value for ", what, ": '", value,
                 "' (expected a decimal integer)");
    }
    return v;
}

/** Parse @p value as a non-negative decimal number; h2_fatal on garbage. */
inline double
parseFloatOrFatal(std::string_view what, std::string_view value)
{
    double v = 0.0;
    if (!tryParseF64(value, v))
        h2_fatal("bad value for ", what, ": '", value,
                 "' (expected a decimal number)");
    return v;
}

} // namespace h2
