/**
 * @file
 * Shared numeric option parsing: locale-independent, fatal (not an
 * uncaught exception) on garbage. Used by the design-spec grammar and
 * the bench option parser.
 */

#ifndef H2_COMMON_PARSE_H
#define H2_COMMON_PARSE_H

#include <charconv>
#include <string_view>

#include "common/log.h"
#include "common/types.h"

namespace h2 {

/** Parse @p value as a decimal u64; h2_fatal on garbage, naming
 *  @p what in the error. */
inline u64
parseU64OrFatal(std::string_view what, std::string_view value)
{
    u64 v = 0;
    auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), v, 10);
    if (ec != std::errc{} || ptr != value.data() + value.size())
        h2_fatal("bad value for ", what, ": '", value,
                 "' (expected a decimal integer)");
    return v;
}

} // namespace h2

#endif // H2_COMMON_PARSE_H
