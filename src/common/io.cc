#include "common/io.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/log.h"

namespace h2 {

namespace detail {
bool crashBeforeRenameForTest = false;
} // namespace detail

std::string
writeFileAtomic(const std::string &path, std::string_view contents)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return detail::concat("cannot write '", tmp, "': ",
                              std::strerror(errno));

    auto failWith = [&](const char *what) {
        std::string why = detail::concat(what, " '", tmp, "': ",
                                         std::strerror(errno));
        std::fclose(f);
        std::remove(tmp.c_str());
        return why;
    };

    if (!contents.empty() &&
        std::fwrite(contents.data(), 1, contents.size(), f) !=
            contents.size())
        return failWith("error writing");
    if (std::fflush(f) != 0)
        return failWith("error flushing");
#ifndef _WIN32
    // Make the payload durable before it becomes visible under the
    // final name; without this a crash after the rename could still
    // publish an empty/partial file on some filesystems.
    if (fsync(fileno(f)) != 0)
        return failWith("error syncing");
#endif
    if (std::fclose(f) != 0) {
        std::string why = detail::concat("error closing '", tmp, "': ",
                                         std::strerror(errno));
        std::remove(tmp.c_str());
        return why;
    }

    if (detail::crashBeforeRenameForTest)
        std::abort(); // the final path must remain untouched

    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::string why = detail::concat("cannot rename '", tmp,
                                         "' to '", path, "': ",
                                         std::strerror(errno));
        std::remove(tmp.c_str());
        return why;
    }
    return {};
}

} // namespace h2
