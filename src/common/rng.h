/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in the simulator (workload generation, page placement)
 * flows through these generators so runs are reproducible from a seed.
 */

#pragma once

#include <cmath>

#include "common/log.h"
#include "common/types.h"

namespace h2 {

/** SplitMix64 hash step; also used to derive sub-seeds. */
constexpr u64
splitmix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * xoshiro256** generator. Small, fast, and good enough for workload
 * synthesis; seeded via SplitMix64 per Blackman/Vigna's recommendation.
 */
class Rng
{
  public:
    explicit Rng(u64 seed = 1)
    {
        u64 x = seed;
        for (auto &word : s)
            word = splitmix64(x++);
    }

    /** Uniform 64-bit value. */
    u64
    next()
    {
        const u64 result = rotl(s[1] * 5, 7) * 9;
        const u64 t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be non-zero. */
    u64
    below(u64 bound)
    {
        h2_assert(bound != 0, "Rng::below(0)");
        // Lemire-style multiply-shift; the tiny modulo bias is irrelevant
        // for workload synthesis.
        return static_cast<u64>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static constexpr u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    u64 s[4];
};

/**
 * A bijective pseudo-random permutation over [0, size), built from a
 * 4-round Feistel network over a power-of-two domain with cycle-walking.
 *
 * Used for OS-page placement: virtual pages land on physical pages
 * "randomly, proportionally to capacity" (paper section 4) while remaining
 * collision-free, which the data-integrity property tests rely on.
 */
class RandomPermutation
{
  public:
    RandomPermutation(u64 size, u64 seed)
        : domain(size)
    {
        h2_assert(size > 0, "empty permutation domain");
        u32 bits = floorLog2(size);
        if ((u64(1) << bits) < size)
            ++bits;
        if (bits < 2)
            bits = 2;
        halfBits = (bits + 1) / 2;
        halfMask = (u64(1) << halfBits) - 1;
        for (int r = 0; r < rounds; ++r)
            keys[r] = splitmix64(seed + 0x517cc1b727220a95ULL * (r + 1));
    }

    /** Map @p index to its permuted image (a bijection on [0, size)). */
    u64
    map(u64 index) const
    {
        h2_assert(index < domain, "permutation index out of range");
        u64 v = index;
        do {
            v = feistel(v);
        } while (v >= domain); // cycle-walk back into the domain
        return v;
    }

    u64 size() const { return domain; }

  private:
    u64
    feistel(u64 v) const
    {
        u64 left = v >> halfBits;
        u64 right = v & halfMask;
        for (int r = 0; r < rounds; ++r) {
            u64 f = splitmix64(right ^ keys[r]) & halfMask;
            u64 newRight = left ^ f;
            left = right;
            right = newRight;
        }
        return (left << halfBits) | right;
    }

    static constexpr int rounds = 4;
    u64 domain;
    u32 halfBits;
    u64 halfMask;
    u64 keys[rounds];
};

} // namespace h2
