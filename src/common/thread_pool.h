/**
 * @file
 * A minimal fixed-size worker pool for dispatching independent jobs.
 *
 * Used by sim::SweepRunner to run (workload, design) simulations in
 * parallel. Tasks are opaque callables; ordering guarantees are the
 * caller's responsibility (the sweep runner keys results by name, so
 * completion order never matters).
 *
 * A job that throws does not take the process down: the worker catches
 * the exception, warns, counts it (caughtExceptions), and keeps
 * serving the queue — jobs that care about their failures must catch
 * them and record an outcome themselves (the sweep runner does).
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"

namespace h2 {

class ThreadPool
{
  public:
    /** Spawn @p numThreads workers; must be at least 1. */
    explicit ThreadPool(u32 numThreads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void drain();

    u32 size() const { return static_cast<u32>(workers.size()); }

    /** Jobs whose exceptions escaped into the worker loop (each one a
     *  bug in the submitting code, but never fatal to the pool). */
    u64 caughtExceptions() const
    {
        return escaped.load(std::memory_order_relaxed);
    }

    /** Hardware concurrency, clamped to at least 1. */
    static u32 defaultConcurrency();

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mu;
    std::condition_variable taskCv; ///< work available or stopping
    std::condition_variable idleCv; ///< queue empty and workers idle
    u32 active = 0;
    bool stopping = false;
    std::atomic<u64> escaped{0};
};

} // namespace h2
