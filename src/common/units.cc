#include "common/units.h"

#include <cstdio>

namespace h2 {

std::string
formatBytes(u64 bytes)
{
    char buf[32];
    if (bytes >= GiB && bytes % GiB == 0)
        std::snprintf(buf, sizeof(buf), "%lluGiB",
                      static_cast<unsigned long long>(bytes / GiB));
    else if (bytes >= GiB)
        std::snprintf(buf, sizeof(buf), "%.2fGiB", double(bytes) / double(GiB));
    else if (bytes >= MiB && bytes % MiB == 0)
        std::snprintf(buf, sizeof(buf), "%lluMiB",
                      static_cast<unsigned long long>(bytes / MiB));
    else if (bytes >= MiB)
        std::snprintf(buf, sizeof(buf), "%.2fMiB", double(bytes) / double(MiB));
    else if (bytes >= KiB)
        std::snprintf(buf, sizeof(buf), "%lluKiB",
                      static_cast<unsigned long long>(bytes / KiB));
    else
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

std::string
formatTime(Tick ps)
{
    char buf[32];
    if (ps >= psPerMs)
        std::snprintf(buf, sizeof(buf), "%.2fms", double(ps) / double(psPerMs));
    else if (ps >= psPerUs)
        std::snprintf(buf, sizeof(buf), "%.2fus", double(ps) / double(psPerUs));
    else if (ps >= psPerNs)
        std::snprintf(buf, sizeof(buf), "%.2fns", double(ps) / double(psPerNs));
    else
        std::snprintf(buf, sizeof(buf), "%llups",
                      static_cast<unsigned long long>(ps));
    return buf;
}

} // namespace h2
