#include "common/units.h"

#include <cstdio>

namespace h2 {

std::string
formatBytes(u64 bytes)
{
    char buf[32];
    if (bytes >= GiB && bytes % GiB == 0)
        std::snprintf(buf, sizeof(buf), "%lluGiB",
                      (unsigned long long)(bytes / GiB));
    else if (bytes >= GiB)
        std::snprintf(buf, sizeof(buf), "%.2fGiB", (double)bytes / GiB);
    else if (bytes >= MiB && bytes % MiB == 0)
        std::snprintf(buf, sizeof(buf), "%lluMiB",
                      (unsigned long long)(bytes / MiB));
    else if (bytes >= MiB)
        std::snprintf(buf, sizeof(buf), "%.2fMiB", (double)bytes / MiB);
    else if (bytes >= KiB)
        std::snprintf(buf, sizeof(buf), "%lluKiB",
                      (unsigned long long)(bytes / KiB));
    else
        std::snprintf(buf, sizeof(buf), "%lluB", (unsigned long long)bytes);
    return buf;
}

std::string
formatTime(Tick ps)
{
    char buf[32];
    if (ps >= psPerMs)
        std::snprintf(buf, sizeof(buf), "%.2fms", (double)ps / psPerMs);
    else if (ps >= psPerUs)
        std::snprintf(buf, sizeof(buf), "%.2fus", (double)ps / psPerUs);
    else if (ps >= psPerNs)
        std::snprintf(buf, sizeof(buf), "%.2fns", (double)ps / psPerNs);
    else
        std::snprintf(buf, sizeof(buf), "%llups", (unsigned long long)ps);
    return buf;
}

} // namespace h2
