#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/log.h"

namespace h2 {

JsonWriter::JsonWriter(bool pretty)
    : prettyPrint(pretty)
{
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

std::string
JsonWriter::formatDouble(double v)
{
    // to_chars renders non-finite values as "nan"/"inf", which is
    // valid in neither JSON nor the CSV consumed by the plotting
    // scripts. Zero-count averages must already be guarded at the stat
    // source; render anything that slips through as 0 so one bad cell
    // cannot poison a whole report.
    if (!std::isfinite(v))
        return "0";
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    h2_assert(ec == std::errc{}, "double format overflow");
    return std::string(buf, ptr);
}

void
JsonWriter::newlineIndent()
{
    if (!prettyPrint)
        return;
    out += '\n';
    out.append(2 * stack.size(), ' ');
}

void
JsonWriter::beforeValue()
{
    if (stack.empty()) {
        h2_assert(out.empty(), "multiple top-level JSON values");
        return;
    }
    Scope &top = stack.back();
    if (top.isArray) {
        h2_assert(!keyPending, "key inside a JSON array");
        if (top.items++)
            out += ',';
        newlineIndent();
    } else {
        h2_assert(keyPending, "JSON object value without a key");
        keyPending = false;
    }
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    h2_assert(!stack.empty() && !stack.back().isArray,
              "JSON key outside an object");
    h2_assert(!keyPending, "two JSON keys in a row");
    if (stack.back().items++)
        out += ',';
    newlineIndent();
    out += '"';
    out += escape(k);
    out += prettyPrint ? "\": " : "\":";
    keyPending = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out += '{';
    stack.push_back({false, 0});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    h2_assert(!stack.empty() && !stack.back().isArray && !keyPending,
              "unbalanced endObject");
    bool hadItems = stack.back().items > 0;
    stack.pop_back();
    if (hadItems)
        newlineIndent();
    out += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out += '[';
    stack.push_back({true, 0});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    h2_assert(!stack.empty() && stack.back().isArray,
              "unbalanced endArray");
    bool hadItems = stack.back().items > 0;
    stack.pop_back();
    if (hadItems)
        newlineIndent();
    out += ']';
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    beforeValue();
    out += '"';
    out += escape(v);
    out += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v))
        return null();
    beforeValue();
    out += formatDouble(v);
    return *this;
}

JsonWriter &
JsonWriter::value(u64 v)
{
    beforeValue();
    out += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    beforeValue();
    out += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    out += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    out += "null";
    return *this;
}

const std::string &
JsonWriter::str() const
{
    h2_assert(stack.empty() && !out.empty(),
              "JsonWriter::str on an unfinished document");
    return out;
}

double
JsonValue::asDouble() const
{
    h2_assert(type == Type::Number, "asDouble on a non-number");
    double v = 0.0;
    auto [ptr, ec] = std::from_chars(scalar.data(),
                                     scalar.data() + scalar.size(), v);
    h2_assert(ec == std::errc{} && ptr == scalar.data() + scalar.size(),
              "unparseable number token '", scalar, "'");
    return v;
}

u64
JsonValue::asU64() const
{
    h2_assert(type == Type::Number, "asU64 on a non-number");
    u64 v = 0;
    auto [ptr, ec] = std::from_chars(scalar.data(),
                                     scalar.data() + scalar.size(), v);
    if (ec == std::errc{} && ptr == scalar.data() + scalar.size())
        return v;
    double d = asDouble();
    return d <= 0.0 ? 0 : static_cast<u64>(d);
}

bool
JsonValue::asBool() const
{
    h2_assert(type == Type::Bool, "asBool on a non-bool");
    return boolean;
}

const std::string &
JsonValue::asString() const
{
    h2_assert(type == Type::String, "asString on a non-string");
    return scalar;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[name, value] : members)
        if (name == key)
            return &value;
    return nullptr;
}

namespace {

/** Recursive-descent parser over the exact grammar JsonWriter emits
 *  (standard JSON; no extensions). Depth-limited so a hostile journal
 *  line cannot overflow the stack. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text)
        : in(text)
    {
    }

    std::optional<JsonValue>
    document(std::string *error)
    {
        JsonValue v;
        if (!value(v))
            return failOut(error);
        skipWs();
        if (pos != in.size()) {
            err = "trailing garbage after the document";
            return failOut(error);
        }
        return v;
    }

  private:
    static constexpr u32 kMaxDepth = 64;

    std::optional<JsonValue>
    failOut(std::string *error) const
    {
        if (error)
            *error = detail::concat("JSON parse error at byte ", pos,
                                    ": ", err);
        return std::nullopt;
    }

    bool
    fail(const std::string &why)
    {
        if (err.empty())
            err = why;
        return false;
    }

    void
    skipWs()
    {
        while (pos < in.size() &&
               (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\n' ||
                in[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < in.size() && in[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (in.substr(pos, word.size()) != word)
            return false;
        pos += word.size();
        return true;
    }

    bool
    value(JsonValue &out)
    {
        if (++depth > kMaxDepth)
            return fail("nesting deeper than 64 levels");
        skipWs();
        bool ok;
        if (pos >= in.size()) {
            ok = fail("unexpected end of input");
        } else if (in[pos] == '{') {
            ok = object(out);
        } else if (in[pos] == '[') {
            ok = array(out);
        } else if (in[pos] == '"') {
            out.type = JsonValue::Type::String;
            ok = string(out.scalar);
        } else if (literal("true")) {
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            ok = true;
        } else if (literal("false")) {
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            ok = true;
        } else if (literal("null")) {
            out.type = JsonValue::Type::Null;
            ok = true;
        } else {
            ok = number(out);
        }
        --depth;
        return ok;
    }

    bool
    object(JsonValue &out)
    {
        out.type = JsonValue::Type::Object;
        ++pos; // '{'
        skipWs();
        if (consume('}'))
            return true;
        while (true) {
            skipWs();
            if (pos >= in.size() || in[pos] != '"')
                return fail("expected an object key");
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':' after an object key");
            JsonValue member;
            if (!value(member))
                return false;
            out.members.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}' in an object");
        }
    }

    bool
    array(JsonValue &out)
    {
        out.type = JsonValue::Type::Array;
        ++pos; // '['
        skipWs();
        if (consume(']'))
            return true;
        while (true) {
            JsonValue item;
            if (!value(item))
                return false;
            out.items.push_back(std::move(item));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']' in an array");
        }
    }

    bool
    string(std::string &out)
    {
        ++pos; // opening quote
        while (pos < in.size()) {
            unsigned char c = in[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                if (!escapeSequence(out))
                    return false;
                continue;
            }
            if (c < 0x20)
                return fail("raw control character inside a string");
            out += char(c);
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    escapeSequence(std::string &out)
    {
        ++pos; // backslash
        if (pos >= in.size())
            return fail("unterminated escape");
        char c = in[pos++];
        switch (c) {
        case '"': out += '"'; return true;
        case '\\': out += '\\'; return true;
        case '/': out += '/'; return true;
        case 'b': out += '\b'; return true;
        case 'f': out += '\f'; return true;
        case 'n': out += '\n'; return true;
        case 'r': out += '\r'; return true;
        case 't': out += '\t'; return true;
        case 'u': return unicodeEscape(out);
        default: return fail("unknown escape sequence");
        }
    }

    bool
    hex4(u32 &out)
    {
        if (pos + 4 > in.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = in[pos++];
            u32 digit;
            if (c >= '0' && c <= '9')
                digit = u32(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = u32(c - 'a') + 10;
            else if (c >= 'A' && c <= 'F')
                digit = u32(c - 'A') + 10;
            else
                return fail("bad hex digit in \\u escape");
            out = out << 4 | digit;
        }
        return true;
    }

    bool
    unicodeEscape(std::string &out)
    {
        u32 cp;
        if (!hex4(cp))
            return false;
        // Surrogate pair: a high surrogate must be followed by \uDC00-
        // \uDFFF; combine into one code point.
        if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos + 2 > in.size() || in[pos] != '\\' ||
                in[pos + 1] != 'u')
                return fail("unpaired high surrogate");
            pos += 2;
            u32 lo;
            if (!hex4(lo))
                return false;
            if (lo < 0xDC00 || lo > 0xDFFF)
                return fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired low surrogate");
        }
        // UTF-8 encode.
        if (cp < 0x80) {
            out += char(cp);
        } else if (cp < 0x800) {
            out += char(0xC0 | cp >> 6);
            out += char(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += char(0xE0 | cp >> 12);
            out += char(0x80 | (cp >> 6 & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        } else {
            out += char(0xF0 | cp >> 18);
            out += char(0x80 | (cp >> 12 & 0x3F));
            out += char(0x80 | (cp >> 6 & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        }
        return true;
    }

    bool
    number(JsonValue &out)
    {
        size_t start = pos;
        consume('-');
        while (pos < in.size() &&
               ((in[pos] >= '0' && in[pos] <= '9') || in[pos] == '.' ||
                in[pos] == 'e' || in[pos] == 'E' || in[pos] == '+' ||
                in[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("expected a value");
        std::string token(in.substr(start, pos - start));
        // Validate the token shape by reparsing it as a double.
        double d = 0.0;
        auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), d);
        if (ec != std::errc{} || ptr != token.data() + token.size())
            return fail(detail::concat("bad number token '", token, "'"));
        out.type = JsonValue::Type::Number;
        out.scalar = std::move(token);
        return true;
    }

    std::string_view in;
    size_t pos = 0;
    u32 depth = 0;
    std::string err;
};

} // namespace

std::optional<JsonValue>
parseJson(std::string_view text, std::string *error)
{
    return JsonParser(text).document(error);
}

} // namespace h2
