#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/log.h"

namespace h2 {

JsonWriter::JsonWriter(bool pretty)
    : prettyPrint(pretty)
{
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

std::string
JsonWriter::formatDouble(double v)
{
    // to_chars renders non-finite values as "nan"/"inf", which is
    // valid in neither JSON nor the CSV consumed by the plotting
    // scripts. Zero-count averages must already be guarded at the stat
    // source; render anything that slips through as 0 so one bad cell
    // cannot poison a whole report.
    if (!std::isfinite(v))
        return "0";
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    h2_assert(ec == std::errc{}, "double format overflow");
    return std::string(buf, ptr);
}

void
JsonWriter::newlineIndent()
{
    if (!prettyPrint)
        return;
    out += '\n';
    out.append(2 * stack.size(), ' ');
}

void
JsonWriter::beforeValue()
{
    if (stack.empty()) {
        h2_assert(out.empty(), "multiple top-level JSON values");
        return;
    }
    Scope &top = stack.back();
    if (top.isArray) {
        h2_assert(!keyPending, "key inside a JSON array");
        if (top.items++)
            out += ',';
        newlineIndent();
    } else {
        h2_assert(keyPending, "JSON object value without a key");
        keyPending = false;
    }
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    h2_assert(!stack.empty() && !stack.back().isArray,
              "JSON key outside an object");
    h2_assert(!keyPending, "two JSON keys in a row");
    if (stack.back().items++)
        out += ',';
    newlineIndent();
    out += '"';
    out += escape(k);
    out += prettyPrint ? "\": " : "\":";
    keyPending = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out += '{';
    stack.push_back({false, 0});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    h2_assert(!stack.empty() && !stack.back().isArray && !keyPending,
              "unbalanced endObject");
    bool hadItems = stack.back().items > 0;
    stack.pop_back();
    if (hadItems)
        newlineIndent();
    out += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out += '[';
    stack.push_back({true, 0});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    h2_assert(!stack.empty() && stack.back().isArray,
              "unbalanced endArray");
    bool hadItems = stack.back().items > 0;
    stack.pop_back();
    if (hadItems)
        newlineIndent();
    out += ']';
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    beforeValue();
    out += '"';
    out += escape(v);
    out += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v))
        return null();
    beforeValue();
    out += formatDouble(v);
    return *this;
}

JsonWriter &
JsonWriter::value(u64 v)
{
    beforeValue();
    out += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    beforeValue();
    out += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    out += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    out += "null";
    return *this;
}

const std::string &
JsonWriter::str() const
{
    h2_assert(stack.empty() && !out.empty(),
              "JsonWriter::str on an unfinished document");
    return out;
}

} // namespace h2
