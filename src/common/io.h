/**
 * @file
 * Crash-safe file publication shared by every artifact writer
 * (reports, trace dumps, bench JSON).
 *
 * writeFileAtomic writes the payload to "<path>.tmp", flushes and
 * fsyncs it, then rename()s over the final path — so a reader can only
 * ever observe the old file or the complete new one, never a truncated
 * artifact that still parses as valid JSON/CSV/trace.
 */

#pragma once

#include <string>
#include <string_view>

namespace h2 {

/**
 * Atomically replace @p path with @p contents via write-temp-then-
 * rename. Returns "" on success, otherwise an actionable error message
 * (the temp file is cleaned up on failure).
 */
std::string writeFileAtomic(const std::string &path,
                            std::string_view contents);

namespace detail {

/** Test hook: abort() after the temp file is durable but before the
 *  rename, emulating a crash mid-publish (tests assert the final path
 *  is untouched). */
extern bool crashBeforeRenameForTest;

} // namespace detail
} // namespace h2
