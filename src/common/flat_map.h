/**
 * @file
 * Open-addressed hash table from u64 keys to small values.
 *
 * The remap / inverted-remap tables sit on the per-access hot path and
 * were the last remaining users of std::unordered_map there. This table
 * replaces them: flat key and value lanes (struct-of-arrays, so the
 * probe walk streams over 8-byte keys only), power-of-two capacity,
 * SplitMix64 hashing with linear probing, no per-node allocation, and
 * no erase support (the remap tables only ever insert or overwrite).
 *
 * The all-ones key is reserved as the empty-slot sentinel; callers index
 * sectors/locations, which are always far below 2^64 - 1.
 *
 * Capacity only affects probe paths, never results, so callers that
 * know their steady-state population (RemapTable does: it is bounded
 * by the NM sector count) can call reserveExact() up-front and never
 * pay a rehash mid-run.
 */

#pragma once

#include <algorithm>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "common/types.h"

namespace h2 {

template <typename V>
class FlatMap64
{
  public:
    /** @param expectedEntries sizing hint; the table grows as needed. */
    explicit FlatMap64(u64 expectedEntries = 0)
    {
        growTo(capacityFor(expectedEntries));
    }

    /** Pointer to @p key's value, or nullptr when absent. */
    const V *
    find(u64 key) const
    {
        u64 i = probe(key);
        return keyLane[i] == key ? &valueLane[i] : nullptr;
    }

    V *
    find(u64 key)
    {
        u64 i = probe(key);
        return keyLane[i] == key ? &valueLane[i] : nullptr;
    }

    /** Insert @p key or overwrite its existing value. */
    void
    set(u64 key, V value)
    {
        u64 i = probe(key);
        if (keyLane[i] == kEmpty) {
            if ((count + 1) * 10 > keyLane.size() * 7) {
                growTo(keyLane.size() * 2);
                i = probe(key);
            }
            keyLane[i] = key;
            ++count;
        }
        valueLane[i] = std::move(value);
    }

    /**
     * Size the table for @p expectedEntries up-front, ignoring the
     * sizing-hint cap: capacity becomes the smallest power of two
     * keeping the load factor under 70%, so a population up to the
     * bound never triggers a mid-run rehash. Never shrinks; existing
     * entries are preserved.
     */
    void
    reserveExact(u64 expectedEntries)
    {
        u64 want = expectedEntries + expectedEntries / 2 + 1;
        u64 cap = 16;
        while (cap < want)
            cap <<= 1;
        if (cap > keyLane.size())
            growTo(cap);
    }

    u64 size() const { return count; }
    u64 capacity() const { return keyLane.size(); }

  private:
    static constexpr u64 kEmpty = ~u64(0);

    static u64
    capacityFor(u64 expected)
    {
        // Headroom for a <=70% load factor, capped so sparse use of a
        // huge domain (all-to-all remap tables) stays cheap; the table
        // doubles on demand past the cap, and reserveExact() lifts the
        // cap for callers with a known bound.
        u64 want = expected + expected / 2 + 1;
        want = std::min<u64>(want, u64(1) << 16);
        u64 cap = 16;
        while (cap < want)
            cap <<= 1;
        return cap;
    }

    /** Index of @p key's slot, or of the empty slot where it would go. */
    u64
    probe(u64 key) const
    {
        // Without this, find(kEmpty) would "hit" an empty slot.
        h2_assert(key != kEmpty, "FlatMap64 key reserved for empty slots");
        u64 mask = keyLane.size() - 1;
        u64 idx = splitmix64(key) & mask;
        while (keyLane[idx] != key && keyLane[idx] != kEmpty)
            idx = (idx + 1) & mask;
        return idx;
    }

    void
    growTo(u64 newCapacity)
    {
        std::vector<u64> oldKeys = std::move(keyLane);
        std::vector<V> oldValues = std::move(valueLane);
        keyLane.assign(newCapacity, kEmpty);
        valueLane.assign(newCapacity, V{});
        for (u64 i = 0; i < oldKeys.size(); ++i) {
            if (oldKeys[i] == kEmpty)
                continue;
            u64 idx = probe(oldKeys[i]);
            keyLane[idx] = oldKeys[i];
            valueLane[idx] = std::move(oldValues[i]);
        }
    }

    std::vector<u64> keyLane;
    std::vector<V> valueLane;
    u64 count = 0;
};

} // namespace h2
