/**
 * @file
 * Open-addressed hash table from u64 keys to small values.
 *
 * The remap / inverted-remap tables sit on the per-access hot path and
 * were the last remaining users of std::unordered_map there. This table
 * replaces them: one flat slot array, power-of-two capacity, SplitMix64
 * hashing with linear probing, no per-node allocation, and no erase
 * support (the remap tables only ever insert or overwrite).
 *
 * The all-ones key is reserved as the empty-slot sentinel; callers index
 * sectors/locations, which are always far below 2^64 - 1.
 */

#pragma once

#include <algorithm>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "common/types.h"

namespace h2 {

template <typename V>
class FlatMap64
{
  public:
    /** @param expectedEntries sizing hint; the table grows as needed. */
    explicit FlatMap64(u64 expectedEntries = 0)
    {
        slots.resize(capacityFor(expectedEntries));
    }

    /** Pointer to @p key's value, or nullptr when absent. */
    const V *
    find(u64 key) const
    {
        const Slot &s = slots[probe(key)];
        return s.key == key ? &s.value : nullptr;
    }

    V *
    find(u64 key)
    {
        Slot &s = slots[probe(key)];
        return s.key == key ? &s.value : nullptr;
    }

    /** Insert @p key or overwrite its existing value. */
    void
    set(u64 key, V value)
    {
        Slot *s = &slots[probe(key)];
        if (s->key == kEmpty) {
            if ((count + 1) * 10 > slots.size() * 7) {
                grow();
                s = &slots[probe(key)];
            }
            s->key = key;
            ++count;
        }
        s->value = std::move(value);
    }

    u64 size() const { return count; }
    u64 capacity() const { return slots.size(); }

  private:
    struct Slot
    {
        u64 key = kEmpty;
        V value{};
    };

    static constexpr u64 kEmpty = ~u64(0);

    static u64
    capacityFor(u64 expected)
    {
        // Headroom for a <=70% load factor, capped so sparse use of a
        // huge domain (all-to-all remap tables) stays cheap; the table
        // doubles on demand past the cap.
        u64 want = expected + expected / 2 + 1;
        want = std::min<u64>(want, u64(1) << 16);
        u64 cap = 16;
        while (cap < want)
            cap <<= 1;
        return cap;
    }

    /** Index of @p key's slot, or of the empty slot where it would go. */
    u64
    probe(u64 key) const
    {
        // Without this, find(kEmpty) would "hit" an empty slot.
        h2_assert(key != kEmpty, "FlatMap64 key reserved for empty slots");
        u64 mask = slots.size() - 1;
        u64 idx = splitmix64(key) & mask;
        while (slots[idx].key != key && slots[idx].key != kEmpty)
            idx = (idx + 1) & mask;
        return idx;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots);
        slots.clear();
        slots.resize(old.size() * 2);
        for (Slot &s : old) {
            if (s.key == kEmpty)
                continue;
            Slot &fresh = slots[probe(s.key)];
            fresh.key = s.key;
            fresh.value = std::move(s.value);
        }
    }

    std::vector<Slot> slots;
    u64 count = 0;
};

} // namespace h2
