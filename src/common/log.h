/**
 * @file
 * Status/error reporting in the gem5 spirit.
 *
 * panic()  - an internal simulator invariant broke (a bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something is approximated; simulation continues.
 * inform() - plain status output.
 */

#ifndef H2_COMMON_LOG_H
#define H2_COMMON_LOG_H

#include <sstream>
#include <string>

namespace h2 {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Globally silence warn()/inform() (used by benches for clean tables). */
void setLogQuiet(bool quiet);
bool logQuiet();

} // namespace h2

#define h2_panic(...) \
    ::h2::detail::panicImpl(__FILE__, __LINE__, \
                            ::h2::detail::concat(__VA_ARGS__))
#define h2_fatal(...) \
    ::h2::detail::fatalImpl(__FILE__, __LINE__, \
                            ::h2::detail::concat(__VA_ARGS__))
#define h2_warn(...) \
    ::h2::detail::warnImpl(::h2::detail::concat(__VA_ARGS__))
#define h2_inform(...) \
    ::h2::detail::informImpl(::h2::detail::concat(__VA_ARGS__))

/** Invariant check that survives NDEBUG; use for simulator correctness. */
#define h2_assert(cond, ...) \
    do { \
        if (!(cond)) \
            h2_panic("assertion failed: " #cond " ", ##__VA_ARGS__); \
    } while (0)

#endif // H2_COMMON_LOG_H
