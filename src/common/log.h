/**
 * @file
 * Status/error reporting in the gem5 spirit.
 *
 * panic()  - an internal simulator invariant broke (a bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits
 *            the process, unless a ScopedFatalCapture is active on the
 *            calling thread, in which case it throws FatalError so the
 *            caller can contain the failure (the sweep engine wraps
 *            every simulation in one).
 * warn()   - something is approximated; simulation continues.
 * inform() - plain status output.
 */

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace h2 {

/** An h2_fatal captured as an exception (see ScopedFatalCapture). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/**
 * RAII seam that makes h2_fatal recoverable on the current thread:
 * while at least one capture is alive, fatalImpl throws FatalError
 * instead of printing and exiting. Nestable. Thread-local, so a sweep
 * worker capturing a bad per-point config never changes the CLI-level
 * report-and-exit behavior of the main thread (or of other workers).
 */
class ScopedFatalCapture
{
  public:
    ScopedFatalCapture();
    ~ScopedFatalCapture();

    ScopedFatalCapture(const ScopedFatalCapture &) = delete;
    ScopedFatalCapture &operator=(const ScopedFatalCapture &) = delete;

    /** True iff a capture is active on the calling thread. */
    static bool active();
};

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Globally silence warn()/inform() (used by benches for clean tables). */
void setLogQuiet(bool quiet);
bool logQuiet();

} // namespace h2

#define h2_panic(...) \
    ::h2::detail::panicImpl(__FILE__, __LINE__, \
                            ::h2::detail::concat(__VA_ARGS__))
#define h2_fatal(...) \
    ::h2::detail::fatalImpl(__FILE__, __LINE__, \
                            ::h2::detail::concat(__VA_ARGS__))
#define h2_warn(...) \
    ::h2::detail::warnImpl(::h2::detail::concat(__VA_ARGS__))
#define h2_inform(...) \
    ::h2::detail::informImpl(::h2::detail::concat(__VA_ARGS__))

/** Invariant check that survives NDEBUG; use for simulator correctness. */
#define h2_assert(cond, ...) \
    do { \
        if (!(cond)) \
            h2_panic("assertion failed: " #cond " ", ##__VA_ARGS__); \
    } while (0)
