#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>

namespace h2 {

namespace {
// Atomic: sweep workers may warn while the main thread configures.
std::atomic<bool> quietFlag{false};

// Per-thread capture nesting depth; fatalImpl consults it so a worker
// capture never leaks into other threads.
thread_local int fatalCaptureDepth = 0;
} // namespace

ScopedFatalCapture::ScopedFatalCapture()
{
    ++fatalCaptureDepth;
}

ScopedFatalCapture::~ScopedFatalCapture()
{
    --fatalCaptureDepth;
}

bool
ScopedFatalCapture::active()
{
    return fatalCaptureDepth > 0;
}

void
setLogQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
logQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (fatalCaptureDepth > 0)
        throw FatalError(msg);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace h2
