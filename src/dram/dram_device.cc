#include "dram/dram_device.h"

#include <algorithm>

#include "common/log.h"

namespace h2::dram {

DramDevice::DramDevice(const DramParams &params)
    : cfg(params)
{
    h2_assert(cfg.channels > 0 && cfg.banksPerChannel > 0,
              "DRAM geometry must be non-empty");
    h2_assert(isPowerOf2(cfg.interleaveBytes),
              "interleave must be a power of two");
    geo.ilvShift = floorLog2(cfg.interleaveBytes);
    geo.ilvMask = cfg.interleaveBytes - 1;
    geo.chPow2 = isPowerOf2(cfg.channels);
    if (geo.chPow2) {
        geo.chShift = floorLog2(cfg.channels);
        geo.chMask = cfg.channels - 1;
    }
    geo.rowBankPow2 =
        isPowerOf2(cfg.rowBytes) && isPowerOf2(cfg.banksPerChannel);
    if (geo.rowBankPow2) {
        geo.rowShift = floorLog2(cfg.rowBytes);
        geo.bankMask = cfg.banksPerChannel - 1;
        geo.rowBankShift = geo.rowShift + floorLog2(cfg.banksPerChannel);
    }
    u64 beatBytes = u64(cfg.busBytes) * 2;
    geo.beatPow2 = isPowerOf2(beatBytes);
    if (geo.beatPow2) {
        geo.beatShift = floorLog2(beatBytes);
        geo.beatMask = beatBytes - 1;
    }
    channels.resize(cfg.channels);
    for (auto &ch : channels)
        ch.banks.resize(cfg.banksPerChannel);
    if (cfg.trackWear)
        wearBytes.assign(u64(cfg.channels) * cfg.banksPerChannel, 0);
}

Tick
DramDevice::chunkDone(const BankState &bank, u64 row, Tick busUntil,
                      u32 bytes, Tick start) const
{
    u32 latCycles;
    if (bank.open && bank.row == row)
        latCycles = cfg.tCas;
    else if (!bank.open)
        latCycles = cfg.tRcd + cfg.tCas;
    else
        latCycles = cfg.tRp + cfg.tRcd + cfg.tCas;
    Tick cmdDone = start + Tick(latCycles) * cfg.clockPs;
    Tick dataStart = std::max(cmdDone, busUntil);
    // Double data rate: two beats of busBytes per clock.
    return dataStart + burstClocks(bytes) * cfg.clockPs;
}

Tick
DramDevice::accessChunk(Addr addr, u32 bytes, AccessType type, Tick now)
{
    u32 chIdx;
    u64 bankIdx, row;
    decode(addr, chIdx, bankIdx, row);
    ChannelState &ch = channels[chIdx];
    BankState &bank = ch.banks[bankIdx];
    DramStats &counters = ch.stats;

    Tick start = std::max(now, bank.readyAt);
    if (bank.open && bank.row == row) {
        ++counters.rowHits;
    } else if (!bank.open) {
        ++counters.rowEmpty;
        ++counters.activations;
        counters.actEnergyPj += cfg.actPreNj * 1000.0;
    } else {
        ++counters.rowMisses;
        ++counters.activations;
        counters.actEnergyPj += cfg.actPreNj * 1000.0;
    }
    Tick dataEnd = chunkDone(bank, row, ch.busUntil, bytes, start);
    bank.open = true;
    bank.row = row;
    ch.busUntil = dataEnd;
    ch.busyAccum += burstClocks(bytes) * cfg.clockPs;
    bank.readyAt = dataEnd;
    if (dataEnd > ch.lastTick)
        ch.lastTick = dataEnd;

    if (type == AccessType::Read) {
        ++counters.reads;
        counters.bytesRead += bytes;
        counters.readEnergyPj += 8.0 * bytes * cfg.rdPjPerBit;
    } else {
        ++counters.writes;
        counters.bytesWritten += bytes;
        counters.writeEnergyPj += 8.0 * bytes * cfg.wrPjPerBit;
        // Cell programming (PCM): the bank stays busy past the data
        // burst, but the write itself completes with its burst — the
        // cost lands on whoever needs this bank next.
        bank.readyAt = dataEnd + Tick(cfg.tWr) * cfg.clockPs;
        if (cfg.trackWear)
            wearBytes[u64(chIdx) * cfg.banksPerChannel + bankIdx] += bytes;
    }
    return dataEnd;
}

Tick
DramDevice::access(Addr addr, u32 bytes, AccessType type, Tick now)
{
    h2_assert(bytes > 0, "zero-byte DRAM access");
    h2_assert(addr < cfg.capacityBytes && addr + bytes <= cfg.capacityBytes,
              cfg.name, ": access beyond capacity, addr=", addr,
              " bytes=", bytes);
    Tick done = 0;
    Addr cur = addr;
    u64 remaining = bytes;
    while (remaining > 0) {
        u64 inChunk = cfg.interleaveBytes - (cur & geo.ilvMask);
        u32 take = static_cast<u32>(std::min<u64>(inChunk, remaining));
        done = std::max(done, accessChunk(cur, take, type, now));
        cur += take;
        remaining -= take;
    }
    return done;
}

Tick
DramDevice::probeChunkDone(Addr addr, u32 bytes, Tick start) const
{
    u32 chIdx;
    u64 bankIdx, row;
    decode(addr, chIdx, bankIdx, row);
    const ChannelState &ch = channels[chIdx];
    const BankState &bank = ch.banks[bankIdx];
    return chunkDone(bank, row, ch.busUntil,
                     bytes, std::max(start, bank.readyAt));
}

Tick
DramDevice::probeLatency(Addr addr, u32 bytes, Tick now,
                         AccessType type) const
{
    // Const replay of access(): identical chunking, with the bank and
    // bus state a real access would mutate kept in small local
    // overlays so multi-chunk requests that revisit a channel or bank
    // still agree with the mutable path. (The earlier first-chunk
    // shortcut diverged from access() for requests starting inside an
    // interleave block: it sized the first burst from the request
    // length instead of the distance to the chunk boundary.)
    struct BankPatch { u32 ch; u64 bank; BankState state; };
    struct BusPatch { u32 ch; Tick busUntil; };
    std::vector<BankPatch> bankPatches;
    std::vector<BusPatch> busPatches;

    Tick done = 0;
    Addr cur = addr;
    u64 remaining = bytes;
    while (remaining > 0) {
        u64 inChunk = cfg.interleaveBytes - (cur & geo.ilvMask);
        u32 take = static_cast<u32>(std::min<u64>(inChunk, remaining));

        u32 chIdx;
        u64 bankIdx, row;
        decode(cur, chIdx, bankIdx, row);
        BankState bank = channels[chIdx].banks[bankIdx];
        for (const BankPatch &p : bankPatches)
            if (p.ch == chIdx && p.bank == bankIdx)
                bank = p.state;
        Tick busUntil = channels[chIdx].busUntil;
        for (const BusPatch &p : busPatches)
            if (p.ch == chIdx)
                busUntil = p.busUntil;

        Tick start = std::max(now, bank.readyAt);
        Tick dataEnd = chunkDone(bank, row, busUntil, take, start);
        done = std::max(done, dataEnd);

        bank.open = true;
        bank.row = row;
        bank.readyAt = type == AccessType::Write
            ? dataEnd + Tick(cfg.tWr) * cfg.clockPs
            : dataEnd;
        bool found = false;
        for (BankPatch &p : bankPatches)
            if (p.ch == chIdx && p.bank == bankIdx) {
                p.state = bank;
                found = true;
            }
        if (!found)
            bankPatches.push_back({chIdx, bankIdx, bank});
        found = false;
        for (BusPatch &p : busPatches)
            if (p.ch == chIdx) {
                p.busUntil = dataEnd;
                found = true;
            }
        if (!found)
            busPatches.push_back({chIdx, dataEnd});

        cur += take;
        remaining -= take;
    }
    return done - now;
}

DramStats
DramDevice::stats() const
{
    DramStats s;
    for (const ChannelState &ch : channels) {
        s.reads += ch.stats.reads;
        s.writes += ch.stats.writes;
        s.bytesRead += ch.stats.bytesRead;
        s.bytesWritten += ch.stats.bytesWritten;
        s.rowHits += ch.stats.rowHits;
        s.rowMisses += ch.stats.rowMisses;
        s.rowEmpty += ch.stats.rowEmpty;
        s.activations += ch.stats.activations;
        s.readEnergyPj += ch.stats.readEnergyPj;
        s.writeEnergyPj += ch.stats.writeEnergyPj;
        s.actEnergyPj += ch.stats.actEnergyPj;
    }
    return s;
}

Tick
DramDevice::lastActivity() const
{
    Tick t = 0;
    for (const ChannelState &ch : channels)
        t = std::max(t, ch.lastTick);
    return t;
}

double
DramDevice::dynamicEnergyPj() const
{
    DramStats s = stats();
    return s.readEnergyPj + s.writeEnergyPj + s.actEnergyPj;
}

u64
DramDevice::bankWearBytes(u32 ch, u64 bank) const
{
    if (!cfg.trackWear)
        return 0;
    return wearBytes.at(u64(ch) * cfg.banksPerChannel + bank);
}

u64
DramDevice::wearTotalBytes() const
{
    u64 total = 0;
    for (u64 w : wearBytes)
        total += w;
    return total;
}

u64
DramDevice::maxBankWearDelta() const
{
    if (wearBytes.empty())
        return 0;
    auto [lo, hi] = std::minmax_element(wearBytes.begin(), wearBytes.end());
    return *hi - *lo;
}

double
DramDevice::busUtilization(Tick now) const
{
    if (now <= statsSince)
        return 0.0;
    Tick busy = 0;
    for (const auto &ch : channels)
        busy += ch.busyAccum;
    return double(busy) / (double(now - statsSince) * channels.size());
}

void
DramDevice::resetStats()
{
    for (auto &ch : channels) {
        ch.stats = DramStats{};
        ch.busyAccum = 0;
    }
    std::fill(wearBytes.begin(), wearBytes.end(), 0);
    // The utilization window restarts with the busy accumulator: a
    // warm-up reset must not divide post-warm-up busy time by a
    // denominator that still spans warm-up.
    statsSince = lastActivity();
}

void
DramDevice::collectStats(StatSet &out, const std::string &prefix) const
{
    DramStats counters = stats();
    out.add(prefix + ".reads", double(counters.reads));
    out.add(prefix + ".writes", double(counters.writes));
    out.add(prefix + ".bytesRead", double(counters.bytesRead));
    out.add(prefix + ".bytesWritten", double(counters.bytesWritten));
    out.add(prefix + ".rowHits", double(counters.rowHits));
    out.add(prefix + ".rowMisses", double(counters.rowMisses));
    out.add(prefix + ".rowEmpty", double(counters.rowEmpty));
    out.add(prefix + ".activations", double(counters.activations));
    out.add(prefix + ".dynamicEnergyPj", dynamicEnergyPj());
    out.add(prefix + ".readEnergyPj", counters.readEnergyPj);
    out.add(prefix + ".writeEnergyPj", counters.writeEnergyPj);
    out.add(prefix + ".actEnergyPj", counters.actEnergyPj);
    out.add(prefix + ".busUtilization", busUtilization());
    if (cfg.trackWear) {
        out.add(prefix + ".wearTotalBytes", double(wearTotalBytes()));
        out.add(prefix + ".maxBankWearBytes",
                double(*std::max_element(wearBytes.begin(),
                                         wearBytes.end())));
        out.add(prefix + ".maxBankWearDelta", double(maxBankWearDelta()));
    }
}

} // namespace h2::dram
