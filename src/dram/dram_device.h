/**
 * @file
 * Analytic DRAM timing/energy model.
 *
 * Replaces DRAMSim2 from the paper's setup. Every access resolves to
 * channel/bank/row; the model tracks open rows and per-bank/channel
 * busy-until times, which yields row-hit/row-miss latencies, bank
 * conflicts, and bandwidth contention (queueing behind earlier traffic)
 * without a cycle-stepped event loop. Energy is accounted per access
 * (pJ/bit moved) and per activation (ACT/PRE) with Table 1 constants.
 */

#pragma once

#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "dram/dram_params.h"

namespace h2::dram {

/** Aggregate traffic/energy counters of a DramDevice. */
struct DramStats
{
    u64 reads = 0;
    u64 writes = 0;
    u64 bytesRead = 0;
    u64 bytesWritten = 0;
    u64 rowHits = 0;
    u64 rowMisses = 0;       ///< row open to a different row (PRE+ACT)
    u64 rowEmpty = 0;        ///< bank closed (ACT only)
    u64 activations = 0;
    // Per-operation energy accumulation (asymmetric-capable: PCM pays
    // far more per written bit than per read bit).
    double readEnergyPj = 0.0;  ///< sum of bits-read × rdPjPerBit
    double writeEnergyPj = 0.0; ///< sum of bits-written × wrPjPerBit
    double actEnergyPj = 0.0;   ///< sum of activations × actPreNj

    u64 totalBytes() const { return bytesRead + bytesWritten; }
};

/** One bank's open-row and availability state. */
struct BankState
{
    bool open = false;
    u64 row = 0;
    Tick readyAt = 0;
};

/**
 * Per-channel shard of a DramDevice's mutable state: bus occupancy,
 * bank state, and this channel's slice of the traffic/energy counters.
 *
 * The shard is the device's threading seam. An access chunk touches
 * exactly one shard (chunks never cross an interleave boundary), so
 * the controller may advance the write queues of *different* channels
 * from different threads without synchronization — each worker mutates
 * only its own shard. Aggregation (DramDevice::stats() and friends)
 * walks the shards in channel order on the coordinating thread, so
 * serial and sharded execution produce identical totals.
 *
 * Internals are reachable only from src/dram and src/mem (enforced by
 * h2lint rule R1): everything else reads the aggregated DramStats.
 */
struct ChannelState
{
    Tick busUntil = 0;
    Tick busyAccum = 0; ///< total data-bus occupancy, for utilization
    Tick lastTick = 0;  ///< latest chunk completion on this channel
    std::vector<BankState> banks;
    DramStats stats;    ///< this channel's slice of the device counters
};

/**
 * One DRAM device: a group of channels sharing geometry and timing.
 * No internal synchronization, but all mutable state is sharded per
 * channel (ChannelState); callers that never touch the same channel
 * from two threads at once — the queued controller's parallel drain —
 * may advance channels concurrently.
 */
class DramDevice
{
  public:
    explicit DramDevice(const DramParams &params);

    /**
     * Perform an access of @p bytes starting at device address @p addr
     * at time @p now. Accesses wider than the channel interleave are
     * split into chunks that proceed in parallel across channels.
     *
     * @return completion time of the last byte.
     */
    Tick access(Addr addr, u32 bytes, AccessType type, Tick now);

    /**
     * Latency the device would add for a @p bytes access at @p now,
     * without mutating any state (used as the timing oracle in tests).
     *
     * Replays the exact chunking and bank/channel arithmetic of
     * access() against a local overlay of the state the access would
     * mutate, so probe == access-completion - now for any address and
     * size, aligned or not.
     *
     * The probe sees only device state. With the queued controller
     * (mem::MemController, queue=on) a subsequent access may first
     * trigger a write-queue drain that pushes bank/bus availability
     * past what the probe saw — the divergence is intentional: the
     * probe answers "what would the *device* cost", not "what will the
     * controller schedule". In queue=off mode the two are identical
     * (pinned by a property test).
     */
    Tick probeLatency(Addr addr, u32 bytes, Tick now,
                      AccessType type = AccessType::Read) const;

    /** Number of channels (chunk interleave targets). */
    u32 channelCount() const { return static_cast<u32>(channels.size()); }

    /** Data-bus occupancy horizon of channel @p ch. */
    Tick
    channelBusUntil(u32 ch) const
    {
        return channels.at(ch).busUntil;
    }

    /** Earliest tick bank @p bank of channel @p ch can accept a
     *  command. */
    Tick
    bankReadyAt(u32 ch, u64 bank) const
    {
        return channels.at(ch).banks.at(bank).readyAt;
    }

    /** Would a chunk at @p addr hit the currently open row? (FR-FCFS
     *  scheduling hint for mem::MemController.) */
    bool
    wouldRowHit(Addr addr) const
    {
        u32 ch;
        u64 bank, row;
        decode(addr, ch, bank, row);
        const BankState &b = channels[ch].banks[bank];
        return b.open && b.row == row;
    }

    /**
     * Completion tick of a single interleave chunk (@p bytes must not
     * cross an interleave boundary from @p addr) started at @p start,
     * against current device state, without mutating it. Used by the
     * controller to decide whether a queued write fits into an idle
     * gap.
     */
    Tick probeChunkDone(Addr addr, u32 bytes, Tick start) const;

    /**
     * Resolve an address to channel index / bank / row.
     *
     * Hot path: the geometry is folded into shifts and masks at
     * construction when the channel count and row/bank geometry are
     * powers of two (the interleave always is); otherwise a div/mod
     * fallback keeps arbitrary geometries exact. Public so property
     * tests can pin the fast path to the reference arithmetic.
     */
    void
    decode(Addr addr, u32 &channel, u64 &bank, u64 &row) const
    {
        u64 chunk = addr >> geo.ilvShift;
        u64 chAddr;
        if (geo.chPow2) {
            channel = static_cast<u32>(chunk & geo.chMask);
            chAddr = ((chunk >> geo.chShift) << geo.ilvShift)
                | (addr & geo.ilvMask);
        } else {
            channel = static_cast<u32>(chunk % cfg.channels);
            chAddr = ((chunk / cfg.channels) << geo.ilvShift)
                | (addr & geo.ilvMask);
        }
        if (geo.rowBankPow2) {
            bank = (chAddr >> geo.rowShift) & geo.bankMask;
            row = chAddr >> geo.rowBankShift;
        } else {
            bank = (chAddr / cfg.rowBytes) % cfg.banksPerChannel;
            row = chAddr / (u64(cfg.rowBytes) * cfg.banksPerChannel);
        }
    }

    const DramParams &params() const { return cfg; }

    /** Aggregate traffic/energy counters: the per-channel slices
     *  summed in channel order (deterministic regardless of how many
     *  threads advanced the shards). */
    DramStats stats() const;

    /**
     * Dynamic energy consumed since the last resetStats(), in
     * picojoules: the sum of the per-operation read, write, and
     * activate/precharge accumulations (asymmetric read/write energy
     * under PCM presets).
     */
    double dynamicEnergyPj() const;

    /** Bytes ever written to bank @p bank of channel @p ch since the
     *  last resetStats() (0 unless params().trackWear). */
    u64 bankWearBytes(u32 ch, u64 bank) const;

    /** Sum of per-bank wear counters (== bytesWritten in the stats
     *  window; 0 unless params().trackWear). */
    u64 wearTotalBytes() const;

    /** Spread between the most- and least-written bank — the
     *  write-leveling imbalance a wear-aware policy should minimize
     *  (0 unless params().trackWear). */
    u64 maxBankWearDelta() const;

    /**
     * Fraction of data-bus time used in [statsSince, now], where
     * statsSince is the tick of the last resetStats() (0 before any
     * reset). The busy accumulator and the window start reset
     * together, so a post-warm-up reset does not leave a cleared
     * numerator over a denominator that still spans warm-up.
     */
    double busUtilization(Tick now) const;

    /** busUtilization over [statsSince, last activity seen] — the
     *  window stats collection uses when no external clock is at
     *  hand. */
    double busUtilization() const { return busUtilization(lastActivity()); }

    /** Tick stats have accumulated since (last resetStats, or 0). */
    Tick statsSinceTick() const { return statsSince; }

    void resetStats();

    /** Collect counters into @p out under the prefix @p prefix. */
    void collectStats(StatSet &out, const std::string &prefix) const;

  private:
    /** Shift/mask view of the geometry, precomputed at construction. */
    struct Geometry
    {
        u32 ilvShift = 0;
        u64 ilvMask = 0;
        bool chPow2 = false;
        u32 chShift = 0;
        u64 chMask = 0;
        bool rowBankPow2 = false;
        u32 rowShift = 0;
        u64 bankMask = 0;
        u32 rowBankShift = 0;
        bool beatPow2 = false; ///< busBytes * 2 is a power of two
        u32 beatShift = 0;
        u64 beatMask = 0;
    };

    /** DDR beats needed to move @p bytes (two beats of busBytes/clock). */
    u64
    burstClocks(u64 bytes) const
    {
        if (geo.beatPow2)
            return (bytes + geo.beatMask) >> geo.beatShift;
        return ceilDiv(bytes, u64(cfg.busBytes) * 2);
    }

    Tick accessChunk(Addr addr, u32 bytes, AccessType type, Tick now);

    /** Chunk completion given explicit bank/bus state (shared by the
     *  mutable path's arithmetic and the const probes). */
    Tick chunkDone(const BankState &bank, u64 row, Tick busUntil,
                   u32 bytes, Tick start) const;

    /** Latest activity (chunk completion) across all shards. */
    Tick lastActivity() const;

    DramParams cfg;
    Geometry geo;
    std::vector<ChannelState> channels;
    /** Per-bank written-bytes wear counters, indexed
     *  [channel * banksPerChannel + bank]; empty unless trackWear.
     *  Flat but shard-safe: a channel's workers touch only its own
     *  index range. */
    std::vector<u64> wearBytes;
    Tick statsSince = 0; ///< window start for busUtilization
};

} // namespace h2::dram
