#include "dram/dram_params.h"

namespace h2::dram {

double
DramParams::peakBandwidthBytesPerSec() const
{
    // DDR: two beats of busBytes per clock.
    double bytesPerClock = 2.0 * busBytes * channels;
    return bytesPerClock / (clockPs * 1e-12);
}

DramParams
DramParams::hbm2(u64 capacityBytes)
{
    DramParams p;
    p.name = "HBM2";
    p.capacityBytes = capacityBytes;
    p.channels = 8;
    p.banksPerChannel = 8;
    p.busBytes = 16;   // 128-bit
    p.clockPs = 500;   // 2 GHz
    p.tCas = 7;
    p.tRcd = 7;
    p.tRp = 7;
    p.rowBytes = 2048;
    p.interleaveBytes = 256;
    p.rdwrPjPerBit = 6.4;
    p.actPreNj = 15.0;
    return p;
}

DramParams
DramParams::ddr4_3200(u64 capacityBytes)
{
    DramParams p;
    p.name = "DDR4-3200";
    p.capacityBytes = capacityBytes;
    p.channels = 2;
    p.banksPerChannel = 8;
    p.busBytes = 8;    // 64-bit
    p.clockPs = 625;   // 1.6 GHz command clock, 3200 MT/s
    p.tCas = 22;
    p.tRcd = 22;
    p.tRp = 22;
    p.rowBytes = 8192;
    p.interleaveBytes = 256;
    p.rdwrPjPerBit = 33.0;
    p.actPreNj = 15.0;
    return p;
}

} // namespace h2::dram
