#include "dram/dram_params.h"

#include "common/log.h"

namespace h2::dram {

const char *
to_string(FarMemTech tech)
{
    switch (tech) {
    case FarMemTech::Dram: return "dram";
    case FarMemTech::Pcm: return "pcm";
    }
    h2_panic("unknown FarMemTech");
}

std::optional<FarMemTech>
parseFarMemTech(std::string_view text)
{
    if (text == "dram")
        return FarMemTech::Dram;
    if (text == "pcm")
        return FarMemTech::Pcm;
    return std::nullopt;
}

double
DramParams::peakBandwidthBytesPerSec() const
{
    // DDR: two beats of busBytes per clock.
    double bytesPerClock = 2.0 * busBytes * channels;
    return bytesPerClock / (clockPs * 1e-12);
}

DramParams
DramParams::hbm2(u64 capacityBytes)
{
    DramParams p;
    p.name = "HBM2";
    p.capacityBytes = capacityBytes;
    p.channels = 8;
    p.banksPerChannel = 8;
    p.busBytes = 16;   // 128-bit
    p.clockPs = 500;   // 2 GHz
    p.tCas = 7;
    p.tRcd = 7;
    p.tRp = 7;
    p.rowBytes = 2048;
    p.interleaveBytes = 256;
    p.rdPjPerBit = 6.4;
    p.wrPjPerBit = 6.4;
    p.actPreNj = 15.0;
    return p;
}

DramParams
DramParams::ddr4_3200(u64 capacityBytes)
{
    DramParams p;
    p.name = "DDR4-3200";
    p.capacityBytes = capacityBytes;
    p.channels = 2;
    p.banksPerChannel = 8;
    p.busBytes = 8;    // 64-bit
    p.clockPs = 625;   // 1.6 GHz command clock, 3200 MT/s
    p.tCas = 22;
    p.tRcd = 22;
    p.tRp = 22;
    p.rowBytes = 8192;
    p.interleaveBytes = 256;
    p.rdPjPerBit = 33.0;
    p.wrPjPerBit = 33.0;
    p.actPreNj = 15.0;
    return p;
}

DramParams
DramParams::pcm(u64 capacityBytes)
{
    DramParams p;
    p.name = "PCM";
    p.capacityBytes = capacityBytes;
    p.channels = 2;
    p.banksPerChannel = 8;
    p.busBytes = 8;    // DDR4-style 64-bit interface
    p.clockPs = 625;   // 1.6 GHz command clock
    p.tCas = 28;       // row-buffer hit near DRAM speed
    p.tRcd = 88;       // ~55 ns array read into the row buffer
    p.tRp = 22;
    p.tWr = 240;       // ~150 ns cell programming after a write burst
    p.rowBytes = 4096; // smaller row buffers than DDR4
    p.interleaveBytes = 256;
    p.rdPjPerBit = 4.4;  // array reads are cheap...
    p.wrPjPerBit = 23.1; // ...RESET/SET programming is not
    p.actPreNj = 15.0;
    p.trackWear = true;
    return p;
}

DramParams
DramParams::farMemory(FarMemTech tech, u64 capacityBytes)
{
    switch (tech) {
    case FarMemTech::Dram: return ddr4_3200(capacityBytes);
    case FarMemTech::Pcm: return pcm(capacityBytes);
    }
    h2_panic("unknown FarMemTech");
}

} // namespace h2::dram
