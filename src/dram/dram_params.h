/**
 * @file
 * DRAM device timing/energy parameters with the paper's Table 1 presets.
 */

#pragma once

#include <string>

#include "common/types.h"

namespace h2::dram {

/**
 * Parameters of one DRAM device (a set of channels with identical
 * geometry and timing). Timings are in device clock cycles; the clock
 * period is in picoseconds. Data moves at double data rate (two beats of
 * @c busBytes per clock).
 */
struct DramParams
{
    std::string name;
    u64 capacityBytes = 0;
    u32 channels = 1;
    u32 banksPerChannel = 8;
    u32 busBytes = 8;        ///< data bus width per channel, in bytes
    Tick clockPs = 625;      ///< device clock period
    u32 tCas = 22;           ///< column access latency (cycles)
    u32 tRcd = 22;           ///< RAS-to-CAS delay (cycles)
    u32 tRp = 22;            ///< row precharge (cycles)
    u32 rowBytes = 2048;     ///< row-buffer size per bank
    u32 interleaveBytes = 256; ///< channel interleave granularity
    double rdwrPjPerBit = 33.0; ///< RD/WR + I/O energy, pJ/bit
    double actPreNj = 15.0;  ///< activate+precharge energy, nJ per ACT

    /** Peak bandwidth in bytes/second across all channels. */
    double peakBandwidthBytesPerSec() const;

    /**
     * HBM2 near memory per Table 1: 2 GHz, 8 128-bit channels, 8 banks,
     * 7-7-7, 6.4 pJ/bit RD/WR+I/O, 15 nJ ACT/PRE.
     */
    static DramParams hbm2(u64 capacityBytes);

    /**
     * DDR4-3200 far memory per Table 1: 2 64-bit channels, 8 banks,
     * 22-22-22, 33 pJ/bit RD/WR+I/O, 15 nJ ACT/PRE.
     */
    static DramParams ddr4_3200(u64 capacityBytes);
};

} // namespace h2::dram
