/**
 * @file
 * Memory device timing/energy parameters: the paper's Table 1 DRAM
 * presets plus a PCM-like non-volatile far-memory preset.
 */

#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/types.h"

namespace h2::dram {

/** Far-memory technology selectable per run (RunConfig::fm,
 *  `h2sim --fm`, experiment-file `fm` directive). */
enum class FarMemTech { Dram, Pcm };

/** Canonical spelling ("dram"/"pcm") for CLIs and reports. */
const char *to_string(FarMemTech tech);

/** Parse "dram"/"pcm"; nullopt on anything else. */
std::optional<FarMemTech> parseFarMemTech(std::string_view text);

/**
 * Parameters of one memory device (a set of channels with identical
 * geometry and timing). Timings are in device clock cycles; the clock
 * period is in picoseconds. Data moves at double data rate (two beats of
 * @c busBytes per clock).
 *
 * The same analytic row-buffer model covers DRAM and PCM-like NVM:
 * PCM presets differ by slower activations (array reads), a non-zero
 * write-programming time @c tWr, asymmetric per-bit read/write energy,
 * and per-bank write-wear tracking (@c trackWear).
 */
struct DramParams
{
    std::string name;
    u64 capacityBytes = 0;
    u32 channels = 1;
    u32 banksPerChannel = 8;
    u32 busBytes = 8;        ///< data bus width per channel, in bytes
    Tick clockPs = 625;      ///< device clock period
    u32 tCas = 22;           ///< column access latency (cycles)
    u32 tRcd = 22;           ///< RAS-to-CAS delay (cycles)
    u32 tRp = 22;            ///< row precharge (cycles)
    /**
     * Write-programming / write-recovery time (cycles): a write chunk
     * keeps its bank busy this long after its data burst, so reads
     * behind a write wait it out (bank contention), while the write's
     * own completion tick stays the end of the data burst. 0 for the
     * DRAM presets (the seed model never charged DRAM tWR); large for
     * PCM, where cell programming dominates the write path.
     */
    u32 tWr = 0;
    u32 rowBytes = 2048;     ///< row-buffer size per bank
    u32 interleaveBytes = 256; ///< channel interleave granularity
    double rdPjPerBit = 33.0; ///< read + I/O energy, pJ/bit
    double wrPjPerBit = 33.0; ///< write + I/O energy, pJ/bit
    double actPreNj = 15.0;  ///< activate+precharge energy, nJ per ACT
    /** Track per-bank written-bytes wear counters (PCM endurance);
     *  enables the `.wear*` stats block. */
    bool trackWear = false;

    /** Peak bandwidth in bytes/second across all channels. */
    double peakBandwidthBytesPerSec() const;

    /**
     * HBM2 near memory per Table 1: 2 GHz, 8 128-bit channels, 8 banks,
     * 7-7-7, 6.4 pJ/bit RD/WR+I/O, 15 nJ ACT/PRE.
     */
    static DramParams hbm2(u64 capacityBytes);

    /**
     * DDR4-3200 far memory per Table 1: 2 64-bit channels, 8 banks,
     * 22-22-22, 33 pJ/bit RD/WR+I/O, 15 nJ ACT/PRE.
     */
    static DramParams ddr4_3200(u64 capacityBytes);

    /**
     * PCM far memory on a DDR4-3200-style interface (2 64-bit
     * channels, 1.6 GHz command clock), with the asymmetries that
     * distinguish PCM from DRAM in the DRAM-alternative literature
     * (Lee et al. ISCA'09 lineage, as parameterized by HybridSim's
     * PCMSim array architecture):
     *  - slow array reads: activation ~55 ns (tRCD 88 cycles) against
     *    DDR4's ~13.75 ns, row-buffer hits DRAM-like (tCAS 28);
     *  - slower writes still: 150 ns cell programming (tWr 240)
     *    occupies the bank after each write burst;
     *  - asymmetric energy: 4.4 pJ/bit reads vs 23.1 pJ/bit writes
     *    (ACT/PRE kept at the Table 1 15 nJ — the paper gives no PCM
     *    figure, and keeping it shared isolates the rd/wr asymmetry);
     *  - per-bank write-wear counters (trackWear) for endurance stats.
     */
    static DramParams pcm(u64 capacityBytes);

    /** The far-memory preset for @p tech (ddr4_3200 or pcm). */
    static DramParams farMemory(FarMemTech tech, u64 capacityBytes);
};

} // namespace h2::dram
