/**
 * @file
 * The on-chip SRAM hierarchy: per-core L1/L2 plus a shared,
 * non-inclusive LLC, per the paper's Table 1.
 *
 * The hierarchy is the core-side filter in every experiment: it turns the
 * core's 64 B accesses into LLC misses (demand fills) and dirty LLC
 * victims (writebacks) for the memory system under test, and its hit
 * latencies feed the interval core model.
 */

#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cache/set_assoc_cache.h"
#include "common/types.h"

namespace h2::cache {

/** Geometry/latency of the full SRAM stack. */
struct HierarchyParams
{
    u32 numCores = 8;
    CacheParams l1{"L1", 64 * 1024, 4, 64, ReplPolicy::Lru};
    CacheParams l2{"L2", 256 * 1024, 8, 64, ReplPolicy::Lru};
    CacheParams llc{"LLC", 8ull * 1024 * 1024, 16, 64, ReplPolicy::Lru};
    u32 l1LatencyCycles = 1;
    u32 l2LatencyCycles = 9;
    u32 llcLatencyCycles = 14;
};

/** What a hierarchy access produced. */
struct HierarchyResult
{
    /** SRAM levels traversed until data was found (or the miss was
     *  determined), in core cycles. */
    u32 latencyCycles = 0;
    /** Level that supplied the data: 1, 2, 3, or 0 for memory. */
    u32 hitLevel = 0;
    bool llcMiss = false;
    /** A dirty line pushed out of the LLC (to be written to memory). */
    std::optional<Addr> writeback;
};

/**
 * Three-level writeback hierarchy with 64 B lines.
 *
 * Fill policy: fills go to L1; L1 victims fall into L2; L2 victims fall
 * into the LLC; dirty LLC victims are surfaced to the caller as memory
 * writebacks. On L2/LLC hits the line is promoted to the levels above
 * while the lower copy is retained (non-inclusive, non-exclusive).
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyParams &params);

    /** Access one 64 B line from core @p core. */
    HierarchyResult access(CoreId core, Addr addr, AccessType type);

    /** LLC occupancy probe for LGM-style migration policies. */
    bool llcHolds(Addr addr) const;
    u32 llcResidentLinesInRange(Addr base, u64 bytes) const;

    const HierarchyParams &params() const { return cfg; }
    u64 llcMisses() const { return nLlcMisses; }
    u64 accesses() const { return nAccesses; }

    /** Zero counters after warm-up (cache contents are kept). */
    void resetStats();

    SetAssocCache &llcCache() { return *llc; }
    const SetAssocCache &llcCache() const { return *llc; }

    void collectStats(StatSet &out) const;

  private:
    /** Insert into @p level, cascading the victim downward. A dirty LLC
     *  victim is reported through @p result. */
    void fillL1(CoreId core, Addr addr, bool dirty, HierarchyResult &result);
    void insertLlc(Addr addr, bool dirty, HierarchyResult &result);

    HierarchyParams cfg;
    std::vector<std::unique_ptr<SetAssocCache>> l1s;
    std::vector<std::unique_ptr<SetAssocCache>> l2s;
    std::unique_ptr<SetAssocCache> llc;
    u64 nAccesses = 0;
    u64 nLlcMisses = 0;
};

} // namespace h2::cache
