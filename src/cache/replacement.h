/**
 * @file
 * Replacement policies for set-associative structures.
 */

#pragma once

#include <string>

#include "common/types.h"

namespace h2::cache {

/** Victim-selection policy of a set-associative structure. */
enum class ReplPolicy : u8 {
    Lru,    ///< least-recently-used (stamp updated on every access)
    Fifo,   ///< oldest insertion (stamp fixed at fill time)
    Random, ///< pseudo-random way (deterministic hash of a counter)
};

std::string to_string(ReplPolicy policy);

/**
 * Select the victim way among @p ways entries.
 *
 * @param stamps   per-way recency/insertion stamps (smaller = older)
 * @param valids   per-way valid flags; an invalid way wins immediately
 * @param ways     number of ways
 * @param tiebreak monotonic counter used to derive the Random choice
 */
u32 selectVictim(ReplPolicy policy, const u64 *stamps, const bool *valids,
                 u32 ways, u64 tiebreak);

} // namespace h2::cache
