#include "cache/set_assoc_cache.h"

#include "common/log.h"

namespace h2::cache {

SetAssocCache::SetAssocCache(const CacheParams &params)
    : cfg(params)
{
    h2_assert(cfg.sizeBytes > 0 && cfg.ways > 0 && cfg.lineBytes > 0,
              cfg.name, ": bad cache geometry");
    h2_assert(cfg.sizeBytes % (u64(cfg.ways) * cfg.lineBytes) == 0,
              cfg.name, ": size not divisible by ways*lineBytes");
    sets = static_cast<u32>(cfg.sizeBytes / (u64(cfg.ways) * cfg.lineBytes));
    h2_assert(sets > 0, cfg.name, ": zero sets");
    linePow2 = isPowerOf2(cfg.lineBytes);
    if (linePow2)
        lineShift = floorLog2(cfg.lineBytes);
    setPow2 = isPowerOf2(sets);
    if (setPow2) {
        setShift = floorLog2(sets);
        setMask = sets - 1;
    }
    u64 n = u64(sets) * cfg.ways;
    tagLane.assign(n, kInvalidTag);
    stampLane.assign(n, 0);
    dirtyLane.assign(n, 0);
}

u64
SetAssocCache::findSlot(Addr addr) const
{
    u64 block = blockIndex(addr);
    u32 set = setIndex(block);
    u64 tag = tagOf(block);
    u64 base = u64(set) * cfg.ways;
    for (u32 w = 0; w < cfg.ways; ++w)
        if (tagLane[base + w] == tag)
            return base + w;
    return npos;
}

bool
SetAssocCache::access(Addr addr, AccessType type)
{
    u64 slot = findSlot(addr);
    if (slot == npos) {
        ++nMisses;
        return false;
    }
    ++nHits;
    if (cfg.repl == ReplPolicy::Lru)
        stampLane[slot] = ++clock;
    if (type == AccessType::Write)
        dirtyLane[slot] = 1;
    return true;
}

bool
SetAssocCache::probe(Addr addr) const
{
    return findSlot(addr) != npos;
}

bool
SetAssocCache::probeDirty(Addr addr) const
{
    u64 slot = findSlot(addr);
    return slot != npos && dirtyLane[slot];
}

std::optional<Eviction>
SetAssocCache::insert(Addr addr, bool dirty)
{
    h2_assert(!probe(addr), cfg.name, ": double insert of addr ", addr);
    u64 block = blockIndex(addr);
    u32 set = setIndex(block);
    u64 base = u64(set) * cfg.ways;

    bool valids[64];
    h2_assert(cfg.ways <= 64, cfg.name, ": >64 ways unsupported");
    for (u32 w = 0; w < cfg.ways; ++w)
        valids[w] = tagLane[base + w] != kInvalidTag;
    u32 victim = selectVictim(cfg.repl, &stampLane[base], valids,
                              cfg.ways, ++clock);

    std::optional<Eviction> evicted;
    u64 slot = base + victim;
    if (tagLane[slot] != kInvalidTag) {
        ++nEvictions;
        if (dirtyLane[slot])
            ++nDirtyEvictions;
        evicted = Eviction{lineAddr(set, tagLane[slot]),
                           dirtyLane[slot] != 0};
    }
    tagLane[slot] = tagOf(block);
    dirtyLane[slot] = dirty ? 1 : 0;
    stampLane[slot] = ++clock;
    return evicted;
}

std::optional<bool>
SetAssocCache::invalidate(Addr addr)
{
    u64 slot = findSlot(addr);
    if (slot == npos)
        return std::nullopt;
    bool wasDirty = dirtyLane[slot] != 0;
    tagLane[slot] = kInvalidTag;
    dirtyLane[slot] = 0;
    stampLane[slot] = 0;
    return wasDirty;
}

void
SetAssocCache::setDirty(Addr addr)
{
    u64 slot = findSlot(addr);
    h2_assert(slot != npos, cfg.name, ": setDirty on absent line ", addr);
    dirtyLane[slot] = 1;
}

u32
SetAssocCache::residentLinesInRange(Addr base, u64 bytes) const
{
    u32 n = 0;
    for (Addr a = base; a < base + bytes; a += cfg.lineBytes)
        if (probe(a))
            ++n;
    return n;
}

u64
SetAssocCache::numValidLines() const
{
    u64 n = 0;
    for (u64 tag : tagLane)
        if (tag != kInvalidTag)
            ++n;
    return n;
}

void
SetAssocCache::resetStats()
{
    nHits = 0;
    nMisses = 0;
    nEvictions = 0;
    nDirtyEvictions = 0;
}

void
SetAssocCache::collectStats(StatSet &out, const std::string &prefix) const
{
    out.add(prefix + ".hits", double(nHits));
    out.add(prefix + ".misses", double(nMisses));
    out.add(prefix + ".evictions", double(nEvictions));
    out.add(prefix + ".dirtyEvictions", double(nDirtyEvictions));
}

} // namespace h2::cache
