#include "cache/set_assoc_cache.h"

#include "common/log.h"

namespace h2::cache {

SetAssocCache::SetAssocCache(const CacheParams &params)
    : cfg(params)
{
    h2_assert(cfg.sizeBytes > 0 && cfg.ways > 0 && cfg.lineBytes > 0,
              cfg.name, ": bad cache geometry");
    h2_assert(cfg.sizeBytes % (u64(cfg.ways) * cfg.lineBytes) == 0,
              cfg.name, ": size not divisible by ways*lineBytes");
    sets = static_cast<u32>(cfg.sizeBytes / (u64(cfg.ways) * cfg.lineBytes));
    h2_assert(sets > 0, cfg.name, ": zero sets");
    lines.resize(u64(sets) * cfg.ways);
}

SetAssocCache::Line *
SetAssocCache::find(Addr addr)
{
    u64 block = blockIndex(addr);
    u32 set = setIndex(block);
    u64 tag = tagOf(block);
    Line *base = &lines[u64(set) * cfg.ways];
    for (u32 w = 0; w < cfg.ways; ++w)
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::find(Addr addr) const
{
    return const_cast<SetAssocCache *>(this)->find(addr);
}

bool
SetAssocCache::access(Addr addr, AccessType type)
{
    Line *line = find(addr);
    if (!line) {
        ++nMisses;
        return false;
    }
    ++nHits;
    if (cfg.repl == ReplPolicy::Lru)
        line->stamp = ++clock;
    if (type == AccessType::Write)
        line->dirty = true;
    return true;
}

bool
SetAssocCache::probe(Addr addr) const
{
    return find(addr) != nullptr;
}

bool
SetAssocCache::probeDirty(Addr addr) const
{
    const Line *line = find(addr);
    return line && line->dirty;
}

std::optional<Eviction>
SetAssocCache::insert(Addr addr, bool dirty)
{
    h2_assert(!probe(addr), cfg.name, ": double insert of addr ", addr);
    u64 block = blockIndex(addr);
    u32 set = setIndex(block);
    Line *base = &lines[u64(set) * cfg.ways];

    u64 stamps[64];
    bool valids[64];
    h2_assert(cfg.ways <= 64, cfg.name, ": >64 ways unsupported");
    for (u32 w = 0; w < cfg.ways; ++w) {
        stamps[w] = base[w].stamp;
        valids[w] = base[w].valid;
    }
    u32 victim = selectVictim(cfg.repl, stamps, valids, cfg.ways, ++clock);

    std::optional<Eviction> evicted;
    Line &slot = base[victim];
    if (slot.valid) {
        ++nEvictions;
        if (slot.dirty)
            ++nDirtyEvictions;
        evicted = Eviction{lineAddr(set, slot.tag), slot.dirty};
    }
    slot.valid = true;
    slot.dirty = dirty;
    slot.tag = tagOf(block);
    slot.stamp = ++clock;
    return evicted;
}

std::optional<bool>
SetAssocCache::invalidate(Addr addr)
{
    Line *line = find(addr);
    if (!line)
        return std::nullopt;
    bool wasDirty = line->dirty;
    line->valid = false;
    line->dirty = false;
    line->stamp = 0;
    return wasDirty;
}

void
SetAssocCache::setDirty(Addr addr)
{
    Line *line = find(addr);
    h2_assert(line, cfg.name, ": setDirty on absent line ", addr);
    line->dirty = true;
}

u32
SetAssocCache::residentLinesInRange(Addr base, u64 bytes) const
{
    u32 n = 0;
    for (Addr a = base; a < base + bytes; a += cfg.lineBytes)
        if (probe(a))
            ++n;
    return n;
}

u64
SetAssocCache::numValidLines() const
{
    u64 n = 0;
    for (const auto &line : lines)
        if (line.valid)
            ++n;
    return n;
}

void
SetAssocCache::resetStats()
{
    nHits = 0;
    nMisses = 0;
    nEvictions = 0;
    nDirtyEvictions = 0;
}

void
SetAssocCache::collectStats(StatSet &out, const std::string &prefix) const
{
    out.add(prefix + ".hits", double(nHits));
    out.add(prefix + ".misses", double(nMisses));
    out.add(prefix + ".evictions", double(nEvictions));
    out.add(prefix + ".dirtyEvictions", double(nDirtyEvictions));
}

} // namespace h2::cache
