#include "cache/cache_hierarchy.h"

#include "common/log.h"

namespace h2::cache {

CacheHierarchy::CacheHierarchy(const HierarchyParams &params)
    : cfg(params)
{
    h2_assert(cfg.numCores > 0, "hierarchy needs at least one core");
    h2_assert(cfg.l1.lineBytes == cfg.l2.lineBytes &&
              cfg.l2.lineBytes == cfg.llc.lineBytes,
              "all SRAM levels must share one line size");
    for (u32 c = 0; c < cfg.numCores; ++c) {
        l1s.push_back(std::make_unique<SetAssocCache>(cfg.l1));
        l2s.push_back(std::make_unique<SetAssocCache>(cfg.l2));
    }
    llc = std::make_unique<SetAssocCache>(cfg.llc);
}

void
CacheHierarchy::insertLlc(Addr addr, bool dirty, HierarchyResult &result)
{
    if (llc->probe(addr)) {
        // Non-inclusive: a copy may already live here; just merge dirt.
        if (dirty)
            llc->setDirty(addr);
        return;
    }
    auto victim = llc->insert(addr, dirty);
    if (victim && victim->dirty) {
        h2_assert(!result.writeback,
                  "one access produced two LLC writebacks");
        result.writeback = victim->addr;
    }
}

void
CacheHierarchy::fillL1(CoreId core, Addr addr, bool dirty,
                       HierarchyResult &result)
{
    auto v1 = l1s[core]->insert(addr, dirty);
    if (!v1)
        return;
    // L1 victim falls into L2 (merge if already present).
    if (l2s[core]->probe(v1->addr)) {
        if (v1->dirty)
            l2s[core]->setDirty(v1->addr);
        return;
    }
    auto v2 = l2s[core]->insert(v1->addr, v1->dirty);
    if (v2)
        insertLlc(v2->addr, v2->dirty, result);
}

HierarchyResult
CacheHierarchy::access(CoreId core, Addr addr, AccessType type)
{
    h2_assert(core < cfg.numCores, "core id out of range");
    Addr line = addr & ~Addr(cfg.l1.lineBytes - 1);
    ++nAccesses;
    HierarchyResult result;

    if (l1s[core]->access(line, type)) {
        result.latencyCycles = cfg.l1LatencyCycles;
        result.hitLevel = 1;
        return result;
    }
    if (l2s[core]->access(line, type)) {
        result.latencyCycles = cfg.l2LatencyCycles;
        result.hitLevel = 2;
        // Promote to L1, retaining the L2 copy (non-inclusive). The L1
        // copy starts clean; dirt stays in L2 until eviction merges it.
        fillL1(core, line, false, result);
        return result;
    }
    if (llc->access(line, type)) {
        result.latencyCycles = cfg.llcLatencyCycles;
        result.hitLevel = 3;
        fillL1(core, line, false, result);
        return result;
    }

    // Demand miss: the caller fetches the line from the memory system.
    result.latencyCycles = cfg.llcLatencyCycles;
    result.hitLevel = 0;
    result.llcMiss = true;
    ++nLlcMisses;
    fillL1(core, line, type == AccessType::Write, result);
    return result;
}

bool
CacheHierarchy::llcHolds(Addr addr) const
{
    Addr line = addr & ~Addr(cfg.llc.lineBytes - 1);
    return llc->probe(line);
}

u32
CacheHierarchy::llcResidentLinesInRange(Addr base, u64 bytes) const
{
    return llc->residentLinesInRange(base, bytes);
}

void
CacheHierarchy::resetStats()
{
    nAccesses = 0;
    nLlcMisses = 0;
    for (auto &c : l1s)
        c->resetStats();
    for (auto &c : l2s)
        c->resetStats();
    llc->resetStats();
}

void
CacheHierarchy::collectStats(StatSet &out) const
{
    out.add("hier.accesses", double(nAccesses));
    out.add("hier.llcMisses", double(nLlcMisses));
    llc->collectStats(out, "hier.llc");
}

} // namespace h2::cache
