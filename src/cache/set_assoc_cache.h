/**
 * @file
 * Generic set-associative tag store.
 *
 * Used for the SRAM hierarchy (L1/L2/LLC) and as the tag structure of
 * several DRAM-cache baselines. Purely functional+statistical: it tracks
 * presence/dirtiness, not data values.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cache/replacement.h"
#include "common/stats.h"
#include "common/types.h"

namespace h2::cache {

/** Geometry and policy of a SetAssocCache. */
struct CacheParams
{
    std::string name = "cache";
    u64 sizeBytes = 0;
    u32 ways = 1;
    u32 lineBytes = 64;
    ReplPolicy repl = ReplPolicy::Lru;
};

/** A line evicted by an insertion. */
struct Eviction
{
    Addr addr = 0;   ///< base address of the victim line
    bool dirty = false;
};

/** Set-associative, write-back, write-allocate tag store. */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheParams &params);

    /**
     * Look up @p addr; on hit, refresh replacement state and apply the
     * dirty bit for writes.
     * @return true on hit.
     */
    bool access(Addr addr, AccessType type);

    /** Look up without disturbing replacement state or stats. */
    bool probe(Addr addr) const;

    /** True if present and dirty. */
    bool probeDirty(Addr addr) const;

    /**
     * Insert the line containing @p addr (it must not be present).
     * @return the evicted line, if any valid line had to make room.
     */
    std::optional<Eviction> insert(Addr addr, bool dirty);

    /** Remove the line containing @p addr if present.
     *  @return the removed line's dirtiness. */
    std::optional<bool> invalidate(Addr addr);

    /** Mark the line containing @p addr dirty; it must be present. */
    void setDirty(Addr addr);

    /** Number of valid lines whose addresses fall in
     *  [@p base, @p base + @p bytes). */
    u32 residentLinesInRange(Addr base, u64 bytes) const;

    const CacheParams &params() const { return cfg; }
    u32 numSets() const { return sets; }
    u64 numValidLines() const;

    u64 hits() const { return nHits; }
    u64 misses() const { return nMisses; }
    u64 evictions() const { return nEvictions; }
    u64 dirtyEvictions() const { return nDirtyEvictions; }

    /** Zero the counters (contents are kept; used after warm-up). */
    void resetStats();

    void collectStats(StatSet &out, const std::string &prefix) const;

  private:
    /** Slot index meaning "not present". */
    static constexpr u64 npos = ~u64(0);
    /** Tag-lane value of an invalid way. Real tags are block/sets and
     *  stay far below 2^64 for any addressable capacity, so the
     *  all-ones pattern is free to mean "invalid" — the hit scan then
     *  needs no separate valid bit. */
    static constexpr u64 kInvalidTag = ~u64(0);

    // Hot-path index math: every lookup needs block/set/tag, so the
    // usual power-of-two geometries fold the div/mod into shift/mask
    // at construction (cf. DramDevice::decode); exotic sizes keep the
    // exact div/mod fallback.
    u64
    blockIndex(Addr addr) const
    {
        return linePow2 ? addr >> lineShift : addr / cfg.lineBytes;
    }
    u32
    setIndex(u64 block) const
    {
        return static_cast<u32>(setPow2 ? block & setMask : block % sets);
    }
    u64
    tagOf(u64 block) const
    {
        return setPow2 ? block >> setShift : block / sets;
    }
    Addr lineAddr(u32 set, u64 tag) const
    {
        return (tag * sets + set) * u64(cfg.lineBytes);
    }
    u64 findSlot(Addr addr) const;

    CacheParams cfg;
    u32 sets;
    bool linePow2 = false;
    bool setPow2 = false;
    u32 lineShift = 0;
    u32 setShift = 0;
    u64 setMask = 0;
    // Struct-of-arrays tag store, sets * ways each, way-major within a
    // set: the hit scan touches only the contiguous tag lane; dirty
    // and recency live in parallel lanes paid for only on hit/victim.
    std::vector<u64> tagLane;
    std::vector<u64> stampLane;
    std::vector<u8> dirtyLane;
    u64 clock = 0; ///< recency stamp source
    u64 nHits = 0;
    u64 nMisses = 0;
    u64 nEvictions = 0;
    u64 nDirtyEvictions = 0;
};

} // namespace h2::cache
