/**
 * @file
 * Generic set-associative tag store.
 *
 * Used for the SRAM hierarchy (L1/L2/LLC) and as the tag structure of
 * several DRAM-cache baselines. Purely functional+statistical: it tracks
 * presence/dirtiness, not data values.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cache/replacement.h"
#include "common/stats.h"
#include "common/types.h"

namespace h2::cache {

/** Geometry and policy of a SetAssocCache. */
struct CacheParams
{
    std::string name = "cache";
    u64 sizeBytes = 0;
    u32 ways = 1;
    u32 lineBytes = 64;
    ReplPolicy repl = ReplPolicy::Lru;
};

/** A line evicted by an insertion. */
struct Eviction
{
    Addr addr = 0;   ///< base address of the victim line
    bool dirty = false;
};

/** Set-associative, write-back, write-allocate tag store. */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheParams &params);

    /**
     * Look up @p addr; on hit, refresh replacement state and apply the
     * dirty bit for writes.
     * @return true on hit.
     */
    bool access(Addr addr, AccessType type);

    /** Look up without disturbing replacement state or stats. */
    bool probe(Addr addr) const;

    /** True if present and dirty. */
    bool probeDirty(Addr addr) const;

    /**
     * Insert the line containing @p addr (it must not be present).
     * @return the evicted line, if any valid line had to make room.
     */
    std::optional<Eviction> insert(Addr addr, bool dirty);

    /** Remove the line containing @p addr if present.
     *  @return the removed line's dirtiness. */
    std::optional<bool> invalidate(Addr addr);

    /** Mark the line containing @p addr dirty; it must be present. */
    void setDirty(Addr addr);

    /** Number of valid lines whose addresses fall in
     *  [@p base, @p base + @p bytes). */
    u32 residentLinesInRange(Addr base, u64 bytes) const;

    const CacheParams &params() const { return cfg; }
    u32 numSets() const { return sets; }
    u64 numValidLines() const;

    u64 hits() const { return nHits; }
    u64 misses() const { return nMisses; }
    u64 evictions() const { return nEvictions; }
    u64 dirtyEvictions() const { return nDirtyEvictions; }

    /** Zero the counters (contents are kept; used after warm-up). */
    void resetStats();

    void collectStats(StatSet &out, const std::string &prefix) const;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        u64 stamp = 0;
    };

    u64 blockIndex(Addr addr) const { return addr / cfg.lineBytes; }
    u32 setIndex(u64 block) const { return static_cast<u32>(block % sets); }
    u64 tagOf(u64 block) const { return block / sets; }
    Addr lineAddr(u32 set, u64 tag) const
    {
        return (tag * sets + set) * u64(cfg.lineBytes);
    }
    Line *find(Addr addr);
    const Line *find(Addr addr) const;

    CacheParams cfg;
    u32 sets;
    std::vector<Line> lines; ///< sets * ways, way-major within a set
    u64 clock = 0;           ///< recency stamp source
    u64 nHits = 0;
    u64 nMisses = 0;
    u64 nEvictions = 0;
    u64 nDirtyEvictions = 0;
};

} // namespace h2::cache
