#include "cache/replacement.h"

#include "common/log.h"
#include "common/rng.h"

namespace h2::cache {

std::string
to_string(ReplPolicy policy)
{
    switch (policy) {
      case ReplPolicy::Lru: return "LRU";
      case ReplPolicy::Fifo: return "FIFO";
      case ReplPolicy::Random: return "Random";
    }
    return "?";
}

u32
selectVictim(ReplPolicy policy, const u64 *stamps, const bool *valids,
             u32 ways, u64 tiebreak)
{
    h2_assert(ways > 0, "victim selection over zero ways");
    for (u32 w = 0; w < ways; ++w)
        if (!valids[w])
            return w;
    if (policy == ReplPolicy::Random)
        return static_cast<u32>(splitmix64(tiebreak) % ways);
    // LRU and FIFO both evict the smallest stamp; they differ in when the
    // caller refreshes stamps (every access vs. insertion only).
    u32 victim = 0;
    for (u32 w = 1; w < ways; ++w)
        if (stamps[w] < stamps[victim])
            victim = w;
    return victim;
}

} // namespace h2::cache
