#include "mem/hybrid_memory.h"

#include "common/log.h"

namespace h2::mem {

HybridMemory::HybridMemory(const MemSystemParams &params,
                           const dram::DramParams &nmParams,
                           const dram::DramParams &fmParams)
    : sys(params),
      nm(std::make_unique<dram::DramDevice>(nmParams)),
      fm(std::make_unique<dram::DramDevice>(fmParams))
{
}

HybridMemory::HybridMemory(const MemSystemParams &params,
                           const dram::DramParams &fmParams)
    : sys(params), nm(nullptr),
      fm(std::make_unique<dram::DramDevice>(fmParams))
{
}

dram::DramDevice &
HybridMemory::nmDevice()
{
    h2_assert(nm, name(), " has no near memory");
    return *nm;
}

const dram::DramDevice &
HybridMemory::nmDevice() const
{
    h2_assert(nm, name(), " has no near memory");
    return *nm;
}

double
HybridMemory::dynamicEnergyPj() const
{
    double e = fm->dynamicEnergyPj();
    if (nm)
        e += nm->dynamicEnergyPj();
    return e;
}

void
HybridMemory::resetStats()
{
    nRequests = 0;
    nFromNm = 0;
    fm->resetStats();
    if (nm)
        nm->resetStats();
}

void
HybridMemory::collectStats(StatSet &out) const
{
    out.add("mem.requests", double(nRequests));
    out.add("mem.requestsFromNm", double(nFromNm));
    out.add("mem.dynamicEnergyPj", dynamicEnergyPj());
    fm->collectStats(out, "fm");
    if (nm)
        nm->collectStats(out, "nm");
}

} // namespace h2::mem
