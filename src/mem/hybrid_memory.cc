#include "mem/hybrid_memory.h"

#include "common/log.h"
#include "common/rng.h"

namespace h2::mem {

HybridMemory::HybridMemory(const MemSystemParams &params,
                           const dram::DramParams &nmParams,
                           const dram::DramParams &fmParams)
    : sys(params),
      nm(std::make_unique<dram::DramDevice>(nmParams)),
      fm(std::make_unique<dram::DramDevice>(fmParams)),
      nmCtrl(std::make_unique<MemController>(*nm, params.queue,
                                             params.simPool)),
      fmCtrl(std::make_unique<MemController>(*fm, params.queue,
                                             params.simPool))
{
}

HybridMemory::HybridMemory(const MemSystemParams &params,
                           const dram::DramParams &fmParams)
    : sys(params), nm(nullptr),
      fm(std::make_unique<dram::DramDevice>(fmParams)),
      fmCtrl(std::make_unique<MemController>(*fm, params.queue,
                                             params.simPool))
{
}

dram::DramDevice &
HybridMemory::nmDevice()
{
    h2_assert(nm, name(), " has no near memory");
    return *nm;
}

const dram::DramDevice &
HybridMemory::nmDevice() const
{
    h2_assert(nm, name(), " has no near memory");
    return *nm;
}

MemController &
HybridMemory::nmController()
{
    h2_assert(nmCtrl, name(), " has no near memory");
    return *nmCtrl;
}

const MemController &
HybridMemory::nmController() const
{
    h2_assert(nmCtrl, name(), " has no near memory");
    return *nmCtrl;
}

void
HybridMemory::drainQueues(Tick now)
{
    h2_assert(postedWrites.empty(),
              "drainQueues with unflushed posted writes");
    if (nmCtrl)
        nmCtrl->drainAll(now);
    fmCtrl->drainAll(now);
}

double
HybridMemory::dynamicEnergyPj() const
{
    double e = fm->dynamicEnergyPj();
    if (nm)
        e += nm->dynamicEnergyPj();
    return e;
}

void
HybridMemory::nmMetaRegionAccess(AccessType type, u64 regionBytes,
                                 u64 &rotor, Timeline &tl)
{
    Addr addr = (splitmix64(rotor++) * 64) % regionBytes;
    addr &= ~Addr(63);
    if (type == AccessType::Read)
        tl.serialize(nmc().access(addr, 64, type, tl.now()));
    else
        postWrite(*nm, addr, 64, tl.now());
}

double
HybridMemory::avgLatencyPs() const
{
    return nDemandReads
        ? double(demandLatencyPsTotal) / double(nDemandReads) : 0.0;
}

double
HybridMemory::avgNmLatencyPs() const
{
    return nDemandReadsFromNm
        ? double(nmLatencyPsTotal) / double(nDemandReadsFromNm) : 0.0;
}

double
HybridMemory::avgMissLatencyPs() const
{
    u64 misses = nDemandReads - nDemandReadsFromNm;
    return misses ? double(missLatencyPsTotal) / double(misses) : 0.0;
}

double
HybridMemory::avgWritebackLatencyPs() const
{
    return nWritebacks
        ? double(writebackLatencyPsTotal) / double(nWritebacks) : 0.0;
}

void
HybridMemory::resetStats()
{
    nRequests = 0;
    nFromNm = 0;
    nDemandReads = 0;
    nDemandReadsFromNm = 0;
    nWritebacks = 0;
    demandLatencyPsTotal = 0;
    nmLatencyPsTotal = 0;
    missLatencyPsTotal = 0;
    writebackLatencyPsTotal = 0;
    fm->resetStats();
    if (nm)
        nm->resetStats();
    fmCtrl->resetStats();
    if (nmCtrl)
        nmCtrl->resetStats();
}

void
HybridMemory::collectStats(StatSet &out) const
{
    out.add("mem.requests", double(nRequests));
    out.add("mem.requestsFromNm", double(nFromNm));
    out.add("mem.demandReads", double(nDemandReads));
    out.add("mem.writebacks", double(nWritebacks));
    out.add("mem.avgLatencyPs", avgLatencyPs());
    out.add("mem.avgNmLatencyPs", avgNmLatencyPs());
    out.add("mem.avgMissLatencyPs", avgMissLatencyPs());
    out.add("mem.avgWritebackLatencyPs", avgWritebackLatencyPs());
    out.add("mem.dynamicEnergyPj", dynamicEnergyPj());
    // Demand-facing queueing wait across both controllers (ps per
    // demand access; 0 with queues off or no demand traffic).
    u64 demand = fmCtrl->demandAccesses()
        + (nmCtrl ? nmCtrl->demandAccesses() : 0);
    Tick delayTotal = fmCtrl->readQueueDelayPsTotal()
        + (nmCtrl ? nmCtrl->readQueueDelayPsTotal() : 0);
    out.add("mem.avgQueueDelayPs",
            demand ? double(delayTotal) / double(demand) : 0.0);
    fm->collectStats(out, "fm");
    if (nm)
        nm->collectStats(out, "nm");
    fmCtrl->collectStats(out, "fmq");
    if (nmCtrl)
        nmCtrl->collectStats(out, "nmq");
}

} // namespace h2::mem
