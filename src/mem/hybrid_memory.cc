#include "mem/hybrid_memory.h"

#include "common/log.h"
#include "common/rng.h"

namespace h2::mem {

HybridMemory::HybridMemory(const MemSystemParams &params,
                           const dram::DramParams &nmParams,
                           const dram::DramParams &fmParams)
    : sys(params),
      nm(std::make_unique<dram::DramDevice>(nmParams)),
      fm(std::make_unique<dram::DramDevice>(fmParams))
{
}

HybridMemory::HybridMemory(const MemSystemParams &params,
                           const dram::DramParams &fmParams)
    : sys(params), nm(nullptr),
      fm(std::make_unique<dram::DramDevice>(fmParams))
{
}

dram::DramDevice &
HybridMemory::nmDevice()
{
    h2_assert(nm, name(), " has no near memory");
    return *nm;
}

const dram::DramDevice &
HybridMemory::nmDevice() const
{
    h2_assert(nm, name(), " has no near memory");
    return *nm;
}

double
HybridMemory::dynamicEnergyPj() const
{
    double e = fm->dynamicEnergyPj();
    if (nm)
        e += nm->dynamicEnergyPj();
    return e;
}

void
HybridMemory::nmMetaRegionAccess(AccessType type, u64 regionBytes,
                                 u64 &rotor, Timeline &tl)
{
    Addr addr = (splitmix64(rotor++) * 64) % regionBytes;
    addr &= ~Addr(63);
    if (type == AccessType::Read)
        tl.serialize(nm->access(addr, 64, type, tl.now()));
    else
        postWrite(*nm, addr, 64, tl.now());
}

double
HybridMemory::avgLatencyPs() const
{
    return nDemandReads
        ? double(demandLatencyPsTotal) / double(nDemandReads) : 0.0;
}

double
HybridMemory::avgNmLatencyPs() const
{
    return nDemandReadsFromNm
        ? double(nmLatencyPsTotal) / double(nDemandReadsFromNm) : 0.0;
}

double
HybridMemory::avgMissLatencyPs() const
{
    u64 misses = nDemandReads - nDemandReadsFromNm;
    return misses ? double(missLatencyPsTotal) / double(misses) : 0.0;
}

double
HybridMemory::avgWritebackLatencyPs() const
{
    return nWritebacks
        ? double(writebackLatencyPsTotal) / double(nWritebacks) : 0.0;
}

void
HybridMemory::resetStats()
{
    nRequests = 0;
    nFromNm = 0;
    nDemandReads = 0;
    nDemandReadsFromNm = 0;
    nWritebacks = 0;
    demandLatencyPsTotal = 0;
    nmLatencyPsTotal = 0;
    missLatencyPsTotal = 0;
    writebackLatencyPsTotal = 0;
    fm->resetStats();
    if (nm)
        nm->resetStats();
}

void
HybridMemory::collectStats(StatSet &out) const
{
    out.add("mem.requests", double(nRequests));
    out.add("mem.requestsFromNm", double(nFromNm));
    out.add("mem.demandReads", double(nDemandReads));
    out.add("mem.writebacks", double(nWritebacks));
    out.add("mem.avgLatencyPs", avgLatencyPs());
    out.add("mem.avgNmLatencyPs", avgNmLatencyPs());
    out.add("mem.avgMissLatencyPs", avgMissLatencyPs());
    out.add("mem.avgWritebackLatencyPs", avgWritebackLatencyPs());
    out.add("mem.dynamicEnergyPj", dynamicEnergyPj());
    fm->collectStats(out, "fm");
    if (nm)
        nm->collectStats(out, "nm");
}

} // namespace h2::mem
