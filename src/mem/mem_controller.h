/**
 * @file
 * Queued memory controller in front of one DramDevice.
 *
 * The analytic DramDevice already models bank occupancy and bus
 * contention (later work waits behind `busUntil`/`readyAt`), but until
 * this layer existed every request was dispatched the moment the
 * design issued it. The controller adds the scheduling decisions a
 * real controller makes between arrival and dispatch:
 *
 *  - **Per-channel write queues.** Posted writes (structural traffic
 *    whose data is already latched: evictions, migrations, metadata
 *    updates, LLC writebacks routed through the posted-write buffer)
 *    are enqueued, split at interleave-chunk granularity, instead of
 *    being sent to the device at their ready tick. They never block
 *    the requester; they only contend once dispatched.
 *  - **FR-FCFS dispatch.** When a queue drains, the entry whose chunk
 *    hits the currently open row is picked before older row-misses
 *    (row-hit-first); ties fall back to arrival order.
 *  - **Read priority with write-drain hysteresis.** Reads dispatch
 *    immediately (demand traffic never queues behind writes that have
 *    not been forced out). A channel whose write queue reaches
 *    `writeHighWatermark` flips into drain mode and dispatches writes
 *    — delaying subsequent reads via device contention — until the
 *    queue falls to `writeLowWatermark` (one "drain episode").
 *  - **Idle write drain (starvation bound).** Before a read
 *    dispatches on a channel, queued writes whose service would
 *    complete by the read's arrival tick are issued into the idle gap.
 *    A queued write therefore issues no later than the first read that
 *    finds the channel idle, the next high-watermark drain, or
 *    drainAll() — it cannot be starved forever.
 *
 * `queue=off` (QueueParams::enabled = false) bypasses all of the
 * above: access() forwards verbatim to DramDevice::access and posted
 * writes dispatch at their ready tick, reproducing the pre-controller
 * analytic behavior bit-identically (pinned by the golden-metrics
 * noqueue suite).
 *
 * Stats (all zero-guarded for empty classes): average read queue
 * delay (the serialized wait between arrival and service start that
 * demand requests experience), average write queue residency,
 * per-channel queue-depth histograms, drain episodes, and FR-FCFS
 * row-hit bypass counts.
 */

#pragma once

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "dram/dram_device.h"

namespace h2 {
class ThreadPool;
}

namespace h2::mem {

/** Queueing knobs shared by the NM and FM controllers of a design. */
struct QueueParams
{
    /** Off = forward straight to the device (PR-5 analytic model). */
    bool enabled = true;
    /** Per-channel write-queue depth that forces a drain episode. */
    u32 writeHighWatermark = 32;
    /** Depth a forced drain stops at. */
    u32 writeLowWatermark = 8;
    /** Queue-depth histogram resolution (entries per bucket). */
    u32 depthHistBuckets = 64;
};

class MemController
{
  public:
    /**
     * @param pool optional worker pool for drainAll(): with a pool the
     *   final queue drains advance each channel's ChannelState shard
     *   on its own worker. All per-channel stats (write residency,
     *   row-hit bypasses) accumulate in per-channel shards whether or
     *   not a pool is given, and aggregate in channel order — so
     *   pooled and serial execution are bit-identical.
     */
    MemController(dram::DramDevice &device, const QueueParams &params,
                  ThreadPool *pool = nullptr);

    MemController(const MemController &) = delete;
    MemController &operator=(const MemController &) = delete;

    /**
     * Dispatch an access the caller waits on (all reads, plus the few
     * serialized writes designs put on the critical path). Reads
     * first sweep queued writes that fit into the idle gap on the
     * channels they touch, then dispatch; the wait between @p now and
     * service start is recorded as read queue delay.
     *
     * @return completion tick of the last byte (same contract as
     *         DramDevice::access).
     */
    Tick access(Addr addr, u32 bytes, AccessType type, Tick now);

    /**
     * Enqueue a posted write whose data is ready at @p readyAt. Never
     * blocks the caller; may trigger a high-watermark drain episode
     * on the channels it lands on (contending with later reads).
     * With queues off, dispatches to the device at @p readyAt —
     * exactly the pre-controller posted-write flush.
     *
     * @return the device completion tick when dispatched immediately
     *         (queues off), else @p readyAt (completion unknown until
     *         a drain dispatches the entry).
     */
    Tick post(Addr addr, u32 bytes, Tick readyAt);

    /** Dispatch every queued write (end of run / warm-up boundary so
     *  traffic and energy are fully accounted). @return completion of
     *  the last write, or @p now when nothing was queued. */
    Tick drainAll(Tick now);

    /** Writes currently sitting in queues (all channels). */
    u64 queuedWrites() const;

    bool queueEnabled() const { return cfg.enabled; }

    dram::DramDevice &device() { return dev; }
    const dram::DramDevice &device() const { return dev; }

    u64 demandAccesses() const { return nReads; }
    u64 drainEpisodes() const { return nDrainEpisodes; }
    /** FR-FCFS bypasses across all channels (per-channel shards summed
     *  in channel order). */
    u64 rowHitBypasses() const;

    /** Mean serialized queueing wait (ps) of access() requests. */
    double avgReadQueueDelayPs() const { return readDelay.mean(); }
    /** Mean queue residency (ps) of posted writes, from enqueue to
     *  device issue. Idle-gap drains issue retroactively into the gap
     *  (at the write's ready tick), so uncontended writes record ~0;
     *  forced drains issue at the drain decision tick. Samples live in
     *  per-channel shards; counts and integer-tick sums merge exactly,
     *  so the mean matches a chronological accumulator bit for bit. */
    double avgWriteQueueDelayPs() const;

    /** Write-queue depth-at-enqueue histogram of channel @p ch. */
    const Histogram &writeDepthHist(u32 ch) const;
    /** In-flight-requests-at-arrival histogram of channel @p ch (the
     *  read-side "queue depth": dispatched chunks not yet complete
     *  when a demand access arrives). */
    const Histogram &readDepthHist(u32 ch) const;

    void resetStats();

    /** Counters under @p prefix (e.g. "nmq"): avgReadQueueDelayPs,
     *  avgWriteQueueDelayPs, queuedWrites, drainEpisodes,
     *  rowHitBypasses, writeQueueDepthMean/P99. */
    void collectStats(StatSet &out, const std::string &prefix) const;

    /** Sum of read queue delays (ps), for cross-controller means. */
    Tick readQueueDelayPsTotal() const
    {
        return Tick(readDelay.sum());
    }

  private:
    struct QueuedWrite
    {
        Addr addr;     ///< chunk address (never crosses interleave)
        u32 bytes;
        Tick readyAt;  ///< when the data was latched (enqueue tick)
        u64 seq;       ///< global arrival order, FCFS tie-break
    };

    /** FR-FCFS pick from non-empty @p q: oldest row-hit if any, else
     *  oldest. @p bypass reports whether the pick skipped an older
     *  row-miss (counted only if the caller dispatches it). */
    size_t pickFrFcfs(const std::vector<QueuedWrite> &q,
                      bool &bypass) const;

    /** Dispatch queue entry @p idx of channel @p ch into the device
     *  at @p issueTick; returns the completion tick. Queue residency
     *  is charged as issueTick - readyAt. */
    Tick dispatchWrite(u32 ch, size_t idx, Tick issueTick);

    /** Issue queued writes of @p ch that complete by @p now into the
     *  idle gap in front of a demand access. */
    void idleDrain(u32 ch, Tick now);

    /** Forced drain of @p ch down to the low watermark, issuing at
     *  decision tick @p now. */
    void forcedDrain(u32 ch, Tick now);

    /** Dispatch every queued write of @p ch (drainAll's per-channel
     *  body). Touches only channel-@p ch state — its write queue, its
     *  ChannelState shard in the device, and its stat shards — so
     *  distinct channels may drain on different threads. @return
     *  completion of the channel's last write, or @p now. */
    Tick drainChannel(u32 ch, Tick now);

    /** Record the in-flight depth channel @p ch shows at @p now and
     *  drop completed entries. */
    void sampleReadDepth(u32 ch, Tick now);

    /** Track a dispatched chunk completing at @p doneAt on @p ch. */
    void trackInflight(u32 ch, Tick doneAt);

    dram::DramDevice &dev;
    QueueParams cfg;
    ThreadPool *pool; ///< optional workers for drainAll; may be null
    u64 ilvMask;      ///< interleaveBytes - 1 (device asserts pow2)
    std::vector<std::vector<QueuedWrite>> writeQ; ///< per channel
    std::vector<std::vector<Tick>> inflight; ///< chunk completions
    u64 nextSeq = 0;

    u64 nReads = 0;
    u64 nDrainEpisodes = 0;
    Distribution readDelay;
    Distribution readDepthDist;
    Distribution writeDepthDist;
    /** Per-channel shards, merged in channel order for reporting so a
     *  pooled drainAll never races on a shared accumulator. */
    std::vector<u64> rowHitBypassCh;
    std::vector<Distribution> writeDelayCh;
    std::vector<Histogram> readDepth;  ///< per channel, at arrival
    std::vector<Histogram> writeDepth; ///< per channel, at enqueue
};

} // namespace h2::mem
