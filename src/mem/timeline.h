/**
 * @file
 * Critical-path timeline of one memory request.
 *
 * Every HybridMemory::access builds one Timeline: the request's issue
 * tick plus an ordered chain of latency segments. Structural traffic
 * (victim evictions, swap-outs, migrations, metadata reads) either
 *
 *  - @b serializes: the step must finish before the request can make
 *    progress, so it extends the critical path (the next serialized
 *    step issues at now(), which chains completions), or
 *  - @b overlaps: the step's data is already latched in controller
 *    buffers (posted writes, trailing fills after the critical word),
 *    so it does not delay the requester; its completion is tracked
 *    only for trailingAt().
 *
 * The repo-wide convention (documented per design in README.md,
 * "Latency semantics") is: reads that source data or metadata the
 * request path depends on serialize; writes of already-buffered data
 * go through HybridMemory's posted-write buffer, which drains after
 * the request's serialized reads (demand traffic keeps bank priority).
 * Overlapped traffic still contends for channels and banks inside
 * DramDevice, so it delays *later* requests — it is charged at the
 * right time, just not on this request's path.
 */

#pragma once

#include "common/types.h"

namespace h2::mem {

class Timeline
{
  public:
    Timeline() = default;
    explicit Timeline(Tick issueTick)
        : issue(issueTick), head(issueTick), trailing(issueTick)
    {
    }

    /** When the request entered the memory organization. */
    Tick issuedAt() const { return issue; }

    /** Critical-path frontier: where the next serialized step issues. */
    Tick now() const { return head; }

    /** When the critical 64 B block is available to the requester. */
    Tick completeAt() const { return head; }

    /** When every segment, overlapped ones included, has drained. */
    Tick trailingAt() const { return trailing > head ? trailing : head; }

    /** Total serialized latency accumulated so far. */
    Tick criticalPathPs() const { return head - issue; }

    /** Number of serialized segments (advance + serialize calls). */
    u32 segments() const { return nSegments; }

    /** Append a fixed on-chip latency segment (controller, XTA). */
    Tick
    advance(Tick ps)
    {
        head += ps;
        ++nSegments;
        return head;
    }

    /**
     * Serialize a completed step onto the critical path: the request
     * cannot proceed before @p doneAt. Pass the completion tick of a
     * DramDevice::access issued at now().
     */
    Tick
    serialize(Tick doneAt)
    {
        if (doneAt > head)
            head = doneAt;
        ++nSegments;
        return head;
    }

    /** Record off-critical-path (posted/trailing) work completing at
     *  @p doneAt; visible through trailingAt() only. */
    void
    overlap(Tick doneAt)
    {
        if (doneAt > trailing)
            trailing = doneAt;
    }

  private:
    Tick issue = 0;
    Tick head = 0;     ///< critical-path frontier
    Tick trailing = 0; ///< completion of overlapped segments
    u32 nSegments = 0;
};

} // namespace h2::mem
