#include "mem/mem_controller.h"

#include <algorithm>

#include "common/log.h"
#include "common/thread_pool.h"

namespace h2::mem {

MemController::MemController(dram::DramDevice &device,
                             const QueueParams &params,
                             ThreadPool *workerPool)
    : dev(device), cfg(params), pool(workerPool),
      ilvMask(u64(device.params().interleaveBytes) - 1)
{
    h2_assert(cfg.writeLowWatermark < cfg.writeHighWatermark,
              "write-drain watermarks must satisfy low < high (got low=",
              cfg.writeLowWatermark, " high=", cfg.writeHighWatermark, ")");
    u32 n = dev.channelCount();
    writeQ.resize(n);
    inflight.resize(n);
    rowHitBypassCh.assign(n, 0);
    writeDelayCh.resize(n);
    readDepth.reserve(n);
    writeDepth.reserve(n);
    for (u32 c = 0; c < n; ++c) {
        readDepth.emplace_back(cfg.depthHistBuckets, 1.0);
        writeDepth.emplace_back(cfg.depthHistBuckets, 1.0);
    }
}

size_t
MemController::pickFrFcfs(const std::vector<QueuedWrite> &q,
                          bool &bypass) const
{
    size_t oldest = 0;
    size_t oldestHit = q.size(); // sentinel: none
    for (size_t i = 0; i < q.size(); ++i) {
        if (q[i].seq < q[oldest].seq)
            oldest = i;
        if (dev.wouldRowHit(q[i].addr) &&
            (oldestHit == q.size() || q[i].seq < q[oldestHit].seq))
            oldestHit = i;
    }
    if (oldestHit != q.size() && oldestHit != oldest) {
        bypass = true;
        return oldestHit;
    }
    bypass = false;
    return oldestHit != q.size() ? oldestHit : oldest;
}

Tick
MemController::dispatchWrite(u32 ch, size_t idx, Tick issueTick)
{
    QueuedWrite w = writeQ[ch][idx];
    writeQ[ch].erase(writeQ[ch].begin() + idx);
    writeDelayCh[ch].sample(
        double(issueTick > w.readyAt ? issueTick - w.readyAt : 0));
    Tick done = dev.access(w.addr, w.bytes, AccessType::Write, issueTick);
    trackInflight(ch, done);
    return done;
}

void
MemController::idleDrain(u32 ch, Tick now)
{
    auto &q = writeQ[ch];
    while (!q.empty()) {
        bool bypass = false;
        size_t idx = pickFrFcfs(q, bypass);
        const QueuedWrite &w = q[idx];
        Tick issueTick = std::min(w.readyAt, now);
        // Dispatch only writes that fit entirely into the idle gap
        // before `now`: the drain must never delay the demand access
        // it runs in front of (read priority).
        if (dev.probeChunkDone(w.addr, w.bytes, issueTick) > now)
            break;
        if (bypass)
            ++rowHitBypassCh[ch];
        dispatchWrite(ch, idx, issueTick);
    }
}

void
MemController::forcedDrain(u32 ch, Tick now)
{
    ++nDrainEpisodes;
    auto &q = writeQ[ch];
    while (q.size() > cfg.writeLowWatermark) {
        bool bypass = false;
        size_t idx = pickFrFcfs(q, bypass);
        if (bypass)
            ++rowHitBypassCh[ch];
        dispatchWrite(ch, idx, now);
    }
}

void
MemController::trackInflight(u32 ch, Tick doneAt)
{
    inflight[ch].push_back(doneAt);
}

void
MemController::sampleReadDepth(u32 ch, Tick now)
{
    auto &v = inflight[ch];
    v.erase(std::remove_if(v.begin(), v.end(),
                           [now](Tick t) { return t <= now; }),
            v.end());
    double depth = double(v.size());
    readDepth[ch].sample(depth);
    readDepthDist.sample(depth);
}

Tick
MemController::access(Addr addr, u32 bytes, AccessType type, Tick now)
{
    if (!cfg.enabled)
        return dev.access(addr, bytes, type, now);

    // Walk the chunks the device will split this request into: sweep
    // idle-gap writes on each touched channel, then measure the wait
    // the request will serialize behind (bus + bank occupancy left by
    // earlier traffic, including any forced write drains).
    Tick queueDelay = 0;
    Addr cur = addr;
    u64 remaining = bytes;
    const u32 ilv = dev.params().interleaveBytes;
    while (remaining > 0) {
        u64 inChunk = ilv - (cur & ilvMask);
        u32 take = static_cast<u32>(std::min<u64>(inChunk, remaining));
        u32 ch;
        u64 bank, row;
        dev.decode(cur, ch, bank, row);
        idleDrain(ch, now);
        if (type == AccessType::Read)
            sampleReadDepth(ch, now);
        Tick waitUntil =
            std::max(dev.channelBusUntil(ch), dev.bankReadyAt(ch, bank));
        if (waitUntil > now)
            queueDelay = std::max(queueDelay, waitUntil - now);
        cur += take;
        remaining -= take;
    }
    if (type == AccessType::Read) {
        ++nReads;
        readDelay.sample(double(queueDelay));
    }

    Tick done = dev.access(addr, bytes, type, now);

    cur = addr;
    remaining = bytes;
    while (remaining > 0) {
        u64 inChunk = ilv - (cur & ilvMask);
        u32 take = static_cast<u32>(std::min<u64>(inChunk, remaining));
        u32 ch;
        u64 bank, row;
        dev.decode(cur, ch, bank, row);
        trackInflight(ch, dev.channelBusUntil(ch));
        cur += take;
        remaining -= take;
    }
    return done;
}

Tick
MemController::post(Addr addr, u32 bytes, Tick readyAt)
{
    if (!cfg.enabled) {
        // Pre-controller behavior: the posted write dispatches the
        // moment its data is ready; the device clamps to bank/bus
        // availability.
        return dev.access(addr, bytes, AccessType::Write, readyAt);
    }
    Addr cur = addr;
    u64 remaining = bytes;
    const u32 ilv = dev.params().interleaveBytes;
    while (remaining > 0) {
        u64 inChunk = ilv - (cur & ilvMask);
        u32 take = static_cast<u32>(std::min<u64>(inChunk, remaining));
        u32 ch;
        u64 bank, row;
        dev.decode(cur, ch, bank, row);
        auto &q = writeQ[ch];
        double depth = double(q.size());
        writeDepth[ch].sample(depth);
        writeDepthDist.sample(depth);
        q.push_back({cur, take, readyAt, nextSeq++});
        if (q.size() >= cfg.writeHighWatermark)
            forcedDrain(ch, readyAt);
        cur += take;
        remaining -= take;
    }
    return readyAt;
}

Tick
MemController::drainChannel(u32 ch, Tick now)
{
    Tick last = now;
    auto &q = writeQ[ch];
    while (!q.empty()) {
        bool bypass = false;
        size_t idx = pickFrFcfs(q, bypass);
        if (bypass)
            ++rowHitBypassCh[ch];
        Tick issueTick = std::max(now, q[idx].readyAt);
        last = std::max(last, dispatchWrite(ch, idx, issueTick));
    }
    return last;
}

Tick
MemController::drainAll(Tick now)
{
    u32 n = static_cast<u32>(writeQ.size());
    std::vector<Tick> lastPerCh(n, now);
    if (pool && pool->size() > 1 && n > 1) {
        // Each worker advances exactly one channel: its write queue,
        // its ChannelState shard inside the device, and its stat
        // shards. Queued entries never cross an interleave boundary,
        // so no dispatch touches another channel's state; every stat
        // a drain mutates is per-channel, so the only shared step is
        // the fixed-order reduction below — identical to the serial
        // path bit for bit.
        for (u32 ch = 0; ch < n; ++ch)
            pool->submit([this, ch, now, &lastPerCh] {
                lastPerCh[ch] = drainChannel(ch, now);
            });
        pool->drain();
    } else {
        for (u32 ch = 0; ch < n; ++ch)
            lastPerCh[ch] = drainChannel(ch, now);
    }
    Tick last = now;
    for (Tick t : lastPerCh)
        last = std::max(last, t);
    return last;
}

u64
MemController::queuedWrites() const
{
    u64 n = 0;
    for (const auto &q : writeQ)
        n += q.size();
    return n;
}

u64
MemController::rowHitBypasses() const
{
    u64 n = 0;
    for (u64 c : rowHitBypassCh)
        n += c;
    return n;
}

double
MemController::avgWriteQueueDelayPs() const
{
    // Counts and tick sums are exact (integer-valued doubles), so the
    // channel-order merge reproduces the chronological mean exactly.
    u64 n = 0;
    double total = 0.0;
    for (const Distribution &d : writeDelayCh) {
        n += d.count();
        total += d.sum();
    }
    return n ? total / n : 0.0;
}

const Histogram &
MemController::writeDepthHist(u32 ch) const
{
    return writeDepth.at(ch);
}

const Histogram &
MemController::readDepthHist(u32 ch) const
{
    return readDepth.at(ch);
}

void
MemController::resetStats()
{
    nReads = 0;
    nDrainEpisodes = 0;
    std::fill(rowHitBypassCh.begin(), rowHitBypassCh.end(), 0);
    readDelay.reset();
    for (auto &d : writeDelayCh)
        d.reset();
    readDepthDist.reset();
    writeDepthDist.reset();
    for (auto &h : readDepth)
        h.reset();
    for (auto &h : writeDepth)
        h.reset();
}

void
MemController::collectStats(StatSet &out, const std::string &prefix) const
{
    out.add(prefix + ".avgReadQueueDelayPs", avgReadQueueDelayPs());
    out.add(prefix + ".avgWriteQueueDelayPs", avgWriteQueueDelayPs());
    out.add(prefix + ".drainEpisodes", double(nDrainEpisodes));
    out.add(prefix + ".rowHitBypasses", double(rowHitBypasses()));
    out.add(prefix + ".queuedWrites", double(queuedWrites()));
    out.add(prefix + ".readDepthMean", readDepthDist.mean());
    out.add(prefix + ".readDepthMax", readDepthDist.max());
    out.add(prefix + ".writeDepthMean", writeDepthDist.mean());
    out.add(prefix + ".writeDepthMax", writeDepthDist.max());
}

} // namespace h2::mem
