/**
 * @file
 * Common interface of all evaluated memory organizations.
 *
 * The system under test (Hybrid2, the migration baselines, the DRAM-cache
 * baselines, and the FM-only baseline) all sit behind this interface:
 * they receive 64 B demand fills and writebacks from the LLC and own the
 * NM/FM DRAM devices.
 */

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "dram/dram_device.h"
#include "mem/mem_controller.h"
#include "mem/timeline.h"

namespace h2::mem {

/** View of the LLC offered to migration policies (LGM uses it). */
class LlcView
{
  public:
    virtual ~LlcView() = default;
    /** Number of 64 B lines of [base, base+bytes) resident in the LLC. */
    virtual u32 residentLines(Addr base, u64 bytes) const = 0;
};

/** Null LlcView: reports nothing resident. */
class EmptyLlcView : public LlcView
{
  public:
    u32 residentLines(Addr, u64) const override { return 0; }
};

/** Sizing and latency context shared by every design. */
struct MemSystemParams
{
    u64 nmBytes = 1ull << 30;      ///< near-memory capacity
    u64 fmBytes = 16ull << 30;     ///< far-memory capacity
    /** Far-memory device technology: DDR4 DRAM (default) or a PCM-like
     *  NVM with asymmetric read/write timing and energy. Designs build
     *  their FM device via dram::DramParams::farMemory(fmTech, ...). */
    dram::FarMemTech fmTech = dram::FarMemTech::Dram;
    Tick corePeriodPs = 313;       ///< 3.2 GHz core clock (rounded to ps)
    /** Fixed controller/on-chip interconnect traversal per request. */
    Tick controllerLatencyPs = 3130; ///< ~10 core cycles
    /** Memory-controller queueing model (queue.enabled = false
     *  restores the pre-controller analytic dispatch). */
    QueueParams queue;
    /**
     * Optional worker pool for intra-simulation parallelism, owned by
     * the caller (sim::System when --sim-threads > 1). Handed to the
     * controllers, whose drainAll() then advances per-channel device
     * shards on separate workers; null (the default) keeps every
     * drain on the calling thread. Either way results are
     * bit-identical — parallel work is partitioned by ChannelState
     * shard and reduced in fixed channel order.
     */
    ThreadPool *simPool = nullptr;
};

/** Outcome of one 64 B request into the memory organization. */
struct MemResult
{
    /** The request's critical path: issue tick, serialized structural
     *  segments, and the trailing (overlapped) frontier. */
    Timeline timeline;
    bool fromNm = false;  ///< served by near memory

    /** When the critical 64 B block is available. */
    Tick completeAt() const { return timeline.completeAt(); }
};

/**
 * Base class: owns the DRAM devices and the served-from-NM accounting.
 *
 * Concrete designs implement access() and may add design-specific
 * counters through collectStats().
 */
class HybridMemory
{
  public:
    HybridMemory(const MemSystemParams &params,
                 const dram::DramParams &nmParams,
                 const dram::DramParams &fmParams);
    /** FM-only construction (no near memory device). */
    HybridMemory(const MemSystemParams &params,
                 const dram::DramParams &fmParams);
    virtual ~HybridMemory() = default;

    HybridMemory(const HybridMemory &) = delete;
    HybridMemory &operator=(const HybridMemory &) = delete;

    /**
     * Serve a 64 B line request (demand fill or LLC writeback) issued at
     * @p now (picoseconds). @p addr is a flat processor physical address
     * in [0, flatCapacity()).
     */
    virtual MemResult access(Addr addr, AccessType type, Tick now) = 0;

    virtual std::string name() const = 0;

    /** Bytes of main memory visible to software under this design. */
    virtual u64 flatCapacity() const = 0;

    /** Design-internal consistency checks; panics on violation. */
    virtual void checkInvariants() const {}

    /** Counters for the bench/test harness. */
    virtual void collectStats(StatSet &out) const;

    /** Zero traffic/energy/service counters after warm-up. The design's
     *  state (caches, remap tables) is kept. */
    virtual void resetStats();

    bool hasNm() const { return nm != nullptr; }
    dram::DramDevice &nmDevice();
    const dram::DramDevice &nmDevice() const;
    dram::DramDevice &fmDevice() { return *fm; }
    const dram::DramDevice &fmDevice() const { return *fm; }

    /** Queued controllers in front of the devices (queue=off: pure
     *  pass-through). */
    MemController &nmController();
    const MemController &nmController() const;
    MemController &fmController() { return *fmCtrl; }
    const MemController &fmController() const { return *fmCtrl; }

    /**
     * Dispatch every write still sitting in the controller queues
     * (issued at @p now or the write's ready tick, whichever is
     * later). The system calls this at the warm-up boundary (so
     * warm-up traffic is charged before counters reset) and at the
     * end of the run (so traffic/energy totals are complete).
     */
    void drainQueues(Tick now);

    u64 requests() const { return nRequests; }
    u64 requestsFromNm() const { return nFromNm; }

    /** Mean critical-path latency (ps) of demand (read) requests —
     *  the traffic a core actually waits on. */
    double avgLatencyPs() const;
    /** Mean critical-path latency (ps) of NM-served demand reads. */
    double avgNmLatencyPs() const;
    /** Mean critical-path latency (ps) of FM-served (miss) demand
     *  reads. Write requests are tracked separately — in the simulated
     *  system every Write at this interface is an LLC writeback no
     *  core waits on, so they must not skew the per-miss cost. */
    double avgMissLatencyPs() const;
    /** Mean critical-path latency (ps) of write requests (LLC
     *  writebacks in the simulated system). */
    double avgWritebackLatencyPs() const;

    /** Total dynamic DRAM energy (NM + FM), picojoules. */
    double dynamicEnergyPj() const;

  protected:
    /**
     * Queue a posted write in the controller's write buffer. Buffered
     * writes are issued by flushPostedWrites() after the request's
     * serialized reads, so demand traffic keeps bank/channel priority
     * over structural writes whose data is already latched. @p readyAt
     * is when the data became available (e.g. its source read's
     * completion); the device clamps to bank availability.
     */
    void
    postWrite(dram::DramDevice &dev, Addr addr, u32 bytes, Tick readyAt)
    {
        postedWrites.push_back({&dev, addr, bytes, readyAt});
    }

    /**
     * Drain the write buffer (in post order) into the controller
     * write queues; completions extend only @p tl's trailing edge,
     * never the critical path. Every access() implementation calls
     * this once before returning, after its serialized reads — so
     * posted writes enter the queues (and can trigger a forced drain)
     * only once the demand path has claimed its banks. With queues
     * off the controller dispatches each write at its ready tick,
     * which is exactly the pre-controller flush.
     */
    void
    flushPostedWrites(Timeline &tl)
    {
        for (const PostedWrite &w : postedWrites)
            tl.overlap(ctrlFor(*w.dev).post(w.addr, w.bytes, w.readyAt));
        postedWrites.clear();
    }

    /**
     * One 64 B access into a reserved NM metadata region (remap/tag
     * tables) of @p regionBytes, spread via @p rotor so table traffic
     * exercises all NM channels/banks. Reads serialize onto @p tl;
     * writes go through the posted-write buffer. Callers keep their
     * own read/write counters.
     */
    void nmMetaRegionAccess(AccessType type, u64 regionBytes, u64 &rotor,
                            Timeline &tl);

    /** Reserved NM slice the baseline designs keep their remap/tag
     *  tables in: 16 MiB, capped at a quarter of NM. */
    u64
    baselineMetaRegionBytes() const
    {
        u64 cap = sys.nmBytes / 4;
        return cap < (16ull << 20) ? cap : (16ull << 20);
    }

    /** Record one served request: NM-served accounting plus the
     *  request's serialized critical-path latency. Reads (demand
     *  fills) and writes (LLC writebacks) land in separate latency
     *  buckets. */
    void
    recordService(AccessType type, bool fromNm, const Timeline &tl)
    {
        ++nRequests;
        if (fromNm)
            ++nFromNm;
        if (type == AccessType::Read) {
            ++nDemandReads;
            demandLatencyPsTotal += tl.criticalPathPs();
            if (fromNm) {
                ++nDemandReadsFromNm;
                nmLatencyPsTotal += tl.criticalPathPs();
            } else {
                missLatencyPsTotal += tl.criticalPathPs();
            }
        } else {
            ++nWritebacks;
            writebackLatencyPsTotal += tl.criticalPathPs();
        }
    }

    /** Controller shorthand for design access() code: all device
     *  traffic goes through these so queued scheduling (and the
     *  queue=off pass-through) applies uniformly. */
    MemController &nmc() { return nmController(); }
    MemController &fmc() { return *fmCtrl; }

    MemSystemParams sys;
    std::unique_ptr<dram::DramDevice> nm; ///< null for the FM-only design
    std::unique_ptr<dram::DramDevice> fm;

  private:
    struct PostedWrite
    {
        dram::DramDevice *dev;
        Addr addr;
        u32 bytes;
        Tick readyAt;
    };

    /** The controller owning @p dev (posted writes carry a device
     *  pointer; route them into the matching queue). */
    MemController &
    ctrlFor(dram::DramDevice &dev)
    {
        if (nmCtrl && &dev == nm.get())
            return *nmCtrl;
        return *fmCtrl;
    }

    std::unique_ptr<MemController> nmCtrl; ///< null for FM-only
    std::unique_ptr<MemController> fmCtrl;

    u64 nRequests = 0;
    u64 nFromNm = 0;
    u64 nDemandReads = 0;
    u64 nDemandReadsFromNm = 0;
    u64 nWritebacks = 0;
    Tick demandLatencyPsTotal = 0;
    Tick nmLatencyPsTotal = 0;
    Tick missLatencyPsTotal = 0;
    Tick writebackLatencyPsTotal = 0;
    std::vector<PostedWrite> postedWrites;
};

/** Request line size from the LLC. */
inline constexpr u32 llcLineBytes = 64;

} // namespace h2::mem
