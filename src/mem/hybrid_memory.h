/**
 * @file
 * Common interface of all evaluated memory organizations.
 *
 * The system under test (Hybrid2, the migration baselines, the DRAM-cache
 * baselines, and the FM-only baseline) all sit behind this interface:
 * they receive 64 B demand fills and writebacks from the LLC and own the
 * NM/FM DRAM devices.
 */

#ifndef H2_MEM_HYBRID_MEMORY_H
#define H2_MEM_HYBRID_MEMORY_H

#include <memory>
#include <optional>
#include <string>

#include "common/stats.h"
#include "common/types.h"
#include "dram/dram_device.h"

namespace h2::mem {

/** View of the LLC offered to migration policies (LGM uses it). */
class LlcView
{
  public:
    virtual ~LlcView() = default;
    /** Number of 64 B lines of [base, base+bytes) resident in the LLC. */
    virtual u32 residentLines(Addr base, u64 bytes) const = 0;
};

/** Null LlcView: reports nothing resident. */
class EmptyLlcView : public LlcView
{
  public:
    u32 residentLines(Addr, u64) const override { return 0; }
};

/** Sizing and latency context shared by every design. */
struct MemSystemParams
{
    u64 nmBytes = 1ull << 30;      ///< near-memory capacity
    u64 fmBytes = 16ull << 30;     ///< far-memory capacity
    Tick corePeriodPs = 313;       ///< 3.2 GHz core clock (rounded to ps)
    /** Fixed controller/on-chip interconnect traversal per request. */
    Tick controllerLatencyPs = 3130; ///< ~10 core cycles
};

/** Outcome of one 64 B request into the memory organization. */
struct MemResult
{
    Tick completeAt = 0;  ///< when the critical 64 B block is available
    bool fromNm = false;  ///< served by near memory
};

/**
 * Base class: owns the DRAM devices and the served-from-NM accounting.
 *
 * Concrete designs implement access() and may add design-specific
 * counters through collectStats().
 */
class HybridMemory
{
  public:
    HybridMemory(const MemSystemParams &params,
                 const dram::DramParams &nmParams,
                 const dram::DramParams &fmParams);
    /** FM-only construction (no near memory device). */
    HybridMemory(const MemSystemParams &params,
                 const dram::DramParams &fmParams);
    virtual ~HybridMemory() = default;

    HybridMemory(const HybridMemory &) = delete;
    HybridMemory &operator=(const HybridMemory &) = delete;

    /**
     * Serve a 64 B line request (demand fill or LLC writeback) issued at
     * @p now (picoseconds). @p addr is a flat processor physical address
     * in [0, flatCapacity()).
     */
    virtual MemResult access(Addr addr, AccessType type, Tick now) = 0;

    virtual std::string name() const = 0;

    /** Bytes of main memory visible to software under this design. */
    virtual u64 flatCapacity() const = 0;

    /** Design-internal consistency checks; panics on violation. */
    virtual void checkInvariants() const {}

    /** Counters for the bench/test harness. */
    virtual void collectStats(StatSet &out) const;

    /** Zero traffic/energy/service counters after warm-up. The design's
     *  state (caches, remap tables) is kept. */
    virtual void resetStats();

    bool hasNm() const { return nm != nullptr; }
    dram::DramDevice &nmDevice();
    const dram::DramDevice &nmDevice() const;
    dram::DramDevice &fmDevice() { return *fm; }
    const dram::DramDevice &fmDevice() const { return *fm; }

    u64 requests() const { return nRequests; }
    u64 requestsFromNm() const { return nFromNm; }

    /** Total dynamic DRAM energy (NM + FM), picojoules. */
    double dynamicEnergyPj() const;

  protected:
    /** Record one served request for the NM-served statistic. */
    void
    recordService(bool fromNm)
    {
        ++nRequests;
        if (fromNm)
            ++nFromNm;
    }

    MemSystemParams sys;
    std::unique_ptr<dram::DramDevice> nm; ///< null for the FM-only design
    std::unique_ptr<dram::DramDevice> fm;

  private:
    u64 nRequests = 0;
    u64 nFromNm = 0;
};

/** Request line size from the LLC. */
inline constexpr u32 llcLineBytes = 64;

} // namespace h2::mem

#endif // H2_MEM_HYBRID_MEMORY_H
