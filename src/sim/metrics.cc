#include "sim/metrics.h"

#include <sstream>
#include <type_traits>

#include "common/units.h"

namespace h2::sim {

std::string
Metrics::toString() const
{
    std::ostringstream os;
    os << workload << " on " << design << ":\n"
       << "  instructions : " << instructions << "\n"
       << "  time         : " << formatTime(timePs)
       << " (" << cycles << " cycles, IPC " << ipc << ")\n"
       << "  LLC misses   : " << llcMisses << " (MPKI " << mpki << ")\n"
       << "  mem requests : " << memRequests << " ("
       << servedFromNm * 100.0 << "% from NM)\n"
       << "  NM traffic   : " << formatBytes(nmTrafficBytes) << "\n"
       << "  FM traffic   : " << formatBytes(fmTrafficBytes) << "\n"
       << "  dyn. energy  : " << dynamicEnergyPj / 1e6 << " uJ\n"
       << "  flat capacity: " << formatBytes(flatCapacityBytes) << "\n";
    return os.str();
}

void
Metrics::writeJson(JsonWriter &w) const
{
    w.beginObject()
        .kv("workload", workload)
        .kv("design", design)
        .kv("instructions", instructions)
        .kv("time_ps", timePs)
        .kv("cycles", cycles)
        .kv("ipc", ipc)
        .kv("mem_accesses", memAccesses)
        .kv("llc_misses", llcMisses)
        .kv("mpki", mpki)
        .kv("mem_requests", memRequests)
        .kv("served_from_nm", servedFromNm)
        .kv("nm_traffic_bytes", nmTrafficBytes)
        .kv("fm_traffic_bytes", fmTrafficBytes)
        .kv("dynamic_energy_pj", dynamicEnergyPj)
        .kv("flat_capacity_bytes", flatCapacityBytes)
        .kv("footprint_bytes", footprintBytes);
    w.key("detail").beginObject();
    for (const auto &[name, value] : detail.entries())
        w.kv(name, value);
    w.endObject().endObject();
}

std::optional<Metrics>
Metrics::fromJson(const JsonValue &v, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return std::nullopt;
    };

    if (!v.isObject())
        return fail("metrics record is not a JSON object");

    Metrics m;
    std::string typeError;
    auto str = [&](const char *key, std::string &out) {
        if (const JsonValue *f = v.find(key)) {
            if (!f->isString())
                typeError = std::string(key) + " is not a string";
            else
                out = f->asString();
        }
    };
    auto num = [&](const char *key, auto &out) {
        if (const JsonValue *f = v.find(key)) {
            if (!f->isNumber())
                typeError = std::string(key) + " is not a number";
            else if constexpr (std::is_floating_point_v<
                                   std::remove_reference_t<decltype(out)>>)
                out = f->asDouble();
            else
                out = f->asU64();
        }
    };

    str("workload", m.workload);
    str("design", m.design);
    num("instructions", m.instructions);
    num("time_ps", m.timePs);
    num("cycles", m.cycles);
    num("ipc", m.ipc);
    num("mem_accesses", m.memAccesses);
    num("llc_misses", m.llcMisses);
    num("mpki", m.mpki);
    num("mem_requests", m.memRequests);
    num("served_from_nm", m.servedFromNm);
    num("nm_traffic_bytes", m.nmTrafficBytes);
    num("fm_traffic_bytes", m.fmTrafficBytes);
    num("dynamic_energy_pj", m.dynamicEnergyPj);
    num("flat_capacity_bytes", m.flatCapacityBytes);
    num("footprint_bytes", m.footprintBytes);
    if (const JsonValue *detail = v.find("detail")) {
        if (!detail->isObject())
            typeError = "detail is not an object";
        else
            for (const auto &[name, stat] : detail->members) {
                if (!stat.isNumber()) {
                    typeError = "detail." + name + " is not a number";
                    break;
                }
                // Deserialization round-trip, not a new emission: the
                // key came out of a metrics record some collectStats()
                // already produced. h2lint: allow(R4)
                m.detail.add(name, stat.asDouble());
            }
    }
    if (!typeError.empty())
        return fail("metrics record: " + typeError);
    return m;
}

std::string
Metrics::toJson() const
{
    JsonWriter w;
    writeJson(w);
    return w.str();
}

std::string
Metrics::csvHeader()
{
    return "workload,design,instructions,time_ps,cycles,ipc,"
           "mem_accesses,llc_misses,mpki,mem_requests,served_from_nm,"
           "nm_traffic_bytes,fm_traffic_bytes,dynamic_energy_pj,"
           "flat_capacity_bytes,footprint_bytes";
}

namespace {

/** RFC 4180 quoting: wrap in quotes, double any embedded quote. */
std::string
csvQuote(const std::string &field)
{
    std::string out = "\"";
    for (char c : field) {
        out += c;
        if (c == '"')
            out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
Metrics::toCsvRow() const
{
    std::ostringstream os;
    // Names may one day contain commas; quote the two string fields.
    os << csvQuote(workload) << ',' << csvQuote(design) << ','
       << instructions << ','
       << timePs << ',' << cycles << ','
       << JsonWriter::formatDouble(ipc) << ',' << memAccesses << ','
       << llcMisses << ',' << JsonWriter::formatDouble(mpki) << ','
       << memRequests << ',' << JsonWriter::formatDouble(servedFromNm)
       << ',' << nmTrafficBytes << ',' << fmTrafficBytes << ','
       << JsonWriter::formatDouble(dynamicEnergyPj) << ','
       << flatCapacityBytes << ',' << footprintBytes;
    return os.str();
}

} // namespace h2::sim
