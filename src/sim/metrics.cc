#include "sim/metrics.h"

#include <sstream>

#include "common/units.h"

namespace h2::sim {

std::string
Metrics::toString() const
{
    std::ostringstream os;
    os << workload << " on " << design << ":\n"
       << "  instructions : " << instructions << "\n"
       << "  time         : " << formatTime(timePs)
       << " (" << cycles << " cycles, IPC " << ipc << ")\n"
       << "  LLC misses   : " << llcMisses << " (MPKI " << mpki << ")\n"
       << "  mem requests : " << memRequests << " ("
       << servedFromNm * 100.0 << "% from NM)\n"
       << "  NM traffic   : " << formatBytes(nmTrafficBytes) << "\n"
       << "  FM traffic   : " << formatBytes(fmTrafficBytes) << "\n"
       << "  dyn. energy  : " << dynamicEnergyPj / 1e6 << " uJ\n"
       << "  flat capacity: " << formatBytes(flatCapacityBytes) << "\n";
    return os.str();
}

} // namespace h2::sim
