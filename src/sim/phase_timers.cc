#include "sim/phase_timers.h"

#include <atomic>

namespace h2::sim {

namespace {
std::atomic<u64> setupNs{0};
std::atomic<u64> warmupNs{0};
std::atomic<u64> measureNs{0};

std::atomic<u64> &
slot(SimPhase p)
{
    switch (p) {
    case SimPhase::Setup:
        return setupNs;
    case SimPhase::Warmup:
        return warmupNs;
    case SimPhase::Measure:
        break;
    }
    return measureNs;
}
} // namespace

void
phaseTimerAdd(SimPhase p, u64 ns)
{
    slot(p).fetch_add(ns, std::memory_order_relaxed);
}

void
phaseTimersReset()
{
    setupNs.store(0, std::memory_order_relaxed);
    warmupNs.store(0, std::memory_order_relaxed);
    measureNs.store(0, std::memory_order_relaxed);
}

PhaseTotals
phaseTimerTotals()
{
    PhaseTotals t;
    t.setupSeconds = setupNs.load(std::memory_order_relaxed) * 1e-9;
    t.warmupSeconds = warmupNs.load(std::memory_order_relaxed) * 1e-9;
    t.measureSeconds = measureNs.load(std::memory_order_relaxed) * 1e-9;
    return t;
}

} // namespace h2::sim
