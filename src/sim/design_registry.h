/**
 * @file
 * The self-registering design registry.
 *
 * Every memory organization registers itself here from its own
 * translation unit (see the H2_REGISTER_DESIGN block at the bottom of
 * each design source under src/baselines and src/core/dcmc.cc): a
 * factory, a typed
 * parameter schema, and a one-line description. Everything that used
 * to be hand-maintained in three places — makeDesign's dispatch, the
 * evaluated-design lineup, and the CLI grammar help — is generated
 * from the entries.
 *
 * Registration happens during static initialization; the registry is
 * read-only afterwards, so concurrent lookups from sweep workers need
 * no locking.
 */

#pragma once

#include <map>
#include <memory>
#include <vector>

#include "mem/hybrid_memory.h"
#include "sim/design_spec.h"

namespace h2::sim {

/** Everything the registry knows about one design kind. */
struct DesignInfo
{
    using Factory = std::unique_ptr<mem::HybridMemory> (*)(
        const DesignSpec &, const mem::MemSystemParams &,
        const mem::LlcView &);
    /** Cross-parameter validation; returns "" or a reason. */
    using CrossCheck = std::string (*)(const DesignSpec &);

    DesignKind kind = DesignKind::Baseline;
    std::string name;        ///< grammar head, e.g. "dfc"
    std::string description; ///< one line, for --list-designs
    std::vector<ParamDef> params;
    Factory factory = nullptr;
    CrossCheck crossCheck = nullptr;
    /** Position in the paper's Figure 12-18 lineup; -1 = not in it. */
    int figure12Order = -1;

    /** Build a spec of this design with all parameters at defaults. */
    DesignSpec defaultSpec() const { return DesignSpec(*this); }
};

class DesignRegistry
{
  public:
    static DesignRegistry &instance();

    /** Register @p info; fatal on a duplicate kind or name. */
    void add(DesignInfo info);

    /** Entry for grammar head @p name; nullptr if unknown. */
    const DesignInfo *find(std::string_view name) const;

    /** Entry for @p kind; fatal if the design never registered. */
    const DesignInfo &at(DesignKind kind) const;

    /** All entries ordered by kind (deterministic, link-order free). */
    std::vector<const DesignInfo *> all() const;

    /**
     * The design-spec grammar rendered from the registered schemas:
     * one block per design with its options, defaults and ranges.
     * Used by `h2sim --help`/`--list-designs` and the README docs.
     */
    std::string grammarHelp() const;

  private:
    DesignRegistry() = default;
    std::map<std::string, DesignInfo, std::less<>> byName;
};

/** Static-init helper behind H2_REGISTER_DESIGN. */
struct DesignRegistrar
{
    explicit DesignRegistrar(DesignInfo info);
};

/**
 * Register a design from its own translation unit:
 *
 *   H2_REGISTER_DESIGN(dfc, [] { DesignInfo d; ...; return d; }())
 *
 * The registrar runs at static initialization. h2core is an OBJECT
 * library precisely so these TUs cannot be dropped by the linker.
 */
#define H2_REGISTER_DESIGN(ident, ...) \
    namespace { \
    const ::h2::sim::DesignRegistrar h2_design_registrar_##ident{ \
        __VA_ARGS__}; \
    }

} // namespace h2::sim
