#include "sim/design_registry.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"

namespace h2::sim {

DesignRegistry &
DesignRegistry::instance()
{
    // Meyers singleton: safe against static-init order across the
    // per-design registrar TUs.
    static DesignRegistry registry;
    return registry;
}

void
DesignRegistry::add(DesignInfo info)
{
    h2_assert(info.factory != nullptr, "design '", info.name,
              "' registered without a factory");
    h2_assert(info.name == to_string(info.kind),
              "design name '", info.name, "' does not match its kind");
    int positionals = 0;
    for (const auto &p : info.params)
        positionals += p.positional ? 1 : 0;
    h2_assert(positionals <= 1, "design '", info.name,
              "' declares more than one positional parameter");
    auto [it, inserted] = byName.emplace(info.name, std::move(info));
    h2_assert(inserted, "design '", it->first, "' registered twice");
}

const DesignInfo *
DesignRegistry::find(std::string_view name) const
{
    auto it = byName.find(name);
    return it == byName.end() ? nullptr : &it->second;
}

const DesignInfo &
DesignRegistry::at(DesignKind kind) const
{
    for (const auto &[name, info] : byName)
        if (info.kind == kind)
            return info;
    h2_panic("design kind ", static_cast<int>(kind), " never registered");
}

std::vector<const DesignInfo *>
DesignRegistry::all() const
{
    std::vector<const DesignInfo *> out;
    out.reserve(byName.size());
    for (const auto &[name, info] : byName)
        out.push_back(&info);
    std::sort(out.begin(), out.end(),
              [](const DesignInfo *a, const DesignInfo *b) {
                  return a->kind < b->kind;
              });
    return out;
}

std::string
DesignRegistry::grammarHelp() const
{
    std::ostringstream os;
    for (const DesignInfo *d : all()) {
        // Usage line: "hybrid2[:cache=<n>,...,cacheonly,...]"
        os << "  " << d->name;
        if (!d->params.empty()) {
            os << "[:";
            bool first = true;
            for (const auto &p : d->params) {
                if (!first)
                    os << ",";
                first = false;
                if (p.type == ParamDef::Type::Flag)
                    os << p.name;
                else
                    os << p.name << "=<n>";
            }
            os << "]";
        }
        os << "\n      " << d->description << "\n";
        for (const auto &p : d->params) {
            os << "      " << p.name;
            switch (p.type) {
            case ParamDef::Type::Flag:
                os << "  (flag) " << p.description;
                break;
            case ParamDef::Type::U64:
                os << "=<n>  " << p.description << " [" << p.defU64
                   << "]";
                if (p.powerOfTwo)
                    os << " (power of two)";
                if (p.minU64 != 0 || p.maxU64 != ~u64(0))
                    os << " (" << p.minU64 << ".." << p.maxU64 << ")";
                if (p.positional)
                    os << " (also positional: " << d->name << ":<n>)";
                break;
            case ParamDef::Type::F64:
                os << "=<x>  " << p.description << " [" << p.defF64
                   << "]";
                break;
            }
            os << "\n";
        }
    }
    return os.str();
}

DesignRegistrar::DesignRegistrar(DesignInfo info)
{
    DesignRegistry::instance().add(std::move(info));
}

} // namespace h2::sim
