#include "sim/report.h"

#include <cstdio>
#include <sstream>

#include "common/io.h"
#include "common/json.h"
#include "common/log.h"
#include "common/units.h"

namespace h2::sim {

namespace {

void
writeConfigJson(JsonWriter &w, const RunConfig &cfg)
{
    w.beginObject()
        .kv("nm_bytes", cfg.nmBytes)
        .kv("fm_bytes", cfg.fmBytes)
        .kv("instr_per_core", cfg.instrPerCore)
        .kv("warmup_instr_per_core", cfg.warmupInstrPerCore)
        .kv("num_cores", cfg.numCores)
        .kv("seed", cfg.seed)
        .kv("fm", dram::to_string(cfg.fm))
        .kv("run_timeout_ms", cfg.runTimeoutMs)
        .kv("retries", cfg.retries)
        .endObject();
}

std::string
renderText(const std::vector<RunRecord> &records)
{
    std::ostringstream os;
    for (const auto &rec : records) {
        if (!rec.ok) {
            os << rec.workload << " on " << rec.design << ": "
               << (rec.interrupted ? "INTERRUPTED" : "FAILED")
               << " after " << rec.attempts << " attempt"
               << (rec.attempts == 1 ? "" : "s") << ": " << rec.error
               << "\n\n";
            continue;
        }
        os << rec.metrics.toString();
        if (rec.hasSpeedup) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.4f", rec.speedup);
            os << "speedup_vs_baseline: " << buf << "\n";
        }
        os << "\n";
    }
    return os.str();
}

std::string
renderJson(const RunConfig &config, const std::vector<RunRecord> &records)
{
    JsonWriter w;
    w.beginObject().kv("generator", "h2sim");
    w.key("config");
    writeConfigJson(w, config);
    w.key("results").beginArray();
    for (const auto &rec : records) {
        w.beginObject()
            .kv("workload", rec.workload)
            .kv("design_spec", rec.design)
            .kv("ok", rec.ok)
            .kv("attempts", rec.attempts);
        if (rec.hasSpeedup)
            w.kv("speedup_vs_baseline", rec.speedup);
        if (rec.ok) {
            w.key("metrics");
            rec.metrics.writeJson(w);
        } else {
            w.kv("error", rec.error);
            if (rec.interrupted)
                w.kv("interrupted", true);
        }
        w.endObject();
    }
    w.endArray().endObject();
    return w.str() + "\n";
}

std::string
renderCsv(const std::vector<RunRecord> &records)
{
    bool anySpeedup = false;
    bool anyFailed = false;
    for (const auto &rec : records) {
        anySpeedup |= rec.hasSpeedup;
        anyFailed |= !rec.ok;
    }

    std::ostringstream os;
    os << Metrics::csvHeader();
    if (anySpeedup)
        os << ",speedup_vs_baseline";
    // Failure columns appear only in reports that have failures (the
    // same shape rule as the speedup column), so fully-successful CSV
    // output is byte-identical to the pre-fault-tolerance format.
    if (anyFailed)
        os << ",ok,attempts,error";
    os << "\n";
    for (const auto &rec : records) {
        if (rec.ok) {
            os << rec.metrics.toCsvRow();
        } else {
            // Metric columns of a failed point render as a defaulted
            // row (zeros) so the column count always matches.
            Metrics empty;
            empty.workload = rec.workload;
            empty.design = rec.design;
            os << empty.toCsvRow();
        }
        if (anySpeedup) {
            os << ',';
            if (rec.hasSpeedup)
                os << JsonWriter::formatDouble(rec.speedup);
        }
        if (anyFailed) {
            os << ',' << (rec.ok ? "true" : "false") << ','
               << rec.attempts << ',';
            std::string err = "\"";
            for (char c : rec.error) {
                err += c;
                if (c == '"')
                    err += c;
            }
            err += '"';
            os << err;
        }
        os << "\n";
    }
    return os.str();
}

} // namespace

std::optional<OutputFormat>
parseOutputFormat(std::string_view name)
{
    if (name == "text")
        return OutputFormat::Text;
    if (name == "json")
        return OutputFormat::Json;
    if (name == "csv")
        return OutputFormat::Csv;
    return std::nullopt;
}

std::string
renderReport(const RunConfig &config,
             const std::vector<RunRecord> &records, OutputFormat format)
{
    switch (format) {
    case OutputFormat::Text: return renderText(records);
    case OutputFormat::Json: return renderJson(config, records);
    case OutputFormat::Csv: return renderCsv(records);
    }
    h2_panic("unknown output format");
}

void
writeReport(const std::string &rendered, const std::string &path)
{
    if (path.empty() || path == "-") {
        std::fputs(rendered.c_str(), stdout);
        return;
    }
    // Atomic: a crash mid-write leaves the previous report intact,
    // never a truncated file that looks complete.
    if (std::string err = writeFileAtomic(path, rendered); !err.empty())
        h2_fatal("cannot write '", path, "': ", err);
}

} // namespace h2::sim
