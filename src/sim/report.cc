#include "sim/report.h"

#include <cstdio>
#include <sstream>

#include "common/json.h"
#include "common/log.h"
#include "common/units.h"

namespace h2::sim {

namespace {

void
writeConfigJson(JsonWriter &w, const RunConfig &cfg)
{
    w.beginObject()
        .kv("nm_bytes", cfg.nmBytes)
        .kv("fm_bytes", cfg.fmBytes)
        .kv("instr_per_core", cfg.instrPerCore)
        .kv("warmup_instr_per_core", cfg.warmupInstrPerCore)
        .kv("num_cores", cfg.numCores)
        .kv("seed", cfg.seed)
        .endObject();
}

std::string
renderText(const std::vector<RunRecord> &records)
{
    std::ostringstream os;
    for (const auto &rec : records) {
        os << rec.metrics.toString();
        if (rec.hasSpeedup) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.4f", rec.speedup);
            os << "speedup_vs_baseline: " << buf << "\n";
        }
        os << "\n";
    }
    return os.str();
}

std::string
renderJson(const RunConfig &config, const std::vector<RunRecord> &records)
{
    JsonWriter w;
    w.beginObject().kv("generator", "h2sim");
    w.key("config");
    writeConfigJson(w, config);
    w.key("results").beginArray();
    for (const auto &rec : records) {
        w.beginObject()
            .kv("workload", rec.workload)
            .kv("design_spec", rec.design);
        if (rec.hasSpeedup)
            w.kv("speedup_vs_baseline", rec.speedup);
        w.key("metrics");
        rec.metrics.writeJson(w);
        w.endObject();
    }
    w.endArray().endObject();
    return w.str() + "\n";
}

std::string
renderCsv(const std::vector<RunRecord> &records)
{
    bool anySpeedup = false;
    for (const auto &rec : records)
        anySpeedup |= rec.hasSpeedup;

    std::ostringstream os;
    os << Metrics::csvHeader();
    if (anySpeedup)
        os << ",speedup_vs_baseline";
    os << "\n";
    for (const auto &rec : records) {
        os << rec.metrics.toCsvRow();
        if (anySpeedup) {
            os << ',';
            if (rec.hasSpeedup)
                os << JsonWriter::formatDouble(rec.speedup);
        }
        os << "\n";
    }
    return os.str();
}

} // namespace

std::optional<OutputFormat>
parseOutputFormat(std::string_view name)
{
    if (name == "text")
        return OutputFormat::Text;
    if (name == "json")
        return OutputFormat::Json;
    if (name == "csv")
        return OutputFormat::Csv;
    return std::nullopt;
}

std::string
renderReport(const RunConfig &config,
             const std::vector<RunRecord> &records, OutputFormat format)
{
    switch (format) {
    case OutputFormat::Text: return renderText(records);
    case OutputFormat::Json: return renderJson(config, records);
    case OutputFormat::Csv: return renderCsv(records);
    }
    h2_panic("unknown output format");
}

void
writeReport(const std::string &rendered, const std::string &path)
{
    if (path.empty() || path == "-") {
        std::fputs(rendered.c_str(), stdout);
        return;
    }
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out)
        h2_fatal("cannot write '", path, "'");
    std::fputs(rendered.c_str(), out);
    if (std::fclose(out) != 0)
        h2_fatal("error writing '", path, "'");
}

} // namespace h2::sim
