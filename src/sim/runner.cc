#include "sim/runner.h"

#include <charconv>
#include <string_view>
#include <vector>

#include "baselines/chameleon.h"
#include "baselines/dfc_cache.h"
#include "baselines/flat_baseline.h"
#include "baselines/ideal_cache.h"
#include "baselines/lgm.h"
#include "baselines/mempod.h"
#include "baselines/tagless_cache.h"
#include "common/log.h"
#include "common/parse.h"
#include "common/units.h"
#include "core/dcmc.h"

namespace h2::sim {

namespace {

std::vector<std::string_view>
splitOn(std::string_view s, char delim)
{
    std::vector<std::string_view> out;
    while (!s.empty()) {
        auto pos = s.find(delim);
        std::string_view item = s.substr(0, pos);
        if (!item.empty())
            out.push_back(item);
        if (pos == std::string_view::npos)
            break;
        s.remove_prefix(pos + 1);
    }
    return out;
}

/** Parse "key=value" into (key, value); bare words get value "". */
std::pair<std::string_view, std::string_view>
keyValue(std::string_view token)
{
    auto eq = token.find('=');
    if (eq == std::string_view::npos)
        return {token, {}};
    return {token.substr(0, eq), token.substr(eq + 1)};
}

/** Parse a decimal integer option; fatal (not a crash) on garbage. */
u64
parseNum(std::string_view what, std::string_view value)
{
    return parseU64OrFatal(what, value);
}

/** Parse a non-negative decimal number allowing a fractional part.
 *  std::from_chars is locale-independent, unlike std::stod. */
double
parseFloat(std::string_view what, std::string_view value)
{
    // Digits and dots only: from_chars alone would also accept signs
    // and inf/nan, which no option here means.
    if (value.find_first_not_of("0123456789.") != std::string_view::npos)
        h2_fatal("bad value for ", what, ": '", value,
                 "' (expected a decimal number)");
    double v = 0.0;
    auto [ptr, ec] = std::from_chars(value.data(),
                                     value.data() + value.size(), v,
                                     std::chars_format::fixed);
    if (ec == std::errc::result_out_of_range)
        h2_fatal("bad value for ", what, ": '", value, "' (out of range)");
    if (ec != std::errc{} || ptr != value.data() + value.size())
        h2_fatal("bad value for ", what, ": '", value,
                 "' (expected a decimal number)");
    return v;
}

std::unique_ptr<mem::HybridMemory>
makeHybrid2(const std::string &opts, const mem::MemSystemParams &memParams)
{
    core::Hybrid2Params p;
    for (const auto &token : splitOn(opts, ',')) {
        auto [key, value] = keyValue(token);
        if (key == "cacheonly") {
            p.migrateNone = true;
            p.freeRemap = true;
        } else if (key == "migrall") {
            p.migrateAll = true;
        } else if (key == "migrnone") {
            p.migrateNone = true;
        } else if (key == "noremap") {
            p.freeRemap = true;
        } else if (key == "cache") {
            p.cacheBytes = parseNum("hybrid2 cache MiB", value) * MiB;
        } else if (key == "sector") {
            p.sectorBytes = static_cast<u32>(parseNum("hybrid2 sector", value));
        } else if (key == "line") {
            p.lineBytes = static_cast<u32>(parseNum("hybrid2 line", value));
        } else if (key == "unused") {
            // Section 3.8 extension: percentage of OS-unused sectors.
            p.unusedSectorFraction =
                parseFloat("hybrid2 unused %", value) / 100.0;
        } else {
            h2_fatal("unknown hybrid2 option: ", key);
        }
    }
    return std::make_unique<core::Dcmc>(memParams, p);
}

} // namespace

std::unique_ptr<mem::HybridMemory>
makeDesign(const std::string &spec, const mem::MemSystemParams &memParams,
           const mem::LlcView &llc)
{
    auto colon = spec.find(':');
    std::string head = spec.substr(0, colon);
    std::string opts =
        colon == std::string::npos ? "" : spec.substr(colon + 1);

    if (head == "baseline")
        return std::make_unique<baselines::FlatBaseline>(memParams);
    if (head == "hybrid2")
        return makeHybrid2(opts, memParams);
    if (head == "ideal") {
        baselines::DramCacheParams p;
        p.lineBytes = opts.empty()
                          ? 256
                          : static_cast<u32>(parseNum("ideal line", opts));
        return std::make_unique<baselines::IdealCache>(
            memParams, p, "IDEAL-" + std::to_string(p.lineBytes));
    }
    if (head == "tagless")
        return std::make_unique<baselines::TaglessCache>(memParams);
    if (head == "dfc") {
        u32 line = opts.empty()
                       ? 1024
                       : static_cast<u32>(parseNum("dfc line", opts));
        return std::make_unique<baselines::DfcCache>(memParams, line);
    }
    if (head == "mempod")
        return std::make_unique<baselines::MemPod>(memParams);
    if (head == "chameleon")
        return std::make_unique<baselines::Chameleon>(memParams);
    if (head == "lgm") {
        baselines::LgmParams p;
        for (const auto &token : splitOn(opts, ',')) {
            auto [key, value] = keyValue(token);
            if (key == "watermark")
                p.watermark =
                    static_cast<u32>(parseNum("lgm watermark", value));
            else
                h2_fatal("unknown lgm option: ", key);
        }
        return std::make_unique<baselines::Lgm>(memParams, llc, p);
    }
    h2_fatal("unknown design spec: ", spec);
}

const std::vector<std::string> &
evaluatedDesigns()
{
    static const std::vector<std::string> designs = {
        "mempod", "chameleon", "lgm", "tagless", "dfc", "hybrid2",
    };
    return designs;
}

SystemConfig
makeSystemConfig(const RunConfig &cfg)
{
    SystemConfig sc = table1Config(cfg.nmBytes, cfg.fmBytes);
    sc.numCores = cfg.numCores;
    sc.instrPerCore = cfg.instrPerCore;
    sc.warmupInstrPerCore = cfg.warmupInstrPerCore;
    sc.seed = cfg.seed;
    return sc;
}

Metrics
simulateOne(const RunConfig &cfg, const workloads::Workload &workload,
            const std::string &designSpec)
{
    System system(makeSystemConfig(cfg), workload,
                  [&](const mem::MemSystemParams &mp,
                      const mem::LlcView &llc) {
                      return makeDesign(designSpec, mp, llc);
                  });
    system.run();
    return system.metrics();
}

Runner::Runner(const RunConfig &config)
    : cfg(config)
{
}

const Metrics &
Runner::run(const workloads::Workload &workload,
            const std::string &designSpec)
{
    std::string key = workload.name + "|" + designSpec;
    auto it = results.find(key);
    if (it != results.end())
        return it->second;
    return results.emplace(key, simulateOne(cfg, workload, designSpec))
        .first->second;
}

double
Runner::speedup(const workloads::Workload &workload,
                const std::string &designSpec)
{
    const Metrics &base = run(workload, "baseline");
    const Metrics &design = run(workload, designSpec);
    h2_assert(design.timePs > 0, "zero runtime");
    return double(base.timePs) / double(design.timePs);
}

} // namespace h2::sim
