#include "sim/runner.h"

#include <algorithm>

#include "common/log.h"
#include "common/units.h"
#include "sim/design_registry.h"

namespace h2::sim {

std::unique_ptr<mem::HybridMemory>
makeDesign(const DesignSpec &spec, const mem::MemSystemParams &memParams,
           const mem::LlcView &llc)
{
    return spec.info().factory(spec, memParams, llc);
}

std::unique_ptr<mem::HybridMemory>
makeDesign(const std::string &spec, const mem::MemSystemParams &memParams,
           const mem::LlcView &llc)
{
    return makeDesign(DesignSpec::parseOrFatal(spec), memParams, llc);
}

const std::vector<std::string> &
evaluatedDesigns()
{
    // The Figure 12-18 lineup, in paper order, from the registry.
    static const std::vector<std::string> designs = [] {
        std::vector<std::pair<int, std::string>> ordered;
        for (const DesignInfo *d : DesignRegistry::instance().all())
            if (d->figure12Order >= 0)
                ordered.emplace_back(d->figure12Order,
                                     d->defaultSpec().toString());
        std::sort(ordered.begin(), ordered.end());
        std::vector<std::string> out;
        for (auto &[order, spec] : ordered)
            out.push_back(std::move(spec));
        return out;
    }();
    return designs;
}

std::string
validateRunConfig(const RunConfig &cfg)
{
    if (cfg.numCores == 0)
        return "numCores must be at least 1";
    if (cfg.instrPerCore == 0)
        return "instrPerCore must be at least 1 (zero-instruction runs "
               "produce no metrics)";
    if (cfg.stepBatch == 0)
        return "stepBatch must be at least 1";
    if (cfg.simThreads == 0)
        return "simThreads must be at least 1";
    if (cfg.nmBytes == 0)
        return "nmBytes must be non-zero (use the 'baseline' design for "
               "an FM-only system)";
    if (cfg.nmBytes >= cfg.fmBytes)
        return detail::concat(
            "NM capacity (", formatBytes(cfg.nmBytes),
            ") must be smaller than FM capacity (",
            formatBytes(cfg.fmBytes),
            "); the paper evaluates NM:FM ratios of 1:16 to 4:16");
    return {};
}

SystemConfig
makeSystemConfig(const RunConfig &cfg)
{
    if (std::string err = validateRunConfig(cfg); !err.empty())
        h2_fatal("invalid run config: ", err);
    SystemConfig sc = table1Config(cfg.nmBytes, cfg.fmBytes);
    sc.numCores = cfg.numCores;
    sc.instrPerCore = cfg.instrPerCore;
    sc.warmupInstrPerCore = cfg.warmupInstrPerCore;
    sc.seed = cfg.seed;
    sc.mem.queue.enabled = cfg.queue;
    sc.mem.fmTech = cfg.fm;
    sc.runTimeoutMs = cfg.runTimeoutMs;
    sc.stepBatch = cfg.stepBatch;
    sc.simThreads = cfg.simThreads;
    sc.batchStats = cfg.batchStats;
    return sc;
}

Metrics
simulateOne(const RunConfig &cfg, const workloads::Workload &workload,
            const std::string &designSpec)
{
    System system(makeSystemConfig(cfg), workload,
                  [&](const mem::MemSystemParams &mp,
                      const mem::LlcView &llc) {
                      return makeDesign(designSpec, mp, llc);
                  });
    system.run();
    return system.metrics();
}

Runner::Runner(const RunConfig &config)
    : cfg(config)
{
}

const Metrics &
Runner::run(const workloads::Workload &workload,
            const std::string &designSpec)
{
    std::string canonical = canonicalDesignSpec(designSpec);
    std::string key = workload.cacheName() + "|" + canonical;
    auto it = results.find(key);
    if (it != results.end())
        return it->second;
    return results.emplace(key, simulateOne(cfg, workload, canonical))
        .first->second;
}

double
Runner::speedup(const workloads::Workload &workload,
                const std::string &designSpec)
{
    const Metrics &base = run(workload, "baseline");
    const Metrics &design = run(workload, designSpec);
    h2_assert(design.timePs > 0, "zero runtime");
    return double(base.timePs) / double(design.timePs);
}

} // namespace h2::sim
