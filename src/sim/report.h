/**
 * @file
 * Rendering of completed experiment runs (sim/experiment.h RunRecords)
 * as text, JSON or CSV — the one serialization path shared by h2sim's
 * --format/--out options and the experiment driver.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/experiment.h"

namespace h2::sim {

enum class OutputFormat : u8 { Text, Json, Csv };

/** Parse "text"|"json"|"csv"; nullopt otherwise. */
std::optional<OutputFormat> parseOutputFormat(std::string_view name);

/**
 * Render @p records under @p config in @p format. Text is the
 * human-readable Metrics::toString form; JSON is one document with the
 * run configuration and a result array (Metrics::writeJson per run);
 * CSV is Metrics::csvHeader plus one row per run (a speedup column is
 * appended when any record carries one).
 */
std::string renderReport(const RunConfig &config,
                         const std::vector<RunRecord> &records,
                         OutputFormat format);

/** Write @p rendered to @p path, or to stdout when @p path is empty
 *  or "-"; fatal when the file cannot be written. */
void writeReport(const std::string &rendered, const std::string &path);

} // namespace h2::sim
