/**
 * @file
 * Interval-based core model and virtual-to-physical address mapping.
 *
 * The core model follows the interval simulation methodology the paper
 * cites (Genbrugge et al., HPCA'10): between misses the core retires
 * @c issueWidth instructions per cycle; long-latency LLC misses overlap
 * up to the MSHR limit and a ROB-sized run-ahead window, after which the
 * core stalls until the oldest miss returns.
 *
 * Address mapping reproduces the paper's "pages are allocated randomly
 * in the HBM or DDR4 proportionally to their capacity": virtual 4 KB
 * pages are placed through a pseudo-random *bijection* over the flat
 * physical space, so placement is random but collision-free.
 */

#pragma once

#include <deque>

#include "cache/cache_hierarchy.h"
#include "common/rng.h"
#include "mem/hybrid_memory.h"
#include "sim/sim_config.h"
#include "workloads/trace.h"

namespace h2::sim {

/** Random, proportional page placement over the flat physical space. */
class AddressMap
{
  public:
    AddressMap(u64 flatBytes, u64 virtualBytes, u64 seed);

    Addr toPhysical(Addr globalVaddr) const;

    u64 flatBytes() const { return flatSize; }
    u64 virtualBytes() const { return virtSize; }

    static constexpr u32 pageBytes = 4096;

  private:
    u64 flatSize;
    u64 virtSize;
    RandomPermutation perm;
};

/** One simulated core consuming a trace. */
class CoreModel
{
  public:
    CoreModel(CoreId id, const CoreParams &params,
              workloads::TraceSource &trace,
              cache::CacheHierarchy &hierarchy, mem::HybridMemory &memory,
              const AddressMap &map, Addr virtualBase, u64 instrBudget);

    bool done() const { return instrs >= budget; }
    Tick now() const { return clock; }

    /** Process one trace record. */
    void step();

    /** Wait for all outstanding misses (end of simulation). */
    void drain();

    /** Mark the end of warm-up: measured counters restart here. */
    void beginMeasurement();

    u64 instructions() const { return instrs; }
    u64 memAccesses() const { return nAccesses; }
    u64 llcMisses() const { return nLlcMisses; }

    u64 measuredInstructions() const { return instrs - measInstr0; }
    u64 measuredAccesses() const { return nAccesses - measAccess0; }
    Tick measurementStart() const { return measClock0; }

  private:
    struct Outstanding
    {
        Tick completeAt;
        u64 instr;
    };

    CoreId id;
    CoreParams p;
    workloads::TraceSource &trace;
    cache::CacheHierarchy &hier;
    mem::HybridMemory &memory;
    const AddressMap &map;
    Addr vbase;
    u64 budget;

    Tick clock = 0;
    u64 issueCarry = 0; ///< sub-cycle remainder of gap / issueWidth
    u64 instrs = 0;
    u64 nAccesses = 0;
    u64 nLlcMisses = 0;
    u64 measInstr0 = 0;
    u64 measAccess0 = 0;
    Tick measClock0 = 0;
    std::deque<Outstanding> pending;
};

} // namespace h2::sim
