/**
 * @file
 * Interval-based core model and virtual-to-physical address mapping.
 *
 * The core model follows the interval simulation methodology the paper
 * cites (Genbrugge et al., HPCA'10): between misses the core retires
 * @c issueWidth instructions per cycle; long-latency LLC misses overlap
 * up to the MSHR limit and a ROB-sized run-ahead window, after which the
 * core stalls until the oldest miss returns.
 *
 * Address mapping reproduces the paper's "pages are allocated randomly
 * in the HBM or DDR4 proportionally to their capacity": virtual 4 KB
 * pages are placed through a pseudo-random *bijection* over the flat
 * physical space, so placement is random but collision-free.
 */

#pragma once

#include <vector>

#include "cache/cache_hierarchy.h"
#include "common/log.h"
#include "common/rng.h"
#include "mem/hybrid_memory.h"
#include "sim/sim_config.h"
#include "workloads/trace.h"

namespace h2::sim {

/** Random, proportional page placement over the flat physical space. */
class AddressMap
{
  public:
    AddressMap(u64 flatBytes, u64 virtualBytes, u64 seed);

    Addr
    toPhysical(Addr globalVaddr) const
    {
        h2_assert(globalVaddr < virtSize,
                  "virtual address out of footprint");
        u64 vpage = globalVaddr / pageBytes;
        // The Feistel walk behind perm.map costs ~40% of a whole
        // simulation when taken per access; the translation is a pure
        // function of the page, so each page pays it once and every
        // later access is one contiguous-lane load.
        u64 ppage = pageLane[vpage];
        if (ppage == kUnmapped)
            ppage = pageLane[vpage] = perm.map(vpage);
        return ppage * u64(pageBytes) + globalVaddr % pageBytes;
    }

    u64 flatBytes() const { return flatSize; }
    u64 virtualBytes() const { return virtSize; }

    static constexpr u32 pageBytes = 4096;

  private:
    static constexpr u64 kUnmapped = ~u64(0);

    u64 flatSize;
    u64 virtSize;
    RandomPermutation perm;
    /** Memoized vpage -> ppage lane (~0 = not yet translated). One
     *  u64 per footprint page (0.2% overhead); filled lazily so the
     *  first touch of each page keeps the exact permutation result. */
    mutable std::vector<u64> pageLane;
};

/** One simulated core consuming a trace. */
class CoreModel
{
  public:
    CoreModel(CoreId id, const CoreParams &params,
              workloads::TraceSource &trace,
              cache::CacheHierarchy &hierarchy, mem::HybridMemory &memory,
              const AddressMap &map, Addr virtualBase, u64 instrBudget);

    bool done() const { return instrs >= budget; }
    Tick now() const { return clock; }

    /** Process one trace record. */
    void step();

    /**
     * Batched stepping: process trace records until the instruction
     * budget @p instrTarget is met, the local clock reaches
     * @p nowLimit, or @p maxSteps records have been consumed —
     * whichever comes first.
     *
     * The caller (System::runUntil) computes @p nowLimit as the point
     * where the global earliest-core schedule would switch to another
     * core, so a batch of any size replays the exact scalar
     * interleaving: results are bit-identical for every batch cap.
     * @return the number of records processed (>= 0).
     */
    u32 stepBatch(u64 instrTarget, Tick nowLimit, u32 maxSteps);

    /** Wait for all outstanding misses (end of simulation). */
    void drain();

    /** Mark the end of warm-up: measured counters restart here. */
    void beginMeasurement();

    u64 instructions() const { return instrs; }
    u64 memAccesses() const { return nAccesses; }
    u64 llcMisses() const { return nLlcMisses; }

    u64 measuredInstructions() const { return instrs - measInstr0; }
    u64 measuredAccesses() const { return nAccesses - measAccess0; }
    Tick measurementStart() const { return measClock0; }

  private:
    struct Outstanding
    {
        Tick completeAt;
        u64 instr;
    };

    /** Fixed ring of in-flight misses: the retire loop runs every
     *  step, and the population is bounded by maxOutstanding, so a
     *  flat ring beats deque's chunked storage on the hot path. */
    class MissRing
    {
      public:
        void
        init(u32 capacity)
        {
            buf.assign(capacity + 1, {});
        }
        bool empty() const { return head == tail; }
        u64
        size() const
        {
            return head <= tail ? tail - head
                                : buf.size() - head + tail;
        }
        const Outstanding &front() const { return buf[head]; }
        void pop_front() { head = wrap(head + 1); }
        void
        push_back(const Outstanding &o)
        {
            buf[tail] = o;
            tail = wrap(tail + 1);
            h2_assert(tail != head, "miss ring overflow");
        }
        template <typename Fn>
        void
        forEach(Fn &&fn) const
        {
            for (u64 i = head; i != tail; i = wrap(i + 1))
                fn(buf[i]);
        }
        void clear() { head = tail = 0; }

      private:
        u64 wrap(u64 i) const { return i == buf.size() ? 0 : i; }
        std::vector<Outstanding> buf;
        u64 head = 0;
        u64 tail = 0;
    };

    CoreId id;
    CoreParams p;
    workloads::TraceSource &trace;
    cache::CacheHierarchy &hier;
    mem::HybridMemory &memory;
    const AddressMap &map;
    Addr vbase;
    u64 budget;

    Tick clock = 0;
    u64 issueCarry = 0; ///< sub-cycle remainder of gap / issueWidth
    u64 instrs = 0;
    u64 nAccesses = 0;
    u64 nLlcMisses = 0;
    u64 measInstr0 = 0;
    u64 measAccess0 = 0;
    Tick measClock0 = 0;
    MissRing pending;
};

} // namespace h2::sim
