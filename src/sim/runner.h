/**
 * @file
 * The experiment runner: design specs, construction, result caching,
 * and speedups over the FM-only baseline.
 *
 * Design spec grammar (used by benches, tests and examples):
 *   "baseline"
 *   "hybrid2"            best Table-DSE configuration
 *   "hybrid2:cacheonly|migrall|migrnone|noremap"
 *   "hybrid2:cache=<MiB>,sector=<B>,line=<B>"
 *   "ideal:<lineBytes>"  overhead-free DRAM cache
 *   "tagless"            page-granular cache
 *   "dfc[:<lineBytes>]"  decoupled fused cache (default 1024)
 *   "mempod" | "chameleon" | "lgm[:watermark=<n>]"
 */

#ifndef H2_SIM_RUNNER_H
#define H2_SIM_RUNNER_H

#include <map>
#include <memory>
#include <string>

#include "sim/system.h"

namespace h2::sim {

/** Build a memory organization from a design spec. */
std::unique_ptr<mem::HybridMemory>
makeDesign(const std::string &spec, const mem::MemSystemParams &memParams,
           const mem::LlcView &llc);

/** The designs compared in Figures 12-18. */
const std::vector<std::string> &evaluatedDesigns();

/** Scenario knobs for one batch of runs. */
struct RunConfig
{
    u64 nmBytes = 1ull << 30;
    u64 fmBytes = 16ull << 30;
    u64 instrPerCore = 1'500'000;
    u64 warmupInstrPerCore = 0;
    u32 numCores = 8;
    u64 seed = 42;
};

/** The SystemConfig a RunConfig expands to (Table 1 + scenario knobs). */
SystemConfig makeSystemConfig(const RunConfig &cfg);

/**
 * Simulate one (workload, design) pair to completion.
 *
 * Pure function of its arguments: builds a fresh System, runs it, and
 * returns the metrics. Safe to call concurrently from sweep workers —
 * nothing inside the simulator mutates shared state.
 */
Metrics simulateOne(const RunConfig &cfg, const workloads::Workload &workload,
                    const std::string &designSpec);

/** Runs (workload, design) pairs, memoizing results per config. */
class Runner
{
  public:
    explicit Runner(const RunConfig &config = {});

    /** Simulate @p workload under @p designSpec (cached). */
    const Metrics &run(const workloads::Workload &workload,
                       const std::string &designSpec);

    /** Speedup of @p designSpec over the FM-only baseline. */
    double speedup(const workloads::Workload &workload,
                   const std::string &designSpec);

    const RunConfig &config() const { return cfg; }

  private:
    RunConfig cfg;
    std::map<std::string, Metrics> results;
};

} // namespace h2::sim

#endif // H2_SIM_RUNNER_H
