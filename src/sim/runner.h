/**
 * @file
 * The experiment runner: design construction, run configuration,
 * result caching, and speedups over the FM-only baseline.
 *
 * Design specs are typed and validated: see sim/design_spec.h for the
 * grammar and sim/design_registry.h for the per-design schemas. The
 * authoritative, always-current grammar text is generated from the
 * registry (`h2sim --list-designs`, DesignRegistry::grammarHelp()).
 */

#pragma once

#include <map>
#include <memory>
#include <string>

#include "sim/design_spec.h"
#include "sim/system.h"

namespace h2::sim {

/** Build a memory organization from a parsed design spec. */
std::unique_ptr<mem::HybridMemory>
makeDesign(const DesignSpec &spec, const mem::MemSystemParams &memParams,
           const mem::LlcView &llc);

/** Build a memory organization from a textual spec; fatal on a bad
 *  spec (use DesignSpec::parse to handle errors programmatically). */
std::unique_ptr<mem::HybridMemory>
makeDesign(const std::string &spec, const mem::MemSystemParams &memParams,
           const mem::LlcView &llc);

/** The designs compared in Figures 12-18, from the registry lineup. */
const std::vector<std::string> &evaluatedDesigns();

/** Scenario knobs for one batch of runs. */
struct RunConfig
{
    u64 nmBytes = 1ull << 30;
    u64 fmBytes = 16ull << 30;
    u64 instrPerCore = 1'500'000;
    u64 warmupInstrPerCore = 0;
    u32 numCores = 8;
    u64 seed = 42;
    /** Queued memory-controller model (mem/mem_controller.h). Off
     *  restores the pre-queue analytic dispatch, for A/B runs and the
     *  noqueue golden suite. */
    bool queue = true;
    /** Far-memory technology (h2sim --fm, experiment-file `fm`): DDR4
     *  DRAM (default) or a PCM-like NVM with asymmetric read/write
     *  latency and energy plus per-bank wear stats. */
    dram::FarMemTech fm = dram::FarMemTech::Dram;
    /** Per-run wall-clock watchdog in ms (0 = none): a run past the
     *  deadline is cancelled with SimTimeoutError and its sweep point
     *  recorded as a timed-out failure (h2sim --run-timeout). */
    u64 runTimeoutMs = 0;
    /** Scheduler batch cap (h2sim --step-batch): max trace records one
     *  core drains per dispatch. Host-side knob only — results are
     *  bit-identical for every value >= 1. */
    u32 stepBatch = 64;
    /** Intra-simulation worker threads for per-channel controller
     *  drains (h2sim --sim-threads); 1 = serial, results are
     *  bit-identical across values. */
    u32 simThreads = 1;
    /** Emit sim.batchesDispatched / sim.avgBatchFill diagnostics into
     *  Metrics.detail (h2sim --batch-stats). */
    bool batchStats = false;
    /** Retries per sweep point after a failure (h2sim --retries);
     *  attempt counts land in RunOutcome and the result journal. */
    u32 retries = 0;
};

/**
 * The structured result of one sweep point: Metrics on success, or a
 * captured failure — a failed point never kills the sweep (or the
 * process) any more.
 *
 * wallMs is host wall clock, the one non-deterministic field; reports
 * never render it (resumed and fresh sweeps stay bit-identical), it
 * lives only in the result journal for post-hoc analysis.
 */
struct RunOutcome
{
    bool ok = false;
    bool timedOut = false;    ///< the --run-timeout watchdog fired
    bool interrupted = false; ///< SIGINT: never retried, never journaled
    Metrics metrics;          ///< valid iff ok
    std::string error;        ///< non-empty iff !ok
    u32 attempts = 1;         ///< attempts consumed (1 + retries used)
    u64 wallMs = 0;           ///< wall clock across all attempts

    bool operator==(const RunOutcome &) const = default;
};

/**
 * Sanity-check @p cfg; returns "" when valid, otherwise an actionable
 * reason (zero cores, zero instruction budget, NM >= FM, ...). The
 * simulation entry points reject invalid configs with h2_fatal; h2sim
 * reports the reason and exits with code 2.
 */
std::string validateRunConfig(const RunConfig &cfg);

/** The SystemConfig a RunConfig expands to (Table 1 + scenario knobs);
 *  fatal if @p cfg fails validateRunConfig. */
SystemConfig makeSystemConfig(const RunConfig &cfg);

/**
 * Simulate one (workload, design) pair to completion.
 *
 * Pure function of its arguments: builds a fresh System, runs it, and
 * returns the metrics. Safe to call concurrently from sweep workers —
 * nothing inside the simulator mutates shared state.
 */
Metrics simulateOne(const RunConfig &cfg, const workloads::Workload &workload,
                    const std::string &designSpec);

/** Runs (workload, design) pairs, memoizing results per config.
 *  Results are keyed by the canonical spec form, so equivalent
 *  spellings ("dfc", "dfc:1024") share one simulation. */
class Runner
{
  public:
    explicit Runner(const RunConfig &config = {});

    /** Simulate @p workload under @p designSpec (cached). */
    const Metrics &run(const workloads::Workload &workload,
                       const std::string &designSpec);

    /** Speedup of @p designSpec over the FM-only baseline. */
    double speedup(const workloads::Workload &workload,
                   const std::string &designSpec);

    const RunConfig &config() const { return cfg; }

  private:
    RunConfig cfg;
    std::map<std::string, Metrics> results;
};

} // namespace h2::sim
