#include "sim/fault_plan.h"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/log.h"
#include "common/parse.h"
#include "sim/interrupt.h"
#include "sim/system.h"

namespace h2::sim {

std::optional<FaultPlan>
FaultPlan::parse(std::string_view text, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = detail::concat("bad --inject plan: ", why);
        return std::nullopt;
    };

    FaultPlan plan;
    while (!text.empty()) {
        auto comma = text.find(',');
        std::string_view clause = text.substr(0, comma);
        text = comma == std::string_view::npos
                   ? std::string_view{}
                   : text.substr(comma + 1);
        if (clause.empty())
            continue;
        auto eq = clause.find('=');
        if (eq == std::string_view::npos)
            return fail(detail::concat("clause '", clause,
                                       "' has no '=' (expected "
                                       "fail=<key>, timeout=<key> or "
                                       "flaky=<key>:<n>)"));
        std::string_view mode = clause.substr(0, eq);
        std::string_view rest = clause.substr(eq + 1);
        if (rest.empty())
            return fail(detail::concat("clause '", clause,
                                       "' names no sweep-point key"));
        if (mode == "fail") {
            plan.failKeys.emplace(rest);
        } else if (mode == "timeout") {
            plan.timeoutKeys.emplace(rest);
        } else if (mode == "flaky") {
            // The count is after the *final* ':' — design specs may
            // contain ':' themselves ("lbm|dfc:1024:2" fails twice).
            auto colon = rest.rfind(':');
            if (colon == std::string_view::npos || colon == 0 ||
                colon + 1 == rest.size())
                return fail(detail::concat(
                    "flaky clause '", clause,
                    "' needs a failure count: flaky=<key>:<n>"));
            u64 n = 0;
            if (!tryParseU64(rest.substr(colon + 1), n) || n == 0 ||
                n > ~u32(0))
                return fail(detail::concat(
                    "flaky clause '", clause,
                    "' has a bad failure count '",
                    rest.substr(colon + 1), "'"));
            plan.flakyKeys.emplace(std::string(rest.substr(0, colon)),
                                   static_cast<u32>(n));
        } else {
            return fail(detail::concat("unknown fault mode '", mode,
                                       "' (expected fail, timeout or "
                                       "flaky)"));
        }
    }
    if (plan.empty())
        return fail("no clauses");
    return plan;
}

void
FaultPlan::inject(const std::string &key, u32 attempt,
                  u64 runTimeoutMs) const
{
    if (failKeys.count(key))
        throw std::runtime_error(
            detail::concat("injected failure for '", key, "'"));

    if (timeoutKeys.count(key)) {
        if (runTimeoutMs == 0)
            throw std::runtime_error(detail::concat(
                "injected timeout for '", key,
                "' needs --run-timeout (refusing to hang forever)"));
        // Emulate a runaway simulation that the watchdog cancels:
        // block in slices (staying responsive to Ctrl-C) until the
        // deadline, then report the cancellation the watchdog would.
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(runTimeoutMs);
        while (std::chrono::steady_clock::now() < deadline) {
            if (interruptRequested())
                throw SimInterruptedError(detail::concat(
                    "interrupted (SIGINT) during injected timeout for '",
                    key, "'"));
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        throw SimTimeoutError(detail::concat(
            "run timeout: injected runaway '", key, "' exceeded ",
            runTimeoutMs, " ms of wall clock"));
    }

    if (auto it = flakyKeys.find(key);
        it != flakyKeys.end() && attempt <= it->second)
        throw std::runtime_error(detail::concat(
            "injected flaky failure for '", key, "' (attempt ", attempt,
            " of ", it->second, " planned failures)"));
}

} // namespace h2::sim
