/**
 * @file
 * Per-run metrics extracted for the paper's evaluation figures.
 */

#pragma once

#include <optional>
#include <string>

#include "common/json.h"
#include "common/stats.h"
#include "common/types.h"

namespace h2::sim {

struct Metrics
{
    std::string workload;
    std::string design;

    u64 instructions = 0;
    Tick timePs = 0;
    u64 cycles = 0;
    double ipc = 0.0;

    u64 memAccesses = 0;   ///< core-side loads+stores
    u64 llcMisses = 0;
    double mpki = 0.0;

    u64 memRequests = 0;   ///< 64 B fills + writebacks at the controller
    double servedFromNm = 0.0;

    u64 nmTrafficBytes = 0;
    u64 fmTrafficBytes = 0;
    double dynamicEnergyPj = 0.0;

    u64 flatCapacityBytes = 0;
    u64 footprintBytes = 0;

    StatSet detail;

    std::string toString() const;

    /** This run as a standalone JSON object (includes `detail`). */
    std::string toJson() const;

    /** Emit this run as one JSON object into an ongoing document
     *  (shared serializer behind h2sim --format json and the benches). */
    void writeJson(JsonWriter &w) const;

    /**
     * Rebuild a Metrics from a parsed writeJson() object (the result
     * journal's resume path). Missing keys keep their defaults, so old
     * journals stay loadable; a non-object or a type mismatch yields
     * nullopt with @p error set. writeJson emits doubles in shortest
     * round-trip form, so load(save(m)) == m field-exactly.
     */
    static std::optional<Metrics> fromJson(const JsonValue &v,
                                           std::string *error);

    /** Column names of toCsvRow(), comma-joined. */
    static std::string csvHeader();

    /** Scalar fields (no `detail`) as one CSV row, matching csvHeader(). */
    std::string toCsvRow() const;

    /** Field-exact equality (doubles compared bit-for-bit); the sweep
     *  engine's determinism tests and bench_wallclock rely on it. */
    bool operator==(const Metrics &) const = default;
};

} // namespace h2::sim
