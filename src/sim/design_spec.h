/**
 * @file
 * Typed design specifications.
 *
 * A DesignSpec is the parsed, validated, canonical representation of
 * one memory-organization design: a design kind plus a typed parameter
 * set checked against the registered schema (see design_registry.h).
 * The textual grammar every entry point accepts is
 *
 *   <kind>[:<option>,<option>,...]
 *
 * where an option is "key=value", a bare flag name, or (for designs
 * with a positional parameter, e.g. "ideal:256") a bare value.
 *
 * DesignSpec::parse() returns a spec or a precise error (unknown
 * design, unknown option, bad value, out of range, not a power of
 * two). toString() renders the canonical form: options in schema
 * order, defaults elided, so equivalent spellings ("dfc", "dfc:1024",
 * "dfc:line=1024") compare and memoize as one design.
 */

#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.h"

namespace h2::sim {

struct DesignInfo; // registry entry; see design_registry.h

/** Every design kind known to the simulator (paper sections 2 and 6). */
enum class DesignKind : u8 {
    Baseline,  ///< FM-only normalization baseline
    Hybrid2,   ///< the paper's DRAM Cache Migration Controller
    Ideal,     ///< overhead-free DRAM cache (Figure 2)
    Tagless,   ///< Tagless DRAM cache (Lee et al., ISCA'15)
    Dfc,       ///< Decoupled Fused Cache (Vasilakis et al., TACO'19)
    MemPod,    ///< MemPod (Prodromou et al., HPCA'17)
    Chameleon, ///< Chameleon (Kotra et al., MICRO'18)
    Lgm,       ///< LLC-Guided Migration (Vasilakis et al., IPDPS'19)
};

std::string to_string(DesignKind kind);

/** Schema entry for one design parameter. */
struct ParamDef
{
    enum class Type : u8 { U64, F64, Flag };

    std::string name;
    Type type = Type::U64;
    std::string description; ///< one line, includes the unit

    u64 defU64 = 0;
    double defF64 = 0.0;
    u64 minU64 = 0;
    u64 maxU64 = ~u64(0);
    double minF64 = 0.0;
    double maxF64 = 1e308;
    bool powerOfTwo = false;
    /** Accepted as a bare value ("ideal:256"); at most one per design. */
    bool positional = false;
};

/** One typed parameter value. */
struct ParamValue
{
    ParamDef::Type type = ParamDef::Type::U64;
    u64 u = 0;
    double f = 0.0;
    bool b = false;

    bool operator==(const ParamValue &) const = default;
};

struct DesignSpecParseResult;

class DesignSpec
{
  public:
    /** Outcome of parsing: a spec, or a precise error. */
    using ParseResult = DesignSpecParseResult;

    /** Parse and validate @p text against the registered schema. */
    static ParseResult parse(std::string_view text);

    /** Parse @p text; h2_fatal (exit, not crash) on any error. */
    static DesignSpec parseOrFatal(std::string_view text);

    DesignKind kind() const;
    /** Grammar head, e.g. "dfc". */
    const std::string &kindName() const;
    /** Registry entry this spec was validated against. */
    const DesignInfo &info() const { return *def; }

    /**
     * Canonical textual form: kind name, then explicitly-set
     * non-default options in schema order. Round-trips through
     * parse() and is the memoization key used by Runner/SweepRunner.
     */
    std::string toString() const;

    /** True iff @p name was explicitly set (to a non-default value). */
    bool isSet(const std::string &name) const;

    /** Value of a U64 parameter (explicit value or schema default). */
    u64 u64Param(const std::string &name) const;
    /** Value of an F64 parameter (explicit value or schema default). */
    double f64Param(const std::string &name) const;
    /** Value of a flag (true iff explicitly set). */
    bool flag(const std::string &name) const;

    /** Canonical equality: same kind, same non-default parameters. */
    bool operator==(const DesignSpec &other) const;

  private:
    friend struct DesignInfo;
    explicit DesignSpec(const DesignInfo &info)
        : def(&info)
    {
    }

    const ParamDef *findParam(const std::string &name) const;

    const DesignInfo *def; ///< registry-owned, immutable after init
    /** Explicitly-set values differing from the schema default. */
    std::map<std::string, ParamValue> values;
};

/** Outcome of DesignSpec::parse: a spec, or a precise error. */
struct DesignSpecParseResult
{
    std::optional<DesignSpec> spec;
    std::string error; ///< empty iff spec is set

    bool ok() const { return spec.has_value(); }
};

/**
 * Canonical form of a textual spec (parseOrFatal + toString); the
 * shared memoization key so "dfc" and "dfc:1024" cache as one run.
 */
std::string canonicalDesignSpec(const std::string &spec);

} // namespace h2::sim
