#include "sim/result_journal.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/json.h"
#include "common/log.h"

namespace h2::sim {

ResultJournal::ResultJournal(const std::string &path)
    : journalPath(path)
{
    file = std::fopen(path.c_str(), "ab");
    if (!file)
        h2_fatal("cannot open result journal '", path,
                 "': ", std::strerror(errno));
}

ResultJournal::~ResultJournal()
{
    if (file)
        std::fclose(file);
}

std::string
ResultJournal::formatRecord(const std::string &key,
                            const RunOutcome &outcome)
{
    JsonWriter w(/*pretty=*/false);
    w.beginObject()
        .kv("key", key)
        .kv("ok", outcome.ok)
        .kv("attempts", outcome.attempts)
        .kv("wall_ms", outcome.wallMs)
        .kv("timed_out", outcome.timedOut);
    if (outcome.ok) {
        w.key("metrics");
        outcome.metrics.writeJson(w);
    } else {
        w.kv("error", outcome.error);
    }
    w.endObject();
    return w.str();
}

std::optional<std::pair<std::string, RunOutcome>>
ResultJournal::parseRecord(std::string_view line, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return std::nullopt;
    };

    std::string parseError;
    auto doc = parseJson(line, &parseError);
    if (!doc)
        return fail(parseError);
    if (!doc->isObject())
        return fail("record is not a JSON object");

    const JsonValue *key = doc->find("key");
    if (!key || !key->isString())
        return fail("record has no string 'key'");
    const JsonValue *ok = doc->find("ok");
    if (!ok || !ok->isBool())
        return fail("record has no boolean 'ok'");

    RunOutcome out;
    out.ok = ok->asBool();
    if (const JsonValue *f = doc->find("attempts");
        f && f->isNumber())
        out.attempts = static_cast<u32>(f->asU64());
    if (const JsonValue *f = doc->find("wall_ms"); f && f->isNumber())
        out.wallMs = f->asU64();
    if (const JsonValue *f = doc->find("timed_out"); f && f->isBool())
        out.timedOut = f->asBool();

    if (out.ok) {
        const JsonValue *metrics = doc->find("metrics");
        if (!metrics)
            return fail("ok record has no 'metrics'");
        std::string metricsError;
        auto m = Metrics::fromJson(*metrics, &metricsError);
        if (!m)
            return fail(metricsError);
        out.metrics = *std::move(m);
    } else {
        const JsonValue *err = doc->find("error");
        if (!err || !err->isString())
            return fail("failed record has no string 'error'");
        out.error = err->asString();
    }
    return std::make_pair(key->asString(), std::move(out));
}

void
ResultJournal::append(const std::string &key, const RunOutcome &outcome)
{
    std::string record = formatRecord(key, outcome);
    record += '\n';
    std::lock_guard<std::mutex> lock(mutex);
    if (std::fwrite(record.data(), 1, record.size(), file) !=
            record.size() ||
        std::fflush(file) != 0)
        h2_fatal("cannot append to result journal '", journalPath,
                 "': ", std::strerror(errno));
#ifndef _WIN32
    // The durability guarantee: the record is on stable storage before
    // the sweep proceeds, so kill -9 loses only in-flight points.
    fsync(fileno(file));
#endif
}

std::optional<std::map<std::string, RunOutcome>>
ResultJournal::load(const std::string &path, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return std::map<std::string, RunOutcome>{}; // fresh resume

    std::map<std::string, RunOutcome> out;
    std::string line;
    u64 lineNo = 0;
    bool sawTornTail = false;
    while (std::getline(in, line)) {
        ++lineNo;
        // getline strips '\n'; a record that never got its newline is
        // the torn tail of a crashed writer.
        bool complete = !in.eof();
        if (line.empty())
            continue;
        std::string recordError;
        auto rec = parseRecord(line, &recordError);
        if (!rec) {
            if (!complete) {
                h2_warn("result journal '", path,
                        "': discarding torn final record (line ", lineNo,
                        "): ", recordError);
                sawTornTail = true;
                break;
            }
            if (error)
                *error = detail::concat(
                    "corrupt result journal '", path, "' line ", lineNo,
                    ": ", recordError);
            return std::nullopt;
        }
        out.insert_or_assign(std::move(rec->first),
                             std::move(rec->second));
    }
    if (!sawTornTail && in.bad()) {
        if (error)
            *error = detail::concat("error reading result journal '",
                                    path, "'");
        return std::nullopt;
    }
    return out;
}

} // namespace h2::sim
