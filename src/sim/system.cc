#include "sim/system.h"

#include <algorithm>

#include "common/log.h"
#include "sim/interrupt.h"

namespace h2::sim {

namespace {
// Steps between watchdog/interrupt polls: frequent enough that a
// cancelled run stops within milliseconds, rare enough that the
// success path stays within measurement noise.
constexpr u32 kCancelCheckStride = 2048;
} // namespace

System::System(const SystemConfig &config,
               const workloads::Workload &workload,
               const DesignFactory &factory)
    : cfg(config), wl(workload)
{
    if (std::string err = validateSystemConfig(cfg); !err.empty())
        h2_fatal("invalid system config: ", err);
    cfg.hier.numCores = cfg.numCores;
    hier = std::make_unique<cache::CacheHierarchy>(cfg.hier);
    llcView = std::make_unique<HierarchyLlcView>(*hier);
    mem = factory(cfg.mem, *llcView);
    h2_assert(mem, "design factory returned nothing");

    u64 virtualBytes = wl.totalVirtualBytes(cfg.numCores);
    map = std::make_unique<AddressMap>(mem->flatCapacity(), virtualBytes,
                                       splitmix64(cfg.seed));

    CoreParams coreParams = cfg.core;
    coreParams.maxOutstanding =
        std::min(coreParams.maxOutstanding, wl.mlp);

    for (u32 c = 0; c < cfg.numCores; ++c) {
        traces.push_back(wl.makeSource(c, cfg.numCores, cfg.seed));
        Addr vbase = wl.multithreaded
            ? 0 : Addr(c) * wl.perCoreFootprint(cfg.numCores);
        cores.push_back(std::make_unique<CoreModel>(
            c, coreParams, *traces.back(), *hier, *mem, *map, vbase,
            cfg.warmupInstrPerCore + cfg.instrPerCore));
    }
}

void
System::checkCancellation() const
{
    if (interruptRequested())
        throw SimInterruptedError(
            detail::concat("interrupted (SIGINT) while simulating '",
                           wl.name, "'"));
    if (deadline && std::chrono::steady_clock::now() >= *deadline)
        throw SimTimeoutError(
            detail::concat("run timeout: '", wl.name, "' exceeded ",
                           cfg.runTimeoutMs, " ms of wall clock"));
}

void
System::runUntil(u64 instrTarget)
{
    // Advance the globally earliest core, so cross-core memory
    // contention is observed in (approximate) time order.
    u32 untilCheck = kCancelCheckStride;
    while (true) {
        CoreModel *next = nullptr;
        for (auto &core : cores)
            if (core->instructions() < instrTarget &&
                (!next || core->now() < next->now()))
                next = core.get();
        if (!next)
            break;
        next->step();
        if (--untilCheck == 0) {
            untilCheck = kCancelCheckStride;
            checkCancellation();
        }
    }
}

void
System::run()
{
    h2_assert(!ran, "System::run called twice");
    if (cfg.runTimeoutMs > 0)
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(cfg.runTimeoutMs);
    auto latestNow = [&] {
        Tick t = 0;
        for (const auto &core : cores)
            t = std::max(t, core->now());
        return t;
    };
    if (cfg.warmupInstrPerCore > 0) {
        runUntil(cfg.warmupInstrPerCore);
        for (auto &core : cores)
            core->beginMeasurement();
        // Warm-up writes still queued in the controllers belong to
        // warm-up traffic: dispatch them before counters reset.
        mem->drainQueues(latestNow());
        hier->resetStats();
        mem->resetStats();
    }
    runUntil(cfg.warmupInstrPerCore + cfg.instrPerCore);
    for (auto &core : cores)
        core->drain();
    mem->drainQueues(latestNow());
    mem->checkInvariants();
    ran = true;
}

Metrics
System::metrics() const
{
    h2_assert(ran, "metrics requested before run()");
    Metrics m;
    m.workload = wl.name;
    m.design = mem->name();
    Tick measStart = 0;
    Tick end = 0;
    for (const auto &core : cores) {
        m.instructions += core->measuredInstructions();
        m.memAccesses += core->measuredAccesses();
        measStart = std::max(measStart, core->measurementStart());
        end = std::max(end, core->now());
    }
    m.timePs = end - measStart;
    m.cycles = m.timePs / cfg.core.periodPs;
    m.ipc = m.cycles ? double(m.instructions) / double(m.cycles) : 0.0;
    m.llcMisses = hier->llcMisses();
    m.mpki = m.instructions
        ? double(m.llcMisses) / (double(m.instructions) / 1000.0) : 0.0;
    m.memRequests = mem->requests();
    m.servedFromNm = m.memRequests
        ? double(mem->requestsFromNm()) / double(m.memRequests) : 0.0;
    m.fmTrafficBytes = mem->fmDevice().stats().totalBytes();
    if (mem->hasNm())
        m.nmTrafficBytes = mem->nmDevice().stats().totalBytes();
    m.dynamicEnergyPj = mem->dynamicEnergyPj();
    m.flatCapacityBytes = mem->flatCapacity();
    m.footprintBytes = wl.footprintBytes;
    hier->collectStats(m.detail);
    mem->collectStats(m.detail);
    return m;
}

} // namespace h2::sim
