#include "sim/system.h"

#include <algorithm>
#include <limits>

#include "common/log.h"
#include "sim/interrupt.h"
#include "sim/phase_timers.h"

namespace h2::sim {

namespace {
// Steps between watchdog/interrupt polls: frequent enough that a
// cancelled run stops within milliseconds, rare enough that the
// success path stays within measurement noise.
constexpr u32 kCancelCheckStride = 2048;
constexpr Tick kTickMax = std::numeric_limits<Tick>::max();
} // namespace

System::System(const SystemConfig &config,
               const workloads::Workload &workload,
               const DesignFactory &factory)
    : cfg(config), wl(workload)
{
    PhaseTimerScope timer(SimPhase::Setup);
    if (std::string err = validateSystemConfig(cfg); !err.empty())
        h2_fatal("invalid system config: ", err);
    cfg.hier.numCores = cfg.numCores;
    hier = std::make_unique<cache::CacheHierarchy>(cfg.hier);
    llcView = std::make_unique<HierarchyLlcView>(*hier);
    if (cfg.simThreads > 1)
        simPool = std::make_unique<ThreadPool>(cfg.simThreads);
    cfg.mem.simPool = simPool.get();
    mem = factory(cfg.mem, *llcView);
    h2_assert(mem, "design factory returned nothing");

    u64 virtualBytes = wl.totalVirtualBytes(cfg.numCores);
    map = std::make_unique<AddressMap>(mem->flatCapacity(), virtualBytes,
                                       splitmix64(cfg.seed));

    CoreParams coreParams = cfg.core;
    coreParams.maxOutstanding =
        std::min(coreParams.maxOutstanding, wl.mlp);

    for (u32 c = 0; c < cfg.numCores; ++c) {
        traces.push_back(wl.makeSource(c, cfg.numCores, cfg.seed));
        Addr vbase = wl.multithreaded
            ? 0 : Addr(c) * wl.perCoreFootprint(cfg.numCores);
        cores.push_back(std::make_unique<CoreModel>(
            c, coreParams, *traces.back(), *hier, *mem, *map, vbase,
            cfg.warmupInstrPerCore + cfg.instrPerCore));
    }
}

void
System::checkCancellation() const
{
    if (interruptRequested())
        throw SimInterruptedError(
            detail::concat("interrupted (SIGINT) while simulating '",
                           wl.name, "'"));
    if (deadline && std::chrono::steady_clock::now() >= *deadline)
        throw SimTimeoutError(
            detail::concat("run timeout: '", wl.name, "' exceeded ",
                           cfg.runTimeoutMs, " ms of wall clock"));
}

void
System::runUntil(u64 instrTarget)
{
    // Advance the globally earliest core, so cross-core memory
    // contention is observed in (approximate) time order. The picked
    // core drains a batch of records instead of a single one: it keeps
    // stepping while it would still be the scheduler's choice, so the
    // scalar earliest-core interleaving is replayed exactly and the
    // dispatch overhead is paid once per batch, not once per record.
    //
    // The scheduler state lives in flat lanes (clock, eligibility)
    // refreshed only for the core that just ran, so one contiguous
    // pass both picks the earliest core and derives the batch limit.
    u32 untilCheck = kCancelCheckStride;
    size_t n = cores.size();
    std::vector<Tick> nowLane(n);
    std::vector<u8> eligible(n);
    for (size_t i = 0; i < n; ++i) {
        nowLane[i] = cores[i]->now();
        eligible[i] = cores[i]->instructions() < instrTarget;
    }
    constexpr size_t kNone = ~size_t(0);
    while (true) {
        // Fused pick + limit scan. The pick is the first index with
        // the minimum clock (lower indices win ties); it remains the
        // scheduler's choice while its clock stays strictly below
        // every eligible lower index (candLow) and at-or-below every
        // eligible higher index (candHigh), so the batch may run
        // until min(candLow, candHigh + 1).
        size_t pick = kNone;
        Tick best = 0;
        Tick candLow = kTickMax;  // min clock among eligible j < pick
        Tick candHigh = kTickMax; // min clock among eligible j > pick
        for (size_t i = 0; i < n; ++i) {
            if (!eligible[i])
                continue;
            Tick t = nowLane[i];
            if (pick == kNone) {
                pick = i;
                best = t;
            } else if (t < best) {
                // Everything seen so far sits at a lower index than
                // the new pick.
                candLow = std::min(candLow, std::min(candHigh, best));
                candHigh = kTickMax;
                pick = i;
                best = t;
            } else {
                candHigh = std::min(candHigh, t);
            }
        }
        if (pick == kNone)
            break;
        Tick limit = std::min(
            candLow, candHigh == kTickMax ? kTickMax : candHigh + 1);
        u32 maxSteps = std::min(cfg.stepBatch, untilCheck);
        u32 executed = cores[pick]->stepBatch(instrTarget, limit, maxSteps);
        nowLane[pick] = cores[pick]->now();
        if (cores[pick]->instructions() >= instrTarget)
            eligible[pick] = 0;
        ++nBatches;
        batchFillSum += executed;
        untilCheck -= executed;
        if (untilCheck == 0) {
            untilCheck = kCancelCheckStride;
            checkCancellation();
        }
    }
}

void
System::run()
{
    h2_assert(!ran, "System::run called twice");
    if (cfg.runTimeoutMs > 0)
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(cfg.runTimeoutMs);
    auto latestNow = [&] {
        Tick t = 0;
        for (const auto &core : cores)
            t = std::max(t, core->now());
        return t;
    };
    if (cfg.warmupInstrPerCore > 0) {
        PhaseTimerScope timer(SimPhase::Warmup);
        runUntil(cfg.warmupInstrPerCore);
        for (auto &core : cores)
            core->beginMeasurement();
        // Warm-up writes still queued in the controllers belong to
        // warm-up traffic: dispatch them before counters reset.
        mem->drainQueues(latestNow());
        hier->resetStats();
        mem->resetStats();
    }
    {
        PhaseTimerScope timer(SimPhase::Measure);
        runUntil(cfg.warmupInstrPerCore + cfg.instrPerCore);
        for (auto &core : cores)
            core->drain();
        mem->drainQueues(latestNow());
        mem->checkInvariants();
    }
    ran = true;
}

Metrics
System::metrics() const
{
    h2_assert(ran, "metrics requested before run()");
    Metrics m;
    m.workload = wl.name;
    m.design = mem->name();
    Tick measStart = 0;
    Tick end = 0;
    for (const auto &core : cores) {
        m.instructions += core->measuredInstructions();
        m.memAccesses += core->measuredAccesses();
        measStart = std::max(measStart, core->measurementStart());
        end = std::max(end, core->now());
    }
    m.timePs = end - measStart;
    m.cycles = m.timePs / cfg.core.periodPs;
    m.ipc = m.cycles ? double(m.instructions) / double(m.cycles) : 0.0;
    m.llcMisses = hier->llcMisses();
    m.mpki = m.instructions
        ? double(m.llcMisses) / (double(m.instructions) / 1000.0) : 0.0;
    m.memRequests = mem->requests();
    m.servedFromNm = m.memRequests
        ? double(mem->requestsFromNm()) / double(m.memRequests) : 0.0;
    m.fmTrafficBytes = mem->fmDevice().stats().totalBytes();
    if (mem->hasNm())
        m.nmTrafficBytes = mem->nmDevice().stats().totalBytes();
    m.dynamicEnergyPj = mem->dynamicEnergyPj();
    m.flatCapacityBytes = mem->flatCapacity();
    m.footprintBytes = wl.footprintBytes;
    hier->collectStats(m.detail);
    mem->collectStats(m.detail);
    if (cfg.batchStats) {
        m.detail.add("sim.batchesDispatched", double(nBatches));
        m.detail.add("sim.avgBatchFill",
                     nBatches ? double(batchFillSum) / double(nBatches)
                              : 0.0);
    }
    return m;
}

} // namespace h2::sim
