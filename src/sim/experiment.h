/**
 * @file
 * Declarative experiment files: one file describes a whole sweep
 * (designs x workloads x RunConfig overrides), driven through the
 * parallel SweepRunner and rendered by sim/report.h.
 *
 * File format — one directive per line, `#` starts a comment:
 *
 *   # quick design comparison
 *   design   dfc
 *   design   hybrid2:cache=64
 *   workload lbm
 *   workload mcf
 *   nm-mib   1024        # RunConfig overrides (all optional)
 *   fm-mib   16384
 *   cores    8
 *   instr    1500000
 *   warmup   0
 *   seed     42
 *   queue    on          # queued memory-controller model (off =
 *                        # pre-queue analytic dispatch)
 *   jobs     4           # parallel simulations (0 = all cores)
 *   speedup  on          # also report speedup over the baseline
 *   format   json        # default output format (CLI --format wins)
 *   run-timeout 60000    # per-run wall-clock watchdog in ms (0 = none)
 *   retries  2           # re-run a failed point up to N times
 *
 * `key value` and `key=value` are both accepted. Design specs are
 * validated against the design registry at parse time, workload specs
 * against the full workload grammar (registry names, `trace:<path>`
 * with the path taken relative to the working directory, and
 * `mix:<a>+<b>[:<n>]` — see workloads/workload_spec.h), and the
 * assembled RunConfig against validateRunConfig — a bad file is
 * reported with its line number before anything runs.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/fault_plan.h"
#include "sim/runner.h"
#include "workloads/workload_registry.h"

namespace h2::sim {

/** A parsed, validated experiment description. */
struct ExperimentSpec
{
    RunConfig config;
    std::vector<std::string> designs;   ///< canonical spec forms
    std::vector<std::string> workloads; ///< validated workload specs

    /** The parsed form of @c workloads (same order), filled by parse()
     *  so runExperiment doesn't re-read trace files. Optional: when
     *  empty (hand-built specs), runExperiment resolves on demand. */
    std::vector<workloads::Workload> resolvedWorkloads;
    bool speedup = false;
    u32 jobs = 1;       ///< parallel simulations (0 = all cores)
    std::string format; ///< "" = caller's default; else text|json|csv

    /** Result journal path (h2sim --journal); "" = no journal. */
    std::string journalPath;
    /** Seed the sweep from the journal before running (--resume). */
    bool resume = false;
    /** Deterministic fault injection (h2sim --inject); CLI-only, no
     *  file directive — faults are a test harness, not an experiment
     *  property. */
    FaultPlan faults;

    /** Parse @p text; on error returns nullopt and sets @p error to a
     *  message naming the offending line. */
    static std::optional<ExperimentSpec> parse(std::string_view text,
                                               std::string *error);

    /** Read and parse @p path; nullopt + @p error on any failure. */
    static std::optional<ExperimentSpec> parseFile(const std::string &path,
                                                   std::string *error);
};

/** One completed (workload, design) point of an experiment. */
struct RunRecord
{
    std::string workload;
    std::string design; ///< canonical design spec
    Metrics metrics;    ///< valid iff ok
    bool hasSpeedup = false;
    double speedup = 0.0; ///< over the FM-only baseline, when requested

    bool ok = true;           ///< the point simulated successfully
    bool interrupted = false; ///< cancelled by SIGINT (implies !ok)
    std::string error;        ///< non-empty iff !ok
    u32 attempts = 1;         ///< attempts consumed (1 + retries used)
};

/**
 * Run the full sweep of @p spec (cross product, plus the baseline per
 * workload when speedups were requested) and return the records in
 * workload-major, design-minor file order. @p jobsOverride replaces
 * the file's job count when non-zero.
 *
 * Fault tolerance: a failed point yields a record with ok=false and
 * the captured error — the sweep always completes and every point gets
 * a record. With a journalPath, completed outcomes are appended
 * durably as they finish; with resume, journaled outcomes are seeded
 * first and only missing points simulate. h2_fatal (capturable) on an
 * unopenable or corrupt journal.
 */
std::vector<RunRecord> runExperiment(const ExperimentSpec &spec,
                                     u32 jobsOverride = 0);

} // namespace h2::sim
