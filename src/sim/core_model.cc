#include "sim/core_model.h"

#include <algorithm>

#include "common/log.h"

namespace h2::sim {

AddressMap::AddressMap(u64 flatBytes, u64 virtualBytes, u64 seed)
    : flatSize(flatBytes), virtSize(virtualBytes),
      perm(flatBytes / pageBytes, seed)
{
    h2_assert(virtualBytes <= flatBytes,
              "workload footprint exceeds flat memory capacity (",
              virtualBytes, " > ", flatBytes,
              "); the paper does not model page faults");
    pageLane.assign(ceilDiv(virtSize, u64(pageBytes)), kUnmapped);
}

CoreModel::CoreModel(CoreId coreId, const CoreParams &params,
                     workloads::TraceSource &traceSource,
                     cache::CacheHierarchy &hierarchy,
                     mem::HybridMemory &memorySystem,
                     const AddressMap &addressMap, Addr virtualBase,
                     u64 instrBudget)
    : id(coreId), p(params), trace(traceSource), hier(hierarchy),
      memory(memorySystem), map(addressMap), vbase(virtualBase),
      budget(instrBudget)
{
    h2_assert(p.issueWidth > 0 && p.maxOutstanding > 0, "bad core params");
    pending.init(p.maxOutstanding);
}

void
CoreModel::step()
{
    workloads::TraceRecord rec = trace.next();
    instrs += u64(rec.instGap) + 1;

    // Non-memory work retires at issueWidth per cycle; keep the
    // sub-cycle remainder so throughput is exact.
    u64 numer = u64(rec.instGap) * p.periodPs + issueCarry;
    clock += numer / p.issueWidth;
    issueCarry = numer % p.issueWidth;

    // Retire constraint: stall on the oldest miss when the MSHRs are
    // full or the ROB window has run ahead too far.
    while (!pending.empty() &&
           (pending.size() >= p.maxOutstanding ||
            instrs - pending.front().instr > p.robInstrs)) {
        clock = std::max(clock, pending.front().completeAt);
        pending.pop_front();
    }

    Addr paddr = map.toPhysical(vbase + rec.vaddr);
    ++nAccesses;
    auto res = hier.access(id, paddr, rec.type);

    if (rec.type == AccessType::Read)
        clock += Tick(res.latencyCycles) * p.periodPs;
    else
        clock += p.periodPs; // stores retire through the store buffer

    if (res.llcMiss) {
        ++nLlcMisses;
        // The demand fill is always a memory read; stores merge into
        // the fetched line in SRAM and reach DRAM on LLC eviction.
        Addr lineAddr = paddr & ~Addr(mem::llcLineBytes - 1);
        auto mr = memory.access(lineAddr, AccessType::Read, clock);
        if (rec.type == AccessType::Read)
            // The pending miss retires when the critical word returns;
            // the timeline's trailing (overlapped) traffic drains in
            // the background and is only felt through DRAM contention.
            pending.push_back({mr.timeline.completeAt(), instrs});
    }
    if (res.writeback)
        memory.access(*res.writeback, AccessType::Write, clock);
}

u32
CoreModel::stepBatch(u64 instrTarget, Tick nowLimit, u32 maxSteps)
{
    u32 n = 0;
    while (n < maxSteps && instrs < instrTarget && clock < nowLimit) {
        step();
        ++n;
    }
    return n;
}

void
CoreModel::beginMeasurement()
{
    measInstr0 = instrs;
    measAccess0 = nAccesses;
    measClock0 = clock;
}

void
CoreModel::drain()
{
    pending.forEach(
        [&](const Outstanding &o) { clock = std::max(clock, o.completeAt); });
    pending.clear();
}

} // namespace h2::sim
