/**
 * @file
 * System configuration presets (paper Table 1).
 */

#pragma once

#include <string>

#include "cache/cache_hierarchy.h"
#include "mem/hybrid_memory.h"

namespace h2::sim {

/** Interval core model parameters (8-core OoO per Table 1). */
struct CoreParams
{
    u32 issueWidth = 4;
    u32 robInstrs = 192;      ///< run-ahead window past the oldest miss
    u32 maxOutstanding = 8;   ///< MSHR-limited memory-level parallelism
    Tick periodPs = 313;      ///< 3.2 GHz, rounded to the ps grid
};

/** Everything needed to instantiate one simulated system. */
struct SystemConfig
{
    u32 numCores = 8;
    cache::HierarchyParams hier;
    CoreParams core;
    mem::MemSystemParams mem;
    u64 instrPerCore = 2'000'000;
    /** Instructions per core run before statistics start (caches and
     *  remap state warm up; all counters then reset). */
    u64 warmupInstrPerCore = 0;
    u64 seed = 42;
    /** Max trace records one core drains per scheduler dispatch.
     *  Purely a host-side batching knob: System::runUntil bounds each
     *  batch so the scalar earliest-core interleaving is replayed
     *  exactly, making results bit-identical for every value >= 1. */
    u32 stepBatch = 64;
    /** Worker threads advancing independent per-channel controller
     *  queues inside one simulation (1 = serial). Results are
     *  bit-identical across values; see README "Hot-path
     *  architecture". */
    u32 simThreads = 1;
    /** Emit scheduler batching counters (sim.batchesDispatched,
     *  sim.avgBatchFill) into Metrics.detail. Off by default: the
     *  values depend on the stepBatch host knob, so they are excluded
     *  from golden/equivalence comparisons unless asked for. */
    bool batchStats = false;
    /** Wall-clock watchdog for one run in milliseconds; 0 disables.
     *  System::run polls cooperatively in its stepping loop and throws
     *  SimTimeoutError past the deadline, so a runaway simulation can
     *  be cancelled without killing the sweep. */
    u64 runTimeoutMs = 0;
};

/** The paper's Table 1 configuration with @p nmBytes of near memory. */
SystemConfig table1Config(u64 nmBytes, u64 fmBytes = 16ull << 30);

/**
 * Sanity-check @p cfg; returns "" when valid, otherwise an actionable
 * reason. System's constructor rejects invalid configurations with
 * h2_fatal instead of running into downstream UB.
 */
std::string validateSystemConfig(const SystemConfig &cfg);

/** Human-readable rendering of a configuration (Table 1 bench). */
std::string describeConfig(const SystemConfig &cfg);

} // namespace h2::sim
