/**
 * @file
 * System configuration presets (paper Table 1).
 */

#pragma once

#include <string>

#include "cache/cache_hierarchy.h"
#include "mem/hybrid_memory.h"

namespace h2::sim {

/** Interval core model parameters (8-core OoO per Table 1). */
struct CoreParams
{
    u32 issueWidth = 4;
    u32 robInstrs = 192;      ///< run-ahead window past the oldest miss
    u32 maxOutstanding = 8;   ///< MSHR-limited memory-level parallelism
    Tick periodPs = 313;      ///< 3.2 GHz, rounded to the ps grid
};

/** Everything needed to instantiate one simulated system. */
struct SystemConfig
{
    u32 numCores = 8;
    cache::HierarchyParams hier;
    CoreParams core;
    mem::MemSystemParams mem;
    u64 instrPerCore = 2'000'000;
    /** Instructions per core run before statistics start (caches and
     *  remap state warm up; all counters then reset). */
    u64 warmupInstrPerCore = 0;
    u64 seed = 42;
    /** Wall-clock watchdog for one run in milliseconds; 0 disables.
     *  System::run polls cooperatively in its stepping loop and throws
     *  SimTimeoutError past the deadline, so a runaway simulation can
     *  be cancelled without killing the sweep. */
    u64 runTimeoutMs = 0;
};

/** The paper's Table 1 configuration with @p nmBytes of near memory. */
SystemConfig table1Config(u64 nmBytes, u64 fmBytes = 16ull << 30);

/**
 * Sanity-check @p cfg; returns "" when valid, otherwise an actionable
 * reason. System's constructor rejects invalid configurations with
 * h2_fatal instead of running into downstream UB.
 */
std::string validateSystemConfig(const SystemConfig &cfg);

/** Human-readable rendering of a configuration (Table 1 bench). */
std::string describeConfig(const SystemConfig &cfg);

} // namespace h2::sim
