/**
 * @file
 * Full-system wiring: cores + SRAM hierarchy + the memory organization
 * under test, with global-time interleaving across cores.
 */

#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"
#include "sim/core_model.h"
#include "sim/metrics.h"
#include "workloads/workload_registry.h"

namespace h2::sim {

/** The per-run watchdog fired: SystemConfig::runTimeoutMs expired
 *  while the simulation was still stepping. Thrown out of System::run
 *  (cooperatively — the stepping loop polls the deadline); the sweep
 *  runner records the point as a timed-out failure. */
class SimTimeoutError : public std::runtime_error
{
  public:
    explicit SimTimeoutError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** The run was cancelled by a cooperative interrupt (SIGINT — see
 *  sim/interrupt.h). Never retried and never journaled: an interrupted
 *  point reruns on --resume. */
class SimInterruptedError : public std::runtime_error
{
  public:
    explicit SimInterruptedError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** LlcView over the shared LLC for LGM-style policies. */
class HierarchyLlcView : public mem::LlcView
{
  public:
    explicit HierarchyLlcView(const cache::CacheHierarchy &hierarchy)
        : hier(hierarchy)
    {
    }

    u32
    residentLines(Addr base, u64 bytes) const override
    {
        return hier.llcResidentLinesInRange(base, bytes);
    }

  private:
    const cache::CacheHierarchy &hier;
};

/** Builds the memory organization once the LLC view exists. */
using DesignFactory = std::function<std::unique_ptr<mem::HybridMemory>(
    const mem::MemSystemParams &, const mem::LlcView &)>;

class System
{
  public:
    System(const SystemConfig &config, const workloads::Workload &workload,
           const DesignFactory &factory);

    /** Run every core to its instruction budget. */
    void run();

    Metrics metrics() const;

    mem::HybridMemory &memory() { return *mem; }
    const mem::HybridMemory &memory() const { return *mem; }
    cache::CacheHierarchy &hierarchy() { return *hier; }

  private:
    void runUntil(u64 instrTarget);
    void checkCancellation() const;

    SystemConfig cfg;
    /** Watchdog deadline, armed by run() when cfg.runTimeoutMs > 0. */
    std::optional<std::chrono::steady_clock::time_point> deadline;
    workloads::Workload wl;
    std::unique_ptr<cache::CacheHierarchy> hier;
    std::unique_ptr<HierarchyLlcView> llcView;
    /** Intra-simulation workers (cfg.simThreads > 1); declared before
     *  `mem` so the controllers that borrow it die first. */
    std::unique_ptr<ThreadPool> simPool;
    std::unique_ptr<mem::HybridMemory> mem;
    std::unique_ptr<AddressMap> map;
    std::vector<std::unique_ptr<workloads::TraceSource>> traces;
    std::vector<std::unique_ptr<CoreModel>> cores;
    u64 nBatches = 0;     ///< scheduler dispatches (batched stepping)
    u64 batchFillSum = 0; ///< records drained across all batches
    bool ran = false;
};

} // namespace h2::sim
