/**
 * @file
 * Full-system wiring: cores + SRAM hierarchy + the memory organization
 * under test, with global-time interleaving across cores.
 */

#ifndef H2_SIM_SYSTEM_H
#define H2_SIM_SYSTEM_H

#include <functional>
#include <memory>
#include <vector>

#include "sim/core_model.h"
#include "sim/metrics.h"
#include "workloads/workload_registry.h"

namespace h2::sim {

/** LlcView over the shared LLC for LGM-style policies. */
class HierarchyLlcView : public mem::LlcView
{
  public:
    explicit HierarchyLlcView(const cache::CacheHierarchy &hierarchy)
        : hier(hierarchy)
    {
    }

    u32
    residentLines(Addr base, u64 bytes) const override
    {
        return hier.llcResidentLinesInRange(base, bytes);
    }

  private:
    const cache::CacheHierarchy &hier;
};

/** Builds the memory organization once the LLC view exists. */
using DesignFactory = std::function<std::unique_ptr<mem::HybridMemory>(
    const mem::MemSystemParams &, const mem::LlcView &)>;

class System
{
  public:
    System(const SystemConfig &config, const workloads::Workload &workload,
           const DesignFactory &factory);

    /** Run every core to its instruction budget. */
    void run();

    Metrics metrics() const;

    mem::HybridMemory &memory() { return *mem; }
    const mem::HybridMemory &memory() const { return *mem; }
    cache::CacheHierarchy &hierarchy() { return *hier; }

  private:
    void runUntil(u64 instrTarget);

    SystemConfig cfg;
    workloads::Workload wl;
    std::unique_ptr<cache::CacheHierarchy> hier;
    std::unique_ptr<HierarchyLlcView> llcView;
    std::unique_ptr<mem::HybridMemory> mem;
    std::unique_ptr<AddressMap> map;
    std::vector<std::unique_ptr<workloads::TraceSource>> traces;
    std::vector<std::unique_ptr<CoreModel>> cores;
    bool ran = false;
};

} // namespace h2::sim

#endif // H2_SIM_SYSTEM_H
