#include "sim/experiment.h"

#include <cctype>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/log.h"
#include "common/parse.h"
#include "common/units.h"
#include "sim/result_journal.h"
#include "sim/sweep_runner.h"
#include "workloads/workload_registry.h"
#include "workloads/workload_spec.h"

namespace h2::sim {

namespace {

/** Strip `#` comments and surrounding whitespace. */
std::string_view
trimLine(std::string_view line)
{
    auto hash = line.find('#');
    if (hash != std::string_view::npos)
        line = line.substr(0, hash);
    while (!line.empty() && std::isspace(static_cast<unsigned char>(
                                line.front())))
        line.remove_prefix(1);
    while (!line.empty() &&
           std::isspace(static_cast<unsigned char>(line.back())))
        line.remove_suffix(1);
    return line;
}

/** Split a directive into (key, value) on '=' or first whitespace run. */
std::pair<std::string_view, std::string_view>
directive(std::string_view line)
{
    auto sep = line.find_first_of("= \t");
    if (sep == std::string_view::npos)
        return {line, {}};
    std::string_view key = line.substr(0, sep);
    std::string_view value = line.substr(sep + 1);
    while (!value.empty() &&
           (value.front() == '=' ||
            std::isspace(static_cast<unsigned char>(value.front()))))
        value.remove_prefix(1);
    return {key, value};
}

std::optional<bool>
parseBool(std::string_view value)
{
    if (value.empty() || value == "on" || value == "true" || value == "1")
        return true;
    if (value == "off" || value == "false" || value == "0")
        return false;
    return std::nullopt;
}

} // namespace

std::optional<ExperimentSpec>
ExperimentSpec::parse(std::string_view text, std::string *error)
{
    auto fail = [&](int lineNo, const std::string &why) {
        if (error)
            *error = detail::concat("experiment file line ", lineNo, ": ",
                                    why);
        return std::nullopt;
    };

    ExperimentSpec spec;
    std::istringstream in{std::string(text)};
    std::string raw;
    int lineNo = 0;
    while (std::getline(in, raw)) {
        ++lineNo;
        std::string_view line = trimLine(raw);
        if (line.empty())
            continue;
        auto [key, value] = directive(line);

        if (key == "design") {
            DesignSpec::ParseResult r = DesignSpec::parse(value);
            if (!r.ok())
                return fail(lineNo, r.error);
            spec.designs.push_back(r.spec->toString());
        } else if (key == "workload") {
            // Full spec grammar: registry names, trace:<path> (opened
            // and validated now; the path is relative to the working
            // directory), and mix:<a>+<b>[:<n>]. The resolved form is
            // kept so the run never re-reads trace files.
            std::string err;
            auto w = workloads::resolveWorkload(std::string(value), &err);
            if (!w)
                return fail(lineNo, err);
            spec.workloads.emplace_back(value);
            spec.resolvedWorkloads.push_back(*std::move(w));
        } else if (key == "nm-mib") {
            u64 v = 0;
            if (!tryParseU64(value, v))
                return fail(lineNo, detail::concat(
                                        "bad value for nm-mib: '", value,
                                        "' (expected a decimal integer)"));
            spec.config.nmBytes = v * MiB;
        } else if (key == "fm-mib") {
            u64 v = 0;
            if (!tryParseU64(value, v))
                return fail(lineNo, detail::concat(
                                        "bad value for fm-mib: '", value,
                                        "' (expected a decimal integer)"));
            spec.config.fmBytes = v * MiB;
        } else if (key == "instr") {
            if (!tryParseU64(value, spec.config.instrPerCore))
                return fail(lineNo, detail::concat(
                                        "bad value for instr: '", value,
                                        "' (expected a decimal integer)"));
        } else if (key == "warmup") {
            if (!tryParseU64(value, spec.config.warmupInstrPerCore))
                return fail(lineNo, detail::concat(
                                        "bad value for warmup: '", value,
                                        "' (expected a decimal integer)"));
        } else if (key == "cores") {
            u64 v = 0;
            if (!tryParseU64(value, v) || v > ~u32(0))
                return fail(lineNo, detail::concat(
                                        "bad value for cores: '", value,
                                        "'"));
            spec.config.numCores = static_cast<u32>(v);
        } else if (key == "seed") {
            if (!tryParseU64(value, spec.config.seed))
                return fail(lineNo, detail::concat(
                                        "bad value for seed: '", value,
                                        "' (expected a decimal integer)"));
        } else if (key == "queue") {
            auto b = parseBool(value);
            if (!b)
                return fail(lineNo,
                            detail::concat("bad value for queue: '",
                                           value, "' (expected on|off)"));
            spec.config.queue = *b;
        } else if (key == "fm") {
            auto tech = dram::parseFarMemTech(value);
            if (!tech)
                return fail(lineNo,
                            detail::concat("bad value for fm: '", value,
                                           "' (expected dram|pcm)"));
            spec.config.fm = *tech;
        } else if (key == "jobs") {
            u64 v = 0;
            if (!tryParseU64(value, v) || v > ~u32(0))
                return fail(lineNo, detail::concat(
                                        "bad value for jobs: '", value,
                                        "'"));
            spec.jobs = static_cast<u32>(v);
        } else if (key == "speedup") {
            auto b = parseBool(value);
            if (!b)
                return fail(lineNo,
                            detail::concat("bad value for speedup: '",
                                           value, "' (expected on|off)"));
            spec.speedup = *b;
        } else if (key == "run-timeout" || key == "run_timeout") {
            if (!tryParseU64(value, spec.config.runTimeoutMs))
                return fail(lineNo,
                            detail::concat("bad value for run-timeout: '",
                                           value,
                                           "' (expected milliseconds)"));
        } else if (key == "step-batch" || key == "step_batch") {
            u64 v = 0;
            if (!tryParseU64(value, v) || v == 0 || v > ~u32(0))
                return fail(lineNo, detail::concat(
                                        "bad value for step-batch: '",
                                        value, "'"));
            spec.config.stepBatch = static_cast<u32>(v);
        } else if (key == "sim-threads" || key == "sim_threads") {
            u64 v = 0;
            if (!tryParseU64(value, v) || v == 0 || v > ~u32(0))
                return fail(lineNo, detail::concat(
                                        "bad value for sim-threads: '",
                                        value, "'"));
            spec.config.simThreads = static_cast<u32>(v);
        } else if (key == "retries") {
            u64 v = 0;
            if (!tryParseU64(value, v) || v > ~u32(0))
                return fail(lineNo, detail::concat(
                                        "bad value for retries: '", value,
                                        "'"));
            spec.config.retries = static_cast<u32>(v);
        } else if (key == "format") {
            if (value != "text" && value != "json" && value != "csv")
                return fail(lineNo,
                            detail::concat("bad value for format: '",
                                           value,
                                           "' (expected text|json|csv)"));
            spec.format = std::string(value);
        } else {
            return fail(lineNo,
                        detail::concat("unknown directive '", key, "'"));
        }
    }

    if (spec.designs.empty())
        return fail(lineNo, "no 'design' directive");
    if (spec.workloads.empty())
        return fail(lineNo, "no 'workload' directive");
    // Directives arrive in any order, so trace stream counts can only
    // be checked against `cores` once the whole file is read.
    for (size_t i = 0; i < spec.resolvedWorkloads.size(); ++i) {
        const workloads::Workload &w = spec.resolvedWorkloads[i];
        if (w.trace && w.traceStreams != spec.config.numCores) {
            if (error)
                *error = detail::concat(
                    "experiment file: trace '", spec.workloads[i],
                    "' was captured with ", w.traceStreams,
                    " streams; set 'cores ", w.traceStreams, "'");
            return std::nullopt;
        }
    }
    if (std::string err = validateRunConfig(spec.config); !err.empty()) {
        if (error)
            *error = detail::concat("experiment file: invalid run config: ",
                                    err);
        return std::nullopt;
    }
    return spec;
}

std::optional<ExperimentSpec>
ExperimentSpec::parseFile(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = detail::concat("cannot read experiment file '", path,
                                    "'");
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str(), error);
}

std::vector<RunRecord>
runExperiment(const ExperimentSpec &spec, u32 jobsOverride)
{
    u32 jobs = jobsOverride ? jobsOverride : spec.jobs;
    // Declared before the runner: workers may append right up to the
    // runner's drain, so the journal must be destroyed after it.
    std::unique_ptr<ResultJournal> journal;
    SweepRunner runner(spec.config, jobs);

    if (!spec.faults.empty())
        runner.setFaultPlan(&spec.faults);
    if (!spec.journalPath.empty()) {
        if (spec.resume) {
            std::string err;
            auto recorded = ResultJournal::load(spec.journalPath, &err);
            if (!recorded)
                h2_fatal(err);
            for (const auto &[k, outcome] : *recorded)
                runner.seed(k, outcome);
            if (!recorded->empty())
                h2_inform("resuming from '", spec.journalPath, "': ",
                          recorded->size(),
                          " journaled point(s) skipped");
        }
        journal =
            std::make_unique<ResultJournal>(spec.journalPath);
        runner.setJournal(journal.get());
    }

    std::vector<workloads::Workload> suite;
    if (spec.resolvedWorkloads.size() == spec.workloads.size()) {
        suite = spec.resolvedWorkloads;
    } else {
        suite.reserve(spec.workloads.size());
        for (const auto &wlSpec : spec.workloads)
            suite.push_back(workloads::resolveWorkloadOrFatal(wlSpec));
    }

    // Submit everything up front so --jobs overlaps the simulations.
    for (const workloads::Workload &w : suite) {
        if (spec.speedup)
            runner.submit(w, "baseline");
        for (const auto &design : spec.designs)
            runner.submit(w, design);
    }

    std::vector<RunRecord> records;
    records.reserve(suite.size() * spec.designs.size());
    for (const workloads::Workload &w : suite) {
        for (const auto &design : spec.designs) {
            RunRecord rec;
            rec.workload = w.name;
            rec.design = design;
            const RunOutcome &o = runner.outcome(w, design);
            rec.ok = o.ok;
            rec.interrupted = o.interrupted;
            rec.error = o.error;
            rec.attempts = o.attempts;
            if (o.ok)
                rec.metrics = o.metrics;
            if (spec.speedup && o.ok) {
                const RunOutcome &base = runner.outcome(w, "baseline");
                if (base.ok && o.metrics.timePs > 0) {
                    rec.hasSpeedup = true;
                    rec.speedup = double(base.metrics.timePs) /
                                  double(o.metrics.timePs);
                }
            }
            records.push_back(std::move(rec));
        }
    }
    return records;
}

} // namespace h2::sim
