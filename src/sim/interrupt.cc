#include "sim/interrupt.h"

#include <atomic>
#include <csignal>

namespace h2::sim {

namespace {

std::atomic<bool> interrupted{false};

void
sigintHandler(int)
{
    // Async-signal-safe: one lock-free store, then arrange for a
    // second Ctrl-C to fall through to the default (killing) handler.
    interrupted.store(true, std::memory_order_relaxed);
    std::signal(SIGINT, SIG_DFL);
}

} // namespace

void
installInterruptHandler()
{
    std::signal(SIGINT, sigintHandler);
}

bool
interruptRequested()
{
    return interrupted.load(std::memory_order_relaxed);
}

void
requestInterrupt()
{
    interrupted.store(true, std::memory_order_relaxed);
}

void
clearInterruptForTest()
{
    interrupted.store(false, std::memory_order_relaxed);
}

} // namespace h2::sim
