/**
 * @file
 * Process-wide wall-clock attribution of simulation phases.
 *
 * System charges its construction to Setup and its run() halves to
 * Warmup/Measure; harnesses (bench_wallclock) reset the accumulators
 * before a pass and read the totals after it. The accumulators are
 * atomics shared by every simulation in the process, so a parallel
 * sweep adds up per-simulation time — the totals are attribution
 * (which phase the CPU time went to), not elapsed wall time, and under
 * --jobs > 1 they exceed the pass duration.
 *
 * This lives outside Metrics on purpose: Metrics must stay a pure
 * function of the simulated machine (the bit-identity suites compare
 * them with operator==), and wall-clock readings are anything but.
 */

#pragma once

#include <chrono>

#include "common/types.h"

namespace h2::sim {

enum class SimPhase { Setup, Warmup, Measure };

/** Charge @p ns nanoseconds to phase @p p. */
void phaseTimerAdd(SimPhase p, u64 ns);

/** Zero all three accumulators (start of a timed pass). */
void phaseTimersReset();

struct PhaseTotals
{
    double setupSeconds = 0.0;
    double warmupSeconds = 0.0;
    double measureSeconds = 0.0;
};

/** Accumulated totals since the last phaseTimersReset(). */
PhaseTotals phaseTimerTotals();

/** RAII scope charging its lifetime to one phase. */
class PhaseTimerScope
{
  public:
    explicit PhaseTimerScope(SimPhase phase)
        : p(phase), t0(std::chrono::steady_clock::now())
    {
    }

    PhaseTimerScope(const PhaseTimerScope &) = delete;
    PhaseTimerScope &operator=(const PhaseTimerScope &) = delete;

    ~PhaseTimerScope()
    {
        auto dt = std::chrono::steady_clock::now() - t0;
        phaseTimerAdd(
            p, static_cast<u64>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                       .count()));
    }

  private:
    SimPhase p;
    std::chrono::steady_clock::time_point t0;
};

} // namespace h2::sim
