#include "sim/design_spec.h"

#include <charconv>
#include <set>
#include <sstream>

#include "common/log.h"
#include "common/parse.h"
#include "sim/design_registry.h"

namespace h2::sim {

namespace {

/** Shortest fixed-notation round-trip rendering of @p v. The grammar's
 *  number parser (tryParseF64) accepts digits and dots only, so the
 *  canonical form must never use scientific notation — plain to_chars
 *  would render e.g. 0.0001 as "1e-04", which could not re-parse. */
std::string
formatF64(double v)
{
    char buf[1100]; // fixed notation of a denormal double can run long
    auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::fixed);
    h2_assert(ec == std::errc{}, "double format overflow");
    return std::string(buf, ptr);
}

const ParamDef *
positionalParam(const DesignInfo &info)
{
    for (const auto &p : info.params)
        if (p.positional)
            return &p;
    return nullptr;
}

std::string
badValue(const DesignInfo &info, const ParamDef &pd, std::string_view value,
         const std::string &why)
{
    return detail::concat("bad value for ", info.name, " ", pd.name, ": '",
                          value, "' (", why, ")");
}

/** Parse + range-check one option value into @p values; "" on success.
 *  Values equal to the schema default are dropped (canonicalization). */
std::string
applyValue(std::map<std::string, ParamValue> &values,
           const DesignInfo &info, const ParamDef &pd,
           std::string_view value)
{
    ParamValue pv;
    pv.type = pd.type;
    switch (pd.type) {
    case ParamDef::Type::Flag:
        if (!value.empty())
            return badValue(info, pd, value, "flag takes no value");
        pv.b = true;
        values.emplace(pd.name, pv);
        return {};
    case ParamDef::Type::U64: {
        if (!tryParseU64(value, pv.u)) {
            u64 dummy = 0;
            auto [ptr, ec] = std::from_chars(
                value.data(), value.data() + value.size(), dummy, 10);
            if (ec == std::errc::result_out_of_range &&
                ptr == value.data() + value.size())
                return badValue(info, pd, value, "out of range");
            return badValue(info, pd, value, "expected a decimal integer");
        }
        if (pv.u < pd.minU64 || pv.u > pd.maxU64)
            return badValue(info, pd, value,
                            detail::concat("allowed range ", pd.minU64,
                                           "..", pd.maxU64));
        if (pd.powerOfTwo && (pv.u == 0 || (pv.u & (pv.u - 1)) != 0))
            return badValue(info, pd, value, "must be a power of two");
        if (pv.u != pd.defU64)
            values.emplace(pd.name, pv);
        return {};
    }
    case ParamDef::Type::F64:
        if (!tryParseF64(value, pv.f))
            return badValue(info, pd, value, "expected a decimal number");
        if (pv.f < pd.minF64 || pv.f > pd.maxF64)
            return badValue(info, pd, value,
                            detail::concat("allowed range ", pd.minF64,
                                           "..", pd.maxF64));
        if (pv.f != pd.defF64)
            values.emplace(pd.name, pv);
        return {};
    }
    return "unreachable";
}

} // namespace

std::string
to_string(DesignKind kind)
{
    switch (kind) {
    case DesignKind::Baseline: return "baseline";
    case DesignKind::Hybrid2: return "hybrid2";
    case DesignKind::Ideal: return "ideal";
    case DesignKind::Tagless: return "tagless";
    case DesignKind::Dfc: return "dfc";
    case DesignKind::MemPod: return "mempod";
    case DesignKind::Chameleon: return "chameleon";
    case DesignKind::Lgm: return "lgm";
    }
    h2_panic("unknown DesignKind ", static_cast<int>(kind));
}

DesignSpec::ParseResult
DesignSpec::parse(std::string_view text)
{
    ParseResult result;
    auto colon = text.find(':');
    std::string_view head = text.substr(0, colon);
    const DesignInfo *info = DesignRegistry::instance().find(head);
    if (!info) {
        result.error = detail::concat("unknown design spec: '", text, "'");
        return result;
    }

    DesignSpec spec(*info);
    std::string_view opts =
        colon == std::string_view::npos ? std::string_view{}
                                        : text.substr(colon + 1);
    std::set<std::string, std::less<>> seen;
    for (std::string_view token : splitOn(opts, ',')) {
        auto [key, value] = keyValue(token);
        const ParamDef *pd = spec.findParam(std::string(key));
        if (!pd) {
            // A bare value binds to the design's positional parameter
            // ("ideal:256"); anything else is an unknown option.
            const ParamDef *pos = positionalParam(*info);
            if (token.find('=') == std::string_view::npos && pos) {
                pd = pos;
                value = token;
            } else {
                result.error = detail::concat("unknown ", info->name,
                                              " option: ", key);
                return result;
            }
        }
        if (!seen.insert(std::string(pd->name)).second) {
            result.error = detail::concat("duplicate ", info->name,
                                          " option: ", pd->name);
            return result;
        }
        std::string err = applyValue(spec.values, *info, *pd, value);
        if (!err.empty()) {
            result.error = std::move(err);
            return result;
        }
    }

    if (info->crossCheck) {
        std::string err = info->crossCheck(spec);
        if (!err.empty()) {
            result.error = detail::concat("invalid ", info->name,
                                          " spec '", text, "': ", err);
            return result;
        }
    }
    result.spec = std::move(spec);
    return result;
}

DesignSpec
DesignSpec::parseOrFatal(std::string_view text)
{
    ParseResult result = parse(text);
    if (!result.ok())
        h2_fatal(result.error);
    return *std::move(result.spec);
}

DesignKind
DesignSpec::kind() const
{
    return def->kind;
}

const std::string &
DesignSpec::kindName() const
{
    return def->name;
}

std::string
DesignSpec::toString() const
{
    std::ostringstream os;
    os << def->name;
    char sep = ':';
    // Schema order, not map order: the canonical form is stable under
    // any input spelling or option order.
    for (const auto &pd : def->params) {
        auto it = values.find(pd.name);
        if (it == values.end())
            continue;
        os << sep;
        sep = ',';
        switch (pd.type) {
        case ParamDef::Type::Flag:
            os << pd.name;
            break;
        case ParamDef::Type::U64:
            os << pd.name << '=' << it->second.u;
            break;
        case ParamDef::Type::F64:
            os << pd.name << '=' << formatF64(it->second.f);
            break;
        }
    }
    return os.str();
}

bool
DesignSpec::isSet(const std::string &name) const
{
    return values.count(name) != 0;
}

const ParamDef *
DesignSpec::findParam(const std::string &name) const
{
    for (const auto &p : def->params)
        if (p.name == name)
            return &p;
    return nullptr;
}

u64
DesignSpec::u64Param(const std::string &name) const
{
    auto it = values.find(name);
    if (it != values.end())
        return it->second.u;
    const ParamDef *pd = findParam(name);
    h2_assert(pd && pd->type == ParamDef::Type::U64,
              "no u64 param '", name, "' in design ", def->name);
    return pd->defU64;
}

double
DesignSpec::f64Param(const std::string &name) const
{
    auto it = values.find(name);
    if (it != values.end())
        return it->second.f;
    const ParamDef *pd = findParam(name);
    h2_assert(pd && pd->type == ParamDef::Type::F64,
              "no f64 param '", name, "' in design ", def->name);
    return pd->defF64;
}

bool
DesignSpec::flag(const std::string &name) const
{
    auto it = values.find(name);
    if (it != values.end())
        return it->second.b;
    const ParamDef *pd = findParam(name);
    h2_assert(pd && pd->type == ParamDef::Type::Flag,
              "no flag '", name, "' in design ", def->name);
    return false;
}

bool
DesignSpec::operator==(const DesignSpec &other) const
{
    return def == other.def && values == other.values;
}

std::string
canonicalDesignSpec(const std::string &spec)
{
    return DesignSpec::parseOrFatal(spec).toString();
}

} // namespace h2::sim
