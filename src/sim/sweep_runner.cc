#include "sim/sweep_runner.h"

#include "common/log.h"

namespace h2::sim {

SweepRunner::SweepRunner(const RunConfig &config, u32 jobs)
    : cfg(config), pool(jobs ? jobs : ThreadPool::defaultConcurrency())
{
}

SweepRunner::~SweepRunner()
{
    pool.drain();
}

std::string
SweepRunner::key(const workloads::Workload &workload,
                 const std::string &designSpec)
{
    // Canonical spec form: "dfc" and "dfc:1024" memoize as one run.
    // cacheName keeps a trace:<path> replay distinct from the synthetic
    // workload it was captured from (they share Metrics.workload).
    return workload.cacheName() + "|" + canonicalDesignSpec(designSpec);
}

void
SweepRunner::submit(const workloads::Workload &workload,
                    const std::string &designSpec)
{
    std::string k = key(workload, designSpec);
    {
        std::unique_lock lock(mu);
        if (done.count(k) || inFlight.count(k))
            return;
        inFlight.insert(k);
    }
    // The workload is copied into the task: benches routinely pass
    // temporaries and the simulation outlives the submit call.
    pool.submit([this, k, workload, designSpec] {
        Metrics m = simulateOne(cfg, workload, designSpec);
        {
            std::unique_lock lock(mu);
            inFlight.erase(k);
            done.emplace(k, std::move(m));
        }
        doneCv.notify_all();
    });
}

void
SweepRunner::submitSweep(const std::vector<workloads::Workload> &suite,
                         const std::vector<std::string> &specs,
                         bool withBaseline)
{
    for (const auto &w : suite) {
        if (withBaseline)
            submit(w, "baseline");
        for (const auto &spec : specs)
            submit(w, spec);
    }
}

const Metrics &
SweepRunner::blockOn(const std::string &resultKey)
{
    std::unique_lock lock(mu);
    doneCv.wait(lock, [&] { return done.count(resultKey) != 0; });
    // std::map references are stable; safe to return across the lock.
    return done.at(resultKey);
}

const Metrics &
SweepRunner::run(const workloads::Workload &workload,
                 const std::string &designSpec)
{
    submit(workload, designSpec);
    return blockOn(key(workload, designSpec));
}

double
SweepRunner::speedup(const workloads::Workload &workload,
                     const std::string &designSpec)
{
    submit(workload, "baseline");
    submit(workload, designSpec);
    const Metrics &base = blockOn(key(workload, "baseline"));
    const Metrics &design = blockOn(key(workload, designSpec));
    h2_assert(design.timePs > 0, "zero runtime");
    return double(base.timePs) / double(design.timePs);
}

void
SweepRunner::waitAll()
{
    std::unique_lock lock(mu);
    doneCv.wait(lock, [this] { return inFlight.empty(); });
}

const std::map<std::string, Metrics> &
SweepRunner::results()
{
    waitAll();
    return done;
}

u64
SweepRunner::totalAccesses()
{
    waitAll();
    std::unique_lock lock(mu);
    u64 total = 0;
    for (const auto &[k, m] : done)
        total += m.memAccesses;
    return total;
}

} // namespace h2::sim
