#include "sim/sweep_runner.h"

#include <chrono>

#include "common/log.h"
#include "sim/fault_plan.h"
#include "sim/interrupt.h"
#include "sim/result_journal.h"

namespace h2::sim {

SweepRunner::SweepRunner(const RunConfig &config, u32 jobs)
    : cfg(config), pool(jobs ? jobs : ThreadPool::defaultConcurrency())
{
}

SweepRunner::~SweepRunner()
{
    pool.drain();
}

std::string
SweepRunner::key(const workloads::Workload &workload,
                 const std::string &designSpec)
{
    // Canonical spec form: "dfc" and "dfc:1024" memoize as one run.
    // cacheName keeps a trace:<path> replay distinct from the synthetic
    // workload it was captured from (they share Metrics.workload).
    auto parsed = DesignSpec::parse(designSpec);
    return workload.cacheName() + "|" +
           (parsed.ok() ? parsed.spec->toString() : designSpec);
}

RunOutcome
SweepRunner::executePoint(const std::string &resultKey,
                          const workloads::Workload &workload,
                          const std::string &designSpec)
{
    auto start = std::chrono::steady_clock::now();
    RunOutcome out;
    for (u32 attempt = 1; attempt <= cfg.retries + 1; ++attempt) {
        out.attempts = attempt;
        out.timedOut = false;
        if (interruptRequested()) {
            out.interrupted = true;
            out.error = detail::concat(
                "interrupted (SIGINT) before simulating '", resultKey,
                "'");
            break;
        }
        try {
            // Library-level h2_fatal sites (bad design spec, bad trace,
            // invalid config) throw FatalError inside this scope
            // instead of exiting the process.
            ScopedFatalCapture capture;
            if (faults)
                faults->inject(resultKey, attempt, cfg.runTimeoutMs);
            out.metrics = simulateOne(cfg, workload, designSpec);
            out.ok = true;
            out.error.clear();
            break;
        } catch (const SimInterruptedError &e) {
            out.interrupted = true;
            out.error = e.what();
            break;
        } catch (const SimTimeoutError &e) {
            out.timedOut = true;
            out.error = e.what();
        } catch (const std::exception &e) {
            out.error = e.what();
        }
    }
    out.wallMs = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    return out;
}

void
SweepRunner::seed(const std::string &resultKey, const RunOutcome &outcome)
{
    std::unique_lock lock(mu);
    if (done.count(resultKey) || inFlight.count(resultKey))
        return;
    done.emplace(resultKey, outcome);
    successCacheFresh = false;
}

void
SweepRunner::submit(const workloads::Workload &workload,
                    const std::string &designSpec)
{
    std::string k = key(workload, designSpec);
    {
        std::unique_lock lock(mu);
        if (done.count(k) || inFlight.count(k))
            return;
        inFlight.insert(k);
    }
    // The workload is copied into the task: benches routinely pass
    // temporaries and the simulation outlives the submit call.
    pool.submit([this, k, workload, designSpec] {
        RunOutcome out = executePoint(k, workload, designSpec);
        // Interrupted points are never journaled: a --resume run must
        // re-simulate them, not trust a half-cancelled record.
        if (journal && !out.interrupted)
            journal->append(k, out);
        {
            std::unique_lock lock(mu);
            inFlight.erase(k);
            done.insert_or_assign(k, std::move(out));
            successCacheFresh = false;
        }
        doneCv.notify_all();
    });
}

void
SweepRunner::submitSweep(const std::vector<workloads::Workload> &suite,
                         const std::vector<std::string> &specs,
                         bool withBaseline)
{
    for (const auto &w : suite) {
        if (withBaseline)
            submit(w, "baseline");
        for (const auto &spec : specs)
            submit(w, spec);
    }
}

const RunOutcome &
SweepRunner::blockOn(const std::string &resultKey)
{
    std::unique_lock lock(mu);
    doneCv.wait(lock, [&] { return done.count(resultKey) != 0; });
    // std::map references are stable; safe to return across the lock.
    return done.at(resultKey);
}

const RunOutcome &
SweepRunner::outcome(const workloads::Workload &workload,
                     const std::string &designSpec)
{
    submit(workload, designSpec);
    return blockOn(key(workload, designSpec));
}

const Metrics &
SweepRunner::run(const workloads::Workload &workload,
                 const std::string &designSpec)
{
    const RunOutcome &o = outcome(workload, designSpec);
    if (!o.ok)
        throw FatalError(detail::concat(key(workload, designSpec), ": ",
                                        o.error));
    return o.metrics;
}

double
SweepRunner::speedup(const workloads::Workload &workload,
                     const std::string &designSpec)
{
    submit(workload, "baseline");
    submit(workload, designSpec);
    const Metrics &base = run(workload, "baseline");
    const Metrics &design = run(workload, designSpec);
    h2_assert(design.timePs > 0, "zero runtime");
    return double(base.timePs) / double(design.timePs);
}

void
SweepRunner::waitAll()
{
    std::unique_lock lock(mu);
    doneCv.wait(lock, [this] { return inFlight.empty(); });
}

const std::map<std::string, RunOutcome> &
SweepRunner::outcomes()
{
    waitAll();
    return done;
}

const std::map<std::string, Metrics> &
SweepRunner::results()
{
    waitAll();
    std::unique_lock lock(mu);
    if (!successCacheFresh) {
        successCache.clear();
        for (const auto &[k, o] : done)
            if (o.ok)
                successCache.emplace(k, o.metrics);
        successCacheFresh = true;
    }
    return successCache;
}

u64
SweepRunner::totalAccesses()
{
    waitAll();
    std::unique_lock lock(mu);
    u64 total = 0;
    for (const auto &[k, o] : done)
        if (o.ok)
            total += o.metrics.memAccesses;
    return total;
}

} // namespace h2::sim
