/**
 * @file
 * Deterministic fault injection for the sweep engine, so every
 * recovery path (capture, retry, watchdog, journal, partial-failure
 * exit) is exercised by ordinary ctest cases instead of luck.
 *
 * Grammar (h2sim --inject, comma-separated clauses):
 *
 *   fail=<key>       the point throws on every attempt
 *   timeout=<key>    the point emulates a runaway simulation: it
 *                    blocks until the --run-timeout watchdog deadline,
 *                    then throws SimTimeoutError (rejected at run time
 *                    when no run timeout is configured — injection
 *                    never hangs a sweep forever)
 *   flaky=<key>:<n>  the point fails its first <n> attempts, then runs
 *                    normally (so it succeeds iff --retries >= <n>)
 *
 * <key> is the sweep-point key "<workload>|<design>" with the design
 * in canonical spec form — exactly the key used by the result map and
 * the journal, e.g. "lbm|dfc" or "mcf|hybrid2:cache=64". For flaky,
 * the count is the text after the final ':' (design specs may
 * themselves contain ':').
 */

#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>

#include "common/types.h"

namespace h2::sim {

struct FaultPlan
{
    std::set<std::string> failKeys;
    std::set<std::string> timeoutKeys;
    std::map<std::string, u32> flakyKeys; ///< key -> failures to inject

    bool
    empty() const
    {
        return failKeys.empty() && timeoutKeys.empty() &&
               flakyKeys.empty();
    }

    /** Parse the --inject grammar; nullopt + @p error on a bad plan. */
    static std::optional<FaultPlan> parse(std::string_view text,
                                          std::string *error);

    /**
     * Called by the sweep runner at the top of attempt @p attempt
     * (1-based) of point @p key. Throws the planned fault, or returns
     * normally when the point should simulate. @p runTimeoutMs is the
     * active watchdog budget (for timeout emulation).
     */
    void inject(const std::string &key, u32 attempt,
                u64 runTimeoutMs) const;
};

} // namespace h2::sim
