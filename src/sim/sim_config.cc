#include "sim/sim_config.h"

#include <sstream>

#include "common/log.h"
#include "common/units.h"
#include "dram/dram_params.h"

namespace h2::sim {

SystemConfig
table1Config(u64 nmBytes, u64 fmBytes)
{
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.hier.numCores = 8;
    cfg.hier.l1 = {"L1", 64 * KiB, 4, 64, cache::ReplPolicy::Lru};
    cfg.hier.l2 = {"L2", 256 * KiB, 8, 64, cache::ReplPolicy::Lru};
    cfg.hier.llc = {"LLC", 8 * MiB, 16, 64, cache::ReplPolicy::Lru};
    cfg.hier.l1LatencyCycles = 1;
    cfg.hier.l2LatencyCycles = 9;
    cfg.hier.llcLatencyCycles = 14;
    cfg.mem.nmBytes = nmBytes;
    cfg.mem.fmBytes = fmBytes;
    return cfg;
}

std::string
validateSystemConfig(const SystemConfig &cfg)
{
    if (cfg.numCores == 0)
        return "numCores must be at least 1";
    if (cfg.instrPerCore == 0)
        return "instrPerCore must be at least 1 (zero-instruction runs "
               "produce no metrics)";
    if (cfg.stepBatch == 0)
        return "stepBatch must be at least 1";
    if (cfg.simThreads == 0)
        return "simThreads must be at least 1";
    if (cfg.mem.nmBytes == 0)
        return "mem.nmBytes must be non-zero";
    if (cfg.mem.nmBytes >= cfg.mem.fmBytes)
        return detail::concat("NM capacity (", formatBytes(cfg.mem.nmBytes),
                              ") must be smaller than FM capacity (",
                              formatBytes(cfg.mem.fmBytes), ")");
    return {};
}

std::string
describeConfig(const SystemConfig &cfg)
{
    auto nm = dram::DramParams::hbm2(cfg.mem.nmBytes);
    auto fm = dram::DramParams::farMemory(cfg.mem.fmTech, cfg.mem.fmBytes);
    std::ostringstream os;
    os << "Cores       : " << cfg.numCores << " cores, out-of-order, "
       << cfg.core.issueWidth << "-way issue/commit, 3.2 GHz\n"
       << "L1 Cache    : private, " << formatBytes(cfg.hier.l1.sizeBytes)
       << ", " << cfg.hier.l1.ways << "-way, "
       << cfg.hier.l1LatencyCycles << " cycle access latency\n"
       << "L2 Cache    : private, " << formatBytes(cfg.hier.l2.sizeBytes)
       << ", " << cfg.hier.l2.ways << "-way, "
       << cfg.hier.l2LatencyCycles << " cycles access latency\n"
       << "L3 Cache    : shared " << formatBytes(cfg.hier.llc.sizeBytes)
       << ", " << cfg.hier.llc.ways << "-way, "
       << cfg.hier.llcLatencyCycles
       << " cycles access latency, non-inclusive non-exclusive\n"
       << "Near Memory : " << nm.name << " 2 GHz, "
       << formatBytes(nm.capacityBytes) << ", " << nm.channels
       << " 128-bit channels, " << nm.banksPerChannel
       << " banks, tCAS-tRCD-tRP: " << nm.tCas << "-" << nm.tRcd << "-"
       << nm.tRp << ", RD/WR+I/O energy: " << nm.rdPjPerBit
       << " pJ/bit, ACT/PRE energy: " << nm.actPreNj << " nJ\n"
       << "Far Memory  : " << fm.name << ", "
       << formatBytes(fm.capacityBytes) << ", " << fm.channels
       << " 64-bit channels, " << fm.banksPerChannel
       << " banks, tCAS-tRCD-tRP: " << fm.tCas << "-" << fm.tRcd << "-"
       << fm.tRp;
    if (fm.tWr > 0)
        os << ", tWR: " << fm.tWr;
    if (fm.rdPjPerBit == fm.wrPjPerBit)
        os << ", RD/WR+I/O energy: " << fm.rdPjPerBit << " pJ/bit";
    else
        os << ", RD+I/O energy: " << fm.rdPjPerBit
           << " pJ/bit, WR+I/O energy: " << fm.wrPjPerBit << " pJ/bit";
    os << ", ACT/PRE energy: " << fm.actPreNj << " nJ\n";
    return os.str();
}

} // namespace h2::sim
