/**
 * @file
 * Crash-safe sweep result journal (h2sim --journal / --resume).
 *
 * Every completed sweep point is appended as one self-contained JSONL
 * record and pushed to stable storage (fflush + fsync) before the
 * sweep moves on, so a crash or a kill -9 loses at most the points
 * still in flight. A later run with --resume loads the journal, seeds
 * the sweep with the recorded outcomes, and re-simulates only what is
 * missing — the resumed report is bit-identical to an uninterrupted
 * run because metrics doubles round-trip exactly (JsonWriter emits
 * shortest-round-trip form).
 *
 * Record shape (one line, compact):
 *   {"key":"lbm|dfc","ok":true,"attempts":1,"wall_ms":812,
 *    "timed_out":false,"metrics":{...Metrics::writeJson...}}
 *   {"key":"mcf|hybrid2","ok":false,"attempts":3,"wall_ms":42,
 *    "timed_out":false,"error":"..."}
 *
 * A torn final line (the record being written when the process died)
 * is expected and skipped with a warning on load; a malformed record
 * anywhere earlier is a corrupt journal and a hard error. Duplicate
 * keys are legal — append-only across resumed runs — and the last
 * record wins.
 */

#pragma once

#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "sim/runner.h"

namespace h2::sim {

class ResultJournal
{
  public:
    /** Open @p path for appending; fatal (capturable) on failure. */
    explicit ResultJournal(const std::string &path);
    ~ResultJournal();

    ResultJournal(const ResultJournal &) = delete;
    ResultJournal &operator=(const ResultJournal &) = delete;

    /** Append one record and fsync it. Thread-safe (sweep workers call
     *  this concurrently); fatal (capturable) on a write error. */
    void append(const std::string &key, const RunOutcome &outcome);

    const std::string &path() const { return journalPath; }

    /**
     * Load all records from @p path; missing file is an empty map (a
     * fresh --resume is a fresh run). Later duplicates win. Returns
     * nullopt with @p error on a corrupt journal; a torn final line is
     * tolerated with a warning.
     */
    static std::optional<std::map<std::string, RunOutcome>>
    load(const std::string &path, std::string *error);

    /** One outcome as its JSONL record text (no trailing newline). */
    static std::string formatRecord(const std::string &key,
                                    const RunOutcome &outcome);

    /** Parse one record line; nullopt + @p error when malformed. */
    static std::optional<std::pair<std::string, RunOutcome>>
    parseRecord(std::string_view line, std::string *error);

  private:
    std::string journalPath;
    std::FILE *file = nullptr;
    std::mutex mutex;
};

} // namespace h2::sim
