/**
 * @file
 * Parallel sweep engine: dispatches independent (workload, design)
 * simulations across a thread pool, with per-point fault tolerance.
 *
 * Every figure/table program runs a sweep of independent simulations;
 * each simulation is a pure function of (RunConfig, workload, design),
 * so they parallelize without changing any result. The runner memoizes
 * completed RunOutcomes in a mutex-guarded map keyed by
 * "workload|design", which also fixes the result ordering
 * deterministically no matter which worker finishes first. Blocking
 * getters (run, speedup, outcome) keep the serial Runner's call shape,
 * so benches submit their whole sweep up front and then render from
 * the completed result map.
 *
 * Fault tolerance: each point runs under a ScopedFatalCapture, so a
 * bad design spec, an unreadable trace, an invalid config, a thrown
 * exception, or a --run-timeout watchdog expiry fails only that point
 * — the sweep completes and the failure is recorded in the point's
 * RunOutcome (and the result journal, when one is attached). Failed
 * points are retried up to RunConfig::retries times. SIGINT marks the
 * remaining points interrupted; interrupted points are never journaled
 * (a --resume run re-simulates them) and never retried.
 */

#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "sim/runner.h"

namespace h2::sim {

struct FaultPlan;
class ResultJournal;

class SweepRunner
{
  public:
    /** @param jobs worker threads; 0 picks the hardware concurrency. */
    explicit SweepRunner(const RunConfig &config = {}, u32 jobs = 1);

    /** Waits for all in-flight simulations before tearing down. */
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /** Attach a journal: every completed (non-interrupted) outcome is
     *  appended durably. Must outlive the runner; set before submit. */
    void setJournal(ResultJournal *j) { journal = j; }

    /** Attach a fault-injection plan (h2sim --inject). Must outlive
     *  the runner; set before the first submit. */
    void setFaultPlan(const FaultPlan *plan) { faults = plan; }

    /**
     * Pre-populate one completed outcome (the --resume path: outcomes
     * loaded from a journal skip re-simulation). Ignored when the key
     * is already done or in flight. @p resultKey must be a key()
     * string — journals store exactly these.
     */
    void seed(const std::string &resultKey, const RunOutcome &outcome);

    /** Enqueue one simulation; duplicates of cached or in-flight work
     *  are ignored. Returns immediately. */
    void submit(const workloads::Workload &workload,
                const std::string &designSpec);

    /** Enqueue the full cross product of @p suite x @p specs, plus the
     *  FM-only baseline per workload when @p withBaseline (needed by
     *  any bench that renders speedups or normalized metrics). */
    void submitSweep(const std::vector<workloads::Workload> &suite,
                     const std::vector<std::string> &specs,
                     bool withBaseline = false);

    /** Structured result for (workload, design): submits it if never
     *  submitted, then blocks until the point completes (successfully
     *  or not). */
    const RunOutcome &outcome(const workloads::Workload &workload,
                              const std::string &designSpec);

    /** Metrics for (workload, design), blocking; throws FatalError
     *  when the point failed. Prefer outcome() to handle failures. */
    const Metrics &run(const workloads::Workload &workload,
                       const std::string &designSpec);

    /** Speedup of @p designSpec over the FM-only baseline; throws
     *  FatalError when either point failed. */
    double speedup(const workloads::Workload &workload,
                   const std::string &designSpec);

    /** Block until every submitted simulation has completed. */
    void waitAll();

    /** All completed outcomes keyed "workload|design" (after waitAll);
     *  map order is deterministic regardless of completion order. */
    const std::map<std::string, RunOutcome> &outcomes();

    /** Successful results only, keyed "workload|design" (after
     *  waitAll); the pre-fault-tolerance result map shape, still used
     *  by the benches and the determinism tests. */
    const std::map<std::string, Metrics> &results();

    const RunConfig &config() const { return cfg; }
    u32 jobs() const { return pool.size(); }

    /** Total core-side memory accesses across successful simulations. */
    u64 totalAccesses();

    /** The sweep-point key "<workload>|<canonical design spec>" — the
     *  result-map and journal key, and the --inject grammar's <key>.
     *  An unparsable spec keeps its raw text (the point then fails
     *  with the parse error instead of killing the submitting
     *  thread). */
    static std::string key(const workloads::Workload &workload,
                           const std::string &designSpec);

  private:
    const RunOutcome &blockOn(const std::string &resultKey);
    RunOutcome executePoint(const std::string &resultKey,
                            const workloads::Workload &workload,
                            const std::string &designSpec);

    RunConfig cfg;
    ThreadPool pool;
    ResultJournal *journal = nullptr;
    const FaultPlan *faults = nullptr;

    std::mutex mu;
    std::condition_variable doneCv;
    std::map<std::string, RunOutcome> done;
    std::set<std::string> inFlight;
    /** Successes-only view, rebuilt lazily by results(). */
    std::map<std::string, Metrics> successCache;
    bool successCacheFresh = false;
};

} // namespace h2::sim
