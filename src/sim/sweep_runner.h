/**
 * @file
 * Parallel sweep engine: dispatches independent (workload, design)
 * simulations across a thread pool.
 *
 * Every figure/table program runs a sweep of independent simulations;
 * each simulation is a pure function of (RunConfig, workload, design),
 * so they parallelize without changing any result. The runner memoizes
 * completed Metrics in a mutex-guarded map keyed by "workload|design",
 * which also fixes the result ordering deterministically no matter
 * which worker finishes first. Blocking getters (run, speedup) keep the
 * serial Runner's call shape, so benches submit their whole sweep up
 * front and then render from the completed result map.
 */

#ifndef H2_SIM_SWEEP_RUNNER_H
#define H2_SIM_SWEEP_RUNNER_H

#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "sim/runner.h"

namespace h2::sim {

class SweepRunner
{
  public:
    /** @param jobs worker threads; 0 picks the hardware concurrency. */
    explicit SweepRunner(const RunConfig &config = {}, u32 jobs = 1);

    /** Waits for all in-flight simulations before tearing down. */
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /** Enqueue one simulation; duplicates of cached or in-flight work
     *  are ignored. Returns immediately. */
    void submit(const workloads::Workload &workload,
                const std::string &designSpec);

    /** Enqueue the full cross product of @p suite x @p specs, plus the
     *  FM-only baseline per workload when @p withBaseline (needed by
     *  any bench that renders speedups or normalized metrics). */
    void submitSweep(const std::vector<workloads::Workload> &suite,
                     const std::vector<std::string> &specs,
                     bool withBaseline = false);

    /** Result for (workload, design): submits it if never submitted,
     *  then blocks until the simulation completes. */
    const Metrics &run(const workloads::Workload &workload,
                       const std::string &designSpec);

    /** Speedup of @p designSpec over the FM-only baseline. */
    double speedup(const workloads::Workload &workload,
                   const std::string &designSpec);

    /** Block until every submitted simulation has completed. */
    void waitAll();

    /** All completed results keyed "workload|design" (after waitAll);
     *  map order is deterministic regardless of completion order. */
    const std::map<std::string, Metrics> &results();

    const RunConfig &config() const { return cfg; }
    u32 jobs() const { return pool.size(); }

    /** Total core-side memory accesses across completed simulations. */
    u64 totalAccesses();

  private:
    static std::string key(const workloads::Workload &workload,
                           const std::string &designSpec);
    const Metrics &blockOn(const std::string &resultKey);

    RunConfig cfg;
    ThreadPool pool;

    std::mutex mu;
    std::condition_variable doneCv;
    std::map<std::string, Metrics> done;
    std::set<std::string> inFlight;
};

} // namespace h2::sim

#endif // H2_SIM_SWEEP_RUNNER_H
