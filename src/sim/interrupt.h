/**
 * @file
 * Cooperative interruption (Ctrl-C) for long sweeps.
 *
 * The SIGINT handler only sets an atomic flag; System's stepping loop
 * and the sweep runner poll it, abort their in-flight work with
 * SimInterruptedError, and h2sim then flushes the result journal and
 * the in-progress report before exiting 130 — completed points are
 * never dropped. A second Ctrl-C restores the default handler, so a
 * wedged process can still be killed interactively.
 */

#pragma once

namespace h2::sim {

/** Install the SIGINT handler described above (h2sim calls this before
 *  starting a sweep; library users who want Ctrl-C to kill the process
 *  simply don't). */
void installInterruptHandler();

/** True once SIGINT was received (or requestInterrupt was called). */
bool interruptRequested();

/** What the signal handler does; exposed so tests can drive the
 *  cooperative cancellation paths without real signals. */
void requestInterrupt();

/** Reset the flag (tests only — the flag is process-global). */
void clearInterruptForTest();

} // namespace h2::sim
