#include "baselines/dfc_cache.h"

#include <algorithm>

#include "common/rng.h"
#include "common/units.h"
#include "sim/design_registry.h"

namespace h2::baselines {

namespace {

DramCacheParams
dfcParams(u32 lineBytes)
{
    DramCacheParams p;
    p.lineBytes = lineBytes;
    p.ways = 16;
    p.tagLatencyPs = 0; // charged explicitly via the tag cache model
    return p;
}

} // namespace

DfcCache::DfcCache(const mem::MemSystemParams &sysParams, u32 lineBytes)
    : IdealCache(sysParams, dfcParams(lineBytes),
                 "DFC-" + std::to_string(lineBytes)),
      tagCache()
{
}

Tick
DfcCache::tagStoreAccess(AccessType type, Tick at)
{
    // The tag store occupies a reserved NM slice; spread accesses over
    // it so they contend realistically for NM channels and banks.
    u64 region = std::min<u64>(16ull * 1024 * 1024, sys.nmBytes / 4);
    Addr addr = (splitmix64(metaRotor++) * 64) % region;
    addr &= ~Addr(63);
    if (type == AccessType::Read)
        ++tagReads;
    else
        ++tagWrites;
    return nm->access(addr, 64, type, at);
}

Tick
DfcCache::tagLookup(Addr addr, Tick now)
{
    Addr lineAddr = addr & ~Addr(cp.lineBytes - 1);
    if (tagCache.lookup(lineAddr / cp.lineBytes))
        return now; // fused on-chip tag hit: no overhead
    return tagStoreAccess(AccessType::Read, now);
}

void
DfcCache::onFill(Addr, Tick now)
{
    // Fills update the NM-resident tag store off the critical path.
    tagStoreAccess(AccessType::Write, now);
}

void
DfcCache::resetStats()
{
    IdealCache::resetStats();
    tagCache.resetStats();
    tagReads = 0;
    tagWrites = 0;
}

void
DfcCache::collectStats(StatSet &out) const
{
    IdealCache::collectStats(out);
    out.add("dfc.tagCacheHits", double(tagCache.hits()));
    out.add("dfc.tagCacheMisses", double(tagCache.misses()));
    out.add("dfc.tagReads", double(tagReads));
    out.add("dfc.tagWrites", double(tagWrites));
}

H2_REGISTER_DESIGN(dfc, [] {
    sim::DesignInfo d;
    d.kind = sim::DesignKind::Dfc;
    d.name = "dfc";
    d.description =
        "Decoupled Fused Cache (Vasilakis et al., TACO'19): in-DRAM "
        "tags with an on-chip fused tag cache";
    d.figure12Order = 4;
    sim::ParamDef line;
    line.name = "line";
    line.type = sim::ParamDef::Type::U64;
    line.description = "cache-line (fetch) bytes";
    line.defU64 = 1024;
    line.minU64 = 64;
    line.maxU64 = 1 * MiB;
    line.powerOfTwo = true;
    line.positional = true;
    d.params = {line};
    d.factory = [](const sim::DesignSpec &spec,
                   const mem::MemSystemParams &mp, const mem::LlcView &)
        -> std::unique_ptr<mem::HybridMemory> {
        return std::make_unique<DfcCache>(
            mp, static_cast<u32>(spec.u64Param("line")));
    };
    return d;
}())

} // namespace h2::baselines
