#include "baselines/dfc_cache.h"

#include <algorithm>

#include "common/units.h"
#include "sim/design_registry.h"

namespace h2::baselines {

namespace {

DramCacheParams
dfcParams(u32 lineBytes)
{
    DramCacheParams p;
    p.lineBytes = lineBytes;
    p.ways = 16;
    p.tagLatencyPs = 0; // charged explicitly via the tag cache model
    return p;
}

} // namespace

DfcCache::DfcCache(const mem::MemSystemParams &sysParams, u32 lineBytes)
    : IdealCache(sysParams, dfcParams(lineBytes),
                 "DFC-" + std::to_string(lineBytes)),
      tagCache()
{
}

void
DfcCache::tagStoreAccess(AccessType type, mem::Timeline &tl)
{
    // The tag store occupies a reserved NM slice; reads gate the data
    // access, writes are posted.
    u64 region = baselineMetaRegionBytes();
    if (type == AccessType::Read)
        ++tagReads;
    else
        ++tagWrites;
    nmMetaRegionAccess(type, region, metaRotor, tl);
}

void
DfcCache::tagLookup(Addr addr, mem::Timeline &tl)
{
    Addr lineAddr = addr & ~Addr(cp.lineBytes - 1);
    if (tagCache.lookup(lineAddr / cp.lineBytes))
        return; // fused on-chip tag hit: no overhead
    tagStoreAccess(AccessType::Read, tl);
}

void
DfcCache::onFill(Addr, mem::Timeline &tl)
{
    // Fills update the NM-resident tag store off the critical path.
    tagStoreAccess(AccessType::Write, tl);
}

void
DfcCache::resetStats()
{
    IdealCache::resetStats();
    tagCache.resetStats();
    tagReads = 0;
    tagWrites = 0;
}

void
DfcCache::collectStats(StatSet &out) const
{
    IdealCache::collectStats(out);
    out.add("dfc.tagCacheHits", double(tagCache.hits()));
    out.add("dfc.tagCacheMisses", double(tagCache.misses()));
    out.add("dfc.tagReads", double(tagReads));
    out.add("dfc.tagWrites", double(tagWrites));
}

H2_REGISTER_DESIGN(dfc, [] {
    sim::DesignInfo d;
    d.kind = sim::DesignKind::Dfc;
    d.name = "dfc";
    d.description =
        "Decoupled Fused Cache (Vasilakis et al., TACO'19): in-DRAM "
        "tags with an on-chip fused tag cache";
    d.figure12Order = 4;
    sim::ParamDef line;
    line.name = "line";
    line.type = sim::ParamDef::Type::U64;
    line.description = "cache-line (fetch) bytes";
    line.defU64 = 1024;
    line.minU64 = 64;
    line.maxU64 = 1 * MiB;
    line.powerOfTwo = true;
    line.positional = true;
    d.params = {line};
    d.factory = [](const sim::DesignSpec &spec,
                   const mem::MemSystemParams &mp, const mem::LlcView &)
        -> std::unique_ptr<mem::HybridMemory> {
        return std::make_unique<DfcCache>(
            mp, static_cast<u32>(spec.u64Param("line")));
    };
    return d;
}())

} // namespace h2::baselines
