/**
 * @file
 * Tagless DRAM cache (Lee et al., ISCA'15) baseline.
 *
 * The Tagless design tracks DRAM-cache contents through the page tables
 * and TLBs, so it pays no tag-lookup cost, but it caches whole 4 KB
 * pages. Per the paper's methodology ("we optimistically do not model
 * any operating system overheads") it behaves as an overhead-free page-
 * granular cache - which is exactly the IDEAL cache at a 4 KB line.
 * Its weakness, reproduced here, is page-granularity over-fetch on
 * workloads with poor spatial locality.
 */

#pragma once

#include "baselines/ideal_cache.h"

namespace h2::baselines {

class TaglessCache : public IdealCache
{
  public:
    explicit TaglessCache(const mem::MemSystemParams &sysParams);
};

} // namespace h2::baselines
