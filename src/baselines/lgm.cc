#include "baselines/lgm.h"

#include <algorithm>
#include <vector>

#include "common/log.h"
#include "common/units.h"
#include "sim/design_registry.h"

namespace h2::baselines {

Lgm::Lgm(const mem::MemSystemParams &sysParams, const mem::LlcView &llcView,
         const LgmParams &params)
    : mem::HybridMemory(sysParams,
                        dram::DramParams::hbm2(sysParams.nmBytes),
                        dram::DramParams::farMemory(sysParams.fmTech,
                                                    sysParams.fmBytes)),
      cfg(params),
      nmSegs(sysParams.nmBytes / cfg.segmentBytes),
      fmSegs(sysParams.fmBytes / cfg.segmentBytes),
      remap(nmSegs + fmSegs, nmSegs, 0, fmSegs),
      remapCache(),
      llc(llcView),
      nextInterval(cfg.intervalPs)
{
}

void
Lgm::metaAccess(AccessType type, mem::Timeline &tl)
{
    // Remap-table reads gate the data access; updates are posted.
    u64 region = baselineMetaRegionBytes();
    if (type == AccessType::Read)
        ++nMetaReads;
    else
        ++nMetaWrites;
    nmMetaRegionAccess(type, region, metaRotor, tl);
}

void
Lgm::migrateSegment(u64 hotSeg, mem::Timeline &tl)
{
    core::Loc hotHome = remap.lookup(hotSeg);
    if (hotHome.inNm)
        return; // migrated by an earlier candidate this interval
    u64 segB = cfg.segmentBytes;

    // FIFO victim over the NM locations.
    u64 nmLoc = fifoPtr % nmSegs;
    fifoPtr += 1;
    auto resident = remap.invLookup(nmLoc);
    h2_assert(resident, "LGM NM location with no resident");
    metaAccess(AccessType::Read, tl); // inverted remap table read

    // Bandwidth economizing: skip lines of both segments that are
    // currently in the LLC (they will be written back to the new homes).
    u32 lines = segB / mem::llcLineBytes;
    u32 hotResident = llc.residentLines(hotSeg * segB, segB);
    u32 victimResident = llc.residentLines(*resident * segB, segB);
    nLlcLinesSkipped += hotResident + victimResident;
    u32 hotBytes = (lines - hotResident) * mem::llcLineBytes;
    u32 victimBytes = (lines - victimResident) * mem::llcLineBytes;

    // Both bulk-copy reads issue together and serialize; the writes to
    // the new homes are posted once the data is buffered.
    Tick base = tl.now();
    Tick copied = base;
    if (victimBytes > 0)
        copied = std::max(copied, nmc().access(nmLoc * u64(segB),
                                             victimBytes,
                                             AccessType::Read, base));
    if (hotBytes > 0)
        copied = std::max(copied, fmc().access(hotHome.idx * u64(segB),
                                             hotBytes, AccessType::Read,
                                             base));
    tl.serialize(copied);
    if (victimBytes > 0)
        postWrite(*fm, hotHome.idx * u64(segB), victimBytes, tl.now());
    if (hotBytes > 0)
        postWrite(*nm, nmLoc * u64(segB), hotBytes, tl.now());

    remap.update(hotSeg, core::Loc{true, nmLoc});
    remap.update(*resident, core::Loc{false, hotHome.idx});
    remap.invUpdate(nmLoc, hotSeg);
    metaAccess(AccessType::Write, tl);
    metaAccess(AccessType::Write, tl);
    remapCache.invalidate(hotSeg);
    remapCache.invalidate(*resident);
    ++nMigrations;
}

void
Lgm::endInterval(mem::Timeline &tl)
{
    std::vector<std::pair<u32, u64>> hot;
    for (const auto &[seg, count] : intervalCounts)
        if (count >= cfg.watermark)
            hot.emplace_back(count, seg);
    std::sort(hot.rbegin(), hot.rend());
    if (hot.size() > cfg.maxMigrationsPerInterval)
        hot.resize(cfg.maxMigrationsPerInterval);
    for (const auto &[count, seg] : hot)
        migrateSegment(seg, tl);
    intervalCounts.clear();
    ++nIntervals;
}

mem::MemResult
Lgm::access(Addr addr, AccessType type, Tick now)
{
    h2_assert(addr + mem::llcLineBytes <= flatCapacity(),
              "access beyond flat capacity");
    mem::Timeline tl(now);
    tl.advance(sys.controllerLatencyPs);
    // Watermark-triggered bulk copies run in the controller when the
    // first request past the interval boundary arrives; that request
    // waits for the copies' serialized reads.
    while (now >= nextInterval) {
        endInterval(tl);
        nextInterval += cfg.intervalPs;
    }

    u64 seg = addr / cfg.segmentBytes;
    u64 offset = addr % cfg.segmentBytes;
    if (!remapCache.lookup(seg))
        metaAccess(AccessType::Read, tl);

    core::Loc loc = remap.lookup(seg);
    if (loc.inNm) {
        tl.serialize(nmc().access(loc.idx * u64(cfg.segmentBytes) + offset,
                                mem::llcLineBytes, type, tl.now()));
    } else {
        tl.serialize(fmc().access(loc.idx * u64(cfg.segmentBytes) + offset,
                                mem::llcLineBytes, type, tl.now()));
        ++intervalCounts[seg];
    }
    flushPostedWrites(tl);
    recordService(type, loc.inNm, tl);
    return {tl, loc.inNm};
}

void
Lgm::resetStats()
{
    mem::HybridMemory::resetStats();
    remapCache.resetStats();
    nMigrations = 0;
    nIntervals = 0;
    nLlcLinesSkipped = 0;
    nMetaReads = 0;
    nMetaWrites = 0;
}

void
Lgm::collectStats(StatSet &out) const
{
    mem::HybridMemory::collectStats(out);
    out.add("lgm.migrations", double(nMigrations));
    out.add("lgm.intervals", double(nIntervals));
    out.add("lgm.llcLinesSkipped", double(nLlcLinesSkipped));
    out.add("lgm.remapCacheHits", double(remapCache.hits()));
    out.add("lgm.remapCacheMisses", double(remapCache.misses()));
    out.add("lgm.metaReads", double(nMetaReads));
    out.add("lgm.metaWrites", double(nMetaWrites));
}

H2_REGISTER_DESIGN(lgm, [] {
    sim::DesignInfo d;
    d.kind = sim::DesignKind::Lgm;
    d.name = "lgm";
    d.description =
        "LLC-Guided Migration (Vasilakis et al., IPDPS'19): flat space "
        "with watermark-triggered segment swaps";
    d.figure12Order = 2;
    sim::ParamDef watermark;
    watermark.name = "watermark";
    watermark.type = sim::ParamDef::Type::U64;
    watermark.description =
        "per-interval access count that makes a segment migrate";
    watermark.defU64 = LgmParams{}.watermark;
    watermark.minU64 = 1;
    watermark.maxU64 = ~u32(0);
    d.params = {watermark};
    d.factory = [](const sim::DesignSpec &spec,
                   const mem::MemSystemParams &mp, const mem::LlcView &llc)
        -> std::unique_ptr<mem::HybridMemory> {
        LgmParams p;
        p.watermark = static_cast<u32>(spec.u64Param("watermark"));
        return std::make_unique<Lgm>(mp, llc, p);
    };
    return d;
}())

} // namespace h2::baselines
