/**
 * @file
 * MemPod (Prodromou et al., HPCA'17) baseline.
 *
 * A clustered flat-address-space migration scheme: NM and FM are split
 * into pods; within each pod, an MEA (Majority Element Algorithm) sketch
 * identifies hot 2 KB segments over a fixed interval, and at interval
 * boundaries the tracked segments are swapped into the pod's NM slice.
 * Remapping is all-to-all within a pod, with the in-memory remap table
 * fronted by an on-chip remap cache sized like Hybrid2's XTA.
 *
 * Paper configuration (section 5): 64 MEA counters, 50 us intervals.
 */

#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baselines/mea.h"
#include "common/units.h"
#include "baselines/remap_cache.h"
#include "core/remap_table.h"
#include "mem/hybrid_memory.h"

namespace h2::baselines {

struct MemPodParams
{
    u32 segmentBytes = 2048;
    u32 pods = 8;
    u32 meaCounters = 64;
    Tick intervalPs = 50 * psPerUs;
    /** Minimum MEA count for a segment to be worth swapping in; filters
     *  the one-touch noise that streaming leaves in the sketch. */
    u64 minCountToMigrate = 4;
    /** Swap-bandwidth cap per pod per interval. */
    u32 maxMigrationsPerPodInterval = 32;
    /** Require a segment to be MEA-tracked in two consecutive intervals
     *  before it migrates; one-shot spatial bursts never repay a swap. */
    bool requirePersistence = true;
};

class MemPod : public mem::HybridMemory
{
  public:
    MemPod(const mem::MemSystemParams &sysParams,
           const MemPodParams &params = {});

    mem::MemResult access(Addr addr, AccessType type, Tick now) override;
    std::string name() const override { return "MPOD"; }
    u64 flatCapacity() const override { return sys.nmBytes + sys.fmBytes; }
    void collectStats(StatSet &out) const override;
    void resetStats() override;
    void checkInvariants() const override;

    u64 migrations() const { return nMigrations; }
    core::Loc locate(u64 flatSeg) const { return remap.lookup(flatSeg); }

  private:
    void endInterval(mem::Timeline &tl);
    void swapSegments(u64 hotSeg, u64 nmLoc, mem::Timeline &tl);
    void metaAccess(AccessType type, mem::Timeline &tl);

    MemPodParams cfg;
    u64 nmSegs;
    u64 fmSegs;
    core::RemapTable remap; ///< reused with a zero cache region
    RemapCache remapCache;
    std::vector<Mea> podMea;
    std::vector<u64> podFifo; ///< round-robin NM victim pointer per pod
    std::unordered_set<u64> prevTracked; ///< MEA survivors, last interval
    Tick nextInterval;
    u64 metaRotor = 0;

    u64 nMigrations = 0;
    u64 nIntervals = 0;
    u64 nMetaReads = 0;
    u64 nMetaWrites = 0;
};

} // namespace h2::baselines
