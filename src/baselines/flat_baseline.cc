#include "baselines/flat_baseline.h"

#include "common/log.h"

namespace h2::baselines {

FlatBaseline::FlatBaseline(const mem::MemSystemParams &sysParams)
    : mem::HybridMemory(sysParams,
                        dram::DramParams::ddr4_3200(sysParams.fmBytes))
{
}

mem::MemResult
FlatBaseline::access(Addr addr, AccessType type, Tick now)
{
    h2_assert(addr + mem::llcLineBytes <= flatCapacity(),
              "access beyond FM capacity");
    Tick done = fm->access(addr, mem::llcLineBytes, type,
                           now + sys.controllerLatencyPs);
    recordService(false);
    return {done, false};
}

} // namespace h2::baselines
