#include "baselines/flat_baseline.h"

#include "common/log.h"
#include "sim/design_registry.h"

namespace h2::baselines {

FlatBaseline::FlatBaseline(const mem::MemSystemParams &sysParams)
    : mem::HybridMemory(sysParams,
                        dram::DramParams::farMemory(sysParams.fmTech,
                                                    sysParams.fmBytes))
{
}

mem::MemResult
FlatBaseline::access(Addr addr, AccessType type, Tick now)
{
    h2_assert(addr + mem::llcLineBytes <= flatCapacity(),
              "access beyond FM capacity");
    mem::Timeline tl(now);
    tl.advance(sys.controllerLatencyPs);
    tl.serialize(fmc().access(addr, mem::llcLineBytes, type, tl.now()));
    recordService(type, false, tl);
    return {tl, false};
}

H2_REGISTER_DESIGN(baseline, [] {
    sim::DesignInfo d;
    d.kind = sim::DesignKind::Baseline;
    d.name = "baseline";
    d.description =
        "FM-only system (no 3D-stacked DRAM); the normalization baseline";
    d.factory = [](const sim::DesignSpec &, const mem::MemSystemParams &mp,
                   const mem::LlcView &)
        -> std::unique_ptr<mem::HybridMemory> {
        return std::make_unique<FlatBaseline>(mp);
    };
    return d;
}())

} // namespace h2::baselines
