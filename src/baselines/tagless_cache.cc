#include "baselines/tagless_cache.h"

#include "sim/design_registry.h"

namespace h2::baselines {

namespace {

DramCacheParams
taglessParams()
{
    DramCacheParams p;
    p.lineBytes = 4096; // OS page granularity
    p.ways = 16;
    p.tagLatencyPs = 0; // TLB-resident metadata: no lookup overhead
    return p;
}

} // namespace

TaglessCache::TaglessCache(const mem::MemSystemParams &sysParams)
    : IdealCache(sysParams, taglessParams(), "TAGLESS")
{
}

H2_REGISTER_DESIGN(tagless, [] {
    sim::DesignInfo d;
    d.kind = sim::DesignKind::Tagless;
    d.name = "tagless";
    d.description =
        "Tagless DRAM cache (Lee et al., ISCA'15): page-granular, "
        "TLB-tracked, no tag cost";
    d.figure12Order = 3;
    d.factory = [](const sim::DesignSpec &, const mem::MemSystemParams &mp,
                   const mem::LlcView &)
        -> std::unique_ptr<mem::HybridMemory> {
        return std::make_unique<TaglessCache>(mp);
    };
    return d;
}())

} // namespace h2::baselines
