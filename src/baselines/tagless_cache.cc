#include "baselines/tagless_cache.h"

namespace h2::baselines {

namespace {

DramCacheParams
taglessParams()
{
    DramCacheParams p;
    p.lineBytes = 4096; // OS page granularity
    p.ways = 16;
    p.tagLatencyPs = 0; // TLB-resident metadata: no lookup overhead
    return p;
}

} // namespace

TaglessCache::TaglessCache(const mem::MemSystemParams &sysParams)
    : IdealCache(sysParams, taglessParams(), "TAGLESS")
{
}

} // namespace h2::baselines
