#include "baselines/chameleon.h"

#include <algorithm>

#include "common/log.h"
#include "common/units.h"
#include "sim/design_registry.h"

namespace h2::baselines {

namespace {

ChameleonParams
resolveParams(const mem::MemSystemParams &sys, ChameleonParams cfg)
{
    if (cfg.cacheSliceBytes == 0)
        cfg.cacheSliceBytes = sys.nmBytes / 16;
    return cfg;
}

cache::CacheParams
cacheModeParams(const ChameleonParams &cfg)
{
    cache::CacheParams p;
    p.name = "chameleonCacheMode";
    p.sizeBytes = cfg.cacheSliceBytes;
    p.ways = 16;
    p.lineBytes = cfg.segmentBytes;
    p.repl = cache::ReplPolicy::Lru;
    return p;
}

cache::CacheParams
sketchParams()
{
    cache::CacheParams p;
    p.name = "chameleonOnceSketch";
    p.sizeBytes = 64 * 1024 * 8; // 64K segment entries of 8 B each
    p.ways = 8;
    p.lineBytes = 8;
    p.repl = cache::ReplPolicy::Lru;
    return p;
}

} // namespace

Chameleon::Chameleon(const mem::MemSystemParams &sysParams,
                     const ChameleonParams &params)
    : mem::HybridMemory(sysParams,
                        dram::DramParams::hbm2(sysParams.nmBytes),
                        dram::DramParams::farMemory(sysParams.fmTech,
                                                    sysParams.fmBytes)),
      cfg(resolveParams(sysParams, params)),
      nmGroupSegs((sysParams.nmBytes - cfg.cacheSliceBytes)
                  / cfg.segmentBytes),
      fmSegs(sysParams.fmBytes / cfg.segmentBytes),
      remapCache(),
      cacheMode(cacheModeParams(cfg)),
      onceSketch(sketchParams())
{
    h2_assert(cfg.cacheSliceBytes < sysParams.nmBytes,
              "cache slice must leave room for group mode");
}

u64
Chameleon::flatCapacity() const
{
    return (nmGroupSegs + fmSegs) * u64(cfg.segmentBytes);
}

u64
Chameleon::groupOf(u64 seg) const
{
    if (isNative(seg))
        return seg;
    return (seg - nmGroupSegs) % nmGroupSegs;
}

u64
Chameleon::fmHomeOf(u64 seg) const
{
    h2_assert(!isNative(seg), "native segments have no FM home");
    return seg - nmGroupSegs;
}

Chameleon::GroupState &
Chameleon::state(u64 group)
{
    auto it = groups.find(group);
    if (it == groups.end())
        it = groups.emplace(group, GroupState{nativeOf(group)}).first;
    return it->second;
}

bool
Chameleon::touchedBefore(u64 seg)
{
    if (onceSketch.access(seg * 8, AccessType::Read))
        return true;
    onceSketch.insert(seg * 8, false);
    return false;
}

bool
Chameleon::inNmSlot(u64 seg) const
{
    auto it = groups.find(groupOf(seg));
    if (it == groups.end())
        return isNative(seg);
    return it->second.nmMember == seg;
}

void
Chameleon::metaAccess(AccessType type, mem::Timeline &tl)
{
    // Remap-table reads gate the data access; updates are posted.
    u64 region = baselineMetaRegionBytes();
    if (type == AccessType::Read)
        ++nMetaReads;
    else
        ++nMetaWrites;
    nmMetaRegionAccess(type, region, metaRotor, tl);
}

void
Chameleon::promote(u64 group, u64 seg, mem::Timeline &tl)
{
    GroupState &st = state(group);
    h2_assert(st.nmMember != seg, "promoting the resident segment");
    u64 segB = cfg.segmentBytes;
    Addr nmSlot = group * segB;
    u64 old = st.nmMember;

    // The swap blocks further accesses to the group, so the segment
    // reads serialize onto the triggering request (they issue together
    // and the swap resumes once the slowest lands); the destination
    // writes are posted from the swap buffer.
    Tick base = tl.now();
    if (seg == nativeOf(group)) {
        // The displaced native wins back its slot: plain swap with the
        // member currently holding it (the native lives in that
        // member's FM home).
        Tick rdNm = nmc().access(nmSlot, segB, AccessType::Read, base);
        Tick rdFm = fmc().access(fmHomeOf(old) * segB, segB,
                               AccessType::Read, base);
        tl.serialize(std::max(rdNm, rdFm));
        postWrite(*nm, nmSlot, segB, tl.now());
        postWrite(*fm, fmHomeOf(old) * segB, segB, tl.now());
    } else if (old == nativeOf(group)) {
        // Plain pairwise swap: native <-> seg.
        Tick rdNm = nmc().access(nmSlot, segB, AccessType::Read, base);
        Tick rdFm = fmc().access(fmHomeOf(seg) * segB, segB,
                               AccessType::Read, base);
        tl.serialize(std::max(rdNm, rdFm));
        postWrite(*nm, nmSlot, segB, tl.now());
        postWrite(*fm, fmHomeOf(seg) * segB, segB, tl.now());
    } else {
        // Three-way exchange: old returns home, native moves to seg's
        // home, seg enters the NM slot.
        Tick rdNm = nmc().access(nmSlot, segB, AccessType::Read, base);
        Tick rdOld = fmc().access(fmHomeOf(old) * segB, segB,
                                AccessType::Read, base);
        Tick rdSeg = fmc().access(fmHomeOf(seg) * segB, segB,
                                AccessType::Read, base);
        tl.serialize(std::max({rdNm, rdOld, rdSeg}));
        postWrite(*nm, nmSlot, segB, tl.now());
        postWrite(*fm, fmHomeOf(old) * segB, segB, tl.now());
        postWrite(*fm, fmHomeOf(seg) * segB, segB, tl.now());
    }
    st.nmMember = seg;
    st.challenger = ~u64(0);
    st.counter = 0;
    metaAccess(AccessType::Write, tl);
    remapCache.invalidate(group);
    // The promoted segment's data left the cache-mode slice's domain.
    cacheMode.invalidate(seg * segB);
    ++nSwaps;
}

mem::MemResult
Chameleon::access(Addr addr, AccessType type, Tick now)
{
    h2_assert(addr + mem::llcLineBytes <= flatCapacity(),
              "access beyond flat capacity");
    u64 seg = addr / cfg.segmentBytes;
    u64 offset = addr % cfg.segmentBytes;
    u64 group = groupOf(seg);
    u64 segB = cfg.segmentBytes;

    mem::Timeline tl(now);
    tl.advance(sys.controllerLatencyPs);
    if (!remapCache.lookup(group))
        metaAccess(AccessType::Read, tl);

    GroupState &st = state(group);
    bool fromNm;
    if (st.nmMember == seg) {
        // Served from the group's NM slot.
        if (st.counter > 0)
            --st.counter;
        tl.serialize(nmc().access(group * segB + offset, mem::llcLineBytes,
                                type, tl.now()));
        fromNm = true;
    } else {
        // FM-resident (either its own home, or the native segment
        // displaced into the promoted member's home).
        u64 fmLoc = isNative(seg) ? fmHomeOf(st.nmMember) : fmHomeOf(seg);

        // Cache-mode slice: segment-granular cache in front of FM.
        Addr cacheKey = seg * segB;
        if (cfg.cacheMode && cacheMode.access(cacheKey, type)) {
            ++nCacheModeHits;
            Addr nmBase = sys.nmBytes - cfg.cacheSliceBytes;
            tl.serialize(nmc().access(nmBase
                                    + cacheKey % cfg.cacheSliceBytes
                                    + offset, mem::llcLineBytes, type,
                                    tl.now()));
            fromNm = true;
        } else {
            tl.serialize(fmc().access(fmLoc * segB + offset,
                                    mem::llcLineBytes, type, tl.now()));
            fromNm = false;
            if (cfg.cacheMode && touchedBefore(seg)) {
                // Fill the whole segment into the cache slice on
                // reuse; first touches only register in the sketch.
                // The demand word already returned, so the fill (and
                // any victim writeback it forces) trails off the
                // critical path.
                ++nCacheModeFills;
                auto victim = cacheMode.insert(cacheKey, false);
                Addr nmBase = sys.nmBytes - cfg.cacheSliceBytes;
                if (victim && victim->dirty) {
                    u64 vSeg = victim->addr / segB;
                    u64 vLoc = isNative(vSeg)
                        ? fmHomeOf(state(groupOf(vSeg)).nmMember)
                        : fmHomeOf(vSeg);
                    Tick vRd = nmc().access(
                        nmBase + victim->addr % cfg.cacheSliceBytes,
                        segB, AccessType::Read, tl.now());
                    postWrite(*fm, vLoc * segB, segB, vRd);
                }
                Tick fillRd = fmc().access(fmLoc * segB, segB,
                                         AccessType::Read, tl.now());
                postWrite(*nm, nmBase + cacheKey % cfg.cacheSliceBytes,
                          segB, fillRd);
            }

            // Competing counter (MJRTY-style), advanced only by
            // requests the cache mode could not absorb: persistent
            // reuse beyond the cache slice earns a swap, transients
            // do not.
            if (st.challenger == seg) {
                ++st.counter;
            } else if (st.counter == 0) {
                st.challenger = seg;
                st.counter = 1;
            } else {
                --st.counter;
            }
            if (st.counter >= cfg.competingK)
                promote(group, seg, tl);
        }
    }
    flushPostedWrites(tl);
    recordService(type, fromNm, tl);
    return {tl, fromNm};
}

void
Chameleon::resetStats()
{
    mem::HybridMemory::resetStats();
    remapCache.resetStats();
    nSwaps = 0;
    nCacheModeHits = 0;
    nCacheModeFills = 0;
    nMetaReads = 0;
    nMetaWrites = 0;
}

void
Chameleon::collectStats(StatSet &out) const
{
    mem::HybridMemory::collectStats(out);
    out.add("chameleon.swaps", double(nSwaps));
    out.add("chameleon.cacheModeHits", double(nCacheModeHits));
    out.add("chameleon.cacheModeFills", double(nCacheModeFills));
    out.add("chameleon.remapCacheHits", double(remapCache.hits()));
    out.add("chameleon.remapCacheMisses", double(remapCache.misses()));
    out.add("chameleon.metaReads", double(nMetaReads));
    out.add("chameleon.metaWrites", double(nMetaWrites));
}

H2_REGISTER_DESIGN(chameleon, [] {
    sim::DesignInfo d;
    d.kind = sim::DesignKind::Chameleon;
    d.name = "chameleon";
    d.description =
        "Chameleon (Kotra et al., MICRO'18): congruence-group swaps "
        "plus a Hybrid2-sized cache-mode slice";
    d.figure12Order = 1;
    d.factory = [](const sim::DesignSpec &, const mem::MemSystemParams &mp,
                   const mem::LlcView &)
        -> std::unique_ptr<mem::HybridMemory> {
        return std::make_unique<Chameleon>(mp);
    };
    return d;
}())

} // namespace h2::baselines
