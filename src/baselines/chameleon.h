/**
 * @file
 * Chameleon (Kotra et al., MICRO'18) baseline.
 *
 * Chameleon organizes most of the NM with PoM/CAMEO-style congruence
 * groups: each group pairs one NM segment slot with the FM segments that
 * map to it, and a competing counter promotes a persistent FM challenger
 * into the NM slot once it accumulates K wins (paper configuration:
 * K = 14). Per the paper's methodology, Chameleon is additionally
 * granted a DRAM-cache slice of NM equal to Hybrid2's (cache mode).
 *
 * Modeling notes (documented substitutions):
 *  - Group relocation state is pairwise (native segment swapped with at
 *    most one FM member); promoting a different member routes through a
 *    direct three-segment exchange, slightly over-charging traffic
 *    relative to CAMEO's full permutation table.
 *  - Cache-mode capacity is managed as a 16-way, segment-granular cache
 *    that fills on FM access (no OS free-page hints are available in a
 *    trace-driven setting; section 3.8 of the paper discusses the same
 *    limitation for Hybrid2).
 */

#pragma once

#include <unordered_map>

#include "baselines/remap_cache.h"
#include "cache/set_assoc_cache.h"
#include "mem/hybrid_memory.h"

namespace h2::baselines {

struct ChameleonParams
{
    u32 segmentBytes = 2048;
    u32 competingK = 14;      ///< swaps after K net challenger wins
    /** NM slice granted to cache mode; 0 = auto (NM/16, which matches
     *  the paper's 64 MB at 1 GB NM, i.e. Hybrid2's cache size). */
    u64 cacheSliceBytes = 0;
    /** Enable the cache-mode slice. When enabled, competing counters
     *  advance only on requests the cache mode could not absorb, so
     *  transient (streaming) segments do not trigger swaps. Disabling
     *  it yields a pure PoM-style group-swap design. */
    bool cacheMode = true;
};

class Chameleon : public mem::HybridMemory
{
  public:
    Chameleon(const mem::MemSystemParams &sysParams,
              const ChameleonParams &params = {});

    mem::MemResult access(Addr addr, AccessType type, Tick now) override;
    std::string name() const override { return "CHA"; }
    u64 flatCapacity() const override;
    void collectStats(StatSet &out) const override;
    void resetStats() override;

    u64 swaps() const { return nSwaps; }

    /** Where segment @p seg currently lives: NM slot (true) or FM. */
    bool inNmSlot(u64 seg) const;

  private:
    struct GroupState
    {
        u64 nmMember;   ///< flat segment occupying the NM slot
        u64 challenger = ~u64(0);
        u32 counter = 0;
    };

    /** True iff @p seg was seen before (recency sketch); inserts it. */
    bool touchedBefore(u64 seg);

    u64 groupOf(u64 seg) const;
    u64 nativeOf(u64 group) const { return group; }
    bool isNative(u64 seg) const { return seg < nmGroupSegs; }
    u64 fmHomeOf(u64 seg) const;
    GroupState &state(u64 group);
    void promote(u64 group, u64 seg, mem::Timeline &tl);
    void metaAccess(AccessType type, mem::Timeline &tl);

    ChameleonParams cfg;
    u64 nmGroupSegs; ///< NM segment slots participating in groups
    u64 fmSegs;
    std::unordered_map<u64, GroupState> groups;
    RemapCache remapCache;
    cache::SetAssocCache cacheMode;
    /** Tracks once-touched segments so cache-mode fills happen on
     *  reuse, not on first touch (filters streaming pollution). */
    cache::SetAssocCache onceSketch;
    u64 metaRotor = 0;

    u64 nSwaps = 0;
    u64 nCacheModeHits = 0;
    u64 nCacheModeFills = 0;
    u64 nMetaReads = 0;
    u64 nMetaWrites = 0;
};

} // namespace h2::baselines
