/**
 * @file
 * LLC-Guided Migration (LGM; Vasilakis et al., IPDPS'19) baseline.
 *
 * A flat NM+FM address space with all-to-all 2 KB segment migration.
 * Per-interval access counters (fed by the traffic the LLC lets
 * through) select hot FM segments; segments crossing the watermark are
 * swapped into NM at interval boundaries against a FIFO-chosen victim.
 * LGM economizes migration bandwidth by not copying the cache lines of
 * a migrating segment that are currently resident in the LLC - those
 * are written back to the segment's new home on LLC eviction.
 */

#pragma once

#include <unordered_map>

#include "baselines/remap_cache.h"
#include "common/units.h"
#include "core/remap_table.h"
#include "mem/hybrid_memory.h"

namespace h2::baselines {

struct LgmParams
{
    u32 segmentBytes = 2048;
    /** Accesses within one interval that make a segment migrate. The
     *  paper's DSE found 256 at 1 B-instruction traces; the default here
     *  is rescaled for the shorter synthetic traces. */
    u32 watermark = 16;
    Tick intervalPs = 50 * psPerUs;
    u32 maxMigrationsPerInterval = 64;
};

class Lgm : public mem::HybridMemory
{
  public:
    Lgm(const mem::MemSystemParams &sysParams, const mem::LlcView &llc,
        const LgmParams &params = {});

    mem::MemResult access(Addr addr, AccessType type, Tick now) override;
    std::string name() const override { return "LGM"; }
    u64 flatCapacity() const override { return sys.nmBytes + sys.fmBytes; }
    void collectStats(StatSet &out) const override;
    void resetStats() override;

    u64 migrations() const { return nMigrations; }
    u64 llcLinesSkipped() const { return nLlcLinesSkipped; }
    core::Loc locate(u64 flatSeg) const { return remap.lookup(flatSeg); }

  private:
    void endInterval(mem::Timeline &tl);
    void migrateSegment(u64 hotSeg, mem::Timeline &tl);
    void metaAccess(AccessType type, mem::Timeline &tl);

    LgmParams cfg;
    u64 nmSegs;
    u64 fmSegs;
    core::RemapTable remap;
    RemapCache remapCache;
    const mem::LlcView &llc;
    std::unordered_map<u64, u32> intervalCounts;
    u64 fifoPtr = 0;
    Tick nextInterval;
    u64 metaRotor = 0;

    u64 nMigrations = 0;
    u64 nIntervals = 0;
    u64 nLlcLinesSkipped = 0;
    u64 nMetaReads = 0;
    u64 nMetaWrites = 0;
};

} // namespace h2::baselines
