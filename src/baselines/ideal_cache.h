/**
 * @file
 * DRAM-cache baselines: the IDEAL cache of Figure 2 (no tag or metadata
 * overheads, parametric line size) and, as thin specializations in
 * sibling headers, the Tagless DRAM cache and the Decoupled Fused Cache.
 *
 * All NM capacity is the cache's data array; main memory is FM only.
 * The cache also tracks which 64 B blocks of each fetched line were
 * actually used, which produces the paper's Figure 1 (fetched-but-unused
 * data vs. line size).
 */

#pragma once

#include <unordered_map>

#include "cache/set_assoc_cache.h"
#include "mem/hybrid_memory.h"

namespace h2::baselines {

/** Configuration of a DRAM-cache baseline. */
struct DramCacheParams
{
    u32 lineBytes = 1024;
    u32 ways = 16;
    /** Extra fixed latency per lookup (tag handling), ps. */
    Tick tagLatencyPs = 0;
};

class IdealCache : public mem::HybridMemory
{
  public:
    IdealCache(const mem::MemSystemParams &sysParams,
               const DramCacheParams &cacheParams,
               const std::string &displayName = "IDEAL");

    mem::MemResult access(Addr addr, AccessType type, Tick now) override;
    std::string name() const override { return label; }
    u64 flatCapacity() const override { return sys.fmBytes; }
    void collectStats(StatSet &out) const override;
    void resetStats() override;

    const DramCacheParams &cacheParams() const { return cp; }

    /** Fraction of fetched 64 B blocks never accessed before eviction
     *  (evaluated over evicted lines; Figure 1). */
    double wastedFetchFraction() const;

    u64 fills() const { return nFills; }
    u64 lineHits() const { return nHits; }

  protected:
    /**
     * Hook for subclasses: charge tag-lookup cost for @p addr. The
     * lookup gates the data access, so implementations serialize their
     * latency (fixed or an NM tag-store read) onto @p tl.
     */
    virtual void tagLookup(Addr addr, mem::Timeline &tl);

    /** Hook: metadata update on a fill (e.g. tag store write); posted
     *  off the critical path. */
    virtual void onFill(Addr lineAddr, mem::Timeline &tl);

    DramCacheParams cp;
    std::string label;
    cache::SetAssocCache tags;

    /** Per-resident-line bitmap of 64 B blocks touched since fill. */
    std::unordered_map<Addr, u64> usedBlocks;

    u64 nHits = 0;
    u64 nFills = 0;
    u64 fetchedBlocks = 0; ///< 64 B blocks brought in by fills
    u64 wastedBlocks = 0;  ///< fetched blocks never used, over evictions
    u64 evictedLines = 0;
};

} // namespace h2::baselines
