/**
 * @file
 * Majority Element Algorithm (MEA) counters, Karp/Shenker/Papadimitriou,
 * as used by MemPod to identify hot 2 KB segments within an interval.
 */

#pragma once

#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace h2::baselines {

/**
 * Streaming frequent-elements sketch with @p k counters. Elements seen
 * more than N/(k+1) times in a stream of length N are guaranteed to be
 * tracked.
 */
class Mea
{
  public:
    explicit Mea(u32 numCounters = 64);

    /** Account one occurrence of @p element. */
    void touch(u64 element);

    /** Elements currently tracked, most-counted first. */
    std::vector<std::pair<u64, u64>> tracked() const;

    void clear();
    u32 capacity() const { return k; }
    u64 size() const { return counters.size(); }

  private:
    u32 k;
    std::unordered_map<u64, u64> counters;
};

} // namespace h2::baselines
