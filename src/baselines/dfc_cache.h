/**
 * @file
 * Decoupled Fused Cache (Vasilakis et al., TACO'19) baseline.
 *
 * DFC keeps the DRAM-cache tags in DRAM but fuses recently used tag
 * information into on-chip SRAM (the LLC tag array in the original
 * design). We model the fused/on-chip part as a 512 KB tag cache: a
 * lookup that hits it is free; a lookup that misses pays an NM tag read
 * before the data access, and fills write the NM tag store. The paper's
 * best DFC configuration uses 1 KB cache lines.
 */

#pragma once

#include "baselines/ideal_cache.h"
#include "baselines/remap_cache.h"

namespace h2::baselines {

class DfcCache : public IdealCache
{
  public:
    DfcCache(const mem::MemSystemParams &sysParams, u32 lineBytes = 1024);

    void collectStats(StatSet &out) const override;
    void resetStats() override;

    u64 tagCacheHits() const { return tagCache.hits(); }
    u64 tagCacheMisses() const { return tagCache.misses(); }

  protected:
    void tagLookup(Addr addr, mem::Timeline &tl) override;
    void onFill(Addr lineAddr, mem::Timeline &tl) override;

  private:
    /** Charge one 64 B access to the NM-resident tag store: reads
     *  serialize (the lookup gates the data access), writes post. */
    void tagStoreAccess(AccessType type, mem::Timeline &tl);

    RemapCache tagCache;
    u64 tagReads = 0;
    u64 tagWrites = 0;
    u64 metaRotor = 0;
};

} // namespace h2::baselines
