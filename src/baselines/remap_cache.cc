#include "baselines/remap_cache.h"

namespace h2::baselines {

namespace {

cache::CacheParams
makeParams(u64 storageBytes, u32 entryBytes, u32 ways)
{
    cache::CacheParams p;
    p.name = "remapCache";
    // Model each remap entry as one "line" of entryBytes.
    p.sizeBytes = storageBytes / entryBytes * entryBytes;
    p.ways = ways;
    p.lineBytes = entryBytes;
    p.repl = cache::ReplPolicy::Lru;
    return p;
}

} // namespace

RemapCache::RemapCache(u64 storageBytes, u32 entryBytes, u32 ways)
    : tags(makeParams(storageBytes, entryBytes, ways))
{
}

bool
RemapCache::lookup(u64 segment)
{
    // Key the tag store by a synthetic address: segment * entryBytes.
    Addr key = segment * tags.params().lineBytes;
    if (tags.access(key, AccessType::Read))
        return true;
    tags.insert(key, false);
    return false;
}

void
RemapCache::invalidate(u64 segment)
{
    tags.invalidate(segment * tags.params().lineBytes);
}

} // namespace h2::baselines
