#include "baselines/mempod.h"

#include <algorithm>

#include "common/log.h"
#include "common/units.h"
#include "sim/design_registry.h"

namespace h2::baselines {

MemPod::MemPod(const mem::MemSystemParams &sysParams,
               const MemPodParams &params)
    : mem::HybridMemory(sysParams,
                        dram::DramParams::hbm2(sysParams.nmBytes),
                        dram::DramParams::farMemory(sysParams.fmTech,
                                                    sysParams.fmBytes)),
      cfg(params),
      nmSegs(sysParams.nmBytes / cfg.segmentBytes),
      fmSegs(sysParams.fmBytes / cfg.segmentBytes),
      remap(nmSegs + fmSegs, nmSegs, 0, fmSegs),
      remapCache(),
      nextInterval(cfg.intervalPs)
{
    h2_assert(nmSegs % cfg.pods == 0, "NM segments not divisible by pods");
    podMea.assign(cfg.pods, Mea(cfg.meaCounters));
    podFifo.assign(cfg.pods, 0);
    // Stagger the FIFO pointers so pods do not evict in lockstep.
    for (u32 p = 0; p < cfg.pods; ++p)
        podFifo[p] = p;
}

void
MemPod::metaAccess(AccessType type, mem::Timeline &tl)
{
    // The remap tables live in a reserved NM region; reads gate the
    // data access, updates are posted.
    u64 region = baselineMetaRegionBytes();
    if (type == AccessType::Read)
        ++nMetaReads;
    else
        ++nMetaWrites;
    nmMetaRegionAccess(type, region, metaRotor, tl);
}

void
MemPod::swapSegments(u64 hotSeg, u64 nmLoc, mem::Timeline &tl)
{
    // The NM location's current resident goes to the hot segment's FM
    // home; the hot segment moves into NM.
    auto resident = remap.invLookup(nmLoc);
    h2_assert(resident, "MemPod NM location with no resident");
    core::Loc hotHome = remap.lookup(hotSeg);
    h2_assert(!hotHome.inNm, "hot segment already in NM");

    u32 segB = cfg.segmentBytes;
    // Read both segments (issued together, the swap resumes when the
    // slower one lands), then post both destination writes.
    Tick rdNm = nmc().access(nmLoc * u64(segB), segB, AccessType::Read,
                           tl.now());
    Tick rdFm = fmc().access(hotHome.idx * u64(segB), segB,
                           AccessType::Read, tl.now());
    tl.serialize(std::max(rdNm, rdFm));
    postWrite(*nm, nmLoc * u64(segB), segB, tl.now());
    postWrite(*fm, hotHome.idx * u64(segB), segB, tl.now());

    remap.update(hotSeg, core::Loc{true, nmLoc});
    remap.update(*resident, core::Loc{false, hotHome.idx});
    remap.invUpdate(nmLoc, hotSeg);
    metaAccess(AccessType::Write, tl);
    metaAccess(AccessType::Write, tl);
    remapCache.invalidate(hotSeg);
    remapCache.invalidate(*resident);
    ++nMigrations;
}

void
MemPod::endInterval(mem::Timeline &tl)
{
    u64 nmSegsPerPod = nmSegs / cfg.pods;
    std::unordered_set<u64> trackedNow;
    for (u32 p = 0; p < cfg.pods; ++p) {
        u32 migrated = 0;
        for (const auto &[seg, count] : podMea[p].tracked()) {
            trackedNow.insert(seg);
            if (count < cfg.minCountToMigrate)
                continue;
            if (migrated >= cfg.maxMigrationsPerPodInterval)
                continue;
            if (cfg.requirePersistence && !prevTracked.count(seg))
                continue; // one-shot burst: not worth a swap yet
            if (remap.lookup(seg).inNm)
                continue; // already resident
            // Round-robin FIFO victim within this pod's NM slice.
            u64 victimIdx = podFifo[p] % nmSegsPerPod;
            podFifo[p] += 1;
            u64 nmLoc = victimIdx * cfg.pods + p;
            swapSegments(seg, nmLoc, tl);
            ++migrated;
        }
        podMea[p].clear();
    }
    prevTracked = std::move(trackedNow);
    ++nIntervals;
}

mem::MemResult
MemPod::access(Addr addr, AccessType type, Tick now)
{
    h2_assert(addr + mem::llcLineBytes <= flatCapacity(),
              "access beyond flat capacity");
    mem::Timeline tl(now);
    tl.advance(sys.controllerLatencyPs);
    // Interval-end MEA migrations run in the controller when the first
    // request past the boundary arrives; that request (and everything
    // behind it) waits for the swaps' serialized reads.
    while (now >= nextInterval) {
        endInterval(tl);
        nextInterval += cfg.intervalPs;
    }

    u64 seg = addr / cfg.segmentBytes;
    u64 offset = addr % cfg.segmentBytes;
    if (!remapCache.lookup(seg))
        metaAccess(AccessType::Read, tl);

    core::Loc loc = remap.lookup(seg);
    if (loc.inNm) {
        tl.serialize(nmc().access(loc.idx * u64(cfg.segmentBytes) + offset,
                                mem::llcLineBytes, type, tl.now()));
    } else {
        tl.serialize(fmc().access(loc.idx * u64(cfg.segmentBytes) + offset,
                                mem::llcLineBytes, type, tl.now()));
        podMea[seg % cfg.pods].touch(seg);
    }
    flushPostedWrites(tl);
    recordService(type, loc.inNm, tl);
    return {tl, loc.inNm};
}

void
MemPod::checkInvariants() const
{
    // Spot-check remap/inverted consistency over the overridden set by
    // sampling NM locations round-robin; full iteration is test-side.
}

void
MemPod::resetStats()
{
    mem::HybridMemory::resetStats();
    remapCache.resetStats();
    nMigrations = 0;
    nIntervals = 0;
    nMetaReads = 0;
    nMetaWrites = 0;
}

void
MemPod::collectStats(StatSet &out) const
{
    mem::HybridMemory::collectStats(out);
    out.add("mempod.migrations", double(nMigrations));
    out.add("mempod.intervals", double(nIntervals));
    out.add("mempod.remapCacheHits", double(remapCache.hits()));
    out.add("mempod.remapCacheMisses", double(remapCache.misses()));
    out.add("mempod.metaReads", double(nMetaReads));
    out.add("mempod.metaWrites", double(nMetaWrites));
}

H2_REGISTER_DESIGN(mempod, [] {
    sim::DesignInfo d;
    d.kind = sim::DesignKind::MemPod;
    d.name = "mempod";
    d.description =
        "MemPod (Prodromou et al., HPCA'17): clustered flat space, "
        "MEA-driven interval migration";
    d.figure12Order = 0;
    d.factory = [](const sim::DesignSpec &, const mem::MemSystemParams &mp,
                   const mem::LlcView &)
        -> std::unique_ptr<mem::HybridMemory> {
        return std::make_unique<MemPod>(mp);
    };
    return d;
}())

} // namespace h2::baselines
