#include "baselines/mea.h"

#include <algorithm>

#include "common/log.h"

namespace h2::baselines {

Mea::Mea(u32 numCounters)
    : k(numCounters)
{
    h2_assert(k > 0, "MEA needs at least one counter");
    counters.reserve(k + 1);
}

void
Mea::touch(u64 element)
{
    auto it = counters.find(element);
    if (it != counters.end()) {
        ++it->second;
        return;
    }
    if (counters.size() < k) {
        counters.emplace(element, 1);
        return;
    }
    // Decrement-all step: every tracked count drops by one; zeroed
    // entries fall out of the sketch.
    for (auto iter = counters.begin(); iter != counters.end();) {
        if (--iter->second == 0)
            iter = counters.erase(iter);
        else
            ++iter;
    }
}

std::vector<std::pair<u64, u64>>
Mea::tracked() const
{
    std::vector<std::pair<u64, u64>> out(counters.begin(), counters.end());
    std::sort(out.begin(), out.end(), [](const auto &a, const auto &b) {
        return a.second > b.second;
    });
    return out;
}

void
Mea::clear()
{
    counters.clear();
}

} // namespace h2::baselines
