/**
 * @file
 * The normalization baseline: an FM-only system with no 3D-stacked DRAM.
 * Every result in the paper's evaluation is a speedup over this design.
 */

#pragma once

#include "mem/hybrid_memory.h"

namespace h2::baselines {

class FlatBaseline : public mem::HybridMemory
{
  public:
    explicit FlatBaseline(const mem::MemSystemParams &sysParams);

    mem::MemResult access(Addr addr, AccessType type, Tick now) override;
    std::string name() const override { return "BASELINE"; }
    u64 flatCapacity() const override { return sys.fmBytes; }
};

} // namespace h2::baselines
