#include "baselines/ideal_cache.h"

#include <algorithm>

#include "common/log.h"
#include "common/units.h"
#include "sim/design_registry.h"

namespace h2::baselines {

namespace {

cache::CacheParams
tagParams(u64 nmBytes, const DramCacheParams &cp)
{
    cache::CacheParams p;
    p.name = "dramCacheTags";
    p.sizeBytes = nmBytes;
    p.ways = cp.ways;
    p.lineBytes = cp.lineBytes;
    p.repl = cache::ReplPolicy::Lru;
    return p;
}

} // namespace

IdealCache::IdealCache(const mem::MemSystemParams &sysParams,
                       const DramCacheParams &cacheParams,
                       const std::string &displayName)
    : mem::HybridMemory(sysParams,
                        dram::DramParams::hbm2(sysParams.nmBytes),
                        dram::DramParams::farMemory(sysParams.fmTech,
                                                    sysParams.fmBytes)),
      cp(cacheParams), label(displayName),
      tags(tagParams(sysParams.nmBytes, cacheParams))
{
    h2_assert(cp.lineBytes >= mem::llcLineBytes &&
              cp.lineBytes % mem::llcLineBytes == 0,
              "DRAM-cache line must be a multiple of 64 B");
    h2_assert(cp.lineBytes / mem::llcLineBytes <= 64,
              "used-block tracking supports up to 4 KB lines");
}

void
IdealCache::tagLookup(Addr, mem::Timeline &tl)
{
    // The IDEAL cache has no tag-lookup overhead (Figure 2).
    tl.advance(cp.tagLatencyPs);
}

void
IdealCache::onFill(Addr, mem::Timeline &)
{
    // No metadata traffic in the ideal design.
}

mem::MemResult
IdealCache::access(Addr addr, AccessType type, Tick now)
{
    h2_assert(addr + mem::llcLineBytes <= flatCapacity(),
              "access beyond FM capacity");
    Addr lineAddr = addr & ~Addr(cp.lineBytes - 1);
    u32 blockIdx = static_cast<u32>((addr - lineAddr) / mem::llcLineBytes);
    mem::Timeline tl(now);
    tl.advance(sys.controllerLatencyPs);
    tagLookup(addr, tl);

    if (tags.access(lineAddr, type)) {
        ++nHits;
        usedBlocks[lineAddr] |= u64(1) << blockIdx;
        // The cache maps NM 1:1 by line address modulo NM capacity; the
        // tag store guarantees at most one resident line per frame.
        Addr nmAddr = lineAddr % sys.nmBytes + (addr - lineAddr);
        tl.serialize(nmc().access(nmAddr, mem::llcLineBytes, type,
                                tl.now()));
        flushPostedWrites(tl);
        recordService(type, true, tl);
        return {tl, true};
    }

    // Miss: fetch the full line from FM (critical 64 B first), fill NM.
    auto victim = tags.insert(lineAddr, type == AccessType::Write);
    if (victim) {
        ++evictedLines;
        auto it = usedBlocks.find(victim->addr);
        u64 used = it == usedBlocks.end() ? 0 : it->second;
        u32 blocksPerLine = cp.lineBytes / mem::llcLineBytes;
        wastedBlocks += blocksPerLine - __builtin_popcountll(used);
        if (it != usedBlocks.end())
            usedBlocks.erase(it);
        if (victim->dirty) {
            // Write the whole victim line back to FM: the NM read
            // drains the frame before it is refilled (serialized); the
            // FM write is posted once the data is buffered and drains
            // behind the demand fetch.
            tl.serialize(nmc().access(victim->addr % sys.nmBytes,
                                    cp.lineBytes, AccessType::Read,
                                    tl.now()));
            postWrite(*fm, victim->addr, cp.lineBytes, tl.now());
        }
    }
    ++nFills;
    fetchedBlocks += cp.lineBytes / mem::llcLineBytes;
    usedBlocks[lineAddr] = u64(1) << blockIdx;

    // Critical word first; the rest of the line and the NM fill stream
    // in behind it, off the critical path.
    tl.serialize(fmc().access(addr, mem::llcLineBytes, AccessType::Read,
                            tl.now()));
    Tick critical = tl.now();
    Tick lineReady = critical; // when the whole line is buffered
    if (cp.lineBytes > mem::llcLineBytes) {
        // Remaining bytes of the line (split around the critical block).
        if (addr > lineAddr) {
            Tick rd = fmc().access(lineAddr,
                                 static_cast<u32>(addr - lineAddr),
                                 AccessType::Read, critical);
            tl.overlap(rd);
            lineReady = std::max(lineReady, rd);
        }
        Addr after = addr + mem::llcLineBytes;
        if (after < lineAddr + cp.lineBytes) {
            Tick rd = fmc().access(
                after, static_cast<u32>(lineAddr + cp.lineBytes - after),
                AccessType::Read, critical);
            tl.overlap(rd);
            lineReady = std::max(lineReady, rd);
        }
    }
    postWrite(*nm, lineAddr % sys.nmBytes, cp.lineBytes, lineReady);
    onFill(lineAddr, tl);
    flushPostedWrites(tl);
    recordService(type, false, tl);
    return {tl, false};
}

double
IdealCache::wastedFetchFraction() const
{
    // Count both evicted lines (whose waste is final) and currently
    // resident lines (fetched but not yet used); with a 1 GB cache and
    // bounded traces most fetched lines are still resident at the end
    // of the run.
    u32 blocksPerLine = cp.lineBytes / mem::llcLineBytes;
    u64 fetched = evictedLines * u64(blocksPerLine);
    u64 wasted = wastedBlocks;
    for (const auto &[line, used] : usedBlocks) {
        fetched += blocksPerLine;
        wasted += blocksPerLine - __builtin_popcountll(used);
    }
    if (fetched == 0)
        return 0.0;
    return double(wasted) / double(fetched);
}

void
IdealCache::resetStats()
{
    mem::HybridMemory::resetStats();
    nHits = 0;
    nFills = 0;
    fetchedBlocks = 0;
    wastedBlocks = 0;
    evictedLines = 0;
    tags.resetStats();
}

void
IdealCache::collectStats(StatSet &out) const
{
    mem::HybridMemory::collectStats(out);
    out.add("cache.lineHits", double(nHits));
    out.add("cache.fills", double(nFills));
    out.add("cache.evictedLines", double(evictedLines));
    out.add("cache.wastedFetchFraction", wastedFetchFraction());
    tags.collectStats(out, "cache.tags");
}

H2_REGISTER_DESIGN(ideal, [] {
    sim::DesignInfo d;
    d.kind = sim::DesignKind::Ideal;
    d.name = "ideal";
    d.description =
        "overhead-free DRAM cache with a parametric line size (Figure 2)";
    sim::ParamDef line;
    line.name = "line";
    line.type = sim::ParamDef::Type::U64;
    line.description = "cache-line (fetch) bytes";
    line.defU64 = 256;
    line.minU64 = 64;
    line.maxU64 = 1 * MiB;
    line.powerOfTwo = true;
    line.positional = true;
    d.params = {line};
    d.factory = [](const sim::DesignSpec &spec,
                   const mem::MemSystemParams &mp, const mem::LlcView &)
        -> std::unique_ptr<mem::HybridMemory> {
        DramCacheParams p;
        p.lineBytes = static_cast<u32>(spec.u64Param("line"));
        return std::make_unique<IdealCache>(
            mp, p, "IDEAL-" + std::to_string(p.lineBytes));
    };
    return d;
}())

} // namespace h2::baselines
