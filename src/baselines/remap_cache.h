/**
 * @file
 * On-chip remap-entry cache used by the migration baselines.
 *
 * Mempod, Chameleon and LGM keep their full remap tables in memory and
 * cache recently used entries on-chip. Per the paper's methodology the
 * remap cache of every baseline is sized equal to Hybrid2's XTA (512 KB)
 * for a fair comparison.
 */

#pragma once

#include "cache/set_assoc_cache.h"
#include "common/types.h"

namespace h2::baselines {

class RemapCache
{
  public:
    /**
     * @param storageBytes on-chip SRAM budget (default 512 KB)
     * @param entryBytes   bytes per cached remap entry
     * @param ways         associativity
     */
    explicit RemapCache(u64 storageBytes = 512 * 1024, u32 entryBytes = 8,
                        u32 ways = 16);

    /** Look up the remap entry of @p segment; true on hit. On a miss the
     *  entry is installed (the caller charges the in-memory table read). */
    bool lookup(u64 segment);

    /** Drop the entry of @p segment (after a remap update). */
    void invalidate(u64 segment);

    u64 hits() const { return tags.hits(); }
    u64 misses() const { return tags.misses(); }

    /** Zero hit/miss counters after warm-up; contents are kept. */
    void resetStats() { tags.resetStats(); }

  private:
    cache::SetAssocCache tags;
};

} // namespace h2::baselines
