/**
 * @file
 * Remap table and inverted remap table (paper section 3.3).
 *
 * Hybrid2 keeps an all-to-all sector remap table (processor physical
 * sector -> current NM/FM location) plus an inverted table (NM location
 * -> resident processor sector) in a reserved slice of NM. This module
 * implements both *functionally* with sparse overrides over the initial
 * identity layout; the DCMC charges NM traffic for each logical access.
 *
 * Initial layout: flat sectors [0, nmFlatSectors) live in the NM flat
 * region (NM locations [cacheSectors, nmLocs)); the remaining flat
 * sectors live in FM identity-mapped. NM locations [0, cacheSectors)
 * start as the DRAM cache's boot data region and hold no flat sector.
 */

#pragma once

#include <optional>

#include "common/flat_map.h"
#include "common/types.h"

namespace h2::core {

/** A sector-granular location in the memory system. */
struct Loc
{
    bool inNm = false;
    u64 idx = 0; ///< NM location index or FM sector index

    bool operator==(const Loc &o) const
    {
        return inNm == o.inNm && idx == o.idx;
    }
};

/** Combined remap + inverted remap tables with lazy identity defaults. */
class RemapTable
{
  public:
    /**
     * @param flatSectors   size of the processor physical space (sectors)
     * @param nmFlatSectors flat sectors initially resident in NM
     * @param cacheSectors  NM locations initially owned by the DRAM cache
     * @param fmSectors     FM capacity in sectors
     */
    RemapTable(u64 flatSectors, u64 nmFlatSectors, u64 cacheSectors,
               u64 fmSectors);

    /** Current location of @p flatSector. */
    Loc lookup(u64 flatSector) const;

    /** Point @p flatSector at @p loc. */
    void update(u64 flatSector, Loc loc);

    /** Which flat sector's data occupies NM location @p nmLoc, if any. */
    std::optional<u64> invLookup(u64 nmLoc) const;

    /** Set (or clear, with nullopt) the occupant of @p nmLoc. */
    void invUpdate(u64 nmLoc, std::optional<u64> flatSector);

    u64 flatSectors() const { return nFlat; }
    u64 nmFlatSectors() const { return nNmFlat; }
    u64 fmSectors() const { return nFm; }
    u64 cacheSectors() const { return nCache; }

    /** Number of explicitly overridden (non-identity) entries. */
    u64 overrides() const { return remapOverride.size(); }

  private:
    u64 nFlat;
    u64 nNmFlat;
    u64 nCache;
    u64 nFm;
    /** Sparse overrides of the identity layout, keyed by flat sector /
     *  NM location. Open-addressed flat tables (see common/flat_map.h)
     *  sized to the NM sector count: migrations churn at NM scale, so
     *  that is the steady-state override population. */
    FlatMap64<Loc> remapOverride;
    /** value = resident flat sector; nullopt stored explicitly so a
     *  tombstone masks the identity default. */
    FlatMap64<std::optional<u64>> invOverride;
};

} // namespace h2::core
