/**
 * @file
 * The eXtended Tag Array (paper section 3.2).
 *
 * An on-chip, set-associative tag array for the sectored DRAM cache,
 * extended with the fields that unify cache and migration metadata:
 * per-line valid/dirty vectors, a per-sector access counter, and NM/FM
 * location pointers. The NM pointer decouples an XTA way from the
 * physical NM location of its data (indirection), which is what lets
 * Hybrid2 promote a cached sector to a migrated one without copying.
 *
 * Set-count rounding: the number of sets is rounded DOWN to a power of
 * two so the per-access setOf/tagOf split is a mask/shift instead of a
 * div/mod (real tag arrays index with address bits the same way). Every
 * paper configuration (power-of-two cache, sector and line sizes)
 * already yields a power-of-two set count, so rounding only affects
 * exotic geometries, where it slightly shrinks capacitySectors().
 */

#pragma once

#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace h2::core {

/** Payload of one XTA entry (Figure 4 of the paper).
 *
 *  The presence bit and the tag do NOT live here: they sit in the
 *  Xta's contiguous tag lane (struct-of-arrays), so the per-access
 *  way scan touches one cache line of tags instead of striding over
 *  full entries. Use Xta::entryValid / Xta::entryTag to read them and
 *  Xta::releaseWay to invalidate. */
struct XtaEntry
{
    u64 validMask = 0;    ///< per-line presence in NM
    u64 dirtyMask = 0;    ///< per-line dirtiness
    u32 accessCounter = 0;
    u64 nmLoc = 0;        ///< NM location of the sector's data
    u64 fmLoc = 0;        ///< FM home while the sector lives in FM
    bool inFm = false;    ///< true: FM sector (fmLoc valid); false: NM
    u64 lruStamp = 0;

    u32 popcountValid() const { return __builtin_popcountll(validMask); }
    u32 popcountDirty() const { return __builtin_popcountll(dirtyMask); }
};

/** Set-associative XTA with LRU replacement. */
class Xta
{
  public:
    /**
     * @param numSectors total entries (DRAM-cache capacity in sectors)
     * @param ways       associativity
     * @param linesPerSector lines tracked by each valid/dirty vector
     */
    Xta(u64 numSectors, u32 ways, u32 linesPerSector);

    u64 numSets() const { return sets; }
    u32 numWays() const { return waysN; }
    u64 capacitySectors() const { return sets * waysN; }
    u32 linesPerSector() const { return lps; }

    u64 setOf(u64 flatSector) const { return flatSector & setMask; }
    u64 tagOf(u64 flatSector) const { return flatSector >> setShift; }
    u64
    flatSectorOf(u64 set, u64 tag) const
    {
        return (tag << setShift) | set;
    }
    u64
    flatSectorOf(u64 set, const XtaEntry &e) const
    {
        return flatSectorOf(set, entryTag(e));
    }

    /** Presence bit of an in-array entry (lives in the tag lane). */
    bool
    entryValid(const XtaEntry &e) const
    {
        return tagLane[indexOf(e)] != kInvalidTag;
    }

    /** Tag of an in-array entry (lives in the tag lane). */
    u64 entryTag(const XtaEntry &e) const { return tagLane[indexOf(e)]; }

    /** Invalidate an in-array entry (clears its tag-lane slot). */
    void releaseWay(XtaEntry &e) { tagLane[indexOf(e)] = kInvalidTag; }

    /** Find the entry for @p flatSector; refreshes LRU on hit. */
    XtaEntry *find(u64 flatSector);

    /** Lookup without touching LRU or stats (allocator victim scan). */
    const XtaEntry *peek(u64 flatSector) const;
    bool contains(u64 flatSector) const { return peek(flatSector); }

    /**
     * Pick the way that a new entry for @p flatSector will occupy:
     * an invalid way if one exists, otherwise the LRU way (whose current
     * contents the caller must handle first).
     */
    XtaEntry *victimWay(u64 flatSector);

    /** Initialize @p entry for @p flatSector and refresh LRU. */
    void fill(u64 flatSector, XtaEntry &entry);

    /** Direct entry access for invariant checks and tests. */
    const XtaEntry &
    entryAt(u64 set, u32 way) const
    {
        return entries[set * waysN + way];
    }

    /** Iterate the other valid entries of @p flatSector's set. */
    template <typename Fn>
    void
    forOthersInSet(u64 flatSector, const XtaEntry &self, Fn &&fn) const
    {
        u64 base = setOf(flatSector) * waysN;
        u64 selfIdx = indexOf(self);
        for (u32 w = 0; w < waysN; ++w)
            if (tagLane[base + w] != kInvalidTag && base + w != selfIdx)
                fn(entries[base + w]);
    }

    /** Estimated on-chip SRAM footprint of the array in bytes
     *  (paper: must stay under ~512 KB). */
    u64 storageBytes() const;

    u64 hits() const { return nHits; }
    u64 misses() const { return nMisses; }

    /** Zero hit/miss counters after warm-up; LRU state is kept. */
    void
    resetStats()
    {
        nHits = 0;
        nMisses = 0;
    }

    void collectStats(StatSet &out, const std::string &prefix) const;

  private:
    /** Tag-lane value of an invalid way. Real tags are
     *  flatSector >> setShift and stay far below 2^64 for any
     *  modeled capacity, so all-ones doubles as the absent marker. */
    static constexpr u64 kInvalidTag = ~u64(0);

    u64 indexOf(const XtaEntry &e) const { return u64(&e - entries.data()); }

    u64 sets;
    u32 setShift;
    u64 setMask;
    u32 waysN;
    u32 lps;
    /** Contiguous tags (way-major within a set): the hot way scan
     *  reads only this lane; the payload in @c entries is touched
     *  only on a hit or for the chosen victim. */
    std::vector<u64> tagLane;
    std::vector<XtaEntry> entries;
    u64 clock = 0;
    u64 nHits = 0;
    u64 nMisses = 0;
};

} // namespace h2::core
