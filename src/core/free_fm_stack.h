/**
 * @file
 * The Free-FM-Stack (paper sections 3.3 and 3.5).
 *
 * Tracks FM sector locations whose data has been migrated to NM and that
 * can therefore be overwritten. The stack itself lives in NM; the stack
 * pointer and a window of top entries are kept on-chip in the DCMC, so
 * only pushes/pops that cross the on-chip window boundary touch NM. The
 * stack depth is bounded by the number of sectors the DRAM cache holds.
 */

#pragma once

#include <utility>
#include <vector>

#include "common/types.h"

namespace h2::core {

class FreeFmStack
{
  public:
    /**
     * @param onChipEntries entries buffered in the DCMC (no NM traffic)
     * @param entriesPerNmLine stack entries packed per 64 B NM line
     */
    explicit FreeFmStack(u32 onChipEntries = 64, u32 entriesPerNmLine = 16);

    void push(u64 fmLoc);

    /** Pop the most recent free FM location; stack must be non-empty. */
    u64 pop();

    bool empty() const { return stack.empty(); }
    u64 size() const { return stack.size(); }

    /** NM line transfers (spills/fills) implied by traffic so far. The
     *  DCMC drains these counters into metadata accesses. */
    u64 takeNmSpills() { return std::exchange(nmSpills, 0); }
    u64 takeNmFills() { return std::exchange(nmFills, 0); }

    u64 totalNmSpills() const { return lifetimeSpills; }
    u64 totalNmFills() const { return lifetimeFills; }

  private:
    std::vector<u64> stack;
    u32 window;
    u32 perLine;
    u64 nmSpills = 0;
    u64 nmFills = 0;
    u64 lifetimeSpills = 0;
    u64 lifetimeFills = 0;
};

} // namespace h2::core
