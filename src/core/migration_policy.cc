#include "core/migration_policy.h"

#include "common/log.h"

namespace h2::core {

u32
migrationNetCost(u32 linesPerSector, u32 numValid, u32 numDirty)
{
    h2_assert(numValid >= 1 && numValid <= linesPerSector,
              "valid count out of range");
    h2_assert(numDirty <= numValid, "more dirty than valid lines");
    u32 netCost = 2 * linesPerSector - numValid - numDirty + 1;
    h2_assert(netCost >= 1 && netCost <= 2 * linesPerSector,
              "net cost out of paper-guaranteed range");
    return netCost;
}

MigrationPolicy::MigrationPolicy(u32 counterMaxValue, Tick budgetResetPs)
    : counterMax(counterMaxValue), resetPeriod(budgetResetPs),
      nextReset(budgetResetPs)
{
    h2_assert(counterMax > 0 && resetPeriod > 0, "bad policy parameters");
}

void
MigrationPolicy::advanceTo(Tick now)
{
    while (now >= nextReset) {
        fmAccessCounter = 0;
        nextReset += resetPeriod;
    }
}

MigrationVerdict
MigrationPolicy::decide(const Xta &xta, u64 flatSector,
                        const XtaEntry &victim)
{
    h2_assert(victim.inFm, "migration decision for an NM-resident sector");

    // (i) Access counter vs. the rest of the set. Only FM sectors
    // compete (NM sectors never increment), and saturated competitors
    // are ignored to avoid starvation from long-resident sectors.
    bool counterWins = true;
    xta.forOthersInSet(flatSector, victim, [&](const XtaEntry &other) {
        if (!other.inFm)
            return;
        if (other.accessCounter >= counterMax)
            return;
        if (other.accessCounter > victim.accessCounter)
            counterWins = false;
    });
    if (!counterWins)
        return MigrationVerdict::DeniedByCounter;

    // (ii)+(iii) Net cost against the FM-access budget. The comparison
    // is deliberately inclusive: Figure 10 of the paper evicts when the
    // net cost is "higher than or equal to" the FM-access counter, so a
    // migration whose cost exactly matches the remaining budget is
    // denied — migrating must leave budget over, it may not zero it.
    u32 netCost = migrationNetCost(xta.linesPerSector(),
                                   victim.popcountValid(),
                                   victim.popcountDirty());
    if (netCost >= fmAccessCounter)
        return MigrationVerdict::DeniedByBudget;
    fmAccessCounter -= netCost;
    return MigrationVerdict::Migrate;
}

} // namespace h2::core
