#include "core/xta.h"

#include "common/log.h"

namespace h2::core {

Xta::Xta(u64 numSectors, u32 ways, u32 linesPerSector)
    : waysN(ways), lps(linesPerSector)
{
    h2_assert(ways > 0 && numSectors >= ways,
              "XTA needs at least one full set");
    h2_assert(numSectors % ways == 0, "XTA sectors not divisible by ways");
    h2_assert(linesPerSector >= 1 && linesPerSector <= 64,
              "valid/dirty vectors support 1..64 lines per sector, got ",
              linesPerSector);
    // Round the set count down to a power of two (see the header
    // comment) so setOf/tagOf are a mask and a shift on the hot path.
    sets = u64(1) << floorLog2(numSectors / ways);
    setShift = floorLog2(sets);
    setMask = sets - 1;
    tagLane.assign(sets * waysN, kInvalidTag);
    entries.resize(sets * waysN);
}

XtaEntry *
Xta::find(u64 flatSector)
{
    u64 tag = tagOf(flatSector);
    u64 base = setOf(flatSector) * waysN;
    for (u32 w = 0; w < waysN; ++w) {
        if (tagLane[base + w] == tag) {
            ++nHits;
            entries[base + w].lruStamp = ++clock;
            return &entries[base + w];
        }
    }
    ++nMisses;
    return nullptr;
}

const XtaEntry *
Xta::peek(u64 flatSector) const
{
    u64 tag = tagOf(flatSector);
    u64 base = setOf(flatSector) * waysN;
    for (u32 w = 0; w < waysN; ++w)
        if (tagLane[base + w] == tag)
            return &entries[base + w];
    return nullptr;
}

XtaEntry *
Xta::victimWay(u64 flatSector)
{
    u64 base = setOf(flatSector) * waysN;
    u32 victim = 0;
    for (u32 w = 0; w < waysN; ++w) {
        if (tagLane[base + w] == kInvalidTag)
            return &entries[base + w];
        if (entries[base + w].lruStamp < entries[base + victim].lruStamp)
            victim = w;
    }
    return &entries[base + victim];
}

void
Xta::fill(u64 flatSector, XtaEntry &entry)
{
    tagLane[indexOf(entry)] = tagOf(flatSector);
    entry.validMask = 0;
    entry.dirtyMask = 0;
    entry.accessCounter = 0;
    entry.lruStamp = ++clock;
}

u64
Xta::storageBytes() const
{
    // Per entry: tag (~4 B), valid+dirty vectors (2 * lps bits),
    // 9-bit counter, two pointers (~4 B each), LRU (~1 B).
    u64 bitsPerEntry = 32 + 2 * lps + 9 + 2 * 32 + 8;
    return ceilDiv(entries.size() * bitsPerEntry, 8);
}

void
Xta::collectStats(StatSet &out, const std::string &prefix) const
{
    out.add(prefix + ".hits", double(nHits));
    out.add(prefix + ".misses", double(nMisses));
    out.add(prefix + ".storageBytes", double(storageBytes()));
}

} // namespace h2::core
