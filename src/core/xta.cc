#include "core/xta.h"

#include "common/log.h"

namespace h2::core {

Xta::Xta(u64 numSectors, u32 ways, u32 linesPerSector)
    : waysN(ways), lps(linesPerSector)
{
    h2_assert(ways > 0 && numSectors >= ways,
              "XTA needs at least one full set");
    h2_assert(numSectors % ways == 0, "XTA sectors not divisible by ways");
    h2_assert(linesPerSector >= 1 && linesPerSector <= 64,
              "valid/dirty vectors support 1..64 lines per sector, got ",
              linesPerSector);
    // Round the set count down to a power of two (see the header
    // comment) so setOf/tagOf are a mask and a shift on the hot path.
    sets = u64(1) << floorLog2(numSectors / ways);
    setShift = floorLog2(sets);
    setMask = sets - 1;
    entries.resize(sets * waysN);
}

XtaEntry *
Xta::find(u64 flatSector)
{
    u64 set = setOf(flatSector);
    u64 tag = tagOf(flatSector);
    XtaEntry *base = &entries[set * waysN];
    for (u32 w = 0; w < waysN; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            ++nHits;
            base[w].lruStamp = ++clock;
            return &base[w];
        }
    }
    ++nMisses;
    return nullptr;
}

const XtaEntry *
Xta::peek(u64 flatSector) const
{
    u64 set = setOf(flatSector);
    u64 tag = tagOf(flatSector);
    const XtaEntry *base = &entries[set * waysN];
    for (u32 w = 0; w < waysN; ++w)
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    return nullptr;
}

XtaEntry *
Xta::victimWay(u64 flatSector)
{
    u64 set = setOf(flatSector);
    XtaEntry *base = &entries[set * waysN];
    XtaEntry *victim = &base[0];
    for (u32 w = 0; w < waysN; ++w) {
        if (!base[w].valid)
            return &base[w];
        if (base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }
    return victim;
}

void
Xta::fill(u64 flatSector, XtaEntry &entry)
{
    entry.valid = true;
    entry.tag = tagOf(flatSector);
    entry.validMask = 0;
    entry.dirtyMask = 0;
    entry.accessCounter = 0;
    entry.lruStamp = ++clock;
}

u64
Xta::storageBytes() const
{
    // Per entry: tag (~4 B), valid+dirty vectors (2 * lps bits),
    // 9-bit counter, two pointers (~4 B each), LRU (~1 B).
    u64 bitsPerEntry = 32 + 2 * lps + 9 + 2 * 32 + 8;
    return ceilDiv(entries.size() * bitsPerEntry, 8);
}

void
Xta::collectStats(StatSet &out, const std::string &prefix) const
{
    out.add(prefix + ".hits", double(nHits));
    out.add(prefix + ".misses", double(nMisses));
    out.add(prefix + ".storageBytes", double(storageBytes()));
}

} // namespace h2::core
