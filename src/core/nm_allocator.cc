#include "core/nm_allocator.h"

#include "common/log.h"

namespace h2::core {

NmAllocator::NmAllocator(u64 nmLocs, u64 cacheSectors)
    : total(nmLocs)
{
    h2_assert(cacheSectors < nmLocs,
              "the DRAM cache cannot consume the whole NM (",
              cacheSectors, " of ", nmLocs, " locations)");
    owners.assign(total, Owner::Flat);
    pool.reserve(cacheSectors);
    // Boot carve-out: the first cacheSectors locations belong to the
    // cache (paper: "a simple counter for the initially allocated NM
    // space to the cache").
    for (u64 loc = 0; loc < cacheSectors; ++loc) {
        owners[loc] = Owner::CachePool;
        pool.push_back(loc);
    }
    nmCounter = cacheSectors; // start scanning in the flat region
}

void
NmAllocator::setOwner(u64 loc, Owner o)
{
    owners.at(loc) = o;
}

u64
NmAllocator::popPool()
{
    h2_assert(!pool.empty(), "NM pool pop while empty");
    u64 loc = pool.back();
    pool.pop_back();
    h2_assert(owners[loc] == Owner::CachePool, "pool holds non-pool loc");
    owners[loc] = Owner::CacheData;
    return loc;
}

void
NmAllocator::pushPool(u64 loc)
{
    h2_assert(owners.at(loc) == Owner::CacheData,
              "returning a non-cache location to the pool");
    owners[loc] = Owner::CachePool;
    pool.push_back(loc);
}

u64
NmAllocator::findVictim(const std::function<bool(u64)> &pinned,
                        const std::function<void(u64)> &onProbe)
{
    for (u64 tries = 0; tries < total; ++tries) {
        u64 cand = nmCounter;
        nmCounter = (nmCounter + 1) % total;
        ++nProbes;
        onProbe(cand);
        if (owners[cand] != Owner::Flat) {
            ++nSkips;
            continue;
        }
        if (pinned(cand)) {
            // The resident sector has a live XTA entry; sectors in the
            // DRAM cache must not be migrated out (paper section 3.5).
            ++nSkips;
            continue;
        }
        return cand;
    }
    h2_panic("NM victim scan found no flat-resident sector");
}

u64
NmAllocator::flatCount() const
{
    u64 n = 0;
    for (auto o : owners)
        if (o == Owner::Flat)
            ++n;
    return n;
}

} // namespace h2::core
