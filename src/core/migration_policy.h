/**
 * @file
 * The migration decision (paper section 3.7, Figure 10).
 *
 * When an FM-resident sector is evicted from the DRAM cache, Hybrid2
 * decides between migrating it into NM and evicting it back to FM using
 * three inputs: the sector's access counter relative to its XTA set, a
 * net-cost function over its valid/dirty lines, and an FM-traffic budget
 * that scales migration aggressiveness with demand FM traffic.
 */

#pragma once

#include "common/types.h"
#include "core/xta.h"

namespace h2::core {

/**
 * Net cost of migrating vs. evicting a sector (paper 3.7.2):
 *
 *   Mcost  = (Nall - Nvalid) + Nall + 1
 *   Ecost  = Ndirty
 *   Netcost = Mcost - Ecost = 2*Nall - Nvalid - Ndirty + 1
 *
 * Ranges from 1 (all lines valid and dirty) to 2*Nall (one clean valid
 * line).
 */
u32 migrationNetCost(u32 linesPerSector, u32 numValid, u32 numDirty);

/** Why a migration was or was not performed (for stats). */
enum class MigrationVerdict : u8 {
    Migrate,         ///< all three checks passed
    DeniedByCounter, ///< another set member saw more accesses
    DeniedByBudget,  ///< net cost exceeds the FM-traffic budget
};

class MigrationPolicy
{
  public:
    /**
     * @param counterMax     access-counter saturation value (9 bits)
     * @param budgetResetPs  FM budget counter reset period
     */
    MigrationPolicy(u32 counterMax, Tick budgetResetPs);

    /** Account one demand FM access (DRAM-cache miss served from FM). */
    void onDemandFmAccess() { ++fmAccessCounter; }

    /** Periodic budget reset (paper: every 100K cycles). */
    void advanceTo(Tick now);

    /**
     * Decide for @p victim, which must hold an FM sector, in the set of
     * @p flatSector. On Migrate, the net cost is deducted from the
     * budget.
     */
    MigrationVerdict decide(const Xta &xta, u64 flatSector,
                            const XtaEntry &victim);

    u64 budget() const { return fmAccessCounter; }
    u32 counterSaturation() const { return counterMax; }

  private:
    u32 counterMax;
    Tick resetPeriod;
    Tick nextReset;
    u64 fmAccessCounter = 0;
};

} // namespace h2::core
