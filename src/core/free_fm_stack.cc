#include "core/free_fm_stack.h"

#include <utility>

#include "common/log.h"

namespace h2::core {

FreeFmStack::FreeFmStack(u32 onChipEntries, u32 entriesPerNmLine)
    : window(onChipEntries), perLine(entriesPerNmLine)
{
    h2_assert(window > 0 && perLine > 0, "bad Free-FM-Stack shape");
}

void
FreeFmStack::push(u64 fmLoc)
{
    stack.push_back(fmLoc);
    // When the on-chip window overflows, one line's worth of the oldest
    // buffered entries spills to the NM-resident stack.
    if (stack.size() > window && stack.size() % perLine == 0) {
        ++nmSpills;
        ++lifetimeSpills;
    }
}

u64
FreeFmStack::pop()
{
    h2_assert(!stack.empty(), "pop from empty Free-FM-Stack");
    u64 loc = stack.back();
    stack.pop_back();
    // Refill the on-chip window from NM when it drains below a line.
    if (stack.size() >= window && stack.size() % perLine == 0) {
        ++nmFills;
        ++lifetimeFills;
    }
    return loc;
}

} // namespace h2::core
