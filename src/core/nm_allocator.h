/**
 * @file
 * NM location bookkeeping and the FIFO victim scan (paper section 3.5).
 *
 * Every NM location in the "lined" region (everything but the reserved
 * metadata slice) is either free DRAM-cache space (CachePool), holding a
 * cached FM sector (CacheData), or holding a flat-address-space sector
 * (Flat). Allocation for a newly cached FM sector first reuses pool
 * space; when the pool is dry, a flat-resident victim is found with a
 * FIFO counter that wraps over all NM locations, skipping (via inverted
 * remap table + XTA probe) sectors pinned by the DRAM cache.
 */

#pragma once

#include <functional>
#include <vector>

#include "common/types.h"

namespace h2::core {

class NmAllocator
{
  public:
    enum class Owner : u8 { CachePool, CacheData, Flat };

    /**
     * @param nmLocs       NM locations in the lined region
     * @param cacheSectors locations initially owned by the cache pool
     */
    NmAllocator(u64 nmLocs, u64 cacheSectors);

    Owner owner(u64 loc) const { return owners.at(loc); }
    void setOwner(u64 loc, Owner o);

    bool poolEmpty() const { return pool.empty(); }
    u64 poolSize() const { return pool.size(); }

    /** Take a free location from the pool (must be non-empty);
     *  the location becomes CacheData. */
    u64 popPool();

    /** Return @p loc to the pool (it must be CacheData). */
    void pushPool(u64 loc);

    /**
     * FIFO scan for a flat-resident victim (Figure 8). For every probed
     * location @p onProbe is invoked (the hardware reads the inverted
     * remap table per probe); locations whose sector is in the XTA (per
     * @p pinned) are skipped.
     *
     * @return the victim NM location; it stays Flat until the caller
     *         completes the swap and reassigns ownership.
     */
    u64 findVictim(const std::function<bool(u64 loc)> &pinned,
                   const std::function<void(u64 loc)> &onProbe);

    u64 numLocs() const { return total; }
    u64 flatCount() const;
    u64 fifoPointer() const { return nmCounter; }
    u64 probes() const { return nProbes; }
    u64 skips() const { return nSkips; }

  private:
    u64 total;
    std::vector<Owner> owners;
    std::vector<u64> pool;
    u64 nmCounter = 0; ///< FIFO scan position
    u64 nProbes = 0;
    u64 nSkips = 0;
};

} // namespace h2::core
