#include "core/remap_table.h"

#include "common/log.h"

namespace h2::core {

RemapTable::RemapTable(u64 flatSectors, u64 nmFlatSectors, u64 cacheSectors,
                       u64 fmSectors)
    : nFlat(flatSectors), nNmFlat(nmFlatSectors), nCache(cacheSectors),
      nFm(fmSectors), remapOverride(cacheSectors + nmFlatSectors),
      invOverride(cacheSectors + nmFlatSectors)
{
    h2_assert(nFlat == nNmFlat + nFm,
              "flat space must be NM flat region + FM");
    // Migration churn is NM-scale: the steady-state override
    // population tracks the NM sector count, which the layout passed
    // in here knows exactly. Reserving it up-front means the tables
    // never rehash mid-run (the table still grows if a long run
    // accumulates stale FM-resident overrides past the bound).
    remapOverride.reserveExact(nCache + nNmFlat);
    invOverride.reserveExact(nCache + nNmFlat);
}

Loc
RemapTable::lookup(u64 flatSector) const
{
    h2_assert(flatSector < nFlat, "remap lookup out of range: ", flatSector);
    if (const Loc *loc = remapOverride.find(flatSector))
        return *loc;
    if (flatSector < nNmFlat)
        return Loc{true, nCache + flatSector};
    return Loc{false, flatSector - nNmFlat};
}

void
RemapTable::update(u64 flatSector, Loc loc)
{
    h2_assert(flatSector < nFlat, "remap update out of range");
    if (loc.inNm)
        h2_assert(loc.idx < nCache + nNmFlat,
                  "remap to bad NM location ", loc.idx);
    else
        h2_assert(loc.idx < nFm, "remap to bad FM location ", loc.idx);
    remapOverride.set(flatSector, loc);
}

std::optional<u64>
RemapTable::invLookup(u64 nmLoc) const
{
    h2_assert(nmLoc < nCache + nNmFlat, "invLookup out of range: ", nmLoc);
    if (const std::optional<u64> *sector = invOverride.find(nmLoc))
        return *sector;
    if (nmLoc >= nCache)
        return nmLoc - nCache;
    return std::nullopt;
}

void
RemapTable::invUpdate(u64 nmLoc, std::optional<u64> flatSector)
{
    h2_assert(nmLoc < nCache + nNmFlat, "invUpdate out of range");
    if (flatSector)
        h2_assert(*flatSector < nFlat, "invUpdate to bad flat sector");
    invOverride.set(nmLoc, flatSector);
}

} // namespace h2::core
