/**
 * @file
 * Configuration of the Hybrid2 DRAM Cache Migration Controller (DCMC).
 */

#pragma once

#include "common/types.h"
#include "common/units.h"

namespace h2::core {

/**
 * Tunables of Hybrid2 (paper sections 3 and 5.1). The defaults are the
 * best configuration found by the paper's design-space exploration:
 * 64 MB DRAM cache, 2 KB sectors, 256 B cache lines, 16-way XTA.
 */
struct Hybrid2Params
{
    u64 cacheBytes = 64 * MiB;  ///< NM slice used as DRAM-cache data array
    u32 sectorBytes = 2048;     ///< migration/tag granularity
    u32 lineBytes = 256;        ///< DRAM-cache line (fetch) granularity
    u32 ways = 16;              ///< XTA associativity
    u32 counterMax = 511;       ///< 9-bit per-sector access counter
    /** On-chip XTA lookup latency added to every request (the array fits
     *  on die; paper argues this is small). */
    Tick xtaLatencyPs = 626;    ///< ~2 core cycles at 3.2 GHz
    /** FM-access budget counter reset period (paper: 100K cycles). */
    Tick budgetResetPs = 100000 * 313;
    /** Fraction of NM reserved for the remap structures (paper: 3.5%). */
    double metadataFraction = 0.035;

    // --- Ablation switches (Figure 14) -------------------------------
    /** Migrate every FM sector evicted from the DRAM cache (Migr-All). */
    bool migrateAll = false;
    /** Never migrate (Migr-None). */
    bool migrateNone = false;
    /** Remap/inverted-remap/stack accesses are free: no NM traffic and
     *  no latency (No-Remap; also part of Cache-Only). */
    bool freeRemap = false;

    // --- Section 3.8 extension ----------------------------------------
    /**
     * "Using more free space": fraction of flat sectors the OS marks as
     * unused (Chameleon-style ISA-Alloc/ISA-Free hints). Swapping an
     * unused victim out of NM skips the sector copy - only the remap
     * tables change. 0 disables the extension (the paper's base design).
     */
    double unusedSectorFraction = 0.0;

    /** Cache lines per sector. */
    u32 linesPerSector() const { return sectorBytes / lineBytes; }
};

} // namespace h2::core
