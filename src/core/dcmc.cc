#include "core/dcmc.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/log.h"
#include "common/rng.h"
#include "sim/design_registry.h"

namespace h2::core {

Dcmc::Layout
Dcmc::computeLayout(const mem::MemSystemParams &sys,
                    const Hybrid2Params &cfg)
{
    h2_assert(isPowerOf2(cfg.sectorBytes) && isPowerOf2(cfg.lineBytes),
              "sector/line sizes must be powers of two");
    h2_assert(cfg.lineBytes >= mem::llcLineBytes &&
              cfg.lineBytes <= cfg.sectorBytes,
              "line size must be in [64, sectorBytes]");
    Layout l;
    u64 nmSectors = sys.nmBytes / cfg.sectorBytes;
    // Round the fractional metadata sector up: the remap structures
    // must fit entirely inside the reserved region.
    l.metaSectors = static_cast<u64>(
        std::ceil(double(nmSectors) * cfg.metadataFraction));
    l.nmLocs = nmSectors - l.metaSectors;
    l.cacheSectors = cfg.cacheBytes / cfg.sectorBytes;
    h2_assert(l.cacheSectors % cfg.ways == 0,
              "cache sectors not divisible by XTA ways");
    h2_assert(l.cacheSectors < l.nmLocs,
              "DRAM cache larger than the lined NM region");
    l.nmFlatSectors = l.nmLocs - l.cacheSectors;
    l.fmSectors = sys.fmBytes / cfg.sectorBytes;
    return l;
}

Dcmc::Dcmc(const mem::MemSystemParams &sysParams, const Hybrid2Params &params)
    : Dcmc(sysParams, params, computeLayout(sysParams, params))
{
}

Dcmc::Dcmc(const mem::MemSystemParams &sysParams, const Hybrid2Params &params,
           const Layout &l)
    : mem::HybridMemory(sysParams,
                        dram::DramParams::hbm2(sysParams.nmBytes),
                        dram::DramParams::farMemory(sysParams.fmTech,
                                                    sysParams.fmBytes)),
      cfg(params),
      metaSectors(l.metaSectors),
      nmLocs(l.nmLocs),
      cacheSectors(l.cacheSectors),
      nmFlatSectors(l.nmFlatSectors),
      fmSectors(l.fmSectors),
      tags(cacheSectors, params.ways, params.linesPerSector()),
      remap(nmFlatSectors + fmSectors, nmFlatSectors, cacheSectors,
            fmSectors),
      alloc(nmLocs, cacheSectors),
      freeFm(),
      migrPolicy(params.counterMax, params.budgetResetPs)
{
}

u64
Dcmc::flatCapacity() const
{
    return remap.flatSectors() * u64(cfg.sectorBytes);
}

Addr
Dcmc::nmByteAddr(u64 nmLoc, u64 offset) const
{
    h2_assert(nmLoc < nmLocs && offset < cfg.sectorBytes,
              "bad NM location/offset");
    return (metaSectors + nmLoc) * u64(cfg.sectorBytes) + offset;
}

Addr
Dcmc::fmByteAddr(u64 fmLoc, u64 offset) const
{
    h2_assert(fmLoc < fmSectors && offset < cfg.sectorBytes,
              "bad FM location/offset");
    return fmLoc * u64(cfg.sectorBytes) + offset;
}

void
Dcmc::metaAccess(AccessType type, mem::Timeline &tl)
{
    if (cfg.freeRemap) {
        ++nMetaSkipped;
        return;
    }
    u64 metaBytesTotal = metaSectors * u64(cfg.sectorBytes);
    if (metaBytesTotal == 0) {
        ++nMetaSkipped;
        return;
    }
    // Table reads gate the next step of the miss path; table writes are
    // posted and drain behind the request's serialized reads.
    bytes.nmMeta += 64;
    if (type == AccessType::Read)
        ++nMetaReads;
    else
        ++nMetaWrites;
    nmMetaRegionAccess(type, metaBytesTotal, metaRotor, tl);
}

void
Dcmc::drainStackTraffic(mem::Timeline &tl)
{
    for (u64 n = freeFm.takeNmSpills(); n > 0; --n)
        metaAccess(AccessType::Write, tl);
    for (u64 n = freeFm.takeNmFills(); n > 0; --n)
        metaAccess(AccessType::Read, tl);
}

u64
Dcmc::allocateNmLoc(mem::Timeline &tl)
{
    if (!alloc.poolEmpty())
        return alloc.popPool();

    // Figure 8: FIFO scan for a flat victim, swap it out to a free FM
    // location, and hand its NM location to the cache. The scan's
    // inverted-remap reads and the victim copy-out all gate the demand
    // fetch that triggered the allocation, so they serialize.
    u64 victimLoc = alloc.findVictim(
        [&](u64 loc) { // pinned: sector has a live XTA entry
            auto flat = remap.invLookup(loc);
            return flat && tags.contains(*flat);
        },
        [&](u64) { // each probe reads the inverted remap table
            metaAccess(AccessType::Read, tl);
        });
    auto victimFlat = remap.invLookup(victimLoc);
    h2_assert(victimFlat, "victim scan returned an empty location");

    u64 fmLoc = freeFm.pop();
    drainStackTraffic(tl);

    if (sectorUnused(*victimFlat)) {
        // Section 3.8: the OS marked the victim unused, so its data
        // need not survive the move - skip the copy entirely.
        ++nFreeSwapOuts;
    } else {
        // Copy the whole victim sector NM -> FM: the read empties the
        // NM location (serialized, the fill reuses it); the FM write is
        // posted once the data is buffered.
        tl.serialize(nmc().access(nmByteAddr(victimLoc, 0), cfg.sectorBytes,
                                AccessType::Read, tl.now()));
        postWrite(*fm, fmByteAddr(fmLoc, 0), cfg.sectorBytes, tl.now());
        bytes.nmSwap += cfg.sectorBytes;
        bytes.fmSwap += cfg.sectorBytes;
    }

    remap.update(*victimFlat, Loc{false, fmLoc});
    metaAccess(AccessType::Write, tl);
    remap.invUpdate(victimLoc, std::nullopt);
    metaAccess(AccessType::Write, tl);

    alloc.setOwner(victimLoc, NmAllocator::Owner::CacheData);
    ++nSwapOuts;
    ++lifetimeSwapOuts;
    return victimLoc;
}

void
Dcmc::migrateSector(u64 victimFlat, XtaEntry &victim, mem::Timeline &tl)
{
    // Fetch the lines not yet present in NM. The reads of all missing
    // lines issue together (they spread over FM channels/banks) and the
    // miss path resumes once the slowest one lands; the NM fill writes
    // are posted as each line arrives.
    u32 lps = cfg.linesPerSector();
    Tick base = tl.now();
    Tick fetched = base;
    for (u32 i = 0; i < lps; ++i) {
        if (victim.validMask & (u64(1) << i))
            continue;
        u64 off = u64(i) * cfg.lineBytes;
        Tick rd = fmc().access(fmByteAddr(victim.fmLoc, off), cfg.lineBytes,
                             AccessType::Read, base);
        postWrite(*nm, nmByteAddr(victim.nmLoc, off), cfg.lineBytes, rd);
        fetched = std::max(fetched, rd);
        bytes.fmMigration += cfg.lineBytes;
        bytes.nmMigration += cfg.lineBytes;
    }
    tl.serialize(fetched);
    // The sector's home is now its NM location; its FM slot frees up.
    remap.update(victimFlat, Loc{true, victim.nmLoc});
    metaAccess(AccessType::Write, tl);
    // The inverted remap table was already updated at fill time
    // (section 3.4, case 2b).
    freeFm.push(victim.fmLoc);
    drainStackTraffic(tl);
    alloc.setOwner(victim.nmLoc, NmAllocator::Owner::Flat);
    ++nMigrations;
    ++lifetimeMigrations;
}

void
Dcmc::evictSectorToFm(u64 victimFlat, XtaEntry &victim, mem::Timeline &tl)
{
    // Write back dirty lines to the sector's FM home. The NM reads
    // sourcing the writebacks issue together and serialize (the NM
    // location must drain before the way is reused); the FM writes are
    // posted once each line is buffered.
    u32 lps = cfg.linesPerSector();
    Tick base = tl.now();
    Tick drained = base;
    for (u32 i = 0; i < lps; ++i) {
        if (!(victim.dirtyMask & (u64(1) << i)))
            continue;
        u64 off = u64(i) * cfg.lineBytes;
        Tick rd = nmc().access(nmByteAddr(victim.nmLoc, off), cfg.lineBytes,
                             AccessType::Read, base);
        postWrite(*fm, fmByteAddr(victim.fmLoc, off), cfg.lineBytes, rd);
        drained = std::max(drained, rd);
        bytes.nmWriteback += cfg.lineBytes;
        bytes.fmWriteback += cfg.lineBytes;
    }
    tl.serialize(drained);
    // The NM location returns to the cache pool; clear its occupant.
    remap.invUpdate(victim.nmLoc, std::nullopt);
    metaAccess(AccessType::Write, tl);
    alloc.pushPool(victim.nmLoc);
    ++nEvictionsToFm;
    (void)victimFlat;
}

void
Dcmc::evictEntry(u64 victimFlat, XtaEntry &victim, mem::Timeline &tl)
{
    if (!victim.inFm) {
        // Case 1 (section 3.6): the sector already lives in NM; simply
        // release the way. No data moves, no metadata changes.
        ++nReassignedNm;
        return;
    }
    bool migrate;
    if (cfg.migrateNone) {
        migrate = false;
    } else if (cfg.migrateAll) {
        migrate = true;
    } else {
        MigrationVerdict verdict = migrPolicy.decide(tags, victimFlat,
                                                     victim);
        migrate = verdict == MigrationVerdict::Migrate;
        if (verdict == MigrationVerdict::DeniedByCounter)
            ++nDeniedByCounter;
        else if (verdict == MigrationVerdict::DeniedByBudget)
            ++nDeniedByBudget;
    }
    if (migrate)
        migrateSector(victimFlat, victim, tl);
    else
        evictSectorToFm(victimFlat, victim, tl);
}

XtaEntry *
Dcmc::prepareWay(u64 flatSector, mem::Timeline &tl)
{
    XtaEntry *way = tags.victimWay(flatSector);
    if (tags.entryValid(*way)) {
        u64 victimFlat = tags.flatSectorOf(tags.setOf(flatSector), *way);
        evictEntry(victimFlat, *way, tl);
        tags.releaseWay(*way);
    }
    return way;
}

mem::MemResult
Dcmc::access(Addr addr, AccessType type, Tick now)
{
    h2_assert(addr + mem::llcLineBytes <= flatCapacity(),
              "access beyond flat capacity: ", addr);
    migrPolicy.advanceTo(now);

    u64 flatSector = addr / cfg.sectorBytes;
    u64 offsetInSector = addr % cfg.sectorBytes;
    u32 lineIdx = static_cast<u32>(offsetInSector / cfg.lineBytes);
    u64 lineBit = u64(1) << lineIdx;
    u64 lineOff = u64(lineIdx) * cfg.lineBytes;

    mem::Timeline tl(now);
    tl.advance(sys.controllerLatencyPs + cfg.xtaLatencyPs);
    bool fromNm;

    XtaEntry *entry = tags.find(flatSector);
    if (entry) {
        if (entry->inFm && entry->accessCounter < cfg.counterMax)
            ++entry->accessCounter;

        if (entry->validMask & lineBit) {
            // 1a: the line is in NM.
            ++nLineHits;
            tl.serialize(nmc().access(nmByteAddr(entry->nmLoc,
                                               offsetInSector),
                                    mem::llcLineBytes, type, tl.now()));
            bytes.nmDemand += mem::llcLineBytes;
            if (type == AccessType::Write)
                entry->dirtyMask |= lineBit;
            fromNm = true;
        } else {
            // 1b: sector tracked, line still in FM; fetch it. The
            // critical word returns with the FM read; the NM line fill
            // trails it off the critical path.
            ++nLineMisses;
            h2_assert(entry->inFm, "line miss on an NM-resident sector");
            migrPolicy.onDemandFmAccess();
            tl.serialize(fmc().access(fmByteAddr(entry->fmLoc, lineOff),
                                    cfg.lineBytes, AccessType::Read,
                                    tl.now()));
            postWrite(*nm, nmByteAddr(entry->nmLoc, lineOff),
                      cfg.lineBytes, tl.now());
            bytes.fmDemand += cfg.lineBytes;
            bytes.nmDemand += cfg.lineBytes;
            entry->validMask |= lineBit;
            if (type == AccessType::Write)
                entry->dirtyMask |= lineBit;
            fromNm = false;
        }
        flushPostedWrites(tl);
        recordService(type, fromNm, tl);
        return {tl, fromNm};
    }

    // 2: XTA miss - the remap-table read, the way eviction (writeback
    // or migration) and, for FM sectors, the NM allocation all gate the
    // demand fetch, in that order (Figure 7 + Figure 8).
    metaAccess(AccessType::Read, tl);
    Loc loc = remap.lookup(flatSector);

    XtaEntry *way = prepareWay(flatSector, tl);
    tags.fill(flatSector, *way);

    if (loc.inNm) {
        // 2a: link the NM-resident sector; everything is already here.
        ++nMissSectorNm;
        way->inFm = false;
        way->nmLoc = loc.idx;
        way->fmLoc = 0;
        way->validMask = (cfg.linesPerSector() == 64)
            ? ~u64(0) : ((u64(1) << cfg.linesPerSector()) - 1);
        way->dirtyMask = way->validMask; // paper's convention
        tl.serialize(nmc().access(nmByteAddr(loc.idx, offsetInSector),
                                mem::llcLineBytes, type, tl.now()));
        bytes.nmDemand += mem::llcLineBytes;
        fromNm = true;
    } else {
        // 2b: allocate NM space and fetch the requested line from FM.
        ++nMissSectorFm;
        u64 nmLoc = allocateNmLoc(tl);
        way->inFm = true;
        way->nmLoc = nmLoc;
        way->fmLoc = loc.idx;
        way->validMask = lineBit;
        way->dirtyMask = (type == AccessType::Write) ? lineBit : 0;
        way->accessCounter = 1;
        migrPolicy.onDemandFmAccess();
        tl.serialize(fmc().access(fmByteAddr(loc.idx, lineOff),
                                cfg.lineBytes, AccessType::Read,
                                tl.now()));
        // Critical word returned; the NM fill and the inverted-remap
        // write trail off the critical path.
        postWrite(*nm, nmByteAddr(nmLoc, lineOff), cfg.lineBytes,
                  tl.now());
        bytes.fmDemand += cfg.lineBytes;
        bytes.nmDemand += cfg.lineBytes;
        // Record the occupant in the inverted remap table now (even
        // though the sector is not migrated) so the allocator's victim
        // scan stays correct (section 3.4).
        remap.invUpdate(nmLoc, flatSector);
        metaAccess(AccessType::Write, tl);
        fromNm = false;
    }
    flushPostedWrites(tl);
    recordService(type, fromNm, tl);
    return {tl, fromNm};
}

bool
Dcmc::sectorUnused(u64 flatSector) const
{
    if (cfg.unusedSectorFraction <= 0.0)
        return false;
    // Deterministic pseudo-random marking, stable across the run (the
    // OS would communicate this via ISA-Alloc/ISA-Free instructions).
    double u = double(splitmix64(flatSector ^ 0x3323ad5cu) >> 11)
        * 0x1.0p-53;
    return u < cfg.unusedSectorFraction;
}

SectorView
Dcmc::inspect(u64 flatSector) const
{
    SectorView view;
    const XtaEntry *entry = tags.peek(flatSector);
    if (entry) {
        view.cached = true;
        view.validMask = entry->validMask;
        view.dirtyMask = entry->dirtyMask;
        view.home = entry->inFm ? Loc{false, entry->fmLoc}
                                : Loc{true, entry->nmLoc};
    } else {
        view.home = remap.lookup(flatSector);
    }
    return view;
}

void
Dcmc::checkInvariants() const
{
    // Per-entry placement invariants and NM-location uniqueness.
    u64 entriesInFm = 0;
    std::unordered_set<u64> nmLocsSeen;
    for (u64 set = 0; set < tags.numSets(); ++set) {
        for (u32 w = 0; w < tags.numWays(); ++w) {
            const XtaEntry &e = tags.entryAt(set, w);
            if (!tags.entryValid(e))
                continue;
            u64 flat = tags.flatSectorOf(set, e);
            h2_assert(nmLocsSeen.insert(e.nmLoc).second,
                      "two XTA entries share NM location ", e.nmLoc);
            auto occupant = remap.invLookup(e.nmLoc);
            h2_assert(occupant && *occupant == flat,
                      "inverted remap disagrees with XTA for sector ",
                      flat);
            if (e.inFm) {
                ++entriesInFm;
                h2_assert(alloc.owner(e.nmLoc) ==
                          NmAllocator::Owner::CacheData,
                          "cached FM sector in a non-cache NM location");
                Loc home = remap.lookup(flat);
                h2_assert(!home.inNm && home.idx == e.fmLoc,
                          "remap table disagrees with XTA FM pointer");
                h2_assert(e.validMask != 0, "cached sector with no lines");
            } else {
                h2_assert(alloc.owner(e.nmLoc) == NmAllocator::Owner::Flat,
                          "linked NM sector not owned by the flat space");
                Loc home = remap.lookup(flat);
                h2_assert(home.inNm && home.idx == e.nmLoc,
                          "remap table disagrees with XTA NM pointer");
            }
            h2_assert((e.dirtyMask & ~e.validMask) == 0,
                      "dirty line without a valid line");
        }
    }

    // Conservation: pool + cache-held + free FM slots == cache size.
    h2_assert(alloc.poolSize() + entriesInFm + freeFm.size() ==
              cacheSectors,
              "NM/FM location conservation violated: pool=",
              alloc.poolSize(), " cacheData=", entriesInFm,
              " stack=", freeFm.size(), " cacheSectors=", cacheSectors);
    // The stack depth must match the *lifetime* migration/swap balance:
    // the measured counters (nMigrations/nSwapOuts) restart at every
    // resetStats() while the stack keeps its depth across warm-up.
    h2_assert(lifetimeMigrations >= lifetimeSwapOuts,
              "more swap-outs than migrations ever happened");
    h2_assert(freeFm.size() == lifetimeMigrations - lifetimeSwapOuts,
              "Free-FM-Stack depth diverged from migration/swap counts");
    h2_assert(freeFm.size() <= cacheSectors,
              "Free-FM-Stack exceeded its paper bound");
}

void
Dcmc::resetStats()
{
    // Measured counters restart after warm-up; cache/remap/allocator
    // state (and the LRU clock) deliberately survives the reset.
    mem::HybridMemory::resetStats();
    tags.resetStats();
    bytes = DcmcTraffic{};
    nLineHits = 0;
    nLineMisses = 0;
    nMissSectorNm = 0;
    nMissSectorFm = 0;
    nMigrations = 0;
    nEvictionsToFm = 0;
    nReassignedNm = 0;
    nSwapOuts = 0;
    nDeniedByCounter = 0;
    nDeniedByBudget = 0;
    nMetaReads = 0;
    nMetaWrites = 0;
    nMetaSkipped = 0;
    nFreeSwapOuts = 0;
}

void
Dcmc::collectStats(StatSet &out) const
{
    mem::HybridMemory::collectStats(out);
    tags.collectStats(out, "dcmc.xta");
    out.add("dcmc.lineHits", double(nLineHits));
    out.add("dcmc.lineMisses", double(nLineMisses));
    out.add("dcmc.missSectorNm", double(nMissSectorNm));
    out.add("dcmc.missSectorFm", double(nMissSectorFm));
    out.add("dcmc.migrations", double(nMigrations));
    out.add("dcmc.evictionsToFm", double(nEvictionsToFm));
    out.add("dcmc.reassignedNm", double(nReassignedNm));
    out.add("dcmc.swapOuts", double(nSwapOuts));
    out.add("dcmc.deniedByCounter", double(nDeniedByCounter));
    out.add("dcmc.deniedByBudget", double(nDeniedByBudget));
    out.add("dcmc.metaReads", double(nMetaReads));
    out.add("dcmc.metaWrites", double(nMetaWrites));
    out.add("dcmc.metaSkipped", double(nMetaSkipped));
    out.add("dcmc.freeSwapOuts", double(nFreeSwapOuts));
    out.add("dcmc.bytes.nmDemand", double(bytes.nmDemand));
    out.add("dcmc.bytes.nmMeta", double(bytes.nmMeta));
    out.add("dcmc.bytes.nmMigration", double(bytes.nmMigration));
    out.add("dcmc.bytes.nmSwap", double(bytes.nmSwap));
    out.add("dcmc.bytes.nmWriteback", double(bytes.nmWriteback));
    out.add("dcmc.bytes.fmDemand", double(bytes.fmDemand));
    out.add("dcmc.bytes.fmWriteback", double(bytes.fmWriteback));
    out.add("dcmc.bytes.fmMigration", double(bytes.fmMigration));
    out.add("dcmc.bytes.fmSwap", double(bytes.fmSwap));
}

H2_REGISTER_DESIGN(hybrid2, [] {
    const Hybrid2Params defaults;
    sim::DesignInfo d;
    d.kind = sim::DesignKind::Hybrid2;
    d.name = "hybrid2";
    d.description =
        "the paper's DRAM Cache Migration Controller (default: best "
        "Table-DSE configuration)";
    d.figure12Order = 5;

    sim::ParamDef cache;
    cache.name = "cache";
    cache.type = sim::ParamDef::Type::U64;
    cache.description = "DRAM-cache slice of NM, MiB";
    cache.defU64 = defaults.cacheBytes / MiB;
    cache.minU64 = 1;
    cache.maxU64 = 1 * MiB; // 1 TiB expressed in MiB

    sim::ParamDef sector;
    sector.name = "sector";
    sector.type = sim::ParamDef::Type::U64;
    sector.description = "migration/tag granularity, bytes";
    sector.defU64 = defaults.sectorBytes;
    sector.minU64 = 64;
    sector.maxU64 = 1 * MiB;
    sector.powerOfTwo = true;

    sim::ParamDef line;
    line.name = "line";
    line.type = sim::ParamDef::Type::U64;
    line.description = "DRAM-cache line (fetch) granularity, bytes";
    line.defU64 = defaults.lineBytes;
    line.minU64 = 64;
    line.maxU64 = 1 * MiB;
    line.powerOfTwo = true;

    sim::ParamDef unused;
    unused.name = "unused";
    unused.type = sim::ParamDef::Type::F64;
    unused.description =
        "percentage of OS-unused sectors (section 3.8 extension)";
    unused.defF64 = defaults.unusedSectorFraction * 100.0;
    unused.minF64 = 0.0;
    unused.maxF64 = 100.0;

    auto makeFlag = [](const char *name, const char *descr) {
        sim::ParamDef f;
        f.name = name;
        f.type = sim::ParamDef::Type::Flag;
        f.description = descr;
        return f;
    };
    d.params = {
        cache, sector, line, unused,
        makeFlag("cacheonly", "cache mode only (Migr-None + No-Remap)"),
        makeFlag("migrall", "migrate every evicted FM sector (Migr-All)"),
        makeFlag("migrnone", "never migrate (Migr-None)"),
        makeFlag("noremap", "remap-structure accesses are free (No-Remap)"),
    };

    d.crossCheck = [](const sim::DesignSpec &spec) -> std::string {
        if (spec.u64Param("line") > spec.u64Param("sector"))
            return detail::concat("line (", spec.u64Param("line"),
                                  ") must not exceed sector (",
                                  spec.u64Param("sector"), ")");
        if (spec.flag("migrall") &&
            (spec.flag("migrnone") || spec.flag("cacheonly")))
            return "migrall conflicts with migrnone/cacheonly";
        return {};
    };

    d.factory = [](const sim::DesignSpec &spec,
                   const mem::MemSystemParams &mp, const mem::LlcView &)
        -> std::unique_ptr<mem::HybridMemory> {
        Hybrid2Params p;
        p.cacheBytes = spec.u64Param("cache") * MiB;
        p.sectorBytes = static_cast<u32>(spec.u64Param("sector"));
        p.lineBytes = static_cast<u32>(spec.u64Param("line"));
        p.unusedSectorFraction = spec.f64Param("unused") / 100.0;
        if (spec.flag("cacheonly")) {
            p.migrateNone = true;
            p.freeRemap = true;
        }
        if (spec.flag("migrall"))
            p.migrateAll = true;
        if (spec.flag("migrnone"))
            p.migrateNone = true;
        if (spec.flag("noremap"))
            p.freeRemap = true;
        return std::make_unique<Dcmc>(mp, p);
    };
    return d;
}())

} // namespace h2::core
