/**
 * @file
 * The DRAM Cache Migration Controller (DCMC) - Hybrid2's contribution.
 *
 * The DCMC (paper section 3) fronts every memory request. It owns:
 *  - the on-chip eXtended Tag Array (XTA),
 *  - the NM-resident remap / inverted remap tables and Free-FM-Stack,
 *  - the NM location allocator (boot carve-out, pool, FIFO victim scan),
 *  - the migration policy (access counters, net cost, FM budget).
 *
 * The access path follows Figure 7:
 *   1a XTA hit / line hit   -> serve 64 B from NM
 *   1b XTA hit / line miss  -> fetch one DRAM-cache line from FM into NM
 *   2a XTA miss, sector NM  -> link the NM sector into the XTA (no copy)
 *   2b XTA miss, sector FM  -> allocate NM space, fetch requested line
 *
 * Evictions (Figure 9) either re-assign the way (NM sectors), write back
 * dirty lines to FM, or migrate the sector into NM by fetching its
 * missing lines - without relocating anything inside NM, thanks to the
 * XTA's NM pointers.
 */

#pragma once

#include <string>

#include "core/free_fm_stack.h"
#include "core/hybrid2_params.h"
#include "core/migration_policy.h"
#include "core/nm_allocator.h"
#include "core/remap_table.h"
#include "core/xta.h"
#include "mem/hybrid_memory.h"

namespace h2::core {

/** Traffic breakdown counters (bytes) by purpose. */
struct DcmcTraffic
{
    u64 nmDemand = 0;    ///< 64 B serves and line fills into NM
    u64 nmMeta = 0;      ///< remap/inverted-remap/stack traffic
    u64 nmMigration = 0; ///< sector promotion line fetches written to NM
    u64 nmSwap = 0;      ///< victim sector reads during swap-out
    u64 nmWriteback = 0; ///< NM reads sourcing dirty-line writebacks
    u64 fmDemand = 0;    ///< line fetches read from FM
    u64 fmWriteback = 0; ///< dirty-line writebacks on cache eviction
    u64 fmMigration = 0; ///< line fetches read from FM for migration
    u64 fmSwap = 0;      ///< victim sector writes during swap-out
};

/** Test/debug view of one sector's current placement. */
struct SectorView
{
    Loc home;          ///< where the sector's backing data lives
    bool cached = false; ///< has a live XTA entry
    u64 validMask = 0;
    u64 dirtyMask = 0;
};

class Dcmc : public mem::HybridMemory
{
  public:
    Dcmc(const mem::MemSystemParams &sysParams,
         const Hybrid2Params &params);

    mem::MemResult access(Addr addr, AccessType type, Tick now) override;

    std::string name() const override { return "HYBRID2"; }
    u64 flatCapacity() const override;
    void checkInvariants() const override;
    void collectStats(StatSet &out) const override;
    void resetStats() override;

    // --- Introspection (tests, examples) -----------------------------
    const Hybrid2Params &params() const { return cfg; }
    const Xta &xta() const { return tags; }
    const RemapTable &remapTable() const { return remap; }
    const NmAllocator &allocator() const { return alloc; }
    const FreeFmStack &freeFmStack() const { return freeFm; }
    const MigrationPolicy &policy() const { return migrPolicy; }
    const DcmcTraffic &traffic() const { return bytes; }
    SectorView inspect(u64 flatSector) const;

    u64 migrations() const { return nMigrations; }
    u64 evictionsToFm() const { return nEvictionsToFm; }
    u64 swapOuts() const { return nSwapOuts; }
    u64 freeSwapOuts() const { return nFreeSwapOuts; }

    /** Section 3.8: is @p flatSector OS-marked as unused? */
    bool sectorUnused(u64 flatSector) const;

    u64 numFlatSectors() const { return remap.flatSectors(); }
    u32 sectorBytes() const { return cfg.sectorBytes; }

  private:
    /** NM carve-up and flat-space sizing computed once per Dcmc. */
    struct Layout
    {
        u64 metaSectors;
        u64 nmLocs;
        u64 cacheSectors;
        u64 nmFlatSectors;
        u64 fmSectors;
    };
    static Layout computeLayout(const mem::MemSystemParams &sys,
                                const Hybrid2Params &cfg);
    Dcmc(const mem::MemSystemParams &sysParams, const Hybrid2Params &params,
         const Layout &l);

    // Geometry helpers -------------------------------------------------
    Addr nmByteAddr(u64 nmLoc, u64 offset) const;
    Addr fmByteAddr(u64 fmLoc, u64 offset) const;

    /** Charge one 64 B metadata access in the NM metadata region.
     *  Reads serialize onto @p tl; writes are posted (overlap). */
    void metaAccess(AccessType type, mem::Timeline &tl);

    /** Drain Free-FM-Stack spill/fill traffic into metadata accesses. */
    void drainStackTraffic(mem::Timeline &tl);

    /** Make room in @p flatSector's XTA set (Figure 9); returns the way
     *  to fill. */
    XtaEntry *prepareWay(u64 flatSector, mem::Timeline &tl);

    /** Handle the eviction of @p victim (valid entry). */
    void evictEntry(u64 victimFlat, XtaEntry &victim, mem::Timeline &tl);

    /** Promote @p victim's sector into NM (migration). */
    void migrateSector(u64 victimFlat, XtaEntry &victim,
                       mem::Timeline &tl);

    /** Write @p victim's dirty lines back to FM and free its NM loc. */
    void evictSectorToFm(u64 victimFlat, XtaEntry &victim,
                         mem::Timeline &tl);

    /** Obtain an NM location for a newly cached FM sector (Figure 8). */
    u64 allocateNmLoc(mem::Timeline &tl);

    Hybrid2Params cfg;
    u64 metaSectors;
    u64 nmLocs;
    u64 cacheSectors;
    u64 nmFlatSectors;
    u64 fmSectors;

    Xta tags;
    RemapTable remap;
    NmAllocator alloc;
    FreeFmStack freeFm;
    MigrationPolicy migrPolicy;

    DcmcTraffic bytes;
    u64 metaRotor = 0; ///< spreads metadata accesses over the region

    // Stats ------------------------------------------------------------
    u64 nLineHits = 0;       ///< case 1a
    u64 nLineMisses = 0;     ///< case 1b
    u64 nMissSectorNm = 0;   ///< case 2a
    u64 nMissSectorFm = 0;   ///< case 2b
    u64 nMigrations = 0;
    u64 nEvictionsToFm = 0;
    u64 nReassignedNm = 0;   ///< case-1 evictions (NM sectors)
    u64 nSwapOuts = 0;
    u64 nDeniedByCounter = 0;
    u64 nDeniedByBudget = 0;
    u64 nMetaReads = 0;
    u64 nMetaWrites = 0;
    u64 nMetaSkipped = 0;    ///< ops elided by the No-Remap ablation
    u64 nFreeSwapOuts = 0;   ///< swap-outs that skipped the copy (3.8)

    // Lifetime counters: survive resetStats() so structural invariants
    // (Free-FM-Stack depth == migrations - swap-outs) stay checkable
    // after a warm-up reset.
    u64 lifetimeMigrations = 0;
    u64 lifetimeSwapOuts = 0;
};

} // namespace h2::core
