/**
 * @file
 * Table 1 reproduction: print the evaluated system configuration for
 * every NM:FM ratio used in the paper.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/units.h"
#include "sim/sim_config.h"

int
main(int argc, char **argv)
{
    using namespace h2;
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Table 1: system configuration", "Table 1", opts);

    for (u64 nmGb : {1, 2, 4}) {
        std::printf("--- NM:FM ratio %llu:16 ---\n",
                    static_cast<unsigned long long>(nmGb));
        auto cfg = sim::table1Config(nmGb * GiB);
        std::printf("%s\n", sim::describeConfig(cfg).c_str());
    }
    return 0;
}
