/**
 * @file
 * Figure 1 reproduction: average percentage of data brought into a 1 GB
 * DRAM cache but never used before eviction, vs. cache line size.
 * Paper series: 64B:0%  128B:6%  256B:10%  512B:15%  1KB:19%  2KB:22%
 * 4KB:26%.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/units.h"

int
main(int argc, char **argv)
{
    using namespace h2;
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 1: fetched-but-unused data vs. line size",
                  "Figure 1", opts);
    setLogQuiet(true);

    const double paper[] = {0, 6, 10, 15, 19, 22, 26};
    bench::Table table({"LineSize", "Wasted%(paper)", "Wasted%(sim)"},
                       opts.csv);
    auto runner = opts.makeRunner(1 * GiB);
    std::vector<std::string> specs;
    for (u32 line : {64, 128, 256, 512, 1024, 2048, 4096})
        specs.push_back("ideal:" + std::to_string(line));
    runner.submitSweep(opts.suite(), specs);
    int i = 0;
    for (u32 line : {64, 128, 256, 512, 1024, 2048, 4096}) {
        std::vector<double> wasted;
        for (const auto &w : opts.suite()) {
            const auto &m = runner.run(
                w, "ideal:" + std::to_string(line));
            wasted.push_back(
                m.detail.get("cache.wastedFetchFraction") * 100.0);
        }
        table.addRow({std::to_string(line), bench::fmt(paper[i++], 0),
                      bench::fmt(mean(wasted), 1)});
    }
    table.print();
    return 0;
}
