#!/usr/bin/env python3
"""CI perf-smoke gate: compare micro_components output to the reference.

Usage: check_perf_smoke.py <benchmark-json> <reference-json>

The benchmark JSON is google-benchmark's --benchmark_format=json
output; the reference (bench/perf_reference.json) carries per-leg
real_time nanoseconds and the relative tolerance. A gated leg fails
when measured > reference * (1 + tolerance); a gated leg missing from
the benchmark output also fails (a renamed or deleted leg must update
the reference, not silently drop out of the gate). Exit 0 = all legs
within tolerance, 1 = regression or missing leg, 2 = usage error.

Stdlib only — CI must not need pip.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        bench = json.load(f)
    with open(sys.argv[2]) as f:
        ref = json.load(f)

    tolerance = float(ref["tolerance"])
    measured = {}
    for b in bench.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        # Normalize to nanoseconds regardless of the leg's display unit.
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[b["time_unit"]]
        measured[b["name"]] = float(b["real_time"]) * scale

    failed = False
    for name, ref_ns in sorted(ref["reference_ns"].items()):
        limit = ref_ns * (1.0 + tolerance)
        got = measured.get(name)
        if got is None:
            print(f"FAIL {name}: not present in benchmark output "
                  f"(renamed/deleted legs must update the reference)")
            failed = True
            continue
        verdict = "FAIL" if got > limit else "ok"
        print(f"{verdict:4s} {name}: {got:.2f} ns "
              f"(reference {ref_ns:.2f} ns, limit {limit:.2f} ns)")
        if got > limit:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
