/**
 * @file
 * Figure 16 reproduction: FM traffic normalized to the FM-only
 * baseline, per MPKI class (lower is better).
 * Paper "All": MPOD 0.81, CHA 0.82, LGM 0.59, TAGLESS 0.53, DFC 0.40,
 * HYBRID2 0.67.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/units.h"

int
main(int argc, char **argv)
{
    using namespace h2;
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 16: normalized FM traffic (1:16)", "Figure 16",
                  opts);
    setLogQuiet(true);

    auto runner = opts.makeRunner(1 * GiB);
    bench::Table table({"Design", "High", "Medium", "Low", "All"},
                       opts.csv);
    auto suite = opts.suite();
    runner.submitSweep(suite, sim::evaluatedDesigns(),
                       /*withBaseline=*/true);
    for (const auto &spec : sim::evaluatedDesigns()) {
        auto g = bench::geomeansByClass(suite, [&](const auto &w) {
            double base = double(runner.run(w, "baseline").fmTrafficBytes);
            double design = double(runner.run(w, spec).fmTrafficBytes);
            return std::max(design / base, 1e-3);
        });
        table.addRow({spec, bench::fmt(g.high), bench::fmt(g.medium),
                      bench::fmt(g.low), bench::fmt(g.all)});
    }
    table.print();
    return 0;
}
