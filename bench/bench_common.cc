#include "bench_common.h"

#include <cstdio>
#include <cstring>
#include <functional>
#include <string_view>

#include "common/log.h"
#include "common/parse.h"
#include "workloads/workload_spec.h"

namespace h2::bench {

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    BenchOptions opts;
    if (const char *env = std::getenv("HYBRID2_BENCH_MODE"))
        opts.full = std::string(env) == "full";
    for (int i = 1; i < argc; ++i) {
        // Shared "--key=value" splitting with the design-spec and
        // experiment-file grammars (common/parse.h).
        auto [key, value] = keyValue(std::string_view(argv[i]));
        if (key == "--mode" && value == "full")
            opts.full = true;
        else if (key == "--mode" && value == "quick")
            opts.full = false;
        else if (key == "--csv" && value.empty())
            opts.csv = true;
        else if (key == "--instr")
            opts.instrPerCore = parseU64OrFatal("--instr", value);
        else if (key == "--jobs")
            opts.jobs = static_cast<u32>(parseU64OrFatal("--jobs", value));
        else if (key == "--out")
            opts.jsonOut = std::string(value);
        else if (key == "--workload") {
            // Resolve now: a typo fails before the sweep starts, and
            // trace files load once.
            opts.workloadOverrides.push_back(
                workloads::resolveWorkloadOrFatal(std::string(value)));
        } else
            h2_fatal("unknown bench option: ", argv[i],
                     " (use --mode=quick|full, --csv, --workload=SPEC, "
                     "--instr=N, --jobs=N, --out=PATH)");
    }
    return opts;
}

std::vector<workloads::Workload>
BenchOptions::suite() const
{
    if (!workloadOverrides.empty())
        return workloadOverrides;
    return full ? workloads::allWorkloads() : workloads::quickSuite();
}

Table::Table(std::vector<std::string> columns, bool csv)
    : header(std::move(columns)), csvMode(csv)
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    h2_assert(cells.size() == header.size(), "row width mismatch");
    rows.push_back(std::move(cells));
}

void
Table::print() const
{
    if (csvMode) {
        auto printCsvRow = [](const std::vector<std::string> &cells) {
            for (size_t i = 0; i < cells.size(); ++i)
                std::printf("%s%s", cells[i].c_str(),
                            i + 1 < cells.size() ? "," : "\n");
        };
        printCsvRow(header);
        for (const auto &row : rows)
            printCsvRow(row);
        return;
    }
    std::vector<size_t> widths(header.size());
    for (size_t i = 0; i < header.size(); ++i)
        widths[i] = header[i].size();
    for (const auto &row : rows)
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    auto printRow = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            std::printf("%-*s%s", int(widths[i]), cells[i].c_str(),
                        i + 1 < cells.size() ? "  " : "\n");
    };
    printRow(header);
    for (size_t i = 0; i < header.size(); ++i)
        std::printf("%s%s", std::string(widths[i], '-').c_str(),
                    i + 1 < header.size() ? "  " : "\n");
    for (const auto &row : rows)
        printRow(row);
}

std::string
fmt(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

void
banner(const std::string &title, const std::string &paperRef,
       const BenchOptions &opts)
{
    if (opts.csv)
        return;
    std::printf("== %s ==\n", title.c_str());
    std::printf("reproduces: %s (Hybrid2, HPCA 2020)\n", paperRef.c_str());
    std::printf("mode: %s (%llu instructions/core), jobs: %u\n\n",
                opts.full ? "full" : "quick",
                static_cast<unsigned long long>(opts.effectiveInstrPerCore()),
                opts.jobs ? opts.jobs : ThreadPool::defaultConcurrency());
}

ClassGeomeans
geomeansByClass(const std::vector<workloads::Workload> &suite,
                const std::function<double(const workloads::Workload &)>
                    &metric)
{
    std::vector<double> high, medium, low, all;
    for (const auto &w : suite) {
        double v = metric(w);
        // Degenerate points (a zero-traffic workload normalizing to
        // ratioOrZero's 0) are excluded rather than poisoning the
        // geomean, which is defined over strictly positive values.
        if (v <= 0.0)
            continue;
        all.push_back(v);
        switch (w.cls) {
          case workloads::MpkiClass::High: high.push_back(v); break;
          case workloads::MpkiClass::Medium: medium.push_back(v); break;
          case workloads::MpkiClass::Low: low.push_back(v); break;
        }
    }
    ClassGeomeans g;
    g.high = geomean(high);
    g.medium = geomean(medium);
    g.low = geomean(low);
    g.all = geomean(all);
    return g;
}

} // namespace h2::bench
