/**
 * @file
 * Figure 11 reproduction: Hybrid2 design-space exploration over DRAM
 * cache size {64,128} MB, sector size {2,4} KB, and cache line size
 * {64..512} B; geometric-mean speedup over the FM-only baseline.
 * The paper's best point: 64 MB cache, 2 KB sectors, 256 B lines.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/units.h"
#include "core/xta.h"

int
main(int argc, char **argv)
{
    using namespace h2;
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 11: Hybrid2 design-space exploration",
                  "Figure 11", opts);
    setLogQuiet(true);

    sim::Runner runner(opts.runConfig(1 * GiB));
    bench::Table table({"Cache", "Sector", "Line", "XTA(KiB)", "Geomean"},
                       opts.csv);
    for (u64 cacheMb : {64, 128}) {
        for (u32 sector : {2048u, 4096u}) {
            for (u32 line : {64u, 128u, 256u, 512u}) {
                core::Xta xta(cacheMb * MiB / sector, 16, sector / line);
                double xtaKib = double(xta.storageBytes()) / KiB;
                std::string spec = "hybrid2:cache=" +
                    std::to_string(cacheMb) + ",sector=" +
                    std::to_string(sector) + ",line=" +
                    std::to_string(line);
                std::vector<double> speedups;
                for (const auto &w : opts.suite())
                    speedups.push_back(runner.speedup(w, spec));
                table.addRow({std::to_string(cacheMb) + "MiB",
                              std::to_string(sector),
                              std::to_string(line),
                              bench::fmt(xtaKib, 0),
                              bench::fmt(geomean(speedups))});
            }
        }
    }
    table.print();
    std::printf("\npaper best: 64MiB cache, 2048B sectors, 256B lines "
                "(geomean 1.54)\n");
    return 0;
}
