/**
 * @file
 * Figure 11 reproduction: Hybrid2 design-space exploration over DRAM
 * cache size {64,128} MB, sector size {2,4} KB, and cache line size
 * {64..512} B; geometric-mean speedup over the FM-only baseline.
 * The paper's best point: 64 MB cache, 2 KB sectors, 256 B lines.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/units.h"
#include "core/xta.h"

int
main(int argc, char **argv)
{
    using namespace h2;
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 11: Hybrid2 design-space exploration",
                  "Figure 11", opts);
    setLogQuiet(true);

    // One design-point list drives both the up-front sweep submission
    // and the rendering loop, so the two can never drift apart.
    struct Point
    {
        u64 cacheMb;
        u32 sector;
        u32 line;
        std::string spec;
    };
    std::vector<Point> points;
    std::vector<std::string> specs;
    for (u64 cacheMb : {64, 128}) {
        for (u32 sector : {2048u, 4096u}) {
            for (u32 line : {64u, 128u, 256u, 512u}) {
                std::string spec = "hybrid2:cache=" +
                    std::to_string(cacheMb) + ",sector=" +
                    std::to_string(sector) + ",line=" +
                    std::to_string(line);
                points.push_back({cacheMb, sector, line, spec});
                specs.push_back(spec);
            }
        }
    }

    auto runner = opts.makeRunner(1 * GiB);
    runner.submitSweep(opts.suite(), specs, /*withBaseline=*/true);
    bench::Table table({"Cache", "Sector", "Line", "XTA(KiB)", "Geomean"},
                       opts.csv);
    for (const auto &p : points) {
        core::Xta xta(p.cacheMb * MiB / p.sector, 16, p.sector / p.line);
        double xtaKib = double(xta.storageBytes()) / KiB;
        std::vector<double> speedups;
        for (const auto &w : opts.suite())
            speedups.push_back(runner.speedup(w, p.spec));
        table.addRow({std::to_string(p.cacheMb) + "MiB",
                      std::to_string(p.sector), std::to_string(p.line),
                      bench::fmt(xtaKib, 0),
                      bench::fmt(geomean(speedups))});
    }
    table.print();
    std::printf("\npaper best: 64MiB cache, 2048B sectors, 256B lines "
                "(geomean 1.54)\n");
    return 0;
}
