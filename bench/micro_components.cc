/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot components:
 * XTA lookups, remap-table lookups, DRAM-device accesses, SRAM cache
 * operations, and trace generation throughput.
 */

#include <benchmark/benchmark.h>

#include "baselines/mea.h"
#include "cache/set_assoc_cache.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/dcmc.h"
#include "core/remap_table.h"
#include "core/xta.h"
#include "dram/dram_device.h"
#include "sim/runner.h"
#include "workloads/workload_registry.h"

namespace {

using namespace h2;

void
BM_XtaLookup(benchmark::State &state)
{
    core::Xta xta(32768, 16, 8);
    for (u64 s = 0; s < 32768; ++s)
        xta.fill(s, *xta.victimWay(s));
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(xta.find(rng.below(65536)));
}
BENCHMARK(BM_XtaLookup);

void
BM_RemapLookup(benchmark::State &state)
{
    core::RemapTable t(1 << 23, 1 << 19, 1 << 15, (1 << 23) - (1 << 19));
    Rng rng(2);
    for (u64 i = 0; i < 100000; ++i)
        t.update(rng.below(1 << 23), core::Loc{false, rng.below(1 << 20)});
    for (auto _ : state)
        benchmark::DoNotOptimize(t.lookup(rng.below(1 << 23)));
}
BENCHMARK(BM_RemapLookup);

/**
 * A/B leg for the FlatMap64 pre-reserve fix: the RemapTable reserves
 * its override maps up-front from the design bound (cache + NM-flat
 * sectors), so lookup latency must stay flat as migration overrides
 * accumulate — no mid-run rehash, stable probe distances. Compare the
 * per-Arg timings: a growth-policy regression shows up as lookup cost
 * climbing with the fill level.
 */
void
BM_RemapLookupPreReserved(benchmark::State &state)
{
    core::RemapTable t(1 << 23, 1 << 19, 1 << 15, (1 << 23) - (1 << 19));
    Rng rng(2);
    const u64 fill = static_cast<u64>(state.range(0));
    for (u64 i = 0; i < fill; ++i)
        t.update(rng.below(1 << 23), core::Loc{false, rng.below(1 << 20)});
    for (auto _ : state)
        benchmark::DoNotOptimize(t.lookup(rng.below(1 << 23)));
}
BENCHMARK(BM_RemapLookupPreReserved)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18);

void
BM_DramAccess(benchmark::State &state)
{
    dram::DramDevice dev(dram::DramParams::hbm2(1 * GiB));
    Rng rng(3);
    Tick now = 0;
    for (auto _ : state) {
        now += 1000;
        benchmark::DoNotOptimize(
            dev.access(rng.below(GiB / 64) * 64, 64, AccessType::Read,
                       now));
    }
}
BENCHMARK(BM_DramAccess);

void
BM_SramCacheAccess(benchmark::State &state)
{
    cache::CacheParams p{"bench", 8 * MiB, 16, 64,
                         cache::ReplPolicy::Lru};
    cache::SetAssocCache c(p);
    Rng rng(4);
    for (auto _ : state) {
        Addr a = rng.below(32 * MiB / 64) * 64;
        if (!c.access(a, AccessType::Read))
            c.insert(a, false);
    }
}
BENCHMARK(BM_SramCacheAccess);

void
BM_MeaTouch(benchmark::State &state)
{
    baselines::Mea mea(64);
    Rng rng(5);
    for (auto _ : state)
        mea.touch(rng.below(4096));
}
BENCHMARK(BM_MeaTouch);

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto &w = workloads::findWorkload("cg.D");
    auto src = w.makeSource(0, 8, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(src->next());
}
BENCHMARK(BM_TraceGeneration);

void
BM_DcmcAccess(benchmark::State &state)
{
    mem::MemSystemParams mp;
    mp.nmBytes = 64 * MiB;
    mp.fmBytes = 256 * MiB;
    core::Hybrid2Params hp;
    hp.cacheBytes = 4 * MiB;
    core::Dcmc d(mp, hp);
    Rng rng(6);
    Tick now = 0;
    u64 flat = d.flatCapacity();
    for (auto _ : state) {
        now += 2000;
        benchmark::DoNotOptimize(
            d.access(rng.below(flat / 64) * 64, AccessType::Read, now));
    }
}
BENCHMARK(BM_DcmcAccess);

void
BM_PagePermutation(benchmark::State &state)
{
    RandomPermutation perm(1 << 22, 9);
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(perm.map(rng.below(1 << 22)));
}
BENCHMARK(BM_PagePermutation);

/**
 * A/B leg for the batched scheduler: one small multi-core simulation
 * end to end, Arg = SystemConfig::stepBatch. Arg(1) is the scalar
 * pick-one-record-per-dispatch loop, Arg(64) the batched default;
 * both produce bit-identical Metrics (pinned by the equivalence
 * suite), so the timing delta is pure dispatch overhead.
 */
void
BM_BatchedDispatch(benchmark::State &state)
{
    const workloads::Workload &w = workloads::findWorkload("mcf");
    sim::RunConfig cfg;
    cfg.numCores = 4;
    cfg.instrPerCore = 20'000;
    cfg.warmupInstrPerCore = 0;
    cfg.seed = 42;
    cfg.stepBatch = static_cast<u32>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::simulateOne(cfg, w, "hybrid2"));
}
BENCHMARK(BM_BatchedDispatch)
    ->Arg(1)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
