/**
 * @file
 * Injected-load sweep of the queued memory controller.
 *
 * Runs one memory-intensive workload at increasing core counts
 * (1/2/4/8 — the injected load knob) for the two structurally
 * different contended designs (HYBRID2 and the DFC cache) and records
 * how average demand latency and the controller's measured queueing
 * delay respond. Two properties are asserted, and the bench exits
 * non-zero when either fails:
 *
 *  - average demand latency is monotonically non-decreasing in load
 *    (a queued model that got *faster* under contention is broken);
 *  - the measured queue delay is ~0 at the lightest load and strictly
 *    positive at the heaviest (the controller observes contention,
 *    not a constant).
 *
 * Emits a JSON artifact (default BENCH_load_sweep.json) with one
 * point per (design, cores) so CI keeps a contention-response
 * trajectory next to the wall-clock one.
 *
 * Options (bench_common.h): --mode, --instr=N, --workload=<spec>
 * (first override replaces the default lbm), --out=PATH, --csv.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "common/log.h"
#include "common/units.h"
#include "sim/runner.h"
#include "workloads/workload_spec.h"

namespace {

using namespace h2;

struct Point
{
    std::string design;
    u32 cores = 0;
    double avgLatencyPs = 0.0;
    double avgQueueDelayPs = 0.0;
    double fmBusUtilization = 0.0;
    double ipc = 0.0;
    Tick timePs = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace h2;
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Load sweep: latency vs injected load",
                  "queued-controller contention response (no paper "
                  "figure)",
                  opts);
    setLogQuiet(true);

    workloads::Workload workload =
        opts.workloadOverrides.empty()
            ? workloads::resolveWorkloadOrFatal("lbm")
            : opts.workloadOverrides.front();
    const std::vector<u32> coreCounts = {1, 2, 4, 8};
    const std::vector<std::string> designs = {"hybrid2", "dfc"};

    std::vector<Point> points;
    bool ok = true;
    for (const std::string &design : designs) {
        double prevLatency = 0.0;
        double firstQueueDelay = 0.0, lastQueueDelay = 0.0;
        for (u32 cores : coreCounts) {
            sim::RunConfig cfg = opts.runConfig(1 * GiB);
            cfg.numCores = cores;
            sim::Metrics m = sim::simulateOne(cfg, workload, design);

            Point p;
            p.design = m.design;
            p.cores = cores;
            p.avgLatencyPs = m.detail.get("mem.avgLatencyPs");
            p.avgQueueDelayPs = m.detail.get("mem.avgQueueDelayPs");
            p.fmBusUtilization = m.detail.get("fm.busUtilization");
            p.ipc = m.ipc;
            p.timePs = m.timePs;
            points.push_back(p);

            if (cores == coreCounts.front())
                firstQueueDelay = p.avgQueueDelayPs;
            lastQueueDelay = p.avgQueueDelayPs;

            // Monotone in load, with a hair of slack for near-equal
            // low-load points.
            if (p.avgLatencyPs < prevLatency * 0.995) {
                std::fprintf(stderr,
                             "FAIL: %s avg latency dropped under load "
                             "(%u cores: %.1f ps < %.1f ps)\n",
                             design.c_str(), cores, p.avgLatencyPs,
                             prevLatency);
                ok = false;
            }
            prevLatency = std::max(prevLatency, p.avgLatencyPs);
        }
        if (lastQueueDelay <= 0.0) {
            std::fprintf(stderr,
                         "FAIL: %s queue delay not positive at peak "
                         "load (%.3f ps)\n",
                         design.c_str(), lastQueueDelay);
            ok = false;
        }
        if (firstQueueDelay > lastQueueDelay) {
            std::fprintf(stderr,
                         "FAIL: %s queue delay shrank with load "
                         "(%.1f ps @ %u cores vs %.1f ps @ %u cores)\n",
                         design.c_str(), firstQueueDelay,
                         coreCounts.front(), lastQueueDelay,
                         coreCounts.back());
            ok = false;
        }
    }

    JsonWriter w;
    w.beginObject()
        .kv("bench", "load_sweep")
        .kv("mode", opts.full ? "full" : "quick")
        .kv("workload", workload.name)
        .kv("instr_per_core", opts.effectiveInstrPerCore())
        .kv("monotonic", ok);
    w.key("points").beginArray();
    for (const Point &p : points) {
        w.beginObject()
            .kv("design", p.design)
            .kv("cores", p.cores)
            .kv("avg_latency_ps", p.avgLatencyPs)
            .kv("avg_queue_delay_ps", p.avgQueueDelayPs)
            .kv("fm_bus_utilization", p.fmBusUtilization)
            .kv("ipc", p.ipc)
            .kv("time_ps", p.timePs)
            .endObject();
    }
    w.endArray().endObject();
    const std::string json = w.str() + "\n";

    const std::string outPath =
        opts.jsonOut.empty() ? "BENCH_load_sweep.json" : opts.jsonOut;
    std::FILE *out = std::fopen(outPath.c_str(), "w");
    if (!out)
        h2_fatal("cannot write ", outPath);
    std::fputs(json.c_str(), out);
    std::fclose(out);

    if (opts.csv) {
        std::fputs(json.c_str(), stdout);
    } else {
        std::printf("%-8s %5s %16s %18s %8s\n", "design", "cores",
                    "avg latency ps", "queue delay ps", "fm util");
        for (const Point &p : points)
            std::printf("%-8s %5u %16.1f %18.1f %8.3f\n",
                        p.design.c_str(), p.cores, p.avgLatencyPs,
                        p.avgQueueDelayPs, p.fmBusUtilization);
        std::printf("\n%s (wrote %s)\n",
                    ok ? "load response monotone"
                       : "LOAD RESPONSE VIOLATION",
                    outPath.c_str());
    }
    return ok ? 0 : 1;
}
