/**
 * @file
 * Self-timing wall-clock benchmark of the sweep engine.
 *
 * Runs a fixed (workload x design) sweep twice - serial (--jobs=1) and
 * parallel (the --jobs option, default 8) - verifies the two passes
 * produced bit-identical per-simulation Metrics, and emits a JSON
 * record (sims/sec, accesses/sec, parallel speedup) that seeds the
 * repo's performance trajectory: each perf PR re-runs this and appends
 * a point, so regressions show up as numbers, not vibes.
 *
 * Options (see bench_common.h): --mode, --instr=N, --jobs=N,
 * --out=PATH (default BENCH_wallclock.json), --csv (emit the JSON on
 * stdout instead of the human-readable summary). Exits non-zero if the
 * parallel pass is not bit-identical.
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "common/json.h"
#include "common/log.h"
#include "common/units.h"
#include "sim/phase_timers.h"

namespace {

using namespace h2;

struct PassResult
{
    u32 jobs = 0;
    double seconds = 0.0;
    u64 sims = 0;
    u64 accesses = 0;
    /** Per-phase attribution (summed across the pass's simulations —
     *  under jobs > 1 the phases overlap, so the sum can exceed
     *  `seconds`). */
    sim::PhaseTotals phases;
    std::map<std::string, sim::Metrics> results;

    double simsPerSec() const { return sims / seconds; }
    double accessesPerSec() const { return accesses / seconds; }
};

PassResult
runPass(const bench::BenchOptions &opts, u32 jobs)
{
    sim::phaseTimersReset();
    auto start = std::chrono::steady_clock::now();
    sim::SweepRunner runner(opts.runConfig(1 * GiB), jobs);
    runner.submitSweep(opts.suite(), sim::evaluatedDesigns(),
                       /*withBaseline=*/true);
    runner.waitAll();
    auto end = std::chrono::steady_clock::now();

    PassResult pass;
    pass.jobs = runner.jobs();
    pass.seconds = std::chrono::duration<double>(end - start).count();
    pass.phases = sim::phaseTimerTotals();
    pass.results = runner.results();
    pass.sims = pass.results.size();
    pass.accesses = runner.totalAccesses();
    return pass;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace h2;
    auto opts = bench::BenchOptions::parse(argc, argv);
    // Resolve the parallel job count before the banner so the header
    // reports what the timed pass actually uses (default 8, not the
    // hardware-concurrency fallback other benches get for jobs=0).
    if (!opts.jobs)
        opts.jobs = 8;
    bench::banner("Wall-clock: sweep engine throughput",
                  "perf trajectory (no paper figure)", opts);
    setLogQuiet(true);

    PassResult serial = runPass(opts, 1);
    PassResult parallel = runPass(opts, opts.jobs);

    bool identical = serial.results == parallel.results;
    double speedup = serial.seconds / parallel.seconds;
    // A container with fewer hardware threads than --jobs cannot show
    // a real parallel speedup; label the artifact machine-readably so
    // trajectory tooling skips the bogus ratio instead of footnoting it.
    bool parallelValid = ThreadPool::defaultConcurrency() > opts.jobs;

    auto passJson = [](JsonWriter &w, const PassResult &pass) {
        w.beginObject()
            .kv("jobs", pass.jobs)
            .kv("seconds", pass.seconds)
            .kv("setup_seconds", pass.phases.setupSeconds)
            .kv("warmup_seconds", pass.phases.warmupSeconds)
            .kv("measure_seconds", pass.phases.measureSeconds)
            .kv("sims_per_sec", pass.simsPerSec())
            .kv("accesses_per_sec", pass.accessesPerSec())
            .endObject();
    };
    JsonWriter w;
    w.beginObject()
        .kv("bench", "wallclock")
        .kv("mode", opts.full ? "full" : "quick")
        .kv("instr_per_core", opts.effectiveInstrPerCore())
        .kv("hardware_concurrency", ThreadPool::defaultConcurrency())
        .kv("sims", serial.sims)
        .kv("accesses_per_pass", serial.accesses);
    w.key("serial");
    passJson(w, serial);
    w.key("parallel");
    passJson(w, parallel);
    w.kv("parallel_speedup", speedup)
        .kv("parallel_valid", parallelValid)
        .kv("bit_identical", identical)
        .endObject();
    const std::string json = w.str() + "\n";

    const std::string outPath =
        opts.jsonOut.empty() ? "BENCH_wallclock.json" : opts.jsonOut;
    std::FILE *out = std::fopen(outPath.c_str(), "w");
    if (!out)
        h2_fatal("cannot write ", outPath);
    std::fputs(json.c_str(), out);
    std::fclose(out);

    if (opts.csv) {
        std::fputs(json.c_str(), stdout);
    } else {
        std::printf("sweep: %llu sims, %llu core accesses per pass\n",
                    static_cast<unsigned long long>(serial.sims),
                    static_cast<unsigned long long>(serial.accesses));
        std::printf("jobs=1:  %7.2fs  %6.2f sims/s  %.2e accesses/s\n",
                    serial.seconds, serial.simsPerSec(),
                    serial.accessesPerSec());
        std::printf("         phases: setup %.2fs  warmup %.2fs  "
                    "measure %.2fs\n",
                    serial.phases.setupSeconds,
                    serial.phases.warmupSeconds,
                    serial.phases.measureSeconds);
        std::printf("jobs=%-2u: %7.2fs  %6.2f sims/s  %.2e accesses/s\n",
                    parallel.jobs, parallel.seconds,
                    parallel.simsPerSec(), parallel.accessesPerSec());
        std::printf("parallel speedup: %.2fx (on %u hardware threads%s)\n",
                    speedup, ThreadPool::defaultConcurrency(),
                    parallelValid ? "" : "; NOT VALID - too few threads");
        std::printf("bit-identical results: %s\n",
                    identical ? "yes" : "NO - DETERMINISM BUG");
        std::printf("wrote %s\n", outPath.c_str());
    }

    if (!identical) {
        std::fprintf(stderr,
                     "bench_wallclock: parallel pass diverged from "
                     "serial pass\n");
        return 1;
    }
    return 0;
}
