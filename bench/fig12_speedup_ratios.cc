/**
 * @file
 * Figure 12 (a/b/c) reproduction: geometric-mean speedup over the
 * FM-only baseline per MPKI class for NM sizes of 1, 2 and 4 GB
 * (NM:FM = 1:16, 2:16, 4:16), across the six evaluated designs.
 *
 * Paper "All" geomeans at 1 GB: MPOD 1.318, CHA 1.371, LGM 1.429,
 * TAGLESS 1.417, DFC 1.547, HYBRID2 1.542.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/units.h"
#include "core/dcmc.h"

int
main(int argc, char **argv)
{
    using namespace h2;
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 12: speedup per MPKI class and NM:FM ratio",
                  "Figures 12a-12c", opts);
    setLogQuiet(true);

    for (u64 nmGb : {1, 2, 4}) {
        auto runner = opts.makeRunner(nmGb * GiB);
        runner.submitSweep(opts.suite(), sim::evaluatedDesigns(),
                           /*withBaseline=*/true);
        // Available-memory advantage over cache designs (paper caption).
        core::Hybrid2Params hp;
        mem::MemSystemParams mp;
        mp.nmBytes = nmGb * GiB;
        core::Dcmc probe(mp, hp);
        double morePct = 100.0 *
            (double(probe.flatCapacity()) / double(mp.fmBytes) - 1.0);

        if (!opts.csv)
            std::printf("--- %lluGB NM (1:%llu); Hybrid2 offers %.1f%% "
                        "more memory than caches ---\n",
                        static_cast<unsigned long long>(nmGb),
                        static_cast<unsigned long long>(16 / nmGb),
                        morePct);
        bench::Table table({"NM", "Design", "High", "Medium", "Low",
                            "All"},
                           opts.csv);
        auto suite = opts.suite();
        for (const auto &spec : sim::evaluatedDesigns()) {
            auto g = bench::geomeansByClass(suite, [&](const auto &w) {
                return runner.speedup(w, spec);
            });
            table.addRow({std::to_string(nmGb) + "GB", spec,
                          bench::fmt(g.high, 3), bench::fmt(g.medium, 3),
                          bench::fmt(g.low, 3), bench::fmt(g.all, 3)});
        }
        table.print();
        if (!opts.csv)
            std::printf("\n");
    }
    return 0;
}
