/**
 * @file
 * Figure 18 reproduction: dynamic memory energy normalized to the
 * FM-only baseline, per MPKI class.
 * Paper "All": MPOD 1.33, CHA 1.73, LGM 1.27, TAGLESS 1.59, DFC 1.48,
 * HYBRID2 1.69.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/units.h"

int
main(int argc, char **argv)
{
    using namespace h2;
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 18: normalized dynamic memory energy (1:16)",
                  "Figure 18", opts);
    setLogQuiet(true);

    auto runner = opts.makeRunner(1 * GiB);
    bench::Table table({"Design", "High", "Medium", "Low", "All"},
                       opts.csv);
    auto suite = opts.suite();
    runner.submitSweep(suite, sim::evaluatedDesigns(),
                       /*withBaseline=*/true);
    for (const auto &spec : sim::evaluatedDesigns()) {
        auto g = bench::geomeansByClass(suite, [&](const auto &w) {
            double base = runner.run(w, "baseline").dynamicEnergyPj;
            double design = runner.run(w, spec).dynamicEnergyPj;
            return design / base;
        });
        table.addRow({spec, bench::fmt(g.high), bench::fmt(g.medium),
                      bench::fmt(g.low), bench::fmt(g.all)});
    }
    table.print();
    return 0;
}
