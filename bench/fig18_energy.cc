/**
 * @file
 * Figure 18 reproduction: dynamic memory energy normalized to the
 * FM-only baseline, per MPKI class — measured by the per-operation
 * device energy model (bits read × rdPjPerBit + bits written ×
 * wrPjPerBit + activations × actPreNj).
 * Paper "All": MPOD 1.33, CHA 1.73, LGM 1.27, TAGLESS 1.59, DFC 1.48,
 * HYBRID2 1.69.
 *
 * A second section repeats the sweep with PCM far memory (--fm pcm's
 * RunConfig knob): asymmetric read/write energy makes FM-write-heavy
 * designs pay measurably more, and the endurance columns (FM write
 * traffic, per-bank wear imbalance) rank the designs on write-leveling
 * behavior. Emits a JSON artifact (default BENCH_fig18_energy.json)
 * with every cell of both sections.
 *
 * Normalizations are guarded by ratioOrZero: a degenerate zero-energy
 * baseline (zero-traffic workload) renders as 0 and is skipped by the
 * geomean instead of emitting inf/NaN into the table or the JSON.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "common/log.h"
#include "common/units.h"

namespace {

using namespace h2;

struct DesignRow
{
    std::string design;
    bench::ClassGeomeans normEnergy;
    double fmReadEnergyPj = 0.0;  ///< summed over the suite
    double fmWriteEnergyPj = 0.0; ///< summed over the suite
    double fmBytesWritten = 0.0;  ///< summed over the suite
    double maxBankWearDelta = 0.0; ///< worst imbalance over the suite
};

std::vector<DesignRow>
sweepSection(const bench::BenchOptions &opts,
             const std::vector<workloads::Workload> &suite,
             dram::FarMemTech fmTech, bool wear)
{
    sim::RunConfig cfg = opts.runConfig(1 * GiB);
    cfg.fm = fmTech;
    sim::SweepRunner runner(cfg, opts.jobs);
    runner.submitSweep(suite, sim::evaluatedDesigns(),
                       /*withBaseline=*/true);
    std::vector<DesignRow> rows;
    for (const auto &spec : sim::evaluatedDesigns()) {
        DesignRow row;
        row.design = spec;
        row.normEnergy = bench::geomeansByClass(suite, [&](const auto &w) {
            double base = runner.run(w, "baseline").dynamicEnergyPj;
            double design = runner.run(w, spec).dynamicEnergyPj;
            return ratioOrZero(design, base);
        });
        for (const auto &w : suite) {
            const sim::Metrics &m = runner.run(w, spec);
            row.fmReadEnergyPj += m.detail.get("fm.readEnergyPj");
            row.fmWriteEnergyPj += m.detail.get("fm.writeEnergyPj");
            row.fmBytesWritten += m.detail.get("fm.bytesWritten");
            if (wear)
                row.maxBankWearDelta =
                    std::max(row.maxBankWearDelta,
                             m.detail.get("fm.maxBankWearDelta"));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

void
printSection(const std::vector<DesignRow> &rows, bool wear, bool csv)
{
    std::vector<std::string> cols = {"Design", "High", "Medium", "Low",
                                     "All", "FM wr MiB", "FM wr/rd E"};
    if (wear)
        cols.push_back("Wear dMax KiB");
    bench::Table table(cols, csv);
    for (const DesignRow &r : rows) {
        std::vector<std::string> cells = {
            r.design,
            bench::fmt(r.normEnergy.high),
            bench::fmt(r.normEnergy.medium),
            bench::fmt(r.normEnergy.low),
            bench::fmt(r.normEnergy.all),
            bench::fmt(r.fmBytesWritten / double(MiB), 1),
            bench::fmt(ratioOrZero(r.fmWriteEnergyPj, r.fmReadEnergyPj)),
        };
        if (wear)
            cells.push_back(bench::fmt(r.maxBankWearDelta / double(KiB), 1));
        table.addRow(std::move(cells));
    }
    table.print();
}

void
writeSectionJson(JsonWriter &w, const std::vector<DesignRow> &rows)
{
    w.beginArray();
    for (const DesignRow &r : rows) {
        w.beginObject()
            .kv("design", r.design)
            .kv("norm_energy_high", r.normEnergy.high)
            .kv("norm_energy_medium", r.normEnergy.medium)
            .kv("norm_energy_low", r.normEnergy.low)
            .kv("norm_energy_all", r.normEnergy.all)
            .kv("fm_read_energy_pj", r.fmReadEnergyPj)
            .kv("fm_write_energy_pj", r.fmWriteEnergyPj)
            .kv("fm_bytes_written", r.fmBytesWritten)
            .kv("fm_max_bank_wear_delta", r.maxBankWearDelta)
            .endObject();
    }
    w.endArray();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace h2;
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 18: normalized dynamic memory energy (1:16)",
                  "Figure 18", opts);
    setLogQuiet(true);

    auto suite = opts.suite();
    auto dramRows =
        sweepSection(opts, suite, dram::FarMemTech::Dram, /*wear=*/false);
    auto pcmRows =
        sweepSection(opts, suite, dram::FarMemTech::Pcm, /*wear=*/true);

    if (!opts.csv)
        std::printf("-- DRAM far memory (paper configuration) --\n");
    printSection(dramRows, /*wear=*/false, opts.csv);
    if (!opts.csv)
        std::printf("\n-- PCM far memory (--fm pcm: asymmetric energy, "
                    "write endurance) --\n");
    printSection(pcmRows, /*wear=*/true, opts.csv);

    JsonWriter w;
    w.beginObject()
        .kv("bench", "fig18_energy")
        .kv("mode", opts.full ? "full" : "quick")
        .kv("instr_per_core", opts.effectiveInstrPerCore());
    w.key("dram");
    writeSectionJson(w, dramRows);
    w.key("pcm");
    writeSectionJson(w, pcmRows);
    w.endObject();
    const std::string json = w.str() + "\n";

    const std::string outPath =
        opts.jsonOut.empty() ? "BENCH_fig18_energy.json" : opts.jsonOut;
    std::FILE *out = std::fopen(outPath.c_str(), "w");
    if (!out)
        h2_fatal("cannot write ", outPath);
    std::fputs(json.c_str(), out);
    std::fclose(out);
    return 0;
}
