/**
 * @file
 * Figure 2 reproduction: min, max, and geometric-mean speedup over the
 * FM-only baseline for the motivation study - three migration schemes,
 * the Tagless cache, DFC at line sizes 128..4096, and the IDEAL cache
 * at line sizes 64..4096, all with 1 GB of NM.
 *
 * Paper geomeans: MPOD 1.32, CHA 1.37, LGM 1.43, TAGLESS 1.42,
 * DFC(128..4096) 1.09/1.25/1.44/1.55/1.54/1.40,
 * IDEAL(64..4096) 1.31/1.41/1.48/1.61/1.66/1.58/1.42.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/units.h"

int
main(int argc, char **argv)
{
    using namespace h2;
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 2: motivation - migration vs. DRAM caches",
                  "Figure 2", opts);
    setLogQuiet(true);

    std::vector<std::pair<std::string, double>> designs = {
        {"mempod", 1.32},     {"chameleon", 1.37}, {"lgm", 1.43},
        {"tagless", 1.42},    {"dfc:128", 1.09},   {"dfc:256", 1.25},
        {"dfc:512", 1.44},    {"dfc:1024", 1.55},  {"dfc:2048", 1.54},
        {"dfc:4096", 1.40},   {"ideal:64", 1.31},  {"ideal:128", 1.41},
        {"ideal:256", 1.48},  {"ideal:512", 1.61}, {"ideal:1024", 1.66},
        {"ideal:2048", 1.58}, {"ideal:4096", 1.42},
    };

    auto runner = opts.makeRunner(1 * GiB);
    {
        std::vector<std::string> specs;
        for (const auto &[spec, paperGeo] : designs)
            specs.push_back(spec);
        runner.submitSweep(opts.suite(), specs, /*withBaseline=*/true);
    }
    bench::Table table({"Design", "Min", "Max", "Geomean",
                        "Geomean(paper)"},
                       opts.csv);
    for (const auto &[spec, paperGeo] : designs) {
        Distribution d;
        std::vector<double> speedups;
        for (const auto &w : opts.suite()) {
            double s = runner.speedup(w, spec);
            d.sample(s);
            speedups.push_back(s);
        }
        table.addRow({spec, bench::fmt(d.min()), bench::fmt(d.max()),
                      bench::fmt(geomean(speedups)),
                      bench::fmt(paperGeo)});
    }
    table.print();
    return 0;
}
