/**
 * @file
 * Shared harness for the figure/table reproduction benches.
 *
 * Every bench binary accepts:
 *   --mode=quick|full   quick (default): representative 6-workload
 *                       subset, short traces - for CI and iteration.
 *                       full: all 30 workloads, longer traces - the
 *                       numbers recorded in EXPERIMENTS.md.
 *   --csv               machine-readable output
 *   --workload=<spec>   override the suite (repeatable): a Table 2
 *                       name, trace:<path>, or mix:<a>+<b>[:<n>]
 *                       (workloads/workload_spec.h)
 *   --instr=<n>         override instructions per core
 *   --jobs=<n>          parallel simulations (0 = all hardware threads;
 *                       the default). Results are bit-identical at any
 *                       job count - see sim::SweepRunner.
 *   --out=<path>        where benches that emit JSON write it
 */

#pragma once

#include <string>
#include <vector>

#include "sim/sweep_runner.h"
#include "workloads/workload_registry.h"

namespace h2::bench {

struct BenchOptions
{
    bool full = false;
    bool csv = false;
    u64 instrPerCore = 0; ///< 0 = pick by mode
    u32 jobs = 0;         ///< 0 = all hardware threads
    std::string jsonOut;  ///< --out=<path> for JSON-emitting benches
    /** --workload=<spec> overrides, resolved at parse time so trace
     *  files load exactly once. */
    std::vector<workloads::Workload> workloadOverrides;

    static BenchOptions parse(int argc, char **argv);

    u64
    effectiveInstrPerCore() const
    {
        if (instrPerCore)
            return instrPerCore;
        return full ? 3'000'000 : 300'000;
    }

    /** The workloads this bench run evaluates: the --workload
     *  overrides when given, else the mode's registry suite. */
    std::vector<workloads::Workload> suite() const;

    sim::RunConfig
    runConfig(u64 nmBytes) const
    {
        sim::RunConfig cfg;
        cfg.nmBytes = nmBytes;
        cfg.instrPerCore = effectiveInstrPerCore();
        // Warm caches and remap state before measuring, like the
        // paper's SimPoint-sliced methodology.
        cfg.warmupInstrPerCore = effectiveInstrPerCore();
        return cfg;
    }

    /** Sweep runner over @p nmBytes of NM with the --jobs worker count.
     *  Benches submit their whole sweep up front, then render. */
    sim::SweepRunner
    makeRunner(u64 nmBytes) const
    {
        return sim::SweepRunner(runConfig(nmBytes), jobs);
    }
};

/** Column-aligned (or CSV) table printer. */
class Table
{
  public:
    Table(std::vector<std::string> columns, bool csv);

    void addRow(std::vector<std::string> cells);
    void print() const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
    bool csvMode;
};

/** Format a double with @p decimals digits. */
std::string fmt(double v, int decimals = 2);

/** Print a bench banner with the paper artifact it reproduces. */
void banner(const std::string &title, const std::string &paperRef,
            const BenchOptions &opts);

/** Geometric means of @p metric per MPKI class and overall.
 *  Non-positive metric values (degenerate points guarded to 0 via
 *  ratioOrZero) are skipped — a geomean is only defined over strictly
 *  positive values. */
struct ClassGeomeans
{
    double high = 0.0;
    double medium = 0.0;
    double low = 0.0;
    double all = 0.0;
};

ClassGeomeans
geomeansByClass(const std::vector<workloads::Workload> &suite,
                const std::function<double(const workloads::Workload &)>
                    &metric);

} // namespace h2::bench
