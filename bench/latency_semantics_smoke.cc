/**
 * @file
 * CI guard for the critical-path latency semantics: the remap/metadata
 * structures the paper charges Hybrid2 for must be visible in the
 * simulator. Runs the same single-core workload under `hybrid2` and its
 * `noremap` ablation (remap-structure accesses free) and asserts the
 * full design's average miss latency strictly exceeds the ablation's.
 * A single core keeps the two access streams identical, so the only
 * difference is the serialized metadata traffic on the miss path.
 *
 * Exits 0 on success, 1 on violation (wired as a bench-smoke ctest).
 */

#include <cstdio>

#include "sim/runner.h"
#include "workloads/workload_spec.h"

int
main()
{
    using namespace h2;

    sim::RunConfig cfg;
    cfg.numCores = 1;
    cfg.instrPerCore = 60'000;
    cfg.warmupInstrPerCore = 20'000;
    cfg.seed = 42;

    workloads::Workload wl = workloads::resolveWorkloadOrFatal("mcf");
    sim::Metrics full = sim::simulateOne(cfg, wl, "hybrid2");
    sim::Metrics ablated = sim::simulateOne(cfg, wl, "hybrid2:noremap");

    double fullMiss = full.detail.get("mem.avgMissLatencyPs");
    double ablatedMiss = ablated.detail.get("mem.avgMissLatencyPs");
    std::printf("hybrid2 avg miss latency:         %10.1f ps\n", fullMiss);
    std::printf("hybrid2:noremap avg miss latency: %10.1f ps\n",
                ablatedMiss);

    if (!(fullMiss > ablatedMiss)) {
        std::fprintf(stderr,
                     "FAIL: remap metadata cost is invisible — hybrid2 "
                     "miss latency (%.1f ps) does not exceed the noremap "
                     "ablation's (%.1f ps)\n",
                     fullMiss, ablatedMiss);
        return 1;
    }
    std::printf("OK: remapping costs %.1f ps per miss on average\n",
                fullMiss - ablatedMiss);
    return 0;
}
