/**
 * @file
 * Figure 14 reproduction: Hybrid2 performance-factor breakdown.
 * Geometric-mean speedup for Cache-Only, Migr-All, Migr-None, No-Remap
 * and full Hybrid2.
 * Paper values: 1.43, 1.41, 1.39, 1.58, 1.54.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/units.h"

int
main(int argc, char **argv)
{
    using namespace h2;
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 14: Hybrid2 performance factors", "Figure 14",
                  opts);
    setLogQuiet(true);

    std::vector<std::tuple<std::string, std::string, double>> variants = {
        {"Cache-Only", "hybrid2:cacheonly", 1.43},
        {"Migr-All", "hybrid2:migrall", 1.41},
        {"Migr-None", "hybrid2:migrnone", 1.39},
        {"No-Remap", "hybrid2:noremap", 1.58},
        {"Hybrid2", "hybrid2", 1.54},
    };

    auto runner = opts.makeRunner(1 * GiB);
    {
        std::vector<std::string> specs;
        for (const auto &[name, spec, paper] : variants)
            specs.push_back(spec);
        runner.submitSweep(opts.suite(), specs, /*withBaseline=*/true);
    }
    bench::Table table({"Variant", "Geomean", "Geomean(paper)"},
                       opts.csv);
    for (const auto &[name, spec, paper] : variants) {
        std::vector<double> speedups;
        for (const auto &w : opts.suite())
            speedups.push_back(runner.speedup(w, spec));
        table.addRow({name, bench::fmt(geomean(speedups)),
                      bench::fmt(paper)});
    }
    table.print();
    return 0;
}
