/**
 * @file
 * Figure 15 reproduction: percentage of processor memory requests
 * served from NM, per MPKI class.
 * Paper "All": MPOD 40%, CHA 69%, LGM 54%, TAGLESS 90%, DFC 85%,
 * HYBRID2 84%.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/units.h"

int
main(int argc, char **argv)
{
    using namespace h2;
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 15: requests served from NM (1:16)",
                  "Figure 15", opts);
    setLogQuiet(true);

    auto runner = opts.makeRunner(1 * GiB);
    bench::Table table({"Design", "High%", "Medium%", "Low%", "All%"},
                       opts.csv);
    auto suite = opts.suite();
    runner.submitSweep(suite, sim::evaluatedDesigns());
    for (const auto &spec : sim::evaluatedDesigns()) {
        auto g = bench::geomeansByClass(suite, [&](const auto &w) {
            // Clamp away zeros so the geomean (paper's aggregate) is
            // defined for workloads with no NM service.
            return std::max(runner.run(w, spec).servedFromNm, 1e-3);
        });
        table.addRow({spec, bench::fmt(g.high * 100, 0),
                      bench::fmt(g.medium * 100, 0),
                      bench::fmt(g.low * 100, 0),
                      bench::fmt(g.all * 100, 0)});
    }
    table.print();
    return 0;
}
