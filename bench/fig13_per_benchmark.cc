/**
 * @file
 * Figure 13 reproduction: per-benchmark speedup over the FM-only
 * baseline at the 1:16 NM:FM ratio for all six designs, benchmarks
 * sorted by MPKI (Table 2 order).
 */

#include <cstdio>

#include "bench_common.h"
#include "common/units.h"

int
main(int argc, char **argv)
{
    using namespace h2;
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 13: per-benchmark speedup (1:16)", "Figure 13",
                  opts);
    setLogQuiet(true);

    auto runner = opts.makeRunner(1 * GiB);
    runner.submitSweep(opts.suite(), sim::evaluatedDesigns(),
                       /*withBaseline=*/true);
    std::vector<std::string> cols = {"Benchmark"};
    for (const auto &spec : sim::evaluatedDesigns())
        cols.push_back(spec);
    bench::Table table(cols, opts.csv);
    for (const auto &w : opts.suite()) {
        std::vector<std::string> row = {w.name};
        for (const auto &spec : sim::evaluatedDesigns())
            row.push_back(bench::fmt(runner.speedup(w, spec)));
        table.addRow(row);
    }
    table.print();
    return 0;
}
