/**
 * @file
 * Table 2 reproduction: measured MPKI, footprint and memory traffic of
 * every workload on the FM-only baseline (the paper characterizes its
 * benchmarks the same way).
 */

#include <cstdio>

#include "bench_common.h"
#include "common/units.h"

int
main(int argc, char **argv)
{
    using namespace h2;
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Table 2: benchmark characteristics", "Table 2", opts);
    setLogQuiet(true);

    auto runner = opts.makeRunner(1 * GiB);
    runner.submitSweep(opts.suite(), {}, /*withBaseline=*/true);
    bench::Table table({"Benchmark", "Class", "Type", "MPKI(paper)",
                        "MPKI(sim)", "Footprint(GB)", "Traffic(GB/Binstr)"},
                       opts.csv);
    for (const auto &w : opts.suite()) {
        const auto &m = runner.run(w, "baseline");
        // The paper reports traffic over 1B instructions; rescale.
        double bytes = double(m.fmTrafficBytes);
        double perBillion = bytes / double(m.instructions) * 1e9;
        table.addRow({w.name, to_string(w.cls),
                      w.multithreaded ? "MT" : "MP",
                      bench::fmt(w.paperMpki, 1), bench::fmt(m.mpki, 1),
                      bench::fmt(double(w.footprintBytes) / GiB, 1),
                      bench::fmt(perBillion / GiB, 1)});
    }
    table.print();
    return 0;
}
