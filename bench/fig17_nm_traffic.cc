/**
 * @file
 * Figure 17 reproduction: NM traffic normalized to the baseline's
 * total memory traffic, per MPKI class.
 * Paper "All": MPOD 0.91, CHA 1.47, LGM 0.92, TAGLESS 1.72, DFC 1.60,
 * HYBRID2 1.69.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/units.h"

int
main(int argc, char **argv)
{
    using namespace h2;
    auto opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Figure 17: normalized NM traffic (1:16)", "Figure 17",
                  opts);
    setLogQuiet(true);

    auto runner = opts.makeRunner(1 * GiB);
    bench::Table table({"Design", "High", "Medium", "Low", "All"},
                       opts.csv);
    auto suite = opts.suite();
    runner.submitSweep(suite, sim::evaluatedDesigns(),
                       /*withBaseline=*/true);
    for (const auto &spec : sim::evaluatedDesigns()) {
        auto g = bench::geomeansByClass(suite, [&](const auto &w) {
            double base = double(runner.run(w, "baseline").fmTrafficBytes);
            double design = double(runner.run(w, spec).nmTrafficBytes);
            return std::max(design / base, 1e-3);
        });
        table.addRow({spec, bench::fmt(g.high), bench::fmt(g.medium),
                      bench::fmt(g.low), bench::fmt(g.all)});
    }
    table.print();
    return 0;
}
