/**
 * @file
 * Tests for the common substrate: units, stats, RNG, permutation, log,
 * the open-addressed flat map, and the thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <unordered_map>

#include "common/flat_map.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "common/units.h"

namespace h2 {
namespace {

TEST(Units, Constants)
{
    EXPECT_EQ(KiB, 1024u);
    EXPECT_EQ(MiB, 1024u * 1024u);
    EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
    using namespace literals;
    EXPECT_EQ(64_KiB, 64 * KiB);
    EXPECT_EQ(3_GiB, 3 * GiB);
}

TEST(Units, FormatBytes)
{
    EXPECT_EQ(formatBytes(64), "64B");
    EXPECT_EQ(formatBytes(2 * KiB), "2KiB");
    EXPECT_EQ(formatBytes(64 * MiB), "64MiB");
    EXPECT_EQ(formatBytes(GiB), "1GiB");
    EXPECT_EQ(formatBytes(GiB + GiB / 2), "1.50GiB");
}

TEST(Units, FormatTime)
{
    EXPECT_EQ(formatTime(500), "500ps");
    EXPECT_EQ(formatTime(3500), "3.50ns");
    EXPECT_EQ(formatTime(50 * psPerUs), "50.00us");
    EXPECT_EQ(formatTime(2 * psPerMs), "2.00ms");
}

TEST(Types, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
}

TEST(Types, PowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2048));
    EXPECT_FALSE(isPowerOf2(2049));
}

TEST(Types, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
}

TEST(Stats, DistributionBasics)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    d.sample(3.0);
    d.sample(1.0);
    d.sample(2.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
}

TEST(Stats, HistogramBucketsAndQuantile)
{
    Histogram h(10, 1.0);
    for (int i = 0; i < 100; ++i)
        h.sample(i % 10 + 0.5);
    EXPECT_EQ(h.count(), 100u);
    for (u32 b = 0; b < 10; ++b)
        EXPECT_EQ(h.bucketCount(b), 10u);
    EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
}

TEST(Stats, HistogramOverflowDoesNotCrash)
{
    Histogram h(4, 1.0);
    h.sample(100.0);
    h.sample(-5.0); // clamped to bucket 0
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.bucketCount(0), 1u);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, Mean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 3.0}), 2.0);
}

TEST(Stats, RatioOrZero)
{
    EXPECT_DOUBLE_EQ(ratioOrZero(6.0, 3.0), 2.0);
    EXPECT_DOUBLE_EQ(ratioOrZero(0.0, 3.0), 0.0);
    // Regression (fig18_energy): a zero-energy baseline must yield a
    // renderable 0, not inf/NaN in the table or the JSON artifact.
    EXPECT_DOUBLE_EQ(ratioOrZero(5.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(ratioOrZero(0.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(ratioOrZero(-5.0, 0.0), 0.0);
    double inf = std::numeric_limits<double>::infinity();
    double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_DOUBLE_EQ(ratioOrZero(inf, 2.0), 0.0);
    EXPECT_DOUBLE_EQ(ratioOrZero(2.0, inf), 0.0);
    EXPECT_DOUBLE_EQ(ratioOrZero(nan, 2.0), 0.0);
    EXPECT_DOUBLE_EQ(ratioOrZero(2.0, nan), 0.0);
    // Huge/tiny overflowing to inf is also clamped.
    EXPECT_DOUBLE_EQ(ratioOrZero(1e308, 1e-308), 0.0);
}

TEST(Stats, StatSet)
{
    StatSet s;
    s.add("a.b", 2.0);
    s.increment("a.b", 3.0);
    s.increment("fresh");
    EXPECT_TRUE(s.has("a.b"));
    EXPECT_FALSE(s.has("missing"));
    EXPECT_DOUBLE_EQ(s.get("a.b"), 5.0);
    EXPECT_DOUBLE_EQ(s.get("fresh"), 1.0);
    EXPECT_NE(s.toString().find("a.b"), std::string::npos);
}

TEST(Rng, Deterministic)
{
    Rng a(7), b(7), c(8);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowInRange)
{
    Rng r(1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng r(3);
    std::set<u64> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(5);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceProbability)
{
    Rng r(9);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, SplitMixMixes)
{
    EXPECT_NE(splitmix64(1), splitmix64(2));
    EXPECT_EQ(splitmix64(42), splitmix64(42));
}

class PermutationSizes : public ::testing::TestWithParam<u64>
{
};

TEST_P(PermutationSizes, IsBijection)
{
    u64 size = GetParam();
    RandomPermutation perm(size, 1234);
    std::set<u64> images;
    for (u64 i = 0; i < size; ++i) {
        u64 img = perm.map(i);
        ASSERT_LT(img, size);
        images.insert(img);
    }
    EXPECT_EQ(images.size(), size);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PermutationSizes,
                         ::testing::Values(1, 2, 3, 16, 100, 1000, 4096,
                                           5000));

TEST(Permutation, SeedChangesMapping)
{
    RandomPermutation a(1024, 1), b(1024, 2);
    int differing = 0;
    for (u64 i = 0; i < 1024; ++i)
        differing += a.map(i) != b.map(i);
    EXPECT_GT(differing, 900);
}

TEST(Permutation, DeterministicAcrossInstances)
{
    RandomPermutation a(512, 99), b(512, 99);
    for (u64 i = 0; i < 512; ++i)
        EXPECT_EQ(a.map(i), b.map(i));
}

TEST(Log, QuietFlagRoundTrip)
{
    setLogQuiet(true);
    EXPECT_TRUE(logQuiet());
    h2_warn("suppressed warning (not shown)");
    setLogQuiet(false);
    EXPECT_FALSE(logQuiet());
}

TEST(LogDeath, AssertPanics)
{
    EXPECT_DEATH(h2_assert(false, "boom"), "boom");
}

TEST(FlatMap64, InsertFindOverwrite)
{
    FlatMap64<u64> m;
    EXPECT_EQ(m.find(3), nullptr);
    m.set(3, 30);
    m.set(7, 70);
    ASSERT_NE(m.find(3), nullptr);
    EXPECT_EQ(*m.find(3), 30u);
    EXPECT_EQ(*m.find(7), 70u);
    m.set(3, 31);
    EXPECT_EQ(*m.find(3), 31u);
    EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMap64, GrowsPastInitialCapacityAndMatchesReference)
{
    FlatMap64<u64> m(4);
    std::unordered_map<u64, u64> ref;
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        u64 key = rng.below(5000);
        u64 value = rng.next();
        m.set(key, value);
        ref[key] = value;
    }
    EXPECT_EQ(m.size(), ref.size());
    for (const auto &[key, value] : ref) {
        ASSERT_NE(m.find(key), nullptr);
        ASSERT_EQ(*m.find(key), value);
    }
    EXPECT_EQ(m.find(999'999), nullptr);
}

TEST(FlatMap64Death, ReservedKey)
{
    FlatMap64<u64> m;
    EXPECT_DEATH(m.set(~u64(0), 1), "reserved");
}

TEST(ThreadPool, RunsAllTasksAcrossWorkers)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<u64> sum{0};
    for (u64 i = 1; i <= 1000; ++i)
        pool.submit([&sum, i] { sum += i; });
    pool.drain();
    EXPECT_EQ(sum.load(), 500500u);
}

TEST(ThreadPool, DrainIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> n{0};
    pool.submit([&] { ++n; });
    pool.drain();
    EXPECT_EQ(n.load(), 1);
    pool.submit([&] { ++n; });
    pool.submit([&] { ++n; });
    pool.drain();
    EXPECT_EQ(n.load(), 3);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> n{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&] { ++n; });
    }
    EXPECT_EQ(n.load(), 64);
}

} // namespace
} // namespace h2
