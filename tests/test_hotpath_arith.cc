/**
 * @file
 * Property tests pinning the hot-path shift/mask arithmetic to the
 * reference div/mod formulas it replaced: DramDevice::decode and the
 * burst sizing across randomized geometries (including non-power-of-two
 * channel/bank counts, which must take the exact fallback), and the
 * XTA's power-of-two set mapping.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "core/xta.h"
#include "dram/dram_device.h"

namespace h2 {
namespace {

/** The original decode arithmetic, kept verbatim as the oracle. */
void
referenceDecode(const dram::DramParams &cfg, Addr addr, u32 &channel,
                u64 &bank, u64 &row)
{
    u64 chunk = addr / cfg.interleaveBytes;
    channel = static_cast<u32>(chunk % cfg.channels);
    u64 chAddr = (chunk / cfg.channels) * cfg.interleaveBytes
        + (addr % cfg.interleaveBytes);
    bank = (chAddr / cfg.rowBytes) % cfg.banksPerChannel;
    row = chAddr / (u64(cfg.rowBytes) * cfg.banksPerChannel);
}

dram::DramParams
geometry(u32 channels, u32 banks, u32 rowBytes, u32 interleave)
{
    dram::DramParams p;
    p.name = "prop";
    p.capacityBytes = 64 * MiB;
    p.channels = channels;
    p.banksPerChannel = banks;
    p.rowBytes = rowBytes;
    p.interleaveBytes = interleave;
    return p;
}

TEST(DramDecode, MatchesReferenceAcrossRandomGeometries)
{
    Rng rng(101);
    // Non-powers of two exercise the div/mod fallback paths.
    const u32 channelChoices[] = {1, 2, 3, 4, 5, 6, 7, 8, 12, 16};
    const u32 bankChoices[] = {1, 2, 3, 4, 5, 8, 12, 16};
    const u32 rowChoices[] = {512, 1024, 1536, 2048, 3072, 4096};
    const u32 ilvChoices[] = {64, 128, 256, 512, 1024};
    for (int g = 0; g < 60; ++g) {
        auto p = geometry(channelChoices[rng.below(10)],
                          bankChoices[rng.below(8)],
                          rowChoices[rng.below(6)],
                          ilvChoices[rng.below(5)]);
        dram::DramDevice dev(p);
        for (int i = 0; i < 500; ++i) {
            Addr addr = rng.below(p.capacityBytes);
            u32 ch, refCh;
            u64 bank, row, refBank, refRow;
            dev.decode(addr, ch, bank, row);
            referenceDecode(p, addr, refCh, refBank, refRow);
            ASSERT_EQ(ch, refCh)
                << "ch=" << p.channels << " banks=" << p.banksPerChannel
                << " row=" << p.rowBytes << " addr=" << addr;
            ASSERT_EQ(bank, refBank)
                << "ch=" << p.channels << " banks=" << p.banksPerChannel
                << " row=" << p.rowBytes << " addr=" << addr;
            ASSERT_EQ(row, refRow)
                << "ch=" << p.channels << " banks=" << p.banksPerChannel
                << " row=" << p.rowBytes << " addr=" << addr;
        }
    }
}

TEST(DramDecode, Table1PresetsMatchReference)
{
    Rng rng(7);
    for (auto p : {dram::DramParams::hbm2(1 * GiB),
                   dram::DramParams::ddr4_3200(4 * GiB)}) {
        dram::DramDevice dev(p);
        for (int i = 0; i < 2000; ++i) {
            Addr addr = rng.below(p.capacityBytes);
            u32 ch, refCh;
            u64 bank, row, refBank, refRow;
            dev.decode(addr, ch, bank, row);
            referenceDecode(p, addr, refCh, refBank, refRow);
            ASSERT_EQ(ch, refCh);
            ASSERT_EQ(bank, refBank);
            ASSERT_EQ(row, refRow);
        }
    }
}

TEST(DramDecode, ProbeEqualsAccessForSingleChunk)
{
    // probeLatency must predict exactly what a mutating access of one
    // interleave chunk reports, at every point of a random sequence.
    Rng rng(17);
    auto p = geometry(3, 8, 2048, 256); // non-pow2 channels on purpose
    dram::DramDevice dev(p);
    Tick now = 0;
    for (int i = 0; i < 2000; ++i) {
        now += rng.below(3000);
        u64 chunks = p.capacityBytes / p.interleaveBytes;
        Addr addr = rng.below(chunks) * p.interleaveBytes;
        u32 bytes = 64u << rng.below(3); // 64..256 = full chunk
        Tick predicted = dev.probeLatency(addr, bytes, now);
        Tick done = dev.access(addr, bytes, AccessType::Read, now);
        ASSERT_EQ(now + predicted, done) << "access " << i;
    }
}

TEST(XtaGeometry, MaskShiftMatchesDivMod)
{
    Rng rng(29);
    for (int g = 0; g < 40; ++g) {
        u32 ways = 1u << rng.below(5);
        u64 requestedSets = 1 + rng.below(5000);
        core::Xta x(requestedSets * ways, ways, 8);
        u64 sets = x.numSets();
        // Rounded down to a power of two, never above the request.
        EXPECT_TRUE(isPowerOf2(sets));
        EXPECT_LE(sets, requestedSets);
        EXPECT_GT(2 * sets, requestedSets);
        EXPECT_EQ(x.capacitySectors(), sets * ways);
        for (int i = 0; i < 500; ++i) {
            u64 fs = rng.below(1u << 30);
            ASSERT_EQ(x.setOf(fs), fs % sets);
            ASSERT_EQ(x.tagOf(fs), fs / sets);
        }
    }
}

TEST(XtaGeometry, FlatSectorRoundTrip)
{
    core::Xta x(48, 4, 8); // 12 requested sets -> 8 (power of two)
    EXPECT_EQ(x.numSets(), 8u);
    EXPECT_EQ(x.capacitySectors(), 32u);
    Rng rng(31);
    for (int i = 0; i < 1000; ++i) {
        u64 fs = rng.below(1u << 20);
        ASSERT_EQ(x.flatSectorOf(x.setOf(fs), x.tagOf(fs)), fs);
    }
}

} // namespace
} // namespace h2
