/**
 * @file
 * Workload-spec grammar tests: registry names, trace:<path> replays,
 * and mix:<a>+<b>[:<n>] interleaves, plus their rejection paths.
 */

#include <gtest/gtest.h>

#include "workloads/trace_file.h"
#include "workloads/workload_spec.h"

namespace h2::workloads {
namespace {

std::string
dumpTempTrace(const std::string &name, const std::string &workload,
              u32 streams, TraceFormat format)
{
    std::string path = ::testing::TempDir() + "h2_spec_" + name;
    TraceData d = captureTrace(findWorkload(workload), streams, 42, 2000);
    writeTraceFile(path, d, format);
    return path;
}

std::string
resolveError(const std::string &spec)
{
    std::string error;
    auto w = resolveWorkload(spec, &error);
    EXPECT_FALSE(w.has_value()) << spec;
    EXPECT_FALSE(error.empty()) << spec;
    return error;
}

TEST(WorkloadSpec, RegistryNameResolves)
{
    auto w = resolveWorkload("lbm", nullptr);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->name, "lbm");
    EXPECT_EQ(w->cacheName(), "lbm");
    EXPECT_FALSE(w->trace);
    EXPECT_TRUE(w->mixParts.empty());
}

TEST(WorkloadSpec, UnknownNameRejected)
{
    std::string error = resolveError("lbn");
    EXPECT_NE(error.find("unknown workload"), std::string::npos) << error;
    EXPECT_NE(error.find("--list-workloads"), std::string::npos) << error;
}

TEST(WorkloadSpec, TraceResolves)
{
    std::string path = dumpTempTrace("ok.txt", "mcf", 2,
                                     TraceFormat::Text);
    auto w = resolveWorkload("trace:" + path, nullptr);
    ASSERT_TRUE(w.has_value());
    // Metrics identity is the captured workload; the memo key is the
    // spec, so a replay never aliases its synthetic original.
    EXPECT_EQ(w->name, "mcf");
    EXPECT_EQ(w->cacheName(), "trace:" + path);
    ASSERT_TRUE(w->trace);
    EXPECT_EQ(w->traceStreams, 2u);
    EXPECT_EQ(w->totalVirtualBytes(2), w->trace->meta.virtualBytes);
    EXPECT_GT(w->memRatio, 0.0);
    EXPECT_GT(w->writeFrac, 0.0);
}

TEST(WorkloadSpec, TraceCachedWhileReferenced)
{
    std::string path = dumpTempTrace("cache.bin", "mcf", 1,
                                     TraceFormat::Binary);
    auto a = resolveWorkload("trace:" + path, nullptr);
    auto b = resolveWorkload("trace:" + path, nullptr);
    ASSERT_TRUE(a && b);
    // Same spec while the first resolution is still alive: the file is
    // loaded once and shared.
    EXPECT_EQ(a->trace.get(), b->trace.get());
}

TEST(WorkloadSpec, TraceRejections)
{
    EXPECT_NE(resolveError("trace:").find("needs a file path"),
              std::string::npos);
    EXPECT_NE(resolveError("trace:/nonexistent/file").find("cannot read"),
              std::string::npos);
}

TEST(WorkloadSpec, MixResolves)
{
    auto w = resolveWorkload("mix:lbm+mcf", nullptr);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->name, "mix:lbm+mcf");
    EXPECT_EQ(w->cacheName(), "mix:lbm+mcf");
    ASSERT_EQ(w->mixParts.size(), 2u);
    EXPECT_EQ(w->mixWeight, 1u);
    // One shared space with a page-aligned slice per component.
    EXPECT_TRUE(w->multithreaded);
    EXPECT_EQ(w->footprintBytes, findWorkload("lbm").footprintBytes +
                                     findWorkload("mcf").footprintBytes);
    EXPECT_EQ(w->cls, MpkiClass::High);
    // Combined intensity sits between the components'.
    double lo = std::min(findWorkload("lbm").memRatio,
                         findWorkload("mcf").memRatio);
    double hi = std::max(findWorkload("lbm").memRatio,
                         findWorkload("mcf").memRatio);
    EXPECT_GE(w->memRatio, lo);
    EXPECT_LE(w->memRatio, hi);
}

TEST(WorkloadSpec, MixRatioSpelledInName)
{
    auto w = resolveWorkload("mix:xalanc+namd:4", nullptr);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->name, "mix:xalanc+namd:4");
    EXPECT_EQ(w->mixWeight, 4u);
    EXPECT_EQ(w->cls, MpkiClass::Low);
}

TEST(WorkloadSpec, MixMlpIsTheWidestComponents)
{
    // Both components sustain 2 outstanding misses: the mix must not
    // silently inherit the default of 8.
    auto low = resolveWorkload("mix:mcf+omnetpp", nullptr);
    ASSERT_TRUE(low.has_value());
    EXPECT_EQ(low->mlp, 2u);
    auto wide = resolveWorkload("mix:mcf+lbm", nullptr);
    ASSERT_TRUE(wide.has_value());
    EXPECT_EQ(wide->mlp, findWorkload("lbm").mlp);
}

TEST(WorkloadSpec, MixThreeComponents)
{
    auto w = resolveWorkload("mix:lbm+omnetpp+namd", nullptr);
    ASSERT_TRUE(w.has_value());
    ASSERT_EQ(w->mixParts.size(), 3u);
    EXPECT_EQ(w->cls, MpkiClass::High);
}

TEST(WorkloadSpec, MixRejections)
{
    EXPECT_NE(resolveError("mix:lbm").find("at least two"),
              std::string::npos);
    EXPECT_NE(resolveError("mix:lbm+").find("empty mix component"),
              std::string::npos);
    EXPECT_NE(resolveError("mix:lbm+nosuch").find("unknown mix component"),
              std::string::npos);
    EXPECT_NE(resolveError("mix:lbm+mcf:0").find("bad ratio"),
              std::string::npos);
    EXPECT_NE(resolveError("mix:lbm+mcf:banana").find("bad ratio"),
              std::string::npos);
    EXPECT_NE(resolveError("mix:lbm+mcf:99999").find("bad ratio"),
              std::string::npos);
}

TEST(WorkloadSpec, MixStreamsInterleaveWithOffsets)
{
    auto w = resolveWorkload("mix:mcf+xalanc:3", nullptr);
    ASSERT_TRUE(w.has_value());
    const u32 cores = 2;
    u64 slice0 = (findWorkload("mcf").totalVirtualBytes(cores) + 4095) &
                 ~u64(4095);
    u64 total = w->totalVirtualBytes(cores);
    auto src = w->makeSource(0, cores, 42);
    // Weighted round-robin: 3 records from mcf's slice, then 1 from
    // xalanc's, repeating; every address inside the shared space.
    for (int round = 0; round < 8; ++round) {
        for (int i = 0; i < 3; ++i) {
            TraceRecord rec = src->next();
            EXPECT_LT(rec.vaddr, slice0) << "round " << round;
        }
        TraceRecord rec = src->next();
        EXPECT_GE(rec.vaddr, slice0) << "round " << round;
        EXPECT_LT(rec.vaddr, total) << "round " << round;
    }
}

TEST(WorkloadSpec, MixPartsKeepStandalonePerCoreLayout)
{
    // A multi-program part splits per core inside its slice exactly
    // like a standalone run: core 1's sub-stream lands above core 0's.
    auto w = resolveWorkload("mix:mcf+xalanc", nullptr);
    ASSERT_TRUE(w.has_value());
    const u32 cores = 2;
    u64 perCore = findWorkload("mcf").perCoreFootprint(cores);
    auto c0 = w->makeSource(0, cores, 42);
    auto c1 = w->makeSource(1, cores, 42);
    EXPECT_LT(c0->next().vaddr, perCore);
    TraceRecord r1 = c1->next();
    EXPECT_GE(r1.vaddr, perCore);
    EXPECT_LT(r1.vaddr, 2 * perCore);
}

TEST(WorkloadSpec, FatalFlavourDiesOnBadSpec)
{
    EXPECT_DEATH(resolveWorkloadOrFatal("mix:lbm"), "at least two");
}

TEST(WorkloadSpec, GrammarHelpMentionsAllForms)
{
    std::string help = workloadSpecGrammarHelp();
    EXPECT_NE(help.find("trace:"), std::string::npos);
    EXPECT_NE(help.find("mix:"), std::string::npos);
}

} // namespace
} // namespace h2::workloads
