/**
 * @file
 * Tests for the Tagless DRAM cache and the Decoupled Fused Cache.
 */

#include <gtest/gtest.h>

#include "baselines/dfc_cache.h"
#include "common/rng.h"
#include "baselines/tagless_cache.h"
#include "common/units.h"

namespace h2::baselines {
namespace {

mem::MemSystemParams
smallSys()
{
    mem::MemSystemParams p;
    // These suites white-box the designs against the analytic
    // immediate-dispatch device model; the queued controller has its
    // own suite (test_mem_controller) and the queue=on goldens.
    p.queue.enabled = false;
    p.nmBytes = 8 * MiB;
    p.fmBytes = 64 * MiB;
    return p;
}

TEST(Tagless, PageGranularity)
{
    TaglessCache c(smallSys());
    EXPECT_EQ(c.cacheParams().lineBytes, 4096u);
    EXPECT_EQ(c.name(), "TAGLESS");
}

TEST(Tagless, PageFillOverFetches)
{
    TaglessCache c(smallSys());
    c.access(0, AccessType::Read, 0);
    // One 64 B request pulled a whole 4 KB page from FM.
    EXPECT_EQ(c.fmDevice().stats().bytesRead, 4096u);
}

TEST(Tagless, WholePageHitsAfterFill)
{
    TaglessCache c(smallSys());
    c.access(0, AccessType::Read, 0);
    for (Addr a = 64; a < 4096; a += 64) {
        auto r = c.access(a, AccessType::Read, 1000000 + a);
        EXPECT_TRUE(r.fromNm) << a;
    }
}

TEST(Tagless, NoTagLookupCost)
{
    // Per the paper, Tagless is modeled without any tag overheads: the
    // only NM traffic is data.
    TaglessCache c(smallSys());
    c.access(0, AccessType::Read, 0);
    EXPECT_EQ(c.nmDevice().stats().bytesWritten, 4096u);
    EXPECT_EQ(c.nmDevice().stats().bytesRead, 0u);
}

TEST(Dfc, DefaultLineIs1K)
{
    DfcCache c(smallSys());
    EXPECT_EQ(c.cacheParams().lineBytes, 1024u);
    EXPECT_EQ(c.name(), "DFC-1024");
}

TEST(Dfc, TagCacheAbsorbsRepeatLookups)
{
    DfcCache c(smallSys());
    c.access(0, AccessType::Read, 0);
    u64 missesAfterFirst = c.tagCacheMisses();
    EXPECT_GE(missesAfterFirst, 1u);
    c.access(64, AccessType::Read, 1000000);
    c.access(128, AccessType::Read, 2000000);
    EXPECT_EQ(c.tagCacheMisses(), missesAfterFirst); // same 1 KB line
    EXPECT_GE(c.tagCacheHits(), 2u);
}

TEST(Dfc, TagStoreTrafficInNm)
{
    DfcCache c(smallSys());
    c.access(0, AccessType::Read, 0);
    StatSet out;
    c.collectStats(out);
    // One tag-store read (lookup miss) and one write (fill update).
    EXPECT_GE(out.get("dfc.tagReads"), 1.0);
    EXPECT_GE(out.get("dfc.tagWrites"), 1.0);
    // Tag traffic appears as NM reads beyond pure data movement.
    EXPECT_GT(c.nmDevice().stats().reads, 0u);
}

TEST(Dfc, TagCacheMissCostsLatency)
{
    // A cold DFC lookup pays an NM tag read before the FM fetch, so it
    // must be slower than the overhead-free IDEAL at equal line size.
    auto sys = smallSys();
    DfcCache dfc(sys);
    DramCacheParams ip;
    ip.lineBytes = 1024;
    IdealCache ideal(sys, ip);
    Tick tDfc = dfc.access(0, AccessType::Read, 0).completeAt();
    Tick tIdeal = ideal.access(0, AccessType::Read, 0).completeAt();
    EXPECT_GT(tDfc, tIdeal);
}

TEST(Dfc, CustomLineSize)
{
    DfcCache c(smallSys(), 128);
    EXPECT_EQ(c.cacheParams().lineBytes, 128u);
    EXPECT_EQ(c.name(), "DFC-128");
    c.access(0, AccessType::Read, 0);
    EXPECT_EQ(c.fmDevice().stats().bytesRead, 128u);
}

TEST(Dfc, SmallLinesThrashTagCacheMore)
{
    // With 128 B lines there are 8x more tags than with 1 KB lines, so
    // a wide scan must produce more tag-cache misses.
    auto sys = smallSys();
    DfcCache small(sys, 128);
    DfcCache big(sys, 1024);
    Tick t = 0;
    Rng rng(3);
    for (int i = 0; i < 30000; ++i) {
        Addr a = rng.below(sys.fmBytes / 64) * 64;
        small.access(a, AccessType::Read, t);
        big.access(a, AccessType::Read, t);
        t += 20000;
    }
    EXPECT_GT(small.tagCacheMisses(), big.tagCacheMisses());
}

} // namespace
} // namespace h2::baselines
