/**
 * @file
 * Tests for the Chameleon baseline: competing-counter group swaps plus
 * the cache-mode NM slice.
 */

#include <gtest/gtest.h>

#include "baselines/chameleon.h"
#include "common/units.h"

namespace h2::baselines {
namespace {

mem::MemSystemParams
smallSys()
{
    mem::MemSystemParams p;
    // These suites white-box the designs against the analytic
    // immediate-dispatch device model; the queued controller has its
    // own suite (test_mem_controller) and the queue=on goldens.
    p.queue.enabled = false;
    p.nmBytes = 8 * MiB;
    p.fmBytes = 64 * MiB;
    return p;
}

/** Pure group-swap configuration: counter semantics are exact. */
ChameleonParams
chaParams(u32 k = 4)
{
    ChameleonParams p;
    p.competingK = k;
    p.cacheSliceBytes = 1 * MiB;
    p.cacheMode = false;
    return p;
}

/** Full configuration with the cache-mode slice enabled. */
ChameleonParams
chaCacheParams(u32 k = 4)
{
    ChameleonParams p = chaParams(k);
    p.cacheMode = true;
    return p;
}

TEST(Chameleon, FlatCapacityExcludesCacheSlice)
{
    Chameleon c(smallSys(), chaParams());
    EXPECT_EQ(c.flatCapacity(), (8 - 1 + 64) * MiB);
    EXPECT_EQ(c.name(), "CHA");
}

TEST(Chameleon, NativeSegmentsStartInNm)
{
    Chameleon c(smallSys(), chaParams());
    auto r = c.access(0, AccessType::Read, 0);
    EXPECT_TRUE(r.fromNm);
    EXPECT_TRUE(c.inNmSlot(0));
}

TEST(Chameleon, PersistentChallengerGetsPromoted)
{
    Chameleon c(smallSys(), chaParams(4));
    u64 nmGroupSegs = 7 * MiB / 2048;
    u64 fmSeg = nmGroupSegs; // first FM segment, group 0
    Addr addr = fmSeg * 2048;
    EXPECT_FALSE(c.inNmSlot(fmSeg));
    Tick t = 0;
    for (int i = 0; i < 6; ++i)
        c.access(addr, AccessType::Read, t += 100000);
    EXPECT_TRUE(c.inNmSlot(fmSeg));
    EXPECT_GE(c.swaps(), 1u);
    auto r = c.access(addr, AccessType::Read, t += 100000);
    EXPECT_TRUE(r.fromNm);
}

TEST(Chameleon, NmAccessesDefendTheIncumbent)
{
    Chameleon c(smallSys(), chaParams(4));
    u64 nmGroupSegs = 7 * MiB / 2048;
    Addr fmAddr = nmGroupSegs * 2048; // group 0 challenger
    Addr nmAddr = 0;                  // group 0 native
    Tick t = 0;
    // Interleave challenger and incumbent accesses 1:1 - the counter
    // never reaches K.
    for (int i = 0; i < 20; ++i) {
        c.access(fmAddr, AccessType::Read, t += 100000);
        c.access(nmAddr, AccessType::Read, t += 100000);
    }
    EXPECT_EQ(c.swaps(), 0u);
    EXPECT_FALSE(c.inNmSlot(nmGroupSegs));
}

TEST(Chameleon, DisplacedNativeStillServed)
{
    Chameleon c(smallSys(), chaParams(2));
    u64 nmGroupSegs = 7 * MiB / 2048;
    Addr fmAddr = nmGroupSegs * 2048;
    Tick t = 0;
    for (int i = 0; i < 4; ++i)
        c.access(fmAddr, AccessType::Read, t += 100000);
    ASSERT_TRUE(c.inNmSlot(nmGroupSegs));
    // The native segment 0 was displaced to the promoted segment's FM
    // home but must still be accessible (from FM).
    auto r = c.access(0, AccessType::Read, t += 100000);
    EXPECT_FALSE(r.fromNm);
}

TEST(Chameleon, SecondChallengerReplacesFirst)
{
    Chameleon c(smallSys(), chaParams(2));
    u64 nmGroupSegs = 7 * MiB / 2048;
    u64 segA = nmGroupSegs;               // group 0
    u64 segB = nmGroupSegs + nmGroupSegs; // also group 0
    Tick t = 0;
    for (int i = 0; i < 4; ++i)
        c.access(segA * 2048, AccessType::Read, t += 100000);
    ASSERT_TRUE(c.inNmSlot(segA));
    for (int i = 0; i < 8; ++i)
        c.access(segB * 2048, AccessType::Read, t += 100000);
    EXPECT_TRUE(c.inNmSlot(segB));
    EXPECT_FALSE(c.inNmSlot(segA));
    // All three segments remain reachable.
    c.access(segA * 2048, AccessType::Read, t += 100000);
    c.access(0, AccessType::Read, t += 100000);
}

TEST(Chameleon, DisplacedNativeCanWinItsSlotBack)
{
    // Regression: promoting the displaced native segment used to trip
    // the fmHomeOf(native) assertion.
    Chameleon c(smallSys(), chaParams(2));
    u64 nmGroupSegs = 7 * MiB / 2048;
    u64 challenger = nmGroupSegs; // group 0
    Tick t = 0;
    for (int i = 0; i < 4; ++i)
        c.access(challenger * 2048, AccessType::Read, t += 100000);
    ASSERT_TRUE(c.inNmSlot(challenger));
    // Now hammer the displaced native until it swaps back.
    for (int i = 0; i < 8; ++i)
        c.access(0, AccessType::Read, t += 100000);
    EXPECT_TRUE(c.inNmSlot(0));
    EXPECT_FALSE(c.inNmSlot(challenger));
    // Both remain reachable afterwards.
    c.access(challenger * 2048, AccessType::Read, t += 100000);
    c.access(0, AccessType::Read, t += 100000);
}

TEST(Chameleon, CacheModeAbsorbsFmReuse)
{
    Chameleon c(smallSys(), chaCacheParams(1000));
    u64 nmGroupSegs = 7 * MiB / 2048;
    Addr fmAddr = nmGroupSegs * 2048;
    Tick t = 0;
    // First touch only registers in the once-sketch; the second fill
    // brings the segment into the cache slice; the third hits.
    c.access(fmAddr, AccessType::Read, t += 100000);
    c.access(fmAddr + 64, AccessType::Read, t += 100000);
    auto r = c.access(fmAddr + 128, AccessType::Read, t += 100000);
    EXPECT_TRUE(r.fromNm); // cache-mode hit
    StatSet out;
    c.collectStats(out);
    EXPECT_GE(out.get("chameleon.cacheModeHits"), 1.0);
    EXPECT_GE(out.get("chameleon.cacheModeFills"), 1.0);
}

TEST(Chameleon, FirstTouchDoesNotFillCacheMode)
{
    Chameleon c(smallSys(), chaCacheParams(1000));
    u64 nmGroupSegs = 7 * MiB / 2048;
    Tick t = 0;
    // Stream over 100 distinct FM segments, one touch each: the cache
    // slice must stay unpolluted (no fills).
    for (u64 s = 0; s < 100; ++s)
        c.access((nmGroupSegs + s) * 2048, AccessType::Read, t += 100000);
    StatSet out;
    c.collectStats(out);
    EXPECT_DOUBLE_EQ(out.get("chameleon.cacheModeFills"), 0.0);
}

TEST(Chameleon, StreamingDoesNotTriggerSwaps)
{
    // 32 consecutive line touches per segment (a post-LLC stream) are
    // absorbed by the cache slice and must not earn group swaps.
    Chameleon c(smallSys(), chaCacheParams(14));
    u64 nmGroupSegs = 7 * MiB / 2048;
    Tick t = 0;
    for (u64 s = 0; s < 64; ++s)
        for (u64 line = 0; line < 32; ++line)
            c.access((nmGroupSegs + s) * 2048 + line * 64,
                     AccessType::Read, t += 100000);
    EXPECT_EQ(c.swaps(), 0u);
}

TEST(Chameleon, SwapChargesTraffic)
{
    Chameleon c(smallSys(), chaParams(2));
    u64 nmGroupSegs = 7 * MiB / 2048;
    Addr fmAddr = nmGroupSegs * 2048;
    Tick t = 0;
    u64 before = c.nmDevice().stats().totalBytes();
    for (int i = 0; i < 4; ++i)
        c.access(fmAddr, AccessType::Read, t += 100000);
    // The promotion moved 2 KB into the NM slot (plus cache-mode fills).
    EXPECT_GE(c.nmDevice().stats().totalBytes(), before + 4096);
}

TEST(Chameleon, StatsExported)
{
    Chameleon c(smallSys(), chaParams());
    c.access(0, AccessType::Read, 0);
    StatSet out;
    c.collectStats(out);
    EXPECT_TRUE(out.has("chameleon.swaps"));
    EXPECT_TRUE(out.has("chameleon.remapCacheMisses"));
}

} // namespace
} // namespace h2::baselines
