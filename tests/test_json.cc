/**
 * @file
 * Tests for the shared JSON serializer (common/json.h) and the
 * Metrics JSON/CSV emission built on it.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/json.h"
#include "sim/metrics.h"

namespace h2 {
namespace {

TEST(JsonWriter, CompactObject)
{
    JsonWriter w(/*pretty=*/false);
    w.beginObject()
        .kv("name", "lbm")
        .kv("count", u64(3))
        .kv("ratio", 0.5)
        .kv("ok", true)
        .endObject();
    EXPECT_EQ(w.str(),
              "{\"name\":\"lbm\",\"count\":3,\"ratio\":0.5,\"ok\":true}");
}

TEST(JsonWriter, PrettyNesting)
{
    JsonWriter w;
    w.beginObject().key("runs").beginArray().value(u64(1)).value(u64(2))
        .endArray().endObject();
    EXPECT_EQ(w.str(), "{\n  \"runs\": [\n    1,\n    2\n  ]\n}");
}

TEST(JsonWriter, EmptyContainers)
{
    JsonWriter w(false);
    w.beginObject().key("a").beginArray().endArray().key("o")
        .beginObject().endObject().endObject();
    EXPECT_EQ(w.str(), "{\"a\":[],\"o\":{}}");
}

TEST(JsonWriter, StringEscaping)
{
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
    EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    JsonWriter w(false);
    w.beginArray()
        .value(std::nan(""))
        .value(INFINITY)
        .value(1.5)
        .endArray();
    EXPECT_EQ(w.str(), "[null,null,1.5]");
}

TEST(JsonWriter, FormatDoubleNonFiniteRendersZero)
{
    // formatDouble feeds the CSV renderer directly (no null escape
    // hatch there): to_chars' "nan"/"inf" spellings must never reach a
    // report.
    EXPECT_EQ(JsonWriter::formatDouble(std::nan("")), "0");
    EXPECT_EQ(JsonWriter::formatDouble(INFINITY), "0");
    EXPECT_EQ(JsonWriter::formatDouble(-INFINITY), "0");
}

TEST(JsonWriter, DoubleRoundTrip)
{
    // Shortest-representation formatting survives a parse round trip.
    double v = 1.9841301329101368;
    EXPECT_EQ(std::stod(JsonWriter::formatDouble(v)), v);
    EXPECT_EQ(JsonWriter::formatDouble(0.0), "0");
}

TEST(MetricsJson, ContainsEveryScalarAndDetail)
{
    sim::Metrics m;
    m.workload = "lbm";
    m.design = "DFC-1024";
    m.instructions = 42;
    m.timePs = 1000;
    m.ipc = 1.5;
    m.detail.add("dfc.tagReads", 7.0);

    std::string json = m.toJson();
    EXPECT_NE(json.find("\"workload\": \"lbm\""), std::string::npos);
    EXPECT_NE(json.find("\"design\": \"DFC-1024\""), std::string::npos);
    EXPECT_NE(json.find("\"instructions\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"time_ps\": 1000"), std::string::npos);
    EXPECT_NE(json.find("\"ipc\": 1.5"), std::string::npos);
    EXPECT_NE(json.find("\"dfc.tagReads\": 7"), std::string::npos);
}

TEST(MetricsCsv, RowMatchesHeaderWidth)
{
    sim::Metrics m;
    m.workload = "lbm";
    m.design = "BASELINE";
    auto count = [](const std::string &s) {
        size_t n = 1;
        for (char c : s)
            n += c == ',';
        return n;
    };
    EXPECT_EQ(count(sim::Metrics::csvHeader()), count(m.toCsvRow()));
}

} // namespace
} // namespace h2
