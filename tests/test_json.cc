/**
 * @file
 * Tests for the shared JSON serializer (common/json.h) and the
 * Metrics JSON/CSV emission built on it.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/json.h"
#include "sim/metrics.h"

namespace h2 {
namespace {

TEST(JsonWriter, CompactObject)
{
    JsonWriter w(/*pretty=*/false);
    w.beginObject()
        .kv("name", "lbm")
        .kv("count", u64(3))
        .kv("ratio", 0.5)
        .kv("ok", true)
        .endObject();
    EXPECT_EQ(w.str(),
              "{\"name\":\"lbm\",\"count\":3,\"ratio\":0.5,\"ok\":true}");
}

TEST(JsonWriter, PrettyNesting)
{
    JsonWriter w;
    w.beginObject().key("runs").beginArray().value(u64(1)).value(u64(2))
        .endArray().endObject();
    EXPECT_EQ(w.str(), "{\n  \"runs\": [\n    1,\n    2\n  ]\n}");
}

TEST(JsonWriter, EmptyContainers)
{
    JsonWriter w(false);
    w.beginObject().key("a").beginArray().endArray().key("o")
        .beginObject().endObject().endObject();
    EXPECT_EQ(w.str(), "{\"a\":[],\"o\":{}}");
}

TEST(JsonWriter, StringEscaping)
{
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
    EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    JsonWriter w(false);
    w.beginArray()
        .value(std::nan(""))
        .value(INFINITY)
        .value(1.5)
        .endArray();
    EXPECT_EQ(w.str(), "[null,null,1.5]");
}

TEST(JsonWriter, FormatDoubleNonFiniteRendersZero)
{
    // formatDouble feeds the CSV renderer directly (no null escape
    // hatch there): to_chars' "nan"/"inf" spellings must never reach a
    // report.
    EXPECT_EQ(JsonWriter::formatDouble(std::nan("")), "0");
    EXPECT_EQ(JsonWriter::formatDouble(INFINITY), "0");
    EXPECT_EQ(JsonWriter::formatDouble(-INFINITY), "0");
}

TEST(JsonWriter, DoubleRoundTrip)
{
    // Shortest-representation formatting survives a parse round trip.
    double v = 1.9841301329101368;
    // stod is the independent reference parser here — using our own
    // h2::parseFloat would make the round trip self-certifying.
    EXPECT_EQ(std::stod(JsonWriter::formatDouble(v)), v); // h2lint: allow(R2)
    EXPECT_EQ(JsonWriter::formatDouble(0.0), "0");
}

TEST(MetricsJson, ContainsEveryScalarAndDetail)
{
    sim::Metrics m;
    m.workload = "lbm";
    m.design = "DFC-1024";
    m.instructions = 42;
    m.timePs = 1000;
    m.ipc = 1.5;
    m.detail.add("dfc.tagReads", 7.0);

    std::string json = m.toJson();
    EXPECT_NE(json.find("\"workload\": \"lbm\""), std::string::npos);
    EXPECT_NE(json.find("\"design\": \"DFC-1024\""), std::string::npos);
    EXPECT_NE(json.find("\"instructions\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"time_ps\": 1000"), std::string::npos);
    EXPECT_NE(json.find("\"ipc\": 1.5"), std::string::npos);
    EXPECT_NE(json.find("\"dfc.tagReads\": 7"), std::string::npos);
}

TEST(MetricsCsv, RowMatchesHeaderWidth)
{
    sim::Metrics m;
    m.workload = "lbm";
    m.design = "BASELINE";
    auto count = [](const std::string &s) {
        size_t n = 1;
        for (char c : s)
            n += c == ',';
        return n;
    };
    EXPECT_EQ(count(sim::Metrics::csvHeader()), count(m.toCsvRow()));
}

TEST(JsonParser, ScalarsAndContainers)
{
    std::string err;
    auto doc = parseJson(
        R"({"s":"hi","n":3,"f":0.5,"b":true,"z":null,"a":[1,2]})", &err);
    ASSERT_TRUE(doc) << err;
    ASSERT_TRUE(doc->isObject());
    EXPECT_EQ(doc->find("s")->asString(), "hi");
    EXPECT_EQ(doc->find("n")->asU64(), 3u);
    EXPECT_EQ(doc->find("f")->asDouble(), 0.5);
    EXPECT_TRUE(doc->find("b")->asBool());
    EXPECT_TRUE(doc->find("z")->isNull());
    ASSERT_TRUE(doc->find("a")->isArray());
    EXPECT_EQ(doc->find("a")->items.size(), 2u);
    EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(JsonParser, U64FullPrecision)
{
    // Counters round-trip at 64-bit precision, beyond double's 2^53.
    std::string err;
    auto doc = parseJson("18446744073709551615", &err);
    ASSERT_TRUE(doc) << err;
    EXPECT_EQ(doc->asU64(), ~u64(0));
}

TEST(JsonParser, StringEscapes)
{
    std::string err;
    auto doc = parseJson(
        "[\"a\\\"b\\\\c\", \"tab\\there\", \"A\\u00e9\"]", &err);
    ASSERT_TRUE(doc) << err;
    EXPECT_EQ(doc->items[0].asString(), "a\"b\\c");
    EXPECT_EQ(doc->items[1].asString(), "tab\there");
    // é decodes to the two-byte UTF-8 form of e-acute.
    EXPECT_EQ(doc->items[2].asString(), "A\xc3\xa9");
}

TEST(JsonParser, RejectsMalformedInput)
{
    std::string err;
    EXPECT_FALSE(parseJson("", &err));
    EXPECT_FALSE(parseJson("{", &err));
    EXPECT_FALSE(parseJson("{\"a\":}", &err));
    EXPECT_FALSE(parseJson("[1,]", &err));
    EXPECT_FALSE(parseJson("tru", &err));
    EXPECT_FALSE(parseJson("{} trailing", &err));
    EXPECT_FALSE(parseJson("\"unterminated", &err));
    // The last error message names a byte offset for debugging.
    EXPECT_NE(err.find("at byte"), std::string::npos);
}

TEST(JsonParser, WriterOutputRoundTrips)
{
    // The writer and parser are two halves of the same format: every
    // document the writer emits must parse back with equal values.
    JsonWriter w;
    w.beginObject()
        .kv("name", "lbm|dfc")
        .kv("count", ~u64(0))
        .kv("ratio", 1.9841301329101368)
        .kv("flag", false);
    w.key("nested").beginArray().value(u64(1)).null().endArray();
    w.endObject();

    std::string err;
    auto doc = parseJson(w.str(), &err);
    ASSERT_TRUE(doc) << err;
    EXPECT_EQ(doc->find("name")->asString(), "lbm|dfc");
    EXPECT_EQ(doc->find("count")->asU64(), ~u64(0));
    EXPECT_EQ(doc->find("ratio")->asDouble(), 1.9841301329101368);
    EXPECT_FALSE(doc->find("flag")->asBool());
    EXPECT_TRUE(doc->find("nested")->items[1].isNull());
}

TEST(MetricsJson, FromJsonRoundTripsExactly)
{
    sim::Metrics m;
    m.workload = "lbm";
    m.design = "DFC-1024";
    m.instructions = 123456789;
    m.timePs = 987654321;
    m.cycles = 4321;
    m.ipc = 1.9841301329101368;
    m.mpki = 0.1 + 0.2; // deliberately not exactly 0.3
    m.servedFromNm = 2.0 / 3.0;
    m.dynamicEnergyPj = 1e18;
    m.detail.add("dfc.tagReads", 7.125);
    m.detail.add("mc.queueDepth.mean", 1.0 / 3.0);

    std::string err;
    auto doc = parseJson(m.toJson(), &err);
    ASSERT_TRUE(doc) << err;
    auto back = sim::Metrics::fromJson(*doc, &err);
    ASSERT_TRUE(back) << err;
    // Field-exact: shortest-round-trip doubles reparse bit-identically,
    // which is what makes journal resume bit-identical.
    EXPECT_EQ(*back, m);
}

TEST(MetricsJson, FromJsonRejectsTypeMismatch)
{
    std::string err;
    auto doc = parseJson(R"({"workload": 7})", &err);
    ASSERT_TRUE(doc) << err;
    EXPECT_FALSE(sim::Metrics::fromJson(*doc, &err));
    EXPECT_NE(err.find("workload"), std::string::npos);

    auto arr = parseJson("[1,2]", &err);
    ASSERT_TRUE(arr) << err;
    EXPECT_FALSE(sim::Metrics::fromJson(*arr, &err));
}

} // namespace
} // namespace h2
