#!/usr/bin/env bash
# Kill -9 a journaled sweep partway through, resume it, and require the
# resumed report to be byte-identical to an uninterrupted run.
#
# Timing-robust by construction: wherever the kill lands (before the
# first point completes, mid-sweep, or after everything finished), the
# --resume run simulates exactly the missing points and the final
# report must come out identical — the assertion never depends on how
# far the killed run got.
#
# Usage: robustness_smoke.sh <h2sim-binary> <workdir>
set -u

H2SIM=$1
WORKDIR=$2

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
cd "$WORKDIR" || exit 1

ARGS=(--design baseline --design dfc --design hybrid2
      --workload lbm --workload mcf
      --nm-mib 1024 --fm-mib 16384 --cores 2 --instr 10000000
      --jobs 1 --format json)

"$H2SIM" "${ARGS[@]}" --out direct.json
rc=$?
if [ "$rc" -ne 0 ]; then
    echo "FAIL: reference run exited $rc"
    exit 1
fi

"$H2SIM" "${ARGS[@]}" --journal sweep.jnl --out killed.json &
pid=$!
sleep 1
kill -9 "$pid" 2> /dev/null
wait "$pid" 2> /dev/null

"$H2SIM" "${ARGS[@]}" --journal sweep.jnl --resume --out resumed.json
rc=$?
if [ "$rc" -ne 0 ]; then
    echo "FAIL: resumed run exited $rc"
    exit 1
fi

if ! cmp direct.json resumed.json; then
    echo "FAIL: resumed report differs from the uninterrupted run"
    exit 1
fi
echo "PASS: resumed report is byte-identical to the uninterrupted run"
