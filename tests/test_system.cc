/**
 * @file
 * End-to-end tests: full systems (cores + hierarchy + memory design)
 * running synthetic workloads.
 */

#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/runner.h"
#include "sim/system.h"

namespace h2::sim {
namespace {

SystemConfig
tinyConfig()
{
    SystemConfig cfg = table1Config(32 * MiB, 256 * MiB);
    cfg.numCores = 2;
    cfg.instrPerCore = 30'000;
    cfg.seed = 7;
    return cfg;
}

workloads::Workload
tinyWorkload()
{
    // A memory-bound streaming workload shrunk to the tiny system:
    // every access touches a new 64 B line, so DRAM-cache line
    // prefetching and migration both have something to win.
    workloads::Workload w = workloads::findWorkload("lbm");
    w.footprintBytes = 16 * MiB;
    w.accessStride = 64;
    return w;
}

Metrics
runDesign(const std::string &spec, u64 seed = 7)
{
    SystemConfig cfg = tinyConfig();
    cfg.seed = seed;
    // Shrink Hybrid2's cache to fit the tiny NM.
    std::string fullSpec = spec;
    if (spec == "hybrid2")
        fullSpec = "hybrid2:cache=2";
    System sys(cfg, tinyWorkload(),
               [&](const mem::MemSystemParams &mp,
                   const mem::LlcView &llc) {
                   return makeDesign(fullSpec, mp, llc);
               });
    sys.run();
    return sys.metrics();
}

class AllDesigns : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AllDesigns, RunsToCompletionWithSaneMetrics)
{
    Metrics m = runDesign(GetParam());
    EXPECT_GE(m.instructions, 2u * 30'000);
    EXPECT_GT(m.cycles, 0u);
    EXPECT_GT(m.ipc, 0.0);
    EXPECT_GT(m.memAccesses, 0u);
    EXPECT_GT(m.llcMisses, 0u);
    EXPECT_GE(m.servedFromNm, 0.0);
    EXPECT_LE(m.servedFromNm, 1.0);
    EXPECT_GT(m.fmTrafficBytes + m.nmTrafficBytes, 0u);
    EXPECT_GT(m.dynamicEnergyPj, 0.0);
    EXPECT_GT(m.flatCapacityBytes, 0u);
}

TEST_P(AllDesigns, Deterministic)
{
    Metrics a = runDesign(GetParam(), 11);
    Metrics b = runDesign(GetParam(), 11);
    EXPECT_EQ(a.timePs, b.timePs);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.fmTrafficBytes, b.fmTrafficBytes);
    EXPECT_EQ(a.nmTrafficBytes, b.nmTrafficBytes);
}

INSTANTIATE_TEST_SUITE_P(Designs, AllDesigns,
                         ::testing::Values("baseline", "hybrid2", "mempod",
                                           "chameleon", "lgm", "tagless",
                                           "dfc", "ideal:256"));

TEST(SystemTest, BaselineHasNoNmTraffic)
{
    Metrics m = runDesign("baseline");
    EXPECT_EQ(m.nmTrafficBytes, 0u);
    EXPECT_DOUBLE_EQ(m.servedFromNm, 0.0);
}

TEST(SystemTest, CacheDesignsServeReuseFromNm)
{
    Metrics m = runDesign("ideal:256");
    EXPECT_GT(m.servedFromNm, 0.1);
}

TEST(SystemTest, DesignsWithNmBeatBaseline)
{
    // gcc-like random reuse over 16 MiB with a 32 MiB NM: any NM design
    // must not be slower than FM-only.
    Metrics base = runDesign("baseline");
    for (const char *spec : {"ideal:256", "hybrid2", "tagless"}) {
        Metrics m = runDesign(spec);
        EXPECT_LT(m.timePs, base.timePs) << spec;
    }
}

TEST(SystemTest, MetricsToStringMentionsDesign)
{
    Metrics m = runDesign("hybrid2");
    EXPECT_NE(m.toString().find("HYBRID2"), std::string::npos);
}

TEST(SystemTest, SeedChangesPlacement)
{
    Metrics a = runDesign("hybrid2", 1);
    Metrics b = runDesign("hybrid2", 2);
    // Different page placement and trace seeds: almost surely
    // different cycle counts.
    EXPECT_NE(a.timePs, b.timePs);
}

TEST(SystemTest, WarmupExcludedFromMetrics)
{
    SystemConfig cfg = tinyConfig();
    cfg.warmupInstrPerCore = 20'000;
    System sys(cfg, tinyWorkload(),
               [](const mem::MemSystemParams &mp,
                  const mem::LlcView &llc) {
                   return makeDesign("ideal:256", mp, llc);
               });
    sys.run();
    Metrics m = sys.metrics();
    // Measured instructions cover only the post-warmup phase.
    EXPECT_GE(m.instructions, 2u * 30'000);
    EXPECT_LT(m.instructions, 2u * 40'000);
    EXPECT_GT(m.cycles, 0u);
}

TEST(SystemTest, WarmupImprovesCacheServiceFraction)
{
    // A warmed cache serves a larger share of the measured requests
    // than a cold one on the same workload.
    auto runWarm = [](u64 warmup) {
        SystemConfig cfg = tinyConfig();
        cfg.warmupInstrPerCore = warmup;
        workloads::Workload w = workloads::findWorkload("xalanc");
        w.footprintBytes = 16 * MiB;
        System sys(cfg, w,
                   [](const mem::MemSystemParams &mp,
                      const mem::LlcView &llc) {
                       return makeDesign("ideal:256", mp, llc);
                   });
        sys.run();
        return sys.metrics().servedFromNm;
    };
    EXPECT_GE(runWarm(60'000), runWarm(0));
}

TEST(SystemTest, WarmupResetKeepsMemoryState)
{
    // Direct check of HybridMemory::resetStats semantics: counters
    // zero, cached state survives.
    mem::MemSystemParams mp;
    mp.nmBytes = 8 * MiB;
    mp.fmBytes = 64 * MiB;
    mem::EmptyLlcView llc;
    auto design = makeDesign("ideal:256", mp, llc);
    design->access(0, AccessType::Read, 0);
    design->resetStats();
    EXPECT_EQ(design->requests(), 0u);
    EXPECT_EQ(design->fmDevice().stats().totalBytes(), 0u);
    // The line is still cached: the next access hits NM without any
    // new FM traffic.
    auto r = design->access(0, AccessType::Read, 1000000);
    EXPECT_TRUE(r.fromNm);
    EXPECT_EQ(design->fmDevice().stats().totalBytes(), 0u);
}

TEST(SystemTest, MultithreadedWorkloadSharesSpace)
{
    SystemConfig cfg = tinyConfig();
    workloads::Workload w = workloads::findWorkload("cg.D");
    w.footprintBytes = 8 * MiB;
    System sys(cfg, w,
               [](const mem::MemSystemParams &mp,
                  const mem::LlcView &llc) {
                   return makeDesign("ideal:256", mp, llc);
               });
    sys.run();
    EXPECT_GT(sys.metrics().llcMisses, 0u);
}

} // namespace
} // namespace h2::sim
