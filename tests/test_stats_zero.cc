/**
 * @file
 * Zero-count stat hygiene: every `mem.avg*` (and queue) average must
 * render as exactly 0 — not NaN, not a stale numerator — when its
 * population is empty, even while sibling stats with traffic are
 * non-zero. One targeted test per stat class, plus the mix-math guard
 * that used to let a zero-intensity component poison every derived
 * intensity with non-finite values.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/flat_baseline.h"
#include "baselines/ideal_cache.h"
#include "common/units.h"
#include "workloads/workload_spec.h"

namespace h2 {
namespace {

mem::MemSystemParams
sys()
{
    mem::MemSystemParams p;
    p.nmBytes = 8 * MiB;
    p.fmBytes = 64 * MiB;
    return p;
}

baselines::DramCacheParams
cacheParams()
{
    baselines::DramCacheParams p;
    p.lineBytes = 64;
    return p;
}

void
expectZeroAndFinite(const StatSet &s, const char *key)
{
    ASSERT_TRUE(s.has(key)) << key;
    EXPECT_TRUE(std::isfinite(s.get(key))) << key;
    EXPECT_DOUBLE_EQ(s.get(key), 0.0) << key;
}

// With no traffic at all, every average must be 0 and finite — the
// whole family at once, so a newly added mem.avg* stat cannot regress
// silently.
TEST(ZeroCountStats, AllAveragesZeroBeforeAnyTraffic)
{
    baselines::FlatBaseline b(sys());
    StatSet s;
    b.collectStats(s);
    for (const char *key :
         {"mem.avgLatencyPs", "mem.avgNmLatencyPs",
          "mem.avgMissLatencyPs", "mem.avgWritebackLatencyPs",
          "mem.avgQueueDelayPs", "fmq.avgReadQueueDelayPs",
          "fmq.avgWriteQueueDelayPs"})
        expectZeroAndFinite(s, key);
}

// avgNmLatencyPs: reads exist, NM hits do not (FM-only baseline).
TEST(ZeroCountStats, AvgNmLatencyZeroWithoutNmHits)
{
    baselines::FlatBaseline b(sys());
    b.access(0, AccessType::Read, 0);
    b.access(4096, AccessType::Read, 1000000);
    StatSet s;
    b.collectStats(s);
    EXPECT_GT(s.get("mem.avgLatencyPs"), 0.0);
    expectZeroAndFinite(s, "mem.avgNmLatencyPs");
}

// avgWritebackLatencyPs: reads exist, writebacks do not.
TEST(ZeroCountStats, AvgWritebackLatencyZeroWithoutWritebacks)
{
    baselines::FlatBaseline b(sys());
    b.access(0, AccessType::Read, 0);
    StatSet s;
    b.collectStats(s);
    EXPECT_GT(s.get("mem.avgLatencyPs"), 0.0);
    expectZeroAndFinite(s, "mem.avgWritebackLatencyPs");
}

// avgMissLatencyPs: demand reads exist but every one hit NM (warm the
// cache, reset, then re-touch) — the miss denominator is 0 while the
// hit-side stats are live.
TEST(ZeroCountStats, AvgMissLatencyZeroWhenEveryReadHitsNm)
{
    baselines::IdealCache c(sys(), cacheParams());
    c.access(0, AccessType::Read, 0); // fill
    c.resetStats();
    auto r = c.access(0, AccessType::Read, 10000000);
    ASSERT_TRUE(r.fromNm);
    StatSet s;
    c.collectStats(s);
    EXPECT_GT(s.get("mem.avgLatencyPs"), 0.0);
    EXPECT_GT(s.get("mem.avgNmLatencyPs"), 0.0);
    expectZeroAndFinite(s, "mem.avgMissLatencyPs");
}

// avgQueueDelayPs: demand traffic exists but queues are disabled — the
// aggregate must stay a hard 0, not divide by the demand count of a
// controller that never measured a wait.
TEST(ZeroCountStats, AvgQueueDelayZeroWithQueuesDisabled)
{
    mem::MemSystemParams p = sys();
    p.queue.enabled = false;
    baselines::FlatBaseline b(p);
    b.access(0, AccessType::Read, 0);
    StatSet s;
    b.collectStats(s);
    EXPECT_GT(s.get("mem.avgLatencyPs"), 0.0);
    expectZeroAndFinite(s, "mem.avgQueueDelayPs");
}

// The mix intensity math divides by each component's memRatio; a
// zero-intensity component used to propagate inf/NaN into the mix's
// memRatio and from there into every derived stat. Now it dies with a
// diagnostic instead of emitting garbage.
TEST(ZeroCountStatsDeath, MixRejectsZeroIntensityComponent)
{
    workloads::Workload a;
    a.name = "a";
    a.memRatio = 0.5;
    workloads::Workload b;
    b.name = "b";
    b.memRatio = 0.0;
    EXPECT_DEATH(workloads::mixWorkload({a, b}, 1),
                 "zero memory intensity");
}

} // namespace
} // namespace h2
