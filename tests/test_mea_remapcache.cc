/**
 * @file
 * Tests for the MEA sketch (Karp et al.) and the shared remap cache.
 */

#include <gtest/gtest.h>

#include "baselines/mea.h"
#include "baselines/remap_cache.h"

namespace h2::baselines {
namespace {

TEST(Mea, TracksWithinCapacity)
{
    Mea m(4);
    m.touch(1);
    m.touch(2);
    m.touch(1);
    auto t = m.tracked();
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0].first, 1u); // most counted first
    EXPECT_EQ(t[0].second, 2u);
}

TEST(Mea, MajorityElementSurvives)
{
    // The defining MEA guarantee: an element with > N/(k+1) occurrences
    // is still tracked at the end of the stream.
    Mea m(4);
    for (int i = 0; i < 1000; ++i) {
        m.touch(42);        // heavy hitter
        m.touch(1000 + i);  // a parade of one-off elements
    }
    auto t = m.tracked();
    bool found = false;
    for (const auto &[elem, count] : t)
        found |= elem == 42;
    EXPECT_TRUE(found);
}

TEST(Mea, DecrementAllEvictsLightElements)
{
    Mea m(2);
    m.touch(1);
    m.touch(2);
    // Capacity reached; a third element decrements everyone to zero.
    m.touch(3);
    EXPECT_EQ(m.size(), 0u);
}

TEST(Mea, CountsAccumulate)
{
    Mea m(2);
    for (int i = 0; i < 5; ++i)
        m.touch(7);
    auto t = m.tracked();
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].second, 5u);
}

TEST(Mea, Clear)
{
    Mea m(4);
    m.touch(1);
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_TRUE(m.tracked().empty());
}

TEST(Mea, CapacityAccessor)
{
    Mea m(64);
    EXPECT_EQ(m.capacity(), 64u);
}

TEST(RemapCache, MissThenHit)
{
    RemapCache rc(1024, 8, 4);
    EXPECT_FALSE(rc.lookup(42));
    EXPECT_TRUE(rc.lookup(42));
    EXPECT_EQ(rc.hits(), 1u);
    EXPECT_EQ(rc.misses(), 1u);
}

TEST(RemapCache, CapacityEviction)
{
    RemapCache rc(64, 8, 2); // 8 entries total
    for (u64 s = 0; s < 64; ++s)
        rc.lookup(s);
    // The early entries must have been evicted by now.
    EXPECT_FALSE(rc.lookup(0));
}

TEST(RemapCache, Invalidate)
{
    RemapCache rc(1024, 8, 4);
    rc.lookup(5);
    rc.invalidate(5);
    EXPECT_FALSE(rc.lookup(5));
}

TEST(RemapCache, DefaultSizedLikeXta)
{
    // 512 KB / 8 B entries = 64 K remap entries, per the paper's
    // equal-metadata-budget methodology.
    RemapCache rc;
    for (u64 s = 0; s < 65536; ++s)
        rc.lookup(s);
    // All entries fit: everything hits the second time around.
    for (u64 s = 0; s < 65536; ++s)
        EXPECT_TRUE(rc.lookup(s));
}

} // namespace
} // namespace h2::baselines
