/**
 * @file
 * Tests for design-spec parsing, the Runner's caching, and speedups.
 */

#include <gtest/gtest.h>

#include "baselines/dfc_cache.h"
#include "baselines/ideal_cache.h"
#include "common/units.h"
#include "core/dcmc.h"
#include "sim/runner.h"

namespace h2::sim {
namespace {

mem::MemSystemParams
smallMem()
{
    mem::MemSystemParams p;
    p.nmBytes = 16 * MiB;
    p.fmBytes = 64 * MiB;
    return p;
}

TEST(MakeDesign, AllHeads)
{
    mem::EmptyLlcView llc;
    auto mp = smallMem();
    EXPECT_EQ(makeDesign("baseline", mp, llc)->name(), "BASELINE");
    EXPECT_EQ(makeDesign("hybrid2:cache=2", mp, llc)->name(), "HYBRID2");
    EXPECT_EQ(makeDesign("tagless", mp, llc)->name(), "TAGLESS");
    EXPECT_EQ(makeDesign("dfc", mp, llc)->name(), "DFC-1024");
    EXPECT_EQ(makeDesign("dfc:512", mp, llc)->name(), "DFC-512");
    EXPECT_EQ(makeDesign("ideal:128", mp, llc)->name(), "IDEAL-128");
    EXPECT_EQ(makeDesign("mempod", mp, llc)->name(), "MPOD");
    EXPECT_EQ(makeDesign("chameleon", mp, llc)->name(), "CHA");
    EXPECT_EQ(makeDesign("lgm", mp, llc)->name(), "LGM");
}

TEST(MakeDesign, Hybrid2Options)
{
    mem::EmptyLlcView llc;
    auto mp = smallMem();
    auto d = makeDesign("hybrid2:cache=2,sector=4096,line=512", mp, llc);
    auto *dcmc = dynamic_cast<core::Dcmc *>(d.get());
    ASSERT_NE(dcmc, nullptr);
    EXPECT_EQ(dcmc->params().cacheBytes, 2 * MiB);
    EXPECT_EQ(dcmc->params().sectorBytes, 4096u);
    EXPECT_EQ(dcmc->params().lineBytes, 512u);
}

TEST(MakeDesign, Hybrid2Ablations)
{
    mem::EmptyLlcView llc;
    auto mp = smallMem();
    auto cacheOnly = makeDesign("hybrid2:cache=2,cacheonly", mp, llc);
    auto *d1 = dynamic_cast<core::Dcmc *>(cacheOnly.get());
    ASSERT_NE(d1, nullptr);
    EXPECT_TRUE(d1->params().migrateNone);
    EXPECT_TRUE(d1->params().freeRemap);

    auto migrAll = makeDesign("hybrid2:cache=2,migrall", mp, llc);
    EXPECT_TRUE(
        dynamic_cast<core::Dcmc *>(migrAll.get())->params().migrateAll);
    auto noRemap = makeDesign("hybrid2:cache=2,noremap", mp, llc);
    EXPECT_TRUE(
        dynamic_cast<core::Dcmc *>(noRemap.get())->params().freeRemap);
}

TEST(MakeDesign, LgmWatermark)
{
    mem::EmptyLlcView llc;
    auto d = makeDesign("lgm:watermark=99", smallMem(), llc);
    EXPECT_EQ(d->name(), "LGM");
}

TEST(MakeDesign, IdealDefaultLine)
{
    mem::EmptyLlcView llc;
    auto d = makeDesign("ideal", smallMem(), llc);
    auto *c = dynamic_cast<baselines::IdealCache *>(d.get());
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->cacheParams().lineBytes, 256u);
}

TEST(MakeDesignDeath, UnknownSpec)
{
    mem::EmptyLlcView llc;
    auto mp = smallMem();
    EXPECT_DEATH(makeDesign("bogus", mp, llc), "unknown design");
}

TEST(MakeDesignDeath, UnknownHybridOption)
{
    mem::EmptyLlcView llc;
    auto mp = smallMem();
    EXPECT_DEATH(makeDesign("hybrid2:frobnicate", mp, llc),
                 "unknown hybrid2 option");
}

TEST(EvaluatedDesigns, MatchesFigure12Lineup)
{
    const auto &d = evaluatedDesigns();
    ASSERT_EQ(d.size(), 6u);
    EXPECT_EQ(d[0], "mempod");
    EXPECT_EQ(d[1], "chameleon");
    EXPECT_EQ(d[2], "lgm");
    EXPECT_EQ(d[3], "tagless");
    EXPECT_EQ(d[4], "dfc");
    EXPECT_EQ(d[5], "hybrid2");
}

class RunnerTest : public ::testing::Test
{
  protected:
    static RunConfig
    quickCfg()
    {
        RunConfig cfg;
        cfg.nmBytes = 32 * MiB;
        cfg.fmBytes = 256 * MiB;
        cfg.instrPerCore = 20'000;
        cfg.numCores = 2;
        return cfg;
    }

    static workloads::Workload
    tinyWorkload()
    {
        auto w = workloads::findWorkload("lbm");
        w.footprintBytes = 16 * MiB;
        w.accessStride = 64; // new line per access: memory-bound
        return w;
    }
};

TEST_F(RunnerTest, CachesResults)
{
    Runner r(quickCfg());
    const Metrics &a = r.run(tinyWorkload(), "baseline");
    const Metrics &b = r.run(tinyWorkload(), "baseline");
    EXPECT_EQ(&a, &b); // identical object: memoized
}

TEST_F(RunnerTest, BaselineSpeedupIsOne)
{
    Runner r(quickCfg());
    EXPECT_DOUBLE_EQ(r.speedup(tinyWorkload(), "baseline"), 1.0);
}

TEST_F(RunnerTest, NmDesignSpeedupAboveOne)
{
    Runner r(quickCfg());
    EXPECT_GT(r.speedup(tinyWorkload(), "ideal:256"), 1.0);
}

TEST_F(RunnerTest, DistinctDesignsDistinctMetrics)
{
    Runner r(quickCfg());
    const Metrics &a = r.run(tinyWorkload(), "baseline");
    const Metrics &b = r.run(tinyWorkload(), "ideal:256");
    EXPECT_NE(a.design, b.design);
    EXPECT_NE(a.timePs, b.timePs);
}

TEST_F(RunnerTest, ConfigAccessor)
{
    Runner r(quickCfg());
    EXPECT_EQ(r.config().nmBytes, 32 * MiB);
}

TEST_F(RunnerTest, FmKnobReachesTheDevices)
{
    RunConfig cfg = quickCfg();
    EXPECT_EQ(cfg.fm, dram::FarMemTech::Dram); // default
    cfg.fm = dram::FarMemTech::Pcm;
    EXPECT_EQ(makeSystemConfig(cfg).mem.fmTech, dram::FarMemTech::Pcm);

    // End to end: the same memory-bound workload on the FM-only
    // baseline is slower on PCM (88-cycle array reads vs DDR4's 22)
    // and the PCM run carries the wear stats.
    Metrics dram = simulateOne(quickCfg(), tinyWorkload(), "baseline");
    Metrics pcm = simulateOne(cfg, tinyWorkload(), "baseline");
    EXPECT_GT(pcm.timePs, dram.timePs);
    EXPECT_TRUE(pcm.detail.has("fm.wearTotalBytes"));
    EXPECT_TRUE(pcm.detail.has("fm.maxBankWearDelta"));
    EXPECT_FALSE(dram.detail.has("fm.wearTotalBytes"));
}

} // namespace
} // namespace h2::sim
