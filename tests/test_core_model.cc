/**
 * @file
 * Tests for the interval core model and the page-placement AddressMap.
 */

#include <gtest/gtest.h>

#include <set>

#include "baselines/flat_baseline.h"
#include "common/units.h"
#include "sim/core_model.h"

namespace h2::sim {
namespace {

TEST(AddressMap, PagePlacementIsBijective)
{
    AddressMap map(16 * MiB, 4 * MiB, 7);
    std::set<u64> pages;
    for (Addr v = 0; v < 4 * MiB; v += AddressMap::pageBytes)
        pages.insert(map.toPhysical(v) / AddressMap::pageBytes);
    EXPECT_EQ(pages.size(), 4 * MiB / AddressMap::pageBytes);
}

TEST(AddressMap, OffsetPreservedWithinPage)
{
    AddressMap map(16 * MiB, 4 * MiB, 7);
    Addr p0 = map.toPhysical(0);
    Addr p1 = map.toPhysical(123);
    EXPECT_EQ(p1 - p0, 123u);
}

TEST(AddressMap, SpreadsProportionally)
{
    // With flat = 16 MiB and a permutation over all pages, about 1/4 of
    // a 4 MiB footprint lands in the first quarter of the flat space.
    AddressMap map(16 * MiB, 4 * MiB, 11);
    u64 inFirstQuarter = 0;
    u64 pages = 4 * MiB / AddressMap::pageBytes;
    for (u64 v = 0; v < pages; ++v)
        inFirstQuarter +=
            map.toPhysical(v * AddressMap::pageBytes) < 4 * MiB;
    EXPECT_NEAR(double(inFirstQuarter) / pages, 0.25, 0.06);
}

TEST(AddressMapDeath, FootprintTooLarge)
{
    EXPECT_DEATH(AddressMap(4 * MiB, 8 * MiB, 1), "page faults");
}

TEST(AddressMapDeath, OutOfFootprint)
{
    AddressMap map(16 * MiB, 4 * MiB, 7);
    EXPECT_DEATH(map.toPhysical(4 * MiB), "footprint");
}

// ---------------------------------------------------------------------

/** A scripted trace source. */
class ScriptedTrace : public workloads::TraceSource
{
  public:
    explicit ScriptedTrace(std::vector<workloads::TraceRecord> recs)
        : records(std::move(recs))
    {
    }

    workloads::TraceRecord
    next() override
    {
        auto r = records[pos % records.size()];
        ++pos;
        return r;
    }

  private:
    std::vector<workloads::TraceRecord> records;
    u64 pos = 0;
};

class CoreModelTest : public ::testing::Test
{
  protected:
    CoreModelTest()
        : hier(tinyHier()), memParams(makeMem()), memory(memParams),
          map(memParams.fmBytes, 1 * MiB, 3)
    {
    }

    static cache::HierarchyParams
    tinyHier()
    {
        cache::HierarchyParams p;
        p.numCores = 1;
        p.l1 = {"L1", 1 * KiB, 2, 64, cache::ReplPolicy::Lru};
        p.l2 = {"L2", 4 * KiB, 4, 64, cache::ReplPolicy::Lru};
        p.llc = {"LLC", 16 * KiB, 4, 64, cache::ReplPolicy::Lru};
        return p;
    }

    static mem::MemSystemParams
    makeMem()
    {
        mem::MemSystemParams p;
        p.fmBytes = 64 * MiB;
        return p;
    }

    cache::CacheHierarchy hier;
    mem::MemSystemParams memParams;
    baselines::FlatBaseline memory;
    AddressMap map;
    CoreParams cp;
};

TEST_F(CoreModelTest, InstructionAccounting)
{
    ScriptedTrace trace({{9, 0, AccessType::Read}});
    CoreModel core(0, cp, trace, hier, memory, map, 0, 100);
    while (!core.done())
        core.step();
    core.drain();
    EXPECT_GE(core.instructions(), 100u);
    EXPECT_EQ(core.memAccesses(), 10u); // 100 instr / (9+1) per access
}

TEST_F(CoreModelTest, GapAdvancesClockAtIssueWidth)
{
    // 400 gap instructions at width 4 = 100 cycles minimum.
    ScriptedTrace trace({{400, 0, AccessType::Read}});
    CoreModel core(0, cp, trace, hier, memory, map, 0, 401);
    core.step();
    core.drain();
    EXPECT_GE(core.now(), 100u * cp.periodPs);
}

TEST_F(CoreModelTest, LlcMissesReachMemory)
{
    ScriptedTrace trace({{0, 0, AccessType::Read},
                         {0, 64 * KiB, AccessType::Read},
                         {0, 128 * KiB, AccessType::Read}});
    CoreModel core(0, cp, trace, hier, memory, map, 0, 3);
    while (!core.done())
        core.step();
    core.drain();
    EXPECT_EQ(core.llcMisses(), 3u);
    EXPECT_EQ(memory.requests(), 3u);
}

TEST_F(CoreModelTest, SerialMissesStallWithMlpOne)
{
    // With maxOutstanding=1, consecutive misses serialize; with 8 they
    // overlap. Same trace, same memory: MLP-1 must take longer.
    std::vector<workloads::TraceRecord> recs;
    for (int i = 0; i < 64; ++i)
        recs.push_back({0, Addr(i) * 4096, AccessType::Read});

    auto runWith = [&](u32 mlp) {
        cache::CacheHierarchy h(tinyHier());
        baselines::FlatBaseline m(makeMem());
        ScriptedTrace t(recs);
        CoreParams p;
        p.maxOutstanding = mlp;
        CoreModel core(0, p, t, h, m, map, 0, 64);
        while (!core.done())
            core.step();
        core.drain();
        return core.now();
    };
    EXPECT_GT(runWith(1), runWith(8));
}

TEST_F(CoreModelTest, WritesDoNotStall)
{
    // Write misses are fire-and-forget; read misses block at drain.
    std::vector<workloads::TraceRecord> writes, reads;
    for (int i = 0; i < 32; ++i) {
        writes.push_back({0, Addr(i) * 4096, AccessType::Write});
        reads.push_back({0, Addr(i) * 4096, AccessType::Read});
    }
    auto runType = [&](const std::vector<workloads::TraceRecord> &recs) {
        cache::CacheHierarchy h(tinyHier());
        baselines::FlatBaseline m(makeMem());
        ScriptedTrace t(recs);
        CoreParams p;
        p.maxOutstanding = 1;
        CoreModel core(0, p, t, h, m, map, 0, 32);
        while (!core.done())
            core.step();
        core.drain();
        return core.now();
    };
    EXPECT_LT(runType(writes), runType(reads));
}

TEST_F(CoreModelTest, DrainWaitsForOutstanding)
{
    ScriptedTrace trace({{0, 0, AccessType::Read}});
    CoreModel core(0, cp, trace, hier, memory, map, 0, 1);
    core.step();
    Tick beforeDrain = core.now();
    core.drain();
    EXPECT_GE(core.now(), beforeDrain);
}

TEST_F(CoreModelTest, CacheHitsStayLocal)
{
    ScriptedTrace trace({{0, 0, AccessType::Read}});
    CoreModel core(0, cp, trace, hier, memory, map, 0, 10);
    while (!core.done())
        core.step();
    core.drain();
    EXPECT_EQ(core.llcMisses(), 1u); // 9 L1 hits after the first miss
    EXPECT_EQ(memory.requests(), 1u);
}

} // namespace
} // namespace h2::sim
