/**
 * @file
 * Tests for the eXtended Tag Array (paper section 3.2).
 */

#include <gtest/gtest.h>

#include "common/units.h"
#include "core/xta.h"

namespace h2::core {
namespace {

TEST(Xta, Geometry)
{
    Xta x(1024, 16, 8);
    EXPECT_EQ(x.numSets(), 64u);
    EXPECT_EQ(x.numWays(), 16u);
    EXPECT_EQ(x.capacitySectors(), 1024u);
    EXPECT_EQ(x.linesPerSector(), 8u);
}

TEST(Xta, MissThenHit)
{
    Xta x(64, 4, 8);
    EXPECT_EQ(x.find(5), nullptr);
    EXPECT_EQ(x.misses(), 1u);
    XtaEntry *way = x.victimWay(5);
    x.fill(5, *way);
    XtaEntry *found = x.find(5);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, way);
    EXPECT_EQ(x.hits(), 1u);
}

TEST(Xta, FillInitializesEntry)
{
    Xta x(64, 4, 8);
    XtaEntry *way = x.victimWay(7);
    way->validMask = 0xFF;
    way->accessCounter = 99;
    x.fill(7, *way);
    EXPECT_TRUE(x.entryValid(*way));
    EXPECT_EQ(way->validMask, 0u);
    EXPECT_EQ(way->dirtyMask, 0u);
    EXPECT_EQ(way->accessCounter, 0u);
    EXPECT_EQ(x.entryTag(*way), x.tagOf(7));
}

TEST(Xta, SetMapping)
{
    Xta x(64, 4, 8); // 16 sets
    EXPECT_EQ(x.setOf(5), 5u);
    EXPECT_EQ(x.setOf(21), 5u);
    EXPECT_NE(x.tagOf(5), x.tagOf(21));
    XtaEntry *e = x.victimWay(21);
    x.fill(21, *e);
    EXPECT_EQ(x.flatSectorOf(5, *e), 21u);
}

TEST(Xta, LruVictimSelection)
{
    Xta x(16, 4, 8); // 4 sets, 4 ways
    // Fill all four ways of set 0 with sectors 0, 4, 8, 12.
    for (u64 s : {0, 4, 8, 12})
        x.fill(s, *x.victimWay(s));
    x.find(0); // refresh sector 0
    XtaEntry *victim = x.victimWay(16); // set 0 again
    EXPECT_EQ(x.flatSectorOf(0, *victim), 4u); // LRU is sector 4
}

TEST(Xta, InvalidWayPreferredOverLru)
{
    Xta x(16, 4, 8);
    x.fill(0, *x.victimWay(0));
    XtaEntry *victim = x.victimWay(4);
    EXPECT_FALSE(x.entryValid(*victim));
}

TEST(Xta, PeekDoesNotDisturbLruOrStats)
{
    Xta x(16, 4, 8);
    for (u64 s : {0, 4, 8, 12})
        x.fill(s, *x.victimWay(s));
    u64 missesBefore = x.misses();
    EXPECT_NE(x.peek(0), nullptr);
    EXPECT_EQ(x.peek(16), nullptr);
    EXPECT_EQ(x.misses(), missesBefore);
    // Sector 0 was peeked, not accessed: it is still the LRU victim.
    XtaEntry *victim = x.victimWay(16);
    EXPECT_EQ(x.flatSectorOf(0, *victim), 0u);
}

TEST(Xta, ForOthersInSet)
{
    Xta x(16, 4, 8);
    for (u64 s : {0, 4, 8})
        x.fill(s, *x.victimWay(s));
    const XtaEntry *self = x.peek(0);
    u32 seen = 0;
    x.forOthersInSet(0, *self, [&](const XtaEntry &e) {
        ++seen;
        EXPECT_NE(&e, self);
    });
    EXPECT_EQ(seen, 2u);
}

TEST(Xta, PaperConfigFitsOnChip)
{
    // 64 MB cache / 2 KB sectors = 32768 entries, 16-way, 8 lines of
    // 256 B per sector: the paper requires the XTA to stay ~512 KB.
    Xta x(32768, 16, 8);
    EXPECT_LE(x.storageBytes(), 600 * KiB);
    EXPECT_GE(x.storageBytes(), 300 * KiB);
}

TEST(Xta, PopcountHelpers)
{
    XtaEntry e;
    e.validMask = 0xF0;
    e.dirtyMask = 0x30;
    EXPECT_EQ(e.popcountValid(), 4u);
    EXPECT_EQ(e.popcountDirty(), 2u);
}

TEST(Xta, SixtyFourLinesPerSector)
{
    // 4 KB sectors with 64 B lines stress the full vector width.
    Xta x(64, 4, 64);
    XtaEntry *way = x.victimWay(1);
    x.fill(1, *way);
    way->validMask = ~u64(0);
    EXPECT_EQ(way->popcountValid(), 64u);
}

TEST(XtaDeath, TooManyLines)
{
    EXPECT_DEATH(Xta(64, 4, 65), "1..64 lines");
}

TEST(XtaDeath, IndivisibleWays)
{
    EXPECT_DEATH(Xta(65, 4, 8), "divisible");
}

TEST(Xta, CollectStats)
{
    Xta x(64, 4, 8);
    x.find(0);
    StatSet out;
    x.collectStats(out, "xta");
    EXPECT_DOUBLE_EQ(out.get("xta.misses"), 1.0);
    EXPECT_GT(out.get("xta.storageBytes"), 0.0);
}

} // namespace
} // namespace h2::core
