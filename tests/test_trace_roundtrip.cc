/**
 * @file
 * Capture → write → load → replay must be bit-identical: for synthetic
 * workloads (multi-program and multi-threaded) and a mix, in both the
 * text and binary formats, replaying a captured trace through a design
 * yields Metrics equal — field for field, doubles included — to the
 * direct synthetic run. This is the acceptance test for the trace
 * frontend (ISSUE 4).
 */

#include <gtest/gtest.h>

#include "sim/runner.h"
#include "workloads/trace_file.h"
#include "workloads/workload_spec.h"

namespace h2 {
namespace {

using workloads::TraceFormat;

sim::RunConfig
smallConfig()
{
    sim::RunConfig cfg;
    cfg.numCores = 2;
    cfg.instrPerCore = 20'000;
    cfg.warmupInstrPerCore = 5'000;
    cfg.seed = 7;
    return cfg;
}

/** Capture @p spec under @p cfg, replay it, and compare Metrics. */
void
expectRoundTripIdentical(const std::string &spec,
                         const std::string &design, TraceFormat format)
{
    sim::RunConfig cfg = smallConfig();
    workloads::Workload original =
        workloads::resolveWorkloadOrFatal(spec);
    sim::Metrics direct = sim::simulateOne(cfg, original, design);

    workloads::TraceData captured = workloads::captureTrace(
        original, cfg.numCores, cfg.seed,
        cfg.warmupInstrPerCore + cfg.instrPerCore);
    std::string path = ::testing::TempDir() + "h2_rt_" +
                       std::to_string(std::hash<std::string>{}(
                           spec + design)) +
                       (format == TraceFormat::Text ? ".txt" : ".bin");
    workloads::writeTraceFile(path, captured, format);

    std::string error;
    auto replayWl = workloads::resolveWorkload("trace:" + path, &error);
    ASSERT_TRUE(replayWl.has_value()) << error;
    EXPECT_EQ(replayWl->name, original.name);
    sim::Metrics replay = sim::simulateOne(cfg, *replayWl, design);

    EXPECT_EQ(direct, replay)
        << spec << " x " << design << " via "
        << (format == TraceFormat::Text ? "text" : "binary") << "\n"
        << "direct:\n" << direct.toString() << "replay:\n"
        << replay.toString();
}

// Three registry workloads spanning the suite's shapes — lbm
// (multi-program, streaming), mcf (multi-program, pointer-ish), cg.D
// (multi-threaded) — each through both formats (acceptance criterion).

TEST(TraceRoundTrip, LbmTextBitIdentical)
{
    expectRoundTripIdentical("lbm", "dfc", TraceFormat::Text);
}

TEST(TraceRoundTrip, LbmBinaryBitIdentical)
{
    expectRoundTripIdentical("lbm", "dfc", TraceFormat::Binary);
}

TEST(TraceRoundTrip, McfTextBitIdentical)
{
    expectRoundTripIdentical("mcf", "hybrid2", TraceFormat::Text);
}

TEST(TraceRoundTrip, McfBinaryBitIdentical)
{
    expectRoundTripIdentical("mcf", "hybrid2", TraceFormat::Binary);
}

TEST(TraceRoundTrip, CgMultithreadedTextBitIdentical)
{
    expectRoundTripIdentical("cg.D", "baseline", TraceFormat::Text);
}

TEST(TraceRoundTrip, CgMultithreadedBinaryBitIdentical)
{
    expectRoundTripIdentical("cg.D", "baseline", TraceFormat::Binary);
}

// A mix capture replays bit-identically too: the trace frontend is
// closed under every workload kind.

TEST(TraceRoundTrip, MixCaptureBinaryBitIdentical)
{
    expectRoundTripIdentical("mix:mcf+xalanc:2", "dfc",
                             TraceFormat::Binary);
}

// The memoizing runners must never alias a replay with its synthetic
// original (their Metrics agree today, but e.g. a different --instr
// would diverge via trace wrap-around).

TEST(TraceRoundTrip, ReplayDoesNotAliasSyntheticInRunner)
{
    sim::RunConfig cfg = smallConfig();
    workloads::Workload original =
        workloads::resolveWorkloadOrFatal("xalanc");
    workloads::TraceData captured = workloads::captureTrace(
        original, cfg.numCores, cfg.seed,
        cfg.warmupInstrPerCore + cfg.instrPerCore);
    std::string path = ::testing::TempDir() + "h2_rt_alias.bin";
    workloads::writeTraceFile(path, captured, TraceFormat::Binary);
    auto replayWl = workloads::resolveWorkload("trace:" + path, nullptr);
    ASSERT_TRUE(replayWl.has_value());
    EXPECT_EQ(replayWl->cacheName(), "trace:" + path);
    EXPECT_NE(replayWl->cacheName(), original.cacheName());

    sim::Runner runner(cfg);
    const sim::Metrics &direct = runner.run(original, "dfc");
    const sim::Metrics &replay = runner.run(*replayWl, "dfc");
    // Distinct cache slots...
    EXPECT_NE(&direct, &replay);
    // ...holding equal results.
    EXPECT_EQ(direct, replay);
}

// A trace captured for a smaller budget than the run wraps around (with
// a warning) instead of dying — and, being a different input, produces
// different metrics than the un-wrapped synthetic run.

TEST(TraceRoundTrip, ShortTraceWrapsInsteadOfDying)
{
    sim::RunConfig cfg = smallConfig();
    workloads::Workload original =
        workloads::resolveWorkloadOrFatal("mcf");
    workloads::TraceData captured = workloads::captureTrace(
        original, cfg.numCores, cfg.seed,
        (cfg.warmupInstrPerCore + cfg.instrPerCore) / 4);
    std::string path = ::testing::TempDir() + "h2_rt_short.bin";
    workloads::writeTraceFile(path, captured, TraceFormat::Binary);
    auto replayWl = workloads::resolveWorkload("trace:" + path, nullptr);
    ASSERT_TRUE(replayWl.has_value());
    sim::Metrics replay = sim::simulateOne(cfg, *replayWl, "dfc");
    // Completes the full budget (modulo the final record's overshoot).
    EXPECT_GE(replay.instructions, 2 * cfg.instrPerCore);
}

// Replaying with a core count other than the capture's is a config
// error, not silent stream misassignment.

TEST(TraceRoundTrip, WrongCoreCountDies)
{
    workloads::Workload original =
        workloads::resolveWorkloadOrFatal("xalanc");
    workloads::TraceData captured =
        workloads::captureTrace(original, 2, 7, 2000);
    std::string path = ::testing::TempDir() + "h2_rt_cores.bin";
    workloads::writeTraceFile(path, captured, TraceFormat::Binary);
    auto replayWl = workloads::resolveWorkload("trace:" + path, nullptr);
    ASSERT_TRUE(replayWl.has_value());
    EXPECT_DEATH(replayWl->makeSource(0, 4, 7), "captured with 2");
}

} // namespace
} // namespace h2
