/**
 * @file
 * Data-placement integrity: shadow oracles verify that every design
 * keeps a bijective, loss-free mapping between flat sectors and
 * physical locations across caching, migration, eviction and swaps.
 * (The simulator is functional over addresses, so location bijection is
 * exactly the "reads return the last write" property.)
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baselines/chameleon.h"
#include "baselines/lgm.h"
#include "baselines/mempod.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/dcmc.h"

namespace h2 {
namespace {

mem::MemSystemParams
smallSys()
{
    mem::MemSystemParams p;
    // These suites white-box the designs against the analytic
    // immediate-dispatch device model; the queued controller has its
    // own suite (test_mem_controller) and the queue=on goldens.
    p.queue.enabled = false;
    p.nmBytes = 8 * MiB;
    p.fmBytes = 32 * MiB;
    return p;
}

/** Key for a physical sector-granular location. */
std::pair<int, u64>
key(const core::Loc &loc)
{
    return {loc.inNm ? 1 : 0, loc.idx};
}

TEST(IntegrityDcmc, HomesStayUniqueUnderRandomTraffic)
{
    core::Hybrid2Params hp;
    hp.cacheBytes = 512 * KiB; // 256 sectors
    core::Dcmc d(smallSys(), hp);
    u64 flatSectors = d.numFlatSectors();

    Rng rng(17);
    std::set<u64> touched;
    Tick t = 0;
    for (int i = 0; i < 30000; ++i) {
        u64 sector = rng.below(flatSectors);
        u64 off = rng.below(8) * 256;
        d.access(sector * 2048 + off,
                 rng.chance(0.3) ? AccessType::Write : AccessType::Read,
                 t += 5000);
        touched.insert(sector);

        if (i % 5000 == 4999) {
            d.checkInvariants();
            // No two touched sectors may share a home.
            std::map<std::pair<int, u64>, u64> homes;
            for (u64 s : touched) {
                auto view = d.inspect(s);
                auto [it, fresh] = homes.emplace(key(view.home), s);
                ASSERT_TRUE(fresh)
                    << "sectors " << it->second << " and " << s
                    << " share a home";
            }
        }
    }
}

TEST(IntegrityDcmc, CachedLineVisibleAfterAccess)
{
    core::Hybrid2Params hp;
    hp.cacheBytes = 512 * KiB;
    core::Dcmc d(smallSys(), hp);
    Rng rng(23);
    Tick t = 0;
    for (int i = 0; i < 5000; ++i) {
        u64 sector = rng.below(d.numFlatSectors());
        u32 line = static_cast<u32>(rng.below(8));
        d.access(sector * 2048 + line * 256, AccessType::Read, t += 5000);
        auto view = d.inspect(sector);
        ASSERT_TRUE(view.cached);
        ASSERT_TRUE(view.validMask & (u64(1) << line));
        ASSERT_EQ(view.dirtyMask & ~view.validMask, 0u);
    }
}

TEST(IntegrityDcmc, WrittenLinesStayDirtyUntilEviction)
{
    core::Hybrid2Params hp;
    hp.cacheBytes = 512 * KiB;
    hp.migrateNone = true;
    core::Dcmc d(smallSys(), hp);
    u64 nmFlat = d.remapTable().nmFlatSectors();
    Tick t = 0;
    u64 victim = nmFlat + 5; // FM sector
    d.access(victim * 2048, AccessType::Write, t += 5000);
    EXPECT_EQ(d.inspect(victim).dirtyMask, 1u);
    u64 fmWritesBefore = d.fmDevice().stats().bytesWritten;
    // Evict it by filling its set with 16 more FM sectors.
    u64 sets = d.xta().numSets();
    for (u64 k = 1; k <= 16; ++k)
        d.access((victim + k * sets) * 2048, AccessType::Read, t += 5000);
    EXPECT_FALSE(d.inspect(victim).cached);
    // The dirty line was written back: data not lost.
    EXPECT_EQ(d.fmDevice().stats().bytesWritten,
              fmWritesBefore + hp.lineBytes);
}

TEST(IntegrityMemPod, LocateIsBijectiveOverTouchedSegments)
{
    baselines::MemPodParams mp;
    mp.pods = 4;
    mp.intervalPs = 2 * psPerUs;
    mp.minCountToMigrate = 1; // migrate aggressively: stress the remap
    mp.requirePersistence = false;
    baselines::MemPod m(smallSys(), mp);
    u64 segments = m.flatCapacity() / 2048;

    Rng rng(31);
    Tick t = 0;
    std::set<u64> touched;
    for (int i = 0; i < 20000; ++i) {
        u64 seg = rng.below(segments / 2) * 2; // bias to force reuse
        m.access(seg * 2048, AccessType::Read, t += 1000);
        touched.insert(seg);
    }
    std::map<std::pair<int, u64>, u64> homes;
    for (u64 s : touched) {
        auto loc = m.locate(s);
        auto [it, fresh] = homes.emplace(key(loc), s);
        ASSERT_TRUE(fresh) << "segments " << it->second << " and " << s
                           << " collide";
    }
    EXPECT_GT(m.migrations(), 0u); // the test actually moved data
}

TEST(IntegrityLgm, LocateIsBijectiveOverTouchedSegments)
{
    mem::EmptyLlcView llc;
    baselines::LgmParams lp;
    lp.watermark = 4;
    lp.intervalPs = 2 * psPerUs;
    baselines::Lgm l(smallSys(), llc, lp);
    u64 segments = l.flatCapacity() / 2048;

    Rng rng(37);
    Tick t = 0;
    std::set<u64> touched;
    for (int i = 0; i < 20000; ++i) {
        u64 seg = rng.below(segments / 4); // hot quarter
        l.access(seg * 2048, AccessType::Read, t += 1000);
        touched.insert(seg);
    }
    std::map<std::pair<int, u64>, u64> homes;
    for (u64 s : touched) {
        auto [it, fresh] = homes.emplace(key(l.locate(s)), s);
        ASSERT_TRUE(fresh) << "segments " << it->second << " and " << s
                           << " collide";
    }
    EXPECT_GT(l.migrations(), 0u);
}

TEST(IntegrityChameleon, OneResidentPerGroup)
{
    baselines::ChameleonParams cp;
    cp.competingK = 3;
    cp.cacheSliceBytes = 512 * KiB;
    baselines::Chameleon c(smallSys(), cp);
    u64 nmGroupSegs = (8 * MiB - 512 * KiB) / 2048;
    u64 fmSegs = 32 * MiB / 2048;

    Rng rng(41);
    Tick t = 0;
    std::set<u64> touchedGroups;
    for (int i = 0; i < 20000; ++i) {
        u64 seg = rng.below(nmGroupSegs + fmSegs);
        c.access(seg * 2048, AccessType::Read, t += 1000);
        touchedGroups.insert(seg < nmGroupSegs
                             ? seg : (seg - nmGroupSegs) % nmGroupSegs);
    }
    EXPECT_GT(c.swaps(), 0u);
    // Exactly one member of every touched group occupies its NM slot.
    for (u64 g : touchedGroups) {
        u32 inSlot = c.inNmSlot(g) ? 1 : 0;
        for (u64 seg = nmGroupSegs + g; seg < nmGroupSegs + fmSegs;
             seg += nmGroupSegs)
            inSlot += c.inNmSlot(seg) ? 1 : 0;
        ASSERT_EQ(inSlot, 1u) << "group " << g;
    }
}

} // namespace
} // namespace h2
