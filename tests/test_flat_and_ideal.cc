/**
 * @file
 * Tests for the FM-only baseline and the IDEAL DRAM cache (Figure 2),
 * including the fetched-but-unused tracking behind Figure 1.
 */

#include <gtest/gtest.h>

#include "baselines/flat_baseline.h"
#include "common/rng.h"
#include "baselines/ideal_cache.h"
#include "common/units.h"

namespace h2::baselines {
namespace {

mem::MemSystemParams
smallSys()
{
    mem::MemSystemParams p;
    // These suites white-box the designs against the analytic
    // immediate-dispatch device model; the queued controller has its
    // own suite (test_mem_controller) and the queue=on goldens.
    p.queue.enabled = false;
    p.nmBytes = 8 * MiB;
    p.fmBytes = 64 * MiB;
    return p;
}

TEST(FlatBaseline, ServesEverythingFromFm)
{
    FlatBaseline b(smallSys());
    auto r = b.access(0, AccessType::Read, 0);
    EXPECT_FALSE(r.fromNm);
    EXPECT_GT(r.completeAt(), 0u);
    EXPECT_EQ(b.requests(), 1u);
    EXPECT_EQ(b.requestsFromNm(), 0u);
    EXPECT_FALSE(b.hasNm());
    EXPECT_EQ(b.flatCapacity(), 64 * MiB);
    EXPECT_EQ(b.name(), "BASELINE");
}

TEST(FlatBaseline, TrafficAndEnergyAccumulate)
{
    FlatBaseline b(smallSys());
    b.access(0, AccessType::Read, 0);
    b.access(4096, AccessType::Write, 100000);
    EXPECT_EQ(b.fmDevice().stats().bytesRead, 64u);
    EXPECT_EQ(b.fmDevice().stats().bytesWritten, 64u);
    EXPECT_GT(b.dynamicEnergyPj(), 0.0);
}

TEST(FlatBaselineDeath, BeyondCapacity)
{
    FlatBaseline b(smallSys());
    EXPECT_DEATH(b.access(64 * MiB, AccessType::Read, 0), "capacity");
}

DramCacheParams
lineParams(u32 lineBytes)
{
    DramCacheParams p;
    p.lineBytes = lineBytes;
    return p;
}

TEST(IdealCache, MissThenHit)
{
    IdealCache c(smallSys(), lineParams(256));
    auto miss = c.access(0, AccessType::Read, 0);
    EXPECT_FALSE(miss.fromNm);
    auto hit = c.access(0, AccessType::Read, miss.completeAt());
    EXPECT_TRUE(hit.fromNm);
    EXPECT_EQ(c.fills(), 1u);
    EXPECT_EQ(c.lineHits(), 1u);
}

TEST(IdealCache, LinePrefetchServesNeighbours)
{
    IdealCache c(smallSys(), lineParams(1024));
    c.access(0, AccessType::Read, 0);
    // The whole 1 KB line was fetched: neighbouring 64 B blocks hit.
    auto r = c.access(512, AccessType::Read, 1000000);
    EXPECT_TRUE(r.fromNm);
}

TEST(IdealCache, FillFetchesWholeLineFromFm)
{
    IdealCache c(smallSys(), lineParams(1024));
    c.access(0, AccessType::Read, 0);
    EXPECT_EQ(c.fmDevice().stats().bytesRead, 1024u);
    EXPECT_EQ(c.nmDevice().stats().bytesWritten, 1024u);
}

TEST(IdealCache, DirtyVictimWritesBackWholeLine)
{
    auto sys = smallSys();
    DramCacheParams p = lineParams(256);
    p.ways = 1; // direct-mapped: easy conflicts
    IdealCache c(sys, p, "IDEAL-DM");
    c.access(0, AccessType::Write, 0);
    u64 fmWritesBefore = c.fmDevice().stats().bytesWritten;
    // Conflict on the same NM frame: line 0 + nmBytes aliases set 0.
    c.access(sys.nmBytes, AccessType::Read, 1000000);
    EXPECT_EQ(c.fmDevice().stats().bytesWritten, fmWritesBefore + 256);
}

TEST(IdealCache, WastedFetchTracking)
{
    auto sys = smallSys();
    DramCacheParams p = lineParams(4096);
    p.ways = 1;
    IdealCache c(sys, p);
    // Touch one 64 B block of a 4 KB line, then evict it with another
    // singly-touched line: both lines wasted 63 of 64 fetched blocks.
    c.access(0, AccessType::Read, 0);
    c.access(sys.nmBytes, AccessType::Read, 1000000); // evicts line 0
    EXPECT_NEAR(c.wastedFetchFraction(), 63.0 / 64.0, 1e-9);
}

TEST(IdealCache, FullyUsedLinesWasteNothing)
{
    auto sys = smallSys();
    DramCacheParams p = lineParams(256);
    p.ways = 1;
    IdealCache c(sys, p);
    // Use every 64 B block of two lines: nothing fetched is unused,
    // whether the line is later evicted or still resident.
    for (u64 b = 0; b < 256; b += 64)
        c.access(b, AccessType::Read, b * 1000);
    for (u64 b = 0; b < 256; b += 64)
        c.access(sys.nmBytes + b, AccessType::Read, 1000000 + b);
    EXPECT_DOUBLE_EQ(c.wastedFetchFraction(), 0.0);
}

TEST(IdealCache, ResidentUnusedBlocksCountAsWaste)
{
    auto sys = smallSys();
    DramCacheParams p = lineParams(256);
    p.ways = 1;
    IdealCache c(sys, p);
    // One resident line with 1 of 4 blocks used: 3/4 wasted.
    c.access(0, AccessType::Read, 0);
    EXPECT_DOUBLE_EQ(c.wastedFetchFraction(), 0.75);
}

class WasteByLineSize : public ::testing::TestWithParam<u32>
{
};

TEST_P(WasteByLineSize, SparseAccessWastesMoreWithBiggerLines)
{
    // Random 64 B touches over a space much larger than the cache:
    // bigger lines must waste a larger fraction (the Figure 1 trend).
    auto sys = smallSys();
    IdealCache c(sys, lineParams(GetParam()));
    Rng rng(7);
    Tick t = 0;
    for (int i = 0; i < 20000; ++i) {
        Addr a = (rng.below(sys.fmBytes / 64)) * 64;
        c.access(a, AccessType::Read, t += 20000);
    }
    double waste = c.wastedFetchFraction();
    if (GetParam() == 64)
        EXPECT_DOUBLE_EQ(waste, 0.0);
    else
        EXPECT_GT(waste, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Lines, WasteByLineSize,
                         ::testing::Values(64, 256, 1024, 4096));

TEST(IdealCache, ServedFromNmFractionGrowsWithReuse)
{
    IdealCache c(smallSys(), lineParams(256));
    Tick t = 0;
    for (int round = 0; round < 10; ++round)
        for (Addr a = 0; a < 64 * 1024; a += 64)
            c.access(a, AccessType::Read, t += 10000);
    double frac = double(c.requestsFromNm()) / double(c.requests());
    EXPECT_GT(frac, 0.8); // working set fits: mostly NM after round 1
}

TEST(IdealCache, NameIncludesLineSize)
{
    IdealCache c(smallSys(), lineParams(512), "IDEAL-512");
    EXPECT_EQ(c.name(), "IDEAL-512");
}

TEST(IdealCache, CollectStats)
{
    IdealCache c(smallSys(), lineParams(256));
    c.access(0, AccessType::Read, 0);
    StatSet out;
    c.collectStats(out);
    EXPECT_DOUBLE_EQ(out.get("cache.fills"), 1.0);
    EXPECT_TRUE(out.has("cache.wastedFetchFraction"));
}

TEST(IdealCacheDeath, BadLineSize)
{
    DramCacheParams p;
    p.lineBytes = 96; // not a multiple of 64
    // Either the tag store's geometry check or the cache's own 64 B
    // multiple check fires first; both are fatal.
    EXPECT_DEATH(IdealCache(smallSys(), p),
                 "multiple of 64|not divisible");
}

} // namespace
} // namespace h2::baselines
