/**
 * @file
 * Tests for the synthetic workload suite (paper Table 2).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/units.h"
#include "workloads/workload_registry.h"

namespace h2::workloads {
namespace {

TEST(Registry, ThirtyWorkloadsInThreeClasses)
{
    EXPECT_EQ(allWorkloads().size(), 30u);
    EXPECT_EQ(workloadsByClass(MpkiClass::High).size(), 10u);
    EXPECT_EQ(workloadsByClass(MpkiClass::Medium).size(), 10u);
    EXPECT_EQ(workloadsByClass(MpkiClass::Low).size(), 10u);
}

TEST(Registry, NamesMatchTable2)
{
    for (const char *name :
         {"cg.D", "sp.D", "bt.D", "fotonik3d", "lbm", "bwaves", "lu.D",
          "mcf", "gcc", "roms", "mg.C", "omnetpp", "is.C", "dc.B", "ua.D",
          "xz", "parest", "cactus", "ft.C", "cam4", "wrf", "xalanc",
          "imagick", "x264", "perlbench", "blender", "deepsjeng", "nab",
          "leela", "namd"})
        EXPECT_NO_FATAL_FAILURE(findWorkload(name)) << name;
}

TEST(Registry, UniqueNames)
{
    std::set<std::string> names;
    for (const auto &w : allWorkloads())
        names.insert(w.name);
    EXPECT_EQ(names.size(), 30u);
}

TEST(Registry, NasWorkloadsAreMultithreaded)
{
    for (const char *name :
         {"cg.D", "sp.D", "bt.D", "lu.D", "mg.C", "is.C", "dc.B", "ua.D",
          "ft.C"})
        EXPECT_TRUE(findWorkload(name).multithreaded) << name;
    for (const char *name : {"lbm", "mcf", "gcc", "omnetpp", "deepsjeng"})
        EXPECT_FALSE(findWorkload(name).multithreaded) << name;
}

TEST(Registry, FootprintsMatchPaperScale)
{
    EXPECT_NEAR(double(findWorkload("cg.D").footprintBytes) / GiB, 7.8,
                0.1);
    EXPECT_NEAR(double(findWorkload("mcf").footprintBytes) / GiB, 0.1,
                0.01);
    EXPECT_NEAR(double(findWorkload("deepsjeng").footprintBytes) / GiB,
                3.4, 0.1);
}

TEST(Registry, PaperMpkiOrderingWithinTable)
{
    // The registry is in Table 2 order: MPKI (almost) never increases.
    // The paper itself lists namd (0.13) after leela (0.1), so allow
    // that much slack.
    const auto &all = allWorkloads();
    for (size_t i = 1; i < all.size(); ++i)
        EXPECT_GE(all[i - 1].paperMpki + 0.05, all[i].paperMpki)
            << all[i].name;
}

TEST(Registry, QuickSuiteCoversAllClasses)
{
    auto quick = quickSuite();
    ASSERT_GE(quick.size(), 3u);
    std::set<MpkiClass> classes;
    for (const auto &w : quick)
        classes.insert(w.cls);
    EXPECT_EQ(classes.size(), 3u);
}

TEST(Registry, PerCoreFootprintSplitsMp)
{
    const auto &mp = findWorkload("lbm");
    EXPECT_EQ(mp.perCoreFootprint(8), (mp.footprintBytes / 8) & ~4095ull);
    const auto &mt = findWorkload("cg.D");
    EXPECT_EQ(mt.perCoreFootprint(8), mt.footprintBytes);
}

TEST(Sources, Deterministic)
{
    const auto &w = findWorkload("gcc");
    auto a = w.makeSource(0, 8, 42);
    auto b = w.makeSource(0, 8, 42);
    for (int i = 0; i < 1000; ++i) {
        auto ra = a->next();
        auto rb = b->next();
        EXPECT_EQ(ra.vaddr, rb.vaddr);
        EXPECT_EQ(ra.instGap, rb.instGap);
        EXPECT_EQ(ra.type, rb.type);
    }
}

TEST(Sources, CoresDiffer)
{
    const auto &w = findWorkload("gcc");
    auto a = w.makeSource(0, 8, 42);
    auto b = w.makeSource(1, 8, 42);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a->next().vaddr == b->next().vaddr;
    EXPECT_LT(same, 10);
}

class AllWorkloads : public ::testing::TestWithParam<int>
{
  protected:
    const Workload &wl() const { return allWorkloads()[GetParam()]; }
};

TEST_P(AllWorkloads, AddressesWithinFootprint)
{
    const auto &w = wl();
    auto src = w.makeSource(0, 8, 1);
    u64 limit = w.perCoreFootprint(8);
    for (int i = 0; i < 2000; ++i)
        ASSERT_LT(src->next().vaddr, limit) << w.name;
}

TEST_P(AllWorkloads, MemRatioHonored)
{
    const auto &w = wl();
    auto src = w.makeSource(0, 8, 1);
    u64 instr = 0;
    const int accesses = 5000;
    for (int i = 0; i < accesses; ++i)
        instr += src->next().instGap + 1;
    double ratio = double(accesses) / double(instr);
    EXPECT_NEAR(ratio, w.memRatio, w.memRatio * 0.05) << w.name;
}

TEST_P(AllWorkloads, WriteFractionHonored)
{
    const auto &w = wl();
    auto src = w.makeSource(0, 8, 1);
    int writes = 0;
    const int accesses = 20000;
    for (int i = 0; i < accesses; ++i)
        writes += src->next().type == AccessType::Write;
    EXPECT_NEAR(double(writes) / accesses, w.writeFrac, 0.02) << w.name;
}

INSTANTIATE_TEST_SUITE_P(Suite, AllWorkloads, ::testing::Range(0, 30));

TEST(Patterns, StreamIsSequentialWithinPartition)
{
    GenParams p;
    p.footprintBytes = 1 * MiB;
    p.streams = 1;
    p.accessStride = 8;
    p.memRatio = 0.5;
    StreamGen g(p);
    Addr prev = g.next().vaddr;
    for (int i = 0; i < 100; ++i) {
        Addr cur = g.next().vaddr;
        EXPECT_EQ(cur, (prev + 8) % p.footprintBytes);
        prev = cur;
    }
}

TEST(Patterns, PointerChaseVisitsManyDistinctLines)
{
    GenParams p;
    p.footprintBytes = 1 * MiB;
    p.memRatio = 0.5;
    PointerChaseGen g(p);
    std::set<Addr> lines;
    for (int i = 0; i < 4096; ++i)
        lines.insert(g.next().vaddr / 64);
    // A full-period LCG must not revisit within footprint/64 steps.
    EXPECT_EQ(lines.size(), 4096u);
}

TEST(Patterns, ZipfConcentratesOnHotRegion)
{
    GenParams p;
    p.footprintBytes = 16 * MiB;
    p.hotFraction = 0.1;
    p.hotProbability = 0.9;
    p.memRatio = 0.5;
    ZipfGen g(p);
    u64 hotBytes = static_cast<u64>(p.footprintBytes * p.hotFraction);
    int hot = 0;
    for (int i = 0; i < 10000; ++i)
        hot += g.next().vaddr < hotBytes;
    EXPECT_NEAR(hot / 10000.0, 0.9, 0.02);
}

TEST(Patterns, PhasedWindowRelocates)
{
    GenParams p;
    p.footprintBytes = 64 * MiB;
    p.phaseLength = 100;
    p.memRatio = 0.5;
    PhasedGen g(p, 1 * MiB);
    std::set<u64> windows;
    for (int i = 0; i < 1000; ++i)
        windows.insert(g.next().vaddr / (1 * MiB));
    EXPECT_GT(windows.size(), 3u);
}

TEST(Patterns, RandomBurstsAreSequential)
{
    GenParams p;
    p.footprintBytes = 16 * MiB;
    p.memRatio = 0.5;
    p.burstLines = 8;
    RandomGen g(p);
    // Within a burst, consecutive addresses advance by one 64 B line.
    Addr prev = g.next().vaddr;
    int sequentialSteps = 0;
    for (int i = 0; i < 800; ++i) {
        Addr cur = g.next().vaddr;
        if (cur == prev + 64)
            ++sequentialSteps;
        prev = cur;
    }
    // 7 of every 8 steps continue the current burst.
    EXPECT_NEAR(sequentialSteps / 800.0, 7.0 / 8.0, 0.05);
}

TEST(Patterns, SingleLineBurstsNeverSequential)
{
    GenParams p;
    p.footprintBytes = 64 * MiB;
    p.memRatio = 0.5;
    p.burstLines = 1;
    RandomGen g(p);
    Addr prev = g.next().vaddr;
    int sequentialSteps = 0;
    for (int i = 0; i < 1000; ++i) {
        Addr cur = g.next().vaddr;
        if (cur == prev + 64)
            ++sequentialSteps;
        prev = cur;
    }
    EXPECT_LT(sequentialSteps, 5);
}

TEST(Patterns, GatherMixesRegionAndStreams)
{
    GenParams p;
    p.footprintBytes = 64 * MiB;
    p.memRatio = 0.5;
    p.hotBytes = 4 * MiB;
    p.hotProbability = 0.3;
    GatherGen g(p);
    int inRegion = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        inRegion += g.next().vaddr < 4 * MiB;
    EXPECT_NEAR(inRegion / double(n), 0.3, 0.02);
}

TEST(Patterns, GatherStreamsAreSequentialOutsideRegion)
{
    GenParams p;
    p.footprintBytes = 64 * MiB;
    p.memRatio = 0.5;
    p.hotBytes = 4 * MiB;
    p.hotProbability = 0.0; // pure stream side
    p.streams = 1;
    p.accessStride = 8;
    GatherGen g(p);
    Addr prev = g.next().vaddr;
    EXPECT_GE(prev, 4 * MiB);
    for (int i = 0; i < 100; ++i) {
        Addr cur = g.next().vaddr;
        EXPECT_EQ(cur, 4 * MiB + (prev - 4 * MiB + 8) % (60 * MiB));
        prev = cur;
    }
}

TEST(Patterns, ZipfHotSideIsResidentLoop)
{
    GenParams p;
    p.footprintBytes = 16 * MiB;
    p.hotBytes = 64 * KiB;
    p.hotProbability = 1.0;
    p.memRatio = 0.5;
    ZipfGen g(p);
    // One full sweep covers every hot line exactly once.
    std::set<Addr> lines;
    for (u64 i = 0; i < 64 * KiB / 64; ++i)
        lines.insert(g.next().vaddr / 64);
    EXPECT_EQ(lines.size(), 64 * KiB / 64);
}

TEST(Registry, GatherAndBurstWorkloadsConfigured)
{
    EXPECT_EQ(findWorkload("cg.D").pattern, Pattern::Gather);
    EXPECT_GT(findWorkload("cg.D").hotBytes, 0u);
    EXPECT_GT(findWorkload("xz").burstLines, 1u);
    EXPECT_EQ(findWorkload("deepsjeng").burstLines, 1u);
}

TEST(Patterns, StrideSweeps)
{
    GenParams p;
    p.footprintBytes = 1 * MiB;
    p.memRatio = 0.5;
    StrideGen g(p, 1024);
    Addr first = g.next().vaddr;
    Addr second = g.next().vaddr;
    EXPECT_EQ(second - first, 1024u);
}

TEST(PatternsDeath, BadMemRatio)
{
    GenParams p;
    p.memRatio = 0.0;
    EXPECT_DEATH(RandomGen{p}, "memRatio");
}

} // namespace
} // namespace h2::workloads
