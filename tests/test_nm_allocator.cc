/**
 * @file
 * Tests for NM location bookkeeping and the FIFO victim scan
 * (paper section 3.5).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/nm_allocator.h"

namespace h2::core {
namespace {

TEST(NmAllocator, BootCarveOut)
{
    NmAllocator a(100, 10);
    EXPECT_EQ(a.numLocs(), 100u);
    EXPECT_EQ(a.poolSize(), 10u);
    for (u64 i = 0; i < 10; ++i)
        EXPECT_EQ(a.owner(i), NmAllocator::Owner::CachePool);
    for (u64 i = 10; i < 100; ++i)
        EXPECT_EQ(a.owner(i), NmAllocator::Owner::Flat);
    EXPECT_EQ(a.flatCount(), 90u);
}

TEST(NmAllocator, PopPushPoolRoundTrip)
{
    NmAllocator a(100, 10);
    u64 loc = a.popPool();
    EXPECT_EQ(a.owner(loc), NmAllocator::Owner::CacheData);
    EXPECT_EQ(a.poolSize(), 9u);
    a.pushPool(loc);
    EXPECT_EQ(a.owner(loc), NmAllocator::Owner::CachePool);
    EXPECT_EQ(a.poolSize(), 10u);
}

TEST(NmAllocator, PopDrainsDistinctLocations)
{
    NmAllocator a(100, 10);
    std::set<u64> locs;
    while (!a.poolEmpty())
        locs.insert(a.popPool());
    EXPECT_EQ(locs.size(), 10u);
}

TEST(NmAllocator, VictimScanSkipsNonFlat)
{
    NmAllocator a(20, 5);
    u64 probes = 0;
    u64 victim = a.findVictim([](u64) { return false; },
                              [&](u64) { ++probes; });
    // The scan starts after the boot carve-out, so the first flat
    // location wins immediately.
    EXPECT_GE(victim, 5u);
    EXPECT_EQ(a.owner(victim), NmAllocator::Owner::Flat);
    EXPECT_EQ(probes, 1u);
}

TEST(NmAllocator, VictimScanSkipsPinned)
{
    NmAllocator a(20, 5);
    // Pin the first three flat locations (as if their sectors were in
    // the XTA).
    std::set<u64> pinned = {5, 6, 7};
    u64 victim = a.findVictim(
        [&](u64 loc) { return pinned.count(loc) != 0; },
        [](u64) {});
    EXPECT_EQ(victim, 8u);
    EXPECT_EQ(a.skips(), 3u);
}

TEST(NmAllocator, FifoAdvancesAcrossCalls)
{
    NmAllocator a(20, 5);
    u64 v1 = a.findVictim([](u64) { return false; }, [](u64) {});
    u64 v2 = a.findVictim([](u64) { return false; }, [](u64) {});
    EXPECT_NE(v1, v2);
    EXPECT_EQ(v2, v1 + 1);
}

TEST(NmAllocator, FifoWrapsAround)
{
    NmAllocator a(8, 2);
    std::set<u64> seen;
    for (int i = 0; i < 6; ++i)
        seen.insert(a.findVictim([](u64) { return false; }, [](u64) {}));
    EXPECT_EQ(seen.size(), 6u); // all flat locations visited once
    // The next victim wraps back to the first flat location.
    u64 again = a.findVictim([](u64) { return false; }, [](u64) {});
    EXPECT_TRUE(seen.count(again));
}

TEST(NmAllocator, OwnerTransitions)
{
    NmAllocator a(20, 5);
    u64 victim = a.findVictim([](u64) { return false; }, [](u64) {});
    a.setOwner(victim, NmAllocator::Owner::CacheData);
    EXPECT_EQ(a.owner(victim), NmAllocator::Owner::CacheData);
    a.pushPool(victim);
    EXPECT_EQ(a.owner(victim), NmAllocator::Owner::CachePool);
}

TEST(NmAllocatorDeath, PopEmptyPool)
{
    NmAllocator a(20, 1);
    a.popPool();
    EXPECT_DEATH(a.popPool(), "empty");
}

TEST(NmAllocatorDeath, PushNonCacheLocation)
{
    NmAllocator a(20, 5);
    EXPECT_DEATH(a.pushPool(15), "non-cache");
}

TEST(NmAllocatorDeath, CacheConsumesWholeNm)
{
    EXPECT_DEATH(NmAllocator(10, 10), "whole NM");
}

TEST(NmAllocatorDeath, AllPinnedPanics)
{
    NmAllocator a(8, 2);
    EXPECT_DEATH(a.findVictim([](u64) { return true; }, [](u64) {}),
                 "no flat-resident");
}

} // namespace
} // namespace h2::core
