/**
 * @file
 * Golden-metrics regression harness: full Metrics::toJson() snapshots
 * (every scalar plus the per-design `detail` counters) for a small
 * design x workload grid are checked into tests/golden/. Any silent
 * behavioural drift — a changed eviction decision, a miscounted stat,
 * a perturbed random stream — shows up as a snapshot diff even when
 * every invariant-style unit test still passes.
 *
 * To regenerate after an intentional behavioural change:
 *
 *   H2_UPDATE_GOLDEN=1 ctest -R GoldenMetrics
 *
 * then review the diff like any other code change.
 *
 * Comparison is exact for integers and text; doubles tolerate 1e-9
 * relative error so the snapshots survive compilers that contract
 * a*b+c into fma (the checked-in values come from one build type, CI
 * runs several).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/runner.h"
#include "workloads/workload_spec.h"

#ifndef H2_GOLDEN_DIR
#error "H2_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

namespace h2 {
namespace {

sim::RunConfig
goldenConfig()
{
    // Small but non-trivial: two cores, warmup, default capacities.
    sim::RunConfig cfg;
    cfg.numCores = 2;
    cfg.instrPerCore = 30'000;
    cfg.warmupInstrPerCore = 10'000;
    cfg.seed = 42;
    return cfg;
}

bool
updateRequested()
{
    const char *env = std::getenv("H2_UPDATE_GOLDEN");
    return env && *env && std::string(env) != "0";
}

std::string
goldenPath(const std::string &design, const std::string &workload,
           bool queue, dram::FarMemTech fm)
{
    std::string file = design + "_" + workload + ".json";
    for (char &c : file)
        if (c == ':' || c == '+' || c == '/')
            c = '-';
    std::string dir = std::string(H2_GOLDEN_DIR);
    if (!queue)
        dir += "/noqueue";
    if (fm == dram::FarMemTech::Pcm)
        dir += "/pcm";
    return dir + "/" + file;
}

/** True when a token is spelled as floating point ("." or exponent).
 *  A pair gets tolerance when either side is float-spelled: a float
 *  metric that lands on an exactly integral value prints without a
 *  fractional part, so requiring both sides would turn rounding-level
 *  drift into an exact-match failure. Integer counters always print
 *  integer-spelled on both sides and still compare exactly. */
bool
looksFloat(const std::string &tok)
{
    return tok.find_first_of(".eE") != std::string::npos &&
           tok.find_first_of("0123456789") != std::string::npos;
}

bool
isNumChar(char c)
{
    return (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' ||
           c == 'e' || c == 'E';
}

/**
 * Compare two JSON renderings: identical except that floating-point
 * literals may differ by 1e-9 relative. Structure, keys, and integer
 * values must match exactly. Returns "" on match, else a description
 * of the first difference.
 */
std::string
compareJson(const std::string &want, const std::string &got)
{
    size_t i = 0, j = 0;
    while (i < want.size() && j < got.size()) {
        if (want[i] == got[j] && !isNumChar(want[i])) {
            ++i, ++j;
            continue;
        }
        if (isNumChar(want[i]) && isNumChar(got[j])) {
            size_t i0 = i, j0 = j;
            while (i < want.size() && isNumChar(want[i]))
                ++i;
            while (j < got.size() && isNumChar(got[j]))
                ++j;
            std::string a = want.substr(i0, i - i0);
            std::string b = got.substr(j0, j - j0);
            if (a == b)
                continue;
            if (looksFloat(a) || looksFloat(b)) {
                double da = std::strtod(a.c_str(), nullptr);
                double db = std::strtod(b.c_str(), nullptr);
                double scale = std::max(std::abs(da), std::abs(db));
                if (std::abs(da - db) <= 1e-9 * std::max(scale, 1.0))
                    continue;
            }
            return "value mismatch near offset " + std::to_string(i0) +
                   ": golden has '" + a + "', run produced '" + b + "'";
        }
        return std::string("text mismatch near offset ") +
               std::to_string(i) + ": golden has '" + want[i] +
               "', run produced '" + got[j] + "'";
    }
    if (i != want.size() || j != got.size())
        return "length mismatch (golden " + std::to_string(want.size()) +
               " bytes, run " + std::to_string(got.size()) + ")";
    return {};
}

void
checkGolden(const std::string &design, const std::string &workloadSpec,
            bool queue = true,
            dram::FarMemTech fm = dram::FarMemTech::Dram)
{
    sim::RunConfig cfg = goldenConfig();
    cfg.queue = queue;
    cfg.fm = fm;
    sim::Metrics m = sim::simulateOne(
        cfg, workloads::resolveWorkloadOrFatal(workloadSpec), design);
    std::string got = m.toJson();
    std::string path = goldenPath(design, workloadSpec, queue, fm);

    if (updateRequested()) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << got;
        SUCCEED() << "updated " << path;
        return;
    }

    std::ifstream in(path);
    if (!in) {
        FAIL() << "missing golden snapshot " << path
               << " — generate it with H2_UPDATE_GOLDEN=1 and commit it";
        return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string diff = compareJson(buf.str(), got);
    EXPECT_TRUE(diff.empty())
        << design << " x " << workloadSpec << " drifted from " << path
        << ":\n" << diff
        << "\nIf the change is intentional, regenerate with "
           "H2_UPDATE_GOLDEN=1 ctest -R GoldenMetrics and commit the "
           "diff.\nFull run output:\n" << got;
}

// The grid: the three structurally different memory organizations
// (flat baseline, cache-only DFC, cache+migration Hybrid2) against a
// streaming high-MPKI, a pointer-heavy high-MPKI, and a low-MPKI
// workload, plus one mix to pin the interleave behaviour.

TEST(GoldenMetrics, BaselineLbm) { checkGolden("baseline", "lbm"); }
TEST(GoldenMetrics, BaselineMcf) { checkGolden("baseline", "mcf"); }
TEST(GoldenMetrics, BaselineXalanc) { checkGolden("baseline", "xalanc"); }
TEST(GoldenMetrics, DfcLbm) { checkGolden("dfc", "lbm"); }
TEST(GoldenMetrics, DfcMcf) { checkGolden("dfc", "mcf"); }
TEST(GoldenMetrics, DfcXalanc) { checkGolden("dfc", "xalanc"); }
TEST(GoldenMetrics, Hybrid2Lbm) { checkGolden("hybrid2", "lbm"); }
TEST(GoldenMetrics, Hybrid2Mcf) { checkGolden("hybrid2", "mcf"); }
TEST(GoldenMetrics, Hybrid2Xalanc) { checkGolden("hybrid2", "xalanc"); }
TEST(GoldenMetrics, Hybrid2Mix)
{
    checkGolden("hybrid2", "mix:mcf+xalanc:2");
}

// One leg per remaining registered design: h2lint's R3 requires every
// H2_REGISTER_DESIGN to carry at least one snapshot, so a design whose
// behaviour silently drifts — or whose registration is added without
// regression coverage — fails the tree lint, not just code review.
// lbm (streaming, high MPKI) exercises eviction/migration machinery in
// all of them within the small golden budget.

TEST(GoldenMetrics, ChameleonLbm) { checkGolden("chameleon", "lbm"); }
TEST(GoldenMetrics, IdealLbm) { checkGolden("ideal", "lbm"); }
TEST(GoldenMetrics, TaglessLbm) { checkGolden("tagless", "lbm"); }
TEST(GoldenMetrics, LgmLbm) { checkGolden("lgm", "lbm"); }
TEST(GoldenMetrics, MempodLbm) { checkGolden("mempod", "lbm"); }

// queue=off legs: pin the pre-queue analytic dispatch model so the
// `queue off` escape hatch stays bit-compatible with the metrics the
// earlier analytic-only simulator produced. One leg per structural
// memory organization is enough — the controller passthrough is
// design-agnostic.

TEST(GoldenMetricsNoQueue, BaselineLbm)
{
    checkGolden("baseline", "lbm", /*queue=*/false);
}
TEST(GoldenMetricsNoQueue, DfcMcf)
{
    checkGolden("dfc", "mcf", /*queue=*/false);
}
TEST(GoldenMetricsNoQueue, Hybrid2Lbm)
{
    checkGolden("hybrid2", "lbm", /*queue=*/false);
}
TEST(GoldenMetricsNoQueue, Hybrid2Mix)
{
    checkGolden("hybrid2", "mix:mcf+xalanc:2", /*queue=*/false);
}

// fm=pcm legs: pin the PCM far-memory backend — asymmetric read/write
// timing (tRCD/tWR), the asymmetric per-operation energy split, and
// the per-bank wear counters (`fm.wearTotalBytes` etc. appear only
// here). Same three structural organizations as the noqueue suite,
// plus one pointer-heavy workload for a second traffic shape.

TEST(GoldenMetricsPcm, BaselineLbm)
{
    checkGolden("baseline", "lbm", /*queue=*/true,
                dram::FarMemTech::Pcm);
}
TEST(GoldenMetricsPcm, DfcLbm)
{
    checkGolden("dfc", "lbm", /*queue=*/true, dram::FarMemTech::Pcm);
}
TEST(GoldenMetricsPcm, Hybrid2Lbm)
{
    checkGolden("hybrid2", "lbm", /*queue=*/true, dram::FarMemTech::Pcm);
}
TEST(GoldenMetricsPcm, Hybrid2Mcf)
{
    checkGolden("hybrid2", "mcf", /*queue=*/true, dram::FarMemTech::Pcm);
}

} // namespace
} // namespace h2
