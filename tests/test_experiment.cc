/**
 * @file
 * Tests for the declarative experiment files (sim/experiment.h) and
 * the structured report rendering (sim/report.h) behind
 * `h2sim --experiment/--format/--out`.
 */

#include <gtest/gtest.h>

#include <fstream>

#include "common/units.h"
#include "sim/experiment.h"
#include "sim/report.h"

namespace h2::sim {
namespace {

constexpr const char *kGoodExperiment = R"(
# quick two-design comparison
design   dfc:1024          # canonicalizes to plain "dfc"
design   hybrid2:cache=2
workload lbm
workload mcf
nm-mib   64
fm-mib   1024
cores    1
instr    4000
warmup   0
seed     7
jobs     2
speedup  on
format   json
)";

TEST(ExperimentParse, GoodFileParsesAndCanonicalizes)
{
    std::string err;
    auto spec = ExperimentSpec::parse(kGoodExperiment, &err);
    ASSERT_TRUE(spec) << err;
    ASSERT_EQ(spec->designs.size(), 2u);
    EXPECT_EQ(spec->designs[0], "dfc"); // default line elided
    EXPECT_EQ(spec->designs[1], "hybrid2:cache=2");
    ASSERT_EQ(spec->workloads.size(), 2u);
    EXPECT_EQ(spec->workloads[0], "lbm");
    EXPECT_EQ(spec->config.nmBytes, 64 * MiB);
    EXPECT_EQ(spec->config.fmBytes, 1024 * MiB);
    EXPECT_EQ(spec->config.numCores, 1u);
    EXPECT_EQ(spec->config.instrPerCore, 4000u);
    EXPECT_EQ(spec->config.seed, 7u);
    EXPECT_EQ(spec->jobs, 2u);
    EXPECT_TRUE(spec->speedup);
    EXPECT_EQ(spec->format, "json");
}

TEST(ExperimentParse, KeyEqualsValueSpellingAccepted)
{
    std::string err;
    auto spec = ExperimentSpec::parse(
        "design=dfc\nworkload=lbm\ninstr=1000\n", &err);
    ASSERT_TRUE(spec) << err;
    EXPECT_EQ(spec->designs[0], "dfc");
    EXPECT_EQ(spec->config.instrPerCore, 1000u);
}

TEST(ExperimentParse, ErrorsNameTheOffendingLine)
{
    std::string err;
    EXPECT_FALSE(ExperimentSpec::parse(
        "design dfc\nworkload lbm\nfrobnicate 3\n", &err));
    EXPECT_NE(err.find("line 3"), std::string::npos) << err;
    EXPECT_NE(err.find("frobnicate"), std::string::npos);

    EXPECT_FALSE(
        ExperimentSpec::parse("design frobcache\nworkload lbm\n", &err));
    EXPECT_NE(err.find("unknown design"), std::string::npos) << err;

    EXPECT_FALSE(
        ExperimentSpec::parse("design dfc\nworkload nosuch\n", &err));
    EXPECT_NE(err.find("unknown workload"), std::string::npos) << err;

    EXPECT_FALSE(
        ExperimentSpec::parse("design dfc\nworkload lbm\ninstr x\n", &err));
    EXPECT_NE(err.find("bad value"), std::string::npos) << err;
}

TEST(ExperimentParse, FmDirectiveSelectsFarMemoryTech)
{
    std::string err;
    auto spec = ExperimentSpec::parse(
        "design dfc\nworkload lbm\nfm pcm\n", &err);
    ASSERT_TRUE(spec) << err;
    EXPECT_EQ(spec->config.fm, dram::FarMemTech::Pcm);

    spec = ExperimentSpec::parse("design dfc\nworkload lbm\nfm dram\n",
                                 &err);
    ASSERT_TRUE(spec) << err;
    EXPECT_EQ(spec->config.fm, dram::FarMemTech::Dram);

    // Default stays DRAM.
    spec = ExperimentSpec::parse("design dfc\nworkload lbm\n", &err);
    ASSERT_TRUE(spec) << err;
    EXPECT_EQ(spec->config.fm, dram::FarMemTech::Dram);

    EXPECT_FALSE(ExperimentSpec::parse(
        "design dfc\nworkload lbm\nfm nvram\n", &err));
    EXPECT_NE(err.find("bad value for fm"), std::string::npos) << err;
    EXPECT_NE(err.find("dram|pcm"), std::string::npos) << err;
}

TEST(ExperimentParse, MissingDesignOrWorkloadRejected)
{
    std::string err;
    EXPECT_FALSE(ExperimentSpec::parse("workload lbm\n", &err));
    EXPECT_NE(err.find("no 'design'"), std::string::npos) << err;
    EXPECT_FALSE(ExperimentSpec::parse("design dfc\n", &err));
    EXPECT_NE(err.find("no 'workload'"), std::string::npos) << err;
}

TEST(ExperimentParse, InvalidRunConfigRejected)
{
    std::string err;
    // NM >= FM: the validation satellite catches it before any run.
    EXPECT_FALSE(ExperimentSpec::parse(
        "design dfc\nworkload lbm\nnm-mib 1024\nfm-mib 512\n", &err));
    EXPECT_NE(err.find("NM capacity"), std::string::npos) << err;

    EXPECT_FALSE(ExperimentSpec::parse(
        "design dfc\nworkload lbm\ncores 0\n", &err));
    EXPECT_NE(err.find("numCores"), std::string::npos) << err;

    EXPECT_FALSE(ExperimentSpec::parse(
        "design dfc\nworkload lbm\ninstr 0\n", &err));
    EXPECT_NE(err.find("instrPerCore"), std::string::npos) << err;
}

TEST(ExperimentParse, MissingFileReportsPath)
{
    std::string err;
    EXPECT_FALSE(ExperimentSpec::parseFile("/nonexistent/exp.txt", &err));
    EXPECT_NE(err.find("/nonexistent/exp.txt"), std::string::npos);
}

class ExperimentRunTest : public ::testing::Test
{
  protected:
    static ExperimentSpec
    tinySpec()
    {
        // lbm's real footprint needs the default capacities; shrink
        // the run instead via a tiny instruction budget.
        std::string err;
        auto spec = ExperimentSpec::parse("design dfc\n"
                                          "design baseline\n"
                                          "workload lbm\n"
                                          "instr 3000\n"
                                          "cores 1\n"
                                          "jobs 2\n"
                                          "speedup on\n",
                                          &err);
        EXPECT_TRUE(spec) << err;
        return *spec;
    }
};

TEST_F(ExperimentRunTest, RunsSweepInFileOrder)
{
    ExperimentSpec spec = tinySpec();
    std::vector<RunRecord> records = runExperiment(spec);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].workload, "lbm");
    EXPECT_EQ(records[0].design, "dfc");
    EXPECT_EQ(records[1].design, "baseline");
    for (const auto &rec : records) {
        EXPECT_GT(rec.metrics.instructions, 0u);
        EXPECT_TRUE(rec.hasSpeedup);
        EXPECT_GT(rec.speedup, 0.0);
    }
    // The baseline's speedup over itself is exactly one.
    EXPECT_DOUBLE_EQ(records[1].speedup, 1.0);
}

TEST_F(ExperimentRunTest, AllFormatsRenderTheSameRuns)
{
    ExperimentSpec spec = tinySpec();
    std::vector<RunRecord> records = runExperiment(spec);

    std::string text =
        renderReport(spec.config, records, OutputFormat::Text);
    std::string json =
        renderReport(spec.config, records, OutputFormat::Json);
    std::string csv = renderReport(spec.config, records, OutputFormat::Csv);

    // Text carries the human-readable block per run.
    EXPECT_NE(text.find("lbm on DFC-1024"), std::string::npos) << text;
    EXPECT_NE(text.find("speedup_vs_baseline"), std::string::npos);

    // JSON carries the same numbers machine-readably.
    EXPECT_NE(json.find("\"design_spec\": \"dfc\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"instructions\": " +
                        std::to_string(records[0].metrics.instructions)),
              std::string::npos);
    EXPECT_NE(json.find("\"speedup_vs_baseline\""), std::string::npos);

    // CSV: header plus one row per record, speedup column appended.
    ASSERT_EQ(csv.find(Metrics::csvHeader() + ",speedup_vs_baseline\n"),
              0u)
        << csv;
    size_t rows = 0;
    for (char c : csv)
        rows += c == '\n';
    EXPECT_EQ(rows, 1 + records.size());
}

TEST(OutputFormatTest, ParseNames)
{
    EXPECT_EQ(parseOutputFormat("text"), OutputFormat::Text);
    EXPECT_EQ(parseOutputFormat("json"), OutputFormat::Json);
    EXPECT_EQ(parseOutputFormat("csv"), OutputFormat::Csv);
    EXPECT_FALSE(parseOutputFormat("yaml").has_value());
}

TEST(ReportWrite, WritesToFile)
{
    std::string path = ::testing::TempDir() + "h2_report_test.json";
    writeReport("{\"ok\": true}\n", path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "{\"ok\": true}\n");
}

} // namespace
} // namespace h2::sim
