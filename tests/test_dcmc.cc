/**
 * @file
 * Tests for the DCMC: the Figure 7 access path, Figure 8 allocation,
 * Figure 9 evictions, migration, ablations, and metadata accounting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/units.h"
#include "core/dcmc.h"

namespace h2::core {
namespace {

mem::MemSystemParams
smallSys()
{
    mem::MemSystemParams p;
    // These suites white-box the designs against the analytic
    // immediate-dispatch device model; the queued controller has its
    // own suite (test_mem_controller) and the queue=on goldens.
    p.queue.enabled = false;
    p.nmBytes = 16 * MiB;
    p.fmBytes = 64 * MiB;
    return p;
}

Hybrid2Params
smallParams()
{
    Hybrid2Params p;
    p.cacheBytes = 1 * MiB; // 512 sectors, 32 sets x 16 ways
    p.sectorBytes = 2048;
    p.lineBytes = 256;
    return p;
}

class DcmcTest : public ::testing::Test
{
  protected:
    DcmcTest()
        : dcmc(smallSys(), smallParams())
    {
    }

    /** Sector counts of the small layout, derived the same way. */
    static constexpr u64 kCacheSectors = 512;
    u64 nmFlatSectors() const { return dcmc.remapTable().nmFlatSectors(); }
    u64 fmSectorOf(u64 flat) const { return flat - nmFlatSectors(); }

    Addr
    sectorAddr(u64 flatSector, u64 offset = 0) const
    {
        return flatSector * 2048 + offset;
    }

    /** A flat sector that initially lives in FM, aligned to set 0. */
    u64
    fmFlatSector(u64 k = 0) const
    {
        u64 sets = dcmc.xta().numSets();
        u64 base = ((nmFlatSectors() + sets - 1) / sets + 1) * sets;
        return base + k * sets; // all map to set 0
    }

    Dcmc dcmc;
    Tick t = 0;

    mem::MemResult
    access(Addr addr, AccessType type = AccessType::Read)
    {
        t += 10000;
        return dcmc.access(addr, type, t);
    }
};

TEST_F(DcmcTest, LayoutAndCapacity)
{
    // flat = (NM lined - cache) + FM sectors.
    u64 nmSectors = 16 * MiB / 2048;
    // Fractional metadata sectors round up (the tables must fit).
    u64 metaSectors = u64(std::ceil(double(nmSectors) * 0.035));
    u64 nmLocs = nmSectors - metaSectors;
    EXPECT_EQ(nmFlatSectors(), nmLocs - kCacheSectors);
    EXPECT_EQ(dcmc.flatCapacity(),
              (nmLocs - kCacheSectors + 64 * MiB / 2048) * 2048);
    // Hybrid2's headline: more capacity than a cache of the whole NM.
    EXPECT_GT(dcmc.flatCapacity(), smallSys().fmBytes);
}

TEST_F(DcmcTest, Case2bFirstTouchOfFmSector)
{
    u64 s = fmFlatSector();
    auto r = access(sectorAddr(s));
    EXPECT_FALSE(r.fromNm); // the line came from FM
    auto view = dcmc.inspect(s);
    EXPECT_TRUE(view.cached);
    EXPECT_FALSE(view.home.inNm);
    EXPECT_EQ(view.home.idx, fmSectorOf(s));
    EXPECT_EQ(view.validMask, 1u); // only line 0 fetched
    EXPECT_EQ(dcmc.allocator().poolSize(), kCacheSectors - 1);
}

TEST_F(DcmcTest, Case1aLineHitServedFromNm)
{
    u64 s = fmFlatSector();
    access(sectorAddr(s));
    auto r = access(sectorAddr(s));
    EXPECT_TRUE(r.fromNm);
    EXPECT_EQ(dcmc.requestsFromNm(), 1u);
}

TEST_F(DcmcTest, Case1bFetchesMissingLine)
{
    u64 s = fmFlatSector();
    access(sectorAddr(s));            // line 0
    auto r = access(sectorAddr(s, 256)); // line 1: XTA hit, line miss
    EXPECT_FALSE(r.fromNm);
    EXPECT_EQ(dcmc.inspect(s).validMask, 0b11u);
}

TEST_F(DcmcTest, Case2aLinksNmSectorWithoutCopy)
{
    u64 s = 100; // NM-resident flat sector
    u64 fmBytesBefore = dcmc.fmDevice().stats().totalBytes();
    auto r = access(sectorAddr(s));
    EXPECT_TRUE(r.fromNm);
    auto view = dcmc.inspect(s);
    EXPECT_TRUE(view.cached);
    EXPECT_TRUE(view.home.inNm);
    EXPECT_EQ(view.home.idx, kCacheSectors + s);
    // All lines valid and dirty by the paper's convention.
    EXPECT_EQ(view.validMask, 0xFFu);
    EXPECT_EQ(view.dirtyMask, 0xFFu);
    // Linking must not touch FM and must not consume cache pool space.
    EXPECT_EQ(dcmc.fmDevice().stats().totalBytes(), fmBytesBefore);
    EXPECT_EQ(dcmc.allocator().poolSize(), kCacheSectors);
}

TEST_F(DcmcTest, WriteSetsDirtyBit)
{
    u64 s = fmFlatSector();
    access(sectorAddr(s), AccessType::Write);
    EXPECT_EQ(dcmc.inspect(s).dirtyMask, 1u);
    access(sectorAddr(s, 256), AccessType::Read);
    EXPECT_EQ(dcmc.inspect(s).dirtyMask, 1u); // read does not dirty
}

TEST_F(DcmcTest, NmSectorEvictionMovesNothing)
{
    // Fill one set with 17 NM-resident sectors: the LRU entry is simply
    // re-assigned (Figure 9 case 1).
    u64 sets = dcmc.xta().numSets();
    for (u64 k = 0; k <= 16; ++k)
        access(sectorAddr(k * sets));
    EXPECT_EQ(dcmc.migrations() + dcmc.evictionsToFm(), 0u);
    EXPECT_GE(dcmc.xta().numSets(), 1u);
    dcmc.checkInvariants();
    EXPECT_EQ(dcmc.fmDevice().stats().totalBytes(), 0u);
}

class DcmcAblationTest : public ::testing::Test
{
  protected:
    static Dcmc
    makeDcmc(bool migrateAll, bool migrateNone, bool freeRemap = false)
    {
        Hybrid2Params p = smallParams();
        p.migrateAll = migrateAll;
        p.migrateNone = migrateNone;
        p.freeRemap = freeRemap;
        return Dcmc(smallSys(), p);
    }
};

TEST_F(DcmcAblationTest, MigrNoneEvictsToFm)
{
    Dcmc d = makeDcmc(false, true);
    u64 sets = d.xta().numSets();
    u64 base = (d.remapTable().nmFlatSectors() / sets + 2) * sets;
    Tick t = 0;
    for (u64 k = 0; k <= 16; ++k)
        d.access(base * 2048 + k * sets * 2048, AccessType::Write,
                 t += 10000);
    EXPECT_EQ(d.migrations(), 0u);
    EXPECT_EQ(d.evictionsToFm(), 1u);
    // The dirty line was written back to FM.
    EXPECT_GT(d.traffic().fmWriteback, 0u);
    // The NM location returned to the pool: 17 fills, one return.
    EXPECT_EQ(d.allocator().poolSize(), 512u - 17 + 1);
    d.checkInvariants();
}

TEST_F(DcmcAblationTest, MigrAllPromotesEvictedSector)
{
    Dcmc d = makeDcmc(true, false);
    u64 sets = d.xta().numSets();
    u64 base = (d.remapTable().nmFlatSectors() / sets + 2) * sets;
    Tick t = 0;
    u64 first = base;
    for (u64 k = 0; k <= 16; ++k)
        d.access((base + k * sets) * 2048, AccessType::Read, t += 10000);
    EXPECT_EQ(d.migrations(), 1u);
    EXPECT_EQ(d.freeFmStack().size(), 1u);
    // The evicted (migrated) sector now lives in NM.
    auto view = d.inspect(first);
    EXPECT_FALSE(view.cached);
    EXPECT_TRUE(view.home.inNm);
    // Migration fetched the 7 missing lines of the sector from FM.
    EXPECT_EQ(d.traffic().fmMigration, 7u * 256);
    d.checkInvariants();

    // Re-touching the migrated sector is now a 2a NM link.
    auto r = d.access(first * 2048, AccessType::Read, t += 10000);
    EXPECT_TRUE(r.fromNm);
}

TEST_F(DcmcAblationTest, PoolExhaustionTriggersSwap)
{
    Dcmc d = makeDcmc(true, false);
    Tick t = 0;
    u64 nmFlat = d.remapTable().nmFlatSectors();
    // Touch far more distinct FM sectors than the cache has room for;
    // with migrate-all every eviction leaks a pool location, so the
    // allocator must start swapping flat NM sectors out to FM.
    for (u64 i = 0; i < 1200; ++i)
        d.access((nmFlat + i) * 2048, AccessType::Read, t += 10000);
    EXPECT_GT(d.swapOuts(), 0u);
    EXPECT_GT(d.traffic().fmSwap, 0u);
    EXPECT_GT(d.traffic().nmSwap, 0u);
    d.checkInvariants();
}

TEST_F(DcmcAblationTest, NoRemapSkipsMetadata)
{
    Dcmc d = makeDcmc(false, false, /*freeRemap=*/true);
    Tick t = 0;
    u64 nmFlat = d.remapTable().nmFlatSectors();
    for (u64 i = 0; i < 100; ++i)
        d.access((nmFlat + i) * 2048, AccessType::Read, t += 10000);
    EXPECT_EQ(d.traffic().nmMeta, 0u);
    StatSet out;
    d.collectStats(out);
    EXPECT_GT(out.get("dcmc.metaSkipped"), 0.0);
    EXPECT_DOUBLE_EQ(out.get("dcmc.metaReads"), 0.0);
}

TEST_F(DcmcAblationTest, DefaultChargesMetadata)
{
    Dcmc d = makeDcmc(false, false);
    Tick t = 0;
    u64 nmFlat = d.remapTable().nmFlatSectors();
    for (u64 i = 0; i < 100; ++i)
        d.access((nmFlat + i) * 2048, AccessType::Read, t += 10000);
    EXPECT_GT(d.traffic().nmMeta, 0u);
}

TEST_F(DcmcTest, AccessCounterOnlyForFmSectors)
{
    u64 fmSector = fmFlatSector();
    access(sectorAddr(fmSector));
    access(sectorAddr(fmSector));
    access(sectorAddr(fmSector));
    const XtaEntry *e = dcmc.xta().peek(fmSector);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->accessCounter, 3u); // fill + 2 hits

    access(sectorAddr(100)); // NM-resident
    access(sectorAddr(100));
    const XtaEntry *n = dcmc.xta().peek(100);
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->accessCounter, 0u);
}

TEST_F(DcmcTest, CounterSaturates)
{
    u64 s = fmFlatSector();
    for (int i = 0; i < 600; ++i)
        access(sectorAddr(s));
    const XtaEntry *e = dcmc.xta().peek(s);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->accessCounter, 511u);
}

TEST_F(DcmcTest, ServedFromNmAccounting)
{
    u64 s = fmFlatSector();
    access(sectorAddr(s));   // FM
    access(sectorAddr(s));   // NM
    access(sectorAddr(100)); // NM (2a)
    EXPECT_EQ(dcmc.requests(), 3u);
    EXPECT_EQ(dcmc.requestsFromNm(), 2u);
}

TEST_F(DcmcTest, CollectStatsKeys)
{
    access(sectorAddr(fmFlatSector()));
    StatSet out;
    dcmc.collectStats(out);
    for (const char *key :
         {"dcmc.lineHits", "dcmc.lineMisses", "dcmc.missSectorNm",
          "dcmc.missSectorFm", "dcmc.migrations", "dcmc.swapOuts",
          "dcmc.bytes.nmMeta", "mem.requests", "fm.reads", "nm.reads"})
        EXPECT_TRUE(out.has(key)) << key;
    EXPECT_DOUBLE_EQ(out.get("dcmc.missSectorFm"), 1.0);
}

TEST_F(DcmcTest, TimingOrdersNmBelowFm)
{
    // An NM hit must complete faster than an equivalent FM fetch, once
    // the fill traffic of the first access has drained.
    u64 s = fmFlatSector();
    auto fmFirst = access(sectorAddr(s));
    Tick fmLatency = fmFirst.completeAt() - t;
    t += 1000 * 1000; // let the NM fill write finish
    auto nmHit = access(sectorAddr(s));
    Tick nmLatency = nmHit.completeAt() - t;
    EXPECT_LT(nmLatency, fmLatency);
}

TEST_F(DcmcTest, InvariantsAfterMixedSequence)
{
    Tick tt = 0;
    for (u64 i = 0; i < 4000; ++i) {
        u64 sector = (i * 37) % (dcmc.flatCapacity() / 2048);
        dcmc.access(sector * 2048 + (i % 8) * 256,
                    i % 3 ? AccessType::Read : AccessType::Write,
                    tt += 5000);
    }
    dcmc.checkInvariants();
    EXPECT_EQ(dcmc.requests(), 4000u);
}

TEST(DcmcWarmupReset, InvariantsHoldAfterResetStats)
{
    // resetStats() zeroes the measured migration/swap counters but the
    // Free-FM-Stack keeps its depth: the conservation invariant must be
    // tracked with lifetime counters, not measured ones.
    Hybrid2Params p = smallParams();
    p.migrateAll = true;
    Dcmc d(smallSys(), p);
    Tick t = 0;
    u64 sets = d.xta().numSets();
    u64 base = (d.remapTable().nmFlatSectors() / sets + 2) * sets;
    // Overflow set 0: each eviction migrates and leaves one free FM
    // location on the stack (the pool still has room, so no swap-out
    // pops it back off).
    for (u64 k = 0; k <= 20; ++k)
        d.access((base + k * sets) * 2048, AccessType::Read, t += 10000);
    ASSERT_GT(d.migrations(), 0u);
    ASSERT_EQ(d.swapOuts(), 0u);
    ASSERT_GT(d.freeFmStack().size(), 0u);

    d.resetStats();
    EXPECT_EQ(d.migrations(), 0u);
    d.checkInvariants(); // non-empty stack vs. zeroed measured counters

    // Keep migrating after the reset; the invariant must still hold.
    for (u64 k = 21; k <= 40; ++k)
        d.access((base + k * sets) * 2048, AccessType::Read, t += 10000);
    EXPECT_GT(d.migrations(), 0u);
    d.checkInvariants();
}

TEST(DcmcReconciliation, TrafficCountersMatchDramDevices)
{
    // Every byte a DRAM device moves must be attributed to exactly one
    // dcmc.bytes.* purpose counter (demand, meta, migration, swap,
    // writeback) — otherwise the Figure 16/17 traffic breakdowns drift
    // from DramStats.
    Dcmc d(smallSys(), smallParams());
    Rng rng(13);
    Tick t = 0;
    for (int i = 0; i < 8000; ++i) {
        Addr a = rng.below(d.flatCapacity() / 64) * 64;
        d.access(a, rng.chance(0.3) ? AccessType::Write : AccessType::Read,
                 t += 4000);
    }
    const DcmcTraffic &b = d.traffic();
    // The scenario must exercise the once-missing counter.
    EXPECT_GT(d.evictionsToFm(), 0u);
    EXPECT_GT(b.nmWriteback, 0u);
    EXPECT_EQ(b.nmDemand + b.nmMeta + b.nmMigration + b.nmSwap +
              b.nmWriteback,
              d.nmDevice().stats().totalBytes());
    EXPECT_EQ(b.fmDemand + b.fmWriteback + b.fmMigration + b.fmSwap,
              d.fmDevice().stats().totalBytes());
}

TEST(DcmcExtension, FreeSpaceHintsSkipSwapCopies)
{
    // Section 3.8: with every sector marked unused, swap-outs move no
    // data; with none marked, every swap-out copies a sector.
    struct Outcome
    {
        u64 swaps;
        u64 freeSwaps;
        u64 fmSwapBytes;
    };
    auto runWith = [](double unusedFrac) {
        Hybrid2Params p = smallParams();
        p.migrateAll = true;
        p.unusedSectorFraction = unusedFrac;
        Dcmc d(smallSys(), p);
        Tick t = 0;
        u64 nmFlat = d.remapTable().nmFlatSectors();
        for (u64 i = 0; i < 1200; ++i)
            d.access((nmFlat + i) * 2048, AccessType::Read, t += 10000);
        d.checkInvariants();
        return Outcome{d.swapOuts(), d.freeSwapOuts(),
                       d.traffic().fmSwap};
    };
    Outcome base = runWith(0.0);
    EXPECT_GT(base.swaps, 0u);
    EXPECT_EQ(base.freeSwaps, 0u);
    EXPECT_GT(base.fmSwapBytes, 0u);

    Outcome hinted = runWith(1.0);
    EXPECT_GT(hinted.swaps, 0u);
    EXPECT_EQ(hinted.freeSwaps, hinted.swaps);
    EXPECT_EQ(hinted.fmSwapBytes, 0u);
}

TEST(DcmcExtension, UnusedMarkingIsDeterministic)
{
    Hybrid2Params p = smallParams();
    p.unusedSectorFraction = 0.3;
    Dcmc a(smallSys(), p), b(smallSys(), p);
    u64 marked = 0;
    for (u64 s = 0; s < 10000; ++s) {
        EXPECT_EQ(a.sectorUnused(s), b.sectorUnused(s));
        marked += a.sectorUnused(s);
    }
    EXPECT_NEAR(double(marked) / 10000.0, 0.3, 0.03);
}

TEST(DcmcConfig, DseGeometries)
{
    // Every Figure 11 design point must construct and run.
    for (u64 cacheMb : {1, 2}) {
        for (u32 sector : {2048u, 4096u}) {
            for (u32 line : {64u, 128u, 256u, 512u}) {
                Hybrid2Params p;
                p.cacheBytes = cacheMb * MiB;
                p.sectorBytes = sector;
                p.lineBytes = line;
                Dcmc d(smallSys(), p);
                Tick t = 0;
                for (u64 i = 0; i < 50; ++i)
                    d.access(i * sector, AccessType::Read, t += 10000);
                d.checkInvariants();
            }
        }
    }
}

TEST(DcmcConfigDeath, LineLargerThanSector)
{
    Hybrid2Params p = smallParams();
    p.lineBytes = 4096;
    EXPECT_DEATH(Dcmc(smallSys(), p), "line size");
}

TEST(DcmcConfigDeath, CacheBiggerThanNm)
{
    Hybrid2Params p = smallParams();
    p.cacheBytes = 32 * MiB;
    EXPECT_DEATH(Dcmc(smallSys(), p), "larger than");
}

} // namespace
} // namespace h2::core
