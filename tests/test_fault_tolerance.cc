/**
 * @file
 * Fault-tolerant sweep execution: library-level fatals are capturable
 * (ScopedFatalCapture), a failing point fails only itself, the
 * --run-timeout watchdog cancels runaway runs, --retries re-runs
 * failed points, and deterministic fault injection (sim/fault_plan.h)
 * drives every recovery path on demand.
 *
 * The death tests also pin the preserved CLI behavior: h2_fatal
 * without a capture still exits the process with code 1.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/log.h"
#include "common/units.h"
#include "sim/experiment.h"
#include "sim/fault_plan.h"
#include "sim/interrupt.h"
#include "sim/sweep_runner.h"
#include "workloads/trace_file.h"
#include "workloads/workload_registry.h"
#include "workloads/workload_spec.h"

namespace h2::sim {
namespace {

RunConfig
quickCfg()
{
    RunConfig cfg;
    cfg.nmBytes = 128 * MiB;
    cfg.fmBytes = 512 * MiB;
    cfg.instrPerCore = 20'000;
    cfg.numCores = 2;
    return cfg;
}

workloads::Workload
tinyWorkload(const char *name = "lbm")
{
    auto w = workloads::findWorkload(name);
    w.footprintBytes = 16 * MiB;
    return w;
}

TEST(FatalCapture, FatalThrowsUnderCapture)
{
    ScopedFatalCapture capture;
    try {
        h2_fatal("captured ", 42, " units");
        FAIL() << "h2_fatal returned";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("captured 42 units"),
                  std::string::npos);
    }
}

TEST(FatalCapture, NestedCapturesStayActive)
{
    ScopedFatalCapture outer;
    {
        ScopedFatalCapture inner;
    }
    // The outer capture is still active after the inner one unwinds.
    EXPECT_TRUE(ScopedFatalCapture::active());
    EXPECT_THROW(h2_fatal("still captured"), FatalError);
}

using FatalCaptureDeathTest = ::testing::Test;

TEST(FatalCaptureDeathTest, FatalWithoutCaptureExits1)
{
    // The CLI contract: an uncaptured fatal is an orderly exit(1) with
    // the message on stderr, never an abort or a thrown exception.
    EXPECT_EXIT(h2_fatal("plain fatal"), testing::ExitedWithCode(1),
                "fatal: plain fatal");
}

TEST(FatalCaptureDeathTest, CaptureDoesNotLeakAcrossScope)
{
    {
        ScopedFatalCapture capture;
    }
    EXPECT_FALSE(ScopedFatalCapture::active());
    EXPECT_EXIT(h2_fatal("after capture"), testing::ExitedWithCode(1),
                "fatal: after capture");
}

TEST(SweepFaultTolerance, BadDesignSpecFailsOnlyItsPoint)
{
    SweepRunner sweep(quickCfg(), 2);
    auto w = tinyWorkload();
    sweep.submit(w, "nosuchdesign");
    sweep.submit(w, "dfc");

    const RunOutcome &bad = sweep.outcome(w, "nosuchdesign");
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.error.find("nosuchdesign"), std::string::npos);

    const RunOutcome &good = sweep.outcome(w, "dfc");
    EXPECT_TRUE(good.ok) << good.error;
    EXPECT_GT(good.metrics.instructions, 0u);
}

TEST(SweepFaultTolerance, RunThrowsFatalErrorForFailedPoint)
{
    SweepRunner sweep(quickCfg(), 1);
    auto w = tinyWorkload();
    EXPECT_THROW(sweep.run(w, "nosuchdesign"), FatalError);
    // The sweep object survives and still executes healthy points.
    EXPECT_TRUE(sweep.outcome(w, "baseline").ok);
}

TEST(SweepFaultTolerance, InvalidRunConfigFailsPointsNotProcess)
{
    RunConfig cfg = quickCfg();
    cfg.nmBytes = cfg.fmBytes; // NM must be smaller than FM
    SweepRunner sweep(cfg, 1);
    const RunOutcome &o = sweep.outcome(tinyWorkload(), "baseline");
    EXPECT_FALSE(o.ok);
    EXPECT_NE(o.error.find("invalid run config"), std::string::npos);
}

TEST(SweepFaultTolerance, TraceStreamMismatchFailsOnlyItsPoint)
{
    // Capture a one-stream trace, then sweep it with numCores=2: the
    // replay point fails with the stream-count fatal (captured), the
    // synthetic point is unaffected.
    auto base = tinyWorkload();
    workloads::TraceData data =
        workloads::captureTrace(base, 1, 42, 5'000);
    std::string path = testing::TempDir() + "one_stream.trace";
    workloads::writeTraceFile(path, data,
                              workloads::TraceFormat::Binary);

    std::string err;
    auto traceWl = workloads::resolveWorkload("trace:" + path, &err);
    ASSERT_TRUE(traceWl) << err;

    SweepRunner sweep(quickCfg(), 2);
    const RunOutcome &bad = sweep.outcome(*traceWl, "baseline");
    EXPECT_FALSE(bad.ok);
    const RunOutcome &good = sweep.outcome(base, "baseline");
    EXPECT_TRUE(good.ok) << good.error;
    std::remove(path.c_str());
}

TEST(SweepFaultTolerance, ExperimentCompletesAroundBadDesign)
{
    ExperimentSpec spec;
    spec.config = quickCfg();
    spec.workloads = {"lbm"};
    // Pre-resolved so the tiny footprint fits quickCfg's capacities.
    spec.resolvedWorkloads = {tinyWorkload()};
    spec.designs = {"dfc", "nosuchdesign", "mempod"};
    spec.speedup = true;

    std::vector<RunRecord> records = runExperiment(spec, 2);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_TRUE(records[0].ok) << records[0].error;
    EXPECT_TRUE(records[0].hasSpeedup);
    EXPECT_FALSE(records[1].ok);
    EXPECT_FALSE(records[1].hasSpeedup);
    EXPECT_NE(records[1].error.find("nosuchdesign"), std::string::npos);
    EXPECT_TRUE(records[2].ok) << records[2].error;
    EXPECT_TRUE(records[2].hasSpeedup);
}

TEST(Watchdog, RunTimeoutCancelsRunawayRun)
{
    RunConfig cfg = quickCfg();
    cfg.instrPerCore = 2'000'000'000; // hours, if left alone
    cfg.runTimeoutMs = 50;
    SweepRunner sweep(cfg, 1);
    const RunOutcome &o = sweep.outcome(tinyWorkload(), "baseline");
    EXPECT_FALSE(o.ok);
    EXPECT_TRUE(o.timedOut);
    EXPECT_NE(o.error.find("run timeout"), std::string::npos);
    EXPECT_EQ(o.attempts, 1u);
}

TEST(Interrupt, PendingInterruptMarksPointsInterrupted)
{
    requestInterrupt();
    SweepRunner sweep(quickCfg(), 1);
    const RunOutcome &o = sweep.outcome(tinyWorkload(), "baseline");
    clearInterruptForTest();
    EXPECT_FALSE(o.ok);
    EXPECT_TRUE(o.interrupted);
}

TEST(FaultPlanParse, AcceptsFullGrammar)
{
    std::string err;
    auto plan = FaultPlan::parse(
        "fail=lbm|baseline,timeout=lbm|hybrid2,flaky=lbm|dfc:1024:2",
        &err);
    ASSERT_TRUE(plan) << err;
    EXPECT_EQ(plan->failKeys.count("lbm|baseline"), 1u);
    EXPECT_EQ(plan->timeoutKeys.count("lbm|hybrid2"), 1u);
    // The flaky count is after the final ':'; the key keeps its own.
    ASSERT_EQ(plan->flakyKeys.count("lbm|dfc:1024"), 1u);
    EXPECT_EQ(plan->flakyKeys.at("lbm|dfc:1024"), 2u);
}

TEST(FaultPlanParse, RejectsBadPlans)
{
    std::string err;
    EXPECT_FALSE(FaultPlan::parse("", &err));
    EXPECT_FALSE(FaultPlan::parse("explode=lbm|dfc", &err));
    EXPECT_NE(err.find("explode"), std::string::npos);
    EXPECT_FALSE(FaultPlan::parse("fail", &err));
    EXPECT_FALSE(FaultPlan::parse("fail=", &err));
    EXPECT_FALSE(FaultPlan::parse("flaky=lbm|dfc", &err));
    EXPECT_FALSE(FaultPlan::parse("flaky=lbm|dfc:zero", &err));
    EXPECT_FALSE(FaultPlan::parse("flaky=lbm|dfc:0", &err));
}

TEST(FaultInjection, InjectedFailureFailsThePoint)
{
    RunConfig cfg = quickCfg();
    auto w = tinyWorkload();
    std::string err;
    auto plan = FaultPlan::parse("fail=" + SweepRunner::key(w, "baseline"),
                                 &err);
    ASSERT_TRUE(plan) << err;

    SweepRunner sweep(cfg, 1);
    sweep.setFaultPlan(&*plan);
    const RunOutcome &bad = sweep.outcome(w, "baseline");
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.error.find("injected failure"), std::string::npos);
    // Other points are untouched by the plan.
    EXPECT_TRUE(sweep.outcome(w, "dfc").ok);
}

TEST(FaultInjection, FlakySucceedsWithEnoughRetries)
{
    RunConfig cfg = quickCfg();
    cfg.retries = 2;
    auto w = tinyWorkload();
    std::string err;
    auto plan = FaultPlan::parse(
        "flaky=" + SweepRunner::key(w, "baseline") + ":2", &err);
    ASSERT_TRUE(plan) << err;

    SweepRunner sweep(cfg, 1);
    sweep.setFaultPlan(&*plan);
    const RunOutcome &o = sweep.outcome(w, "baseline");
    EXPECT_TRUE(o.ok) << o.error;
    EXPECT_EQ(o.attempts, 3u);

    // A flaky-free retried point reports exactly one attempt, and its
    // metrics match an unretried run bit-for-bit.
    SweepRunner plain(quickCfg(), 1);
    EXPECT_EQ(o.metrics, plain.outcome(w, "baseline").metrics);
}

TEST(FaultInjection, FlakyFailsWithTooFewRetries)
{
    RunConfig cfg = quickCfg();
    cfg.retries = 1;
    auto w = tinyWorkload();
    std::string err;
    auto plan = FaultPlan::parse(
        "flaky=" + SweepRunner::key(w, "baseline") + ":2", &err);
    ASSERT_TRUE(plan) << err;

    SweepRunner sweep(cfg, 1);
    sweep.setFaultPlan(&*plan);
    const RunOutcome &o = sweep.outcome(w, "baseline");
    EXPECT_FALSE(o.ok);
    EXPECT_EQ(o.attempts, 2u);
    EXPECT_NE(o.error.find("injected flaky failure"), std::string::npos);
}

TEST(FaultInjection, InjectedTimeoutReportsTimedOut)
{
    RunConfig cfg = quickCfg();
    cfg.runTimeoutMs = 30;
    auto w = tinyWorkload();
    std::string err;
    auto plan = FaultPlan::parse(
        "timeout=" + SweepRunner::key(w, "baseline"), &err);
    ASSERT_TRUE(plan) << err;

    SweepRunner sweep(cfg, 1);
    sweep.setFaultPlan(&*plan);
    const RunOutcome &o = sweep.outcome(w, "baseline");
    EXPECT_FALSE(o.ok);
    EXPECT_TRUE(o.timedOut);
}

TEST(FaultInjection, InjectedTimeoutWithoutWatchdogIsAnError)
{
    // No --run-timeout: the injection refuses to hang forever and
    // fails the point immediately instead.
    RunConfig cfg = quickCfg();
    auto w = tinyWorkload();
    std::string err;
    auto plan = FaultPlan::parse(
        "timeout=" + SweepRunner::key(w, "baseline"), &err);
    ASSERT_TRUE(plan) << err;

    SweepRunner sweep(cfg, 1);
    sweep.setFaultPlan(&*plan);
    const RunOutcome &o = sweep.outcome(w, "baseline");
    EXPECT_FALSE(o.ok);
    EXPECT_FALSE(o.timedOut);
    EXPECT_NE(o.error.find("needs --run-timeout"), std::string::npos);
}

} // namespace
} // namespace h2::sim
