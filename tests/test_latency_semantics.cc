/**
 * @file
 * Critical-path timeline semantics: structural traffic (evictions,
 * swap-outs, migrations, metadata reads) must measurably extend miss
 * completion times in every design, and a miss can never complete
 * faster than the sum of its serialized DRAM components.
 *
 * All scenario accesses are spaced far apart (quiesced devices), so the
 * measured latencies decompose into the serialized segments only.
 */

#include <gtest/gtest.h>

#include <vector>

#include "baselines/chameleon.h"
#include "baselines/ideal_cache.h"
#include "baselines/lgm.h"
#include "baselines/mempod.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/dcmc.h"
#include "dram/dram_device.h"
#include "mem/timeline.h"

namespace h2 {
namespace {

// ---------------------------------------------------------------------
// Timeline combinator unit tests.
// ---------------------------------------------------------------------

TEST(Timeline, SerializeExtendsCriticalPath)
{
    mem::Timeline tl(1000);
    EXPECT_EQ(tl.issuedAt(), 1000u);
    EXPECT_EQ(tl.completeAt(), 1000u);
    tl.advance(30);
    EXPECT_EQ(tl.now(), 1030u);
    tl.serialize(1500);
    EXPECT_EQ(tl.completeAt(), 1500u);
    tl.serialize(1200); // already past 1200: no-op extension
    EXPECT_EQ(tl.completeAt(), 1500u);
    EXPECT_EQ(tl.criticalPathPs(), 500u);
    EXPECT_EQ(tl.segments(), 3u);
}

TEST(Timeline, OverlapNeverExtendsCompletion)
{
    mem::Timeline tl(1000);
    tl.serialize(1400);
    tl.overlap(9999);
    EXPECT_EQ(tl.completeAt(), 1400u);
    EXPECT_EQ(tl.trailingAt(), 9999u);
    tl.serialize(1500);
    EXPECT_EQ(tl.trailingAt(), 9999u); // trailing still dominates
    tl.overlap(1450);                  // behind the head: absorbed
    EXPECT_EQ(tl.completeAt(), 1500u);
}

TEST(Timeline, DefaultIsEmpty)
{
    mem::Timeline tl;
    EXPECT_EQ(tl.issuedAt(), 0u);
    EXPECT_EQ(tl.criticalPathPs(), 0u);
    EXPECT_EQ(tl.segments(), 0u);
}

// ---------------------------------------------------------------------
// Shared scenario plumbing.
// ---------------------------------------------------------------------

constexpr Tick kGap = 10'000'000; // 10 us: lets all traffic drain

mem::MemSystemParams
smallSys()
{
    mem::MemSystemParams p;
    p.nmBytes = 16 * MiB;
    p.fmBytes = 64 * MiB;
    return p;
}

core::Hybrid2Params
smallParams()
{
    core::Hybrid2Params p;
    p.cacheBytes = 1 * MiB; // 512 sectors, 32 sets x 16 ways
    p.sectorBytes = 2048;
    p.lineBytes = 256;
    return p;
}

/** Minimal (idle, row-hit) latency of a @p bytes read on @p params. */
Tick
minReadLatencyPs(const dram::DramParams &params, u32 bytes)
{
    dram::DramDevice dev(params);
    dev.access(0, bytes, AccessType::Read, 0); // open the covered rows
    return dev.probeLatency(0, bytes, Tick(1) << 40);
}

/** Latency of one quiesced access. */
Tick
quiescedLatency(mem::HybridMemory &m, Addr addr, AccessType type, Tick &t)
{
    t += kGap;
    return m.access(addr, type, t).completeAt() - t;
}

// ---------------------------------------------------------------------
// Hybrid2 (DCMC) decomposition:
//   hit < clean miss < miss+eviction < miss+swap-out
// ---------------------------------------------------------------------

class DcmcLatency : public ::testing::Test
{
  protected:
    static core::Dcmc
    make(bool migrateAll, bool migrateNone)
    {
        core::Hybrid2Params p = smallParams();
        p.migrateAll = migrateAll;
        p.migrateNone = migrateNone;
        return core::Dcmc(smallSys(), p);
    }

    /** First flat sector of XTA set @p k whose home is FM. */
    static u64
    fmSector(const core::Dcmc &d, u64 k)
    {
        u64 sets = d.xta().numSets();
        u64 nmFlat = d.remapTable().nmFlatSectors();
        u64 base = ((nmFlat + sets - 1) / sets + 1) * sets;
        return base + k;
    }
};

TEST_F(DcmcLatency, DecompositionOrdersStructuralOverheads)
{
    Tick ctrl = smallSys().controllerLatencyPs;
    Tick xta = smallParams().xtaLatencyPs;
    Tick nm64 = minReadLatencyPs(dram::DramParams::hbm2(16 * MiB), 64);
    Tick nm256 = minReadLatencyPs(dram::DramParams::hbm2(16 * MiB), 256);
    Tick nm2k = minReadLatencyPs(dram::DramParams::hbm2(16 * MiB), 2048);
    Tick fm256 = minReadLatencyPs(dram::DramParams::ddr4_3200(64 * MiB),
                                  256);

    // Clean miss (2b, pool space available, set empty) and line hit.
    core::Dcmc plain = make(false, false);
    Tick t = 0;
    u64 s = fmSector(plain, 0);
    Tick cleanMiss = quiescedLatency(plain, s * 2048, AccessType::Read, t);
    Tick hit = quiescedLatency(plain, s * 2048, AccessType::Read, t);

    // The serialized components put a floor under each scenario:
    // hit  = controller + XTA + NM demand read
    // miss = controller + XTA + remap read + FM line fetch
    EXPECT_GE(hit, ctrl + xta + nm64);
    EXPECT_GE(cleanMiss, ctrl + xta + nm64 + fm256);
    EXPECT_LT(hit, cleanMiss);

    // Miss + eviction: fill set 0 with dirtied sectors, then one more.
    core::Dcmc mn = make(false, true);
    t = 0;
    u64 sets = mn.xta().numSets();
    for (u64 k = 0; k < 16; ++k)
        quiescedLatency(mn, fmSector(mn, k * sets) * 2048,
                        AccessType::Write, t);
    // A clean miss in this instance (different set, pool not empty).
    Tick cleanMn = quiescedLatency(mn, fmSector(mn, 1) * 2048,
                                   AccessType::Read, t);
    u64 evictions = mn.evictionsToFm();
    Tick evictMiss = quiescedLatency(mn, fmSector(mn, 16 * sets) * 2048,
                                     AccessType::Read, t);
    ASSERT_EQ(mn.evictionsToFm(), evictions + 1)
        << "scenario bug: the 17th fill did not evict";
    // The dirty-line writeback's NM read serializes ahead of the fetch.
    EXPECT_GE(evictMiss, ctrl + xta + nm64 + nm256 + fm256);
    EXPECT_LT(cleanMn, evictMiss);

    // Miss + swap-out: exhaust the pool under migrate-all, then touch a
    // fresh FM sector. The access pays the way eviction (migration),
    // the FIFO victim scan (inverted-remap reads) and the 2 KB victim
    // sector copy-out before its own FM fetch.
    core::Dcmc ma = make(true, false);
    t = 0;
    u64 nmFlat = ma.remapTable().nmFlatSectors();
    for (u64 i = 0; i < 1200; ++i)
        ma.access((nmFlat + i) * 2048, AccessType::Read, t += 10000);
    ASSERT_GT(ma.swapOuts(), 0u);
    u64 swapsBefore = ma.swapOuts();
    Tick swapMiss = quiescedLatency(ma, (nmFlat + 1200) * 2048,
                                    AccessType::Read, t);
    ASSERT_GT(ma.swapOuts(), swapsBefore)
        << "scenario bug: the access did not swap out a victim";
    EXPECT_GE(swapMiss, ctrl + xta + nm64 + nm64 + nm2k + fm256);
    EXPECT_LT(evictMiss, swapMiss);
}

TEST_F(DcmcLatency, MissLatencyCoversSerializedSegments)
{
    // Any request's critical path equals completeAt - issue and is
    // composed of at least the controller + XTA segments.
    core::Dcmc d = make(false, false);
    Rng rng(7);
    Tick t = 0;
    for (int i = 0; i < 4000; ++i) {
        Addr a = rng.below(d.flatCapacity() / 64) * 64;
        t += 4000;
        mem::MemResult r = d.access(
            a, rng.chance(0.3) ? AccessType::Write : AccessType::Read, t);
        ASSERT_EQ(r.timeline.issuedAt(), t);
        ASSERT_EQ(r.timeline.criticalPathPs(), r.completeAt() - t);
        ASSERT_GE(r.completeAt() - t,
                  Tick(smallSys().controllerLatencyPs) +
                      smallParams().xtaLatencyPs);
        ASSERT_GE(r.timeline.trailingAt(), r.completeAt());
        ASSERT_GE(r.timeline.segments(), 2u);
    }
    d.checkInvariants();
}

// ---------------------------------------------------------------------
// DRAM-cache family: hit < clean miss < miss + dirty eviction.
// ---------------------------------------------------------------------

TEST(IdealCacheLatency, DirtyEvictionExtendsMiss)
{
    baselines::DramCacheParams cp;
    cp.lineBytes = 1024;
    baselines::IdealCache c(smallSys(), cp);
    Tick t = 0;

    Tick cleanMiss = quiescedLatency(c, 0, AccessType::Write, t);
    Tick hit = quiescedLatency(c, 0, AccessType::Write, t);
    EXPECT_LT(hit, cleanMiss);

    // Fill every NM line frame with dirty lines; the next distinct line
    // evicts a dirty victim, whose NM source read serializes ahead of
    // the demand fetch.
    u64 lines = smallSys().nmBytes / cp.lineBytes;
    for (u64 i = 1; i < lines; ++i)
        c.access(i * cp.lineBytes, AccessType::Write, t += 20000);
    u64 evicted = c.fills();
    t += kGap;
    Tick evictMiss = quiescedLatency(c, lines * cp.lineBytes,
                                     AccessType::Write, t);
    ASSERT_EQ(c.fills(), evicted + 1);
    EXPECT_LT(cleanMiss, evictMiss);
    Tick nm1k = minReadLatencyPs(dram::DramParams::hbm2(16 * MiB), 1024);
    Tick fm64 = minReadLatencyPs(dram::DramParams::ddr4_3200(64 * MiB),
                                 64);
    EXPECT_GE(evictMiss,
              Tick(smallSys().controllerLatencyPs) + nm1k + fm64);
}

// ---------------------------------------------------------------------
// Chameleon: the promoting (swap-triggering) access pays the swap.
// ---------------------------------------------------------------------

TEST(ChameleonLatency, SwapSerializesOntoTriggeringAccess)
{
    baselines::ChameleonParams p;
    p.cacheMode = false; // pure group-swap design: every FM access counts
    baselines::Chameleon c(smallSys(), p);
    Tick t = 0;

    // Hammer one FM segment: access #competingK trips the promotion.
    Addr fmSegAddr = (smallSys().nmBytes / p.segmentBytes)
        * u64(p.segmentBytes);
    std::vector<Tick> lat;
    for (u32 i = 0; i < p.competingK; ++i) {
        ASSERT_EQ(c.swaps(), 0u);
        lat.push_back(quiescedLatency(c, fmSegAddr, AccessType::Read, t));
    }
    ASSERT_EQ(c.swaps(), 1u) << "scenario bug: no promotion happened";
    // The promoting access serialized the swap's segment reads.
    EXPECT_GT(lat.back(), lat[lat.size() - 2]);
    // And the segment is NM-resident afterwards: cheaper than before.
    Tick after = quiescedLatency(c, fmSegAddr, AccessType::Read, t);
    EXPECT_LT(after, lat.back());
}

// ---------------------------------------------------------------------
// MemPod / LGM: interval migrations delay the first request past the
// interval boundary.
// ---------------------------------------------------------------------

TEST(MemPodLatency, IntervalMigrationDelaysNextRequest)
{
    baselines::MemPodParams p;
    p.requirePersistence = false; // migrate on the first hot interval
    auto run = [&](bool makeHot) {
        baselines::MemPod m(smallSys(), p);
        u64 nmSegs = smallSys().nmBytes / p.segmentBytes;
        Addr hot = nmSegs * u64(p.segmentBytes);       // FM-resident
        Addr probe = (nmSegs + 64) * u64(p.segmentBytes); // FM-resident
        Tick t = 0;
        if (makeHot)
            for (int i = 0; i < 8; ++i)
                m.access(hot, AccessType::Read, t += 10000);
        // First request past the interval boundary pays the swaps.
        Tick at = p.intervalPs + 1000;
        Tick lat = m.access(probe, AccessType::Read, at).completeAt() - at;
        return std::make_pair(lat, m.access(hot, AccessType::Read,
                                            at + kGap).fromNm);
    };
    auto [quiet, hotStillFm] = run(false);
    auto [delayed, hotNowNm] = run(true);
    EXPECT_FALSE(hotStillFm);
    EXPECT_TRUE(hotNowNm) << "scenario bug: the hot segment never moved";
    EXPECT_GT(delayed, quiet);
}

TEST(LgmLatency, IntervalMigrationDelaysNextRequest)
{
    baselines::LgmParams p;
    mem::EmptyLlcView llc;
    auto run = [&](bool makeHot) {
        baselines::Lgm m(smallSys(), llc, p);
        u64 nmSegs = smallSys().nmBytes / p.segmentBytes;
        Addr hot = nmSegs * u64(p.segmentBytes);
        Addr probe = (nmSegs + 64) * u64(p.segmentBytes);
        Tick t = 0;
        if (makeHot)
            for (u32 i = 0; i < p.watermark; ++i)
                m.access(hot, AccessType::Read, t += 10000);
        Tick at = p.intervalPs + 1000;
        Tick lat = m.access(probe, AccessType::Read, at).completeAt() - at;
        return std::make_pair(lat, m.access(hot, AccessType::Read,
                                            at + kGap).fromNm);
    };
    auto [quiet, hotStillFm] = run(false);
    auto [delayed, hotNowNm] = run(true);
    EXPECT_FALSE(hotStillFm);
    EXPECT_TRUE(hotNowNm) << "scenario bug: the hot segment never moved";
    EXPECT_GT(delayed, quiet);
}

} // namespace
} // namespace h2
