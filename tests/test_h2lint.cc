/**
 * @file
 * h2lint's own test suite, driven by the fixture files under
 * tests/lint_fixtures/: every rule has at least one must-flag and one
 * must-pass fixture plus a suppression fixture, the two mini-repo
 * trees pin the cross-file rules (R3/R4) in both directions, and the
 * exit-code contract of the installed binary (0 clean / 1 findings /
 * 2 usage error) is pinned by spawning it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

#ifndef H2_LINT_FIXTURE_DIR
#error "H2_LINT_FIXTURE_DIR must point at tests/lint_fixtures"
#endif
#ifndef H2_LINT_BIN
#error "H2_LINT_BIN must point at the h2lint executable"
#endif

namespace h2::lint {
namespace {

std::string
fixturePath(const std::string &name)
{
    return std::string(H2_LINT_FIXTURE_DIR) + "/" + name;
}

std::string
readFixture(const std::string &name)
{
    std::ifstream in(fixturePath(name), std::ios::binary);
    EXPECT_TRUE(in) << "missing fixture " << name;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Lint one fixture under a logical repo path (rule applicability is
 *  path-derived). */
std::vector<Finding>
lintFixture(const std::string &name, const std::string &asPath)
{
    return lintFileContents(asPath, readFixture(name), Options{});
}

std::vector<int>
linesOf(const std::vector<Finding> &fs, const std::string &rule)
{
    std::vector<int> lines;
    for (const Finding &f : fs)
        if (f.rule == rule)
            lines.push_back(f.line);
    std::sort(lines.begin(), lines.end());
    return lines;
}

// ------------------------------------------------------------ lexer

TEST(LintScrub, StripsCommentsAndStrings)
{
    auto sf = detail::scrub("int a; // rand()\n"
                            "const char *s = \"rand()\";\n"
                            "/* std::stoul */ int b;\n");
    EXPECT_EQ(sf.code.find("rand"), std::string::npos);
    EXPECT_EQ(sf.code.find("stoul"), std::string::npos);
    // Strings survive in the keep-strings view, comments never do.
    EXPECT_NE(sf.codeKeepStrings.find("\"rand()\""), std::string::npos);
    EXPECT_EQ(sf.codeKeepStrings.find("stoul"), std::string::npos);
    // Line structure is preserved.
    EXPECT_EQ(std::count(sf.code.begin(), sf.code.end(), '\n'), 3);
}

TEST(LintScrub, DigitSeparatorIsNotACharLiteral)
{
    auto sf = detail::scrub("u64 n = 30'000;\nint rand();\n");
    // A naive lexer eats everything after 30' as a char literal and
    // hides the next line from the rules.
    EXPECT_NE(sf.code.find("rand"), std::string::npos);
}

TEST(LintScrub, RawStringsAreStripped)
{
    auto sf = detail::scrub("auto re = R\"(rand\\()\" ;\nint x;\n");
    EXPECT_EQ(sf.code.find("rand"), std::string::npos);
    EXPECT_NE(sf.code.find("int x"), std::string::npos);
}

TEST(LintScrub, SuppressionsParse)
{
    auto sf = detail::scrub("int a; // h2lint: allow(R1, R2)\n"
                            "int b;\n"
                            "int c;\n"
                            "// h2lint: allow-file(R5)\n");
    EXPECT_TRUE(sf.suppressed("R1", 1));
    EXPECT_TRUE(sf.suppressed("R2", 2)); // next line is covered
    EXPECT_FALSE(sf.suppressed("R1", 3));
    EXPECT_TRUE(sf.suppressed("R5", 999)); // file-wide
    EXPECT_FALSE(sf.suppressed("R4", 1));
}

// --------------------------------------------------------------- R1

TEST(LintR1, FlagsDirectDeviceCalls)
{
    auto fs = lintFixture("r1_bad.cc", "src/baselines/fake.cc");
    EXPECT_EQ(linesOf(fs, "R1"), (std::vector<int>{14, 15, 16, 17}));
}

TEST(LintR1, PassesControllerSeamCode)
{
    auto fs = lintFixture("r1_good.cc", "src/baselines/good.cc");
    EXPECT_TRUE(fs.empty()) << formatFinding(fs.front());
}

TEST(LintR1, SuppressionSilences)
{
    auto fs = lintFixture("r1_suppressed.cc", "src/baselines/sup.cc");
    EXPECT_TRUE(fs.empty()) << formatFinding(fs.front());
}

TEST(LintR1, DoesNotApplyUnderMemOrDram)
{
    std::string text = readFixture("r1_bad.cc");
    EXPECT_TRUE(
        lintFileContents("src/mem/impl.cc", text, Options{}).empty());
    EXPECT_TRUE(
        lintFileContents("src/dram/impl.cc", text, Options{}).empty());
    EXPECT_TRUE(
        lintFileContents("tests/test_dram.cc", text, Options{}).empty());
}

TEST(LintR1, FlagsShardTypesOutsideSeam)
{
    auto fs = lintFixture("r1_shard_bad.cc", "src/baselines/peek.cc");
    EXPECT_EQ(linesOf(fs, "R1"), (std::vector<int>{13, 14, 20, 25}));
    // Each diagnostic names the sanctioned aggregate accessors.
    for (const Finding &f : fs)
        EXPECT_NE(f.message.find("stats()"), std::string::npos)
            << formatFinding(f);
}

TEST(LintR1, ShardTypesAllowedInsideSeamAndWithSuppression)
{
    std::string text = readFixture("r1_shard_bad.cc");
    EXPECT_TRUE(
        lintFileContents("src/mem/impl.cc", text, Options{}).empty());
    EXPECT_TRUE(
        lintFileContents("src/dram/impl.cc", text, Options{}).empty());
    auto fs =
        lintFixture("r1_shard_suppressed.cc", "src/baselines/sup.cc");
    EXPECT_TRUE(fs.empty()) << formatFinding(fs.front());
}

// --------------------------------------------------------------- R2

TEST(LintR2, FlagsBannedCalls)
{
    auto fs = lintFixture("r2_bad.cc", "src/common/fake.cc");
    EXPECT_EQ(linesOf(fs, "R2"),
              (std::vector<int>{13, 19, 19, 20, 26, 32}));
    // Each diagnostic names a sanctioned replacement.
    for (const Finding &f : fs)
        EXPECT_TRUE(f.message.find("common/") != std::string::npos ||
                    f.message.find("std::chrono") != std::string::npos)
            << formatFinding(f);
}

TEST(LintR2, PassesSanctionedCode)
{
    auto fs = lintFixture("r2_good.cc", "src/common/good.cc");
    EXPECT_TRUE(fs.empty()) << formatFinding(fs.front());
}

TEST(LintR2, SuppressionSilencesTrailingAndPreceding)
{
    auto fs = lintFixture("r2_suppressed.cc", "src/common/sup.cc");
    EXPECT_TRUE(fs.empty()) << formatFinding(fs.front());
}

TEST(LintR2, PrintfAllowedInMainAndBench)
{
    std::string text = readFixture("r2_bad.cc");
    auto inMain = lintFileContents("src/main.cc", text, Options{});
    auto inBench = lintFileContents("bench/fig99.cc", text, Options{});
    for (const auto &fs : {inMain, inBench})
        for (const Finding &f : fs)
            EXPECT_EQ(f.message.find("printf"), std::string::npos)
                << formatFinding(f);
    // ...but the other bans still apply there.
    EXPECT_FALSE(inMain.empty());
}

// --------------------------------------------------------------- R5

TEST(LintR5, FlagsAllThreeHygieneViolations)
{
    auto fs = lintFixture("r5_bad.h", "src/common/bad.h");
    ASSERT_EQ(fs.size(), 3u);
    EXPECT_EQ(fs[0].rule, "R5");
    EXPECT_EQ(fs[0].line, 1); // missing #pragma once anchors at line 1
    std::set<std::string> gists;
    for (const Finding &f : fs)
        gists.insert(f.message.substr(0, f.message.find(' ')));
    EXPECT_EQ(gists.size(), 3u) << "three distinct R5 diagnostics";
}

TEST(LintR5, PassesHygienicHeader)
{
    auto fs = lintFixture("r5_good.h", "src/common/good.h");
    EXPECT_TRUE(fs.empty()) << formatFinding(fs.front());
}

TEST(LintR5, AllowFileSilencesWholeFile)
{
    auto fs = lintFixture("r5_suppressed.h", "src/common/sup.h");
    EXPECT_TRUE(fs.empty()) << formatFinding(fs.front());
}

TEST(LintR5, DoesNotApplyToSources)
{
    auto fs = lintFixture("r5_bad.h", "src/common/not_a_header.cc");
    EXPECT_TRUE(linesOf(fs, "R5").empty());
}

// --------------------------------------------------- R3/R4 tree mode

TEST(LintTree, GoodTreeIsClean)
{
    Options opt;
    opt.root = fixturePath("tree_good");
    std::string error;
    auto fs = lintTree(opt, &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_TRUE(fs.empty()) << formatFinding(fs.front());
}

TEST(LintTree, BadTreeReportsEveryCrossFileViolation)
{
    Options opt;
    opt.root = fixturePath("tree_bad");
    std::string error;
    auto fs = lintTree(opt, &error);
    EXPECT_TRUE(error.empty()) << error;

    // R3: missing golden + missing README row, anchored at the
    // registration.
    auto r3 = linesOf(fs, "R3");
    EXPECT_EQ(r3, (std::vector<int>{20, 20}));

    // R4: undocumented key (line 13), unverifiable key (line 14), and
    // the dead manifest row.
    bool undocumented = false, unverifiable = false, dead = false;
    for (const Finding &f : fs) {
        if (f.rule != "R4")
            continue;
        if (f.file == "src/ghost_design.cc" && f.line == 13)
            undocumented = true;
        if (f.file == "src/ghost_design.cc" && f.line == 14)
            unverifiable = true;
        if (f.file == "docs/metrics.md" &&
            f.message.find("dead.key") != std::string::npos)
            dead = true;
    }
    EXPECT_TRUE(undocumented);
    EXPECT_TRUE(unverifiable);
    EXPECT_TRUE(dead);
}

TEST(LintTree, RuleFilterRestrictsFindings)
{
    Options opt;
    opt.root = fixturePath("tree_bad");
    opt.rules = {"R3"};
    std::string error;
    auto fs = lintTree(opt, &error);
    for (const Finding &f : fs)
        EXPECT_EQ(f.rule, "R3") << formatFinding(f);
    EXPECT_FALSE(fs.empty());
}

TEST(LintTree, BadRootSetsError)
{
    Options opt;
    opt.root = fixturePath("no_such_dir");
    std::string error;
    auto fs = lintTree(opt, &error);
    EXPECT_TRUE(fs.empty());
    EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------- exit codes

int
runLint(const std::string &args)
{
    std::string cmd = std::string(H2_LINT_BIN) + " " + args +
                      " > /dev/null 2> /dev/null";
    int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(LintExitCodes, CleanTreeExitsZero)
{
    EXPECT_EQ(runLint("--root " + fixturePath("tree_good")), 0);
}

TEST(LintExitCodes, FindingsExitOne)
{
    EXPECT_EQ(runLint("--root " + fixturePath("tree_bad")), 1);
    EXPECT_EQ(runLint(fixturePath("r2_bad.cc")), 1);
}

TEST(LintExitCodes, UsageErrorsExitTwo)
{
    EXPECT_EQ(runLint("--no-such-flag"), 2);
    EXPECT_EQ(runLint("--root " + fixturePath("no_such_dir")), 2);
    EXPECT_EQ(runLint("--rules R99"), 2);
    EXPECT_EQ(runLint(fixturePath("no_such_file.cc")), 2);
}

TEST(LintExitCodes, ListRulesExitsZeroAndCoversEveryRule)
{
    EXPECT_EQ(runLint("--list-rules"), 0);
    EXPECT_EQ(ruleTable().size(), 5u);
}

} // namespace
} // namespace h2::lint
