/**
 * @file
 * Crash-safe result journal tests: exact outcome round-trips (the
 * property that makes --resume reports bit-identical), torn-tail
 * tolerance, corruption detection, and journal-seeded resumes through
 * runExperiment producing byte-identical reports.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/units.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/result_journal.h"
#include "sim/sweep_runner.h"
#include "workloads/workload_registry.h"

namespace h2::sim {
namespace {

RunConfig
quickCfg()
{
    RunConfig cfg;
    cfg.nmBytes = 128 * MiB;
    cfg.fmBytes = 512 * MiB;
    cfg.instrPerCore = 20'000;
    cfg.numCores = 2;
    return cfg;
}

workloads::Workload
tinyWorkload(const char *name = "lbm")
{
    auto w = workloads::findWorkload(name);
    w.footprintBytes = 16 * MiB;
    return w;
}

std::string
journalPath(const char *name)
{
    std::string path = testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

TEST(ResultJournal, RealMetricsRoundTripExactly)
{
    // A real simulation's Metrics (full detail StatSet, irrational
    // doubles) must survive append + load field-exactly: this is the
    // foundation of bit-identical resume.
    RunOutcome out;
    out.ok = true;
    out.metrics = simulateOne(quickCfg(), tinyWorkload(), "hybrid2");
    out.attempts = 2;
    out.wallMs = 1234;

    std::string path = journalPath("roundtrip.jnl");
    {
        ResultJournal journal(path);
        journal.append("lbm|hybrid2", out);
    }
    std::string err;
    auto loaded = ResultJournal::load(path, &err);
    ASSERT_TRUE(loaded) << err;
    ASSERT_EQ(loaded->size(), 1u);
    EXPECT_EQ(loaded->at("lbm|hybrid2"), out);
    std::remove(path.c_str());
}

TEST(ResultJournal, FailedOutcomeRoundTrips)
{
    RunOutcome out;
    out.ok = false;
    out.timedOut = true;
    out.error = "run timeout: 'lbm' exceeded 50 ms of wall clock";
    out.attempts = 3;
    out.wallMs = 160;

    std::string path = journalPath("failed.jnl");
    {
        ResultJournal journal(path);
        journal.append("lbm|dfc", out);
    }
    std::string err;
    auto loaded = ResultJournal::load(path, &err);
    ASSERT_TRUE(loaded) << err;
    EXPECT_EQ(loaded->at("lbm|dfc"), out);
    std::remove(path.c_str());
}

TEST(ResultJournal, MissingFileIsEmpty)
{
    std::string err;
    auto loaded =
        ResultJournal::load(journalPath("never_written.jnl"), &err);
    ASSERT_TRUE(loaded) << err;
    EXPECT_TRUE(loaded->empty());
}

TEST(ResultJournal, TornFinalLineIsDiscarded)
{
    RunOutcome out;
    out.ok = false;
    out.error = "whole record";

    std::string path = journalPath("torn.jnl");
    {
        ResultJournal journal(path);
        journal.append("lbm|dfc", out);
    }
    // Emulate a crash mid-append: a partial record with no newline.
    {
        std::ofstream app(path, std::ios::app | std::ios::binary);
        app << "{\"key\":\"lbm|baseline\",\"ok\":tr";
    }
    std::string err;
    auto loaded = ResultJournal::load(path, &err);
    ASSERT_TRUE(loaded) << err;
    ASSERT_EQ(loaded->size(), 1u);
    EXPECT_EQ(loaded->at("lbm|dfc"), out);
    std::remove(path.c_str());
}

TEST(ResultJournal, CorruptInteriorLineIsAnError)
{
    RunOutcome out;
    out.ok = false;
    out.error = "fine";

    std::string path = journalPath("corrupt.jnl");
    {
        std::ofstream f(path, std::ios::binary);
        f << "not json at all\n";
        f << ResultJournal::formatRecord("lbm|dfc", out) << "\n";
    }
    std::string err;
    EXPECT_FALSE(ResultJournal::load(path, &err));
    EXPECT_NE(err.find("line 1"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ResultJournal, LaterDuplicateWins)
{
    RunOutcome first;
    first.ok = false;
    first.error = "transient";
    RunOutcome second;
    second.ok = false;
    second.error = "retried and still failed";
    second.attempts = 2;

    std::string path = journalPath("dups.jnl");
    {
        ResultJournal journal(path);
        journal.append("lbm|dfc", first);
        journal.append("lbm|dfc", second);
    }
    std::string err;
    auto loaded = ResultJournal::load(path, &err);
    ASSERT_TRUE(loaded) << err;
    ASSERT_EQ(loaded->size(), 1u);
    EXPECT_EQ(loaded->at("lbm|dfc"), second);
    std::remove(path.c_str());
}

TEST(ResultJournal, RecordsRejectMissingFields)
{
    std::string err;
    EXPECT_FALSE(ResultJournal::parseRecord("{\"ok\":true}", &err));
    EXPECT_FALSE(
        ResultJournal::parseRecord("{\"key\":\"a|b\"}", &err));
    // ok records need metrics; failed records need an error string.
    EXPECT_FALSE(ResultJournal::parseRecord(
        "{\"key\":\"a|b\",\"ok\":true}", &err));
    EXPECT_FALSE(ResultJournal::parseRecord(
        "{\"key\":\"a|b\",\"ok\":false}", &err));
}

TEST(ResultJournal, ResumedExperimentReportIsByteIdentical)
{
    ExperimentSpec spec;
    spec.config = quickCfg();
    spec.workloads = {"lbm", "mcf"};
    // Pre-resolved so the tiny footprints fit quickCfg's capacities.
    spec.resolvedWorkloads = {tinyWorkload("lbm"), tinyWorkload("mcf")};
    spec.designs = {"dfc", "hybrid2"};
    spec.speedup = true;

    // Reference: no journal, straight through.
    std::vector<RunRecord> reference = runExperiment(spec, 2);

    // Journaled run, then a resumed run against the same journal: the
    // resume simulates nothing (every point is journaled) and must
    // reproduce the records, and the rendered report, exactly.
    std::string path = journalPath("resume.jnl");
    spec.journalPath = path;
    std::vector<RunRecord> journaled = runExperiment(spec, 2);
    spec.resume = true;
    std::vector<RunRecord> resumed = runExperiment(spec, 2);

    auto render = [&](const std::vector<RunRecord> &records,
                      OutputFormat f) {
        return renderReport(spec.config, records, f);
    };
    for (OutputFormat f :
         {OutputFormat::Text, OutputFormat::Json, OutputFormat::Csv}) {
        EXPECT_EQ(render(reference, f), render(journaled, f));
        EXPECT_EQ(render(reference, f), render(resumed, f));
    }
    std::remove(path.c_str());
}

TEST(ResultJournal, ResumeSkipsJournaledFailuresToo)
{
    // Failed outcomes are journaled and seeded on resume: determinism
    // means a failed point would fail again, so resume must not waste
    // time re-proving it.
    ExperimentSpec spec;
    spec.config = quickCfg();
    spec.workloads = {"lbm"};
    spec.resolvedWorkloads = {tinyWorkload()};
    spec.designs = {"nosuchdesign"};

    std::string path = journalPath("resume_failed.jnl");
    spec.journalPath = path;
    std::vector<RunRecord> first = runExperiment(spec, 1);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_FALSE(first[0].ok);

    spec.resume = true;
    std::vector<RunRecord> resumed = runExperiment(spec, 1);
    ASSERT_EQ(resumed.size(), 1u);
    EXPECT_FALSE(resumed[0].ok);
    EXPECT_EQ(resumed[0].error, first[0].error);
    std::remove(path.c_str());
}

} // namespace
} // namespace h2::sim
