/**
 * @file
 * Tests for the typed DesignSpec and the self-registering design
 * registry: parse/round-trip and rejection coverage for every
 * registered design, canonical-form equality (equivalent spellings
 * memoize as one design), and registry completeness (every evaluated
 * design resolves; the generated grammar matches the schemas).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/units.h"
#include "sim/design_registry.h"
#include "sim/runner.h"

namespace h2::sim {
namespace {

const std::vector<DesignKind> &
allKinds()
{
    static const std::vector<DesignKind> kinds = {
        DesignKind::Baseline,  DesignKind::Hybrid2, DesignKind::Ideal,
        DesignKind::Tagless,   DesignKind::Dfc,     DesignKind::MemPod,
        DesignKind::Chameleon, DesignKind::Lgm,
    };
    return kinds;
}

TEST(DesignRegistry, EveryKindRegisteredUnderItsName)
{
    for (DesignKind kind : allKinds()) {
        const DesignInfo &info = DesignRegistry::instance().at(kind);
        EXPECT_EQ(info.name, to_string(kind));
        EXPECT_NE(info.factory, nullptr);
        EXPECT_FALSE(info.description.empty());
        EXPECT_EQ(DesignRegistry::instance().find(info.name), &info);
    }
    EXPECT_EQ(DesignRegistry::instance().all().size(), allKinds().size());
}

TEST(DesignRegistry, EveryEvaluatedDesignResolves)
{
    mem::EmptyLlcView llc;
    mem::MemSystemParams mp;
    mp.nmBytes = 256 * MiB;
    mp.fmBytes = 1024 * MiB;
    ASSERT_EQ(evaluatedDesigns().size(), 6u);
    for (const auto &spec : evaluatedDesigns()) {
        DesignSpec::ParseResult r = DesignSpec::parse(spec);
        ASSERT_TRUE(r.ok()) << spec << ": " << r.error;
        // Canonical and round-trips.
        EXPECT_EQ(r.spec->toString(), spec);
        auto again = DesignSpec::parse(r.spec->toString());
        ASSERT_TRUE(again.ok());
        EXPECT_EQ(*again.spec, *r.spec);
        // And instantiates.
        EXPECT_NE(makeDesign(*r.spec, mp, llc), nullptr);
    }
}

TEST(DesignRegistry, GrammarHelpCoversEveryDesignAndParameter)
{
    std::string help = DesignRegistry::instance().grammarHelp();
    for (const DesignInfo *d : DesignRegistry::instance().all()) {
        EXPECT_NE(help.find(d->name), std::string::npos) << d->name;
        for (const auto &p : d->params)
            EXPECT_NE(help.find(p.name), std::string::npos)
                << d->name << ":" << p.name;
    }
}

TEST(DesignSpecParse, DefaultSpecIsJustTheName)
{
    for (const DesignInfo *d : DesignRegistry::instance().all()) {
        EXPECT_EQ(d->defaultSpec().toString(), d->name);
        auto r = DesignSpec::parse(d->name);
        ASSERT_TRUE(r.ok()) << r.error;
        EXPECT_EQ(r.spec->toString(), d->name);
        EXPECT_EQ(r.spec->kind(), d->kind);
    }
}

TEST(DesignSpecParse, ExplicitDefaultsCanonicalizeAway)
{
    EXPECT_EQ(canonicalDesignSpec("dfc"), "dfc");
    EXPECT_EQ(canonicalDesignSpec("dfc:1024"), "dfc");
    EXPECT_EQ(canonicalDesignSpec("dfc:line=1024"), "dfc");
    EXPECT_EQ(canonicalDesignSpec("ideal:256"), "ideal");
    EXPECT_EQ(canonicalDesignSpec("lgm:watermark=16"), "lgm");
    EXPECT_EQ(canonicalDesignSpec("hybrid2:cache=64,sector=2048,line=256"),
              "hybrid2");
}

TEST(DesignSpecParse, CanonicalFormIsSchemaOrdered)
{
    EXPECT_EQ(canonicalDesignSpec("hybrid2:line=512,cache=2"),
              "hybrid2:cache=2,line=512");
    EXPECT_EQ(canonicalDesignSpec("hybrid2:noremap,cache=2"),
              "hybrid2:cache=2,noremap");
    EXPECT_EQ(canonicalDesignSpec("dfc:512"), "dfc:line=512");
    EXPECT_EQ(canonicalDesignSpec("ideal:128"), "ideal:line=128");
}

TEST(DesignSpecParse, FractionalParamsRoundTripInFixedNotation)
{
    // Shortest to_chars would render 0.0001 as "1e-04", which the
    // digits-and-dots grammar could not re-parse; the canonical form
    // must stay in fixed notation for any in-range value.
    for (const char *v : {"0.0001", "12.5", "0.5", "99.875"}) {
        std::string spec = std::string("hybrid2:unused=") + v;
        std::string canonical = canonicalDesignSpec(spec);
        auto r = DesignSpec::parse(canonical);
        ASSERT_TRUE(r.ok()) << canonical << ": " << r.error;
        EXPECT_EQ(r.spec->toString(), canonical);
        EXPECT_EQ(r.spec->f64Param("unused"),
                  DesignSpec::parseOrFatal(spec).f64Param("unused"));
    }
    EXPECT_EQ(canonicalDesignSpec("hybrid2:unused=0.0001"),
              "hybrid2:unused=0.0001");
}

TEST(DesignSpecParse, EquivalentSpellingsCompareEqual)
{
    auto a = DesignSpec::parse("dfc");
    auto b = DesignSpec::parse("dfc:1024");
    auto c = DesignSpec::parse("dfc:512");
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_EQ(*a.spec, *b.spec);
    EXPECT_FALSE(*a.spec == *c.spec);
}

TEST(DesignSpecParse, TypedAccessorsSeeDefaultsAndOverrides)
{
    auto r = DesignSpec::parse("hybrid2:cache=2,noremap");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.spec->u64Param("cache"), 2u);
    EXPECT_EQ(r.spec->u64Param("sector"), 2048u); // schema default
    EXPECT_TRUE(r.spec->flag("noremap"));
    EXPECT_FALSE(r.spec->flag("migrall"));
    EXPECT_DOUBLE_EQ(r.spec->f64Param("unused"), 0.0);
    EXPECT_TRUE(r.spec->isSet("cache"));
    EXPECT_FALSE(r.spec->isSet("sector"));
}

TEST(DesignSpecParse, UnknownDesignIsAPreciseError)
{
    auto r = DesignSpec::parse("frobcache");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("unknown design"), std::string::npos);
    EXPECT_NE(r.error.find("frobcache"), std::string::npos);
}

TEST(DesignSpecParse, UnknownOptionRejectedForEveryDesign)
{
    for (const DesignInfo *d : DesignRegistry::instance().all()) {
        auto r = DesignSpec::parse(d->name + ":zzz=1");
        ASSERT_FALSE(r.ok()) << d->name;
        EXPECT_NE(r.error.find("unknown " + d->name + " option"),
                  std::string::npos)
            << r.error;
    }
}

TEST(DesignSpecParse, BadValuesRejectedForEveryNumericParameter)
{
    for (const DesignInfo *d : DesignRegistry::instance().all()) {
        for (const auto &p : d->params) {
            if (p.type == ParamDef::Type::Flag) {
                auto r = DesignSpec::parse(d->name + ":" + p.name + "=1");
                ASSERT_FALSE(r.ok()) << d->name << ":" << p.name;
                EXPECT_NE(r.error.find("bad value"), std::string::npos);
                continue;
            }
            for (const char *bad : {"abc", "", "1x"}) {
                auto r = DesignSpec::parse(d->name + ":" + p.name + "=" +
                                           bad);
                ASSERT_FALSE(r.ok())
                    << d->name << ":" << p.name << "=" << bad;
                EXPECT_NE(r.error.find("bad value"), std::string::npos)
                    << r.error;
            }
            if (p.type == ParamDef::Type::U64) {
                auto r = DesignSpec::parse(
                    d->name + ":" + p.name + "=99999999999999999999999");
                ASSERT_FALSE(r.ok());
                EXPECT_NE(r.error.find("bad value"), std::string::npos);
            }
        }
    }
}

TEST(DesignSpecParse, RangeAndPowerOfTwoEnforced)
{
    // Below minimum.
    EXPECT_FALSE(DesignSpec::parse("lgm:watermark=0").ok());
    EXPECT_FALSE(DesignSpec::parse("hybrid2:cache=0").ok());
    EXPECT_FALSE(DesignSpec::parse("ideal:32").ok());
    // Non-power-of-two line/sector sizes.
    EXPECT_FALSE(DesignSpec::parse("ideal:96").ok());
    EXPECT_FALSE(DesignSpec::parse("dfc:1000").ok());
    EXPECT_FALSE(DesignSpec::parse("hybrid2:sector=1000").ok());
    auto r = DesignSpec::parse("hybrid2:line=100");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("power of two"), std::string::npos);
}

TEST(DesignSpecParse, CrossParameterValidation)
{
    // Line exceeding the sector is impossible hardware.
    auto r = DesignSpec::parse("hybrid2:sector=256,line=512");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("must not exceed sector"), std::string::npos);
    // Conflicting ablation flags.
    EXPECT_FALSE(DesignSpec::parse("hybrid2:migrall,migrnone").ok());
    // The valid combination from the benches still parses.
    EXPECT_TRUE(
        DesignSpec::parse("hybrid2:cache=2,sector=4096,line=512").ok());
}

TEST(DesignSpecParse, DuplicateOptionRejected)
{
    auto r = DesignSpec::parse("dfc:line=512,line=256");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("duplicate"), std::string::npos);
    // Positional + named spelling of the same parameter too.
    EXPECT_FALSE(DesignSpec::parse("ideal:128,line=128").ok());
}

TEST(DesignSpecParse, CaseAndWhitespaceAreNotForgiven)
{
    // The grammar is exact: no trimming, no case folding.
    EXPECT_FALSE(DesignSpec::parse("DFC").ok());
    EXPECT_FALSE(DesignSpec::parse("dfc :512").ok());
}

TEST(DesignSpecParse, RunnerMemoizesEquivalentSpellingsAsOneRun)
{
    RunConfig cfg;
    cfg.nmBytes = 32 * MiB;
    cfg.fmBytes = 256 * MiB;
    cfg.instrPerCore = 5'000;
    cfg.numCores = 1;
    Runner runner(cfg);
    auto w = workloads::findWorkload("lbm");
    w.footprintBytes = 16 * MiB;
    const Metrics &a = runner.run(w, "dfc");
    const Metrics &b = runner.run(w, "dfc:1024");
    const Metrics &c = runner.run(w, "dfc:line=1024");
    EXPECT_EQ(&a, &b); // identical object: one simulation, one cache slot
    EXPECT_EQ(&a, &c);
}

} // namespace
} // namespace h2::sim
