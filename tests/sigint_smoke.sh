#!/usr/bin/env bash
# Ctrl-C semantics: SIGINT must exit 130 after flushing the journal and
# writing the partial report (interrupted points rendered as such).
#
# Usage: sigint_smoke.sh <h2sim-binary> <workdir>
set -u

H2SIM=$1
WORKDIR=$2

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
cd "$WORKDIR" || exit 1

# A sweep long enough that the SIGINT always lands mid-run; the
# cooperative cancel then stops it within milliseconds.
"$H2SIM" --design baseline --design dfc --design hybrid2 \
    --workload lbm --workload mcf \
    --nm-mib 1024 --fm-mib 16384 --cores 2 --instr 50000000 \
    --jobs 1 --format json --journal sweep.jnl --out report.json &
pid=$!
sleep 1
kill -INT "$pid"
wait "$pid"
rc=$?

if [ "$rc" -ne 130 ]; then
    echo "FAIL: expected exit 130 after SIGINT, got $rc"
    exit 1
fi
if [ ! -f report.json ]; then
    echo "FAIL: partial report was not written"
    exit 1
fi
if [ ! -f sweep.jnl ]; then
    echo "FAIL: journal was not written"
    exit 1
fi
echo "PASS: SIGINT exited 130 with journal and partial report on disk"
