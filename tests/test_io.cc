/**
 * @file
 * Tests for atomic file writes (common/io.h): contents land intact,
 * no temp file survives, errors are reported not fatal, and a crash
 * before the rename leaves the previous file untouched.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/io.h"

namespace h2 {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

bool
exists(const std::string &path)
{
    std::ifstream in(path);
    return in.good();
}

std::string
tmpPath(const char *name)
{
    return testing::TempDir() + name;
}

TEST(WriteFileAtomic, WritesContentsAndRemovesTemp)
{
    std::string path = tmpPath("io_basic.txt");
    EXPECT_EQ(writeFileAtomic(path, "hello\nworld\n"), "");
    EXPECT_EQ(slurp(path), "hello\nworld\n");
    EXPECT_FALSE(exists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST(WriteFileAtomic, ReplacesExistingFile)
{
    std::string path = tmpPath("io_replace.txt");
    ASSERT_EQ(writeFileAtomic(path, "old contents"), "");
    EXPECT_EQ(writeFileAtomic(path, "new"), "");
    EXPECT_EQ(slurp(path), "new");
    std::remove(path.c_str());
}

TEST(WriteFileAtomic, BinaryRoundTrip)
{
    std::string path = tmpPath("io_binary.bin");
    std::string data;
    for (int i = 0; i < 256; ++i)
        data += static_cast<char>(i);
    ASSERT_EQ(writeFileAtomic(path, data), "");
    EXPECT_EQ(slurp(path), data);
    std::remove(path.c_str());
}

TEST(WriteFileAtomic, ErrorOnMissingDirectory)
{
    std::string err = writeFileAtomic(
        testing::TempDir() + "no_such_dir_h2/out.txt", "x");
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("no_such_dir_h2"), std::string::npos);
}

using WriteFileAtomicDeathTest = ::testing::Test;

TEST(WriteFileAtomicDeathTest, CrashBeforeRenameKeepsOldFile)
{
    std::string path = tmpPath("io_crash.txt");
    ASSERT_EQ(writeFileAtomic(path, "precious"), "");
    EXPECT_DEATH(
        {
            detail::crashBeforeRenameForTest = true;
            writeFileAtomic(path, "half-written replacement");
        },
        "");
    // The crash happened after the temp write but before the rename:
    // the visible file still has the old, complete contents.
    EXPECT_EQ(slurp(path), "precious");
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
}

} // namespace
} // namespace h2
