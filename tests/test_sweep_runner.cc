/**
 * @file
 * Tests for the parallel sweep engine: any job count must produce
 * bit-identical Metrics for every (workload, design) pair, with a
 * deterministic result ordering regardless of completion order, and
 * must agree exactly with the serial Runner it is layered on.
 *
 * This suite is also the ThreadSanitizer CI target (ci.yml `tsan` job):
 * it drives real concurrent simulations through the pool.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/units.h"
#include "sim/sweep_runner.h"
#include "workloads/workload_registry.h"

namespace h2::sim {
namespace {

RunConfig
quickCfg()
{
    RunConfig cfg;
    // NM must hold the default hybrid2 64 MiB DRAM-cache slice.
    cfg.nmBytes = 128 * MiB;
    cfg.fmBytes = 512 * MiB;
    cfg.instrPerCore = 20'000;
    cfg.numCores = 2;
    return cfg;
}

std::vector<workloads::Workload>
tinySuite()
{
    std::vector<workloads::Workload> suite;
    for (const char *name : {"lbm", "mcf", "cg.D"}) {
        auto w = workloads::findWorkload(name);
        w.footprintBytes = 16 * MiB;
        suite.push_back(w);
    }
    return suite;
}

const std::vector<std::string> &
tinySpecs()
{
    static const std::vector<std::string> specs = {
        "baseline", "hybrid2", "mempod", "dfc",
    };
    return specs;
}

TEST(SweepRunner, BitIdenticalAcrossJobCounts)
{
    SweepRunner serial(quickCfg(), 1);
    SweepRunner parallel(quickCfg(), 8);
    auto suite = tinySuite();
    serial.submitSweep(suite, tinySpecs());
    parallel.submitSweep(suite, tinySpecs());
    for (const auto &w : suite) {
        for (const auto &spec : tinySpecs()) {
            const Metrics &a = serial.run(w, spec);
            const Metrics &b = parallel.run(w, spec);
            EXPECT_EQ(a, b) << w.name << " under " << spec
                            << " diverged between jobs=1 and jobs=8";
        }
    }
    // Whole-map equality doubles as the ordering check: both maps
    // iterate in key order no matter which worker finished first.
    EXPECT_EQ(serial.results(), parallel.results());
}

TEST(SweepRunner, SubmitOrderDoesNotAffectResults)
{
    SweepRunner forward(quickCfg(), 4);
    SweepRunner backward(quickCfg(), 4);
    auto suite = tinySuite();
    auto specs = tinySpecs();
    forward.submitSweep(suite, specs);
    std::reverse(suite.begin(), suite.end());
    auto reversedSpecs = specs;
    std::reverse(reversedSpecs.begin(), reversedSpecs.end());
    backward.submitSweep(suite, reversedSpecs);
    EXPECT_EQ(forward.results(), backward.results());
}

TEST(SweepRunner, AgreesWithSerialRunner)
{
    Runner reference(quickCfg());
    SweepRunner sweep(quickCfg(), 4);
    auto suite = tinySuite();
    sweep.submitSweep(suite, tinySpecs());
    for (const auto &w : suite)
        for (const auto &spec : tinySpecs())
            EXPECT_EQ(reference.run(w, spec), sweep.run(w, spec));
}

TEST(SweepRunner, SpeedupMatchesSerialRunner)
{
    Runner reference(quickCfg());
    SweepRunner sweep(quickCfg(), 4);
    auto w = tinySuite().front();
    EXPECT_DOUBLE_EQ(reference.speedup(w, "hybrid2"),
                     sweep.speedup(w, "hybrid2"));
}

TEST(SweepRunner, DuplicateSubmitsAreMemoized)
{
    SweepRunner sweep(quickCfg(), 2);
    auto w = tinySuite().front();
    for (int i = 0; i < 10; ++i)
        sweep.submit(w, "baseline");
    sweep.waitAll();
    EXPECT_EQ(sweep.results().size(), 1u);
    // Blocking getter returns the one cached entry.
    const Metrics &a = sweep.run(w, "baseline");
    const Metrics &b = sweep.run(w, "baseline");
    EXPECT_EQ(&a, &b);
}

TEST(SweepRunner, ZeroJobsPicksHardwareConcurrency)
{
    SweepRunner sweep(quickCfg(), 0);
    EXPECT_EQ(sweep.jobs(), ThreadPool::defaultConcurrency());
}

} // namespace
} // namespace h2::sim
