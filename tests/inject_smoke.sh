#!/usr/bin/env bash
# End-to-end fault injection: a sweep with an always-failing point, a
# watchdog-timeout point, and a flaky-twice point (with enough retries
# to recover) must complete every healthy point, journal every outcome,
# and exit with the distinct partial-failure code 3.
#
# Usage: inject_smoke.sh <h2sim-binary> <workdir>
set -u

H2SIM=$1
WORKDIR=$2

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
cd "$WORKDIR" || exit 1

"$H2SIM" --design baseline --design dfc --design hybrid2 \
    --workload lbm --workload mcf \
    --nm-mib 1024 --fm-mib 16384 --cores 2 --instr 20000 \
    --jobs 2 --format json --retries 2 --run-timeout 1000 \
    --inject 'fail=lbm|baseline,timeout=lbm|hybrid2,flaky=lbm|dfc:2' \
    --journal inject.jnl --out inject.json
rc=$?

if [ "$rc" -ne 3 ]; then
    echo "FAIL: expected partial-failure exit 3, got $rc"
    exit 1
fi
if ! grep -q '"ok": false' inject.json; then
    echo "FAIL: report lists no failed points"
    exit 1
fi
if ! grep -q '"error": "injected failure' inject.json; then
    echo "FAIL: injected failure missing from report"
    exit 1
fi
if ! grep -q 'run timeout' inject.json; then
    echo "FAIL: injected timeout missing from report"
    exit 1
fi
# The flaky point recovered on its third attempt.
if ! grep -q '"attempts": 3' inject.json; then
    echo "FAIL: flaky point did not record 3 attempts"
    exit 1
fi
# Healthy points completed despite lbm's faults: all 3 mcf points plus
# the recovered flaky lbm|dfc point.
ok_count=$(grep -c '"ok": true' inject.json)
if [ "$ok_count" -ne 4 ]; then
    echo "FAIL: expected 4 successful records, got $ok_count"
    exit 1
fi
# Every point, failed or not, landed in the journal.
recs=$(wc -l < inject.jnl)
if [ "$recs" -ne 6 ]; then
    echo "FAIL: expected 6 journal records, got $recs"
    exit 1
fi
echo "PASS: fault-injected sweep journaled everything and exited 3"
