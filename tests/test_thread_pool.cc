/**
 * @file
 * Exception-safety tests for the shared thread pool: a throwing job
 * must never std::terminate the process, must not wedge drain(), and
 * must leave the pool usable for subsequent jobs. The sweep engine's
 * fault tolerance is built on these guarantees.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "common/log.h"
#include "common/thread_pool.h"

namespace h2 {
namespace {

TEST(ThreadPool, ThrowingJobDoesNotTerminate)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&] {
            ++ran;
            throw std::runtime_error("boom");
        });
    pool.drain();
    EXPECT_EQ(ran.load(), 8);
    EXPECT_EQ(pool.caughtExceptions(), 8u);
}

TEST(ThreadPool, PoolStaysUsableAfterThrowingJobs)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("first wave"); });
    pool.drain();

    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i)
        pool.submit([&] { ++ran; });
    pool.drain();
    EXPECT_EQ(ran.load(), 16);
    EXPECT_EQ(pool.caughtExceptions(), 1u);
}

TEST(ThreadPool, NonStdExceptionsAreCapturedToo)
{
    ThreadPool pool(1);
    pool.submit([] { throw 42; });
    pool.drain();
    EXPECT_EQ(pool.caughtExceptions(), 1u);
}

TEST(ThreadPool, MixedThrowingAndHealthyJobsAllRun)
{
    ThreadPool pool(4);
    std::atomic<int> healthy{0};
    for (int i = 0; i < 32; ++i) {
        if (i % 3 == 0)
            pool.submit([] { throw std::runtime_error("every third"); });
        else
            pool.submit([&] { ++healthy; });
    }
    pool.drain();
    EXPECT_EQ(healthy.load(), 21);
    EXPECT_EQ(pool.caughtExceptions(), 11u);
}

TEST(ThreadPool, FatalInsideCapturedJobIsAnException)
{
    // A worker running under ScopedFatalCapture turns h2_fatal into a
    // FatalError; escaping the job it is caught by the pool like any
    // other exception instead of exiting the process.
    ThreadPool pool(1);
    pool.submit([] {
        ScopedFatalCapture capture;
        h2_fatal("fatal inside a pool job");
    });
    pool.drain();
    EXPECT_EQ(pool.caughtExceptions(), 1u);
}

} // namespace
} // namespace h2
