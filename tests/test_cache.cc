/**
 * @file
 * Tests for replacement policies and the generic set-associative cache.
 */

#include <gtest/gtest.h>

#include "cache/replacement.h"
#include "cache/set_assoc_cache.h"
#include "common/units.h"

namespace h2::cache {
namespace {

CacheParams
smallCache(u32 ways = 4, u32 lineBytes = 64,
           ReplPolicy repl = ReplPolicy::Lru)
{
    CacheParams p;
    p.name = "test";
    p.sizeBytes = u64(ways) * lineBytes * 8; // 8 sets
    p.ways = ways;
    p.lineBytes = lineBytes;
    p.repl = repl;
    return p;
}

TEST(Replacement, InvalidWayWinsFirst)
{
    u64 stamps[4] = {5, 6, 7, 8};
    bool valids[4] = {true, true, false, true};
    EXPECT_EQ(selectVictim(ReplPolicy::Lru, stamps, valids, 4, 0), 2u);
}

TEST(Replacement, LruPicksSmallestStamp)
{
    u64 stamps[4] = {5, 2, 7, 8};
    bool valids[4] = {true, true, true, true};
    EXPECT_EQ(selectVictim(ReplPolicy::Lru, stamps, valids, 4, 0), 1u);
}

TEST(Replacement, RandomStaysInRange)
{
    u64 stamps[4] = {1, 2, 3, 4};
    bool valids[4] = {true, true, true, true};
    for (u64 t = 0; t < 100; ++t)
        EXPECT_LT(selectVictim(ReplPolicy::Random, stamps, valids, 4, t),
                  4u);
}

TEST(Replacement, ToString)
{
    EXPECT_EQ(to_string(ReplPolicy::Lru), "LRU");
    EXPECT_EQ(to_string(ReplPolicy::Fifo), "FIFO");
    EXPECT_EQ(to_string(ReplPolicy::Random), "Random");
}

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache c(smallCache());
    EXPECT_FALSE(c.access(0x1000, AccessType::Read));
    c.insert(0x1000, false);
    EXPECT_TRUE(c.access(0x1000, AccessType::Read));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssocCache, SubLineAddressesAlias)
{
    SetAssocCache c(smallCache());
    c.insert(0x1000, false);
    EXPECT_TRUE(c.access(0x1004, AccessType::Read));
    EXPECT_TRUE(c.probe(0x103F));
    EXPECT_FALSE(c.probe(0x1040));
}

TEST(SetAssocCache, LruEvictionOrder)
{
    // 4-way set; fill 4 lines of one set, touch the first, insert a
    // fifth: the second line (LRU) must be evicted.
    SetAssocCache c(smallCache());
    u64 setStride = 8 * 64; // 8 sets * 64 B
    for (u64 i = 0; i < 4; ++i)
        c.insert(i * setStride, false);
    EXPECT_TRUE(c.access(0, AccessType::Read)); // refresh way 0
    auto victim = c.insert(4 * setStride, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, setStride);
}

TEST(SetAssocCache, FifoIgnoresAccessRecency)
{
    SetAssocCache c(smallCache(4, 64, ReplPolicy::Fifo));
    u64 setStride = 8 * 64;
    for (u64 i = 0; i < 4; ++i)
        c.insert(i * setStride, false);
    EXPECT_TRUE(c.access(0, AccessType::Read)); // should NOT refresh
    auto victim = c.insert(4 * setStride, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, 0u); // oldest insertion evicted
}

TEST(SetAssocCache, DirtyTracking)
{
    SetAssocCache c(smallCache());
    c.insert(0x40, false);
    EXPECT_FALSE(c.probeDirty(0x40));
    c.access(0x40, AccessType::Write);
    EXPECT_TRUE(c.probeDirty(0x40));
}

TEST(SetAssocCache, DirtyEvictionReported)
{
    SetAssocCache c(smallCache(1)); // direct-mapped, 8 sets
    c.insert(0, true);
    auto victim = c.insert(8 * 64, false); // same set
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(victim->dirty);
    EXPECT_EQ(c.dirtyEvictions(), 1u);
}

TEST(SetAssocCache, InsertDirtyFlag)
{
    SetAssocCache c(smallCache());
    c.insert(0x80, true);
    EXPECT_TRUE(c.probeDirty(0x80));
}

TEST(SetAssocCache, Invalidate)
{
    SetAssocCache c(smallCache());
    c.insert(0x100, true);
    auto wasDirty = c.invalidate(0x100);
    ASSERT_TRUE(wasDirty.has_value());
    EXPECT_TRUE(*wasDirty);
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_FALSE(c.invalidate(0x100).has_value());
}

TEST(SetAssocCache, SetDirty)
{
    SetAssocCache c(smallCache());
    c.insert(0x200, false);
    c.setDirty(0x200);
    EXPECT_TRUE(c.probeDirty(0x200));
}

TEST(SetAssocCache, ResidentLinesInRange)
{
    SetAssocCache c(smallCache(4, 64));
    c.insert(0, false);
    c.insert(64, false);
    c.insert(192, false);
    EXPECT_EQ(c.residentLinesInRange(0, 256), 3u);
    EXPECT_EQ(c.residentLinesInRange(0, 128), 2u);
    EXPECT_EQ(c.residentLinesInRange(256, 256), 0u);
}

TEST(SetAssocCache, NumValidLines)
{
    SetAssocCache c(smallCache());
    EXPECT_EQ(c.numValidLines(), 0u);
    c.insert(0, false);
    c.insert(64, false);
    EXPECT_EQ(c.numValidLines(), 2u);
}

TEST(SetAssocCacheDeath, DoubleInsert)
{
    SetAssocCache c(smallCache());
    c.insert(0x40, false);
    EXPECT_DEATH(c.insert(0x40, false), "double insert");
}

TEST(SetAssocCacheDeath, SetDirtyOnAbsent)
{
    SetAssocCache c(smallCache());
    EXPECT_DEATH(c.setDirty(0x40), "absent");
}

struct GeometryParam
{
    u32 ways;
    u32 lineBytes;
};

class CacheGeometry : public ::testing::TestWithParam<GeometryParam>
{
};

TEST_P(CacheGeometry, FillWholeCacheThenHitEverything)
{
    auto [ways, lineBytes] = GetParam();
    CacheParams p;
    p.name = "sweep";
    p.sizeBytes = 64 * KiB;
    p.ways = ways;
    p.lineBytes = lineBytes;
    SetAssocCache c(p);

    u64 lines = p.sizeBytes / lineBytes;
    for (u64 i = 0; i < lines; ++i)
        ASSERT_FALSE(c.insert(i * lineBytes, false).has_value());
    EXPECT_EQ(c.numValidLines(), lines);
    for (u64 i = 0; i < lines; ++i)
        ASSERT_TRUE(c.access(i * lineBytes, AccessType::Read));
    // One more distinct line forces exactly one eviction.
    EXPECT_TRUE(c.insert(lines * lineBytes, false).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(GeometryParam{1, 64}, GeometryParam{2, 64},
                      GeometryParam{4, 64}, GeometryParam{8, 256},
                      GeometryParam{16, 64}, GeometryParam{16, 1024},
                      GeometryParam{4, 4096}));

} // namespace
} // namespace h2::cache
