/**
 * @file
 * Smoke coverage for the whole design-spec grammar documented in
 * sim/runner.h: every documented spec must construct and serve 1k
 * accesses without tripping integrity checks, and malformed specs
 * must fail with a clear fatal error rather than an uncaught crash.
 */

#include <gtest/gtest.h>

#include <cctype>

#include "common/rng.h"
#include "common/units.h"
#include "sim/runner.h"

namespace h2::sim {
namespace {

// Big enough for the default hybrid2 config (64 MiB DRAM-cache slice)
// while keeping each smoke run fast.
mem::MemSystemParams
smallMem()
{
    mem::MemSystemParams p;
    p.nmBytes = 256 * MiB;
    p.fmBytes = 1024 * MiB;
    return p;
}

/** Every spec form documented in the runner.h grammar comment. */
const std::vector<std::string> &
documentedSpecs()
{
    static const std::vector<std::string> specs = {
        "baseline",
        "hybrid2",
        "hybrid2:cacheonly",
        "hybrid2:migrall",
        "hybrid2:migrnone",
        "hybrid2:noremap",
        "hybrid2:cache=2,sector=4096,line=512",
        "ideal:128",
        "ideal:256",
        "tagless",
        "dfc",
        "dfc:512",
        "mempod",
        "chameleon",
        "lgm",
        "lgm:watermark=32",
    };
    return specs;
}

class DesignSpecSmoke : public ::testing::TestWithParam<std::string>
{
};

TEST_P(DesignSpecSmoke, Serves1kAccessesWithInvariantsHeld)
{
    mem::EmptyLlcView llc;
    auto design = makeDesign(GetParam(), smallMem(), llc);
    ASSERT_NE(design, nullptr);
    ASSERT_FALSE(design->name().empty());

    const u64 capacity = design->flatCapacity();
    ASSERT_GE(capacity, 64 * MiB);

    Rng rng(7);
    Tick now = 0;
    for (int i = 0; i < 1000; ++i) {
        Addr addr = rng.below(capacity) & ~Addr(63);
        auto type = (i % 4 == 0) ? AccessType::Write : AccessType::Read;
        mem::MemResult r = design->access(addr, type, now);
        EXPECT_GE(r.completeAt(), now);
        now = r.completeAt();
    }
    design->checkInvariants();
    EXPECT_EQ(design->requests(), 1000u);

    StatSet stats;
    design->collectStats(stats);
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, DesignSpecSmoke, ::testing::ValuesIn(documentedSpecs()),
    [](const auto &paramInfo) {
        std::string name = paramInfo.param;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

using DesignSpecDeath = ::testing::Test;

TEST(DesignSpecDeath, UnknownHead)
{
    mem::EmptyLlcView llc;
    auto mp = smallMem();
    EXPECT_DEATH(makeDesign("frobcache", mp, llc), "unknown design");
}

TEST(DesignSpecDeath, UnknownHybrid2Option)
{
    mem::EmptyLlcView llc;
    auto mp = smallMem();
    EXPECT_DEATH(makeDesign("hybrid2:turbo=9", mp, llc),
                 "unknown hybrid2 option");
}

TEST(DesignSpecDeath, UnknownLgmOption)
{
    mem::EmptyLlcView llc;
    auto mp = smallMem();
    EXPECT_DEATH(makeDesign("lgm:pressure=3", mp, llc),
                 "unknown lgm option");
}

TEST(DesignSpecDeath, NonNumericIdealLine)
{
    mem::EmptyLlcView llc;
    auto mp = smallMem();
    EXPECT_DEATH(makeDesign("ideal:huge", mp, llc), "bad value");
}

TEST(DesignSpecDeath, NonNumericDfcLine)
{
    mem::EmptyLlcView llc;
    auto mp = smallMem();
    EXPECT_DEATH(makeDesign("dfc:wide", mp, llc), "bad value");
}

TEST(DesignSpecDeath, NonNumericHybrid2Cache)
{
    mem::EmptyLlcView llc;
    auto mp = smallMem();
    EXPECT_DEATH(makeDesign("hybrid2:cache=big", mp, llc), "bad value");
}

TEST(DesignSpecDeath, EmptyLgmWatermark)
{
    mem::EmptyLlcView llc;
    auto mp = smallMem();
    EXPECT_DEATH(makeDesign("lgm:watermark=", mp, llc), "bad value");
}

TEST(DesignSpecDeath, DigitlessHybrid2Unused)
{
    mem::EmptyLlcView llc;
    auto mp = smallMem();
    EXPECT_DEATH(makeDesign("hybrid2:unused=.", mp, llc), "bad value");
}

TEST(DesignSpecDeath, OutOfRangeHybrid2Cache)
{
    mem::EmptyLlcView llc;
    auto mp = smallMem();
    EXPECT_DEATH(
        makeDesign("hybrid2:cache=99999999999999999999999", mp, llc),
        "bad value");
}

} // namespace
} // namespace h2::sim
