/**
 * @file
 * Tests for the LGM baseline: watermark-driven interval migration with
 * LLC-guided bandwidth economizing.
 */

#include <gtest/gtest.h>

#include "baselines/lgm.h"
#include "common/units.h"

namespace h2::baselines {
namespace {

mem::MemSystemParams
smallSys()
{
    mem::MemSystemParams p;
    p.nmBytes = 8 * MiB;
    p.fmBytes = 64 * MiB;
    return p;
}

LgmParams
lgmParams(u32 watermark = 8)
{
    LgmParams p;
    p.watermark = watermark;
    p.intervalPs = 1 * psPerUs;
    return p;
}

/** An LlcView that reports a fixed number of resident lines. */
class FixedLlcView : public mem::LlcView
{
  public:
    explicit FixedLlcView(u32 lines) : n(lines) {}
    u32 residentLines(Addr, u64) const override { return n; }

  private:
    u32 n;
};

TEST(Lgm, FlatCapacityIsNmPlusFm)
{
    mem::EmptyLlcView llc;
    Lgm l(smallSys(), llc, lgmParams());
    EXPECT_EQ(l.flatCapacity(), 72 * MiB);
    EXPECT_EQ(l.name(), "LGM");
}

TEST(Lgm, HotFmSegmentMigratesPastWatermark)
{
    mem::EmptyLlcView llc;
    Lgm l(smallSys(), llc, lgmParams(8));
    Addr hot = 32 * MiB;
    u64 hotSeg = hot / 2048;
    EXPECT_FALSE(l.locate(hotSeg).inNm);
    Tick t = 0;
    for (int i = 0; i < 10; ++i)
        l.access(hot, AccessType::Read, t += 1000);
    l.access(0, AccessType::Read, 2 * psPerUs);
    EXPECT_TRUE(l.locate(hotSeg).inNm);
    EXPECT_EQ(l.migrations(), 1u);
}

TEST(Lgm, BelowWatermarkStaysInFm)
{
    mem::EmptyLlcView llc;
    Lgm l(smallSys(), llc, lgmParams(8));
    Addr warm = 32 * MiB;
    Tick t = 0;
    for (int i = 0; i < 5; ++i) // below the watermark
        l.access(warm, AccessType::Read, t += 1000);
    l.access(0, AccessType::Read, 2 * psPerUs);
    EXPECT_FALSE(l.locate(warm / 2048).inNm);
    EXPECT_EQ(l.migrations(), 0u);
}

TEST(Lgm, CountersResetEachInterval)
{
    mem::EmptyLlcView llc;
    Lgm l(smallSys(), llc, lgmParams(8));
    Addr warm = 32 * MiB;
    Tick t = 0;
    // 5 accesses in interval 1, 5 in interval 2: never 8 in one.
    for (int i = 0; i < 5; ++i)
        l.access(warm, AccessType::Read, t += 1000);
    for (int i = 0; i < 5; ++i)
        l.access(warm, AccessType::Read, psPerUs + i * 1000 + 1000);
    l.access(0, AccessType::Read, 3 * psPerUs);
    EXPECT_EQ(l.migrations(), 0u);
}

TEST(Lgm, DisplacedVictimRemainsReachable)
{
    mem::EmptyLlcView llc;
    Lgm l(smallSys(), llc, lgmParams(4));
    Addr hot = 32 * MiB;
    u64 hotSeg = hot / 2048;
    Tick t = 0;
    for (int i = 0; i < 6; ++i)
        l.access(hot, AccessType::Read, t += 1000);
    l.access(0, AccessType::Read, 2 * psPerUs);
    ASSERT_TRUE(l.locate(hotSeg).inNm);
    u64 nmLoc = l.locate(hotSeg).idx;
    // The displaced segment sits in the hot segment's old FM home.
    u64 displaced = nmLoc; // FIFO victim 0 held identity segment 0...
    (void)displaced;
    // Locate the displaced segment by its new FM location.
    u64 nmSegs = 8 * MiB / 2048;
    bool found = false;
    for (u64 seg = 0; seg < nmSegs && !found; ++seg) {
        auto loc = l.locate(seg);
        if (!loc.inNm && loc.idx == hotSeg - nmSegs)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Lgm, LlcResidentLinesReduceMigrationTraffic)
{
    // With 16 of 32 lines LLC-resident, the migration moves half the
    // bytes of a full swap.
    FixedLlcView half(16);
    Lgm lHalf(smallSys(), half, lgmParams(4));
    mem::EmptyLlcView none;
    Lgm lFull(smallSys(), none, lgmParams(4));

    auto hammer = [](Lgm &l) {
        Addr hot = 32 * MiB;
        Tick t = 0;
        for (int i = 0; i < 6; ++i)
            l.access(hot, AccessType::Read, t += 1000);
        u64 before = l.fmDevice().stats().totalBytes();
        l.access(0, AccessType::Read, 2 * psPerUs);
        return l.fmDevice().stats().totalBytes() - before;
    };
    u64 fullBytes = hammer(lFull);
    u64 halfBytes = hammer(lHalf);
    EXPECT_LT(halfBytes, fullBytes);
    EXPECT_GT(lHalf.llcLinesSkipped(), 0u);
}

TEST(Lgm, MigrationCapRespected)
{
    mem::EmptyLlcView llc;
    LgmParams p = lgmParams(2);
    p.maxMigrationsPerInterval = 3;
    Lgm l(smallSys(), llc, p);
    Tick t = 0;
    // Make 10 segments hot within one interval.
    for (u64 s = 0; s < 10; ++s)
        for (int i = 0; i < 4; ++i)
            l.access(32 * MiB + s * 2048, AccessType::Read, t += 100);
    l.access(0, AccessType::Read, 2 * psPerUs);
    EXPECT_LE(l.migrations(), 3u);
    EXPECT_GT(l.migrations(), 0u);
}

TEST(Lgm, MetadataChargedOnRemapCacheMiss)
{
    mem::EmptyLlcView llc;
    Lgm l(smallSys(), llc, lgmParams());
    Tick t = 0;
    for (u64 i = 0; i < 100; ++i)
        l.access(16 * MiB + i * 2048, AccessType::Read, t += 1000);
    StatSet out;
    l.collectStats(out);
    EXPECT_GT(out.get("lgm.metaReads"), 0.0);
    EXPECT_TRUE(out.has("lgm.llcLinesSkipped"));
}

} // namespace
} // namespace h2::baselines
