/**
 * @file
 * Tests for the migration decision (paper section 3.7): net-cost
 * function properties, counter comparison, and the FM-traffic budget.
 */

#include <gtest/gtest.h>

#include "core/migration_policy.h"

namespace h2::core {
namespace {

constexpr u32 kLps = 8; // 2 KB sectors, 256 B lines

TEST(NetCost, PaperExamples)
{
    // All lines valid and dirty: Netcost = 1 (cheapest migration).
    EXPECT_EQ(migrationNetCost(kLps, kLps, kLps), 1u);
    // One clean valid line: Netcost = 2*Nall (most expensive).
    EXPECT_EQ(migrationNetCost(kLps, 1, 0), 2 * kLps);
}

TEST(NetCost, Formula)
{
    // Netcost = 2*Nall - Nvalid - Ndirty + 1.
    EXPECT_EQ(migrationNetCost(8, 4, 2), 2u * 8 - 4 - 2 + 1);
    EXPECT_EQ(migrationNetCost(16, 10, 5), 2u * 16 - 10 - 5 + 1);
}

struct CostCase
{
    u32 valid;
    u32 dirty;
};

class NetCostSweep : public ::testing::TestWithParam<CostCase>
{
};

TEST_P(NetCostSweep, AlwaysInPaperRange)
{
    auto [valid, dirty] = GetParam();
    u32 cost = migrationNetCost(kLps, valid, dirty);
    EXPECT_GE(cost, 1u);
    EXPECT_LE(cost, 2 * kLps);
}

std::vector<CostCase>
allValidDirtyCombos()
{
    std::vector<CostCase> cases;
    for (u32 v = 1; v <= kLps; ++v)
        for (u32 d = 0; d <= v; ++d)
            cases.push_back({v, d});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, NetCostSweep,
                         ::testing::ValuesIn(allValidDirtyCombos()));

TEST(NetCostDeath, MoreDirtyThanValid)
{
    EXPECT_DEATH(migrationNetCost(8, 2, 3), "dirty");
}

TEST(NetCostDeath, ZeroValid)
{
    EXPECT_DEATH(migrationNetCost(8, 0, 0), "valid count");
}

// ---------------------------------------------------------------------
// Policy fixture: a 4-way XTA set with controllable counters.
// ---------------------------------------------------------------------

class PolicyTest : public ::testing::Test
{
  protected:
    PolicyTest()
        : xta(16, 4, kLps), policy(511, 100 * 1000 * 313)
    {
    }

    /** Install sector @p flat in set 0 with @p counter accesses. */
    XtaEntry *
    install(u64 flat, u32 counter, bool inFm = true, u32 valid = kLps,
            u32 dirty = kLps)
    {
        XtaEntry *e = xta.victimWay(flat);
        xta.fill(flat, *e);
        e->inFm = inFm;
        e->accessCounter = counter;
        e->validMask = (u64(1) << valid) - 1;
        e->dirtyMask = (u64(1) << dirty) - 1;
        return e;
    }

    void
    giveBudget(u64 amount)
    {
        for (u64 i = 0; i < amount; ++i)
            policy.onDemandFmAccess();
    }

    Xta xta; // 4 sets x 4 ways
    MigrationPolicy policy;
};

TEST_F(PolicyTest, MigratesWhenCounterWinsAndBudgetSuffices)
{
    XtaEntry *victim = install(0, 10);
    install(4, 5);
    giveBudget(100);
    EXPECT_EQ(policy.decide(xta, 0, *victim),
              MigrationVerdict::Migrate);
}

TEST_F(PolicyTest, TieCountsAsWin)
{
    // Paper: "greater or equal to all other sectors in the set".
    XtaEntry *victim = install(0, 5);
    install(4, 5);
    giveBudget(100);
    EXPECT_EQ(policy.decide(xta, 0, *victim),
              MigrationVerdict::Migrate);
}

TEST_F(PolicyTest, DeniedWhenAnotherSectorIsHotter)
{
    XtaEntry *victim = install(0, 5);
    install(4, 6);
    giveBudget(100);
    EXPECT_EQ(policy.decide(xta, 0, *victim),
              MigrationVerdict::DeniedByCounter);
}

TEST_F(PolicyTest, SaturatedCompetitorsAreIgnored)
{
    XtaEntry *victim = install(0, 5);
    install(4, 511); // saturated: ignored to avoid starvation
    giveBudget(100);
    EXPECT_EQ(policy.decide(xta, 0, *victim),
              MigrationVerdict::Migrate);
}

TEST_F(PolicyTest, NmResidentSectorsDoNotCompete)
{
    XtaEntry *victim = install(0, 5);
    install(4, 100, /*inFm=*/false); // migrated sector: no competition
    giveBudget(100);
    EXPECT_EQ(policy.decide(xta, 0, *victim),
              MigrationVerdict::Migrate);
}

TEST_F(PolicyTest, DeniedByBudget)
{
    XtaEntry *victim = install(0, 10, true, 1, 0); // cost = 2*8 = 16
    giveBudget(10);
    EXPECT_EQ(policy.decide(xta, 0, *victim),
              MigrationVerdict::DeniedByBudget);
}

TEST_F(PolicyTest, EqualBudgetIsDenied)
{
    // Figure 10: "higher or equal" net cost -> evict.
    XtaEntry *victim = install(0, 10, true, kLps, kLps); // cost = 1
    giveBudget(1);
    EXPECT_EQ(policy.decide(xta, 0, *victim),
              MigrationVerdict::DeniedByBudget);
}

TEST_F(PolicyTest, ExactBudgetBoundaryFollowsFigure10)
{
    // Figure 10 evicts when the net cost is "higher than or equal to"
    // the FM-access counter: a migration whose cost exactly equals the
    // remaining budget is denied; one budget unit above it migrates.
    XtaEntry *victim = install(0, 10, true, 1, 0); // cost = 2*8 = 16
    giveBudget(16);
    EXPECT_EQ(policy.decide(xta, 0, *victim),
              MigrationVerdict::DeniedByBudget);
    EXPECT_EQ(policy.budget(), 16u); // denial consumes nothing
    giveBudget(1); // 17 > 16: strictly above the cost
    EXPECT_EQ(policy.decide(xta, 0, *victim),
              MigrationVerdict::Migrate);
    EXPECT_EQ(policy.budget(), 1u); // 17 - 16
}

TEST_F(PolicyTest, MigrationConsumesBudget)
{
    XtaEntry *victim = install(0, 10, true, kLps, kLps); // cost = 1
    giveBudget(10);
    EXPECT_EQ(policy.decide(xta, 0, *victim),
              MigrationVerdict::Migrate);
    EXPECT_EQ(policy.budget(), 9u);
}

TEST_F(PolicyTest, BudgetResetsPeriodically)
{
    giveBudget(50);
    policy.advanceTo(100 * 1000 * 313); // exactly one period
    EXPECT_EQ(policy.budget(), 0u);
}

TEST_F(PolicyTest, BudgetAccumulatesWithinPeriod)
{
    giveBudget(50);
    policy.advanceTo(100);
    EXPECT_EQ(policy.budget(), 50u);
}

TEST_F(PolicyTest, MultiplePeriodsRolledForward)
{
    giveBudget(50);
    policy.advanceTo(10 * 100 * 1000 * 313ull);
    EXPECT_EQ(policy.budget(), 0u);
    giveBudget(3);
    policy.advanceTo(10 * 100 * 1000 * 313ull + 1);
    EXPECT_EQ(policy.budget(), 3u);
}

TEST_F(PolicyTest, EmptySetVictimMigratesIfBudgetAllows)
{
    XtaEntry *victim = install(0, 0, true, kLps, kLps);
    giveBudget(5);
    EXPECT_EQ(policy.decide(xta, 0, *victim),
              MigrationVerdict::Migrate);
}

TEST(MigrationPolicyDeath, NmSectorRejected)
{
    Xta xta(16, 4, kLps);
    MigrationPolicy policy(511, 1000);
    XtaEntry *e = xta.victimWay(0);
    xta.fill(0, *e);
    e->inFm = false;
    EXPECT_DEATH(policy.decide(xta, 0, *e), "NM-resident");
}

} // namespace
} // namespace h2::core
