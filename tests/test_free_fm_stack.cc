/**
 * @file
 * Tests for the Free-FM-Stack (paper sections 3.3 / 3.5).
 */

#include <gtest/gtest.h>

#include "core/free_fm_stack.h"

namespace h2::core {
namespace {

TEST(FreeFmStack, LifoOrder)
{
    FreeFmStack s;
    s.push(10);
    s.push(20);
    s.push(30);
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s.pop(), 30u);
    EXPECT_EQ(s.pop(), 20u);
    EXPECT_EQ(s.pop(), 10u);
    EXPECT_TRUE(s.empty());
}

TEST(FreeFmStack, NoNmTrafficWithinOnChipWindow)
{
    FreeFmStack s(64, 16);
    for (u64 i = 0; i < 64; ++i)
        s.push(i);
    EXPECT_EQ(s.takeNmSpills(), 0u);
    while (!s.empty())
        s.pop();
    EXPECT_EQ(s.takeNmFills(), 0u);
}

TEST(FreeFmStack, DeepStackSpillsToNm)
{
    FreeFmStack s(64, 16);
    for (u64 i = 0; i < 256; ++i)
        s.push(i);
    u64 spills = s.takeNmSpills();
    // (256 - 64) entries past the window, 16 entries per NM line.
    EXPECT_EQ(spills, (256 - 64) / 16u);
    EXPECT_EQ(s.takeNmSpills(), 0u); // drained
    EXPECT_EQ(s.totalNmSpills(), spills);
}

TEST(FreeFmStack, DrainingDeepStackFillsFromNm)
{
    FreeFmStack s(64, 16);
    for (u64 i = 0; i < 256; ++i)
        s.push(i);
    s.takeNmSpills();
    while (!s.empty())
        s.pop();
    u64 fills = s.takeNmFills();
    EXPECT_EQ(fills, (256 - 64) / 16u);
    EXPECT_EQ(s.totalNmFills(), fills);
}

TEST(FreeFmStack, TakeResetsButLifetimePersists)
{
    FreeFmStack s(4, 2);
    for (u64 i = 0; i < 32; ++i)
        s.push(i);
    u64 first = s.takeNmSpills();
    EXPECT_GT(first, 0u);
    EXPECT_EQ(s.takeNmSpills(), 0u);
    EXPECT_EQ(s.totalNmSpills(), first);
}

TEST(FreeFmStackDeath, PopEmpty)
{
    FreeFmStack s;
    EXPECT_DEATH(s.pop(), "empty");
}

} // namespace
} // namespace h2::core
