// h2lint fixture: missing #pragma once, silenced file-wide.
// h2lint: allow-file(R5)

namespace h2 {

inline int
answer()
{
    return 42;
}

} // namespace h2
