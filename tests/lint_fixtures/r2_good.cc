// h2lint fixture: R2 must stay silent — sanctioned replacements and
// lookalike identifiers that word-boundary / member checks must not
// trip on. Mentions of std::stoul or rand() in comments are fine too.
#include <chrono>
#include <string>

#include "common/parse.h"
#include "common/rng.h"

namespace h2 {

struct SystemClock; // opaque: has a time() member defined elsewhere
double memberTime(const SystemClock &c);

u64
parseIt(std::string_view s)
{
    return parseU64OrFatal("fixture", s);
}

u64
noise(u64 seed)
{
    Rng rng(seed);
    return rng.next();
}

double
elapsed(const SystemClock &c)
{
    auto t0 = std::chrono::steady_clock::now();
    (void)t0;
    return c.time() + memberTime(c); // member access: fine
}

int my_rand() { return 4; }               // identifier tail: fine
int stranded(int x) { return x; }         // "strand" != strtok/rand
const char *timestamp();                  // "time..." identifier: fine

} // namespace h2
