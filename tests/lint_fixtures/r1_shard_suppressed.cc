// h2lint fixture: a deliberate shard-type reference, silenced by the
// inline suppression comment (a white-box probe that needs the raw
// per-channel state is the legitimate use).
#include "dram/dram_device.h"

namespace h2::baselines {

struct ShardProbe
{
    const dram::ChannelState &raw(u32 ch); // h2lint: allow(R1)
};

} // namespace h2::baselines
