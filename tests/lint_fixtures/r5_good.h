// h2lint fixture: a hygienic header — R5 must stay silent. The string
// below mentioning "#include <iostream>" must not count.
#pragma once

#include <ostream>
#include <string>

namespace h2 {

inline std::string
docString()
{
    return "put #include <iostream> only in a .cc";
}

inline void
print(std::ostream &os)
{
    os << docString();
}

} // namespace h2
