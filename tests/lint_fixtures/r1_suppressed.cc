// h2lint fixture: a deliberate direct device access, silenced by the
// inline suppression comment.
#include "dram/dram_device.h"

namespace h2::mem {

struct SuppressedDesign
{
    dram::DramDevice *nm;

    void
    touch()
    {
        // White-box probe; bypassing the controller is the point here.
        nm->access(0, AccessType::Read, 0); // h2lint: allow(R1)
    }
};

} // namespace h2::mem
