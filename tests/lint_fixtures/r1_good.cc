// h2lint fixture: R1 must stay silent — all device traffic goes
// through the controller seam, and lookalike calls (a cache's
// access(), postWrite()) are not device calls.
#include "mem/hybrid_memory.h"

namespace h2::mem {

struct GoodDesign : HybridMemory
{
    void
    touch(Timeline &tl)
    {
        tl.serialize(nmc().access(0, 64, AccessType::Read, 0));
        tl.overlap(fmc().post(64, 64, 0));
        postWrite(*fm, 128, 64, 0); // the sanctioned buffered form
        tags.access(0);             // a cache, not a DramDevice
    }

    struct Cache
    {
        void access(Addr);
    } tags;
};

// Mentioning nm->access(...) in a comment must not trip the rule.

} // namespace h2::mem
