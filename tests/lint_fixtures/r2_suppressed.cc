// h2lint fixture: banned calls silenced by line suppressions — one
// trailing, one on the preceding line.
#include <cstdlib>
#include <string>

namespace h2 {

unsigned long
parseIt(const std::string &s)
{
    return std::stoul(s); // h2lint: allow(R2)
}

int
noise()
{
    // This fixture pins the preceding-line form. h2lint: allow(R2)
    return rand();
}

} // namespace h2
