// Mini-repo fixture: a registered design with golden coverage, a
// README table row, and fully documented stats keys. lintTree over
// this root must report nothing.
#include "sim/design_registry.h"

namespace h2::sim {

class DemoDesign
{
    void
    collectStats(StatSet &out, const std::string &prefix) const
    {
        out.add("demo.hits", 1.0);
        out.add("demo.misses", 2.0);
        out.add(prefix + ".reads", 3.0);
    }
};

} // namespace h2::sim

H2_REGISTER_DESIGN(demo, makeDemoInfo())
