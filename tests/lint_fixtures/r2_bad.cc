// h2lint fixture: R2 must flag every banned call below.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

namespace h2 {

unsigned long
parseIt(const std::string &s)
{
    return std::stoul(s);                       // line 13: R2 (sto*)
}

int
noise()
{
    std::srand(std::time(nullptr));             // line 19: R2 x2
    return rand();                              // line 20: R2
}

char *
firstField(char *s)
{
    return std::strtok(s, ",");                 // line 26: R2
}

void
report(double v)
{
    std::printf("value=%f\n", v);               // line 32: R2 (printf)
}

} // namespace h2
