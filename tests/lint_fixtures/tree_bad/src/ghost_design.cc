// Mini-repo fixture: every cross-file violation at once — registered
// design without golden snapshots or a README row, an undocumented
// stats key, and an uncheckable (non-literal) key.
#include "sim/design_registry.h"

namespace h2::sim {

class GhostDesign
{
    void
    collectStats(StatSet &out, const std::string &dynamicName) const
    {
        out.add("ghost.undocumented", 1.0);  // line 13: R4
        out.add(dynamicName, 2.0);           // line 14: R4 (unverifiable)
    }
};

} // namespace h2::sim

H2_REGISTER_DESIGN(ghost, makeGhostInfo()) // line 20: R3 x2
