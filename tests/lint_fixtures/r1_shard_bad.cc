// h2lint fixture: R1 must flag every naming of the device's channel
// shard types below when linted under a src/ (non-mem, non-dram)
// logical path. Mentioning ChannelState in this comment must NOT
// count — the scan runs on scrubbed code.
#include "dram/dram_device.h"

namespace h2::baselines {

struct ShardPeeker
{
    dram::DramDevice *dev;

    const dram::ChannelState &shard(u32 ch);     // line 13: R1
    void poke(dram::BankState &bank);            // line 14: R1

    u64
    openRows()
    {
        u64 n = 0;
        for (const ChannelState &ch : chans)     // line 20: R1
            n += ch.banks.size();
        return n;
    }

    std::vector<dram::ChannelState> chans;       // line 25: R1
};

} // namespace h2::baselines
