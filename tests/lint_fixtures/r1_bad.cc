// h2lint fixture: R1 must flag every direct device access below when
// this file is linted under a src/ (non-mem/) logical path.
#include "dram/dram_device.h"

namespace h2::mem {

struct FakeDesign
{
    dram::DramDevice *dev;

    void
    touch()
    {
        nm->access(0, AccessType::Read, 0);          // line 14: R1
        fm->post(64, 64, 0);                         // line 15: R1
        dev->access(128, AccessType::Write, 0);      // line 16: R1
        fmDevice().access(0, AccessType::Read, 0);   // line 17: R1
    }

    dram::DramDevice &fmDevice();
    dram::DramDevice *nm;
    dram::DramDevice *fm;
};

} // namespace h2::mem
