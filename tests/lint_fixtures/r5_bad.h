// h2lint fixture: a header with all three hygiene violations — no
// #pragma once, namespace-scope using-directive, <iostream> include.
#include <iostream>

using namespace std;

namespace h2 {

inline void
shout()
{
    cout << "loud\n";
}

} // namespace h2
