/**
 * @file
 * Unit tests for the queued memory controller (mem/mem_controller.h):
 * FR-FCFS row-hit-first dispatch, write-drain hysteresis, the idle
 * drain starvation bound, queue=off passthrough bit-identity against a
 * bare device, and zero-traffic stat hygiene.
 *
 * Address map cheat sheet for DDR4-3200 at 256 MiB (2 channels,
 * interleave 256 B, 2 KiB rows, 8 banks): addr 0 and addr 512 land on
 * channel 0 / bank 0 / row 0; addr 32768 lands on channel 0 / bank 0 /
 * row 1; addr 256 lands on channel 1.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.h"
#include "mem/mem_controller.h"

namespace h2::mem {
namespace {

dram::DramParams
ddr()
{
    return dram::DramParams::ddr4_3200(256 * MiB);
}

QueueParams
queueOn()
{
    return QueueParams{};
}

QueueParams
queueOff()
{
    QueueParams q;
    q.enabled = false;
    return q;
}

// ---------------------------------------------------------------------
// queue=off passthrough
// ---------------------------------------------------------------------

TEST(MemControllerOff, AccessAndPostForwardVerbatim)
{
    // With queues disabled the controller must be a transparent shim:
    // same completion ticks and same device counters as driving the
    // device directly, for an arbitrary interleaved sequence.
    dram::DramDevice devA(ddr());
    dram::DramDevice devB(ddr());
    MemController ctrl(devA, queueOff());

    u64 state = 12345;
    Tick now = 0;
    for (int i = 0; i < 500; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        Addr addr = (state >> 16) % (255 * MiB);
        u32 bytes = 64u << ((state >> 8) % 3);
        now += state % 5000;
        if (i % 3 == 2) {
            ASSERT_EQ(ctrl.post(addr, bytes, now),
                      devB.access(addr, bytes, AccessType::Write, now))
                << "op " << i;
        } else {
            AccessType t =
                i % 3 ? AccessType::Write : AccessType::Read;
            ASSERT_EQ(ctrl.access(addr, bytes, t, now),
                      devB.access(addr, bytes, t, now))
                << "op " << i;
        }
    }
    EXPECT_EQ(devA.stats().reads, devB.stats().reads);
    EXPECT_EQ(devA.stats().writes, devB.stats().writes);
    EXPECT_EQ(devA.stats().bytesRead, devB.stats().bytesRead);
    EXPECT_EQ(devA.stats().bytesWritten, devB.stats().bytesWritten);
    EXPECT_EQ(devA.stats().rowHits, devB.stats().rowHits);
    EXPECT_EQ(devA.stats().rowMisses, devB.stats().rowMisses);
    EXPECT_EQ(devA.stats().activations, devB.stats().activations);
    // Nothing ever queues in passthrough mode.
    EXPECT_EQ(ctrl.queuedWrites(), 0u);
    EXPECT_EQ(ctrl.drainEpisodes(), 0u);
    EXPECT_DOUBLE_EQ(ctrl.avgReadQueueDelayPs(), 0.0);
    EXPECT_DOUBLE_EQ(ctrl.avgWriteQueueDelayPs(), 0.0);
}

TEST(MemControllerOff, PostDispatchesImmediately)
{
    dram::DramDevice dev(ddr());
    MemController ctrl(dev, queueOff());
    Tick done = ctrl.post(0, 64, 1000);
    EXPECT_GT(done, 1000u); // device latency, not the enqueue echo
    EXPECT_EQ(dev.stats().writes, 1u);
    EXPECT_EQ(ctrl.queuedWrites(), 0u);
}

// ---------------------------------------------------------------------
// queue=on: deferral, FR-FCFS, hysteresis, starvation bound
// ---------------------------------------------------------------------

TEST(MemController, PostedWritesDeferUntilDrain)
{
    dram::DramDevice dev(ddr());
    MemController ctrl(dev, queueOn());

    EXPECT_EQ(ctrl.post(0, 64, 1000), 1000u);   // echo of readyAt
    EXPECT_EQ(ctrl.post(512, 64, 2000), 2000u);
    EXPECT_EQ(ctrl.post(1024, 64, 3000), 3000u);
    EXPECT_EQ(dev.stats().writes, 0u) << "writes must not touch the "
                                         "device before a drain";
    EXPECT_EQ(ctrl.queuedWrites(), 3u);

    Tick last = ctrl.drainAll(10000);
    EXPECT_GE(last, 10000u);
    EXPECT_EQ(dev.stats().writes, 3u);
    EXPECT_EQ(dev.stats().bytesWritten, 192u);
    EXPECT_EQ(ctrl.queuedWrites(), 0u);
}

TEST(MemController, FrFcfsDispatchesRowHitBeforeOlderRowMiss)
{
    dram::DramDevice dev(ddr());
    MemController ctrl(dev, queueOn());

    // Open row 1 of channel 0 / bank 0.
    ctrl.access(32768, 64, AccessType::Read, 0);
    ASSERT_TRUE(dev.wouldRowHit(32768 + 64));
    ASSERT_FALSE(dev.wouldRowHit(0));

    // Older row-miss (row 0) queued ahead of a younger row-hit (row 1).
    ctrl.post(0, 64, 100000);
    ctrl.post(32768 + 64, 64, 100001);
    u64 hitsBefore = dev.stats().rowHits;

    ctrl.drainAll(200000);
    // The younger write bypassed the older one and landed in the still
    // open row; strict FCFS would have closed row 1 first and scored
    // two row-misses.
    EXPECT_EQ(ctrl.rowHitBypasses(), 1u);
    EXPECT_EQ(dev.stats().rowHits, hitsBefore + 1);
}

TEST(MemController, WriteDrainHysteresis)
{
    dram::DramDevice dev(ddr());
    QueueParams q;
    q.writeHighWatermark = 4;
    q.writeLowWatermark = 1;
    MemController ctrl(dev, q);

    // Distinct chunks on channel 0, all below the high watermark.
    ctrl.post(0, 64, 1000);
    ctrl.post(512, 64, 2000);
    ctrl.post(1024, 64, 3000);
    EXPECT_EQ(ctrl.drainEpisodes(), 0u);
    EXPECT_EQ(dev.stats().writes, 0u);

    // The fourth enqueue hits the watermark: one episode drains the
    // queue down to the low watermark, no further.
    ctrl.post(1536, 64, 4000);
    EXPECT_EQ(ctrl.drainEpisodes(), 1u);
    EXPECT_EQ(ctrl.queuedWrites(), 1u);
    EXPECT_EQ(dev.stats().writes, 3u);

    // Refilling repeats the cycle (hysteresis, not one-shot).
    ctrl.post(2048, 64, 5000);
    ctrl.post(2560, 64, 6000);
    EXPECT_EQ(ctrl.drainEpisodes(), 1u);
    ctrl.post(3072, 64, 7000);
    EXPECT_EQ(ctrl.drainEpisodes(), 2u);
    EXPECT_EQ(ctrl.queuedWrites(), 1u);
}

TEST(MemController, IdleDrainIssuesIntoGapWithoutDelayingTheRead)
{
    // Starvation bound: a lone queued write must be flushed by the
    // next demand access that finds the channel idle, and because it
    // is issued retroactively at its ready tick it reproduces the
    // immediate-dispatch timing exactly — including the read behind it.
    dram::DramDevice devA(ddr());
    dram::DramDevice devB(ddr());
    MemController ctrl(devA, queueOn());

    ctrl.post(0, 64, 1000);
    Tick readDoneA = ctrl.access(32768, 64, AccessType::Read, 10000000);

    devB.access(0, 64, AccessType::Write, 1000);
    Tick readDoneB = devB.access(32768, 64, AccessType::Read, 10000000);

    EXPECT_EQ(readDoneA, readDoneB);
    EXPECT_EQ(devA.stats().writes, 1u);
    EXPECT_EQ(ctrl.queuedWrites(), 0u);
    // Issued into the idle gap at its ready tick: zero residency.
    EXPECT_DOUBLE_EQ(ctrl.avgWriteQueueDelayPs(), 0.0);
}

TEST(MemController, IdleDrainSkipsWritesThatWouldDelayTheRead)
{
    // A write whose service cannot complete by the read's arrival tick
    // stays queued (read priority): the read must observe the same
    // timing as if the write did not exist.
    dram::DramDevice devA(ddr());
    dram::DramDevice devB(ddr());
    MemController ctrl(devA, queueOn());

    // Ready "just before" the read: no idle gap to hide in.
    ctrl.post(0, 64, 9999999);
    Tick readDoneA = ctrl.access(32768, 64, AccessType::Read, 10000000);
    Tick readDoneB = devB.access(32768, 64, AccessType::Read, 10000000);

    EXPECT_EQ(readDoneA, readDoneB);
    EXPECT_EQ(ctrl.queuedWrites(), 1u) << "the write must wait for a "
                                          "drain, not push the read";
    EXPECT_EQ(devA.stats().writes, 0u);
}

TEST(MemController, ReadQueueDelayReflectsContention)
{
    dram::DramDevice dev(ddr());
    MemController ctrl(dev, queueOn());

    // Widely spaced reads: no serialized wait, delay stays zero.
    ctrl.access(0, 64, AccessType::Read, 0);
    ctrl.access(512, 64, AccessType::Read, 10000000);
    EXPECT_DOUBLE_EQ(ctrl.avgReadQueueDelayPs(), 0.0);

    // A same-instant burst on one bank serializes behind bus/bank
    // occupancy: mean delay must become positive.
    for (int i = 0; i < 8; ++i)
        ctrl.access(Addr(i) * 512, 64, AccessType::Read, 20000000);
    EXPECT_GT(ctrl.avgReadQueueDelayPs(), 0.0);
    EXPECT_EQ(ctrl.demandAccesses(), 10u);
}

TEST(MemController, ResetStatsPreservesQueueContents)
{
    dram::DramDevice dev(ddr());
    MemController ctrl(dev, queueOn());

    ctrl.post(0, 64, 1000);
    ctrl.post(512, 64, 2000);
    ctrl.resetStats();

    // Stats are cleared, state is not: the queued writes still exist
    // and still drain.
    EXPECT_EQ(ctrl.queuedWrites(), 2u);
    EXPECT_EQ(ctrl.drainEpisodes(), 0u);
    EXPECT_DOUBLE_EQ(ctrl.avgWriteQueueDelayPs(), 0.0);
    ctrl.drainAll(100000);
    EXPECT_EQ(dev.stats().writes, 2u);
}

TEST(MemController, MultiChunkPostSplitsAcrossChannels)
{
    dram::DramDevice dev(ddr());
    MemController ctrl(dev, queueOn());

    // 512 B from 0 covers chunks on channel 0 and channel 1.
    ctrl.post(0, 512, 1000);
    EXPECT_EQ(ctrl.queuedWrites(), 2u);
    ctrl.drainAll(10000);
    EXPECT_EQ(dev.stats().bytesWritten, 512u);
}

// ---------------------------------------------------------------------
// stat hygiene
// ---------------------------------------------------------------------

TEST(MemController, ZeroTrafficStatsAreZeroAndFinite)
{
    // Satellite audit: every queue stat must render as exactly 0 (not
    // NaN, not garbage) before any traffic exists.
    dram::DramDevice dev(ddr());
    MemController ctrl(dev, queueOn());

    StatSet s;
    ctrl.collectStats(s, "q");
    for (const char *key :
         {"q.avgReadQueueDelayPs", "q.avgWriteQueueDelayPs",
          "q.drainEpisodes", "q.rowHitBypasses", "q.queuedWrites",
          "q.readDepthMean", "q.readDepthMax", "q.writeDepthMean",
          "q.writeDepthMax"}) {
        ASSERT_TRUE(s.has(key)) << key;
        EXPECT_TRUE(std::isfinite(s.get(key))) << key;
        EXPECT_DOUBLE_EQ(s.get(key), 0.0) << key;
    }
}

TEST(MemControllerDeath, WatermarksMustBeOrdered)
{
    dram::DramDevice dev(ddr());
    QueueParams q;
    q.writeHighWatermark = 4;
    q.writeLowWatermark = 4;
    EXPECT_DEATH(MemController(dev, q), "low < high");
}

} // namespace
} // namespace h2::mem
