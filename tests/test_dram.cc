/**
 * @file
 * Tests for the DRAM timing/energy model against Table 1 expectations.
 */

#include <gtest/gtest.h>

#include "common/units.h"
#include "dram/dram_device.h"

namespace h2::dram {
namespace {

TEST(DramParams, Hbm2MatchesTable1)
{
    auto p = DramParams::hbm2(GiB);
    EXPECT_EQ(p.channels, 8u);
    EXPECT_EQ(p.busBytes, 16u);   // 128-bit
    EXPECT_EQ(p.clockPs, 500u);   // 2 GHz
    EXPECT_EQ(p.tCas, 7u);
    EXPECT_EQ(p.tRcd, 7u);
    EXPECT_EQ(p.tRp, 7u);
    EXPECT_DOUBLE_EQ(p.rdPjPerBit, 6.4);
    EXPECT_DOUBLE_EQ(p.wrPjPerBit, 6.4);
    EXPECT_DOUBLE_EQ(p.actPreNj, 15.0);
    // 8 ch x 16 B x 2 beats x 2 GHz = 512 GB/s.
    EXPECT_NEAR(p.peakBandwidthBytesPerSec(), 512e9, 1e9);
}

TEST(DramParams, Ddr4MatchesTable1)
{
    auto p = DramParams::ddr4_3200(16 * GiB);
    EXPECT_EQ(p.channels, 2u);
    EXPECT_EQ(p.busBytes, 8u);    // 64-bit
    EXPECT_EQ(p.tCas, 22u);
    // 2 ch x 8 B x 3200 MT/s = 51.2 GB/s.
    EXPECT_NEAR(p.peakBandwidthBytesPerSec(), 51.2e9, 1e9);
}

class DramPresets : public ::testing::TestWithParam<const char *>
{
  protected:
    DramParams
    params() const
    {
        return std::string(GetParam()) == "hbm2"
            ? DramParams::hbm2(256 * MiB)
            : DramParams::ddr4_3200(256 * MiB);
    }
};

TEST_P(DramPresets, RowHitFasterThanRowMiss)
{
    DramDevice dev(params());
    Tick first = dev.access(0, 64, AccessType::Read, 0);
    // Same row, later in time: row hit.
    Tick hitStart = first + 100000;
    Tick hit = dev.access(64, 64, AccessType::Read, hitStart) - hitStart;
    // Same bank, different row: row miss (PRE+ACT+CAS).
    u64 rowSpan = u64(params().rowBytes) * params().channels;
    Tick missStart = first + 200000;
    Tick miss =
        dev.access(rowSpan * params().banksPerChannel, 64,
                   AccessType::Read, missStart) - missStart;
    EXPECT_LT(hit, miss);
    EXPECT_GE(miss, hit + Tick(params().tRp) * params().clockPs);
}

TEST_P(DramPresets, BankConflictSerializes)
{
    DramDevice dev(params());
    // Two accesses to the same bank at the same instant must serialize.
    Tick a = dev.access(0, 64, AccessType::Read, 0);
    Tick b = dev.access(0, 64, AccessType::Read, 0);
    EXPECT_GT(b, a);
}

TEST_P(DramPresets, DifferentChannelsProceedInParallel)
{
    auto p = params();
    DramDevice dev(p);
    Tick a = dev.access(0, 64, AccessType::Read, 0);
    // Next interleave chunk lands on the next channel.
    Tick b = dev.access(p.interleaveBytes, 64, AccessType::Read, 0);
    EXPECT_EQ(a, b);
}

TEST_P(DramPresets, LargeAccessSplitsAcrossChannels)
{
    auto p = params();
    DramDevice dev(p);
    Tick wide = dev.access(0, p.interleaveBytes * 4, AccessType::Read, 0);
    DramDevice dev2(p);
    Tick narrow = dev2.access(0, 64, AccessType::Read, 0);
    // Four channels in parallel: the wide access must not take 4x the
    // narrow one.
    EXPECT_LT(wide, narrow * 3);
    EXPECT_EQ(dev.stats().bytesRead, p.interleaveBytes * 4u);
}

TEST_P(DramPresets, EnergyAccounting)
{
    auto p = params();
    DramDevice dev(p);
    dev.access(0, 64, AccessType::Read, 0);
    double expected = 64 * 8 * p.rdPjPerBit + p.actPreNj * 1000.0;
    EXPECT_NEAR(dev.dynamicEnergyPj(), expected, 1e-6);
    // A row hit adds only transfer energy.
    dev.access(0, 64, AccessType::Write, 1000000);
    EXPECT_NEAR(dev.dynamicEnergyPj(),
                expected + 64 * 8 * p.wrPjPerBit, 1e-6);
    // The per-operation buckets decompose the total exactly.
    EXPECT_NEAR(dev.stats().readEnergyPj, 64 * 8 * p.rdPjPerBit, 1e-9);
    EXPECT_NEAR(dev.stats().writeEnergyPj, 64 * 8 * p.wrPjPerBit, 1e-9);
    EXPECT_NEAR(dev.stats().actEnergyPj, p.actPreNj * 1000.0, 1e-9);
}

TEST_P(DramPresets, StatsCounters)
{
    DramDevice dev(params());
    dev.access(0, 64, AccessType::Read, 0);
    dev.access(0, 64, AccessType::Write, 1000000);
    EXPECT_EQ(dev.stats().reads, 1u);
    EXPECT_EQ(dev.stats().writes, 1u);
    EXPECT_EQ(dev.stats().bytesRead, 64u);
    EXPECT_EQ(dev.stats().bytesWritten, 64u);
    EXPECT_EQ(dev.stats().rowEmpty, 1u);
    EXPECT_EQ(dev.stats().rowHits, 1u);
    dev.resetStats();
    EXPECT_EQ(dev.stats().totalBytes(), 0u);
}

TEST_P(DramPresets, QueueingDelaysLaterTraffic)
{
    auto p = params();
    DramDevice dev(p);
    // Saturate one channel with many back-to-back accesses.
    Tick lastDone = 0;
    for (int i = 0; i < 32; ++i)
        lastDone = dev.access(0, 64, AccessType::Read, 0);
    // The 32nd access cannot complete before 31 bursts of queueing.
    Tick burst = ceilDiv(64, u64(p.busBytes) * 2) * p.clockPs;
    EXPECT_GE(lastDone, 31 * burst);
}

TEST_P(DramPresets, ProbeLatencyDoesNotMutate)
{
    DramDevice dev(params());
    dev.access(0, 64, AccessType::Read, 0);
    auto statsBefore = dev.stats().totalBytes();
    Tick probe1 = dev.probeLatency(0, 64, 1000000);
    Tick probe2 = dev.probeLatency(0, 64, 1000000);
    EXPECT_EQ(probe1, probe2);
    EXPECT_EQ(dev.stats().totalBytes(), statsBefore);
    EXPECT_GT(probe1, 0u);
}

TEST_P(DramPresets, UtilizationBounded)
{
    DramDevice dev(params());
    Tick done = 0;
    for (int i = 0; i < 100; ++i)
        done = dev.access((i * 64) % (1 * MiB), 64, AccessType::Read, 0);
    double util = dev.busUtilization(done);
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0);
}

TEST_P(DramPresets, CollectStats)
{
    DramDevice dev(params());
    dev.access(0, 64, AccessType::Read, 0);
    StatSet out;
    dev.collectStats(out, "dev");
    EXPECT_DOUBLE_EQ(out.get("dev.reads"), 1.0);
    EXPECT_DOUBLE_EQ(out.get("dev.bytesRead"), 64.0);
    EXPECT_GT(out.get("dev.dynamicEnergyPj"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Presets, DramPresets,
                         ::testing::Values("hbm2", "ddr4"));

TEST(DramDeviceDeath, OutOfCapacity)
{
    DramDevice dev(DramParams::hbm2(1 * MiB));
    EXPECT_DEATH(dev.access(1 * MiB, 64, AccessType::Read, 0),
                 "beyond capacity");
}

TEST(DramDeviceDeath, ZeroBytes)
{
    DramDevice dev(DramParams::hbm2(1 * MiB));
    EXPECT_DEATH(dev.access(0, 0, AccessType::Read, 0), "zero-byte");
}

TEST(DramDevice, WriteTimingComparableToRead)
{
    DramDevice dev(DramParams::ddr4_3200(256 * MiB));
    Tick r = dev.access(0, 64, AccessType::Read, 0);
    DramDevice dev2(DramParams::ddr4_3200(256 * MiB));
    Tick w = dev2.access(0, 64, AccessType::Write, 0);
    EXPECT_EQ(r, w);
}

TEST(DramDevice, HbmFasterThanDdr4ForSameAccess)
{
    DramDevice hbm(DramParams::hbm2(256 * MiB));
    DramDevice ddr(DramParams::ddr4_3200(256 * MiB));
    Tick thbm = hbm.access(0, 64, AccessType::Read, 0);
    Tick tddr = ddr.access(0, 64, AccessType::Read, 0);
    EXPECT_LT(thbm, tddr);
}

TEST(DramDevice, BusUtilizationWindowFollowsResetStats)
{
    // Regression: resetStats used to clear the busy accumulator but
    // leave the utilization denominator spanning from tick 0, so any
    // post-warm-up utilization was silently diluted by the warm-up
    // window. The window start must move to the reset point.
    DramDevice dev(DramParams::ddr4_3200(256 * MiB));
    const Tick window = 10000000;

    Tick done = 0;
    for (int i = 0; i < 64; ++i)
        done = dev.access(Addr(i) * 64, 64, AccessType::Read, 0);
    ASSERT_LT(done, window);
    double before = dev.busUtilization(window);
    ASSERT_GT(before, 0.0);

    dev.resetStats();
    EXPECT_EQ(dev.statsSinceTick(), done);
    // Nothing has run inside the new window: exactly zero, not a
    // cleared numerator over the old denominator.
    EXPECT_DOUBLE_EQ(dev.busUtilization(window), 0.0);

    // The same burst replayed inside the new window must report the
    // same utilization as the original run did over its own window —
    // the pre-fix code halved it (busy / [0, 2*window]).
    for (int i = 0; i < 64; ++i)
        dev.access(Addr(i) * 64, 64, AccessType::Read, window);
    EXPECT_NEAR(dev.busUtilization(done + window), before, 1e-12);
}

TEST(DramDevice, BusUtilizationDegenerateWindowIsZero)
{
    DramDevice dev(DramParams::ddr4_3200(256 * MiB));
    EXPECT_DOUBLE_EQ(dev.busUtilization(0), 0.0);
    Tick done = dev.access(0, 64, AccessType::Read, 0);
    dev.resetStats();
    // now == window start (and anything earlier) has no width to be
    // busy in.
    EXPECT_DOUBLE_EQ(dev.busUtilization(done), 0.0);
    EXPECT_DOUBLE_EQ(dev.busUtilization(0), 0.0);
}

TEST(DramDevice, ProbeEqualsAccessForUnalignedMultiChunk)
{
    // Satellite regression: probeLatency must replay access() exactly
    // for *any* address and size — including accesses that start
    // mid-chunk and span several channels — not just aligned
    // single-chunk requests (test_hotpath_arith pins those). The
    // pre-fix probe approximated multi-chunk requests and drifted.
    for (const char *preset : {"hbm2", "ddr4", "pcm"}) {
        std::string name(preset);
        auto p = name == "hbm2" ? DramParams::hbm2(256 * MiB)
            : name == "ddr4"    ? DramParams::ddr4_3200(256 * MiB)
                                : DramParams::pcm(256 * MiB);
        DramDevice dev(p);
        u64 state = 99;
        Tick now = 0;
        for (int i = 0; i < 1500; ++i) {
            state = state * 6364136223846793005ull
                + 1442695040888963407ull;
            now += (state >> 33) % 4000;
            // Unaligned start, 1..~4 interleave chunks.
            Addr addr = (state >> 16) % (255 * MiB);
            u32 bytes = 1 + u32((state >> 7) % (p.interleaveBytes * 4));
            AccessType t = (state & 1) ? AccessType::Read
                                       : AccessType::Write;
            Tick predicted = dev.probeLatency(addr, bytes, now, t);
            Tick done = dev.access(addr, bytes, t, now);
            ASSERT_EQ(now + predicted, done)
                << preset << " access " << i << " addr " << addr
                << " bytes " << bytes;
        }
    }
}

// ----- PCM far-memory backend ----------------------------------------

TEST(FarMemTechNames, RoundTrip)
{
    EXPECT_STREQ(to_string(FarMemTech::Dram), "dram");
    EXPECT_STREQ(to_string(FarMemTech::Pcm), "pcm");
    EXPECT_EQ(parseFarMemTech("dram"), FarMemTech::Dram);
    EXPECT_EQ(parseFarMemTech("pcm"), FarMemTech::Pcm);
    EXPECT_FALSE(parseFarMemTech("nvm").has_value());
    EXPECT_FALSE(parseFarMemTech("").has_value());
}

TEST(PcmParams, AsymmetricPreset)
{
    auto p = DramParams::pcm(16 * GiB);
    EXPECT_EQ(p.name, "PCM");
    // Slow array reads, slower writes still, asymmetric energy.
    EXPECT_GT(p.tRcd, DramParams::ddr4_3200(16 * GiB).tRcd);
    EXPECT_GT(p.tWr, p.tCas);
    EXPECT_GT(p.wrPjPerBit, p.rdPjPerBit);
    EXPECT_TRUE(p.trackWear);
    // The DRAM presets stay symmetric with no programming time.
    EXPECT_EQ(DramParams::ddr4_3200(16 * GiB).tWr, 0u);
    EXPECT_EQ(DramParams::hbm2(GiB).tWr, 0u);
    // farMemory dispatches on the tech knob.
    EXPECT_EQ(DramParams::farMemory(FarMemTech::Dram, GiB).name,
              "DDR4-3200");
    EXPECT_EQ(DramParams::farMemory(FarMemTech::Pcm, GiB).name, "PCM");
}

TEST(PcmDevice, WriteOccupiesBankPastItsBurst)
{
    // A write completes with its data burst, but cell programming
    // (tWr) keeps the bank busy afterwards: a read issued right behind
    // a write to the same bank waits out the programming time, while
    // the same read behind a read does not.
    auto p = DramParams::pcm(256 * MiB);
    DramDevice afterWrite(p);
    Tick w = afterWrite.access(0, 64, AccessType::Write, 0);
    Tick readBehindWrite =
        afterWrite.access(0, 64, AccessType::Read, 0);
    DramDevice afterRead(p);
    Tick r = afterRead.access(0, 64, AccessType::Read, 0);
    Tick readBehindRead = afterRead.access(0, 64, AccessType::Read, 0);
    EXPECT_EQ(w, r); // the write itself is not slower...
    EXPECT_EQ(readBehindWrite - readBehindRead,
              Tick(p.tWr) * p.clockPs); // ...its successor is
}

TEST(PcmDevice, AsymmetricEnergyClosedForm)
{
    auto p = DramParams::pcm(256 * MiB);
    DramDevice dev(p);
    dev.access(0, 64, AccessType::Read, 0);          // rowEmpty: ACT
    dev.access(0, 128, AccessType::Write, 10000000); // row hit
    double rd = 64 * 8 * p.rdPjPerBit;
    double wr = 128 * 8 * p.wrPjPerBit;
    double act = p.actPreNj * 1000.0;
    EXPECT_NEAR(dev.stats().readEnergyPj, rd, 1e-9);
    EXPECT_NEAR(dev.stats().writeEnergyPj, wr, 1e-9);
    EXPECT_NEAR(dev.stats().actEnergyPj, act, 1e-9);
    EXPECT_NEAR(dev.dynamicEnergyPj(), rd + wr + act, 1e-9);
    // resetStats starts a fresh window for every energy bucket.
    dev.resetStats();
    EXPECT_DOUBLE_EQ(dev.dynamicEnergyPj(), 0.0);
    dev.access(0, 64, AccessType::Write, 20000000);
    EXPECT_DOUBLE_EQ(dev.stats().readEnergyPj, 0.0);
    EXPECT_NEAR(dev.dynamicEnergyPj(), 64 * 8 * p.wrPjPerBit, 1e-9);
}

TEST(PcmDevice, WearCountersTrackPerBankWrites)
{
    auto p = DramParams::pcm(256 * MiB);
    DramDevice dev(p);
    // Two writes to bank 0 of channel 0, one to the same row later.
    dev.access(0, 64, AccessType::Write, 0);
    dev.access(0, 64, AccessType::Write, 10000000);
    // One read: reads never wear PCM cells.
    dev.access(0, 64, AccessType::Read, 20000000);
    EXPECT_EQ(dev.wearTotalBytes(), 128u);
    EXPECT_EQ(dev.bankWearBytes(0, 0), 128u);
    // All wear on one bank: the imbalance equals the max.
    EXPECT_EQ(dev.maxBankWearDelta(), 128u);

    StatSet out;
    dev.collectStats(out, "fm");
    EXPECT_DOUBLE_EQ(out.get("fm.wearTotalBytes"), 128.0);
    EXPECT_DOUBLE_EQ(out.get("fm.maxBankWearBytes"), 128.0);
    EXPECT_DOUBLE_EQ(out.get("fm.maxBankWearDelta"), 128.0);
    EXPECT_DOUBLE_EQ(out.get("fm.rowEmpty"), 1.0);

    // Wear resets with the stats window (measurement counters, not
    // lifetime odometers — the System resets after warm-up).
    dev.resetStats();
    EXPECT_EQ(dev.wearTotalBytes(), 0u);
    EXPECT_EQ(dev.maxBankWearDelta(), 0u);
}

TEST(DramDevice, WearKeysAbsentWithoutTracking)
{
    // DRAM devices must not grow wear keys (golden compatibility, and
    // the stats would be meaningless for an unlimited-endurance
    // device).
    DramDevice dev(DramParams::ddr4_3200(256 * MiB));
    dev.access(0, 64, AccessType::Write, 0);
    StatSet out;
    dev.collectStats(out, "fm");
    EXPECT_FALSE(out.has("fm.wearTotalBytes"));
    EXPECT_FALSE(out.has("fm.maxBankWearBytes"));
    EXPECT_FALSE(out.has("fm.maxBankWearDelta"));
    EXPECT_TRUE(out.has("fm.rowEmpty"));
    EXPECT_EQ(dev.wearTotalBytes(), 0u);
    EXPECT_EQ(dev.bankWearBytes(0, 0), 0u);
}

TEST(DramDevice, CollectStatsEmitsRowEmpty)
{
    // Satellite regression: rowEmpty was counted by accessChunk but
    // silently dropped by collectStats, so the first-touch activation
    // count never reached Metrics.detail.
    DramDevice dev(DramParams::hbm2(256 * MiB));
    dev.access(0, 64, AccessType::Read, 0); // closed bank: rowEmpty
    dev.access(0, 64, AccessType::Read, 10000000); // row hit
    u64 rowSpan = u64(dev.params().rowBytes) * dev.params().channels
        * dev.params().banksPerChannel;
    dev.access(rowSpan, 64, AccessType::Read, 20000000); // row miss
    StatSet out;
    dev.collectStats(out, "nm");
    EXPECT_DOUBLE_EQ(out.get("nm.rowEmpty"), 1.0);
    EXPECT_DOUBLE_EQ(out.get("nm.rowHits"), 1.0);
    EXPECT_DOUBLE_EQ(out.get("nm.rowMisses"), 1.0);
    // The energy split is emitted for every device.
    EXPECT_GT(out.get("nm.readEnergyPj"), 0.0);
    EXPECT_DOUBLE_EQ(out.get("nm.writeEnergyPj"), 0.0);
    EXPECT_GT(out.get("nm.actEnergyPj"), 0.0);
}

} // namespace
} // namespace h2::dram
