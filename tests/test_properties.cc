/**
 * @file
 * Parameterized property tests across configurations and seeds:
 * invariants that must hold for any geometry the DSE explores.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "baselines/ideal_cache.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/dcmc.h"
#include "dram/dram_device.h"

namespace h2 {
namespace {

mem::MemSystemParams
smallSys()
{
    mem::MemSystemParams p;
    p.nmBytes = 8 * MiB;
    p.fmBytes = 32 * MiB;
    return p;
}

// ---------------------------------------------------------------------
// Hybrid2 geometry sweep: (cacheKiB, sectorBytes, lineBytes, seed)
// ---------------------------------------------------------------------

using DcmcPoint = std::tuple<u64, u32, u32, u64>;

class DcmcGeometry : public ::testing::TestWithParam<DcmcPoint>
{
};

TEST_P(DcmcGeometry, InvariantsHoldUnderRandomTraffic)
{
    auto [cacheKib, sector, line, seed] = GetParam();
    core::Hybrid2Params hp;
    hp.cacheBytes = cacheKib * KiB;
    hp.sectorBytes = sector;
    hp.lineBytes = line;
    core::Dcmc d(smallSys(), hp);

    Rng rng(seed);
    Tick t = 0;
    u64 flatBytes = d.flatCapacity();
    for (int i = 0; i < 8000; ++i) {
        Addr a = rng.below(flatBytes / 64) * 64;
        d.access(a, rng.chance(0.3) ? AccessType::Write : AccessType::Read,
                 t += 4000);
    }
    d.checkInvariants();
    // Conservation (paper 3.3): the Free-FM-Stack is bounded by the
    // DRAM-cache sector count.
    EXPECT_LE(d.freeFmStack().size(), hp.cacheBytes / sector);
    // Every request was either NM- or FM-served.
    EXPECT_EQ(d.requests(), 8000u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DcmcGeometry,
    ::testing::Combine(::testing::Values(256, 512),       // cache KiB
                       ::testing::Values(2048u, 4096u),   // sector
                       ::testing::Values(64u, 256u, 512u),// line
                       ::testing::Values(1u, 2u)));       // seed

// ---------------------------------------------------------------------
// Figure 1 property: wasted fetch fraction grows with line size.
// ---------------------------------------------------------------------

TEST(WasteMonotonicity, BiggerLinesWasteMore)
{
    auto sys = smallSys();
    std::vector<u32> lines = {64, 256, 1024, 4096};
    std::vector<double> waste;
    for (u32 line : lines) {
        baselines::DramCacheParams p;
        p.lineBytes = line;
        baselines::IdealCache c(sys, p);
        Rng rng(5);
        Tick t = 0;
        for (int i = 0; i < 30000; ++i) {
            Addr a = rng.below(sys.fmBytes / 64) * 64;
            c.access(a, AccessType::Read, t += 3000);
        }
        waste.push_back(c.wastedFetchFraction());
    }
    for (size_t i = 1; i < waste.size(); ++i)
        EXPECT_GE(waste[i], waste[i - 1])
            << lines[i] << "B vs " << lines[i - 1] << "B";
}

// ---------------------------------------------------------------------
// DRAM device properties.
// ---------------------------------------------------------------------

class DramSeeds : public ::testing::TestWithParam<u64>
{
};

TEST_P(DramSeeds, CompletionNeverPrecedesIssue)
{
    dram::DramDevice dev(dram::DramParams::ddr4_3200(64 * MiB));
    Rng rng(GetParam());
    Tick now = 0;
    u64 expectBytes = 0;
    for (int i = 0; i < 2000; ++i) {
        now += rng.below(5000);
        u32 bytes = 64u << rng.below(3); // 64..256
        Addr a = rng.below((64 * MiB - 4096) / 64) * 64;
        Tick done = dev.access(a, bytes,
                               rng.chance(0.4) ? AccessType::Write
                                               : AccessType::Read,
                               now);
        ASSERT_GT(done, now);
        expectBytes += bytes;
    }
    EXPECT_EQ(dev.stats().totalBytes(), expectBytes);
    // Row-buffer decisions happen per interleave chunk, so there are at
    // least as many as there are accesses.
    EXPECT_GE(dev.stats().rowHits + dev.stats().rowMisses +
              dev.stats().rowEmpty,
              dev.stats().reads + dev.stats().writes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DramSeeds, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------
// Hybrid2 ablation orderings that must hold on cache-friendly traffic.
// ---------------------------------------------------------------------

TEST(AblationOrdering, NoRemapIsNeverSlowerThanDefault)
{
    // Identical traffic; the only difference is metadata cost, so the
    // No-Remap ablation must finish no later.
    auto runWith = [&](bool freeRemap) {
        core::Hybrid2Params hp;
        hp.cacheBytes = 512 * KiB;
        hp.freeRemap = freeRemap;
        core::Dcmc d(smallSys(), hp);
        Rng rng(9);
        Tick t = 0;
        Tick lastDone = 0;
        for (int i = 0; i < 20000; ++i) {
            Addr a = rng.below(d.flatCapacity() / 64) * 64;
            auto r = d.access(a, AccessType::Read, t += 4000);
            lastDone = std::max(lastDone, r.completeAt());
        }
        return lastDone;
    };
    EXPECT_LE(runWith(true), runWith(false));
}

TEST(AblationOrdering, MigrationsBoundedByEvictions)
{
    core::Hybrid2Params hp;
    hp.cacheBytes = 512 * KiB;
    core::Dcmc d(smallSys(), hp);
    Rng rng(11);
    Tick t = 0;
    for (int i = 0; i < 20000; ++i) {
        Addr a = rng.below(d.flatCapacity() / 64) * 64;
        d.access(a, AccessType::Read, t += 4000);
    }
    StatSet out;
    d.collectStats(out);
    double evictions = out.get("dcmc.migrations") +
        out.get("dcmc.evictionsToFm") + out.get("dcmc.reassignedNm");
    EXPECT_GT(evictions, 0.0);
    EXPECT_LE(out.get("dcmc.migrations"), evictions);
    // Denials are recorded.
    EXPECT_GE(out.get("dcmc.deniedByCounter") +
              out.get("dcmc.deniedByBudget"), 0.0);
}

} // namespace
} // namespace h2
