/**
 * @file
 * Golden determinism guarantee: the Runner must produce bit-identical
 * metrics for identical RunConfigs (same seed) and different metrics
 * for a different seed. Guards future parallelization of the runner.
 */

#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/runner.h"
#include "workloads/workload_registry.h"

namespace h2::sim {
namespace {

RunConfig
quickCfg(u64 seed = 42)
{
    RunConfig cfg;
    // NM must hold the default hybrid2 64 MiB DRAM-cache slice.
    cfg.nmBytes = 128 * MiB;
    cfg.fmBytes = 512 * MiB;
    cfg.instrPerCore = 30'000;
    cfg.numCores = 2;
    cfg.seed = seed;
    return cfg;
}

workloads::Workload
tinyWorkload()
{
    auto w = workloads::findWorkload("lbm");
    w.footprintBytes = 16 * MiB;
    w.accessStride = 64;
    return w;
}

/** Every field of Metrics, bit-for-bit (doubles compared exactly). */
void
expectBitIdentical(const Metrics &a, const Metrics &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.design, b.design);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.timePs, b.timePs);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.memAccesses, b.memAccesses);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.mpki, b.mpki);
    EXPECT_EQ(a.memRequests, b.memRequests);
    EXPECT_EQ(a.servedFromNm, b.servedFromNm);
    EXPECT_EQ(a.nmTrafficBytes, b.nmTrafficBytes);
    EXPECT_EQ(a.fmTrafficBytes, b.fmTrafficBytes);
    EXPECT_EQ(a.dynamicEnergyPj, b.dynamicEnergyPj);
    EXPECT_EQ(a.flatCapacityBytes, b.flatCapacityBytes);
    EXPECT_EQ(a.footprintBytes, b.footprintBytes);
    EXPECT_EQ(a.detail.entries(), b.detail.entries());
}

class Determinism : public ::testing::TestWithParam<const char *>
{
};

TEST_P(Determinism, SameSeedBitIdentical)
{
    const std::string design = GetParam();
    Runner first(quickCfg());
    Runner second(quickCfg());
    const Metrics &a = first.run(tinyWorkload(), design);
    const Metrics &b = second.run(tinyWorkload(), design);
    expectBitIdentical(a, b);
}

TEST_P(Determinism, DifferentSeedDiffers)
{
    const std::string design = GetParam();
    Runner first(quickCfg(42));
    Runner other(quickCfg(43));
    const Metrics &a = first.run(tinyWorkload(), design);
    const Metrics &b = other.run(tinyWorkload(), design);
    // A different trace seed must change the observed timing; if it
    // doesn't, the seed isn't reaching the trace generators.
    EXPECT_NE(a.timePs, b.timePs);
}

INSTANTIATE_TEST_SUITE_P(Designs, Determinism,
                         ::testing::Values("hybrid2", "baseline"),
                         [](const auto &paramInfo) {
                             return std::string(paramInfo.param);
                         });

} // namespace
} // namespace h2::sim
