/**
 * @file
 * Trace-file I/O tests: write/read round-trips for both formats,
 * automatic format detection, replay-source wrapping, and — the bulk —
 * rejection of malformed files with precise, non-crashing errors.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "workloads/trace_file.h"

namespace h2::workloads {
namespace {

std::string
tempPath(const std::string &name)
{
    // Pid-qualified: gtest tests run as separate concurrent processes
    // under `ctest -j`, and several share file names (valid.bin).
    return ::testing::TempDir() + "h2_trace_" +
           std::to_string(::getpid()) + "_" + name;
}

void
writeRaw(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << path;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string
readRaw(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** A small hand-built two-stream multi-program trace. */
TraceData
sampleTrace()
{
    TraceData d;
    d.meta.name = "sample";
    d.meta.streams = 2;
    d.meta.multithreaded = false;
    d.meta.footprintBytes = 64 * 4096;
    d.meta.virtualBytes = 64 * 4096; // 32 pages per stream
    d.meta.mlp = 4;
    d.streams.resize(2);
    // Deltas both directions so zigzag encoding is exercised.
    d.streams[0] = {{19, 0x1a40, AccessType::Read},
                    {0, 0x40, AccessType::Write},
                    {7, 0x1f000, AccessType::Read}};
    d.streams[1] = {{3, 0x880, AccessType::Write},
                    {100, 0x0, AccessType::Read}};
    return d;
}

void
expectEqual(const TraceData &a, const TraceData &b)
{
    EXPECT_EQ(a.meta, b.meta);
    ASSERT_EQ(a.streams.size(), b.streams.size());
    for (size_t s = 0; s < a.streams.size(); ++s)
        EXPECT_EQ(a.streams[s], b.streams[s]) << "stream " << s;
}

/** Expect readTraceFile to fail and return the error message. */
std::string
expectReject(const std::string &path)
{
    std::string error;
    auto data = readTraceFile(path, &error);
    EXPECT_FALSE(data.has_value()) << path;
    EXPECT_FALSE(error.empty());
    EXPECT_NE(error.find(path), std::string::npos)
        << "error should name the file: " << error;
    return error;
}

std::string
rejectText(const std::string &name, const std::string &content)
{
    std::string path = tempPath(name + ".txt");
    writeRaw(path, content);
    return expectReject(path);
}

// ----- round trips ---------------------------------------------------

TEST(TraceFile, TextRoundTrip)
{
    TraceData d = sampleTrace();
    std::string path = tempPath("rt.txt");
    writeTraceFile(path, d, TraceFormat::Text);
    std::string error;
    auto back = readTraceFile(path, &error);
    ASSERT_TRUE(back.has_value()) << error;
    expectEqual(d, *back);
}

TEST(TraceFile, BinaryRoundTrip)
{
    TraceData d = sampleTrace();
    std::string path = tempPath("rt.bin");
    writeTraceFile(path, d, TraceFormat::Binary);
    std::string error;
    auto back = readTraceFile(path, &error);
    ASSERT_TRUE(back.has_value()) << error;
    expectEqual(d, *back);
}

TEST(TraceFile, FormatsAgree)
{
    TraceData d = sampleTrace();
    std::string t = tempPath("agree.txt"), b = tempPath("agree.bin");
    writeTraceFile(t, d, TraceFormat::Text);
    writeTraceFile(b, d, TraceFormat::Binary);
    auto fromText = readTraceFile(t, nullptr);
    auto fromBin = readTraceFile(b, nullptr);
    ASSERT_TRUE(fromText && fromBin);
    expectEqual(*fromText, *fromBin);
    EXPECT_EQ(fromText->totalRecords(), 5u);
}

TEST(TraceFile, FormatForPath)
{
    EXPECT_EQ(traceFormatForPath("a.txt"), TraceFormat::Text);
    EXPECT_EQ(traceFormatForPath("a.text"), TraceFormat::Text);
    EXPECT_EQ(traceFormatForPath("a.trace"), TraceFormat::Binary);
    EXPECT_EQ(traceFormatForPath("a"), TraceFormat::Binary);
}

TEST(TraceFile, TextCommentsAndBlanksIgnored)
{
    std::string path = tempPath("comments.txt");
    writeRaw(path, "# leading comment\n"
                   "h2trace text 1\n"
                   "\n"
                   "streams 1   # trailing comment\n"
                   "footprint 4096\n"
                   "multithreaded 1\n"
                   "%%\n"
                   "0 5 0x40 R\n"
                   "\n"
                   "0 0 64 W    # decimal addresses work too\n");
    std::string error;
    auto d = readTraceFile(path, &error);
    ASSERT_TRUE(d.has_value()) << error;
    EXPECT_EQ(d->meta.streams, 1u);
    EXPECT_TRUE(d->meta.multithreaded);
    ASSERT_EQ(d->streams[0].size(), 2u);
    EXPECT_EQ(d->streams[0][0], (TraceRecord{5, 0x40, AccessType::Read}));
    EXPECT_EQ(d->streams[0][1], (TraceRecord{0, 64, AccessType::Write}));
}

TEST(TraceFile, CaptureMatchesGeneratorBudgetStepping)
{
    const Workload &w = findWorkload("mcf");
    TraceData d = captureTrace(w, 2, 42, 5000);
    ASSERT_EQ(d.streams.size(), 2u);
    for (const auto &s : d.streams) {
        ASSERT_FALSE(s.empty());
        // Stops at the first record crossing the budget: the total
        // covers it, the total minus the last record does not.
        u64 instrs = 0;
        for (const TraceRecord &rec : s)
            instrs += u64(rec.instGap) + 1;
        EXPECT_GE(instrs, 5000u);
        EXPECT_LT(instrs - (u64(s.back().instGap) + 1), 5000u);
    }
    EXPECT_EQ(d.meta.name, "mcf");
    EXPECT_EQ(d.meta.virtualBytes, w.totalVirtualBytes(2));
}

TEST(TraceFile, ReplaySourceWrapsAround)
{
    auto data = std::make_shared<const TraceData>(sampleTrace());
    FileTraceSource src(data, 1);
    EXPECT_EQ(src.next(), data->streams[1][0]);
    EXPECT_EQ(src.next(), data->streams[1][1]);
    // Exhausted: loops back to the first record (with a one-time warn).
    EXPECT_EQ(src.next(), data->streams[1][0]);
}

// ----- text rejections -----------------------------------------------

TEST(TraceReject, EmptyFile)
{
    std::string path = tempPath("empty.txt");
    writeRaw(path, "");
    std::string error = expectReject(path);
    EXPECT_NE(error.find("empty"), std::string::npos) << error;
}

TEST(TraceReject, TextBadHeaderLine)
{
    std::string error = rejectText("badhdr", "not a trace\n");
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
    EXPECT_NE(error.find("h2trace text 1"), std::string::npos) << error;
}

TEST(TraceReject, TextUnsupportedVersion)
{
    std::string error = rejectText("badver", "h2trace text 99\n");
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(TraceReject, TextMissingSeparator)
{
    std::string error = rejectText("nosep", "h2trace text 1\n"
                                            "streams 1\n"
                                            "footprint 4096\n");
    EXPECT_NE(error.find("%%"), std::string::npos) << error;
}

TEST(TraceReject, TextMissingRequiredDirectives)
{
    std::string error =
        rejectText("nostreams", "h2trace text 1\nfootprint 4096\n%%\n"
                                "0 0 0 R\n");
    EXPECT_NE(error.find("streams"), std::string::npos) << error;
    error = rejectText("nofootprint", "h2trace text 1\nstreams 1\n%%\n"
                                      "0 0 0 R\n");
    EXPECT_NE(error.find("footprint"), std::string::npos) << error;
}

TEST(TraceReject, TextUnknownDirective)
{
    std::string error =
        rejectText("unkdir", "h2trace text 1\nbogus 3\n%%\n");
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    EXPECT_NE(error.find("bogus"), std::string::npos) << error;
}

TEST(TraceReject, TextBadDirectiveValues)
{
    for (const char *hdr :
         {"streams 0", "streams 9999", "streams x", "multithreaded 2",
          "footprint pony", "mlp 0", "vspace -3"}) {
        std::string error = rejectText(
            "badval", std::string("h2trace text 1\n") + hdr + "\n%%\n");
        EXPECT_NE(error.find("line 2"), std::string::npos)
            << hdr << ": " << error;
    }
}

TEST(TraceReject, TextMalformedRecords)
{
    const std::string hdr = "h2trace text 1\nstreams 1\nmultithreaded 1\n"
                            "footprint 8192\n%%\n";
    struct Case
    {
        const char *record;
        const char *expect;
    } cases[] = {
        {"0 0 0x40", "bad record"},          // 3 fields
        {"0 0 0x40 R extra", "bad record"},  // 5 fields
        {"1 0 0x40 R", "bad stream id"},     // stream out of range
        {"x 0 0x40 R", "bad stream id"},
        {"0 99999999999 0x40 R", "bad instruction gap"},
        {"0 0 zzz R", "bad address"},
        {"0 0 0x R", "bad address"},
        {"0 0 0x40 X", "bad access type"},
        {"0 0 0x3i R", "bad address"},
    };
    for (const Case &c : cases) {
        std::string error =
            rejectText("badrec", hdr + c.record + "\n");
        EXPECT_NE(error.find("line 6"), std::string::npos)
            << c.record << ": " << error;
        EXPECT_NE(error.find(c.expect), std::string::npos)
            << c.record << ": " << error;
    }
}

TEST(TraceReject, TextAddressOutsideSpace)
{
    // Multi-program bound is the per-stream slice: vspace / streams.
    std::string error = rejectText(
        "oob", "h2trace text 1\nstreams 2\nfootprint 8192\n"
               "vspace 8192\n%%\n"
               "0 0 0x1000 R\n"); // 4096 >= 8192/2
    EXPECT_NE(error.find("outside"), std::string::npos) << error;
}

TEST(TraceReject, TextEmptyStream)
{
    std::string error = rejectText(
        "emptystream", "h2trace text 1\nstreams 2\nfootprint 8192\n%%\n"
                       "0 0 0x40 R\n"); // stream 1 never appears
    EXPECT_NE(error.find("stream 1 has no records"), std::string::npos)
        << error;
}

TEST(TraceReject, TextHeaderOnlyNoRecords)
{
    std::string error =
        rejectText("norecs", "h2trace text 1\nstreams 1\n"
                             "footprint 4096\n%%\n");
    EXPECT_NE(error.find("no records"), std::string::npos) << error;
}

// ----- binary rejections ---------------------------------------------

/** A valid binary file image to corrupt. */
std::string
validBinaryImage()
{
    std::string path = tempPath("valid.bin");
    writeTraceFile(path, sampleTrace(), TraceFormat::Binary);
    return readRaw(path);
}

std::string
rejectBinary(const std::string &name, const std::string &bytes)
{
    std::string path = tempPath(name + ".bin");
    writeRaw(path, bytes);
    return expectReject(path);
}

TEST(TraceReject, BinaryBadMagic)
{
    std::string img = validBinaryImage();
    img[3] ^= 0x40; // still starts 0x89, so binary detection holds
    std::string error = rejectBinary("badmagic", img);
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(TraceReject, BinaryBadVersion)
{
    std::string img = validBinaryImage();
    img[8] = 9;
    std::string error = rejectBinary("badver", img);
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(TraceReject, BinaryTruncatedEverywhere)
{
    // Chopping the file at any prefix must fail cleanly, never crash.
    std::string img = validBinaryImage();
    for (size_t len : {1ul, 8ul, 10ul, 12ul, 20ul, 36ul, 40ul, 44ul,
                       50ul, 58ul, img.size() - 1}) {
        ASSERT_LT(len, img.size());
        std::string error =
            rejectBinary("trunc", img.substr(0, len));
        EXPECT_NE(error.find("byte offset") == std::string::npos &&
                      error.find("magic") == std::string::npos,
                  true)
            << "len " << len << ": " << error;
    }
}

TEST(TraceReject, BinaryTruncatedHeaderMentionsOffset)
{
    std::string img = validBinaryImage();
    std::string error = rejectBinary("trunchdr", img.substr(0, 14));
    EXPECT_NE(error.find("truncated"), std::string::npos) << error;
    EXPECT_NE(error.find("byte offset"), std::string::npos) << error;
}

TEST(TraceReject, BinaryBadFlags)
{
    std::string img = validBinaryImage();
    img[36] = 2; // multithreaded byte must be 0|1
    std::string error = rejectBinary("badflags", img);
    EXPECT_NE(error.find("flags"), std::string::npos) << error;
    img[36] = 0;
    img[38] = 1; // reserved bytes must be zero
    error = rejectBinary("badreserved", img);
    EXPECT_NE(error.find("flags"), std::string::npos) << error;
}

TEST(TraceReject, BinaryAbsurdRecordCount)
{
    std::string img = validBinaryImage();
    // First stream record count lives right after the 40-byte fixed
    // header plus the name; make it absurd.
    size_t nameLen = sampleTrace().meta.name.size();
    size_t countOff = 40 + 4 + nameLen;
    for (int i = 0; i < 8; ++i)
        img[countOff + i] = char(0xff);
    std::string error = rejectBinary("absurd", img);
    EXPECT_NE(error.find("record counts"), std::string::npos) << error;
}

TEST(TraceReject, BinaryTrailingGarbage)
{
    std::string img = validBinaryImage() + "extra";
    std::string error = rejectBinary("trailing", img);
    EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(TraceReject, BinaryUnterminatedVarint)
{
    std::string img = validBinaryImage();
    img.back() = char(0x80); // continuation bit on the final byte
    std::string error = rejectBinary("unterminated", img);
    EXPECT_NE(error.find("truncated") == std::string::npos &&
                  error.find("varint") == std::string::npos,
              true)
        << error;
}

TEST(TraceReject, MissingFile)
{
    std::string error = expectReject(tempPath("does_not_exist.bin"));
    EXPECT_NE(error.find("cannot read"), std::string::npos) << error;
}

} // namespace
} // namespace h2::workloads
