/**
 * @file
 * Tests for the three-level SRAM hierarchy.
 */

#include <gtest/gtest.h>

#include "cache/cache_hierarchy.h"
#include "common/units.h"

namespace h2::cache {
namespace {

HierarchyParams
tinyHierarchy(u32 cores = 2)
{
    HierarchyParams p;
    p.numCores = cores;
    p.l1 = {"L1", 1 * KiB, 2, 64, ReplPolicy::Lru};
    p.l2 = {"L2", 4 * KiB, 4, 64, ReplPolicy::Lru};
    p.llc = {"LLC", 16 * KiB, 4, 64, ReplPolicy::Lru};
    return p;
}

TEST(Hierarchy, ColdMissHitsMemory)
{
    CacheHierarchy h(tinyHierarchy());
    auto r = h.access(0, 0x1000, AccessType::Read);
    EXPECT_TRUE(r.llcMiss);
    EXPECT_EQ(r.hitLevel, 0u);
    EXPECT_EQ(h.llcMisses(), 1u);
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    CacheHierarchy h(tinyHierarchy());
    h.access(0, 0x1000, AccessType::Read);
    auto r = h.access(0, 0x1000, AccessType::Read);
    EXPECT_FALSE(r.llcMiss);
    EXPECT_EQ(r.hitLevel, 1u);
    EXPECT_EQ(r.latencyCycles, h.params().l1LatencyCycles);
}

TEST(Hierarchy, SubLineAccessSameLine)
{
    CacheHierarchy h(tinyHierarchy());
    h.access(0, 0x1000, AccessType::Read);
    auto r = h.access(0, 0x1030, AccessType::Read);
    EXPECT_EQ(r.hitLevel, 1u);
}

TEST(Hierarchy, PerCoreL1Isolation)
{
    CacheHierarchy h(tinyHierarchy());
    h.access(0, 0x1000, AccessType::Read);
    // Core 1 misses its private L1/L2 but the line is NOT in the LLC
    // yet (it sits in core 0's L1), so this is another memory miss.
    auto r = h.access(1, 0x1000, AccessType::Read);
    EXPECT_TRUE(r.llcMiss);
}

TEST(Hierarchy, EvictionCascadesToL2)
{
    auto p = tinyHierarchy();
    CacheHierarchy h(p);
    // L1: 1 KiB, 2-way, 64 B lines -> 8 sets. Fill 3 lines of set 0.
    u64 setStride = 8 * 64;
    h.access(0, 0 * setStride, AccessType::Read);
    h.access(0, 1 * setStride, AccessType::Read);
    h.access(0, 2 * setStride, AccessType::Read); // evicts line 0 to L2
    auto r = h.access(0, 0, AccessType::Read);
    EXPECT_EQ(r.hitLevel, 2u); // found in L2
}

TEST(Hierarchy, DirtyDataReachesMemoryEventually)
{
    auto p = tinyHierarchy(1);
    CacheHierarchy h(p);
    // Write a line, then stream enough distinct lines to push it out of
    // L1, L2 and the LLC; a writeback must surface exactly once.
    h.access(0, 0, AccessType::Write);
    u64 wbCount = 0;
    for (u64 i = 1; i < 2048; ++i) {
        auto r = h.access(0, i * 64, AccessType::Read);
        if (r.writeback && *r.writeback == 0)
            ++wbCount;
    }
    EXPECT_EQ(wbCount, 1u);
}

TEST(Hierarchy, LlcHolds)
{
    CacheHierarchy h(tinyHierarchy());
    u64 setStride = 8 * 64;
    // Push a line down to the LLC via L1+L2 eviction pressure.
    for (u64 i = 0; i < 16; ++i)
        h.access(0, i * setStride, AccessType::Read);
    // At least one early line must now be LLC-resident.
    u32 resident = h.llcResidentLinesInRange(0, 16 * setStride);
    EXPECT_GT(resident, 0u);
}

TEST(Hierarchy, LatenciesFollowLevels)
{
    auto p = tinyHierarchy();
    CacheHierarchy h(p);
    auto miss = h.access(0, 0x2000, AccessType::Read);
    EXPECT_EQ(miss.latencyCycles, p.llcLatencyCycles);
    auto l1 = h.access(0, 0x2000, AccessType::Read);
    EXPECT_EQ(l1.latencyCycles, p.l1LatencyCycles);
}

TEST(Hierarchy, AccessCounting)
{
    CacheHierarchy h(tinyHierarchy());
    for (int i = 0; i < 10; ++i)
        h.access(0, 0x3000, AccessType::Read);
    EXPECT_EQ(h.accesses(), 10u);
    EXPECT_EQ(h.llcMisses(), 1u);
}

TEST(Hierarchy, CollectStats)
{
    CacheHierarchy h(tinyHierarchy());
    h.access(0, 0, AccessType::Read);
    StatSet out;
    h.collectStats(out);
    EXPECT_DOUBLE_EQ(out.get("hier.accesses"), 1.0);
    EXPECT_DOUBLE_EQ(out.get("hier.llcMisses"), 1.0);
}

TEST(Hierarchy, WriteMissInstallsDirtyLine)
{
    CacheHierarchy h(tinyHierarchy(1));
    h.access(0, 0x40, AccessType::Write);
    // Stream over the same set until the dirty line surfaces; dirty
    // data must not be lost (exactly one writeback of 0x40).
    u64 setStride = 8 * 64;
    u64 wb = 0;
    for (u64 i = 1; i < 1024; ++i) {
        auto r = h.access(0, 0x40 + i * setStride, AccessType::Read);
        if (r.writeback && *r.writeback == 0x40)
            ++wb;
    }
    EXPECT_EQ(wb, 1u);
}

TEST(Hierarchy, Table1Geometry)
{
    HierarchyParams p; // defaults are the paper's Table 1
    EXPECT_EQ(p.l1.sizeBytes, 64 * KiB);
    EXPECT_EQ(p.l1.ways, 4u);
    EXPECT_EQ(p.l2.sizeBytes, 256 * KiB);
    EXPECT_EQ(p.l2.ways, 8u);
    EXPECT_EQ(p.llc.sizeBytes, 8 * MiB);
    EXPECT_EQ(p.llc.ways, 16u);
    EXPECT_EQ(p.l1LatencyCycles, 1u);
    EXPECT_EQ(p.l2LatencyCycles, 9u);
    EXPECT_EQ(p.llcLatencyCycles, 14u);
}

TEST(HierarchyDeath, BadCoreId)
{
    CacheHierarchy h(tinyHierarchy(2));
    EXPECT_DEATH(h.access(2, 0, AccessType::Read), "core id");
}

} // namespace
} // namespace h2::cache
