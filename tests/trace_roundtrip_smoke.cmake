# End-to-end trace round-trip through the h2sim binary (the CLI-level
# twin of tests/test_trace_roundtrip.cc): capture a workload with
# --dump-trace in both formats, replay each via a trace:<path> spec,
# and require the emitted metrics JSON to be byte-identical to the
# direct synthetic run's.
#
# Invoked by ctest as:
#   cmake -DH2SIM=<path-to-h2sim> -DWORKDIR=<scratch-dir>
#         -P trace_roundtrip_smoke.cmake

if(NOT H2SIM OR NOT WORKDIR)
    message(FATAL_ERROR "need -DH2SIM=... and -DWORKDIR=...")
endif()

file(MAKE_DIRECTORY ${WORKDIR})

set(CFG --cores 2 --instr 20000 --warmup 5000 --seed 7)

function(run_h2sim)
    execute_process(COMMAND ${H2SIM} ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "h2sim ${ARGN} failed (${rc}):\n${out}\n${err}")
    endif()
endfunction()

# Direct synthetic run.
run_h2sim(--design dfc --workload lbm ${CFG}
          --format json --out ${WORKDIR}/direct.json)

# Capture in both formats; the instruction budget must cover
# warmup + measurement so the replay never wraps.
run_h2sim(--dump-trace ${WORKDIR}/lbm.trace.txt --workload lbm ${CFG})
run_h2sim(--dump-trace ${WORKDIR}/lbm.trace --workload lbm ${CFG})

# Replay each capture and demand byte-identical metrics JSON.
foreach(trace lbm.trace.txt lbm.trace)
    run_h2sim(--design dfc --workload trace:${WORKDIR}/${trace} ${CFG}
              --format json --out ${WORKDIR}/replay_${trace}.json)
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORKDIR}/direct.json ${WORKDIR}/replay_${trace}.json
        RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
        message(FATAL_ERROR
            "replay of ${trace} is not bit-identical to the direct run "
            "(${WORKDIR}/direct.json vs ${WORKDIR}/replay_${trace}.json)")
    endif()
    message(STATUS "${trace}: replay bit-identical to the synthetic run")
endforeach()
