/**
 * @file
 * Batched-pipeline equivalence suite.
 *
 * The scheduler's batched stepping (SystemConfig::stepBatch) and the
 * sharded-device parallelism (SystemConfig::simThreads) are pure
 * performance features: both must replay the scalar, single-threaded
 * simulation bit for bit. This suite pins that contract across every
 * registered design — a new design inherits the checks automatically —
 * by comparing full Metrics (every scalar plus the detail StatSet)
 * with operator==, i.e. bitwise double equality, not tolerance.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/design_registry.h"
#include "sim/runner.h"
#include "workloads/workload_spec.h"

namespace h2 {
namespace {

// Small but non-trivial: multiple cores so the scheduler actually
// interleaves, warm-up so the reset path is covered, and a write-heavy
// enough default mix that the controller queues see forced drains.
sim::RunConfig
baseConfig()
{
    sim::RunConfig cfg;
    cfg.numCores = 2;
    cfg.instrPerCore = 30'000;
    cfg.warmupInstrPerCore = 10'000;
    cfg.seed = 42;
    return cfg;
}

const std::vector<std::string> kWorkloads = {"lbm", "mcf",
                                             "mix:mcf+xalanc:2"};

sim::Metrics
runWith(const std::string &design, const std::string &workloadSpec,
        u32 stepBatch, u32 simThreads)
{
    sim::RunConfig cfg = baseConfig();
    cfg.stepBatch = stepBatch;
    cfg.simThreads = simThreads;
    return sim::simulateOne(
        cfg, workloads::resolveWorkloadOrFatal(workloadSpec), design);
}

/** stepBatch=1 degenerates to the scalar one-record-per-dispatch loop;
 *  the default batch must reproduce it exactly. */
void
expectBatchedEqualsScalar(const std::string &workloadSpec)
{
    for (const sim::DesignInfo *info :
         sim::DesignRegistry::instance().all()) {
        SCOPED_TRACE(info->name + " x " + workloadSpec);
        sim::Metrics scalar = runWith(info->name, workloadSpec, 1, 1);
        sim::Metrics batched = runWith(info->name, workloadSpec, 64, 1);
        EXPECT_TRUE(scalar == batched)
            << info->name << " x " << workloadSpec
            << ": stepBatch=64 diverged from stepBatch=1\nscalar:\n"
            << scalar.toJson() << "\nbatched:\n" << batched.toJson();
    }
}

TEST(BatchedEquivalence, AllDesignsLbm)
{
    expectBatchedEqualsScalar("lbm");
}

TEST(BatchedEquivalence, AllDesignsMcf)
{
    expectBatchedEqualsScalar("mcf");
}

TEST(BatchedEquivalence, AllDesignsMix)
{
    expectBatchedEqualsScalar("mix:mcf+xalanc:2");
}

// An uneven batch size exercises limit/cancel-stride interactions the
// power-of-two default cannot; one design suffices since the scheduler
// is design-agnostic.
TEST(BatchedEquivalence, OddBatchSizeHybrid2)
{
    sim::Metrics scalar = runWith("hybrid2", "mix:mcf+xalanc:2", 1, 1);
    sim::Metrics odd = runWith("hybrid2", "mix:mcf+xalanc:2", 7, 1);
    EXPECT_TRUE(scalar == odd);
}

/** --sim-threads partitions controller drains by ChannelState shard;
 *  every design must produce bit-identical metrics with workers on. */
TEST(BatchedEquivalence, SimThreadsAllDesignsMix)
{
    for (const sim::DesignInfo *info :
         sim::DesignRegistry::instance().all()) {
        SCOPED_TRACE(info->name);
        sim::Metrics serial =
            runWith(info->name, "mix:mcf+xalanc:2", 64, 1);
        sim::Metrics threaded =
            runWith(info->name, "mix:mcf+xalanc:2", 64, 4);
        EXPECT_TRUE(serial == threaded)
            << info->name
            << ": --sim-threads 4 diverged from single-threaded\n"
            << "serial:\n" << serial.toJson() << "\nthreaded:\n"
            << threaded.toJson();
    }
}

} // namespace
} // namespace h2
