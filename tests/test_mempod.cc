/**
 * @file
 * Tests for the MemPod baseline: MEA-driven interval migration within
 * pods over a flat NM+FM space.
 */

#include <gtest/gtest.h>

#include "baselines/mempod.h"
#include "common/units.h"

namespace h2::baselines {
namespace {

mem::MemSystemParams
smallSys()
{
    mem::MemSystemParams p;
    // These suites white-box the designs against the analytic
    // immediate-dispatch device model; the queued controller has its
    // own suite (test_mem_controller) and the queue=on goldens.
    p.queue.enabled = false;
    p.nmBytes = 8 * MiB;
    p.fmBytes = 64 * MiB;
    return p;
}

MemPodParams
podParams()
{
    MemPodParams p;
    p.pods = 4;
    p.meaCounters = 8;
    p.intervalPs = 1 * psPerUs; // short intervals for testing
    p.requirePersistence = false; // single-interval unit tests
    return p;
}

TEST(MemPod, FlatCapacityIsNmPlusFm)
{
    MemPod m(smallSys(), podParams());
    EXPECT_EQ(m.flatCapacity(), 72 * MiB);
    EXPECT_EQ(m.name(), "MPOD");
}

TEST(MemPod, NmResidentServedFromNm)
{
    MemPod m(smallSys(), podParams());
    // Segment 0 starts NM-resident (identity mapping).
    auto r = m.access(0, AccessType::Read, 0);
    EXPECT_TRUE(r.fromNm);
}

TEST(MemPod, FmResidentServedFromFm)
{
    MemPod m(smallSys(), podParams());
    Addr fmAddr = 16 * MiB; // beyond the NM segments
    auto r = m.access(fmAddr, AccessType::Read, 0);
    EXPECT_FALSE(r.fromNm);
}

TEST(MemPod, HotSegmentMigratesAtIntervalBoundary)
{
    MemPod m(smallSys(), podParams());
    Addr hot = 32 * MiB; // FM-resident segment
    u64 hotSeg = hot / 2048;
    EXPECT_FALSE(m.locate(hotSeg).inNm);
    // Hammer it within one interval.
    Tick t = 0;
    for (int i = 0; i < 50; ++i)
        m.access(hot, AccessType::Read, t += 1000);
    // Cross the interval boundary.
    m.access(0, AccessType::Read, 2 * psPerUs);
    EXPECT_TRUE(m.locate(hotSeg).inNm);
    EXPECT_GE(m.migrations(), 1u);
    // And it is now served from NM.
    auto r = m.access(hot, AccessType::Read, 3 * psPerUs);
    EXPECT_TRUE(r.fromNm);
}

TEST(MemPod, DisplacedSegmentStillReachable)
{
    MemPod m(smallSys(), podParams());
    Addr hot = 32 * MiB;
    u64 hotSeg = hot / 2048;
    Tick t = 0;
    for (int i = 0; i < 50; ++i)
        m.access(hot, AccessType::Read, t += 1000);
    m.access(0, AccessType::Read, 2 * psPerUs);
    ASSERT_TRUE(m.locate(hotSeg).inNm);
    // Some NM segment was displaced into the hot segment's FM home;
    // the remap must remain a bijection over both.
    u64 nmLoc = m.locate(hotSeg).idx;
    // Find the displaced segment: it must map to hotSeg's old FM home.
    u64 displaced = ~u64(0);
    for (u64 seg = 0; seg < 8 * MiB / 2048; ++seg) {
        if (!m.locate(seg).inNm) {
            displaced = seg;
            break;
        }
    }
    ASSERT_NE(displaced, ~u64(0));
    EXPECT_EQ(m.locate(displaced).idx, hotSeg - 8 * MiB / 2048);
    EXPECT_NE(displaced, hotSeg);
    (void)nmLoc;
}

TEST(MemPod, MigrationChargesSwapTraffic)
{
    MemPod m(smallSys(), podParams());
    Addr hot = 32 * MiB;
    Tick t = 0;
    for (int i = 0; i < 50; ++i)
        m.access(hot, AccessType::Read, t += 1000);
    u64 fmBytesBefore = m.fmDevice().stats().totalBytes();
    m.access(0, AccessType::Read, 2 * psPerUs);
    // Swap = 2 KB read + 2 KB write on each device (at least).
    EXPECT_GE(m.fmDevice().stats().totalBytes(), fmBytesBefore + 4096);
}

TEST(MemPod, ColdSegmentsStayPut)
{
    MemPod m(smallSys(), podParams());
    Tick t = 0;
    // One access per segment: nothing is hot enough to matter, but
    // MemPod migrates anything the MEA tracked; spread accesses over
    // far more segments than MEA capacity so most entries decrement
    // away.
    for (u64 i = 0; i < 1000; ++i)
        m.access(16 * MiB + i * 2048, AccessType::Read, t += 100);
    m.access(0, AccessType::Read, 2 * psPerUs);
    // At most a few segments (MEA capacity x pods) can have migrated.
    EXPECT_LE(m.migrations(), u64(podParams().meaCounters) * 4);
}

TEST(MemPod, PersistenceFilterDefersOneShotBursts)
{
    MemPodParams p = podParams();
    p.requirePersistence = true;
    MemPod m(smallSys(), p);
    Addr hot = 32 * MiB;
    Tick t = 0;
    // Hot in interval 1 only: tracked, but not yet persistent.
    for (int i = 0; i < 50; ++i)
        m.access(hot, AccessType::Read, t += 1000);
    m.access(64 * 2048, AccessType::Read, 1 * psPerUs + 1);
    EXPECT_EQ(m.migrations(), 0u);
    // Hot again in interval 2: now it migrates at the next boundary.
    for (int i = 0; i < 50; ++i)
        m.access(hot, AccessType::Read, 1 * psPerUs + 2000 + i * 1000);
    m.access(64 * 2048, AccessType::Read, 2 * psPerUs + 1);
    EXPECT_GE(m.migrations(), 1u);
    EXPECT_TRUE(m.locate(hot / 2048).inNm);
}

TEST(MemPod, MigrationCapBoundsSwapBandwidth)
{
    MemPodParams p = podParams();
    p.maxMigrationsPerPodInterval = 2;
    p.minCountToMigrate = 1;
    MemPod m(smallSys(), p);
    Tick t = 0;
    // Make 8 segments of pod 0 hot within one interval.
    for (u64 s = 0; s < 8; ++s)
        for (int i = 0; i < 10; ++i)
            m.access(32 * MiB + s * 4 * 2048, AccessType::Read, t += 100);
    m.access(64 * 2048, AccessType::Read, 2 * psPerUs);
    EXPECT_LE(m.migrations(), 2u * 4); // cap x pods
}

TEST(MemPod, RemapCacheMissesChargeMetadata)
{
    MemPod m(smallSys(), podParams());
    Tick t = 0;
    for (u64 i = 0; i < 100; ++i)
        m.access(16 * MiB + i * 2048, AccessType::Read, t += 1000);
    StatSet out;
    m.collectStats(out);
    EXPECT_GT(out.get("mempod.metaReads"), 0.0);
    EXPECT_GT(out.get("mempod.remapCacheMisses"), 0.0);
}

TEST(MemPod, StatsExported)
{
    MemPod m(smallSys(), podParams());
    m.access(0, AccessType::Read, 0);
    StatSet out;
    m.collectStats(out);
    EXPECT_TRUE(out.has("mempod.migrations"));
    EXPECT_TRUE(out.has("mempod.intervals"));
}

} // namespace
} // namespace h2::baselines
