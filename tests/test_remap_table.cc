/**
 * @file
 * Tests for the remap / inverted remap tables (paper section 3.3).
 */

#include <gtest/gtest.h>

#include "core/remap_table.h"

namespace h2::core {
namespace {

// Layout: 100 NM flat sectors, 20 cache sectors, 400 FM sectors.
RemapTable
makeTable()
{
    return RemapTable(500, 100, 20, 400);
}

TEST(RemapTable, IdentityDefaultsNmRegion)
{
    auto t = makeTable();
    // Flat sector 0 lives right after the cache carve-out.
    EXPECT_EQ(t.lookup(0), (Loc{true, 20}));
    EXPECT_EQ(t.lookup(99), (Loc{true, 119}));
}

TEST(RemapTable, IdentityDefaultsFmRegion)
{
    auto t = makeTable();
    EXPECT_EQ(t.lookup(100), (Loc{false, 0}));
    EXPECT_EQ(t.lookup(499), (Loc{false, 399}));
}

TEST(RemapTable, UpdateOverridesIdentity)
{
    auto t = makeTable();
    t.update(100, Loc{true, 5});
    EXPECT_EQ(t.lookup(100), (Loc{true, 5}));
    EXPECT_EQ(t.overrides(), 1u);
    t.update(100, Loc{false, 17});
    EXPECT_EQ(t.lookup(100), (Loc{false, 17}));
}

TEST(RemapTable, InvertedIdentity)
{
    auto t = makeTable();
    // Cache-region locations start with no occupant.
    EXPECT_FALSE(t.invLookup(0).has_value());
    EXPECT_FALSE(t.invLookup(19).has_value());
    // Flat-region locations hold their identity sector.
    EXPECT_EQ(t.invLookup(20).value(), 0u);
    EXPECT_EQ(t.invLookup(119).value(), 99u);
}

TEST(RemapTable, InvertedUpdateAndTombstone)
{
    auto t = makeTable();
    t.invUpdate(5, 42u);
    EXPECT_EQ(t.invLookup(5).value(), 42u);
    t.invUpdate(5, std::nullopt);
    EXPECT_FALSE(t.invLookup(5).has_value());
    // Tombstoning a flat-region location masks the identity default.
    t.invUpdate(20, std::nullopt);
    EXPECT_FALSE(t.invLookup(20).has_value());
}

TEST(RemapTable, Accessors)
{
    auto t = makeTable();
    EXPECT_EQ(t.flatSectors(), 500u);
    EXPECT_EQ(t.nmFlatSectors(), 100u);
    EXPECT_EQ(t.cacheSectors(), 20u);
    EXPECT_EQ(t.fmSectors(), 400u);
}

TEST(RemapTable, ZeroCacheRegion)
{
    // The migration baselines reuse the table with no cache carve-out.
    RemapTable t(500, 100, 0, 400);
    EXPECT_EQ(t.lookup(0), (Loc{true, 0}));
    EXPECT_EQ(t.invLookup(0).value(), 0u);
}

TEST(RemapTableDeath, LookupOutOfRange)
{
    auto t = makeTable();
    EXPECT_DEATH(t.lookup(500), "out of range");
}

TEST(RemapTableDeath, UpdateBadFmLocation)
{
    auto t = makeTable();
    EXPECT_DEATH(t.update(0, Loc{false, 400}), "bad FM location");
}

TEST(RemapTableDeath, InvLookupOutOfRange)
{
    auto t = makeTable();
    EXPECT_DEATH(t.invLookup(120), "out of range");
}

TEST(RemapTableDeath, MismatchedSizes)
{
    EXPECT_DEATH(RemapTable(500, 99, 20, 400), "NM flat region");
}

TEST(RemapTable, RoundTripSwap)
{
    // Model a full swap: flat sector 0 (NM) <-> flat sector 100 (FM).
    auto t = makeTable();
    Loc nmHome = t.lookup(0);
    Loc fmHome = t.lookup(100);
    t.update(0, fmHome);
    t.update(100, nmHome);
    t.invUpdate(nmHome.idx, 100u);
    EXPECT_EQ(t.lookup(0), fmHome);
    EXPECT_EQ(t.lookup(100), nmHome);
    EXPECT_EQ(t.invLookup(nmHome.idx).value(), 100u);
}

} // namespace
} // namespace h2::core
