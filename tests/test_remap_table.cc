/**
 * @file
 * Tests for the remap / inverted remap tables (paper section 3.3).
 */

#include <gtest/gtest.h>

#include <optional>
#include <unordered_map>

#include "common/rng.h"
#include "core/remap_table.h"

namespace h2::core {
namespace {

// Layout: 100 NM flat sectors, 20 cache sectors, 400 FM sectors.
RemapTable
makeTable()
{
    return RemapTable(500, 100, 20, 400);
}

TEST(RemapTable, IdentityDefaultsNmRegion)
{
    auto t = makeTable();
    // Flat sector 0 lives right after the cache carve-out.
    EXPECT_EQ(t.lookup(0), (Loc{true, 20}));
    EXPECT_EQ(t.lookup(99), (Loc{true, 119}));
}

TEST(RemapTable, IdentityDefaultsFmRegion)
{
    auto t = makeTable();
    EXPECT_EQ(t.lookup(100), (Loc{false, 0}));
    EXPECT_EQ(t.lookup(499), (Loc{false, 399}));
}

TEST(RemapTable, UpdateOverridesIdentity)
{
    auto t = makeTable();
    t.update(100, Loc{true, 5});
    EXPECT_EQ(t.lookup(100), (Loc{true, 5}));
    EXPECT_EQ(t.overrides(), 1u);
    t.update(100, Loc{false, 17});
    EXPECT_EQ(t.lookup(100), (Loc{false, 17}));
}

TEST(RemapTable, InvertedIdentity)
{
    auto t = makeTable();
    // Cache-region locations start with no occupant.
    EXPECT_FALSE(t.invLookup(0).has_value());
    EXPECT_FALSE(t.invLookup(19).has_value());
    // Flat-region locations hold their identity sector.
    EXPECT_EQ(t.invLookup(20).value(), 0u);
    EXPECT_EQ(t.invLookup(119).value(), 99u);
}

TEST(RemapTable, InvertedUpdateAndTombstone)
{
    auto t = makeTable();
    t.invUpdate(5, 42u);
    EXPECT_EQ(t.invLookup(5).value(), 42u);
    t.invUpdate(5, std::nullopt);
    EXPECT_FALSE(t.invLookup(5).has_value());
    // Tombstoning a flat-region location masks the identity default.
    t.invUpdate(20, std::nullopt);
    EXPECT_FALSE(t.invLookup(20).has_value());
}

TEST(RemapTable, Accessors)
{
    auto t = makeTable();
    EXPECT_EQ(t.flatSectors(), 500u);
    EXPECT_EQ(t.nmFlatSectors(), 100u);
    EXPECT_EQ(t.cacheSectors(), 20u);
    EXPECT_EQ(t.fmSectors(), 400u);
}

TEST(RemapTable, ZeroCacheRegion)
{
    // The migration baselines reuse the table with no cache carve-out.
    RemapTable t(500, 100, 0, 400);
    EXPECT_EQ(t.lookup(0), (Loc{true, 0}));
    EXPECT_EQ(t.invLookup(0).value(), 0u);
}

TEST(RemapTableDeath, LookupOutOfRange)
{
    auto t = makeTable();
    EXPECT_DEATH(t.lookup(500), "out of range");
}

TEST(RemapTableDeath, UpdateBadFmLocation)
{
    auto t = makeTable();
    EXPECT_DEATH(t.update(0, Loc{false, 400}), "bad FM location");
}

TEST(RemapTableDeath, InvLookupOutOfRange)
{
    auto t = makeTable();
    EXPECT_DEATH(t.invLookup(120), "out of range");
}

TEST(RemapTableDeath, MismatchedSizes)
{
    EXPECT_DEATH(RemapTable(500, 99, 20, 400), "NM flat region");
}

TEST(RemapTable, RandomizedAgainstReferenceModel)
{
    // The open-addressed override tables must behave exactly like the
    // std::unordered_map implementation they replaced, across enough
    // churn to force several growth rehashes.
    const u64 flat = 5000, nmFlat = 1000, cache = 200, fm = 4000;
    RemapTable t(flat, nmFlat, cache, fm);
    std::unordered_map<u64, Loc> remapRef;
    std::unordered_map<u64, std::optional<u64>> invRef;
    Rng rng(99);
    for (int i = 0; i < 50000; ++i) {
        switch (rng.below(4)) {
          case 0: {
            u64 fs = rng.below(flat);
            Loc loc = rng.chance(0.5)
                ? Loc{true, rng.below(cache + nmFlat)}
                : Loc{false, rng.below(fm)};
            t.update(fs, loc);
            remapRef[fs] = loc;
            break;
          }
          case 1: {
            u64 nmLoc = rng.below(cache + nmFlat);
            std::optional<u64> fs = rng.chance(0.3)
                ? std::nullopt
                : std::optional<u64>(rng.below(flat));
            t.invUpdate(nmLoc, fs);
            invRef[nmLoc] = fs;
            break;
          }
          case 2: {
            u64 fs = rng.below(flat);
            auto it = remapRef.find(fs);
            Loc expected = it != remapRef.end() ? it->second
                : fs < nmFlat ? Loc{true, cache + fs}
                              : Loc{false, fs - nmFlat};
            ASSERT_EQ(t.lookup(fs), expected);
            break;
          }
          default: {
            u64 nmLoc = rng.below(cache + nmFlat);
            auto it = invRef.find(nmLoc);
            std::optional<u64> expected = it != invRef.end()
                ? it->second
                : nmLoc >= cache ? std::optional<u64>(nmLoc - cache)
                                 : std::nullopt;
            ASSERT_EQ(t.invLookup(nmLoc), expected);
            break;
          }
        }
    }
    EXPECT_EQ(t.overrides(), remapRef.size());
}

TEST(RemapTable, RoundTripSwap)
{
    // Model a full swap: flat sector 0 (NM) <-> flat sector 100 (FM).
    auto t = makeTable();
    Loc nmHome = t.lookup(0);
    Loc fmHome = t.lookup(100);
    t.update(0, fmHome);
    t.update(100, nmHome);
    t.invUpdate(nmHome.idx, 100u);
    EXPECT_EQ(t.lookup(0), fmHome);
    EXPECT_EQ(t.lookup(100), nmHome);
    EXPECT_EQ(t.invLookup(nmHome.idx).value(), 100u);
}

} // namespace
} // namespace h2::core
