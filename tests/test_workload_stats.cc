/**
 * @file
 * Statistical tests for the synthetic generators: over a million
 * records each Pattern must hit its configured memory intensity,
 * write fraction, and hot-region access probability within tight
 * tolerances, and different seeds must give different streams.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "workloads/generators.h"
#include "workloads/workload_registry.h"

namespace h2::workloads {
namespace {

constexpr u64 kRecords = 1'000'000;

/** A Workload configured directly with @p pattern for source building. */
Workload
patternWorkload(Pattern pattern)
{
    Workload w;
    w.name = "stats";
    w.multithreaded = true; // single shared stream, footprint as-is
    w.footprintBytes = 64ull << 20;
    w.memRatio = 0.23;
    w.writeFrac = 0.31;
    w.pattern = pattern;
    w.hotFraction = 0.1;
    w.hotProbability = 0.85;
    switch (pattern) {
      case Pattern::Stride:
        w.patternParam = 256; // stride bytes
        break;
      case Pattern::Phased:
        w.patternParam = 1ull << 20; // window bytes
        w.phaseLength = 10'000;
        break;
      default:
        break;
    }
    return w;
}

struct StreamStats
{
    u64 instrs = 0;
    u64 writes = 0;
    u64 hotHits = 0; ///< records with vaddr below the hot boundary
    Addr maxAddr = 0;
};

StreamStats
collect(TraceSource &src, u64 n, u64 hotBoundary)
{
    StreamStats s;
    for (u64 i = 0; i < n; ++i) {
        TraceRecord rec = src.next();
        s.instrs += u64(rec.instGap) + 1;
        s.writes += rec.type == AccessType::Write;
        s.hotHits += rec.vaddr < hotBoundary;
        s.maxAddr = std::max(s.maxAddr, rec.vaddr);
    }
    return s;
}

const Pattern kAllPatterns[] = {
    Pattern::Stream, Pattern::Stride,       Pattern::Random,
    Pattern::Gather, Pattern::Zipf,         Pattern::PointerChase,
    Pattern::Phased,
};

TEST(WorkloadStats, EveryPatternHitsMemRatioExactly)
{
    for (Pattern pat : kAllPatterns) {
        Workload w = patternWorkload(pat);
        auto src = w.makeSource(0, 1, 1);
        StreamStats s = collect(*src, kRecords, 0);
        // Gap synthesis carries the fractional part, so the ratio is
        // met essentially exactly over a long run.
        double ratio = double(kRecords) / double(s.instrs);
        EXPECT_NEAR(ratio, w.memRatio, 1e-4)
            << "pattern " << int(pat);
    }
}

TEST(WorkloadStats, EveryPatternHitsWriteFraction)
{
    for (Pattern pat : kAllPatterns) {
        Workload w = patternWorkload(pat);
        auto src = w.makeSource(0, 1, 1);
        StreamStats s = collect(*src, kRecords, 0);
        // Binomial sd ~ sqrt(p(1-p)/n) ~ 4.6e-4; allow 5 sigma.
        double frac = double(s.writes) / double(kRecords);
        EXPECT_NEAR(frac, w.writeFrac, 0.0025)
            << "pattern " << int(pat);
    }
}

TEST(WorkloadStats, EveryPatternStaysInsideFootprint)
{
    for (Pattern pat : kAllPatterns) {
        Workload w = patternWorkload(pat);
        auto src = w.makeSource(0, 1, 1);
        StreamStats s = collect(*src, kRecords, 0);
        EXPECT_LT(s.maxAddr, w.footprintBytes) << "pattern " << int(pat);
    }
}

TEST(WorkloadStats, ZipfHotRegionProbability)
{
    Workload w = patternWorkload(Pattern::Zipf);
    // ZipfGen's hot region: hotFraction of the footprint at its base.
    u64 hotBytes = u64(double(w.footprintBytes) * w.hotFraction);
    auto src = w.makeSource(0, 1, 1);
    StreamStats s = collect(*src, kRecords, hotBytes);
    double hot = double(s.hotHits) / double(kRecords);
    EXPECT_NEAR(hot, w.hotProbability, 0.0025);
}

TEST(WorkloadStats, GatherRegionProbability)
{
    Workload w = patternWorkload(Pattern::Gather);
    // GatherGen's gather region sits at the footprint base, sized like
    // Zipf's hot region.
    u64 regionBytes = u64(double(w.footprintBytes) * w.hotFraction);
    auto src = w.makeSource(0, 1, 1);
    StreamStats s = collect(*src, kRecords, regionBytes);
    double hot = double(s.hotHits) / double(kRecords);
    EXPECT_NEAR(hot, w.hotProbability, 0.0025);
}

TEST(WorkloadStats, DistinctSeedsDistinctStreams)
{
    for (Pattern pat : kAllPatterns) {
        Workload w = patternWorkload(pat);
        auto a = w.makeSource(0, 1, 1);
        auto b = w.makeSource(0, 1, 2);
        u32 differing = 0;
        for (int i = 0; i < 1000; ++i)
            if (!(a->next() == b->next()))
                ++differing;
        EXPECT_GT(differing, 0u) << "pattern " << int(pat);
    }
}

TEST(WorkloadStats, SameSeedSameStream)
{
    for (Pattern pat : kAllPatterns) {
        Workload w = patternWorkload(pat);
        auto a = w.makeSource(0, 1, 3);
        auto b = w.makeSource(0, 1, 3);
        for (int i = 0; i < 1000; ++i)
            EXPECT_EQ(a->next(), b->next()) << "pattern " << int(pat);
    }
}

TEST(WorkloadStats, DistinctCoresDistinctStreams)
{
    Workload w = patternWorkload(Pattern::Random);
    auto a = w.makeSource(0, 2, 1);
    auto b = w.makeSource(1, 2, 1);
    u32 differing = 0;
    for (int i = 0; i < 1000; ++i)
        if (!(a->next() == b->next()))
            ++differing;
    EXPECT_GT(differing, 0u);
}

TEST(WorkloadStats, RegistryWorkloadsMeetTheirOwnRatios)
{
    // Spot-check real Table 2 entries end to end through makeSource.
    for (const char *name : {"lbm", "mcf", "cg.D", "xalanc"}) {
        const Workload &w = findWorkload(name);
        auto src = w.makeSource(0, 2, 42);
        StreamStats s = collect(*src, kRecords / 4, 0);
        double ratio = double(kRecords / 4) / double(s.instrs);
        EXPECT_NEAR(ratio, w.memRatio, w.memRatio * 0.01) << name;
        double frac = double(s.writes) / double(kRecords / 4);
        EXPECT_NEAR(frac, w.writeFrac, 0.005) << name;
    }
}

} // namespace
} // namespace h2::workloads
