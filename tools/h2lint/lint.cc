#include "lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <regex>
#include <sstream>
#include <string_view>
#include <tuple>

namespace fs = std::filesystem;

namespace h2::lint {

namespace {

const std::vector<RuleInfo> kRules = {
    {"R1", "device-seam",
     "no direct DramDevice access()/post() and no naming of the "
     "ChannelState/BankState shard types outside src/mem/ + src/dram/ "
     "— route traffic through nmc()/fmc()/ctrlFor() and consume the "
     "device's aggregate accessors"},
    {"R2", "banned-call",
     "no std::sto*/rand/time/strtok in checked code, no printf outside "
     "src/main.cc and bench/ — each diagnostic names the sanctioned "
     "replacement"},
    {"R3", "design-coverage",
     "every H2_REGISTER_DESIGN has tests/golden/<name>_*.json snapshots "
     "and a row in the README design table"},
    {"R4", "metrics-manifest",
     "every Metrics.detail stats key emitted in src/ is documented in "
     "docs/metrics.md, and every manifest row is emitted by src/"},
    {"R5", "header-hygiene",
     "headers carry #pragma once, no `using namespace`, no <iostream>"},
};

bool
startsWith(const std::string &s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
isHeaderPath(const std::string &p)
{
    return endsWith(p, ".h") || endsWith(p, ".hpp");
}

bool
isSourcePath(const std::string &p)
{
    return isHeaderPath(p) || endsWith(p, ".cc") || endsWith(p, ".cpp");
}

bool
isWordChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
}

} // namespace

const std::vector<RuleInfo> &
ruleTable()
{
    return kRules;
}

bool
isKnownRule(const std::string &id)
{
    return std::any_of(kRules.begin(), kRules.end(),
                       [&](const RuleInfo &r) { return r.id == id; });
}

bool
ruleEnabled(const Options &opt, const std::string &id)
{
    return opt.rules.empty() || opt.rules.count(id) != 0;
}

std::string
formatFinding(const Finding &f)
{
    return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message;
}

namespace detail {

int
lineOf(const std::string &text, size_t pos)
{
    int line = 1;
    for (size_t i = 0; i < pos && i < text.size(); ++i)
        if (text[i] == '\n')
            ++line;
    return line;
}

bool
ScrubbedFile::suppressed(const std::string &rule, int line) const
{
    return allowFile.count(rule) != 0 ||
           allowLines.count({rule, line}) != 0;
}

namespace {

/** Record `h2lint: allow(...)` / `allow-file(...)` directives found in
 *  one comment spanning [startLine, endLine]. */
void
parseSuppressions(const std::string &comment, int startLine, int endLine,
                  ScrubbedFile &out)
{
    static const std::regex kAllow(
        R"(h2lint:\s*(allow|allow-file)\(([^)]*)\))");
    for (auto it = std::sregex_iterator(comment.begin(), comment.end(),
                                        kAllow);
         it != std::sregex_iterator(); ++it) {
        std::string kind = (*it)[1].str();
        std::string list = (*it)[2].str();
        // Split the comma list by hand (the common layer's splitOn
        // returns string_views into `list`, fine here too, but a
        // two-line loop avoids the include).
        std::istringstream items(list);
        std::string id;
        while (std::getline(items, id, ',')) {
            id.erase(std::remove_if(id.begin(), id.end(),
                                    [](char c) { return c == ' '; }),
                     id.end());
            if (id.empty())
                continue;
            if (kind == "allow-file") {
                out.allowFile.insert(id);
            } else {
                for (int l = startLine; l <= endLine + 1; ++l)
                    out.allowLines.insert({id, l});
            }
        }
    }
}

} // namespace

ScrubbedFile
scrub(const std::string &text)
{
    ScrubbedFile out;
    out.code = text;
    out.codeKeepStrings = text;

    enum class St { Code, LineComment, BlockComment, Str, Chr, RawStr };
    St st = St::Code;
    std::string comment;      // text of the comment in flight
    int commentStart = 0;     // its first line
    int line = 1;
    std::string rawDelim;     // raw-string closing delimiter ")xyz""

    auto blankBoth = [&](size_t i) {
        if (text[i] != '\n') {
            out.code[i] = ' ';
            out.codeKeepStrings[i] = ' ';
        }
    };
    auto blankCodeOnly = [&](size_t i) {
        if (text[i] != '\n')
            out.code[i] = ' ';
    };

    for (size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (st) {
        case St::Code:
            if (c == '/' && next == '/') {
                st = St::LineComment;
                comment.clear();
                commentStart = line;
                blankBoth(i);
            } else if (c == '/' && next == '*') {
                st = St::BlockComment;
                comment.clear();
                commentStart = line;
                blankBoth(i);
            } else if (c == '"' &&
                       (i == 0 || text[i - 1] != 'R' ||
                        (i > 1 && isWordChar(text[i - 2])))) {
                st = St::Str;
                blankCodeOnly(i);
            } else if (c == '"') {
                // R"delim( ... )delim"
                st = St::RawStr;
                rawDelim = ")";
                for (size_t j = i + 1; j < text.size() && text[j] != '(';
                     ++j)
                    rawDelim += text[j];
                rawDelim += '"';
                blankCodeOnly(i);
            } else if (c == '\'' && (i == 0 || !isWordChar(text[i - 1]))) {
                // The word-char guard keeps digit separators (30'000)
                // out of the char-literal state.
                st = St::Chr;
                blankCodeOnly(i);
            }
            break;
        case St::LineComment:
            if (c == '\n') {
                parseSuppressions(comment, commentStart, line, out);
                st = St::Code;
            } else {
                comment += c;
                blankBoth(i);
            }
            break;
        case St::BlockComment:
            if (c == '*' && next == '/') {
                parseSuppressions(comment, commentStart, line, out);
                blankBoth(i);
                blankBoth(i + 1);
                ++i;
                st = St::Code;
            } else {
                comment += c;
                blankBoth(i);
            }
            break;
        case St::Str:
            if (c == '\\' && next != '\0') {
                blankCodeOnly(i);
                blankCodeOnly(i + 1);
                ++i;
            } else if (c == '"') {
                blankCodeOnly(i);
                st = St::Code;
            } else {
                blankCodeOnly(i);
            }
            break;
        case St::Chr:
            if (c == '\\' && next != '\0') {
                blankCodeOnly(i);
                blankCodeOnly(i + 1);
                ++i;
            } else if (c == '\'') {
                blankCodeOnly(i);
                st = St::Code;
            } else {
                blankCodeOnly(i);
            }
            break;
        case St::RawStr:
            if (c == ')' &&
                text.compare(i, rawDelim.size(), rawDelim) == 0) {
                for (size_t j = 0; j < rawDelim.size(); ++j)
                    blankCodeOnly(i + j);
                i += rawDelim.size() - 1;
                st = St::Code;
            } else {
                blankCodeOnly(i);
            }
            break;
        }
        if (text[i] == '\n')
            ++line;
    }
    if (st == St::LineComment || st == St::BlockComment)
        parseSuppressions(comment, commentStart, line, out);
    return out;
}

} // namespace detail

namespace {

using detail::ScrubbedFile;

void
emit(std::vector<Finding> &out, const ScrubbedFile &sf,
     const std::string &rule, const std::string &file, int line,
     const std::string &message)
{
    if (!sf.suppressed(rule, line))
        out.push_back({rule, file, line, message});
}

// ---------------------------------------------------------------- R1

/** Identifiers declared (or returned by an accessor declared) as
 *  DramDevice in this file, plus the HybridMemory-inherited device
 *  members every design sees. */
std::set<std::string>
dramDeviceIdents(const std::string &code)
{
    std::set<std::string> ids = {"nm", "fm"};
    static const std::regex kDecl(
        R"(\bDramDevice\s*>?\s*[*&]?\s*(\w+))");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), kDecl);
         it != std::sregex_iterator(); ++it)
        ids.insert((*it)[1].str());
    return ids;
}

void
checkDeviceSeam(const std::string &relPath, const ScrubbedFile &sf,
                std::vector<Finding> &out)
{
    if (!startsWith(relPath, "src/") || startsWith(relPath, "src/mem/") ||
        startsWith(relPath, "src/dram/"))
        return;
    const std::string &code = sf.code;
    std::set<std::string> devs = dramDeviceIdents(code);

    auto flag = [&](size_t pos, const std::string &callee) {
        emit(out, sf, "R1", relPath, detail::lineOf(code, pos),
             "direct DramDevice " + callee +
                 "() call outside src/mem/ bypasses FR-FCFS queueing — "
                 "route it through nmc()/fmc() (mem::MemController; see "
                 "src/mem/hybrid_memory.h)");
    };

    // recv->access( / recv.post( where recv is a known device.
    static const std::regex kMember(
        R"((\w+)\s*(?:->|\.)\s*(access|post)\s*\()");
    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        kMember);
         it != std::sregex_iterator(); ++it)
        if (devs.count((*it)[1].str()))
            flag(size_t(it->position(0)), (*it)[2].str());

    // recv().access( where recv() is a DramDevice accessor
    // (nmDevice()/fmDevice() picked up by the declaration scan).
    static const std::regex kViaCall(
        R"((\w+)\s*\(\s*\)\s*(?:->|\.)\s*(access|post)\s*\()");
    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        kViaCall);
         it != std::sregex_iterator(); ++it)
        if (devs.count((*it)[1].str()))
            flag(size_t(it->position(0)), (*it)[2].str());

    // Explicitly qualified calls.
    static const std::regex kQualified(R"(DramDevice::(access|post)\b)");
    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        kQualified);
         it != std::sregex_iterator(); ++it)
        flag(size_t(it->position(0)), (*it)[1].str());

    // The per-channel shard is the device's private threading seam:
    // naming its types outside src/mem/ + src/dram/ couples callers to
    // the bank/bus layout that --sim-threads parallelism depends on.
    // (Comment mentions never trip this — the scan runs on scrubbed
    // code.)
    static const std::regex kShard(R"(\b(ChannelState|BankState)\b)");
    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        kShard);
         it != std::sregex_iterator(); ++it)
        emit(out, sf, "R1", relPath,
             detail::lineOf(code, size_t(it->position(0))),
             "dram::" + (*it)[1].str() +
                 " named outside src/mem/ + src/dram/ — the channel "
                 "shard is the device's private threading seam; read "
                 "DramDevice::stats()/busUtilization() aggregates "
                 "instead");
}

// ---------------------------------------------------------------- R2

struct BannedCall
{
    const char *pattern; ///< function-name alternation, no prefix/suffix
    const char *why;
};

void
checkBannedCalls(const std::string &relPath, const ScrubbedFile &sf,
                 std::vector<Finding> &out)
{
    const bool printfOk =
        relPath == "src/main.cc" || startsWith(relPath, "bench/");
    static const std::vector<BannedCall> kBanned = {
        {"(stoi|stol|stoll|stoul|stoull|stof|stod|stold)",
         "throws (or silently saturates) on bad input — use the "
         "from_chars-based h2::parseU64/h2::parseFloat (common/parse.h), "
         "which return errors the caller must handle"},
        {"(rand|srand)",
         "non-deterministic global state — all randomness flows through "
         "h2::Rng (common/rng.h), seeded from RunConfig.seed"},
        {"(strtok)",
         "mutates global state and its input — use h2::splitOn "
         "(common/parse.h)"},
        {"(time)",
         "wall-clock values break run reproducibility — derive seeds "
         "from RunConfig.seed (h2::splitmix64) and measure elapsed time "
         "with std::chrono::steady_clock"},
        {"(printf)",
         "library code must not write to stdout — build strings, use "
         "JsonWriter (common/json.h) or h2::log (common/log.h); direct "
         "printing belongs in src/main.cc and bench/ only"},
    };

    const std::string &code = sf.code;
    for (const BannedCall &b : kBanned) {
        if (printfOk && std::string_view(b.pattern) == "(printf)")
            continue;
        std::regex re("(std\\s*::\\s*)?" + std::string(b.pattern) +
                      "\\s*\\(");
        for (auto it = std::sregex_iterator(code.begin(), code.end(), re);
             it != std::sregex_iterator(); ++it) {
            size_t pos = size_t(it->position(0));
            // Reject members (x.time(...)), other qualifications
            // (foo::rand), and identifier tails (my_rand).
            if (pos > 0) {
                char prev = code[pos - 1];
                if (isWordChar(prev) || prev == '.' || prev == ':' ||
                    prev == '>')
                    continue;
            }
            emit(out, sf, "R2", relPath, detail::lineOf(code, pos),
                 (*it)[2].str() + "(): " + b.why);
        }
    }
}

// ---------------------------------------------------------------- R5

void
checkHeaderHygiene(const std::string &relPath, const ScrubbedFile &sf,
                   std::vector<Finding> &out)
{
    if (!isHeaderPath(relPath))
        return;
    static const std::regex kPragma(R"(#\s*pragma\s+once\b)");
    if (!std::regex_search(sf.code, kPragma))
        emit(out, sf, "R5", relPath, 1,
             "header is missing #pragma once (the project replaced "
             "#ifndef guards — one spelling, no name collisions)");

    static const std::regex kUsingNs(R"(\busing\s+namespace\b)");
    for (auto it = std::sregex_iterator(sf.code.begin(), sf.code.end(),
                                        kUsingNs);
         it != std::sregex_iterator(); ++it)
        emit(out, sf, "R5", relPath,
             detail::lineOf(sf.code, size_t(it->position(0))),
             "`using namespace` in a header leaks the namespace into "
             "every includer — qualify names instead");

    // The fully-scrubbed view: a real #include directive can't live
    // inside a string literal, and a docstring *mentioning* the
    // directive must not count (pinned by the r5_good.h fixture).
    static const std::regex kIostream(
        R"(#\s*include\s*[<"]iostream[>"])");
    for (auto it = std::sregex_iterator(sf.code.begin(), sf.code.end(),
                                        kIostream);
         it != std::sregex_iterator(); ++it)
        emit(out, sf, "R5", relPath,
             detail::lineOf(sf.code, size_t(it->position(0))),
             "<iostream> in a header drags iostream static-init into "
             "every includer — use <ostream>/<iosfwd> in the header and "
             "include <iostream> in the .cc that actually prints");
}

// ------------------------------------------------------- tree helpers

std::optional<std::string>
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Repo files eligible for per-file rules, repo-relative, sorted. */
std::vector<std::string>
collectFiles(const fs::path &root, std::string *error)
{
    std::vector<std::string> files;
    for (const char *top : {"src", "bench", "tests", "tools"}) {
        fs::path dir = root / top;
        if (!fs::exists(dir))
            continue;
        for (auto it = fs::recursive_directory_iterator(dir);
             it != fs::recursive_directory_iterator(); ++it) {
            if (it->is_directory() &&
                it->path().filename() == "lint_fixtures") {
                // Deliberate violations driving the lint's own tests.
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file())
                continue;
            std::string rel =
                fs::relative(it->path(), root).generic_string();
            if (isSourcePath(rel))
                files.push_back(rel);
        }
    }
    if (files.empty() && error)
        *error = "no source files under " + root.string() +
                 " (expected src/, bench/, tests/, tools/) — is --root "
                 "the repo root?";
    std::sort(files.begin(), files.end());
    return files;
}

// ---------------------------------------------------------------- R3

void
checkDesignCoverage(const fs::path &root, const std::string &relPath,
                    const ScrubbedFile &sf, std::vector<Finding> &out)
{
    if (!startsWith(relPath, "src/"))
        return;
    static const std::regex kRegister(
        R"(H2_REGISTER_DESIGN\s*\(\s*(\w+))");
    const std::string &code = sf.code;
    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        kRegister);
         it != std::sregex_iterator(); ++it) {
        size_t pos = size_t(it->position(0));
        // Skip the macro's own definition.
        size_t bol = code.rfind('\n', pos);
        bol = bol == std::string::npos ? 0 : bol + 1;
        size_t firstNonWs = code.find_first_not_of(" \t", bol);
        if (firstNonWs != std::string::npos && code[firstNonWs] == '#')
            continue;

        std::string name = (*it)[1].str();
        int line = detail::lineOf(code, pos);

        bool hasGolden = false;
        fs::path goldenDir = root / "tests" / "golden";
        if (fs::exists(goldenDir))
            for (auto &e : fs::recursive_directory_iterator(goldenDir)) {
                std::string fn = e.path().filename().string();
                if (e.is_regular_file() &&
                    startsWith(fn, name + "_") && endsWith(fn, ".json")) {
                    hasGolden = true;
                    break;
                }
            }
        if (!hasGolden)
            emit(out, sf, "R3", relPath, line,
                 "design '" + name +
                     "' is registered but has no golden snapshot "
                     "tests/golden/" +
                     name +
                     "_*.json — add a GoldenMetrics test and generate "
                     "one with H2_UPDATE_GOLDEN=1 ctest -R "
                     "GoldenMetrics");

        bool inReadme = false;
        if (auto readme = readFile(root / "README.md")) {
            std::istringstream lines(*readme);
            std::string l;
            while (std::getline(lines, l))
                if (l.find('|') != std::string::npos &&
                    l.find("`" + name + "`") != std::string::npos) {
                    inReadme = true;
                    break;
                }
        }
        if (!inReadme)
            emit(out, sf, "R3", relPath, line,
                 "design '" + name +
                     "' is registered but missing from the README "
                     "design table — add a `" +
                     name + "` row");
    }
}

// ---------------------------------------------------------------- R4

struct EmittedKey
{
    std::string key; ///< literal key, or suffix when viaPrefix
    bool viaPrefix = false;
    std::string file;
    int line = 0;
    /** `h2lint: allow(R4)` at the emission site: the key is exempt
     *  from the must-be-documented direction but still counts as
     *  emitted for the dead-docs direction. */
    bool suppressed = false;
};

/** Parse `out.add("k", ...)` / `out.add(prefix + ".k", ...)` emission
 *  sites (receiver names out/detail/stats by project convention). */
void
scanEmittedKeys(const std::string &relPath, const ScrubbedFile &sf,
                std::vector<EmittedKey> &keys,
                std::vector<Finding> &out)
{
    const std::string &code = sf.codeKeepStrings;
    static const std::regex kCall(
        R"(\b(?:out|detail|stats)\s*\.\s*(?:add|increment)\s*\()");
    static const std::regex kLiteral(R"(^\s*"([^"]+)\")");
    static const std::regex kPrefixed(R"(^\s*\w+\s*\+\s*"\.([^"]+)\")");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), kCall);
         it != std::sregex_iterator(); ++it) {
        size_t argPos = size_t(it->position(0)) + it->length(0);
        std::string rest = code.substr(argPos, 200);
        int line = detail::lineOf(code, size_t(it->position(0)));
        std::smatch m;
        bool quiet = sf.suppressed("R4", line);
        if (std::regex_search(rest, m, kLiteral)) {
            keys.push_back({m[1].str(), false, relPath, line, quiet});
        } else if (std::regex_search(rest, m, kPrefixed)) {
            keys.push_back({m[1].str(), true, relPath, line, quiet});
        } else {
            emit(out, sf, "R4", relPath, line,
                 "stats key is neither a string literal nor the "
                 "`prefix + \".suffix\"` form — h2lint cannot check it "
                 "against docs/metrics.md; use one of the two checkable "
                 "shapes");
        }
    }
}

void
checkMetricsManifest(const fs::path &root,
                     const std::vector<EmittedKey> &keys,
                     std::vector<Finding> &out)
{
    auto manifestText = readFile(root / "docs" / "metrics.md");
    if (!manifestText) {
        out.push_back({"R4", "docs/metrics.md", 1,
                       "missing docs/metrics.md — the checked-in "
                       "manifest of every Metrics.detail stats key"});
        return;
    }

    // Every backticked token in the first cell of a table row is a
    // documented key — rows may group sibling instances, e.g.
    // `fm.reads`, `nm.reads`.
    std::map<std::string, int> documented; // key -> manifest line
    {
        static const std::regex kRow(R"(^\s*\|([^|]*)\|)");
        static const std::regex kTick("`([^`]+)`");
        std::istringstream lines(*manifestText);
        std::string l;
        int n = 0;
        while (std::getline(lines, l)) {
            ++n;
            std::smatch m;
            if (!std::regex_search(l, m, kRow))
                continue;
            std::string cell = m[1].str();
            for (auto it = std::sregex_iterator(cell.begin(), cell.end(),
                                                kTick);
                 it != std::sregex_iterator(); ++it)
                documented.emplace((*it)[1].str(), n);
        }
    }

    std::set<std::string> literals, suffixes;
    for (const EmittedKey &k : keys)
        (k.viaPrefix ? suffixes : literals).insert(k.key);

    // Every emitted key must be documented.
    for (const EmittedKey &k : keys) {
        if (k.suppressed)
            continue;
        if (!k.viaPrefix) {
            if (!documented.count(k.key))
                out.push_back(
                    {"R4", k.file, k.line,
                     "stats key '" + k.key +
                         "' is not documented in docs/metrics.md — add "
                         "a manifest row (every Metrics.detail key is "
                         "documented)"});
        } else {
            bool found = false;
            for (const auto &[doc, _] : documented)
                if (endsWith(doc, "." + k.key)) {
                    found = true;
                    break;
                }
            if (!found)
                out.push_back(
                    {"R4", k.file, k.line,
                     "prefixed stats key '<prefix>." + k.key +
                         "' has no docs/metrics.md row ending in '." +
                         k.key + "' — document each emitted prefix "
                         "instance"});
        }
    }

    // Every documented key must be emitted (no dead docs).
    for (const auto &[doc, line] : documented) {
        if (literals.count(doc))
            continue;
        bool found = false;
        for (const std::string &s : suffixes)
            if (endsWith(doc, "." + s)) {
                found = true;
                break;
            }
        if (!found)
            out.push_back(
                {"R4", "docs/metrics.md", line,
                 "documents '" + doc +
                     "' but no src/ code emits it — delete the row or "
                     "restore the stat"});
    }
}

} // namespace

std::vector<Finding>
lintFileContents(const std::string &relPath, const std::string &text,
                 const Options &opt)
{
    std::vector<Finding> out;
    if (!isSourcePath(relPath))
        return out;
    ScrubbedFile sf = detail::scrub(text);
    if (ruleEnabled(opt, "R1"))
        checkDeviceSeam(relPath, sf, out);
    if (ruleEnabled(opt, "R2"))
        checkBannedCalls(relPath, sf, out);
    if (ruleEnabled(opt, "R5"))
        checkHeaderHygiene(relPath, sf, out);
    return out;
}

std::vector<Finding>
lintTree(const Options &opt, std::string *error)
{
    std::vector<Finding> out;
    fs::path root = opt.root;
    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
        if (error)
            *error = "root '" + opt.root + "' is not a directory";
        return out;
    }
    std::string walkError;
    std::vector<std::string> files = collectFiles(root, &walkError);
    if (!walkError.empty()) {
        if (error)
            *error = walkError;
        return out;
    }

    std::vector<EmittedKey> keys;
    for (const std::string &rel : files) {
        auto text = readFile(root / rel);
        if (!text)
            continue;
        ScrubbedFile sf = detail::scrub(*text);
        if (ruleEnabled(opt, "R1"))
            checkDeviceSeam(rel, sf, out);
        if (ruleEnabled(opt, "R2"))
            checkBannedCalls(rel, sf, out);
        if (ruleEnabled(opt, "R5"))
            checkHeaderHygiene(rel, sf, out);
        if (ruleEnabled(opt, "R3"))
            checkDesignCoverage(root, rel, sf, out);
        if (ruleEnabled(opt, "R4") && startsWith(rel, "src/"))
            scanEmittedKeys(rel, sf, keys, out);
    }
    if (ruleEnabled(opt, "R4"))
        checkMetricsManifest(root, keys, out);

    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });
    return out;
}

} // namespace h2::lint
