/**
 * @file
 * h2lint CLI.
 *
 * Exit codes (pinned by tests/test_h2lint.cc):
 *   0  clean — no findings
 *   1  findings reported (one per stdout line, `file:line: [Rn] ...`)
 *   2  usage error (unknown flag/rule, unusable --root, unreadable file)
 *
 * Tree mode (default) walks src/, bench/, tests/, tools/ under --root
 * and runs every rule, including the cross-file R3/R4. With explicit
 * file operands only the per-file rules (R1, R2, R5) run — that is the
 * mode CI's seeded-violation check uses.
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/parse.h"
#include "lint.h"

namespace {

int
usage(std::ostream &os, int rc)
{
    os << "usage: h2lint [--root DIR] [--rules R1,R2,...] "
          "[--list-rules] [file...]\n"
          "\n"
          "Project-specific static analysis for the Hybrid2 simulator.\n"
          "Without file operands, walks src/, bench/, tests/, tools/\n"
          "under --root (default: .) and runs all rules; with files,\n"
          "runs the per-file rules (R1, R2, R5) on just those files.\n"
          "\n"
          "  --root DIR     repo root for the tree walk and the R3/R4\n"
          "                 cross-file targets\n"
          "  --rules LIST   comma-separated rule IDs to enable\n"
          "  --list-rules   print the rule table and exit\n"
          "\n"
          "Suppressions: `// h2lint: allow(R2)` silences the comment's\n"
          "line and the next; `// h2lint: allow-file(R5)` the file.\n";
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    h2::lint::Options opt;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(std::cout, 0);
        if (arg == "--list-rules") {
            for (const auto &r : h2::lint::ruleTable())
                std::cout << r.id << "  " << r.name << "\n    "
                          << r.summary << "\n";
            return 0;
        }
        if (arg == "--root") {
            if (++i == argc) {
                std::cerr << "h2lint: --root needs a directory\n";
                return 2;
            }
            opt.root = argv[i];
            continue;
        }
        if (arg == "--rules") {
            if (++i == argc) {
                std::cerr << "h2lint: --rules needs a comma list\n";
                return 2;
            }
            for (std::string_view id : h2::splitOn(argv[i], ',')) {
                std::string rule(id);
                if (!h2::lint::isKnownRule(rule)) {
                    std::cerr << "h2lint: unknown rule '" << rule
                              << "' (see --list-rules)\n";
                    return 2;
                }
                opt.rules.insert(rule);
            }
            continue;
        }
        if (arg.rfind("--", 0) == 0) {
            std::cerr << "h2lint: unknown option '" << arg << "'\n";
            return usage(std::cerr, 2);
        }
        files.push_back(arg);
    }

    std::vector<h2::lint::Finding> findings;
    if (files.empty()) {
        std::string error;
        findings = h2::lint::lintTree(opt, &error);
        if (!error.empty()) {
            std::cerr << "h2lint: " << error << "\n";
            return 2;
        }
    } else {
        for (const std::string &f : files) {
            std::ifstream in(f, std::ios::binary);
            if (!in) {
                std::cerr << "h2lint: cannot read '" << f << "'\n";
                return 2;
            }
            std::ostringstream buf;
            buf << in.rdbuf();
            // Rule applicability (src/ vs bench/ vs main.cc) keys off
            // the repo-relative path, so resolve against --root when
            // the file lives under it.
            std::error_code ec;
            std::string rel =
                std::filesystem::proximate(f, opt.root, ec)
                    .generic_string();
            if (ec || rel.rfind("..", 0) == 0)
                rel = f;
            auto fs = h2::lint::lintFileContents(rel, buf.str(), opt);
            findings.insert(findings.end(), fs.begin(), fs.end());
        }
    }

    for (const auto &f : findings)
        std::cout << h2::lint::formatFinding(f) << "\n";
    std::cerr << "h2lint: " << findings.size() << " finding(s)\n";
    return findings.empty() ? 0 : 1;
}
