/**
 * @file
 * h2lint: project-specific static analysis for the Hybrid2 simulator.
 *
 * Token/regex-level checks (no libclang) that lock in the structural
 * invariants PRs 5-7 established by convention:
 *
 *   R1 device-seam      no direct DramDevice access()/post() and no
 *                       naming of the ChannelState/BankState shard
 *                       types outside src/mem/ + src/dram/ — designs
 *                       must route traffic through nmc()/fmc()/
 *                       ctrlFor() so FR-FCFS queueing applies, and
 *                       must consume the device's aggregate accessors
 *                       so the per-channel threading seam stays free
 *                       to change.
 *   R2 banned-call      crash- or determinism-hostile stdlib calls
 *                       (std::sto*, rand, time, strtok, printf outside
 *                       src/main.cc and bench/) with the sanctioned
 *                       replacement named in the diagnostic.
 *   R3 design-coverage  every H2_REGISTER_DESIGN has golden snapshots
 *                       under tests/golden/ and a row in the README
 *                       design table.
 *   R4 metrics-manifest every Metrics.detail stats key emitted in src/
 *                       appears in docs/metrics.md, and every manifest
 *                       row corresponds to an emitted key.
 *   R5 header-hygiene   headers carry #pragma once, no `using
 *                       namespace` at namespace scope, no <iostream>.
 *
 * Suppressions: `// h2lint: allow(R2)` (comma list accepted) silences
 * findings on the comment's line and the next line; `// h2lint:
 * allow-file(R5)` silences a rule for the whole file.
 *
 * The analysis runs on comment- and string-stripped text (R4 keeps
 * string literals — the stats keys live in them), so banned tokens in
 * comments or log messages never trip a rule.
 */

#pragma once

#include <set>
#include <string>
#include <vector>

namespace h2::lint {

/** One diagnostic: rule ID, repo-relative file, 1-based line. */
struct Finding
{
    std::string rule;
    std::string file;
    int line = 0;
    std::string message;

    bool operator==(const Finding &) const = default;
};

/** Static description of one rule, for --list-rules and the README. */
struct RuleInfo
{
    std::string id;
    std::string name;
    std::string summary;
};

/** All rules in ID order. */
const std::vector<RuleInfo> &ruleTable();

/** True iff @p id names a known rule. */
bool isKnownRule(const std::string &id);

struct Options
{
    /** Repo root; tree mode scans src/, bench/, tests/, tools/ under
     *  it and resolves the R3/R4 cross-file targets (tests/golden/,
     *  README.md, docs/metrics.md) against it. */
    std::string root = ".";
    /** Rules to run; empty = all. */
    std::set<std::string> rules;
};

/** True when @p id is enabled under @p opt. */
bool ruleEnabled(const Options &opt, const std::string &id);

/**
 * Per-file rules (R1, R2, R5) over one file's contents. @p relPath is
 * the repo-relative path — rule applicability (src/ vs bench/ vs
 * header) is derived from it, so fixture tests can lint an on-disk
 * file under any logical path.
 */
std::vector<Finding> lintFileContents(const std::string &relPath,
                                      const std::string &text,
                                      const Options &opt);

/**
 * Whole-tree mode: per-file rules over every .h/.cc/.cpp under
 * src/, bench/, tests/, and tools/ (tests/lint_fixtures/ excluded —
 * its files are deliberate violations), plus the cross-file rules R3
 * and R4. On an unusable root (no src/ beneath it), returns empty and
 * sets @p error.
 */
std::vector<Finding> lintTree(const Options &opt, std::string *error);

/** "file:line: [R2] message" — one line, no trailing newline. */
std::string formatFinding(const Finding &f);

namespace detail {

/**
 * Lexing support, exposed for the unit tests.
 *
 * `code` is @p text with comments and string/char literals replaced by
 * spaces (newlines kept, so offsets map to the same line numbers);
 * `codeKeepStrings` strips only comments. Suppression comments are
 * parsed into the two sets.
 */
struct ScrubbedFile
{
    std::string code;
    std::string codeKeepStrings;
    /** (rule, line) pairs silenced by `h2lint: allow(...)`; the line
     *  recorded is every line the comment spans plus the next one. */
    std::set<std::pair<std::string, int>> allowLines;
    /** Rules silenced file-wide by `h2lint: allow-file(...)`. */
    std::set<std::string> allowFile;

    bool suppressed(const std::string &rule, int line) const;
};

ScrubbedFile scrub(const std::string &text);

/** 1-based line of byte offset @p pos in @p text. */
int lineOf(const std::string &text, size_t pos);

} // namespace detail

} // namespace h2::lint
